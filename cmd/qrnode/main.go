// Command qrnode is one rank of a distributed tree-based QR factorization:
// N qrnode processes — one per rank — join a TCP mesh, build the identical
// 3D virtual systolic array, and each executes its own share of the VDPs.
// Rank 0 gathers the result, reports metrics, and can verify the factored
// tiles elementwise against the sequential reference (-check).
//
// Every rank derives the same input matrix from -seed, so no matrix data
// needs to be distributed out of band.
//
// Example (two ranks on one machine; or use `qrfactor -launch 2`):
//
//	qrnode -rank 0 -peers 127.0.0.1:9001,127.0.0.1:9002 -m 4096 -n 512 &
//	qrnode -rank 1 -peers 127.0.0.1:9001,127.0.0.1:9002 -m 4096 -n 512
//
// The -rank and -peers flags fall back to the QRNODE_RANK, QRNODE_PEERS
// (and QRNODE_NODES, for a consistency check) environment variables, the
// rendezvous convention process launchers usually want.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pulsarqr"
	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/trace"
	"pulsarqr/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qrnode: ")
	var (
		rank    = flag.Int("rank", -1, "this process's rank (env QRNODE_RANK)")
		peers   = flag.String("peers", "", "comma-separated host:port of every rank, own rank included (env QRNODE_PEERS)")
		nodes   = flag.Int("nodes", 0, "expected world size; 0 = len(peers) (env QRNODE_NODES)")
		m       = flag.Int("m", 4096, "rows")
		n       = flag.Int("n", 256, "columns")
		nb      = flag.Int("nb", 64, "tile size")
		ib      = flag.Int("ib", 16, "inner block size")
		tree    = flag.String("tree", "hierarchical", "reduction tree: hierarchical|flat|binary")
		h       = flag.Int("h", 4, "tiles per flat-tree domain (hierarchical)")
		threads = flag.Int("threads", 4, "worker threads on this rank")
		lazy    = flag.Bool("lazy", true, "lazy VDP scheduling (false = aggressive)")
		seed    = flag.Int64("seed", 42, "matrix seed (identical on every rank)")
		rhs     = flag.Int("rhs", 0, "ride-along right-hand-side columns")
		check   = flag.Bool("check", false, "rank 0: verify elementwise against the sequential reference")
		rdv     = flag.Duration("rendezvous", 30*time.Second, "mesh setup timeout")
		recon   = flag.Duration("reconnect", 0, "survive transient link drops: redial dead connections for up to this long (0 = fail fast; must match on every rank)")
		hbeat   = flag.Duration("heartbeat", 0, "probe idle links at this interval and declare silent peers dead (0 = off; requires -reconnect)")
		trFile  = flag.String("trace", "", "record an execution trace; rank 0 gathers every rank's shard into this JSONL file")
	)
	flag.Parse()

	if *rank < 0 {
		if v := os.Getenv("QRNODE_RANK"); v != "" {
			r, err := strconv.Atoi(v)
			if err != nil {
				log.Fatalf("QRNODE_RANK: %v", err)
			}
			*rank = r
		}
	}
	if *peers == "" {
		*peers = os.Getenv("QRNODE_PEERS")
	}
	if *nodes == 0 {
		if v := os.Getenv("QRNODE_NODES"); v != "" {
			nn, err := strconv.Atoi(v)
			if err != nil {
				log.Fatalf("QRNODE_NODES: %v", err)
			}
			*nodes = nn
		}
	}
	if *peers == "" {
		log.Fatal("no peer list: pass -peers or set QRNODE_PEERS")
	}
	peerList := strings.Split(*peers, ",")
	if *nodes != 0 && *nodes != len(peerList) {
		log.Fatalf("-nodes %d but %d peer addresses", *nodes, len(peerList))
	}
	if *rank < 0 || *rank >= len(peerList) {
		log.Fatalf("rank %d outside peer list of %d", *rank, len(peerList))
	}
	log.SetPrefix(fmt.Sprintf("qrnode %d: ", *rank))

	opts := qr.Options{NB: *nb, IB: *ib, H: *h}
	switch *tree {
	case "hierarchical":
		opts.Tree = qr.HierarchicalTree
	case "flat":
		opts.Tree = qr.FlatTree
	case "binary":
		opts.Tree = qr.BinaryTree
	default:
		log.Fatalf("unknown tree %q", *tree)
	}
	rc := qr.RunConfig{Threads: *threads}
	if !*lazy {
		rc.Scheduling = pulsarqr.Aggressive
	}
	var rec *trace.Recorder
	if *trFile != "" {
		rec = trace.NewRecorder()
		rc.FireHook = rec.Hook()
		rc.WaitHook = rec.WaitHook()
		rc.CommHook = rec.CommHook()
	}

	ep, err := transport.DialTCP(transport.TCPConfig{
		Rank:              *rank,
		Peers:             peerList,
		RendezvousTimeout: *rdv,
		Reconnect:         *recon,
		HeartbeatInterval: *hbeat,
		Logf:              log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()
	log.Printf("mesh of %d ranks up", ep.Size())

	a := pulsarqr.RandomMatrix(*m, *n, *seed)
	ta := matrix.FromDense(a, *nb)
	var b *pulsarqr.Matrix
	var tb *matrix.Tiled
	if *rhs > 0 {
		b = pulsarqr.RandomMatrix(*m, *rhs, *seed+1)
		tb = matrix.FromDense(b, *nb)
	}

	// SIGINT/SIGTERM cancel the run: in-flight kernels drain, the runtime
	// aborts, and the process exits instead of lingering in the mesh. The
	// launcher signals the whole group, so every rank unwinds together.
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	start := time.Now()
	f, err := qr.FactorizeVSADistCtx(ctx, ta, tb, opts, rc, ep)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Print(err)
			os.Exit(130)
		}
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	if rec != nil {
		if err := gatherTrace(ctx, ep, rec, *trFile); err != nil {
			log.Fatalf("trace: %v", err)
		}
	}
	msgs, bytes := ep.Stats()
	if *rank != 0 {
		log.Printf("done in %v (sent %d messages, %d payload bytes)", elapsed, msgs, bytes)
		return
	}

	gf := kernels.FlopsQR(*m, *n) / 1e9 / elapsed.Seconds()
	fmt.Printf("factored %dx%d over %d ranks: %v, %.3f Gflop/s\n",
		*m, *n, ep.Size(), elapsed, gf)
	fmt.Printf("network   %d messages, %d payload bytes sent by rank 0 (run: %d msgs, %d bytes)\n",
		msgs, bytes, f.Stats.Messages, f.Stats.Bytes)
	fmt.Printf("residual  ‖AᵀA − RᵀR‖/‖AᵀA‖ = %.3e\n", f.Residual(a))
	if f.Residual(a) > 1e-12 {
		log.Fatal("residual above tolerance")
	}
	if *check {
		seq, err := qr.Factorize(matrix.FromDense(a, *nb), cloneTiled(b, *nb), opts)
		if err != nil {
			log.Fatalf("sequential reference: %v", err)
		}
		if d := matrix.MaxAbsDiff(seq.A.ToDense(), f.A.ToDense()); d != 0 {
			log.Fatalf("check failed: factored tiles differ by %v", d)
		}
		if tb != nil {
			if d := matrix.MaxAbsDiff(seq.QTB.ToDense(), f.QTB.ToDense()); d != 0 {
				log.Fatalf("check failed: QᵀB differs by %v", d)
			}
		}
		fmt.Println("check     distributed result elementwise equal to sequential")
	}
}

// gatherTrace collects every rank's trace shard at rank 0 and writes them as
// JSONL, ready for qrtrace -merge.
func gatherTrace(ctx context.Context, ep transport.Endpoint, rec *trace.Recorder, path string) error {
	gctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	shards, err := trace.GatherShards(gctx, ep, rec.Shard(ep.Rank()))
	if err != nil {
		return err
	}
	if ep.Rank() != 0 {
		return nil
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteShards(fh, shards...); err != nil {
		fh.Close()
		return err
	}
	if err := fh.Close(); err != nil {
		return err
	}
	var events int
	var drops int64
	for _, sh := range shards {
		events += len(sh.Events)
		drops += sh.Drops
	}
	log.Printf("trace: %d shards, %d events written to %s (dropped %d)", len(shards), events, path, drops)
	return nil
}

func cloneTiled(b *pulsarqr.Matrix, nb int) *matrix.Tiled {
	if b == nil {
		return nil
	}
	return matrix.FromDense(b, nb)
}
