// Command qrfactor factors a random tall-skinny matrix with the tree-based
// tile QR and reports correctness metrics and the achieved rate.
//
// Example:
//
//	qrfactor -m 4096 -n 512 -nb 64 -ib 16 -tree hierarchical -h 4 \
//	         -engine systolic -nodes 2 -threads 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"pulsarqr"
	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qrfactor: ")
	var (
		m       = flag.Int("m", 4096, "rows")
		n       = flag.Int("n", 256, "columns")
		nb      = flag.Int("nb", 64, "tile size")
		ib      = flag.Int("ib", 16, "inner block size")
		tree    = flag.String("tree", "hierarchical", "reduction tree: hierarchical|flat|binary")
		h       = flag.Int("h", 4, "tiles per flat-tree domain (hierarchical)")
		fixed   = flag.Bool("fixed", false, "use fixed domain boundaries instead of shifted")
		engine  = flag.String("engine", "systolic", "engine: systolic|quark|sequential")
		nodes   = flag.Int("nodes", 1, "simulated distributed-memory nodes")
		threads = flag.Int("threads", 4, "worker threads per node")
		lazy    = flag.Bool("lazy", true, "lazy VDP scheduling (false = aggressive)")
		seed    = flag.Int64("seed", 42, "matrix seed")
		rhs     = flag.Int("rhs", 0, "ride-along right-hand-side columns")
		inFile  = flag.String("in", "", "read A from a MatrixMarket array file instead of random")
		outFile = flag.String("out", "", "write the R factor to a MatrixMarket array file")
	)
	flag.Parse()

	opts := pulsarqr.Options{
		NB: *nb, IB: *ib, H: *h,
		Nodes: *nodes, Threads: *threads,
	}
	switch *tree {
	case "hierarchical":
		opts.Tree = pulsarqr.Hierarchical
	case "flat":
		opts.Tree = pulsarqr.Flat
	case "binary":
		opts.Tree = pulsarqr.Binary
	default:
		log.Fatalf("unknown tree %q", *tree)
	}
	if *fixed {
		opts.Boundary = pulsarqr.Fixed
	}
	switch *engine {
	case "systolic":
		opts.Engine = pulsarqr.Systolic
	case "quark":
		opts.Engine = pulsarqr.TaskSuperscalar
	case "sequential":
		opts.Engine = pulsarqr.Sequential
	default:
		log.Fatalf("unknown engine %q", *engine)
	}
	if !*lazy {
		opts.Scheduling = pulsarqr.Aggressive
	}

	var a *pulsarqr.Matrix
	if *inFile != "" {
		fh, err := os.Open(*inFile)
		if err != nil {
			log.Fatal(err)
		}
		a, err = matrix.ReadMatrixMarket(fh)
		fh.Close()
		if err != nil {
			log.Fatalf("%s: %v", *inFile, err)
		}
		*m, *n = a.Rows, a.Cols
	} else {
		a = pulsarqr.RandomMatrix(*m, *n, *seed)
	}
	var b *pulsarqr.Matrix
	if *rhs > 0 {
		b = pulsarqr.RandomMatrix(*m, *rhs, *seed+1)
	}

	fmt.Printf("factoring %dx%d, nb=%d ib=%d tree=%s h=%d engine=%s nodes=%d threads=%d\n",
		*m, *n, *nb, *ib, *tree, *h, *engine, *nodes, *threads)
	start := time.Now()
	var f *pulsarqr.Factorization
	var err error
	if b != nil {
		f, err = pulsarqr.FactorWithRHS(a, b, opts)
	} else {
		f, err = pulsarqr.Factor(a, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	gf := kernels.FlopsQR(*m, *n) / 1e9 / elapsed.Seconds()
	fmt.Printf("time      %v\n", elapsed)
	fmt.Printf("rate      %.3f Gflop/s (conventional 2n²(m−n/3) count)\n", gf)
	fmt.Printf("residual  ‖AᵀA − RᵀR‖/‖AᵀA‖ = %.3e\n", f.Residual(a))
	if b != nil {
		x := f.SolveFromQTB()
		r := a.Mul(x).Sub(b)
		fmt.Printf("lsq       ‖Ax − b‖_F = %.6e (gradient ‖Aᵀ(Ax−b)‖_max = %.3e)\n",
			r.FrobNorm(), a.Transpose().Mul(r).MaxAbs())
	}
	if *outFile != "" {
		fh, err := os.Create(*outFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := matrix.WriteMatrixMarket(fh, f.R()); err != nil {
			log.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote R to %s\n", *outFile)
	}
	if f.Residual(a) > 1e-12 {
		fmt.Fprintln(os.Stderr, "WARNING: residual above tolerance")
		os.Exit(1)
	}
}
