// Command qrfactor factors a random tall-skinny matrix with the tree-based
// tile QR and reports correctness metrics and the achieved rate.
//
// Example:
//
//	qrfactor -m 4096 -n 512 -nb 64 -ib 16 -tree hierarchical -h 4 \
//	         -engine systolic -nodes 2 -threads 4
//
// With -launch N the nodes become real OS processes: qrfactor reserves N
// loopback ports, spawns one qrnode per rank, and relays their output.
//
//	qrfactor -launch 2 -m 4096 -n 512 -check
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"pulsarqr"
	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/procgroup"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qrfactor: ")
	var (
		m       = flag.Int("m", 4096, "rows")
		n       = flag.Int("n", 256, "columns")
		nb      = flag.Int("nb", 64, "tile size")
		ib      = flag.Int("ib", 16, "inner block size")
		tree    = flag.String("tree", "hierarchical", "reduction tree: hierarchical|flat|binary")
		h       = flag.Int("h", 4, "tiles per flat-tree domain (hierarchical)")
		fixed   = flag.Bool("fixed", false, "use fixed domain boundaries instead of shifted")
		engine  = flag.String("engine", "systolic", "engine: systolic|quark|sequential")
		nodes   = flag.Int("nodes", 1, "simulated distributed-memory nodes")
		threads = flag.Int("threads", 4, "worker threads per node")
		lazy    = flag.Bool("lazy", true, "lazy VDP scheduling (false = aggressive)")
		seed    = flag.Int64("seed", 42, "matrix seed")
		rhs     = flag.Int("rhs", 0, "ride-along right-hand-side columns")
		inFile  = flag.String("in", "", "read A from a MatrixMarket array file instead of random")
		outFile = flag.String("out", "", "write the R factor to a MatrixMarket array file")
		launch  = flag.Int("launch", 0, "spawn this many qrnode processes over local TCP instead of simulating nodes in-process")
		nodeBin = flag.String("qrnode", "", "path to the qrnode binary (default: next to qrfactor, then $PATH)")
		check   = flag.Bool("check", false, "with -launch: rank 0 verifies elementwise against the sequential reference")
		trFile  = flag.String("trace", "", "record an execution trace to this JSONL file (systolic engine; with -launch, rank 0 gathers every rank's shard)")
	)
	flag.Parse()

	if *launch > 0 {
		args := []string{
			"-m", fmt.Sprint(*m), "-n", fmt.Sprint(*n),
			"-nb", fmt.Sprint(*nb), "-ib", fmt.Sprint(*ib),
			"-tree", *tree, "-h", fmt.Sprint(*h),
			"-threads", fmt.Sprint(*threads),
			"-lazy=" + fmt.Sprint(*lazy),
			"-seed", fmt.Sprint(*seed), "-rhs", fmt.Sprint(*rhs),
			"-check=" + fmt.Sprint(*check),
		}
		if *trFile != "" {
			args = append(args, "-trace", *trFile)
		}
		os.Exit(launchNodes(*launch, *nodeBin, args))
	}

	opts := pulsarqr.Options{
		NB: *nb, IB: *ib, H: *h,
		Nodes: *nodes, Threads: *threads,
	}
	switch *tree {
	case "hierarchical":
		opts.Tree = pulsarqr.Hierarchical
	case "flat":
		opts.Tree = pulsarqr.Flat
	case "binary":
		opts.Tree = pulsarqr.Binary
	default:
		log.Fatalf("unknown tree %q", *tree)
	}
	if *fixed {
		opts.Boundary = pulsarqr.Fixed
	}
	switch *engine {
	case "systolic":
		opts.Engine = pulsarqr.Systolic
	case "quark":
		opts.Engine = pulsarqr.TaskSuperscalar
	case "sequential":
		opts.Engine = pulsarqr.Sequential
	default:
		log.Fatalf("unknown engine %q", *engine)
	}
	if !*lazy {
		opts.Scheduling = pulsarqr.Aggressive
	}

	var a *pulsarqr.Matrix
	if *inFile != "" {
		fh, err := os.Open(*inFile)
		if err != nil {
			log.Fatal(err)
		}
		a, err = matrix.ReadMatrixMarket(fh)
		fh.Close()
		if err != nil {
			log.Fatalf("%s: %v", *inFile, err)
		}
		*m, *n = a.Rows, a.Cols
	} else {
		a = pulsarqr.RandomMatrix(*m, *n, *seed)
	}
	var b *pulsarqr.Matrix
	if *rhs > 0 {
		b = pulsarqr.RandomMatrix(*m, *rhs, *seed+1)
	}

	fmt.Printf("factoring %dx%d, nb=%d ib=%d tree=%s h=%d engine=%s nodes=%d threads=%d\n",
		*m, *n, *nb, *ib, *tree, *h, *engine, *nodes, *threads)
	start := time.Now()
	var f *pulsarqr.Factorization
	var err error
	if *trFile != "" {
		if opts.Engine != pulsarqr.Systolic {
			log.Fatalf("-trace requires -engine systolic, got %q", *engine)
		}
		f, err = factorTraced(a, b, opts, *trFile)
	} else if b != nil {
		f, err = pulsarqr.FactorWithRHS(a, b, opts)
	} else {
		f, err = pulsarqr.Factor(a, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	gf := kernels.FlopsQR(*m, *n) / 1e9 / elapsed.Seconds()
	fmt.Printf("time      %v\n", elapsed)
	fmt.Printf("rate      %.3f Gflop/s (conventional 2n²(m−n/3) count)\n", gf)
	fmt.Printf("residual  ‖AᵀA − RᵀR‖/‖AᵀA‖ = %.3e\n", f.Residual(a))
	if b != nil {
		x := f.SolveFromQTB()
		r := a.Mul(x).Sub(b)
		fmt.Printf("lsq       ‖Ax − b‖_F = %.6e (gradient ‖Aᵀ(Ax−b)‖_max = %.3e)\n",
			r.FrobNorm(), a.Transpose().Mul(r).MaxAbs())
	}
	if *outFile != "" {
		fh, err := os.Create(*outFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := matrix.WriteMatrixMarket(fh, f.R()); err != nil {
			log.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote R to %s\n", *outFile)
	}
	if f.Residual(a) > 1e-12 {
		fmt.Fprintln(os.Stderr, "WARNING: residual above tolerance")
		os.Exit(1)
	}
}

// factorTraced runs the systolic engine through the internal qr layer with
// a trace recorder installed, then writes the single-process shard as JSONL
// for qrtrace -merge.
func factorTraced(a, b *pulsarqr.Matrix, opts pulsarqr.Options, path string) (*pulsarqr.Factorization, error) {
	rec := trace.NewRecorder()
	io := qr.Options{NB: opts.NB, IB: opts.IB, Tree: opts.Tree, H: opts.H, Boundary: opts.Boundary, Inter: opts.Inter}
	rc := qr.RunConfig{
		Nodes: opts.Nodes, Threads: opts.Threads, Scheduling: opts.Scheduling,
		FireHook: rec.Hook(), WaitHook: rec.WaitHook(), CommHook: rec.CommHook(),
	}
	ta := matrix.FromDense(a, io.NB)
	var tb *matrix.Tiled
	if b != nil {
		tb = matrix.FromDense(b, io.NB)
	}
	f, err := qr.FactorizeVSA(ta, tb, io, rc)
	if err != nil {
		return nil, err
	}
	fh, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	sh := rec.Shard(0)
	if err := trace.WriteShards(fh, sh); err != nil {
		fh.Close()
		return nil, err
	}
	if err := fh.Close(); err != nil {
		return nil, err
	}
	fmt.Printf("trace     %d events written to %s (dropped %d)\n", len(sh.Events), path, sh.Drops)
	return f, nil
}

// launchNodes runs an N-process factorization: it reserves N loopback
// ports, starts one qrnode per rank with the shared peer list, relays each
// child's output under a [rank] prefix, and returns the worst exit code.
// The children form one supervised group: a signal to qrfactor, a failed
// rank, or any early return tears the whole mesh down — no orphaned qrnode
// processes holding ports.
func launchNodes(n int, nodeBin string, args []string) int {
	bin, err := findQrnode(nodeBin)
	if err != nil {
		log.Print(err)
		return 1
	}

	// Reserve ports by binding and releasing; the children re-bind them
	// immediately, so collisions with other processes are unlikely.
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Printf("reserve port: %v", err)
			return 1
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	peers := strings.Join(addrs, ",")
	log.Printf("launching %d qrnode processes (%s)", n, bin)

	group := procgroup.New()
	defer group.Kill() // covers every exit path, error returns included
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	type exit struct {
		rank, code int
		err        error
	}
	exits := make(chan exit, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(bin, append([]string{
			"-rank", fmt.Sprint(i), "-peers", peers,
		}, args...)...)
		out, err := cmd.StdoutPipe()
		if err != nil {
			log.Printf("rank %d: %v", i, err)
			return 1
		}
		cmd.Stderr = cmd.Stdout // merged: one ordered stream per child
		if err := group.Start(cmd); err != nil {
			log.Printf("start rank %d: %v", i, err)
			return 1
		}
		go func(i int, cmd *exec.Cmd, sc *bufio.Scanner) {
			for sc.Scan() {
				fmt.Printf("[rank %d] %s\n", i, sc.Text())
			}
			err := cmd.Wait()
			code := 0
			if err != nil {
				if code = cmd.ProcessState.ExitCode(); code <= 0 {
					code = 1
				}
			}
			exits <- exit{i, code, err}
		}(i, cmd, bufio.NewScanner(out))
	}

	code := 0
	for done := 0; done < n; {
		select {
		case sig := <-sigc:
			log.Printf("received %v, stopping nodes", sig)
			group.Kill()
			if code == 0 {
				code = 130
			}
		case e := <-exits:
			done++
			if e.code != 0 {
				if !group.Killed() {
					log.Printf("rank %d: %v", e.rank, e.err)
					// One dead rank would leave the rest blocked in the
					// mesh until their deadlock timeout; fail fast instead.
					group.Kill()
				}
				if e.code > code {
					code = e.code
				}
			}
		}
	}
	return code
}

// findQrnode locates the qrnode binary: explicit flag, then the directory
// qrfactor itself runs from, then $PATH.
func findQrnode(nodeBin string) (string, error) {
	if nodeBin != "" {
		return nodeBin, nil
	}
	if exe, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(exe), "qrnode")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand, nil
		}
	}
	if p, err := exec.LookPath("qrnode"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("qrnode binary not found: build it (go build ./cmd/qrnode) next to qrfactor, put it on $PATH, or pass -qrnode")
}
