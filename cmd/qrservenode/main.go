// Command qrservenode is a fleet agent for qrserve: one non-root rank that
// joins the TCP mesh once, keeps a warm worker pool, and executes its share
// of every factorization job the server dispatches over the multiplexed
// session. It exits when the server broadcasts shutdown, the connection
// drops, or it receives SIGINT/SIGTERM.
//
// The -rank and -peers flags fall back to the QRSERVE_RANK and
// QRSERVE_PEERS environment variables.
//
// Example (usually spawned by `qrserve -launch N`):
//
//	qrservenode -rank 1 -peers 127.0.0.1:9001,127.0.0.1:9002 -threads 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // -pprof-addr serves the default mux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pulsarqr/internal/service"
	"pulsarqr/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qrservenode: ")
	var (
		rank    = flag.Int("rank", -1, "this process's rank, >= 1 (env QRSERVE_RANK)")
		peers   = flag.String("peers", "", "comma-separated host:port of every rank, server first (env QRSERVE_PEERS)")
		threads = flag.Int("threads", 4, "worker threads in the persistent pool")
		rdv     = flag.Duration("rendezvous", 30*time.Second, "mesh setup timeout")
		recon   = flag.Duration("reconnect", 0, "survive transient link drops: redial dead connections for up to this long (0 = fail fast; must match the server's setting)")
		hbeat   = flag.Duration("heartbeat", 0, "probe idle links at this interval and declare silent peers dead (0 = off; requires -reconnect)")
		pprof   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (off when empty)")
		numaPin = flag.Bool("numa", false, "pin pool workers to NUMA nodes with node-local workspaces (best-effort)")
		logLvl  = flag.String("log-level", "info", "log level when -log-format json: debug, info, warn, error")
		logFmt  = flag.String("log-format", "text", "agent log format: text (plain lines) or json (structured)")
	)
	flag.Parse()
	if *pprof != "" {
		go func(addr string) {
			log.Printf("pprof on http://%s/debug/pprof/", addr)
			if err := http.ListenAndServe(addr, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}(*pprof)
	}

	if *rank < 0 {
		if v := os.Getenv("QRSERVE_RANK"); v != "" {
			r, err := strconv.Atoi(v)
			if err != nil {
				log.Fatalf("QRSERVE_RANK: %v", err)
			}
			*rank = r
		}
	}
	if *peers == "" {
		*peers = os.Getenv("QRSERVE_PEERS")
	}
	if *peers == "" {
		log.Fatal("no peer list: pass -peers or set QRSERVE_PEERS")
	}
	peerList := strings.Split(*peers, ",")
	if *rank < 1 || *rank >= len(peerList) {
		log.Fatalf("rank %d outside agent range [1, %d)", *rank, len(peerList))
	}
	log.SetPrefix(fmt.Sprintf("qrservenode %d: ", *rank))

	// Rank is resolved by now, so a JSON logger can stamp it on every line.
	logf := log.Printf
	if *logFmt == "json" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLvl)); err != nil {
			log.Fatalf("bad -log-level %q: %v", *logLvl, err)
		}
		logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})).
			With(slog.Int("rank", *rank))
		logf = func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) }
	} else if *logFmt != "text" {
		log.Fatalf("bad -log-format %q (want text or json)", *logFmt)
	}

	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	ep, err := transport.DialTCP(transport.TCPConfig{
		Rank:              *rank,
		Peers:             peerList,
		RendezvousTimeout: *rdv,
		Reconnect:         *recon,
		HeartbeatInterval: *hbeat,
		Logf:              logf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()
	logf("fleet of %d ranks up, %d worker threads warm", ep.Size(), *threads)

	agent, err := service.NewAgentOpts(ep, service.AgentOptions{
		Threads: *threads,
		PinNUMA: *numaPin,
		Logf:    logf,
	})
	if err != nil {
		log.Fatal(err)
	}
	err = agent.Run(ctx)
	agent.Close()
	switch {
	case err == nil:
		log.Print("shutdown received, exiting")
	case errors.Is(err, context.Canceled):
		log.Print("interrupted, exiting")
		os.Exit(130)
	default:
		log.Print(err)
		os.Exit(1)
	}
}
