// Command qrtrace reproduces the paper's Figure 7: execution traces of the
// hierarchical QR with fixed versus shifted domain boundaries, rendered as
// ASCII timelines (and optionally SVG), plus the overlap statistics that
// quantify the pipelining benefit of shifting.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/simulate"
	"pulsarqr/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qrtrace: ")
	var (
		m         = flag.Int("m", 4096, "rows")
		n         = flag.Int("n", 256, "columns")
		nb        = flag.Int("nb", 64, "tile size")
		ib        = flag.Int("ib", 16, "inner block size")
		h         = flag.Int("h", 4, "tiles per domain")
		threads   = flag.Int("threads", 4, "worker threads")
		width     = flag.Int("width", 100, "ASCII timeline width")
		svgOut    = flag.String("svg", "", "write SVG traces to <prefix>-{fixed,shifted}.svg")
		chromeOut = flag.String("chrome", "", "write Chrome trace JSON to <prefix>-{fixed,shifted}.json")
		simNodes  = flag.Int("sim", 0, "simulate on this many Kraken nodes instead of running locally")
	)
	flag.Parse()

	for _, bp := range []qr.BoundaryPolicy{qr.FixedBoundary, qr.ShiftedBoundary} {
		opts := qr.Options{NB: *nb, IB: *ib, Tree: qr.HierarchicalTree, H: *h, Boundary: bp}
		var tl *trace.Timeline
		if *simNodes > 0 {
			mach := simulate.Kraken(*simNodes)
			_, events := simulate.RunTraced(simulate.Workload{M: *m, N: *n, Opts: opts},
				mach, simulate.SystolicProfile, mach.Workers()*min(*simNodes, 4))
			tl = trace.Build(events)
		} else {
			rec := trace.NewRecorder()
			a := matrix.FromDense(matrix.NewRand(*m, *n, rand.New(rand.NewSource(11))), *nb)
			rc := qr.RunConfig{Nodes: 1, Threads: *threads, FireHook: rec.Hook()}
			if _, err := qr.FactorizeVSA(a, nil, opts, rc); err != nil {
				log.Fatal(err)
			}
			tl = trace.Build(rec.Events())
		}
		fmt.Printf("=== %v domain boundaries ===\n", bp)
		fmt.Printf("makespan %v, utilization %.2f, panel overlap %.1f%%\n",
			tl.Makespan, tl.Utilization(), 100*tl.PanelOverlap(nil))
		fmt.Printf("legend: P panel (red), u update (orange), B binary, b binary-update (blue)\n")
		fmt.Print(tl.ASCII(*width))
		if *svgOut != "" {
			path := fmt.Sprintf("%s-%v.svg", *svgOut, bp)
			if err := os.WriteFile(path, []byte(tl.SVG(1200, 14)), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if *chromeOut != "" {
			path := fmt.Sprintf("%s-%v.json", *chromeOut, bp)
			fh, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := tl.ChromeTrace(fh); err != nil {
				log.Fatal(err)
			}
			if err := fh.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s (open in chrome://tracing or Perfetto)\n", path)
		}
		fmt.Println()
	}
}
