// Command qrtrace reproduces the paper's Figure 7: execution traces of the
// hierarchical QR with fixed versus shifted domain boundaries, rendered as
// ASCII timelines (and optionally SVG or Chrome trace JSON), plus the
// overlap statistics that quantify the pipelining benefit of shifting.
//
// With -merge it becomes the analysis half of distributed tracing: it reads
// the per-rank trace shards a fleet run gathered (qrfactor -trace, qrnode
// -trace, or GET /v1/jobs/{id}/trace on qrserve), aligns their clocks on
// the post-run barrier, and reports the merged timeline — critical path,
// per-class overlap, and a per-rank busy/idle/comm breakdown.
//
//	qrfactor -launch 2 -m 4096 -n 512 -trace shards.jsonl
//	qrtrace -merge shards.jsonl -chrome fleet.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/simulate"
	"pulsarqr/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qrtrace: ")
	var (
		m         = flag.Int("m", 4096, "rows")
		n         = flag.Int("n", 256, "columns")
		nb        = flag.Int("nb", 64, "tile size")
		ib        = flag.Int("ib", 16, "inner block size")
		h         = flag.Int("h", 4, "tiles per domain")
		threads   = flag.Int("threads", 4, "worker threads")
		width     = flag.Int("width", 100, "ASCII timeline width")
		svgOut    = flag.String("svg", "", "write SVG traces to <prefix>-{fixed,shifted}.svg (with -merge: the SVG path itself)")
		chromeOut = flag.String("chrome", "", "write Chrome trace JSON to <prefix>-{fixed,shifted}.json (with -merge: the JSON path itself)")
		simNodes  = flag.Int("sim", 0, "simulate on this many Kraken nodes instead of running locally")
		merge     = flag.String("merge", "", "analyze gathered trace shards (comma-separated JSONL files) instead of running the Figure 7 demo")
	)
	flag.Parse()

	if *merge != "" {
		runMerge(*merge, *width, *svgOut, *chromeOut)
		return
	}

	for _, bp := range []qr.BoundaryPolicy{qr.FixedBoundary, qr.ShiftedBoundary} {
		opts := qr.Options{NB: *nb, IB: *ib, Tree: qr.HierarchicalTree, H: *h, Boundary: bp}
		var tl *trace.Timeline
		var drops int64
		if *simNodes > 0 {
			mach := simulate.Kraken(*simNodes)
			_, events := simulate.RunTraced(simulate.Workload{M: *m, N: *n, Opts: opts},
				mach, simulate.SystolicProfile, mach.Workers()*min(*simNodes, 4))
			tl = trace.Build(events)
		} else {
			rec := trace.NewRecorder()
			a := matrix.FromDense(matrix.NewRand(*m, *n, rand.New(rand.NewSource(11))), *nb)
			rc := qr.RunConfig{Nodes: 1, Threads: *threads,
				FireHook: rec.Hook(), WaitHook: rec.WaitHook(), CommHook: rec.CommHook()}
			if _, err := qr.FactorizeVSA(a, nil, opts, rc); err != nil {
				log.Fatal(err)
			}
			tl = trace.Build(rec.Events())
			drops = rec.Drops()
		}
		fmt.Printf("=== %v domain boundaries ===\n", bp)
		fmt.Printf("makespan %v, utilization %.2f, panel overlap %.1f%%\n",
			tl.Makespan, tl.Utilization(), 100*tl.PanelOverlap(nil))
		if drops > 0 {
			fmt.Printf("WARNING: recorder dropped %d events; timeline is incomplete\n", drops)
		}
		printCriticalPath(tl)
		fmt.Printf("legend: P panel (red), u update (orange), B binary, b binary-update (blue), ~ wait\n")
		fmt.Print(tl.ASCII(*width))
		if *svgOut != "" {
			path := fmt.Sprintf("%s-%v.svg", *svgOut, bp)
			if err := os.WriteFile(path, []byte(tl.SVG(1200, 14)), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if *chromeOut != "" {
			writeChrome(tl, fmt.Sprintf("%s-%v.json", *chromeOut, bp))
		}
		fmt.Println()
	}
}

// runMerge merges gathered per-rank shards into one aligned timeline and
// reports it: the Fig. 7 rendering plus critical-path and per-rank
// busy/idle/comm breakdowns.
func runMerge(files string, width int, svgOut, chromeOut string) {
	var shards []trace.Shard
	for _, path := range strings.Split(files, ",") {
		fh, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		sh, err := trace.ReadShards(fh)
		fh.Close()
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		shards = append(shards, sh...)
	}
	if len(shards) == 0 {
		log.Fatal("no shards found")
	}
	events, drops := trace.Merge(shards)
	tl := trace.Build(events)

	fmt.Printf("merged %d shards, %d events\n", len(shards), len(events))
	for _, sh := range shards {
		fmt.Printf("  rank %d: %d events, %d dropped\n", sh.Rank, len(sh.Events), sh.Drops)
	}
	if drops > 0 {
		fmt.Printf("WARNING: recorders dropped %d events; timeline is incomplete\n", drops)
	}
	fmt.Printf("makespan %v, worker utilization %.2f, panel overlap %.1f%%\n",
		tl.Makespan, tl.Utilization(), 100*tl.PanelOverlap(nil))
	printBusyByClass(tl)
	printCriticalPath(tl)
	printByRank(tl)
	fmt.Printf("legend: P panel, u update, B binary, b binary-update, ~ wait, > send, < recv, = barrier\n")
	fmt.Print(tl.ASCII(width))
	if svgOut != "" {
		if err := os.WriteFile(svgOut, []byte(tl.SVG(1200, 14)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", svgOut)
	}
	if chromeOut != "" {
		writeChrome(tl, chromeOut)
	}
}

func printBusyByClass(tl *trace.Timeline) {
	classes := make([]string, 0, len(tl.BusyByClass))
	for c := range tl.BusyByClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Printf("busy by class:")
	for _, c := range classes {
		fmt.Printf(" %s=%v", c, tl.BusyByClass[c].Round(time.Microsecond))
	}
	fmt.Println()
}

func printCriticalPath(tl *trace.Timeline) {
	cp := tl.CriticalPath()
	if len(cp.Events) == 0 {
		return
	}
	pct := 0.0
	if tl.Makespan > 0 {
		pct = 100 * float64(cp.Work) / float64(tl.Makespan)
	}
	fmt.Printf("critical path: %d tasks, %v work (%.1f%% of makespan)\n",
		len(cp.Events), cp.Work.Round(time.Microsecond), pct)
	classes := make([]string, 0, len(cp.ByClass))
	for c := range cp.ByClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Printf("  on the path:")
	for _, c := range classes {
		fmt.Printf(" %s=%v", c, cp.ByClass[c].Round(time.Microsecond))
	}
	fmt.Println()
}

func printByRank(tl *trace.Timeline) {
	ranks := tl.ByRank()
	if len(ranks) < 2 {
		return
	}
	fmt.Printf("%6s %12s %12s %12s %8s %12s %8s %12s\n",
		"rank", "busy", "wait", "barrier", "sends", "sent", "recvs", "recvd")
	for _, r := range ranks {
		fmt.Printf("%6d %12v %12v %12v %8d %12d %8d %12d\n",
			r.Node, r.Busy.Round(time.Microsecond), r.Wait.Round(time.Microsecond),
			r.Barrier.Round(time.Microsecond), r.Sends, r.SentBytes, r.Recvs, r.RecvBytes)
	}
}

func writeChrome(tl *trace.Timeline, path string) {
	fh, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tl.ChromeTrace(fh); err != nil {
		log.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (open in chrome://tracing or Perfetto)\n", path)
}
