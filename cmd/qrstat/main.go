// Command qrstat is a qrtop-style terminal view of a running qrserve: it
// polls GET /v1/status and renders fleet membership, admission-class
// occupancy, per-tenant footprints, and the flight recorder's recent events.
//
// One snapshot:
//
//	qrstat -url http://127.0.0.1:7311
//
// Live view, redrawn every 2 seconds:
//
//	qrstat -url http://127.0.0.1:7311 -watch
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"pulsarqr/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qrstat: ")
	var (
		url      = flag.String("url", "http://127.0.0.1:7311", "qrserve base URL")
		events   = flag.Int("events", 12, "flight-recorder events to show")
		watch    = flag.Bool("watch", false, "redraw continuously instead of printing one snapshot")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval with -watch")
	)
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	for {
		st, err := fetch(client, *url, *events)
		if err != nil {
			log.Fatal(err)
		}
		if *watch {
			fmt.Print("\033[H\033[2J") // clear and home, full redraw
		}
		render(os.Stdout, st)
		if !*watch {
			return
		}
		time.Sleep(*interval)
	}
}

func fetch(client *http.Client, base string, events int) (*service.StatusView, error) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/status?events=%d", strings.TrimRight(base, "/"), events))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/status: %s", resp.Status)
	}
	var st service.StatusView
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decode status: %w", err)
	}
	return &st, nil
}

func render(w *os.File, st *service.StatusView) {
	up := time.Duration(st.UptimeS * float64(time.Second)).Round(time.Second)
	fmt.Fprintf(w, "qrserve %s (%s)  kernel=%s cpu=%s numa=%d threads=%d  up %s\n",
		st.Build.Version, st.Build.GoVersion, st.Build.Kernel, st.Build.CPUFeatures,
		st.Build.NUMANodes, st.Build.Threads, up)
	fleet := fmt.Sprintf("fleet: %d/%d ranks live", st.Fleet.Live, st.Fleet.Ranks)
	if st.Fleet.Degraded {
		fleet += fmt.Sprintf("  DEGRADED (evicted %v)", st.Fleet.Evicted)
	}
	fmt.Fprintln(w, fleet)

	fmt.Fprintln(w, "\nclass            depth  capacity  active  slots")
	classes := make([]string, 0, len(st.Classes))
	for c := range st.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		cs := st.Classes[c]
		fmt.Fprintf(w, "%-15s %6d %9d %7d %6d\n", c, cs.Depth, cs.Capacity, cs.Active, cs.Slots)
	}

	if len(st.Tenants) > 0 {
		fmt.Fprintln(w, "\ntenant                jobs  running  sessions")
		for _, t := range st.Tenants {
			name := t.Tenant
			if name == "" {
				name = "(anonymous)"
			}
			fmt.Fprintf(w, "%-20s %5d %8d %9d\n", name, t.Jobs, t.Running, t.Sessions)
		}
	}

	if st.Planner.Plans > 0 || st.Planner.Enabled {
		mode := "per-job opt-in"
		if st.Planner.Enabled {
			mode = "fleet-wide"
		}
		fmt.Fprintf(w, "\nplanner (%s): %d planned, %d cache hits, epoch %d\n",
			mode, st.Planner.Plans, st.Planner.CacheHits, st.Planner.Epoch)
		if st.Planner.LastConfig != "" {
			line := fmt.Sprintf("  last: job %d  %s  predicted %.1fms",
				st.Planner.LastJob, st.Planner.LastConfig, st.Planner.LastPredictedMS)
			if st.Planner.LastActualMS > 0 {
				line += fmt.Sprintf("  actual %.1fms (%.2fx)",
					st.Planner.LastActualMS, st.Planner.LastActualMS/st.Planner.LastPredictedMS)
			}
			fmt.Fprintln(w, line)
		}
	}

	fmt.Fprintf(w, "\nevents: %d emitted, %d dropped from the flight ring\n", st.Events, st.EventDrops)
	for _, e := range st.Flight {
		line := fmt.Sprintf("  %s  %-14s", e.At.Format("15:04:05.000"), e.Kind)
		if e.Job != 0 {
			line += fmt.Sprintf(" job=%d", e.Job)
		}
		if e.Session != "" {
			line += " session=" + e.Session
		}
		if e.Tenant != "" {
			line += " tenant=" + e.Tenant
		}
		if e.Attempt != 0 {
			line += fmt.Sprintf(" attempt=%d", e.Attempt)
		}
		if e.Rank != 0 {
			line += fmt.Sprintf(" rank=%d", e.Rank)
		}
		if e.DurMS != 0 {
			line += fmt.Sprintf(" %.1fms", e.DurMS)
		}
		if e.Detail != "" {
			line += " " + e.Detail
		}
		fmt.Fprintln(w, line)
	}
}
