// Command qrserve is the factorization service: a long-running process that
// accepts QR jobs over HTTP and multiplexes them onto a warm VSA runtime —
// a persistent worker pool and, in fleet mode, persistent TCP sessions to a
// set of qrservenode agents, one factorization job per mux channel.
//
// Standalone:
//
//	qrserve -listen 127.0.0.1:7311 -threads 4
//
// Fleet of three processes on one machine (one server + two agents,
// launched and supervised as a group):
//
//	qrserve -listen 127.0.0.1:7311 -launch 2
//
// Submit work:
//
//	curl -s http://127.0.0.1:7311/v1/factorize \
//	     -d '{"m":2048,"n":512,"seed":7,"wait":true}'
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof-addr serves the default mux
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"pulsarqr/internal/obs"
	"pulsarqr/internal/procgroup"
	"pulsarqr/internal/service"
	"pulsarqr/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qrserve: ")
	var (
		listen   = flag.String("listen", "127.0.0.1:7311", "HTTP listen address (use :0 for an ephemeral port)")
		portfile = flag.String("portfile", "", "write the bound HTTP address to this file (for scripts using -listen :0)")
		threads  = flag.Int("threads", 4, "worker threads in the persistent pool")
		queue    = flag.Int("queue", 32, "admission queue capacity (submits beyond it get 429)")
		maxjobs  = flag.Int("maxjobs", 4, "jobs factorizing concurrently")
		results  = flag.Int("results", 64, "terminal jobs kept queryable before eviction")
		launch   = flag.Int("launch", 0, "spawn this many qrservenode agent processes and serve as rank 0 of the fleet")
		peers    = flag.String("peers", "", "join an existing fleet: comma-separated host:port of every rank, this process first (rank 0)")
		nodeBin  = flag.String("qrservenode", "", "path to the qrservenode binary (default: next to qrserve, then $PATH)")
		rdv      = flag.Duration("rendezvous", 30*time.Second, "fleet mesh setup timeout")
		recon    = flag.Duration("reconnect", 0, "survive transient fleet link drops: redial dead connections for up to this long (0 = fail fast; propagated to launched agents)")
		hbeat    = flag.Duration("heartbeat", 0, "probe idle fleet links at this interval and declare silent agents dead (0 = off; requires -reconnect)")
		tracecap = flag.Int("tracecap", 0, "per-traced-job event recorder capacity (0 = default; overflow drops oldest events)")
		pprof    = flag.String("pprof-addr", "", "serve net/http/pprof on this address (off when empty)")
		bstreams = flag.Int("batch-streams", 0, "POST /v1/batch streams admitted concurrently (0 = default 2; arrivals beyond it get 429)")
		bchunk   = flag.Int("batch-chunk", 0, "matrices per batch scheduler chunk (0 = default 64)")
		bcross   = flag.Int("batch-crossover", 0, "batch engine threshold: n <= crossover uses Givens, larger compact-WY (0 = library default)")
		numaPin  = flag.Bool("numa", false, "pin pool workers to NUMA nodes with node-local workspaces (best-effort; propagated to launched agents)")
		ckptDir  = flag.String("checkpoint-dir", "", "durable streaming-session checkpoints (QSC1) live here; sessions survive restarts (empty = memory-only sessions)")
		sstreams = flag.Int("session-streams", 0, "session append streams admitted concurrently (0 = default 2; arrivals beyond it get 429)")
		maxsess  = flag.Int("max-sessions", 0, "streaming sessions registered at once (0 = default 64)")
		tensess  = flag.Int("tenant-sessions", 0, "streaming sessions one tenant may hold (0 = default 8)")
		sidle    = flag.Duration("session-idle", 0, "unload (durable) or evict (memory-only) sessions idle this long (0 = default 10m; negative disables)")
		ckevery  = flag.Int("checkpoint-every", 0, "appends between durable checkpoint writes (0 = every append)")
		autotune = flag.Bool("autotune", false, "plan every job's tree/nb/ib/h/rank-count against the fleet's measured machine model before dispatch (jobs can also opt in per-request with \"autotune\": true)")
		logLvl   = flag.String("log-level", "info", "structured event log level: debug, info, warn, error (debug includes per-job lifecycle chatter)")
		logFmt   = flag.String("log-format", "text", "structured event log format: text or json")
		fcap     = flag.Int("flight-cap", 0, "flight-recorder ring capacity (0 = default 1024; overflow drops oldest)")
	)
	flag.Parse()
	startPprof(*pprof)
	logger, err := buildLogger(*logLvl, *logFmt)
	if err != nil {
		log.Fatal(err)
	}
	cfg := service.Config{
		Threads:              *threads,
		QueueCap:             *queue,
		MaxConcurrent:        *maxjobs,
		ResultCap:            *results,
		TraceCap:             *tracecap,
		BatchStreams:         *bstreams,
		BatchChunk:           *bchunk,
		BatchCrossover:       *bcross,
		PinNUMA:              *numaPin,
		CheckpointDir:        *ckptDir,
		SessionStreams:       *sstreams,
		MaxSessions:          *maxsess,
		MaxSessionsPerTenant: *tensess,
		SessionIdle:          *sidle,
		CheckpointEvery:      *ckevery,
		Autotune:             *autotune,
		Logf:                 log.Printf,
		Obs:                  obs.New(obs.Options{Logger: logger, FlightCap: *fcap}),
	}
	if *logFmt == "json" {
		// JSON mode turns the whole service log structured, not just the
		// event stream — mixed plain/JSON lines would defeat log shippers.
		cfg.Logf = func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) }
	}
	os.Exit(run(*listen, *portfile, cfg, *launch, *peers, *nodeBin, *rdv, *recon, *hbeat))
}

// buildLogger constructs the structured event logger from the -log-level and
// -log-format flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
}

// startPprof serves the net/http/pprof handlers on their own listener; the
// profiling surface never rides the public job API and is off by default.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		log.Printf("pprof on http://%s/debug/pprof/", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("pprof: %v", err)
		}
	}()
}

// run is main minus os.Exit, so the deferred group kill and closes fire on
// every path.
func run(listen, portfile string, cfg service.Config, launch int, peers, nodeBin string, rdv, recon, hbeat time.Duration) int {
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	group := procgroup.New()
	defer group.Kill() // no orphaned agents on any exit path
	var childWG sync.WaitGroup

	var ep transport.Endpoint
	switch {
	case launch > 0:
		e, err := launchFleet(group, &childWG, launch, nodeBin, cfg.Threads, rdv, recon, hbeat, cfg.PinNUMA)
		if err != nil {
			log.Print(err)
			return 1
		}
		ep = e
	case peers != "":
		e, err := transport.DialTCP(transport.TCPConfig{
			Rank:              0,
			Peers:             strings.Split(peers, ","),
			RendezvousTimeout: rdv,
			Reconnect:         recon,
			HeartbeatInterval: hbeat,
			Logf:              log.Printf,
		})
		if err != nil {
			log.Print(err)
			return 1
		}
		ep = e
	}
	if ep != nil {
		defer ep.Close()
	}

	cfg.Ep = ep
	srv, err := service.NewServer(cfg)
	if err != nil {
		log.Print(err)
		return 1
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Printf("listen %s: %v", listen, err)
		srv.Close()
		return 1
	}
	if portfile != "" {
		if err := os.WriteFile(portfile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Printf("portfile: %v", err)
			ln.Close()
			srv.Close()
			return 1
		}
	}
	hs := &http.Server{Handler: srv.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()
	log.Printf("serving on http://%s (%d ranks, %d threads, queue %d, %d concurrent jobs)",
		ln.Addr(), srv.Ranks(), cfg.Threads, cfg.QueueCap, cfg.MaxConcurrent)
	if cfg.CheckpointDir != "" {
		log.Printf("durable sessions: checkpoints in %s", cfg.CheckpointDir)
	}

	select {
	case <-ctx.Done():
		log.Print("shutting down")
	case err := <-httpDone:
		log.Printf("http server: %v", err)
	}
	stopSig()

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	hs.Shutdown(shutCtx)
	cancel()
	srv.Close() // cancels jobs, broadcasts agent shutdown, drains the pool

	// Give launched agents a moment to exit on the shutdown broadcast, then
	// make sure nothing is left behind.
	waited := make(chan struct{})
	go func() { childWG.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		log.Print("agents still running, killing")
	}
	group.Kill()
	return 0
}

// launchFleet reserves ports for a (1+agents)-rank mesh, keeps rank 0's
// listener bound for itself, spawns the agent processes under group
// supervision, and dials the mesh.
func launchFleet(group *procgroup.Group, childWG *sync.WaitGroup, agents int, nodeBin string, threads int, rdv, recon, hbeat time.Duration, numaPin bool) (transport.Endpoint, error) {
	bin, err := findNode(nodeBin)
	if err != nil {
		return nil, err
	}
	total := agents + 1
	addrs := make([]string, total)
	lns := make([]net.Listener, total)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns {
				if l != nil {
					l.Close()
				}
			}
			return nil, fmt.Errorf("reserve port: %w", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	// Rank 0 keeps its listener; agent ports are released for the children
	// to re-bind immediately.
	for _, ln := range lns[1:] {
		ln.Close()
	}
	peerList := strings.Join(addrs, ",")
	log.Printf("launching %d qrservenode agents (%s)", agents, bin)
	for i := 1; i < total; i++ {
		// Resilience settings must agree across the mesh, so the agents
		// inherit the server's flags verbatim.
		cmd := exec.Command(bin,
			"-rank", fmt.Sprint(i),
			"-peers", peerList,
			"-threads", fmt.Sprint(threads),
			"-rendezvous", rdv.String(),
			"-reconnect", recon.String(),
			"-heartbeat", hbeat.String(),
			"-numa="+fmt.Sprint(numaPin),
		)
		out, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		cmd.Stderr = cmd.Stdout
		if err := group.Start(cmd); err != nil {
			return nil, fmt.Errorf("start agent %d: %w", i, err)
		}
		childWG.Add(1)
		go func(i int, cmd *exec.Cmd, sc *bufio.Scanner) {
			defer childWG.Done()
			for sc.Scan() {
				fmt.Printf("[agent %d] %s\n", i, sc.Text())
			}
			if err := cmd.Wait(); err != nil && !group.Killed() {
				log.Printf("agent %d: %v", i, err)
			}
		}(i, cmd, bufio.NewScanner(out))
	}
	return transport.DialTCP(transport.TCPConfig{
		Rank:              0,
		Peers:             addrs,
		Listener:          lns[0],
		RendezvousTimeout: rdv,
		Reconnect:         recon,
		HeartbeatInterval: hbeat,
		Logf:              log.Printf,
	})
}

// findNode locates the qrservenode binary: explicit flag, then the
// directory qrserve runs from, then $PATH.
func findNode(nodeBin string) (string, error) {
	if nodeBin != "" {
		return nodeBin, nil
	}
	if exe, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(exe), "qrservenode")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand, nil
		}
	}
	if p, err := exec.LookPath("qrservenode"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("qrservenode binary not found: build it (go build ./cmd/qrservenode) next to qrserve, put it on $PATH, or pass -qrservenode")
}
