package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pulsarqr/internal/batch"
	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/service"
)

// batchResult is one side of the comparison in the machine-readable output.
type batchResult struct {
	Seconds        float64 `json:"seconds"`
	MatricesPerSec float64 `json:"matrices_per_sec"`
	P50us          float64 `json:"p50_us"`
	P99us          float64 `json:"p99_us"`
}

// batchReport is the BENCH_batch.json shape: enough to reproduce the run and
// compare a fresh host against the committed baseline.
type batchReport struct {
	Description string `json:"description"`
	Host        struct {
		Goos   string `json:"goos"`
		Goarch string `json:"goarch"`
		Cores  int    `json:"cores"`
	} `json:"host"`
	Config struct {
		Count     int `json:"count"`
		Dim       int `json:"dim"`
		Threads   int `json:"threads"`
		Chunk     int `json:"chunk"`
		Crossover int `json:"crossover"`
	} `json:"config"`
	Batch     batchResult `json:"batch_api"`
	Jobs      batchResult `json:"individual_jobs"`
	Scheduler batchResult `json:"scheduler_direct"`
	Speedup   float64     `json:"speedup"`
}

// percentiles reports p50/p99 of a latency sample, in microseconds.
func percentiles(us []float64) (p50, p99 float64) {
	if len(us) == 0 {
		return 0, 0
	}
	sort.Float64s(us)
	p50 = us[len(us)/2]
	i99 := len(us) * 99 / 100
	if i99 >= len(us) {
		i99 = len(us) - 1
	}
	return p50, us[i99]
}

// genMats builds the workload: count random dim×dim matrices, deterministic
// so every side of the comparison sees identical inputs.
func genMats(count, dim int) []*matrix.Mat {
	rng := rand.New(rand.NewSource(42))
	mats := make([]*matrix.Mat, count)
	for i := range mats {
		mats[i] = matrix.NewRand(dim, dim, rng)
	}
	return mats
}

func row(name string, r batchResult) {
	fmt.Printf("  %-16s %8.3fs  %10.0f mat/s  p50 %8.0fµs  p99 %8.0fµs\n",
		name, r.Seconds, r.MatricesPerSec, r.P50us, r.P99us)
}

// batchServe drives one batch of count dim×dim matrices against a live
// qrserve at base (the batch-smoke script's client — curl cannot speak the
// packed binary protocol). The client verifies the trailer checksum against
// every received byte, so success here certifies count and integrity both.
func batchServe(base string, count, dim int) {
	cli := &service.Client{Base: base}
	mats := genMats(count, dim)
	start := time.Now()
	recv := 0
	lat := make([]float64, 0, count)
	tr, err := cli.Batch(mats, func(res batch.Result) error {
		lat = append(lat, float64(time.Since(start).Microseconds()))
		recv++
		return nil
	})
	sec := time.Since(start).Seconds()
	if err != nil {
		log.Fatalf("batch against %s: %v", base, err)
	}
	if tr.Done != count || tr.Shed != 0 || recv != count {
		log.Fatalf("batch accounting: done=%d shed=%d recv=%d want %d/0/%d", tr.Done, tr.Shed, recv, count, count)
	}
	p50, p99 := percentiles(lat)
	row("batch-api", batchResult{sec, float64(count) / sec, p50, p99})
	fmt.Printf("batch ok: %d matrices, trailer checksum verified\n", count)
}

// batchBench answers the question the batch subsystem exists for: how much
// throughput does packing thousands of small factorizations into one request
// buy over dispatching each as its own VSA job? Both sides run against the
// same in-process qrserve over real HTTP on a loopback listener and both
// deliver R to the client, so the only variable is the dispatch path: one
// streamed POST /v1/batch versus count individual POST /v1/factorize + R
// fetches. A third, wire-free row runs the chunk scheduler directly on a warm
// pool — the kernel-bound ceiling the serving path approaches.
//
// Latency semantics differ by design and the report keeps both honest: an
// individual job's latency is submit→R in hand; a batched matrix's latency is
// batch submit→that matrix's result frame, so deep in a stream it includes
// time spent behind earlier matrices. Batch trades per-matrix latency for
// throughput; the table shows both sides of that trade.
func batchBench(count, dim int, out string) {
	threads := runtime.GOMAXPROCS(0)
	fmt.Printf("Batched small-matrix QR vs individual VSA jobs: %d matrices of %dx%d, %d threads\n",
		count, dim, dim, threads)

	srv, err := service.NewServer(service.Config{
		Threads:       threads,
		QueueCap:      64,
		MaxConcurrent: 4,
		ResultCap:     64,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	cli := &service.Client{Base: "http://" + ln.Addr().String()}

	mats := genMats(count, dim)

	// --- one batch request: count matrices down a single stream ---
	start := time.Now()
	recv := 0
	blat := make([]float64, 0, count)
	tr, err := cli.Batch(mats, func(res batch.Result) error {
		blat = append(blat, float64(time.Since(start).Microseconds()))
		recv++
		return nil
	})
	bsec := time.Since(start).Seconds()
	if err != nil {
		log.Fatalf("batch: %v", err)
	}
	if tr.Done != count || tr.Shed != 0 || recv != count {
		log.Fatalf("batch accounting: done=%d shed=%d recv=%d want %d/0/%d", tr.Done, tr.Shed, recv, count, count)
	}
	b50, b99 := percentiles(blat)
	batchAPI := batchResult{bsec, float64(count) / bsec, b50, b99}
	row("batch-api", batchAPI)

	// --- the same matrices as individual jobs, a few streams wide so the
	// baseline is not throttled by round-trip serialization ---
	var next atomic.Int64
	jlat := make([]float64, count)
	var wg sync.WaitGroup
	start = time.Now()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				t0 := time.Now()
				j, _, err := cli.Submit(service.JobSpec{M: dim, N: dim, Data: mats[i].Data}, true)
				if err != nil {
					log.Fatalf("job %d: %v", i, err)
				}
				if _, err := cli.Job(j.ID, true); err != nil {
					log.Fatalf("job %d result: %v", i, err)
				}
				jlat[i] = float64(time.Since(t0).Microseconds())
			}
		}()
	}
	wg.Wait()
	jsec := time.Since(start).Seconds()
	j50, j99 := percentiles(jlat)
	jobs := batchResult{jsec, float64(count) / jsec, j50, j99}
	row("individual-jobs", jobs)

	// --- scheduler straight onto a warm pool: the no-wire ceiling ---
	mats = genMats(count, dim) // the batch stream left client copies intact, but keep runs independent
	pool := pulsar.NewPool(threads, func(int) any { return kernels.NewWorkspace() })
	defer pool.Close()
	sched := batch.NewScheduler(batch.SchedConfig{Pool: pool})
	handed := make([]time.Time, count)
	slat := make([]float64, 0, count)
	idx := 0
	start = time.Now()
	done, serr := sched.Stream(context.Background(),
		func() (*matrix.Mat, error) {
			if idx >= len(mats) {
				return nil, io.EOF
			}
			handed[idx] = time.Now()
			m := mats[idx]
			idx++
			return m, nil
		},
		func(index int, r *matrix.Mat) error {
			slat = append(slat, float64(time.Since(handed[index]).Microseconds()))
			return nil
		})
	ssec := time.Since(start).Seconds()
	if serr != nil || done != count {
		log.Fatalf("scheduler stream: done=%d err=%v", done, serr)
	}
	s50, s99 := percentiles(slat)
	direct := batchResult{ssec, float64(count) / ssec, s50, s99}
	row("scheduler-direct", direct)

	speedup := batchAPI.MatricesPerSec / jobs.MatricesPerSec
	fmt.Printf("  speedup: %.1fx matrices/sec (batch-api vs individual-jobs)\n", speedup)

	if out == "" {
		return
	}
	var rep batchReport
	rep.Description = "Batched small-matrix QR throughput vs individual VSA jobs over the same in-process qrserve (`qrbench -batch`); baseline for the >=10x acceptance bar."
	rep.Host.Goos = runtime.GOOS
	rep.Host.Goarch = runtime.GOARCH
	rep.Host.Cores = runtime.NumCPU()
	rep.Config.Count = count
	rep.Config.Dim = dim
	rep.Config.Threads = threads
	rep.Config.Chunk = 64 // scheduler default
	rep.Config.Crossover = batch.DefaultCrossover
	rep.Batch = batchAPI
	rep.Jobs = jobs
	rep.Scheduler = direct
	rep.Speedup = speedup
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wrote %s\n", out)
}
