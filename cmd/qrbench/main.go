// Command qrbench regenerates the paper's evaluation (Figures 10 and 11,
// the §VI-A baseline comparisons, and the parameter ablations) on the
// calibrated Kraken machine model, plus a real-hardware cross-check on
// this host. See EXPERIMENTS.md for the recorded outputs.
//
//	qrbench -fig 10         # asymptotic scaling, n=4608, 9216 cores
//	qrbench -fig 11         # strong scaling, m=368640 n=4608
//	qrbench -fig baselines  # ScaLAPACK model + generic-runtime profile
//	qrbench -fig ablation   # nb / h / scheduling sweeps
//	qrbench -fig real       # real multicore runs on this host
//	qrbench -batch          # batched small-matrix QR vs individual VSA jobs
//
// The -batch comparison writes BENCH_batch.json via -batch-out; the
// committed copy is the recorded baseline for the batch subsystem's
// throughput claim (see docs/BATCH.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"pulsarqr"
	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/simulate"
	"pulsarqr/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qrbench: ")
	fig := flag.String("fig", "10", "which experiment: 10|11|baselines|ablation|real")
	scale := flag.Float64("scale", 1, "shrink factor for quicker runs (divides m and cores)")
	nodes := flag.Int("nodes", 1, "runtime nodes for -fig real (inter-node traffic is reported per run)")
	trFile := flag.String("trace", "", "with -fig real: record each run's execution trace to <file>-<tree>.jsonl")
	batchRun := flag.Bool("batch", false, "benchmark the batched small-matrix path against individual VSA jobs (ignores -fig)")
	batchCount := flag.Int("batch-count", 10000, "with -batch: matrices per side")
	batchDim := flag.Int("batch-dim", 32, "with -batch: matrix dimension (dim x dim)")
	batchOut := flag.String("batch-out", "", "with -batch: write machine-readable results JSON to this file (e.g. BENCH_batch.json)")
	batchURL := flag.String("batch-url", "", "with -batch: drive one batch against a running qrserve at this base URL instead of the in-process comparison")
	sessRun := flag.Bool("session", false, "benchmark streaming TSQR session appends against full refactorization (ignores -fig)")
	sessCount := flag.Int("session-count", 64, "with -session: appended row blocks")
	sessN := flag.Int("session-n", 64, "with -session: session column count")
	sessBlock := flag.Int("session-block", 64, "with -session: rows per appended block")
	sessOut := flag.String("session-out", "", "with -session: write machine-readable results JSON to this file (e.g. BENCH_sessions.json)")
	sessURL := flag.String("session-url", "", "with -session: run the seed/verify smoke action against a running qrserve at this base URL instead of the in-process comparison")
	sessAct := flag.String("session-act", "seed", "with -session-url: seed (open a durable session and stream blocks) or verify (check the restored session's R bitwise)")
	sessID := flag.String("session-id", "", "with -session-act verify: the session id printed by seed")
	planRun := flag.Bool("plan", false, "run the trace-driven planner offline: plan a job shape against a machine model and print the decision vs the hand-default (ignores -fig)")
	planM := flag.Int("plan-m", 16384, "with -plan: matrix rows")
	planN := flag.Int("plan-n", 512, "with -plan: matrix columns")
	planMach := flag.String("plan-machine", "kraken:16", "with -plan: machine model — kraken:<nodes>, localhost:<nodes>,<cores>, a model JSON file, or a qrserve base URL (its live /v1/machine-model)")
	planTarget := flag.Float64("plan-target-ms", 0, "with -plan: completion target in ms; the planner then picks the fewest ranks that meet it")
	planSweep := flag.Bool("plan-sweep", false, "with -plan: also sweep a grid of shapes and assert the planned config never simulates slower than the default")
	flag.Parse()

	if *planRun {
		planMain(*planM, *planN, *planMach, *planTarget, *planSweep)
		return
	}
	if *sessRun {
		switch {
		case *sessURL != "" && *sessAct == "seed":
			sessionSeed(*sessURL, *sessCount, *sessN, *sessBlock)
		case *sessURL != "" && *sessAct == "verify":
			if *sessID == "" {
				log.Fatal("-session-act verify needs -session-id")
			}
			sessionVerify(*sessURL, *sessID, *sessCount, *sessN, *sessBlock)
		case *sessURL != "":
			log.Fatalf("unknown -session-act %q", *sessAct)
		default:
			sessionBench(*sessCount, *sessN, *sessBlock, *sessOut)
		}
		return
	}
	if *batchRun {
		if *batchURL != "" {
			batchServe(*batchURL, *batchCount, *batchDim)
		} else {
			batchBench(*batchCount, *batchDim, *batchOut)
		}
		return
	}
	switch *fig {
	case "10":
		fig10(*scale)
	case "11":
		fig11(*scale)
	case "baselines":
		baselines(*scale)
	case "ablation":
		ablation(*scale)
	case "weak":
		weak(*scale)
	case "real":
		real(*nodes, *trFile)
	default:
		log.Fatalf("unknown figure %q", *fig)
	}
}

// weak runs the weak-scaling regime §II motivates: rows grow with the
// machine (48 rows per core) at fixed n.
func weak(scale float64) {
	n := 4608
	fmt.Printf("Weak scaling: m = 48·cores, n=%d (simulated)\n", n)
	fmt.Printf("%10s %12s %12s %14s %14s\n", "cores", "m", "rate", "per-core", "generic gap")
	for _, cores := range []int{480, 1920, 3840, 7680, 15360} {
		cores := int(float64(cores) / scale)
		m := 48 * cores
		mach := simulate.Kraken(max(cores/12, 1))
		o := qr.Options{NB: 192, IB: 48, Tree: qr.HierarchicalTree, H: 12}
		w := simulate.Workload{M: m, N: n, Opts: o}
		r := simulate.Run(w, mach, simulate.SystolicProfile)
		g := simulate.Run(w, mach, simulate.GenericProfile)
		fmt.Printf("%10d %12d %9.0f GF %8.2f GF/c %13.1f%%\n",
			mach.TotalCores(), m, r.Gflops, r.Gflops/float64(mach.TotalCores()),
			100*(r.Gflops-g.Gflops)/r.Gflops)
	}
}

// bestOf runs the paper's parameter sweep — nb ∈ {192, 240}, ib = 48 and,
// for the hierarchical tree, h ∈ {6, 12} — and reports the best rate, as
// §VI does ("we report the best performance obtained using these setups").
func bestOf(m, n int, tree qr.TreeKind, mach simulate.Machine) simulate.Result {
	var best simulate.Result
	hs := []int{1}
	if tree == qr.HierarchicalTree {
		hs = []int{6, 12}
	}
	for _, nb := range []int{192, 240} {
		for _, h := range hs {
			w := simulate.Workload{M: m, N: n,
				Opts: qr.Options{NB: nb, IB: 48, Tree: tree, H: h}}
			r := simulate.Run(w, mach, simulate.SystolicProfile)
			if r.Gflops > best.Gflops {
				best = r
			}
		}
	}
	return best
}

func fig10(scale float64) {
	n := 4608
	nodes := int(768 / scale)
	mach := simulate.Kraken(nodes)
	fmt.Printf("Figure 10: asymptotic scaling, n=%d, %d cores (simulated Cray XT5)\n",
		n, mach.TotalCores())
	fmt.Printf("%10s %14s %14s %14s\n", "m", "hierarchical", "binary", "flat")
	for _, m := range []int{23040, 92160, 184320, 368640, 737280} {
		m := int(float64(m) / scale)
		h := bestOf(m, n, qr.HierarchicalTree, mach)
		b := bestOf(m, n, qr.BinaryTree, mach)
		f := bestOf(m, n, qr.FlatTree, mach)
		fmt.Printf("%10d %11.0f GF %11.0f GF %11.0f GF\n", m, h.Gflops, b.Gflops, f.Gflops)
	}
}

func fig11(scale float64) {
	m, n := int(368640/scale), 4608
	fmt.Printf("Figure 11: strong scaling, m=%d n=%d (simulated Cray XT5)\n", m, n)
	fmt.Printf("%10s %14s %14s %14s\n", "cores", "hierarchical", "binary", "flat")
	for _, cores := range []int{480, 1920, 3840, 7680, 15360} {
		cores := int(float64(cores) / scale)
		mach := simulate.Kraken(max(cores/12, 1))
		h := bestOf(m, n, qr.HierarchicalTree, mach)
		b := bestOf(m, n, qr.BinaryTree, mach)
		f := bestOf(m, n, qr.FlatTree, mach)
		fmt.Printf("%10d %11.0f GF %11.0f GF %11.0f GF\n", mach.TotalCores(), h.Gflops, b.Gflops, f.Gflops)
	}
}

func baselines(scale float64) {
	m, n := int(368640/scale), 4608
	fmt.Printf("Section VI-A: baselines, m=%d n=%d (simulated)\n", m, n)
	fmt.Printf("%10s %12s %12s %8s %12s %8s\n",
		"cores", "tree QR", "generic-rt", "gap", "scalapack", "ratio")
	for _, cores := range []int{480, 1920, 3840, 7680, 15360} {
		cores := int(float64(cores) / scale)
		mach := simulate.Kraken(max(cores/12, 1))
		w := simulate.Workload{M: m, N: n,
			Opts: qr.Options{NB: 192, IB: 48, Tree: qr.HierarchicalTree, H: 12}}
		sys := simulate.Run(w, mach, simulate.SystolicProfile)
		gen := simulate.Run(w, mach, simulate.GenericProfile)
		sc := simulate.DefaultScaLAPACK().Gflops(mach, m, n)
		fmt.Printf("%10d %9.0f GF %9.0f GF %7.1f%% %9.0f GF %7.1fx\n",
			mach.TotalCores(), sys.Gflops, gen.Gflops,
			100*(sys.Gflops-gen.Gflops)/sys.Gflops, sc, sys.Gflops/sc)
	}
}

func ablation(scale float64) {
	m, n := int(368640/scale), 4608
	mach := simulate.Kraken(int(768 / scale))
	fmt.Printf("Ablations at m=%d n=%d, %d cores (simulated)\n", m, n, mach.TotalCores())
	fmt.Println("-- tile size nb / domain size h (hierarchical tree) --")
	for _, nb := range []int{192, 240} {
		for _, h := range []int{6, 12} {
			w := simulate.Workload{M: m, N: n,
				Opts: qr.Options{NB: nb, IB: 48, Tree: qr.HierarchicalTree, H: h}}
			r := simulate.Run(w, mach, simulate.SystolicProfile)
			fmt.Printf("  nb=%3d h=%2d: %8.0f GF (util %.2f)\n", nb, h, r.Gflops, r.Utilization)
		}
	}
	fmt.Println("-- boundary policy --")
	for _, bp := range []qr.BoundaryPolicy{qr.ShiftedBoundary, qr.FixedBoundary} {
		w := simulate.Workload{M: m, N: n,
			Opts: qr.Options{NB: 192, IB: 48, Tree: qr.HierarchicalTree, H: 12, Boundary: bp}}
		r := simulate.Run(w, mach, simulate.SystolicProfile)
		fmt.Printf("  %-8v: %8.0f GF\n", bp, r.Gflops)
	}
	fmt.Println("-- second-level (inter-domain) tree --")
	for _, it := range []qr.InterTree{qr.BinaryInter, qr.FlatInter} {
		w := simulate.Workload{M: m, N: n,
			Opts: qr.Options{NB: 192, IB: 48, Tree: qr.HierarchicalTree, H: 12, Inter: it}}
		r := simulate.Run(w, mach, simulate.SystolicProfile)
		fmt.Printf("  %-12v: %8.0f GF\n", it, r.Gflops)
	}
}

// kernelFlops tallies the floating-point work the tile algorithm actually
// performs — each kernel invocation the reduction plan implies, priced by
// the kernels.Flops* models. It exceeds the 2n²(m−n/3) Householder count of
// FlopsQR because the tree reduction redundantly re-triangularizes domain
// tops. Valid for m, n multiples of nb (the shapes real() uses), where
// every tile is square nb×nb.
func kernelFlops(m, n, nb, ib int, tree qr.TreeKind, h int) float64 {
	mt, nt := m/nb, n/nb
	o := qr.Options{NB: nb, IB: ib, Tree: tree, H: h}
	var fl float64
	for j := 0; j < nt; j++ {
		c := qr.Plan(j, mt, o).Count(nt - j - 1)
		fl += float64(c.Geqrt)*kernels.FlopsGeqrt(nb, nb) +
			float64(c.Ormqr)*kernels.FlopsOrmqr(nb, nb, nb) +
			float64(c.Tsqrt)*kernels.FlopsTsqrt(nb, nb) +
			float64(c.Tsmqr)*kernels.FlopsTsmqr(nb, nb, nb) +
			float64(c.Ttqrt)*kernels.FlopsTtqrt(nb) +
			float64(c.Ttmqr)*kernels.FlopsTtmqr(nb, nb)
	}
	return fl
}

// real runs small factorizations on this host's cores, cross-checking that
// the simulated tree ordering holds on real hardware for tall-skinny
// shapes. Each run reports two rates: "QR" prices the run at the classical
// 2n²(m−n/3) Householder count (comparable across algorithms), "kernel"
// at the flops the tile kernels actually executed (achieved kernel
// throughput). Each run also reports the traffic the transport layer moved
// between the runtime's nodes (zero when nodes == 1: everything is
// intra-node).
func real(nodes int, trFile string) {
	if nodes < 1 {
		nodes = 1
	}
	threads := runtime.GOMAXPROCS(0) / nodes
	if threads < 1 {
		threads = 1
	}
	m, n, nb, ib := 6144, 512, 128, 32
	fmt.Printf("Real runs on this host: m=%d n=%d nb=%d ib=%d nodes=%d threads=%d\n",
		m, n, nb, ib, nodes, threads)
	for _, tc := range []struct {
		name string
		tree pulsarqr.Tree
		h    int
	}{
		{"hierarchical", pulsarqr.Hierarchical, 6},
		{"binary", pulsarqr.Binary, 1},
		{"flat", pulsarqr.Flat, 1},
	} {
		a := pulsarqr.RandomMatrix(m, n, 7)
		var f *pulsarqr.Factorization
		var err error
		start := time.Now()
		if trFile != "" {
			f, err = factorTraced(a, qr.Options{NB: nb, IB: ib, Tree: tc.tree, H: tc.h},
				qr.RunConfig{Nodes: nodes, Threads: threads}, traceName(trFile, tc.name))
		} else {
			opts := pulsarqr.Options{NB: nb, IB: ib, Tree: tc.tree, H: tc.h,
				Nodes: nodes, Threads: threads}
			f, err = pulsarqr.Factor(a, opts)
		}
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		fmt.Printf("  %-13s %8.3fs  QR %7.3f Gflop/s  kernel %7.3f Gflop/s  residual %.2e  %6d msgs %9d bytes\n",
			tc.name, el.Seconds(), kernels.FlopsQR(m, n)/1e9/el.Seconds(),
			kernelFlops(m, n, nb, ib, tc.tree, tc.h)/1e9/el.Seconds(), f.Residual(a),
			f.Stats.Messages, f.Stats.Bytes)
	}
}

// traceName derives one run's shard path from the -trace base name:
// "out.jsonl" + "flat" -> "out-flat.jsonl".
func traceName(base, tree string) string {
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "-" + tree + ext
}

// factorTraced runs one factorization through the internal qr layer with a
// trace recorder installed and writes its shard as JSONL.
func factorTraced(a *pulsarqr.Matrix, o qr.Options, rc qr.RunConfig, path string) (*pulsarqr.Factorization, error) {
	rec := trace.NewRecorder()
	rc.FireHook = rec.Hook()
	rc.WaitHook = rec.WaitHook()
	rc.CommHook = rec.CommHook()
	f, err := qr.FactorizeVSA(matrix.FromDense(a, o.NB), nil, o, rc)
	if err != nil {
		return nil, err
	}
	fh, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	sh := rec.Shard(0)
	if err := trace.WriteShards(fh, sh); err != nil {
		fh.Close()
		return nil, err
	}
	if err := fh.Close(); err != nil {
		return nil, err
	}
	fmt.Printf("  %-13s trace: %d events -> %s (dropped %d)\n", "", len(sh.Events), path, sh.Drops)
	return f, nil
}
