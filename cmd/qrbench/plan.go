package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	"pulsarqr/internal/plan"
	"pulsarqr/internal/simulate"
)

// planMain is the qrbench -plan mode: the same candidate sweep qrserve runs
// at dispatch with -autotune, exercised offline against any machine model —
// canned (kraken/localhost), a saved calibration file, or a live server's
// GET /v1/machine-model.
func planMain(m, n int, machSpec string, targetMS float64, sweep bool) {
	mach, err := loadPlanMachine(machSpec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Machine: %d nodes x %d cores, %.3g Gflop/s/core, alpha=%.3gs beta=%.3gs/B\n",
		mach.Nodes, mach.CoresPerNode, mach.CoreGflops, mach.AlphaInter, mach.BetaInter)

	d, err := plan.Decide(plan.Spec{M: m, N: n, TargetMS: targetMS}, mach, plan.Config{})
	if err != nil {
		log.Fatal(err)
	}
	printDecision(d)

	if sweep {
		planSweep(mach)
	}
}

// planSweep asserts the tentpole's core property on a shape grid: the
// planned configuration never simulates slower than the hand-default. Any
// violation exits non-zero, so the smoke script can gate on it.
func planSweep(mach simulate.Machine) {
	shapes := []struct{ m, n int }{
		{2048, 128}, {8192, 256}, {16384, 512}, {65536, 512},
		{4096, 4096}, {16384, 2048}, {131072, 1024},
	}
	fmt.Printf("\nSweep: planned vs default on %d shapes\n", len(shapes))
	fmt.Printf("%10s %7s  %-34s %12s %12s %9s\n", "m", "n", "chosen", "planned ms", "default ms", "speedup")
	bad := 0
	for _, sh := range shapes {
		d, err := plan.Decide(plan.Spec{M: sh.m, N: sh.n}, mach, plan.Config{})
		if err != nil {
			log.Fatalf("%dx%d: %v", sh.m, sh.n, err)
		}
		mark := ""
		if d.Simulated > 0 && d.Choice.PredictedMS > d.Default.PredictedMS*(1+1e-9) {
			mark = "  SLOWER THAN DEFAULT"
			bad++
		}
		fmt.Printf("%10d %7d  %-34s %12.3f %12.3f %8.2fx%s\n",
			sh.m, sh.n, d.Choice.Describe(), d.Choice.PredictedMS, d.Default.PredictedMS,
			d.SpeedupVsDefault, mark)
	}
	if bad > 0 {
		log.Fatalf("planner chose a slower-than-default config on %d shapes", bad)
	}
	fmt.Println("sweep ok: planned config never slower than the hand-default")
}

func printDecision(d plan.Decision) {
	fmt.Printf("\nPlan for %dx%d (%d candidates, %d simulated, %d over budget):\n",
		d.M, d.N, d.Considered, d.Simulated, d.Skipped)
	fmt.Printf("  chosen:  %-34s predicted %10.3f ms  %8.1f Gflop/s  util %4.1f%%\n",
		d.Choice.Describe(), d.Choice.PredictedMS, d.Choice.PredictedGflops, 100*d.Choice.Utilization)
	fmt.Printf("  default: %-34s predicted %10.3f ms  %8.1f Gflop/s  util %4.1f%%\n",
		d.Default.Describe(), d.Default.PredictedMS, d.Default.PredictedGflops, 100*d.Default.Utilization)
	fmt.Printf("  speedup vs default: %.2fx\n", d.SpeedupVsDefault)
	fmt.Printf("  rationale: %s\n", d.Rationale)
	if len(d.Ranked) > 1 {
		fmt.Printf("  runners-up:\n")
		for _, c := range d.Ranked[1:] {
			fmt.Printf("    %-34s %10.3f ms  %8.1f Gflop/s\n", c.Describe(), c.PredictedMS, c.PredictedGflops)
		}
	}
}

// loadPlanMachine parses the -plan-machine spec.
func loadPlanMachine(spec string) (simulate.Machine, error) {
	switch {
	case strings.HasPrefix(spec, "kraken:"):
		nodes, err := strconv.Atoi(strings.TrimPrefix(spec, "kraken:"))
		if err != nil || nodes < 1 {
			return simulate.Machine{}, fmt.Errorf("bad -plan-machine %q (want kraken:<nodes>)", spec)
		}
		return simulate.Kraken(nodes), nil
	case strings.HasPrefix(spec, "localhost:"):
		parts := strings.Split(strings.TrimPrefix(spec, "localhost:"), ",")
		if len(parts) != 2 {
			return simulate.Machine{}, fmt.Errorf("bad -plan-machine %q (want localhost:<nodes>,<cores>)", spec)
		}
		nodes, err1 := strconv.Atoi(parts[0])
		cores, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || nodes < 1 || cores < 1 {
			return simulate.Machine{}, fmt.Errorf("bad -plan-machine %q (want localhost:<nodes>,<cores>)", spec)
		}
		return simulate.LocalHost(nodes, cores), nil
	case strings.HasPrefix(spec, "http://"), strings.HasPrefix(spec, "https://"):
		resp, err := http.Get(strings.TrimRight(spec, "/") + "/v1/machine-model")
		if err != nil {
			return simulate.Machine{}, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			return simulate.Machine{}, err
		}
		return simulate.MachineFromModelResponse(data)
	default:
		data, err := os.ReadFile(spec)
		if err != nil {
			return simulate.Machine{}, fmt.Errorf("-plan-machine %q: not kraken:/localhost:/URL and %w", spec, err)
		}
		return simulate.MachineFromModelResponse(data)
	}
}
