package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/service"
	"pulsarqr/internal/session"
)

// sessionReport is the BENCH_sessions.json shape: the streaming-session
// claim in numbers — appending a block to a live session costs O(log P) tile
// kernels, refactorizing from scratch costs O(P).
type sessionReport struct {
	Description string `json:"description"`
	Host        struct {
		Goos   string `json:"goos"`
		Goarch string `json:"goarch"`
		Cores  int    `json:"cores"`
	} `json:"host"`
	Config struct {
		Appends   int `json:"appends"`
		N         int `json:"n"`
		BlockRows int `json:"block_rows"`
		Threads   int `json:"threads"`
	} `json:"config"`
	Streaming     batchResult `json:"streaming_api"`
	EngineDirect  batchResult `json:"engine_direct"`
	Refactorize   batchResult `json:"full_refactorize"`
	Speedup       float64     `json:"speedup"`
	FinalRowCount int         `json:"final_rows"`
}

// sessionWorkload builds the deterministic append stream shared by every
// side of the comparison (and by the seed/verify smoke actions, so a
// restarted server can be checked bitwise against a local replay).
func sessionWorkload(count, n, blockRows int) []*matrix.Mat {
	rng := rand.New(rand.NewSource(4242))
	blocks := make([]*matrix.Mat, count)
	for i := range blocks {
		blocks[i] = matrix.NewRand(blockRows, n, rng)
	}
	return blocks
}

// replayR folds the first count blocks of the deterministic workload through
// a local sequential Streamer — bitwise what any server computes for the
// same prefix, pipelined or not.
func replayR(count, n, blockRows int) *matrix.Mat {
	blocks := sessionWorkload(count, n, blockRows)
	str, err := qr.NewStreamer(n, 0, qr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ws := kernels.NewWorkspace()
	for _, b := range blocks {
		nd, err := str.LeafReduce(ws, b, nil)
		if err != nil {
			log.Fatal(err)
		}
		str.Commit(ws, nd)
	}
	return str.Current(ws, nil).R
}

// sessionSeed is the smoke script's first half: open a session on a running
// qrserve and stream the first count workload blocks into it. The printed id
// is the handle the verify action (and the kill -9 between them) pivots on.
func sessionSeed(base string, count, n, blockRows int) {
	cli := &service.Client{Base: base}
	info, err := cli.OpenSession(service.SessionSpec{Tenant: "smoke", N: n, CheckpointEvery: 1})
	if err != nil {
		log.Fatalf("open session against %s: %v", base, err)
	}
	blocks := sessionWorkload(count, n, blockRows)
	tr, err := cli.SessionAppend(info.ID, n, blocks, nil, nil)
	if err != nil {
		log.Fatalf("append: %v", err)
	}
	if tr.Done != count || tr.Shed != 0 {
		log.Fatalf("append accounting: done=%d shed=%d, want %d/0", tr.Done, tr.Shed, count)
	}
	fmt.Printf("session-id %s\n", info.ID)
	fmt.Printf("session seeded: %d appends, %d rows\n", count, count*blockRows)
}

// sessionVerify is the smoke script's second half: after a restart, the
// session must still exist, report the seeded row count, and serve an R
// bitwise equal to a local sequential replay of the same blocks.
func sessionVerify(base, id string, count, n, blockRows int) {
	cli := &service.Client{Base: base}
	info, err := cli.SessionInfo(id)
	if err != nil {
		log.Fatalf("session %s after restart: %v", id, err)
	}
	if info.Blocks != int64(count) || info.Rows != int64(count*blockRows) {
		log.Fatalf("restored session reports %d blocks / %d rows, want %d / %d",
			info.Blocks, info.Rows, count, count*blockRows)
	}
	got, err := cli.SessionR(id, n)
	if err != nil {
		log.Fatalf("fetch restored R: %v", err)
	}
	want := replayR(count, n, blockRows)
	if d := matrix.MaxAbsDiff(got.R, want); d != 0 {
		log.Fatalf("restored R differs from local replay by %g (want bitwise equality)", d)
	}
	fmt.Printf("session verify ok: %d appends restored, R bitwise equal\n", count)
}

// sessionBench answers the question streaming sessions exist for: what does
// keeping the reduction spine warm buy over refactorizing from scratch on
// every new block of rows? Three rows:
//
//   - streaming-api: appends over one full-duplex POST /v1/sessions/{id}/append
//     against an in-process qrserve on a loopback listener, an updated R back
//     per block. Latency is per committed update (inter-arrival on the reply
//     stream), so it includes wire, pipelining and flush costs.
//   - engine-direct: the same appends straight into a Streamer on this
//     goroutine — the no-wire ceiling, O(log P) tile kernels per append.
//   - full-refactorize: the alternative the session replaces — after every
//     block, factorize all rows received so far from scratch (O(P) kernels
//     per append, quadratic total work).
func sessionBench(count, n, blockRows int, out string) {
	threads := runtime.GOMAXPROCS(0)
	fmt.Printf("Streaming TSQR sessions vs full refactorization: %d appends of %dx%d, %d threads\n",
		count, blockRows, n, threads)

	blocks := sessionWorkload(count, n, blockRows)

	// --- streaming over HTTP: one session, one append stream ---
	srv, err := service.NewServer(service.Config{Threads: threads, Logf: func(string, ...any) {}})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	cli := &service.Client{Base: "http://" + ln.Addr().String()}
	info, err := cli.OpenSession(service.SessionSpec{N: n})
	if err != nil {
		log.Fatal(err)
	}
	lat := make([]float64, 0, count)
	last := time.Now()
	start := last
	tr, err := cli.SessionAppend(info.ID, n, blocks, nil, func(u session.Update) error {
		now := time.Now()
		lat = append(lat, float64(now.Sub(last).Microseconds()))
		last = now
		return nil
	})
	ssec := time.Since(start).Seconds()
	if err != nil {
		log.Fatalf("session append: %v", err)
	}
	if tr.Done != count || tr.Shed != 0 {
		log.Fatalf("append accounting: done=%d shed=%d, want %d/0", tr.Done, tr.Shed, count)
	}
	s50, s99 := percentiles(lat)
	streaming := batchResult{ssec, float64(count) / ssec, s50, s99}
	row("streaming-api", streaming)

	// --- engine direct: the no-wire ceiling ---
	str, err := qr.NewStreamer(n, 0, qr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ws := kernels.NewWorkspace()
	elat := make([]float64, 0, count)
	var cur *qr.StreamNode
	start = time.Now()
	for _, b := range sessionWorkload(count, n, blockRows) {
		t0 := time.Now()
		nd, err := str.LeafReduce(ws, b, nil)
		if err != nil {
			log.Fatal(err)
		}
		str.Commit(ws, nd)
		cur = str.Current(ws, cur)
		elat = append(elat, float64(time.Since(t0).Microseconds()))
	}
	esec := time.Since(start).Seconds()
	e50, e99 := percentiles(elat)
	engine := batchResult{esec, float64(count) / esec, e50, e99}
	row("engine-direct", engine)

	// --- the naive alternative: refactorize everything per append ---
	stacked := matrix.New(count*blockRows, n)
	rlat := make([]float64, 0, count)
	start = time.Now()
	for i, b := range sessionWorkload(count, n, blockRows) {
		stacked.View(i*blockRows, 0, blockRows, n).CopyFrom(b)
		t0 := time.Now()
		a := stacked.View(0, 0, (i+1)*blockRows, n).Clone()
		if _, err := qr.Factorize(matrix.FromDense(a, 64), nil, qr.Options{}); err != nil {
			log.Fatal(err)
		}
		rlat = append(rlat, float64(time.Since(t0).Microseconds()))
	}
	rsec := time.Since(start).Seconds()
	r50, r99 := percentiles(rlat)
	refact := batchResult{rsec, float64(count) / rsec, r50, r99}
	row("full-refactorize", refact)

	speedup := streaming.MatricesPerSec / refact.MatricesPerSec
	fmt.Printf("  speedup: %.1fx appends/sec (streaming-api vs full-refactorize)\n", speedup)

	if out == "" {
		return
	}
	var rep sessionReport
	rep.Description = "Streaming TSQR session appends vs from-scratch refactorization per block (`qrbench -session`); per-append latency p50/p99 in microseconds."
	rep.Host.Goos = runtime.GOOS
	rep.Host.Goarch = runtime.GOARCH
	rep.Host.Cores = runtime.NumCPU()
	rep.Config.Appends = count
	rep.Config.N = n
	rep.Config.BlockRows = blockRows
	rep.Config.Threads = threads
	rep.Streaming = streaming
	rep.EngineDirect = engine
	rep.Refactorize = refact
	rep.Speedup = speedup
	rep.FinalRowCount = count * blockRows
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wrote %s\n", out)
}
