package pulsarqr

import (
	"math"
	"testing"

	"pulsarqr/internal/matrix"
)

func TestFactorEnginesAgree(t *testing.T) {
	a := RandomMatrix(90, 30, 1)
	opts := DefaultOptions()
	opts.NB, opts.IB, opts.H = 16, 4, 3
	var rs []*Matrix
	for _, e := range []Engine{Sequential, Systolic, TaskSuperscalar} {
		opts.Engine = e
		f, err := Factor(a, opts)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if res := f.Residual(a); res > 1e-13 {
			t.Fatalf("%v: residual %v", e, res)
		}
		rs = append(rs, f.R())
	}
	for k := 1; k < len(rs); k++ {
		if d := matrix.MaxAbsDiff(rs[0], rs[k]); d != 0 {
			t.Fatalf("engine %d produced different R (diff %v)", k, d)
		}
	}
}

func TestDominoEngineMatchesFlat(t *testing.T) {
	a := RandomMatrix(90, 30, 1)
	opts := DefaultOptions()
	opts.NB, opts.IB, opts.Tree = 16, 4, Flat
	var rs []*Matrix
	for _, e := range []Engine{Sequential, Domino} {
		opts.Engine = e
		f, err := Factor(a, opts)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if res := f.Residual(a); res > 1e-13 {
			t.Fatalf("%v: residual %v", e, res)
		}
		rs = append(rs, f.R())
	}
	for k := 1; k < len(rs); k++ {
		if d := matrix.MaxAbsDiff(rs[0], rs[k]); d != 0 {
			t.Fatalf("engine %d produced different R (diff %v)", k, d)
		}
	}
}

func TestFactorDoesNotMutateInput(t *testing.T) {
	a := RandomMatrix(40, 16, 2)
	orig := a.Clone()
	opts := DefaultOptions()
	opts.NB, opts.IB = 8, 4
	if _, err := Factor(a, opts); err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(a, orig) != 0 {
		t.Fatal("Factor mutated its input")
	}
}

func TestLeastSquaresAPI(t *testing.T) {
	a := RandomMatrix(120, 20, 3)
	xTrue := RandomMatrix(20, 2, 4)
	b := a.Mul(xTrue)
	opts := DefaultOptions()
	opts.NB, opts.IB, opts.Nodes, opts.Threads = 16, 8, 2, 2
	x, err := LeastSquares(a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(x, xTrue); d > 1e-10 {
		t.Fatalf("least squares off by %v", d)
	}
}

func TestAllTreesThroughPublicAPI(t *testing.T) {
	a := RandomMatrix(64, 24, 5)
	for _, tree := range []Tree{Hierarchical, Flat, Binary} {
		opts := DefaultOptions()
		opts.NB, opts.IB, opts.Tree = 8, 4, tree
		f, err := Factor(a, opts)
		if err != nil {
			t.Fatalf("%v: %v", tree, err)
		}
		if res := f.Residual(a); res > 1e-13 {
			t.Fatalf("%v: residual %v", tree, res)
		}
		// R has positive-magnitude diagonal entries (nonsingular input).
		r := f.R()
		for i := 0; i < r.Rows; i++ {
			if math.Abs(r.At(i, i)) < 1e-12 {
				t.Fatalf("%v: tiny diagonal at %d", tree, i)
			}
		}
	}
}

func TestFactorWithRHSRequiresB(t *testing.T) {
	if _, err := FactorWithRHS(RandomMatrix(8, 4, 6), nil, DefaultOptions()); err == nil {
		t.Fatal("nil rhs must error")
	}
}

func TestWideMatrixRejected(t *testing.T) {
	if _, err := Factor(RandomMatrix(4, 8, 7), DefaultOptions()); err == nil {
		t.Fatal("wide matrix must be rejected")
	}
}

func TestDefaultsFilled(t *testing.T) {
	// Zero-valued options must still work.
	a := RandomMatrix(70, 10, 8)
	f, err := Factor(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res := f.Residual(a); res > 1e-13 {
		t.Fatalf("residual %v", res)
	}
}

func TestCholeskyPublicAPI(t *testing.T) {
	n := 48
	b := RandomMatrix(n, n, 9)
	a := b.Transpose().Mul(b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	opts := DefaultOptions()
	opts.NB, opts.Nodes, opts.Threads = 16, 2, 2
	f, err := Cholesky(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res := f.Residual(a); res > 1e-13 {
		t.Fatalf("residual %v", res)
	}
	opts.Engine = Sequential
	fs, err := Cholesky(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(f.L(), fs.L()); d != 0 {
		t.Fatalf("engines disagree by %v", d)
	}
}
