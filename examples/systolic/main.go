// Systolic: a non-QR application of the runtime, demonstrating that the
// Virtual Systolic Array is a general programming model (one of the
// paper's stated goals: "reuse of the PULSAR runtime across multiple
// application domains").
//
// This program builds the classical systolic FIR filter of Kung &
// Leiserson: K cells in a line, each holding one tap weight. Samples
// stream through the array; each inter-cell sample channel carries one
// initial token (a dataflow delay register), so cell k multiplies its
// weight with the sample delayed by k steps and the accumulator that
// emerges from the last cell is the full convolution
//
//	y[t] = Σ_k w[k] · x[t−k].
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"pulsarqr/vsa"
)

func main() {
	weights := []float64{0.5, -0.25, 0.125, 0.0625, -0.5}
	const samples = 64
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, samples)
	for i := range xs {
		xs[i] = 2*rng.Float64() - 1
	}

	k := len(weights)
	s := vsa.New(vsa.Config{
		Nodes: 2, ThreadsPerNode: 2,
		Map: func(t vsa.Tuple) (int, int) { return t.At(0) % 2, t.At(0) % 2 },
	})
	// One VDP per tap; fires once per sample.
	for c := 0; c < k; c++ {
		w := weights[c]
		s.NewVDP(vsa.NewTuple(c), samples, func(v *vsa.VDP) {
			x := v.Pop(0).Data.([]float64)[0]
			acc := v.Pop(1).Data.([]float64)[0]
			v.Push(0, vsa.NewPacket([]float64{x}))
			v.Push(1, vsa.NewPacket([]float64{acc + w*x}))
		}, "tap", 2, 2)
	}
	for c := 0; c+1 < k; c++ {
		s.Connect(vsa.NewTuple(c), 0, vsa.NewTuple(c+1), 0, 16, false) // samples
		s.Connect(vsa.NewTuple(c), 1, vsa.NewTuple(c+1), 1, 16, false) // accumulators
		// The delay register: one initial zero token on the sample path.
		s.Seed(vsa.NewTuple(c+1), 0, vsa.NewPacket([]float64{0}))
	}
	s.Input(vsa.NewTuple(0), 0, 16)
	s.Input(vsa.NewTuple(0), 1, 16)
	s.Output(vsa.NewTuple(k-1), 0, 16) // drained samples
	s.Output(vsa.NewTuple(k-1), 1, 16) // filter output

	for _, x := range xs {
		s.Inject(vsa.NewTuple(0), 0, vsa.NewPacket([]float64{x}))
		s.Inject(vsa.NewTuple(0), 1, vsa.NewPacket([]float64{0}))
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}

	out := s.Collected(vsa.NewTuple(k-1), 1)
	fmt.Printf("filtered %d samples through %d systolic taps on 2 nodes\n", len(out), k)

	// Verify against the direct convolution.
	var maxErr float64
	for t, p := range out {
		want := 0.0
		for c, w := range weights {
			if t-c >= 0 {
				want += w * xs[t-c]
			}
		}
		got := p.Data.([]float64)[0]
		if e := math.Abs(got - want); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("max deviation from direct convolution: %.3e\n", maxErr)
	if maxErr > 1e-12 {
		log.Fatal("systolic filter disagrees with direct convolution")
	}
	fmt.Println("OK: the systolic array computes the exact convolution")
	fmt.Printf("first outputs: %.4f %.4f %.4f %.4f\n",
		out[0].Data.([]float64)[0], out[1].Data.([]float64)[0],
		out[2].Data.([]float64)[0], out[3].Data.([]float64)[0])
}
