// Least squares: the paper's motivating application. Fit a degree-7
// polynomial to 20,000 noisy samples — a massively overdetermined system
// whose normal-equations condition number would be squared, so the
// QR route is the numerically sound one.
//
// The design matrix is tall-and-skinny (20000×8 before tiling), exactly
// the shape whose limited panel parallelism motivates the hierarchical
// reduction tree.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"pulsarqr"
)

func main() {
	const (
		samples = 20480
		degree  = 7
	)
	// True coefficients of the polynomial we will try to recover.
	truth := []float64{0.5, -1.25, 0.75, 2.0, -0.5, 0.125, -1.0, 0.25}

	rng := rand.New(rand.NewSource(3))
	a := pulsarqr.NewMatrix(samples, degree+1)
	b := pulsarqr.NewMatrix(samples, 1)
	for i := 0; i < samples; i++ {
		x := 2*rng.Float64() - 1
		pow := 1.0
		y := 0.0
		for d := 0; d <= degree; d++ {
			a.Set(i, d, pow)
			y += truth[d] * pow
			pow *= x
		}
		b.Set(i, 0, y+0.01*rng.NormFloat64()) // measurement noise
	}

	opts := pulsarqr.DefaultOptions()
	opts.NB, opts.IB, opts.H = 128, 32, 6
	opts.Threads = 4
	// The right-hand side rides along through the factorization: QᵀB is
	// computed inside the systolic array, no second pass needed.
	f, err := pulsarqr.FactorWithRHS(a, b, opts)
	if err != nil {
		log.Fatal(err)
	}
	x := f.SolveFromQTB()

	fmt.Println("coefficient   recovered     true        error")
	var maxErr float64
	for d := 0; d <= degree; d++ {
		e := math.Abs(x.At(d, 0) - truth[d])
		if e > maxErr {
			maxErr = e
		}
		fmt.Printf("   x^%d      %10.6f  %10.6f  %9.2e\n", d, x.At(d, 0), truth[d], e)
	}
	res := a.Mul(x).Sub(b)
	fmt.Printf("residual ‖Ax−b‖_F = %.4f over %d samples (noise level 0.01)\n",
		res.FrobNorm(), samples)
	if maxErr > 0.05 {
		log.Fatalf("coefficients not recovered (max error %v)", maxErr)
	}
	fmt.Println("OK: coefficients recovered to within the noise floor")
}
