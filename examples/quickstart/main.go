// Quickstart: factor a tall-skinny matrix on the 3D virtual systolic
// array, inspect R, and verify the factorization.
package main

import (
	"fmt"
	"log"

	"pulsarqr"
)

func main() {
	// A 2048×192 tall-skinny matrix: 32×3 tiles at the default nb=64.
	a := pulsarqr.RandomMatrix(2048, 192, 1)

	opts := pulsarqr.DefaultOptions() // hierarchical tree, systolic engine
	opts.Threads = 4

	f, err := pulsarqr.Factor(a, opts)
	if err != nil {
		log.Fatal(err)
	}

	r := f.R()
	fmt.Printf("factored %dx%d: R is %dx%d upper triangular\n", a.Rows, a.Cols, r.Rows, r.Cols)
	fmt.Printf("R(0,0..4) = %.4f %.4f %.4f %.4f %.4f\n",
		r.At(0, 0), r.At(0, 1), r.At(0, 2), r.At(0, 3), r.At(0, 4))

	// Cheap correctness check without forming Q: AᵀA must equal RᵀR.
	fmt.Printf("relative residual ‖AᵀA − RᵀR‖/‖AᵀA‖ = %.3e\n", f.Residual(a))

	// Q is available implicitly: applying Qᵀ then Q must round-trip.
	b := pulsarqr.RandomMatrix(2048, 1, 2)
	x, err := pulsarqr.LeastSquares(a, b, opts)
	if err != nil {
		log.Fatal(err)
	}
	grad := a.Transpose().Mul(a.Mul(x).Sub(b))
	fmt.Printf("least-squares gradient ‖Aᵀ(Ax−b)‖_max = %.3e (zero ⇒ optimal)\n", grad.MaxAbs())
}
