// Cannon: Cannon's algorithm for dense matrix multiplication on the
// virtual systolic array — the textbook 2D systolic computation (after the
// FIR filter, the second classic of Kung & Leiserson's repertoire) and a
// demonstration that the runtime handles multi-firing VDPs with cyclic
// (toroidal) channel topologies.
//
// A √p×√p grid of VDPs each owns one tile of C. The pre-skewed tiles of A
// circulate left and the tiles of B circulate up; after √p firings each
// VDP has accumulated its full C tile.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pulsarqr/internal/blas"
	"pulsarqr/internal/matrix"
	"pulsarqr/vsa"
)

func main() {
	const p = 4   // grid dimension (p×p VDPs)
	const nb = 32 // tile size
	n := p * nb

	rng := rand.New(rand.NewSource(5))
	a := matrix.NewRand(n, n, rng)
	b := matrix.NewRand(n, n, rng)

	ta := matrix.FromDense(a, nb)
	tb := matrix.FromDense(b, nb)

	s := vsa.New(vsa.Config{Nodes: 2, ThreadsPerNode: 2,
		Map: func(t vsa.Tuple) (int, int) { return t.At(0) % 2, t.At(1) % 2 }})

	type cell struct{ c *matrix.Mat }
	cells := make([][]*cell, p)
	for i := 0; i < p; i++ {
		cells[i] = make([]*cell, p)
		for j := 0; j < p; j++ {
			cl := &cell{c: matrix.New(nb, nb)}
			cells[i][j] = cl
			v := s.NewVDP(vsa.NewTuple(i, j), p, func(v *vsa.VDP) {
				ap, bp := v.Pop(0), v.Pop(1)
				at, bt := ap.Tile(), bp.Tile()
				blas.Dgemm(false, false, nb, nb, nb, 1,
					at.Data, at.LD, bt.Data, bt.LD, 1, cl.c.Data, cl.c.LD)
				// Circulate: A moves left, B moves up (toroidally).
				v.Push(0, ap)
				v.Push(1, bp)
			}, "mm", 2, 2)
			_ = v
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			left := (j - 1 + p) % p
			up := (i - 1 + p) % p
			s.Connect(vsa.NewTuple(i, j), 0, vsa.NewTuple(i, left), 0, 8*nb*nb+16, false)
			s.Connect(vsa.NewTuple(i, j), 1, vsa.NewTuple(up, j), 1, 8*nb*nb+16, false)
		}
	}
	// Cannon's pre-skew: cell (i,j) starts with A(i, i+j) and B(i+j, j).
	// Seed the tiles as initial tokens on each cell's input channels: tile
	// X destined for cell (i,j) is seeded there directly.
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			s.Seed(vsa.NewTuple(i, j), 0, vsa.NewPacket(ta.Tile(i, (i+j)%p).Clone()))
			s.Seed(vsa.NewTuple(i, j), 1, vsa.NewPacket(tb.Tile((i+j)%p, j).Clone()))
		}
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}

	// Assemble and verify against the straightforward product.
	got := matrix.New(n, n)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			got.View(i*nb, j*nb, nb, nb).CopyFrom(cells[i][j].c)
		}
	}
	want := a.Mul(b)
	diff := matrix.MaxAbsDiff(got, want)
	fmt.Printf("Cannon's algorithm on a %dx%d systolic grid, %dx%d matrices\n", p, p, n, n)
	fmt.Printf("max deviation from the direct product: %.3e\n", diff)
	if diff > 1e-10 {
		log.Fatal("systolic product disagrees")
	}
	fmt.Printf("fired %d times (%d cells x %d shifts)\n", s.Fired(), p*p, p)
	fmt.Println("OK")
}
