// Scaling: a condensed version of the paper's evaluation that runs in
// seconds — the three reduction trees on the simulated Cray XT5 across a
// strong-scaling sweep, showing where the hierarchical tree's advantage
// comes from (the flat tree's serial panel chain versus the binary tree's
// slower triangle kernels).
package main

import (
	"fmt"

	"pulsarqr"
	"pulsarqr/sim"
)

func main() {
	m, n := 192*480, 4608 // 92160×4608: Fig. 10's second point
	fmt.Printf("strong scaling of tree-based QR, m=%d n=%d (simulated Cray XT5)\n\n", m, n)
	fmt.Printf("%8s %18s %18s %18s\n", "cores", "hierarchical", "binary", "flat")
	for _, nodes := range []int{10, 40, 160, 640} {
		mach := sim.Kraken(nodes)
		row := fmt.Sprintf("%8d", mach.TotalCores())
		for _, tree := range []pulsarqr.Tree{pulsarqr.Hierarchical, pulsarqr.Binary, pulsarqr.Flat} {
			opts := pulsarqr.Options{NB: 192, IB: 48, Tree: tree, H: 12}
			r := sim.Run(m, n, opts, mach, sim.Systolic)
			row += fmt.Sprintf(" %10.0f GF/%.2f", r.Gflops, r.Utilization)
		}
		fmt.Println(row + "   (rate/utilization)")
	}
	fmt.Println("\nreading the table: the flat tree stops gaining early (its panel is a")
	fmt.Println("serial chain of tile eliminations); the binary tree scales but pays the")
	fmt.Println("triangle-kernel penalty; the hierarchical tree balances both, as in the")
	fmt.Println("paper's Figures 10 and 11.")
}
