// Cholesky: a second dense factorization on the same systolic runtime —
// the generality demonstration the paper's conclusion promises ("mapping
// other algorithms onto PULSAR"). Solves a symmetric positive-definite
// system arising from a 1D Poisson-like stiffness assembly.
package main

import (
	"fmt"
	"log"

	"pulsarqr"
)

func main() {
	const n = 384
	// Diagonally dominant SPD matrix: 1D Laplacian plus mass term.
	a := pulsarqr.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 2.5)
		if i > 0 {
			a.Set(i, i-1, -1)
			a.Set(i-1, i, -1)
		}
	}

	opts := pulsarqr.DefaultOptions()
	opts.Nodes, opts.Threads = 2, 2
	f, err := pulsarqr.Cholesky(a, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Verify the factorization and solve A·x = b.
	fmt.Printf("factored %dx%d SPD matrix on the systolic runtime\n", n, n)
	fmt.Printf("relative residual ‖A − LLᵀ‖/‖A‖ = %.3e\n", f.Residual(a))

	b := pulsarqr.RandomMatrix(n, 1, 5)
	x := f.Solve(b)
	r := a.Mul(x).Sub(b)
	fmt.Printf("solve residual ‖Ax − b‖_F = %.3e\n", r.FrobNorm())
	if r.FrobNorm() > 1e-10 {
		log.Fatal("solve residual too large")
	}
	fmt.Println("OK")
}
