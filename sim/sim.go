// Package sim is the public façade over the performance simulator: a
// discrete-event model that executes the exact task graph of the 3D
// virtual systolic array on a calibrated machine model, predicting
// large-scale behavior that cannot be measured on a laptop. It regenerates
// the paper's evaluation figures (see cmd/qrbench and EXPERIMENTS.md).
package sim

import (
	"pulsarqr"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/simulate"
)

// Machine models the hardware: nodes, cores, per-kernel efficiencies and
// an α–β network.
type Machine = simulate.Machine

// Workload describes one factorization to simulate.
type Workload = simulate.Workload

// Result reports one simulated run: makespan, Gflop/s, message counts,
// utilization, critical path.
type Result = simulate.Result

// Profile selects the runtime being modeled.
type Profile = simulate.Profile

// Profiles: Systolic models the PULSAR runtime; Generic models a
// centralized task-superscalar runtime (the PaRSEC-class comparison).
const (
	Systolic = simulate.SystolicProfile
	Generic  = simulate.GenericProfile
)

// ScaLAPACKModel is the analytic model of the bulk-synchronous block QR
// baseline.
type ScaLAPACKModel = simulate.ScaLAPACKModel

// Kraken models the paper's Cray XT5 testbed with the given node count
// (12 cores per node).
func Kraken(nodes int) Machine { return simulate.Kraken(nodes) }

// LocalHost models a small shared-memory machine, for cross-checks.
func LocalHost(nodes, coresPerNode int) Machine { return simulate.LocalHost(nodes, coresPerNode) }

// DefaultScaLAPACK returns the calibrated baseline model.
func DefaultScaLAPACK() ScaLAPACKModel { return simulate.DefaultScaLAPACK() }

// Run simulates a factorization of an m×n matrix with the given options on
// the machine under the chosen profile.
func Run(m, n int, opts pulsarqr.Options, mach Machine, p Profile) Result {
	w := Workload{M: m, N: n, Opts: qr.Options{
		NB: opts.NB, IB: opts.IB, Tree: opts.Tree, H: opts.H,
		Boundary: opts.Boundary, Inter: opts.Inter,
	}}
	return simulate.Run(w, mach, p)
}

// Autotune sweeps the paper's tuning space — the reduction tree, tile
// sizes nb ∈ {192, 240} with ib = nb/4, and domain sizes h ∈ {6, 12} — on
// the machine model and returns the best-performing configuration with its
// predicted result. This automates the experimentation §I and §VI describe
// ("such an optimal match could be found through experimentation").
func Autotune(m, n int, mach Machine) (pulsarqr.Options, Result) {
	var bestOpts pulsarqr.Options
	var best Result
	try := func(o pulsarqr.Options) {
		r := Run(m, n, o, mach, Systolic)
		if r.Gflops > best.Gflops {
			best, bestOpts = r, o
		}
	}
	for _, nb := range []int{192, 240} {
		ib := nb / 4
		try(pulsarqr.Options{NB: nb, IB: ib, Tree: pulsarqr.Flat})
		try(pulsarqr.Options{NB: nb, IB: ib, Tree: pulsarqr.Binary})
		for _, h := range []int{6, 12} {
			try(pulsarqr.Options{NB: nb, IB: ib, Tree: pulsarqr.Hierarchical, H: h})
		}
	}
	return bestOpts, best
}
