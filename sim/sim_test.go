package sim_test

import (
	"testing"

	"pulsarqr"
	"pulsarqr/sim"
)

func TestPublicSimRun(t *testing.T) {
	mach := sim.Kraken(16)
	opts := pulsarqr.Options{NB: 192, IB: 48, Tree: pulsarqr.Hierarchical, H: 6}
	r := sim.Run(192*96, 192*8, opts, mach, sim.Systolic)
	if r.Gflops <= 0 || r.Seconds <= 0 || r.Tasks == 0 {
		t.Fatalf("bad result: %+v", r)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Fatalf("utilization %v", r.Utilization)
	}
}

func TestPublicSimProfilesOrdered(t *testing.T) {
	mach := sim.Kraken(16)
	opts := pulsarqr.Options{NB: 192, IB: 48, Tree: pulsarqr.Hierarchical, H: 6}
	sys := sim.Run(192*96, 192*8, opts, mach, sim.Systolic)
	gen := sim.Run(192*96, 192*8, opts, mach, sim.Generic)
	if gen.Gflops >= sys.Gflops {
		t.Fatalf("generic (%v) should be slower than systolic (%v)", gen.Gflops, sys.Gflops)
	}
}

func TestPublicSimTreeOptionsRespected(t *testing.T) {
	mach := sim.Kraken(64)
	mk := func(tree pulsarqr.Tree, inter pulsarqr.InterTree) float64 {
		opts := pulsarqr.Options{NB: 192, IB: 48, Tree: tree, H: 12, Inter: inter}
		return sim.Run(192*240, 192*10, opts, mach, sim.Systolic).Gflops
	}
	hier := mk(pulsarqr.Hierarchical, pulsarqr.BinaryInter)
	flatInter := mk(pulsarqr.Hierarchical, pulsarqr.FlatInter)
	flat := mk(pulsarqr.Flat, pulsarqr.BinaryInter)
	if !(hier > flatInter && flatInter > flat) {
		t.Fatalf("expected hier (%0.f) > flat-inter (%.0f) > flat (%.0f)", hier, flatInter, flat)
	}
}

func TestPublicScaLAPACKModel(t *testing.T) {
	mach := sim.Kraken(64)
	s := sim.DefaultScaLAPACK()
	if g := s.Gflops(mach, 192*240, 192*10); g <= 0 {
		t.Fatalf("scalapack model rate %v", g)
	}
}

func TestAutotunePicksHierarchicalAtScale(t *testing.T) {
	mach := sim.Kraken(160) // 1920 cores
	opts, res := sim.Autotune(368640, 4608, mach)
	if opts.Tree != pulsarqr.Hierarchical {
		t.Fatalf("autotune picked %v; the paper's regime favors hierarchical", opts.Tree)
	}
	if res.Gflops <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	// The winner must beat the flat tree it rejected.
	flat := sim.Run(368640, 4608, pulsarqr.Options{NB: opts.NB, IB: opts.IB, Tree: pulsarqr.Flat},
		mach, sim.Systolic)
	if res.Gflops <= flat.Gflops {
		t.Fatal("autotune winner does not beat flat")
	}
}

func TestLocalHostMachine(t *testing.T) {
	m := sim.LocalHost(2, 4)
	if m.Workers() != 3 || m.TotalCores() != 8 {
		t.Fatalf("localhost accounting: %d workers %d cores", m.Workers(), m.TotalCores())
	}
}
