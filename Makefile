# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go
BIN ?= bin

.PHONY: all build test race fuzz chaos-smoke cover-transport cover-plan bench-smoke bench-kernels bench-kernels-check bench-kernels-update bench-batch bench-sessions launch-smoke serve-smoke trace-smoke batch-smoke session-smoke plan-smoke vet clean

all: build

# Build every package and place the command binaries side by side in
# $(BIN) (qrfactor finds qrnode next to itself for -launch).
build:
	$(GO) build ./...
	$(GO) build -o $(BIN)/ ./cmd/...

test:
	$(GO) test ./...

# Full suite under the race detector; -short skips the slowest
# subprocess integration tests (CI runs this).
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# Brief fuzz of the wire decoders (must never panic; regression corpora
# under internal/transport/testdata, internal/batch/testdata and
# internal/session/testdata).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 10s ./internal/transport
	$(GO) test -run '^$$' -fuzz FuzzReadFrame -fuzztime 10s ./internal/transport
	$(GO) test -run '^$$' -fuzz FuzzRequestReader -fuzztime 10s ./internal/batch
	$(GO) test -run '^$$' -fuzz FuzzResultReader -fuzztime 10s ./internal/batch
	$(GO) test -run '^$$' -fuzz FuzzCheckpointReader -fuzztime 10s ./internal/session
	$(GO) test -run '^$$' -fuzz FuzzAppendReader -fuzztime 10s ./internal/session
	$(GO) test -run '^$$' -fuzz FuzzMachineModel -fuzztime 10s ./internal/simulate

# Deterministic fault-injection proof: a factorization over real TCP
# with seeded chaos (drops, delays, a mid-run link sever, a rank kill)
# completes and matches the sequential oracle elementwise.
chaos-smoke:
	$(GO) test -run 'TestChaosTCP' -count=1 -v ./internal/transport

# Coverage gate for the resilience-critical transport package: fails if
# line coverage drops below the recorded floor.
COVER_FLOOR_TRANSPORT = 89.3
cover-transport:
	@cov=$$($(GO) test -count=1 -cover ./internal/transport | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	echo "internal/transport coverage: $$cov% (floor $(COVER_FLOOR_TRANSPORT)%)"; \
	awk -v c="$$cov" -v f="$(COVER_FLOOR_TRANSPORT)" 'BEGIN { exit !(c+0 >= f+0) }' || \
	{ echo "coverage regression: $$cov% < $(COVER_FLOOR_TRANSPORT)%"; exit 1; }

# Coverage gate for the planner and its simulator: the decision logic is
# the safety argument (chosen never slower than the default), so its
# coverage must not rot.
COVER_FLOOR_PLAN = 90.0
COVER_FLOOR_SIMULATE = 88.0
cover-plan:
	@cov=$$($(GO) test -count=1 -cover ./internal/plan | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	echo "internal/plan coverage: $$cov% (floor $(COVER_FLOOR_PLAN)%)"; \
	awk -v c="$$cov" -v f="$(COVER_FLOOR_PLAN)" 'BEGIN { exit !(c+0 >= f+0) }' || \
	{ echo "coverage regression: $$cov% < $(COVER_FLOOR_PLAN)%"; exit 1; }
	@cov=$$($(GO) test -count=1 -cover ./internal/simulate | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	echo "internal/simulate coverage: $$cov% (floor $(COVER_FLOOR_SIMULATE)%)"; \
	awk -v c="$$cov" -v f="$(COVER_FLOOR_SIMULATE)" 'BEGIN { exit !(c+0 >= f+0) }' || \
	{ echo "coverage regression: $$cov% < $(COVER_FLOOR_SIMULATE)%"; exit 1; }

# Quick benchmark pass: the real-hardware tree comparison, one
# distributed run over local TCP processes, and a shrunk batch-vs-jobs
# comparison (BENCH_batch.json holds the full 10k-matrix baseline).
bench-smoke: build
	$(GO) test -run '^$$' -bench BenchmarkRealTreeComparison -benchtime 1x .
	$(BIN)/qrfactor -launch 2 -m 1024 -n 128 -nb 32 -ib 8 -check
	$(BIN)/qrbench -batch -batch-count 512

# Full batch throughput comparison, regenerating the committed baseline:
#   make bench-batch && git diff BENCH_batch.json
bench-batch: build
	$(BIN)/qrbench -batch -batch-out BENCH_batch.json

# Streaming-session append throughput vs full refactorization,
# regenerating the committed baseline:
#   make bench-sessions && git diff BENCH_sessions.json
bench-sessions: build
	$(BIN)/qrbench -session -session-out BENCH_sessions.json

# Kernel/BLAS throughput benchmarks, benchstat-friendly (fixed count and
# pinned benchtime so runs are comparable):
#   make bench-kernels > new.txt && benchstat BENCH_kernels.json new.txt
# BENCH_kernels.json holds the committed baseline from the recorded host.
BENCH_TIME ?= 200ms
BENCH_COUNT ?= 5
bench-kernels:
	$(GO) test -run '^$$' -bench 'BenchmarkGemm|BenchmarkTrmm' -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) ./internal/blas
	$(GO) test -run '^$$' -bench 'BenchmarkD(geqrt|tsqrt|ttqrt|ormqr|tsmqr|ttmqr)$$' -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) ./internal/kernels

# Regression gate: rerun the kernel benchmarks and fail if any kernel's
# median ns/op regressed more than 20% against BENCH_kernels.json (see
# scripts/benchcheck; BENCH_TOLERANCE overrides the band).
BENCH_TOLERANCE ?= 0.20
bench-kernels-check:
	@$(MAKE) --no-print-directory bench-kernels > bench-fresh.txt && \
	$(GO) run ./scripts/benchcheck -baseline BENCH_kernels.json -threshold $(BENCH_TOLERANCE) bench-fresh.txt; \
	rc=$$?; rm -f bench-fresh.txt; exit $$rc

# Regenerate the committed baseline from a fresh run on this host:
#   make bench-kernels-update && git diff BENCH_kernels.json
bench-kernels-update:
	@$(MAKE) --no-print-directory bench-kernels > bench-fresh.txt && \
	$(GO) run ./scripts/benchcheck -update -baseline BENCH_kernels.json bench-fresh.txt; \
	rc=$$?; rm -f bench-fresh.txt; exit $$rc

launch-smoke: build
	$(BIN)/qrfactor -launch 3 -m 2048 -n 256 -nb 64 -ib 16 -check

# End-to-end check of the factorization service: qrserve + 2 launched
# agent processes, 3 concurrent HTTP jobs, metrics and clean shutdown.
serve-smoke: build
	sh scripts/serve_smoke.sh $(BIN)

# End-to-end check of distributed tracing: a 2-process traced TCP run,
# shard gather at rank 0, qrtrace -merge analysis, Chrome JSON export.
trace-smoke: build
	sh scripts/trace_smoke.sh $(BIN)

# End-to-end check of the batched small-matrix path: a 10k-matrix batch
# through POST /v1/batch with checksum, metrics and goroutine-leak
# verification (BATCH_SMOKE_COUNT overrides the batch size).
batch-smoke: build
	sh scripts/batch_smoke.sh $(BIN)

# End-to-end check of durable streaming sessions: open a session, stream
# 3 appends (checkpoint every append), kill -9 the server, restart over
# the same checkpoint directory, verify the restored R bitwise.
session-smoke: build
	sh scripts/session_smoke.sh $(BIN)

# End-to-end check of the trace-driven planner: qrserve -autotune with 2
# agents, POST /v1/plan dry-run (computed then cached), an autotuned job
# with its plan block, qrserve_plan_* metrics, and qrbench -plan against
# both a canned machine model and the live /v1/machine-model.
plan-smoke: build
	sh scripts/plan_smoke.sh $(BIN)

clean:
	rm -rf $(BIN)
