// Package mpi provides an in-process message-passing substrate with the
// semantics of the six MPI calls the PULSAR runtime relies on: Isend,
// Irecv, Test, Get_count, Barrier and Cancel.
//
// The paper runs one MPI process per distributed-memory node; here each
// rank is a set of goroutines sharing a World. Payloads are copied when a
// message is sent, so ranks never alias each other's buffers — the same
// isolation a real distributed-memory system enforces — while intra-rank
// communication in the runtime layer above stays zero-copy.
//
// Matching follows MPI rules: a receive names a (source, tag) pair, either
// of which may be the wildcard Any; messages between a given pair of ranks
// are non-overtaking with respect to matching receives.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Any is the wildcard for Irecv's source or tag (MPI_ANY_SOURCE/MPI_ANY_TAG).
const Any = -1

// World is a communicator spanning size ranks.
type World struct {
	size  int
	ranks []*rankState

	barrierMu   sync.Mutex
	barrierCond *sync.Cond
	barrierGen  int
	barrierCnt  int

	msgCount atomic.Int64
	byteCnt  atomic.Int64
}

type rankState struct {
	mu     sync.Mutex
	cond   *sync.Cond
	inbox  []*envelope // arrived, unmatched messages (FIFO)
	recvs  []*Request  // posted, unmatched receives (FIFO)
	notify func()      // called after a message arrives, outside the lock
}

type envelope struct {
	source, tag int
	data        []byte
}

// NewWorld creates a communicator with the given number of ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: world size %d", size))
	}
	w := &World{size: size, ranks: make([]*rankState, size)}
	w.barrierCond = sync.NewCond(&w.barrierMu)
	for i := range w.ranks {
		rs := &rankState{}
		rs.cond = sync.NewCond(&rs.mu)
		w.ranks[i] = rs
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns the communicator endpoint for one rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of world of %d", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// Stats reports the total number of messages and payload bytes sent so far.
func (w *World) Stats() (messages, bytes int64) {
	return w.msgCount.Load(), w.byteCnt.Load()
}

// Comm is one rank's endpoint into a World.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// OnArrival registers a callback invoked (outside internal locks) whenever
// a message arrives at this rank; the runtime's proxy uses it to wake up
// instead of busy-polling.
func (c *Comm) OnArrival(fn func()) {
	rs := c.world.ranks[c.rank]
	rs.mu.Lock()
	rs.notify = fn
	rs.mu.Unlock()
}

// Request tracks an outstanding Isend or Irecv.
type Request struct {
	mu       sync.Mutex
	done     bool
	canceled bool
	isRecv   bool
	source   int // matched source (recv) or destination (send)
	tag      int
	data     []byte
	rs       *rankState // owning rank state, for recv cancellation
}

// Isend sends data to dest with the given tag and returns a request.
// The payload is copied, so the caller may reuse its buffer immediately;
// the request completes at once (an eager-protocol send).
func (c *Comm) Isend(data []byte, dest, tag int) *Request {
	if dest < 0 || dest >= c.world.size {
		panic(fmt.Sprintf("mpi: Isend to rank %d out of world of %d", dest, c.world.size))
	}
	if tag < 0 {
		panic(fmt.Sprintf("mpi: Isend tag %d must be non-negative", tag))
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	env := &envelope{source: c.rank, tag: tag, data: buf}
	c.world.msgCount.Add(1)
	c.world.byteCnt.Add(int64(len(data)))

	rs := c.world.ranks[dest]
	rs.mu.Lock()
	var matched *Request
	for i, r := range rs.recvs {
		if r.matches(env) {
			matched = r
			rs.recvs = append(rs.recvs[:i], rs.recvs[i+1:]...)
			break
		}
	}
	var notify func()
	if matched != nil {
		matched.complete(env)
		rs.cond.Broadcast()
	} else {
		rs.inbox = append(rs.inbox, env)
	}
	notify = rs.notify
	rs.mu.Unlock()
	if notify != nil {
		notify()
	}
	return &Request{done: true, source: dest, tag: tag}
}

// Irecv posts a receive for a message from source (or Any) with the given
// tag (or Any) and returns a request. When the request completes, Data and
// GetCount expose the payload.
func (c *Comm) Irecv(source, tag int) *Request {
	rs := c.world.ranks[c.rank]
	req := &Request{isRecv: true, source: source, tag: tag, rs: rs}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for i, env := range rs.inbox {
		if req.matches(env) {
			rs.inbox = append(rs.inbox[:i], rs.inbox[i+1:]...)
			req.complete(env)
			return req
		}
	}
	rs.recvs = append(rs.recvs, req)
	return req
}

func (r *Request) matches(env *envelope) bool {
	if r.done || r.canceled {
		return false
	}
	if r.source != Any && r.source != env.source {
		return false
	}
	if r.tag != Any && r.tag != env.tag {
		return false
	}
	return true
}

// complete must be called with the owning rank's lock held (or before the
// request is published).
func (r *Request) complete(env *envelope) {
	r.mu.Lock()
	r.done = true
	r.data = env.data
	r.source = env.source
	r.tag = env.tag
	r.mu.Unlock()
}

// Test reports whether the request has completed (MPI_Test).
func (r *Request) Test() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// Canceled reports whether the request was canceled before completing.
func (r *Request) Canceled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.canceled
}

// Wait blocks until the request completes or is canceled.
func (r *Request) Wait() {
	if !r.isRecv {
		return // sends complete eagerly
	}
	rs := r.rs
	rs.mu.Lock()
	for {
		r.mu.Lock()
		ok := r.done || r.canceled
		r.mu.Unlock()
		if ok {
			break
		}
		rs.cond.Wait()
	}
	rs.mu.Unlock()
}

// Data returns the received payload (valid after a recv completes). The
// slice is owned by the caller; the substrate never aliases it elsewhere.
func (r *Request) Data() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.data
}

// GetCount returns the payload size in bytes (MPI_Get_count).
func (r *Request) GetCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.data)
}

// Source returns the matched source rank of a completed receive.
func (r *Request) Source() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.source
}

// Tag returns the matched tag of a completed receive.
func (r *Request) Tag() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tag
}

// Cancel cancels an outstanding receive (MPI_Cancel). It reports whether
// the cancellation took effect; a request that already completed cannot be
// canceled, and eager sends always report false.
func (r *Request) Cancel() bool {
	if !r.isRecv {
		return false
	}
	rs := r.rs
	rs.mu.Lock()
	defer rs.mu.Unlock()
	r.mu.Lock()
	if r.done || r.canceled {
		r.mu.Unlock()
		return false
	}
	r.canceled = true
	r.mu.Unlock()
	for i, q := range rs.recvs {
		if q == r {
			rs.recvs = append(rs.recvs[:i], rs.recvs[i+1:]...)
			break
		}
	}
	rs.cond.Broadcast()
	return true
}

// Barrier blocks until every rank in the world has entered it
// (MPI_Barrier). Each rank must call it exactly once per barrier episode.
func (c *Comm) Barrier() {
	w := c.world
	w.barrierMu.Lock()
	gen := w.barrierGen
	w.barrierCnt++
	if w.barrierCnt == w.size {
		w.barrierCnt = 0
		w.barrierGen++
		w.barrierCond.Broadcast()
	} else {
		for gen == w.barrierGen {
			w.barrierCond.Wait()
		}
	}
	w.barrierMu.Unlock()
}
