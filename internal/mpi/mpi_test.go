package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	c0, c1 := w.Comm(0), w.Comm(1)
	c0.Isend([]byte("hello"), 1, 7)
	r := c1.Irecv(0, 7)
	r.Wait()
	if !r.Test() || string(r.Data()) != "hello" || r.GetCount() != 5 {
		t.Fatalf("recv got %q", r.Data())
	}
	if r.Source() != 0 || r.Tag() != 7 {
		t.Fatalf("source/tag = %d/%d", r.Source(), r.Tag())
	}
}

func TestRecvBeforeSend(t *testing.T) {
	w := NewWorld(2)
	r := w.Comm(1).Irecv(0, 3)
	if r.Test() {
		t.Fatal("recv must not complete before the send")
	}
	done := make(chan struct{})
	go func() {
		r.Wait()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	w.Comm(0).Isend([]byte{1, 2}, 1, 3)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Wait did not wake after matching send")
	}
	if r.GetCount() != 2 {
		t.Fatal("wrong payload")
	}
}

func TestPayloadIsCopied(t *testing.T) {
	w := NewWorld(2)
	buf := []byte{1, 2, 3}
	w.Comm(0).Isend(buf, 1, 0)
	buf[0] = 99
	r := w.Comm(1).Irecv(0, 0)
	r.Wait()
	if r.Data()[0] != 1 {
		t.Fatal("Isend must copy the payload")
	}
}

func TestTagMatching(t *testing.T) {
	w := NewWorld(2)
	c0, c1 := w.Comm(0), w.Comm(1)
	c0.Isend([]byte("a"), 1, 1)
	c0.Isend([]byte("b"), 1, 2)
	rb := c1.Irecv(0, 2)
	ra := c1.Irecv(0, 1)
	ra.Wait()
	rb.Wait()
	if string(ra.Data()) != "a" || string(rb.Data()) != "b" {
		t.Fatalf("tag matching wrong: %q %q", ra.Data(), rb.Data())
	}
}

func TestWildcardSourceAndTag(t *testing.T) {
	w := NewWorld(3)
	w.Comm(2).Isend([]byte("x"), 0, 9)
	r := w.Comm(0).Irecv(Any, Any)
	r.Wait()
	if r.Source() != 2 || r.Tag() != 9 || string(r.Data()) != "x" {
		t.Fatal("wildcard recv wrong")
	}
}

func TestNonOvertakingSameTag(t *testing.T) {
	w := NewWorld(2)
	for i := 0; i < 10; i++ {
		w.Comm(0).Isend([]byte{byte(i)}, 1, 4)
	}
	for i := 0; i < 10; i++ {
		r := w.Comm(1).Irecv(0, 4)
		r.Wait()
		if r.Data()[0] != byte(i) {
			t.Fatalf("message %d overtaken: got %d", i, r.Data()[0])
		}
	}
}

func TestPostedRecvOrderFIFO(t *testing.T) {
	// Two posted receives with the same signature must match sends in
	// posting order.
	w := NewWorld(2)
	r1 := w.Comm(1).Irecv(0, 5)
	r2 := w.Comm(1).Irecv(0, 5)
	w.Comm(0).Isend([]byte("first"), 1, 5)
	w.Comm(0).Isend([]byte("second"), 1, 5)
	r1.Wait()
	r2.Wait()
	if string(r1.Data()) != "first" || string(r2.Data()) != "second" {
		t.Fatalf("posted order violated: %q %q", r1.Data(), r2.Data())
	}
}

func TestCancel(t *testing.T) {
	w := NewWorld(2)
	r := w.Comm(1).Irecv(0, 1)
	if !r.Cancel() {
		t.Fatal("cancel of pending recv must succeed")
	}
	if !r.Canceled() || r.Test() {
		t.Fatal("canceled request state wrong")
	}
	if r.Cancel() {
		t.Fatal("double cancel must fail")
	}
	// A message sent afterwards must not match the canceled request.
	w.Comm(0).Isend([]byte("z"), 1, 1)
	r2 := w.Comm(1).Irecv(0, 1)
	r2.Wait()
	if string(r2.Data()) != "z" {
		t.Fatal("canceled recv stole a message")
	}
	// Sends cannot be canceled (eager completion).
	s := w.Comm(0).Isend([]byte("q"), 1, 2)
	if s.Cancel() {
		t.Fatal("send cancel must report false")
	}
}

func TestCancelWakesWaiter(t *testing.T) {
	w := NewWorld(2)
	r := w.Comm(1).Irecv(0, 1)
	done := make(chan struct{})
	go func() {
		r.Wait()
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	r.Cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Wait did not wake on cancel")
	}
}

func TestBarrier(t *testing.T) {
	const n = 8
	w := NewWorld(n)
	var before, after atomic.Int32
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			before.Add(1)
			w.Comm(rank).Barrier()
			if before.Load() != n {
				t.Errorf("rank %d passed barrier before all arrived", rank)
			}
			after.Add(1)
		}(r)
	}
	wg.Wait()
	if after.Load() != n {
		t.Fatal("not all ranks passed")
	}
}

func TestBarrierReusable(t *testing.T) {
	const n, rounds = 4, 5
	w := NewWorld(n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				w.Comm(rank).Barrier()
			}
		}(r)
	}
	ok := make(chan struct{})
	go func() { wg.Wait(); close(ok) }()
	select {
	case <-ok:
	case <-time.After(5 * time.Second):
		t.Fatal("repeated barriers deadlocked")
	}
}

func TestOnArrivalNotify(t *testing.T) {
	w := NewWorld(2)
	var hits atomic.Int32
	w.Comm(1).OnArrival(func() { hits.Add(1) })
	w.Comm(0).Isend([]byte("a"), 1, 0)
	w.Comm(0).Isend([]byte("b"), 1, 0)
	if hits.Load() != 2 {
		t.Fatalf("notify hits = %d", hits.Load())
	}
}

func TestStats(t *testing.T) {
	w := NewWorld(2)
	w.Comm(0).Isend(make([]byte, 100), 1, 0)
	w.Comm(1).Isend(make([]byte, 50), 0, 0)
	msgs, bytes := w.Stats()
	if msgs != 2 || bytes != 150 {
		t.Fatalf("stats = %d msgs %d bytes", msgs, bytes)
	}
}

func TestConcurrentStress(t *testing.T) {
	// Many ranks exchanging many tagged messages concurrently; every
	// message must arrive exactly once with the right payload.
	const n = 6
	const msgs = 200
	w := NewWorld(n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := w.Comm(rank)
			// Send msgs messages to every other rank.
			go func() {
				for i := 0; i < msgs; i++ {
					for d := 0; d < n; d++ {
						if d == rank {
							continue
						}
						c.Isend([]byte(fmt.Sprintf("%d:%d", rank, i)), d, rank)
					}
				}
			}()
			// Receive msgs messages from each peer (tag == sender rank).
			for src := 0; src < n; src++ {
				if src == rank {
					continue
				}
				for i := 0; i < msgs; i++ {
					req := c.Irecv(src, src)
					req.Wait()
					want := fmt.Sprintf("%d:%d", src, i)
					if string(req.Data()) != want {
						errs <- fmt.Errorf("rank %d: got %q want %q", rank, req.Data(), want)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
