package matrix

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a reader and writer for the MatrixMarket array
// format ("%%MatrixMarket matrix array real general"), the interchange
// format dense solvers conventionally accept, so the command-line tools
// can factor real data sets.

const mmHeader = "%%MatrixMarket matrix array real general"

// WriteMatrixMarket writes m in MatrixMarket dense array format
// (column-major element order, as the format specifies).
func WriteMatrixMarket(w io.Writer, m *Mat) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\n%d %d\n", mmHeader, m.Rows, m.Cols); err != nil {
		return err
	}
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			if _, err := fmt.Fprintf(bw, "%.17g\n", m.At(i, j)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket reads a dense real matrix in MatrixMarket array format.
// Comment lines (starting with %) after the header are skipped.
func ReadMatrixMarket(r io.Reader) (*Mat, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("matrix: empty MatrixMarket stream")
	}
	header := strings.ToLower(strings.Join(strings.Fields(sc.Text()), " "))
	want := strings.ToLower(mmHeader)
	if header != want {
		return nil, fmt.Errorf("matrix: unsupported MatrixMarket header %q (want %q)", sc.Text(), mmHeader)
	}
	// Skip comments, read the size line.
	var rows, cols int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			return nil, fmt.Errorf("matrix: bad size line %q", line)
		}
		var err error
		if rows, err = strconv.Atoi(f[0]); err != nil {
			return nil, fmt.Errorf("matrix: bad row count %q", f[0])
		}
		if cols, err = strconv.Atoi(f[1]); err != nil {
			return nil, fmt.Errorf("matrix: bad column count %q", f[1])
		}
		break
	}
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("matrix: negative dimensions %dx%d", rows, cols)
	}
	// Guard allocations against hostile or corrupt size lines: refuse
	// anything that could not plausibly be backed by the input stream.
	const maxElements = 1 << 28
	if rows > maxElements || cols > maxElements || (rows > 0 && cols > maxElements/rows) {
		return nil, fmt.Errorf("matrix: %dx%d exceeds the reader's size limit", rows, cols)
	}
	m := New(rows, cols)
	idx := 0
	total := rows * cols
	for idx < total && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		for _, f := range strings.Fields(line) {
			if idx >= total {
				return nil, fmt.Errorf("matrix: more than %d values in %dx%d array", total, rows, cols)
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("matrix: bad value %q at entry %d", f, idx)
			}
			// Column-major order per the format.
			m.Data[(idx/rows)*m.LD+idx%rows] = v
			idx++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if idx != total {
		return nil, fmt.Errorf("matrix: got %d of %d values", idx, total)
	}
	// Trailing non-comment content means the size line was wrong.
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "%") {
			return nil, fmt.Errorf("matrix: more than %d values in %dx%d array", total, rows, cols)
		}
	}
	return m, nil
}
