package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroInitialized(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.LD != 3 {
		t.Fatalf("bad shape %dx%d ld %d", m.Rows, m.Cols, m.LD)
	}
	for j := 0; j < 4; j++ {
		for i := 0; i < 3; i++ {
			if m.At(i, j) != 0 {
				t.Fatal("not zero initialized")
			}
		}
	}
}

func TestNewZeroDims(t *testing.T) {
	for _, d := range [][2]int{{0, 0}, {0, 3}, {3, 0}} {
		m := New(d[0], d[1])
		if m.Rows != d[0] || m.Cols != d[1] {
			t.Fatalf("bad shape for %v", d)
		}
		if m.FrobNorm() != 0 {
			t.Fatal("norm of empty must be 0")
		}
	}
}

func TestSetAtAdd(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 5)
	m.Add(1, 0, 2.5)
	if got := m.At(1, 0); got != 7.5 {
		t.Fatalf("got %v", got)
	}
}

func TestViewAliases(t *testing.T) {
	m := New(4, 4)
	v := m.View(1, 2, 2, 2)
	v.Set(0, 0, 9)
	if m.At(1, 2) != 9 {
		t.Fatal("view must alias parent storage")
	}
	if v.Rows != 2 || v.Cols != 2 || v.LD != 4 {
		t.Fatalf("bad view shape %dx%d ld %d", v.Rows, v.Cols, v.LD)
	}
}

func TestViewBounds(t *testing.T) {
	m := New(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range view must panic")
		}
	}()
	m.View(2, 2, 2, 2)
}

func TestCloneCompactAndIndependent(t *testing.T) {
	m := NewRand(5, 5, rand.New(rand.NewSource(1)))
	v := m.View(1, 1, 3, 3)
	c := v.Clone()
	if c.LD != 3 {
		t.Fatalf("clone not compact, ld=%d", c.LD)
	}
	if MaxAbsDiff(c, v) != 0 {
		t.Fatal("clone differs")
	}
	c.Set(0, 0, 1e9)
	if v.At(0, 0) == 1e9 {
		t.Fatal("clone aliases")
	}
}

func TestCopyFromStrided(t *testing.T) {
	src := NewRand(6, 6, rand.New(rand.NewSource(2)))
	dst := New(6, 6)
	dst.View(2, 2, 3, 3).CopyFrom(src.View(0, 0, 3, 3))
	if dst.At(2, 2) != src.At(0, 0) || dst.At(4, 4) != src.At(2, 2) {
		t.Fatal("strided copy wrong")
	}
	if dst.At(0, 0) != 0 || dst.At(5, 5) != 0 {
		t.Fatal("copy wrote outside the view")
	}
}

func TestTransposeMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewRand(3, 4, rng)
	b := NewRand(4, 2, rng)
	c := a.Mul(b)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			if math.Abs(c.At(i, j)-s) > 1e-14 {
				t.Fatalf("mul (%d,%d): %v vs %v", i, j, c.At(i, j), s)
			}
		}
	}
	at := a.Transpose()
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if at.At(j, i) != a.At(i, j) {
				t.Fatal("transpose wrong")
			}
		}
	}
}

func TestIdentityMulProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 1
		a := NewRand(n, n, rng)
		return MaxAbsDiff(a.Mul(Identity(n)), a) == 0 &&
			MaxAbsDiff(Identity(n).Mul(a), a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFrobNormKnown(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 3)
	m.Set(1, 1, 4)
	if got := m.FrobNorm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("frob = %v", got)
	}
}

func TestFrobNormOverflowSafe(t *testing.T) {
	m := New(2, 1)
	m.Set(0, 0, 1e200)
	m.Set(1, 0, 1e200)
	got := m.FrobNorm()
	want := 1e200 * math.Sqrt2
	if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("frob = %v want %v", got, want)
	}
}

func TestMaxAbsAndDiff(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 1, -7)
	if a.MaxAbs() != 7 {
		t.Fatal("MaxAbs wrong")
	}
	b := a.Clone()
	b.Set(1, 0, 2)
	if MaxAbsDiff(a, b) != 2 {
		t.Fatal("MaxAbsDiff wrong")
	}
}

func TestSubFillZero(t *testing.T) {
	a := New(2, 3)
	a.Fill(2)
	b := New(2, 3)
	b.Fill(0.5)
	d := a.Sub(b)
	if d.At(1, 2) != 1.5 {
		t.Fatal("sub wrong")
	}
	a.Zero()
	if a.MaxAbs() != 0 {
		t.Fatal("zero wrong")
	}
}

func TestUpperTriangle(t *testing.T) {
	m := NewRand(3, 3, rand.New(rand.NewSource(4)))
	u := m.UpperTriangle()
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			want := m.At(i, j)
			if i > j {
				want = 0
			}
			if u.At(i, j) != want {
				t.Fatal("upper triangle wrong")
			}
		}
	}
}

func TestFromColMajor(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := FromColMajor(2, 3, 2, data)
	if m.At(0, 0) != 1 || m.At(1, 0) != 2 || m.At(0, 2) != 5 {
		t.Fatal("FromColMajor layout wrong")
	}
	m.Set(0, 0, 9)
	if data[0] != 9 {
		t.Fatal("FromColMajor must not copy")
	}
}
