package matrix

import (
	"strings"
	"testing"
)

// FuzzReadMatrixMarket drives the file-format reader with arbitrary text:
// it must never panic, only return errors or valid matrices.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("")
	f.Add("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
	f.Add("%%MatrixMarket matrix array real general\n% c\n1 1\nnot-a-number\n")
	f.Add("%%MatrixMarket matrix array real general\n-1 5\n")
	f.Add("%%MatrixMarket matrix array real general\n999999999 999999999\n")
	f.Fuzz(func(t *testing.T, s string) {
		// Guard against fuzz inputs that would legitimately allocate huge
		// matrices: the reader itself only allocates after parsing the
		// size line, so cap the input scale instead of the reader.
		if len(s) > 1<<16 {
			return
		}
		m, err := ReadMatrixMarket(strings.NewReader(s))
		if err != nil {
			return
		}
		if m.Rows < 0 || m.Cols < 0 {
			t.Fatal("negative dimensions escaped validation")
		}
	})
}
