package matrix

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatrixMarketRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewRand(rng.Intn(10)+1, rng.Intn(10)+1, rng)
		var sb strings.Builder
		if err := WriteMatrixMarket(&sb, m); err != nil {
			return false
		}
		got, err := ReadMatrixMarket(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return MaxAbsDiff(m, got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixMarketColumnMajorOrder(t *testing.T) {
	in := `%%MatrixMarket matrix array real general
% a comment
2 2
1
2
3
4
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Column-major: first column is (1,2), second (3,4).
	if m.At(0, 0) != 1 || m.At(1, 0) != 2 || m.At(0, 1) != 3 || m.At(1, 1) != 4 {
		t.Fatalf("order wrong: %v", m)
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "%%MatrixMarket matrix coordinate real general\n1 1\n1\n"},
		{"bad size", "%%MatrixMarket matrix array real general\n2\n"},
		{"bad value", "%%MatrixMarket matrix array real general\n1 1\nx\n"},
		{"too few", "%%MatrixMarket matrix array real general\n2 2\n1\n2\n"},
		{"too many", "%%MatrixMarket matrix array real general\n1 1\n1\n2\n"},
	}
	for _, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestMatrixMarketPreservesPrecision(t *testing.T) {
	m := New(1, 2)
	m.Set(0, 0, 1.0/3.0)
	m.Set(0, 1, -2.718281828459045e-12)
	var sb strings.Builder
	if err := WriteMatrixMarket(&sb, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != m.At(0, 0) || got.At(0, 1) != m.At(0, 1) {
		t.Fatal("round trip lost precision")
	}
}
