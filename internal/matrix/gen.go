package matrix

import (
	"sync/atomic"
	"unsafe"
)

// Write-generation registry. The kernel layer caches panel packings keyed by
// the identity of a tile's backing array (the address of its first element).
// Addresses are recycled by the allocator, so identity alone is not enough:
// a cache entry must also prove the backing bytes have not been rewritten —
// or replaced by a different allocation at the same address — since it was
// filled. The registry provides that proof as a monotonically increasing
// generation per address slot:
//
//   - NoteWrite bumps the generation of a Mat's backing address. It is
//     called by New and FromColMajor (so a fresh allocation at a recycled
//     address invalidates stale entries) and by every kernel that rewrites
//     tile contents (Dgeqrt/Dtsqrt/Dttqrt and the apply kernels).
//   - WriteGen reads the current generation; a consumer caches the value at
//     pack time and treats the entry as stale the moment it changes.
//
// Slots are a fixed-size hash table of atomic counters. Collisions merely
// alias two addresses onto one counter, which can only cause spurious
// invalidation (an extra repack) — never a stale hit. The table is
// lock-free and allocation-free, so noting a write is a single atomic add
// on the kernels' hot path.
const genSlots = 4096 // power of two; 32 KiB of counters

var genTable [genSlots]atomic.Uint64

func genSlot(m *Mat) *atomic.Uint64 {
	if len(m.Data) == 0 {
		return &genTable[0]
	}
	p := uintptr(unsafe.Pointer(&m.Data[0]))
	// Mix the address down past allocator size-class alignment.
	h := (p >> 4) ^ (p >> 13) ^ (p >> 23)
	return &genTable[h&(genSlots-1)]
}

// DataPtr returns the address of m's first backing element (0 when empty).
// It is the identity half of the (identity, generation) pair consumers use
// to key cached derivations of a matrix's contents; pair it with WriteGen.
func DataPtr(m *Mat) uintptr {
	if len(m.Data) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(&m.Data[0]))
}

// NoteWrite records that m's backing array has been (or is about to be)
// rewritten, invalidating any panel packings cached against it. Writers
// outside the kernels package (e.g. code that fills a tile by hand and then
// feeds it to the apply kernels as V or T) must call this after writing.
func NoteWrite(m *Mat) {
	genSlot(m).Add(1)
}

// WriteGen returns the current write generation of m's backing array.
func WriteGen(m *Mat) uint64 {
	return genSlot(m).Load()
}
