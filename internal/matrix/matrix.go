// Package matrix provides the dense matrix and tile containers used by the
// tile QR factorization and its kernels.
//
// All storage is column-major with an explicit leading dimension (stride),
// following the LAPACK convention, so that numerical kernels translate
// directly from their reference formulations. A Mat may be a view into a
// larger allocation; Clone produces compact copies.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a column-major matrix of float64 with leading dimension LD.
// Element (i, j) lives at Data[i+j*LD]. Mat is used both for full matrices
// and for individual tiles of a Tiled matrix.
type Mat struct {
	Rows, Cols int
	LD         int
	Data       []float64
}

// New returns a zero-initialized Rows×Cols matrix with a compact layout
// (LD == Rows).
func New(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	ld := rows
	if ld < 1 {
		ld = 1
	}
	m := &Mat{Rows: rows, Cols: cols, LD: ld, Data: make([]float64, ld*cols)}
	// A fresh allocation may land on a recycled address; bump its write
	// generation so panel packings cached against the old occupant die.
	NoteWrite(m)
	return m
}

// NewRand returns a Rows×Cols matrix with entries drawn uniformly from
// (-1, 1) using the supplied generator. A nil generator panics; callers
// seed deterministically so experiments are reproducible.
func NewRand(rows, cols int, rng *rand.Rand) *Mat {
	m := New(rows, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			m.Data[i+j*m.LD] = 2*rng.Float64() - 1
		}
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i+i*m.LD] = 1
	}
	return m
}

// FromColMajor wraps existing column-major data without copying.
func FromColMajor(rows, cols, ld int, data []float64) *Mat {
	if ld < rows || ld < 1 {
		panic(fmt.Sprintf("matrix: ld %d < rows %d", ld, rows))
	}
	if cols > 0 && len(data) < ld*(cols-1)+rows {
		panic("matrix: data slice too short")
	}
	m := &Mat{Rows: rows, Cols: cols, LD: ld, Data: data}
	// The wrapped data is caller-owned and of unknown history; invalidate
	// any panel packings cached against this address.
	NoteWrite(m)
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i+j*m.LD] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i+j*m.LD] = v }

// Add increments element (i, j) by v.
func (m *Mat) Add(i, j int, v float64) { m.Data[i+j*m.LD] += v }

// Col returns the slice backing column j (rows 0..Rows-1).
func (m *Mat) Col(j int) []float64 { return m.Data[j*m.LD : j*m.LD+m.Rows] }

// View returns a sub-matrix view of rows [i, i+rows) and columns
// [j, j+cols) sharing storage with m.
func (m *Mat) View(i, j, rows, cols int) *Mat {
	if i < 0 || j < 0 || rows < 0 || cols < 0 || i+rows > m.Rows || j+cols > m.Cols {
		panic(fmt.Sprintf("matrix: view [%d:%d, %d:%d) out of %dx%d",
			i, i+rows, j, j+cols, m.Rows, m.Cols))
	}
	return &Mat{Rows: rows, Cols: cols, LD: m.LD, Data: m.Data[i+j*m.LD:]}
}

// ViewInto fills dst with the same view View would return — rows [i, i+rows)
// and columns [j, j+cols) sharing storage with m — and returns dst. It
// exists so hot paths can reuse a caller-owned header instead of allocating
// one per call.
func (m *Mat) ViewInto(dst *Mat, i, j, rows, cols int) *Mat {
	if i < 0 || j < 0 || rows < 0 || cols < 0 || i+rows > m.Rows || j+cols > m.Cols {
		panic(fmt.Sprintf("matrix: view [%d:%d, %d:%d) out of %dx%d",
			i, i+rows, j, j+cols, m.Rows, m.Cols))
	}
	dst.Rows, dst.Cols, dst.LD, dst.Data = rows, cols, m.LD, m.Data[i+j*m.LD:]
	return dst
}

// Clone returns a compact deep copy of m.
func (m *Mat) Clone() *Mat {
	c := New(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		copy(c.Data[j*c.LD:j*c.LD+m.Rows], m.Data[j*m.LD:j*m.LD+m.Rows])
	}
	return c
}

// CopyFrom copies the contents of src (same shape required) into m.
func (m *Mat) CopyFrom(src *Mat) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("matrix: copy shape mismatch %dx%d <- %dx%d",
			m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for j := 0; j < m.Cols; j++ {
		copy(m.Data[j*m.LD:j*m.LD+m.Rows], src.Data[j*src.LD:j*src.LD+m.Rows])
	}
}

// Zero sets every element to zero.
func (m *Mat) Zero() {
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.LD : j*m.LD+m.Rows]
		for i := range col {
			col[i] = 0
		}
	}
}

// Fill sets every element to v.
func (m *Mat) Fill(v float64) {
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.LD : j*m.LD+m.Rows]
		for i := range col {
			col[i] = v
		}
	}
}

// Transpose returns a new compact matrix equal to mᵀ.
func (m *Mat) Transpose() *Mat {
	t := New(m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			t.Data[j+i*t.LD] = m.Data[i+j*m.LD]
		}
	}
	return t
}

// Mul returns the product m·b as a new matrix (naive reference; used by
// tests and small drivers, not by kernels).
func (m *Mat) Mul(b *Mat) *Mat {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: mul shape mismatch %dx%d · %dx%d",
			m.Rows, m.Cols, b.Rows, b.Cols))
	}
	c := New(m.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		for k := 0; k < m.Cols; k++ {
			bkj := b.Data[k+j*b.LD]
			if bkj == 0 {
				continue
			}
			mcol := m.Data[k*m.LD : k*m.LD+m.Rows]
			ccol := c.Data[j*c.LD : j*c.LD+m.Rows]
			for i := range mcol {
				ccol[i] += mcol[i] * bkj
			}
		}
	}
	return c
}

// Sub returns m − b as a new matrix.
func (m *Mat) Sub(b *Mat) *Mat {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("matrix: sub shape mismatch")
	}
	c := New(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			c.Data[i+j*c.LD] = m.Data[i+j*m.LD] - b.Data[i+j*b.LD]
		}
	}
	return c
}

// FrobNorm returns the Frobenius norm, guarding against overflow with
// scaled accumulation.
func (m *Mat) FrobNorm() float64 {
	scale, ssq := 0.0, 1.0
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			v := math.Abs(m.Data[i+j*m.LD])
			if v == 0 {
				continue
			}
			if scale < v {
				r := scale / v
				ssq = 1 + ssq*r*r
				scale = v
			} else {
				r := v / scale
				ssq += r * r
			}
		}
	}
	return scale * math.Sqrt(ssq)
}

// MaxAbs returns the largest absolute entry.
func (m *Mat) MaxAbs() float64 {
	max := 0.0
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			if v := math.Abs(m.Data[i+j*m.LD]); v > max {
				max = v
			}
		}
	}
	return max
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// two same-shaped matrices.
func MaxAbsDiff(a, b *Mat) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("matrix: diff shape mismatch")
	}
	max := 0.0
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			if v := math.Abs(a.Data[i+j*a.LD] - b.Data[i+j*b.LD]); v > max {
				max = v
			}
		}
	}
	return max
}

// UpperTriangle returns a copy of m with everything strictly below the
// diagonal zeroed; useful for extracting R factors from packed kernels.
func (m *Mat) UpperTriangle() *Mat {
	c := m.Clone()
	for j := 0; j < c.Cols; j++ {
		for i := j + 1; i < c.Rows; i++ {
			c.Data[i+j*c.LD] = 0
		}
	}
	return c
}

// String renders small matrices for debugging.
func (m *Mat) String() string {
	s := fmt.Sprintf("%dx%d:\n", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("% 11.4e ", m.Data[i+j*m.LD])
		}
		s += "\n"
	}
	return s
}
