package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTiledLayout(t *testing.T) {
	tl := NewTiled(10, 7, 4)
	if tl.MT != 3 || tl.NT != 2 {
		t.Fatalf("MT=%d NT=%d", tl.MT, tl.NT)
	}
	if tl.TileRows(0) != 4 || tl.TileRows(2) != 2 {
		t.Fatalf("tile rows %d %d", tl.TileRows(0), tl.TileRows(2))
	}
	if tl.TileCols(0) != 4 || tl.TileCols(1) != 3 {
		t.Fatalf("tile cols %d %d", tl.TileCols(0), tl.TileCols(1))
	}
}

func TestTiledExactMultiple(t *testing.T) {
	tl := NewTiled(8, 8, 4)
	if tl.MT != 2 || tl.NT != 2 || tl.TileRows(1) != 4 || tl.TileCols(1) != 4 {
		t.Fatal("exact-multiple layout wrong")
	}
}

func TestDenseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(20) + 1
		n := rng.Intn(20) + 1
		nb := rng.Intn(7) + 1
		d := NewRand(m, n, rng)
		got := FromDense(d, nb).ToDense()
		return MaxAbsDiff(d, got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTiledCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := FromDense(NewRand(9, 6, rng), 4)
	b := a.Clone()
	b.Tile(0, 0).Set(0, 0, 1e9)
	if a.Tile(0, 0).At(0, 0) == 1e9 {
		t.Fatal("clone aliases tiles")
	}
}

func TestSetTileShapeCheck(t *testing.T) {
	tl := NewTiled(10, 7, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("SetTile with wrong shape must panic")
		}
	}()
	tl.SetTile(2, 1, New(4, 4)) // layout wants 2x3
}

func TestUpperTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := NewRand(10, 6, rng)
	tl := FromDense(d, 4)
	r := tl.UpperTiles()
	if r.Rows != 6 || r.Cols != 6 {
		t.Fatalf("R shape %dx%d", r.Rows, r.Cols)
	}
	for j := 0; j < 6; j++ {
		for i := 0; i < 6; i++ {
			want := d.At(i, j)
			if i > j {
				want = 0
			}
			if r.At(i, j) != want {
				t.Fatalf("R(%d,%d) = %v want %v", i, j, r.At(i, j), want)
			}
		}
	}
}

func TestUpperTilesTallNarrow(t *testing.T) {
	// N smaller than one tile: R must still be N×N.
	rng := rand.New(rand.NewSource(9))
	d := NewRand(12, 3, rng)
	r := FromDense(d, 4).UpperTiles()
	if r.Rows != 3 || r.Cols != 3 {
		t.Fatalf("R shape %dx%d", r.Rows, r.Cols)
	}
	if r.At(0, 0) != d.At(0, 0) || r.At(2, 0) != 0 {
		t.Fatal("R content wrong")
	}
}
