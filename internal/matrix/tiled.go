package matrix

import "fmt"

// Tiled is a matrix partitioned into NB×NB tiles (edge tiles may be
// smaller). Tiles are stored independently and contiguously, which is the
// cache-friendly layout tile algorithms rely on, and which lets tiles be
// shipped between nodes as single packets.
type Tiled struct {
	M, N   int // global dimensions
	NB     int // tile size
	MT, NT int // number of tile rows / columns
	Tiles  [][]*Mat
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// NewTiled returns a zero Tiled matrix of global size m×n with tile size nb.
func NewTiled(m, n, nb int) *Tiled {
	if m < 0 || n < 0 || nb <= 0 {
		panic(fmt.Sprintf("matrix: bad tiled dimensions m=%d n=%d nb=%d", m, n, nb))
	}
	mt, nt := ceilDiv(m, nb), ceilDiv(n, nb)
	if m == 0 {
		mt = 0
	}
	if n == 0 {
		nt = 0
	}
	t := &Tiled{M: m, N: n, NB: nb, MT: mt, NT: nt}
	t.Tiles = make([][]*Mat, mt)
	for i := 0; i < mt; i++ {
		t.Tiles[i] = make([]*Mat, nt)
		for j := 0; j < nt; j++ {
			t.Tiles[i][j] = New(t.TileRows(i), t.TileCols(j))
		}
	}
	return t
}

// TileRows returns the number of rows in tile row i.
func (t *Tiled) TileRows(i int) int {
	if i == t.MT-1 {
		if r := t.M - i*t.NB; r > 0 {
			return r
		}
	}
	return t.NB
}

// TileCols returns the number of columns in tile column j.
func (t *Tiled) TileCols(j int) int {
	if j == t.NT-1 {
		if c := t.N - j*t.NB; c > 0 {
			return c
		}
	}
	return t.NB
}

// Tile returns tile (i, j).
func (t *Tiled) Tile(i, j int) *Mat { return t.Tiles[i][j] }

// SetTile replaces tile (i, j). The shape must match the layout.
func (t *Tiled) SetTile(i, j int, m *Mat) {
	if m.Rows != t.TileRows(i) || m.Cols != t.TileCols(j) {
		panic(fmt.Sprintf("matrix: tile (%d,%d) shape %dx%d does not match layout %dx%d",
			i, j, m.Rows, m.Cols, t.TileRows(i), t.TileCols(j)))
	}
	t.Tiles[i][j] = m
}

// FromDense converts a dense matrix to tile layout.
func FromDense(d *Mat, nb int) *Tiled {
	t := NewTiled(d.Rows, d.Cols, nb)
	for i := 0; i < t.MT; i++ {
		for j := 0; j < t.NT; j++ {
			t.Tiles[i][j].CopyFrom(d.View(i*nb, j*nb, t.TileRows(i), t.TileCols(j)))
		}
	}
	return t
}

// ToDense converts back to a dense column-major matrix.
func (t *Tiled) ToDense() *Mat {
	d := New(t.M, t.N)
	for i := 0; i < t.MT; i++ {
		for j := 0; j < t.NT; j++ {
			d.View(i*t.NB, j*t.NB, t.TileRows(i), t.TileCols(j)).CopyFrom(t.Tiles[i][j])
		}
	}
	return d
}

// Clone returns a deep copy.
func (t *Tiled) Clone() *Tiled {
	c := NewTiled(t.M, t.N, t.NB)
	for i := 0; i < t.MT; i++ {
		for j := 0; j < t.NT; j++ {
			c.Tiles[i][j].CopyFrom(t.Tiles[i][j])
		}
	}
	return c
}

// UpperTiles returns the dense upper-triangular R factor held in the first
// NT tile rows after a QR factorization (strictly-lower parts zeroed).
func (t *Tiled) UpperTiles() *Mat {
	n := t.N
	r := New(n, n)
	for j := 0; j < t.NT; j++ {
		for i := 0; i <= j && i < t.MT; i++ {
			rows, cols := t.TileRows(i), t.TileCols(j)
			if i*t.NB >= n {
				continue
			}
			if i*t.NB+rows > n {
				rows = n - i*t.NB
			}
			src := t.Tiles[i][j]
			dst := r.View(i*t.NB, j*t.NB, rows, cols)
			if i == j {
				for jj := 0; jj < cols; jj++ {
					for ii := 0; ii <= jj && ii < rows; ii++ {
						dst.Set(ii, jj, src.At(ii, jj))
					}
				}
			} else {
				dst.CopyFrom(src.View(0, 0, rows, cols))
			}
		}
	}
	return r
}
