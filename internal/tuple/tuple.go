// Package tuple provides the integer tuples that identify Virtual Data
// Processors (VDPs) inside a Virtual Systolic Array.
//
// A tuple is an ordered string of integers, as in the PULSAR runtime: every
// VDP is uniquely identified by its tuple, and channels address their peer
// endpoints by tuple. Tuples are small value types; they are compared
// lexicographically and can be used as map keys through Key.
package tuple

import (
	"fmt"
	"strings"
)

// Tuple is an ordered string of integers identifying a VDP.
// The zero value is the empty tuple.
type Tuple []int

// New returns a tuple of the given integers.
func New(parts ...int) Tuple {
	t := make(Tuple, len(parts))
	copy(t, parts)
	return t
}

// New2 returns the pair tuple (i, j), mirroring prt_tuple_new2 in PULSAR.
func New2(i, j int) Tuple { return Tuple{i, j} }

// New3 returns the triple tuple (i, j, k), mirroring prt_tuple_new3.
func New3(i, j, k int) Tuple { return Tuple{i, j, k} }

// New4 returns the quadruple tuple (i, j, k, l).
func New4(i, j, k, l int) Tuple { return Tuple{i, j, k, l} }

// Len returns the number of components.
func (t Tuple) Len() int { return len(t) }

// At returns the i-th component. It panics when i is out of range.
func (t Tuple) At(i int) int { return t[i] }

// Clone returns a copy that does not alias t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports whether two tuples have identical length and components.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically, shorter tuples first on ties.
// It returns -1, 0 or +1.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		switch {
		case t[i] < u[i]:
			return -1
		case t[i] > u[i]:
			return 1
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// Key returns a canonical string encoding usable as a map key.
// Distinct tuples always produce distinct keys.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// String renders the tuple as "(a, b, c)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}
