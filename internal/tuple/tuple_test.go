package tuple

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewConstructors(t *testing.T) {
	if got := New(1, 2, 3); !got.Equal(Tuple{1, 2, 3}) {
		t.Fatalf("New = %v", got)
	}
	if got := New2(4, 5); !got.Equal(Tuple{4, 5}) {
		t.Fatalf("New2 = %v", got)
	}
	if got := New3(4, 5, 6); !got.Equal(Tuple{4, 5, 6}) {
		t.Fatalf("New3 = %v", got)
	}
	if got := New4(4, 5, 6, 7); !got.Equal(Tuple{4, 5, 6, 7}) {
		t.Fatalf("New4 = %v", got)
	}
}

func TestNewCopiesInput(t *testing.T) {
	src := []int{1, 2}
	tp := New(src...)
	src[0] = 99
	if tp[0] != 1 {
		t.Fatal("New must copy its arguments")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New2(3, 4)
	b := a.Clone()
	b[0] = -1
	if a[0] != 3 {
		t.Fatal("Clone must not alias")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want bool
	}{
		{New2(1, 2), New2(1, 2), true},
		{New2(1, 2), New2(2, 1), false},
		{New2(1, 2), New3(1, 2, 0), false},
		{Tuple{}, Tuple{}, true},
		{nil, Tuple{}, true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{New2(1, 2), New2(1, 3), -1},
		{New2(1, 3), New2(1, 2), 1},
		{New2(1, 2), New2(1, 2), 0},
		{New(1), New2(1, 0), -1},
		{New2(1, 0), New(1), 1},
		{New2(0, 9), New2(1, 0), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestKeyDistinct(t *testing.T) {
	seen := map[string]Tuple{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(4) + 1
		tp := make(Tuple, n)
		for j := range tp {
			tp[j] = rng.Intn(20) - 10
		}
		k := tp.Key()
		if prev, ok := seen[k]; ok && !prev.Equal(tp) {
			t.Fatalf("key collision: %v and %v both map to %q", prev, tp, k)
		}
		seen[k] = tp
	}
}

func TestKeyAmbiguityRegression(t *testing.T) {
	// Adjacent components must not merge: (1,23) vs (12,3).
	if New2(1, 23).Key() == New2(12, 3).Key() {
		t.Fatal("keys of (1,23) and (12,3) collide")
	}
	// Negative numbers must stay separated.
	if New2(-1, 2).Key() == New2(1, -2).Key() {
		t.Fatal("keys of (-1,2) and (1,-2) collide")
	}
}

func TestString(t *testing.T) {
	if got := New3(1, -2, 3).String(); got != "(1, -2, 3)" {
		t.Fatalf("String = %q", got)
	}
	if got := (Tuple{}).String(); got != "()" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestCompareProperties(t *testing.T) {
	// Antisymmetry and consistency with Equal, property-based.
	f := func(a, b []int8) bool {
		ta := make(Tuple, len(a))
		for i, v := range a {
			ta[i] = int(v)
		}
		tb := make(Tuple, len(b))
		for i, v := range b {
			tb[i] = int(v)
		}
		c1, c2 := ta.Compare(tb), tb.Compare(ta)
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == ta.Equal(tb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyRoundTripProperty(t *testing.T) {
	// Key equality must coincide with tuple equality.
	f := func(a, b []int16) bool {
		ta := make(Tuple, len(a))
		for i, v := range a {
			ta[i] = int(v)
		}
		tb := make(Tuple, len(b))
		for i, v := range b {
			tb[i] = int(v)
		}
		return (ta.Key() == tb.Key()) == ta.Equal(tb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
