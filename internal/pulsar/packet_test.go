package pulsar

import (
	"math/rand"
	"testing"

	"pulsarqr/internal/matrix"
)

func TestPacketTileTypeMismatchPanics(t *testing.T) {
	p := NewPacket([]int{1})
	defer func() {
		if recover() == nil {
			t.Fatal("Tile() on non-tile payload must panic")
		}
	}()
	p.Tile()
}

func TestDecodeMatErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},                                // too short
		{255, 255, 255, 255, 0, 0, 0, 0},         // absurd rows
		append(EncodeMat(matrix.Identity(2)), 0), // trailing byte
	}
	for i, b := range cases {
		if _, err := DecodeMat(b); err == nil {
			t.Errorf("case %d: expected decode error", i)
		}
	}
}

func TestUnmarshalPacketErrors(t *testing.T) {
	if _, err := UnmarshalPacket(nil); err == nil {
		t.Fatal("empty payload must fail")
	}
	if _, err := UnmarshalPacket([]byte{200, 1, 2}); err == nil {
		t.Fatal("unknown codec id must fail")
	}
	if _, err := UnmarshalPacket([]byte{2, 1, 2, 3}); err == nil {
		t.Fatal("misaligned float64 payload must fail")
	}
}

func TestEncodeMatViewCompacts(t *testing.T) {
	// Encoding a strided view must serialize only the view's elements.
	m := matrix.NewRand(6, 6, rand.New(rand.NewSource(77)))
	v := m.View(1, 1, 3, 2)
	got, err := DecodeMat(EncodeMat(v))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 3 || got.Cols != 2 || matrix.MaxAbsDiff(got, v) != 0 {
		t.Fatal("view round trip wrong")
	}
}
