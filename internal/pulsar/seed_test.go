package pulsar

import (
	"testing"
	"time"

	"pulsarqr/internal/tuple"
)

func TestSeedActsAsDelayRegister(t *testing.T) {
	// Two-cell pipeline with one seed token between them: cell 1 pairs
	// packet t with the output of cell 0 for packet t-1.
	s := New(Config{})
	s.NewVDP(tuple.New(0), 3, func(v *VDP) {
		v.Push(0, v.Pop(0))
	}, "", 1, 1)
	var pairs [][2]int
	s.NewVDP(tuple.New(1), 3, func(v *VDP) {
		delayed := v.Pop(0).Data.([]int)[0] // seeded/delayed stream
		fresh := v.Pop(1).Data.([]int)[0]   // direct stream
		pairs = append(pairs, [2]int{delayed, fresh})
	}, "", 2, 0)
	s.Connect(tuple.New(0), 0, tuple.New(1), 0, 64, false)
	s.Input(tuple.New(1), 1, 64)
	s.Input(tuple.New(0), 0, 64)
	s.Seed(tuple.New(1), 0, NewPacket([]int{-1}))
	for i := 0; i < 3; i++ {
		s.Inject(tuple.New(0), 0, NewPacket([]int{i}))
		s.Inject(tuple.New(1), 1, NewPacket([]int{i}))
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{-1, 0}, {0, 1}, {1, 2}}
	if len(pairs) != len(want) {
		t.Fatalf("pairs: %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("pairs = %v, want %v", pairs, want)
		}
	}
}

func TestToroidalDeadLettersDoNotHangShutdown(t *testing.T) {
	// Regression test: a ring whose final firings push tokens nobody will
	// consume, across node boundaries. The proxies must still shut down
	// (they used to consume the stop kick while delivering the dead
	// letters and then sleep forever).
	const cells, laps = 4, 3
	s := New(Config{Nodes: 2, ThreadsPerNode: 1,
		Map: func(tp tuple.Tuple) (int, int) { return tp.At(0) % 2, 0 }})
	for c := 0; c < cells; c++ {
		s.NewVDP(tuple.New(c), laps, func(v *VDP) {
			v.Push(0, v.Pop(0))
		}, "", 1, 1)
	}
	for c := 0; c < cells; c++ {
		s.Connect(tuple.New(c), 0, tuple.New((c+1)%cells), 0, 64, false)
	}
	s.Seed(tuple.New(0), 0, NewPacket([]int{1}))
	s.Seed(tuple.New(2), 0, NewPacket([]int{2}))
	done := make(chan error, 1)
	go func() { done <- s.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung on dead letters")
	}
	if s.Fired() != cells*laps {
		t.Fatalf("fired %d, want %d", s.Fired(), cells*laps)
	}
}

func TestSeedDuringRunPanics(t *testing.T) {
	s := New(Config{})
	s.NewVDP(tuple.New(0), 1, func(v *VDP) {
		defer func() {
			if recover() == nil {
				t.Error("Seed during run must panic")
			}
		}()
		v.Pop(0)
		s.Seed(tuple.New(0), 0, NewPacket([]int{1}))
	}, "", 1, 0)
	s.Input(tuple.New(0), 0, 64)
	s.Inject(tuple.New(0), 0, NewPacket([]int{0}))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSeedUnknownVDPPanics(t *testing.T) {
	s := New(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("Seed of unknown VDP must panic")
		}
	}()
	s.Seed(tuple.New(9), 0, NewPacket([]int{0}))
}

func TestAllInputsDisabledFiresLikeGenerator(t *testing.T) {
	// A VDP that disables every input must keep firing until its counter
	// runs out (the domino diagonal's final dgeqrt relies on this).
	var fires int
	s := New(Config{})
	s.NewVDP(tuple.New(0), 3, func(v *VDP) {
		fires++
		if fires == 1 {
			v.Pop(0)
			v.DisableInput(0)
		}
	}, "", 1, 0)
	s.Input(tuple.New(0), 0, 64)
	s.Inject(tuple.New(0), 0, NewPacket([]int{1}))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fires != 3 {
		t.Fatalf("fired %d times, want 3", fires)
	}
}

func TestPopEmptySlotPanics(t *testing.T) {
	s := New(Config{DeadlockTimeout: time.Hour})
	done := make(chan any, 1)
	s.NewVDP(tuple.New(0), 1, func(v *VDP) {
		defer func() { done <- recover() }()
		v.Pop(0) // consume the only packet
		v.Pop(0) // empty: must panic
	}, "", 1, 0)
	s.Input(tuple.New(0), 0, 64)
	s.Inject(tuple.New(0), 0, NewPacket([]int{1}))
	_ = s.Run()
	if r := <-done; r == nil {
		t.Fatal("popping an empty channel must panic")
	}
}

func TestTryPopEmptyReturnsNil(t *testing.T) {
	s := New(Config{})
	var got *Packet = NewPacket(nil)
	s.NewVDP(tuple.New(0), 1, func(v *VDP) {
		v.Pop(0)
		got = v.TryPop(0)
	}, "", 1, 0)
	s.Input(tuple.New(0), 0, 64)
	s.Inject(tuple.New(0), 0, NewPacket([]int{1}))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("TryPop on empty channel must return nil")
	}
}

func TestPushUnconnectedSlotPanics(t *testing.T) {
	s := New(Config{})
	done := make(chan any, 1)
	s.NewVDP(tuple.New(0), 1, func(v *VDP) {
		defer func() { done <- recover() }()
		v.Push(0, NewPacket([]int{1}))
	}, "", 0, 1)
	_ = s.Run()
	if r := <-done; r == nil {
		t.Fatal("pushing to an unconnected slot must panic")
	}
}

func TestInjectNonExternalPanics(t *testing.T) {
	s := New(Config{})
	s.NewVDP(tuple.New(0), 1, func(v *VDP) { v.Pop(0) }, "", 1, 1)
	s.NewVDP(tuple.New(1), 1, func(v *VDP) { v.Pop(0) }, "", 1, 0)
	s.Connect(tuple.New(0), 0, tuple.New(1), 0, 64, false)
	defer func() {
		if recover() == nil {
			t.Fatal("Inject into an internal channel must panic")
		}
	}()
	s.Inject(tuple.New(1), 0, NewPacket([]int{1}))
}

func TestDuplicateCodecIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate codec id must panic")
		}
	}()
	RegisterCodec(Codec{ID: 1}) // 1 is the built-in matrix codec
}

func TestVDPAccessors(t *testing.T) {
	s := New(Config{Nodes: 1, ThreadsPerNode: 2, Params: "globals"})
	var gotParams any
	var gotCounter int
	v := s.NewVDP(tuple.New(7, 8), 2, func(v *VDP) {
		v.Pop(0)
		gotParams = v.Params()
		gotCounter = v.Counter()
	}, "myclass", 1, 0)
	if !v.Tuple().Equal(tuple.New(7, 8)) || v.Class() != "myclass" {
		t.Fatal("accessors wrong before run")
	}
	s.Input(tuple.New(7, 8), 0, 64)
	s.Inject(tuple.New(7, 8), 0, NewPacket([]int{1}))
	s.Inject(tuple.New(7, 8), 0, NewPacket([]int{2}))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if gotParams != "globals" {
		t.Fatalf("Params = %v", gotParams)
	}
	if gotCounter != 1 { // counter not yet decremented during last firing
		t.Fatalf("Counter during final firing = %d", gotCounter)
	}
	if s.VDPCount() != 1 || s.ChannelCount() != 1 {
		t.Fatalf("counts: %d VDPs %d channels", s.VDPCount(), s.ChannelCount())
	}
}

func TestInputLenDiagnostic(t *testing.T) {
	s := New(Config{})
	var lens []int
	s.NewVDP(tuple.New(0), 2, func(v *VDP) {
		lens = append(lens, v.InputLen(0))
		v.Pop(0)
	}, "", 1, 0)
	s.Input(tuple.New(0), 0, 64)
	s.Inject(tuple.New(0), 0, NewPacket([]int{1}))
	s.Inject(tuple.New(0), 0, NewPacket([]int{2}))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(lens) != 2 || lens[0] != 2 || lens[1] != 1 {
		t.Fatalf("queue lengths: %v", lens)
	}
}
