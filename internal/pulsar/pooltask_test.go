package pulsar

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pulsarqr/internal/tuple"
)

// Exec runs every task, passes the worker's private state, and tasks run
// concurrently across workers.
func TestPoolExec(t *testing.T) {
	p := NewPool(4, func(thread int) any { return thread })
	defer p.Close()

	const n = 200
	var ran atomic.Int64
	var wg sync.WaitGroup
	states := make(chan int, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		ok := p.Exec(func(state any) {
			defer wg.Done()
			id, isInt := state.(int)
			if !isInt {
				t.Errorf("task state %T, want int", state)
			}
			states <- id
			ran.Add(1)
		})
		if !ok {
			t.Fatalf("Exec %d refused on an open pool", i)
		}
	}
	wg.Wait()
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d tasks, want %d", got, n)
	}
	close(states)
	for id := range states {
		if id < 0 || id >= 4 {
			t.Fatalf("task saw worker state %d outside [0,4)", id)
		}
	}
}

// A task parked behind a slow sibling is stolen by an idle worker: the
// stream keeps flowing even though one worker's queue head blocks.
func TestPoolExecStealing(t *testing.T) {
	p := NewPool(2, nil)
	defer p.Close()

	release := make(chan struct{})
	blocked := make(chan struct{})
	var fast atomic.Int64

	// The first Exec lands on one worker and wedges it until released.
	p.Exec(func(any) {
		close(blocked)
		<-release
	})
	<-blocked

	// Subsequent tasks round-robin onto both workers; the ones queued behind
	// the wedged worker must be stolen by the idle one.
	const n = 8
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		p.Exec(func(any) {
			fast.Add(1)
			wg.Done()
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d tasks completed while one worker was wedged (stealing broken)", fast.Load(), n)
	}
	close(release)
}

// Exec refuses tasks once the pool has closed.
func TestPoolExecAfterClose(t *testing.T) {
	p := NewPool(2, nil)
	p.Close()
	if p.Exec(func(any) {}) {
		t.Fatal("Exec accepted a task on a closed pool")
	}
}

// Exec tasks and a pooled VSA run share the workers without starving each
// other: a factorization attached to the pool completes while a steady
// stream of tasks executes.
func TestPoolExecAlongsideVSA(t *testing.T) {
	p := NewPool(2, nil)
	defer p.Close()

	stop := make(chan struct{})
	var tasks atomic.Int64
	var twg sync.WaitGroup
	feeder := make(chan struct{}, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			twg.Add(1)
			if !p.Exec(func(any) { tasks.Add(1); twg.Done() }) {
				twg.Done()
				return
			}
			select {
			case <-feeder: // cap the flood so the queue stays bounded
			case <-time.After(time.Millisecond):
			}
		}
	}()

	s := New(Config{Nodes: 1, Pool: p})
	var fired atomic.Int64
	for i := 0; i < 16; i++ {
		s.NewVDP(tuple.New(i), 4, func(v *VDP) { fired.Add(1) }, "t", 0, 0)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("pooled run alongside tasks: %v", err)
	}
	if fired.Load() != 64 {
		t.Fatalf("VSA fired %d times, want 64", fired.Load())
	}
	close(stop)
	twg.Wait()
	if tasks.Load() == 0 {
		t.Fatal("no Exec tasks ran alongside the VSA")
	}
}
