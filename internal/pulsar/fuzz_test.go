package pulsar

import (
	"testing"

	"pulsarqr/internal/matrix"
)

// FuzzDecodeMat drives the network-facing matrix decoder with arbitrary
// bytes: it must never panic or allocate absurdly, only return errors.
func FuzzDecodeMat(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(EncodeMat(matrix.Identity(3)))
	f.Add(EncodeMat(matrix.New(2, 5)))
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeMat(b)
		if err != nil {
			return
		}
		// A successful decode must round-trip.
		if got := EncodeMat(m); len(got) != len(b) {
			t.Fatalf("round trip length %d != %d", len(got), len(b))
		}
	})
}

// FuzzUnmarshalPacket drives the codec dispatcher.
func FuzzUnmarshalPacket(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{3, 1})
	f.Add([]byte{4, 10, 20})
	f.Fuzz(func(t *testing.T, b []byte) {
		_, _ = UnmarshalPacket(b) // must not panic
	})
}
