package pulsar

import (
	"sync"
	"testing"

	"pulsarqr/internal/transport"
	"pulsarqr/internal/tuple"
)

// TestDistributedPipeline runs the chain with one VSA instance per rank,
// each seeing only its own node's VDPs, wired together through explicit
// transport endpoints — the execution model used when ranks are separate
// OS processes. The in-process Local substrate stands in for TCP here, so
// the test exercises exactly the distributed code path without sockets.
func TestDistributedPipeline(t *testing.T) {
	const (
		nodes   = 3
		nVDP    = 9
		packets = 4
	)
	lw := transport.NewLocal(nodes)
	arrays := make([]*VSA, nodes)
	var wg sync.WaitGroup
	errs := make([]error, nodes)
	for r := 0; r < nodes; r++ {
		// Every rank builds the identical array; Comm selects its share.
		cfg := Config{
			Nodes: nodes, ThreadsPerNode: 2,
			Map:  func(tp tuple.Tuple) (int, int) { return tp.At(0) % nodes, tp.At(0) % 2 },
			Comm: lw.Endpoint(r),
		}
		s := buildChain(cfg, nVDP, packets)
		arrays[r] = s
		if r == 0 { // tuple 0 maps to node 0: inject on its owner only
			for k := 0; k < packets; k++ {
				s.Inject(tuple.New(0), 0, NewPacket([]int{k}))
			}
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = arrays[r].Run()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}

	// The collector output lives on the rank owning the last VDP.
	owner := (nVDP - 1) % nodes
	for r, s := range arrays {
		out := s.Collected(tuple.New(nVDP-1), 0)
		if r == owner {
			if len(out) != packets {
				t.Fatalf("owner rank %d collected %d packets, want %d", r, len(out), packets)
			}
			for k, p := range out {
				got := p.Data.([]int)
				if got[0] != k || len(got) != nVDP+1 {
					t.Fatalf("packet %d corrupted: %v", k, got)
				}
				for i := 0; i < nVDP; i++ {
					if got[i+1] != i {
						t.Fatalf("packet %d hop order wrong: %v", k, got)
					}
				}
			}
		} else if len(out) != 0 {
			t.Fatalf("rank %d holds %d collected packets, want 0", r, len(out))
		}
	}

	// Each rank fired only its own VDPs.
	var fired int64
	for _, s := range arrays {
		if f := s.Fired(); f != packets*nVDP/nodes {
			t.Fatalf("rank fired %d, want %d", f, packets*nVDP/nodes)
		}
		fired += s.Fired()
	}
	if fired != packets*nVDP {
		t.Fatalf("total fired %d, want %d", fired, packets*nVDP)
	}

	// The chain crosses a rank boundary at every hop, so every rank but
	// the last sent packets; stats must reflect that.
	for r := 0; r < nodes; r++ {
		msgs, bytes := arrays[r].NetworkStats()
		if msgs == 0 || bytes == 0 {
			t.Fatalf("rank %d reports no network traffic (%d msgs, %d bytes)", r, msgs, bytes)
		}
	}
}

// TestDistributedSizeMismatch verifies the guard against a communicator
// that does not span Config.Nodes ranks.
func TestDistributedSizeMismatch(t *testing.T) {
	lw := transport.NewLocal(2)
	s := buildChain(Config{Nodes: 3, Comm: lw.Endpoint(0)}, 3, 1)
	if err := s.Run(); err == nil {
		t.Fatal("size mismatch not rejected")
	}
}
