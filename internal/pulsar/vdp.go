package pulsar

import (
	"fmt"

	"pulsarqr/internal/tuple"
)

// Func is the executable code of a VDP, invoked once per firing. Inside it
// the VDP may pop from its input channels, run computational kernels, push
// to its output channels, and reconfigure its own input channels.
type Func func(v *VDP)

// VDP is a Virtual Data Processor: the software descendant of a systolic
// array's processing element. It is uniquely identified by its tuple, owns
// persistent local storage, and fires when every active input channel
// holds a packet. Its counter defines its life span: after that many
// firings the VDP is destroyed.
type VDP struct {
	tup     tuple.Tuple
	counter int
	fn      Func
	local   any
	class   string // label for tracing (e.g. "panel", "update", "binary")

	in, out []*Channel

	// Placement, resolved by the mapping function at Run time.
	node, thread int

	vsa  *VSA
	dead bool
}

// Tuple returns the VDP's identifying tuple.
func (v *VDP) Tuple() tuple.Tuple { return v.tup }

// Counter returns the remaining number of firings.
func (v *VDP) Counter() int { return v.counter }

// Class returns the trace class assigned at construction.
func (v *VDP) Class() string { return v.class }

// Node returns the node this VDP was mapped to (valid during Run).
func (v *VDP) Node() int { return v.node }

// Thread returns the worker thread this VDP was mapped to (valid during Run).
func (v *VDP) Thread() int { return v.thread }

// Local returns the VDP's persistent local storage.
func (v *VDP) Local() any { return v.local }

// SetLocal replaces the VDP's persistent local storage.
func (v *VDP) SetLocal(x any) { v.local = x }

// Params returns the VSA's read-only global parameters.
func (v *VDP) Params() any { return v.vsa.params }

// WorkerState returns the private state of the worker thread currently
// firing this VDP (created by Config.WorkerState), or nil when no factory
// was configured or the VDP is not being fired by the runtime. Because a
// worker fires one VDP at a time, the state may be used without locking for
// the duration of the firing.
func (v *VDP) WorkerState() any {
	if v.node < len(v.vsa.workers) && v.thread < len(v.vsa.workers[v.node]) {
		if w := v.vsa.workers[v.node][v.thread]; w != nil {
			return w.state
		}
	}
	return nil
}

// Pop removes and returns the packet at the head of input channel slot.
// Calling it on an empty or unconnected slot panics: the firing rule
// guarantees one packet per active input at fire time, so an empty pop is
// always a programming error in the VSA's construction.
func (v *VDP) Pop(slot int) *Packet {
	c := v.inputChannel(slot)
	p := c.pop()
	if p == nil {
		panic(fmt.Sprintf("pulsar: VDP %v popped empty input slot %d (%s)",
			v.tup, slot, c))
	}
	return p
}

// TryPop removes and returns the head packet of input channel slot, or nil
// when the channel is empty.
func (v *VDP) TryPop(slot int) *Packet {
	return v.inputChannel(slot).pop()
}

// Push sends a packet to output channel slot. For an intra-node channel the
// pointer is handed to the destination queue zero-copy; for an inter-node
// channel the payload is marshaled and passed to the node's proxy, and for
// a collector channel it is appended to the VSA's collection for the slot.
func (v *VDP) Push(slot int, p *Packet) {
	if slot < 0 || slot >= len(v.out) || v.out[slot] == nil {
		panic(fmt.Sprintf("pulsar: VDP %v has no output channel in slot %d", v.tup, slot))
	}
	v.vsa.route(v.out[slot], p)
}

// EnableInput (re)activates input channel slot so that it participates in
// the firing rule again. Mirrors PULSAR's channel enable operation; the QR
// array uses it for the hand-off from the binary tree into a flat tree.
func (v *VDP) EnableInput(slot int) {
	v.inputChannel(slot).setActive(true)
	// Enabling may complete this VDP's readiness with a packet that is
	// already queued; make sure its worker takes another look.
	if v.vsa.running.Load() {
		v.vsa.wakeWorker(v.node, v.thread)
	}
}

// DisableInput deactivates input channel slot: the channel still buffers
// arriving packets but no longer gates firing.
func (v *VDP) DisableInput(slot int) {
	v.inputChannel(slot).setActive(false)
}

// DestroyInput permanently removes input channel slot, dropping any queued
// packets. A destroyed channel never participates in the firing rule.
func (v *VDP) DestroyInput(slot int) {
	v.inputChannel(slot).destroy()
}

// InputLen returns the number of queued packets in input slot (diagnostics).
func (v *VDP) InputLen(slot int) int { return v.inputChannel(slot).len() }

func (v *VDP) inputChannel(slot int) *Channel {
	if slot < 0 || slot >= len(v.in) || v.in[slot] == nil {
		panic(fmt.Sprintf("pulsar: VDP %v has no input channel in slot %d", v.tup, slot))
	}
	return v.in[slot]
}

// ready reports whether the VDP may fire: every active input channel
// holds a packet. The rule is vacuous for disabled, destroyed or
// unconnected channels, so a VDP whose inputs are all disabled fires like
// a generator (the domino array's diagonal uses exactly this for its
// input-free final dgeqrt), as does a VDP with no inputs at all.
func (v *VDP) ready() bool {
	if v.dead {
		return false
	}
	for _, c := range v.in {
		if c == nil {
			continue
		}
		if pass, _ := c.gate(); !pass {
			return false
		}
	}
	return true
}
