package pulsar

import (
	"sync"
	"testing"

	"pulsarqr/internal/transport"
	"pulsarqr/internal/tuple"
)

// WaitHook must see every worker's park intervals: each idle worker parks
// at least once at end of run, and the intervals must be well-formed.
func TestWaitHookEvents(t *testing.T) {
	var mu sync.Mutex
	var waits []WaitEvent
	s := buildChain(Config{
		Nodes: 1, ThreadsPerNode: 2,
		WaitHook: func(e WaitEvent) {
			mu.Lock()
			waits = append(waits, e)
			mu.Unlock()
		},
	}, 5, 3)
	for k := 0; k < 3; k++ {
		s.Inject(tuple.New(0), 0, NewPacket([]int{k}))
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(waits) == 0 {
		t.Fatal("no wait events recorded")
	}
	seen := map[int]bool{}
	for _, e := range waits {
		if e.Node != 0 || e.Thread < 0 || e.Thread >= 2 {
			t.Fatalf("bad lane: %+v", e)
		}
		if e.End.Before(e.Start) {
			t.Fatalf("negative interval: %+v", e)
		}
		seen[e.Thread] = true
	}
	// Both workers park at least once (at the latest when the run drains).
	if len(seen) != 2 {
		t.Fatalf("wait events from threads %v, want both", seen)
	}
}

// CommHook must see the proxy's sends and recvs with the right peers and
// sizes, plus exactly one closing barrier per rank (the trace clock anchor).
func TestCommHookEvents(t *testing.T) {
	const (
		nodes   = 2
		nVDP    = 4
		packets = 2
	)
	lw := transport.NewLocal(nodes)
	comms := make([][]CommEvent, nodes)
	var mus [nodes]sync.Mutex
	arrays := make([]*VSA, nodes)
	var wg sync.WaitGroup
	errs := make([]error, nodes)
	for r := 0; r < nodes; r++ {
		r := r
		cfg := Config{
			Nodes: nodes, ThreadsPerNode: 2,
			Map:  func(tp tuple.Tuple) (int, int) { return tp.At(0) % nodes, 0 },
			Comm: lw.Endpoint(r),
			CommHook: func(e CommEvent) {
				mus[r].Lock()
				comms[r] = append(comms[r], e)
				mus[r].Unlock()
			},
		}
		arrays[r] = buildChain(cfg, nVDP, packets)
		if r == 0 {
			for k := 0; k < packets; k++ {
				arrays[r].Inject(tuple.New(0), 0, NewPacket([]int{k}))
			}
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = arrays[r].Run()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 0; r < nodes; r++ {
		var sends, recvs, barriers int
		for _, e := range comms[r] {
			if e.Node != r {
				t.Fatalf("rank %d event carries node %d", r, e.Node)
			}
			if e.End.Before(e.Start) {
				t.Fatalf("negative interval: %+v", e)
			}
			switch e.Kind {
			case CommSend:
				if e.Peer != 1-r || e.Bytes <= 0 {
					t.Fatalf("rank %d send: %+v", r, e)
				}
				sends++
			case CommRecv:
				if e.Peer != 1-r || e.Bytes <= 0 {
					t.Fatalf("rank %d recv: %+v", r, e)
				}
				recvs++
			case CommBarrier:
				if e.Peer != -1 {
					t.Fatalf("barrier with peer %d", e.Peer)
				}
				barriers++
			}
		}
		// The 0-1-0-1 chain crosses the boundary at every hop: both ranks
		// send and both receive.
		if sends == 0 || recvs == 0 {
			t.Fatalf("rank %d: %d sends, %d recvs", r, sends, recvs)
		}
		if barriers != 1 {
			t.Fatalf("rank %d: %d barrier events, want 1", r, barriers)
		}
		// The barrier is the run's last comm event — it anchors the merged
		// clock, so nothing may follow it.
		if last := comms[r][len(comms[r])-1]; last.Kind != CommBarrier {
			t.Fatalf("rank %d: last comm event is %v, want barrier", r, last.Kind)
		}
	}
}

// Pool.OnWait delivers pooled workers' park intervals (Config.WaitHook is
// documented to be ignored for pooled runs).
func TestPoolOnWait(t *testing.T) {
	p := NewPool(2, nil)
	defer p.Close()
	var mu sync.Mutex
	var waits []WaitEvent
	p.OnWait(func(e WaitEvent) {
		mu.Lock()
		waits = append(waits, e)
		mu.Unlock()
	})
	s := buildChain(Config{Nodes: 1, ThreadsPerNode: 2, Pool: p}, 4, 2)
	for k := 0; k < 2; k++ {
		s.Inject(tuple.New(0), 0, NewPacket([]int{k}))
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(waits)
	mu.Unlock()
	if n == 0 {
		t.Fatal("no wait events from the pool")
	}
	// Uninstall. A worker parked across the uninstall emits one trailing
	// event with the old hook when it next wakes (the hook is re-read at
	// every park entry), so further runs may add at most one event per
	// worker — never more.
	p.OnWait(nil)
	for run := 0; run < 2; run++ {
		s2 := buildChain(Config{Nodes: 1, ThreadsPerNode: 2, Pool: p}, 4, 2)
		for k := 0; k < 2; k++ {
			s2.Inject(tuple.New(0), 0, NewPacket([]int{k}))
		}
		if err := s2.Run(); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(waits) > n+2 {
		t.Fatalf("OnWait(nil) did not uninstall: %d -> %d events", n, len(waits))
	}
}
