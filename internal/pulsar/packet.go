// Package pulsar implements the PULSAR Runtime (PRT): a lightweight layer
// that maps a Virtual Systolic Array — Virtual Data Processors (VDPs)
// connected by FIFO channels — onto a collection of "nodes", each running a
// set of worker threads and one proxy dedicated to inter-node
// communication, exactly as described in §IV of the paper.
//
// Execution is data-stream-driven: a VDP fires when every one of its
// active input channels holds a packet. Firing runs the VDP's function,
// which may pop packets, invoke computational kernels, create packets and
// push them to output channels. Each firing decrements the VDP's counter;
// at zero the VDP is destroyed. Intra-node channels hand packet pointers
// across zero-copy; inter-node channels marshal payloads and move them
// through a pluggable transport (in-process by default, TCP between real
// OS processes via Config.Comm) using one tag per channel within each node
// pair, mirroring the six-call MPI usage of the original runtime.
package pulsar

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"pulsarqr/internal/matrix"
)

// Packet is the unit of data flowing through channels. Within a node the
// pointer itself is handed over (zero-copy aliasing); across nodes the
// payload is marshaled with a registered codec.
type Packet struct {
	Data any
}

// NewPacket wraps a payload in a packet.
func NewPacket(data any) *Packet { return &Packet{Data: data} }

// Tile returns the payload as a *matrix.Mat, panicking with a descriptive
// message on type mismatch; it is the common case in the QR array.
func (p *Packet) Tile() *matrix.Mat {
	t, ok := p.Data.(*matrix.Mat)
	if !ok {
		panic(fmt.Sprintf("pulsar: packet payload is %T, not a tile", p.Data))
	}
	return t
}

// Codec (un)marshals one payload type for inter-node transport. Encode
// must report false when the value is not of its type so the registry can
// try the next codec.
type Codec struct {
	ID     byte
	Encode func(v any) ([]byte, bool)
	Decode func(b []byte) (any, error)
	// EncodeAppend, when non-nil, appends the payload encoding to dst and
	// returns the extended slice instead of allocating a fresh one. The
	// runtime's inter-node send path prefers it so marshal buffers can be
	// pooled across packets. On a type mismatch it must report false
	// without having grown dst's contents meaningfully (the caller
	// discards the returned slice in that case).
	EncodeAppend func(dst []byte, v any) ([]byte, bool)
}

var (
	codecMu  sync.RWMutex
	codecs   = map[byte]Codec{}
	codecSeq []Codec
)

// RegisterCodec installs a payload codec. IDs below 16 are reserved for
// the built-in codecs; registering a duplicate ID panics.
func RegisterCodec(c Codec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecs[c.ID]; dup {
		panic(fmt.Sprintf("pulsar: duplicate codec id %d", c.ID))
	}
	codecs[c.ID] = c
	codecSeq = append(codecSeq, c)
}

func init() {
	RegisterCodec(Codec{
		ID: 1,
		Encode: func(v any) ([]byte, bool) {
			m, ok := v.(*matrix.Mat)
			if !ok {
				return nil, false
			}
			return EncodeMat(m), true
		},
		EncodeAppend: func(dst []byte, v any) ([]byte, bool) {
			m, ok := v.(*matrix.Mat)
			if !ok {
				return dst, false
			}
			return AppendMat(dst, m), true
		},
		Decode: func(b []byte) (any, error) { return DecodeMat(b) },
	})
	RegisterCodec(Codec{
		ID: 2,
		Encode: func(v any) ([]byte, bool) {
			f, ok := v.([]float64)
			if !ok {
				return nil, false
			}
			out := make([]byte, 8*len(f))
			for i, x := range f {
				binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
			}
			return out, true
		},
		Decode: func(b []byte) (any, error) {
			if len(b)%8 != 0 {
				return nil, fmt.Errorf("pulsar: float64 payload length %d", len(b))
			}
			f := make([]float64, len(b)/8)
			for i := range f {
				f[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
			}
			return f, nil
		},
	})
	RegisterCodec(Codec{
		ID: 3,
		Encode: func(v any) ([]byte, bool) {
			s, ok := v.([]int)
			if !ok {
				return nil, false
			}
			out := make([]byte, 8*len(s))
			for i, x := range s {
				binary.LittleEndian.PutUint64(out[8*i:], uint64(int64(x)))
			}
			return out, true
		},
		Decode: func(b []byte) (any, error) {
			if len(b)%8 != 0 {
				return nil, fmt.Errorf("pulsar: int payload length %d", len(b))
			}
			s := make([]int, len(b)/8)
			for i := range s {
				s[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
			}
			return s, nil
		},
	})
	RegisterCodec(Codec{
		ID: 4,
		Encode: func(v any) ([]byte, bool) {
			b, ok := v.([]byte)
			if !ok {
				return nil, false
			}
			out := make([]byte, len(b))
			copy(out, b)
			return out, true
		},
		Decode: func(b []byte) (any, error) {
			out := make([]byte, len(b))
			copy(out, b)
			return out, nil
		},
	})
}

// EncodeMat serializes a matrix compactly (rows, cols, column-major data).
func EncodeMat(m *matrix.Mat) []byte {
	return AppendMat(make([]byte, 0, 8+8*m.Rows*m.Cols), m)
}

// AppendMat appends EncodeMat's serialization of m to dst and returns the
// extended slice, allocating only when dst lacks capacity.
func AppendMat(dst []byte, m *matrix.Mat) []byte {
	n := len(dst)
	dst = growBytes(dst, 8+8*m.Rows*m.Cols)
	out := dst[n:]
	binary.LittleEndian.PutUint32(out[0:], uint32(m.Rows))
	binary.LittleEndian.PutUint32(out[4:], uint32(m.Cols))
	o := 8
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			binary.LittleEndian.PutUint64(out[o:], math.Float64bits(m.At(i, j)))
			o += 8
		}
	}
	return dst
}

// growBytes extends b by n bytes (contents unspecified), reallocating only
// when capacity is insufficient.
func growBytes(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n)
	copy(nb, b)
	return nb
}

// DecodeMat reverses EncodeMat.
func DecodeMat(b []byte) (*matrix.Mat, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("pulsar: matrix payload too short (%d bytes)", len(b))
	}
	rows := int(binary.LittleEndian.Uint32(b[0:]))
	cols := int(binary.LittleEndian.Uint32(b[4:]))
	const maxDim = 1 << 28 // defends the decoder against hostile headers
	if rows < 0 || cols < 0 || rows > maxDim || cols > maxDim || len(b) != 8+8*rows*cols {
		return nil, fmt.Errorf("pulsar: matrix payload %d bytes for %dx%d", len(b), rows, cols)
	}
	m := matrix.New(rows, cols)
	o := 8
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			m.Set(i, j, math.Float64frombits(binary.LittleEndian.Uint64(b[o:])))
			o += 8
		}
	}
	return m, nil
}

// MarshalPacket serializes a packet for inter-node transport: one codec ID
// byte followed by the codec's payload bytes. Besides the runtime's own
// inter-node channels, distributed drivers use it to ship collector output
// between processes.
func MarshalPacket(p *Packet) ([]byte, error) {
	return appendPacket(nil, p)
}

// appendPacket appends the wire form of p (codec ID byte + payload) to dst.
// MarshalPacket is this with a nil dst and so always returns a fresh slice;
// the runtime's inter-node send path passes pooled buffers instead.
func appendPacket(dst []byte, p *Packet) ([]byte, error) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	for _, c := range codecSeq {
		if c.EncodeAppend != nil {
			if out, ok := c.EncodeAppend(append(dst, c.ID), p.Data); ok {
				return out, nil
			}
			continue // mismatch left dst's length unchanged; try the next codec
		}
		if b, ok := c.Encode(p.Data); ok {
			return append(append(dst, c.ID), b...), nil
		}
	}
	return nil, fmt.Errorf("pulsar: no codec for payload type %T", p.Data)
}

// UnmarshalPacket reverses MarshalPacket.
func UnmarshalPacket(b []byte) (*Packet, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("pulsar: empty packet payload")
	}
	codecMu.RLock()
	c, ok := codecs[b[0]]
	codecMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("pulsar: unknown codec id %d", b[0])
	}
	v, err := c.Decode(b[1:])
	if err != nil {
		return nil, err
	}
	return &Packet{Data: v}, nil
}
