package pulsar

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pulsarqr/internal/tuple"
)

// runChainOnPool builds a chain VSA attached to the pool, injects packets,
// runs it, and verifies the collected output.
func runChainOnPool(t *testing.T, p *Pool, stages, packets, base int) {
	t.Helper()
	s := buildChain(Config{Nodes: 1, Pool: p}, stages, packets)
	for k := 0; k < packets; k++ {
		s.Inject(tuple.New(0), 0, NewPacket([]int{base + k}))
	}
	if err := s.Run(); err != nil {
		t.Errorf("pooled run: %v", err)
		return
	}
	out := s.Collected(tuple.New(stages-1), 0)
	if len(out) != packets {
		t.Errorf("collected %d packets, want %d", len(out), packets)
		return
	}
	for k, pkt := range out {
		got := pkt.Data.([]int)
		want := []int{base + k}
		for i := 0; i < stages; i++ {
			want = append(want, i)
		}
		if len(got) != len(want) {
			t.Errorf("packet %d: got %v want %v", k, got, want)
			return
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("packet %d: got %v want %v", k, got, want)
				return
			}
		}
	}
}

func TestPoolSingleRun(t *testing.T) {
	p := NewPool(2, nil)
	defer p.Close()
	runChainOnPool(t, p, 5, 3, 100)
}

func TestPoolConcurrentRuns(t *testing.T) {
	p := NewPool(3, nil)
	defer p.Close()
	var wg sync.WaitGroup
	for j := 0; j < 8; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			runChainOnPool(t, p, 3+j%4, 2+j%3, 1000*j)
		}(j)
	}
	wg.Wait()
}

func TestPoolSequentialRunsReuseWorkers(t *testing.T) {
	// The worker-state factory runs once per pool thread, not once per job:
	// that is the warm-workspace property a factorization service relies on.
	var mu sync.Mutex
	created := 0
	p := NewPool(2, func(thread int) any {
		mu.Lock()
		created++
		mu.Unlock()
		return &struct{ n int }{}
	})
	defer p.Close()
	for i := 0; i < 4; i++ {
		runChainOnPool(t, p, 4, 2, i*10)
	}
	mu.Lock()
	defer mu.Unlock()
	if created != 2 {
		t.Fatalf("state factory ran %d times, want 2 (once per pool thread)", created)
	}
}

func TestPoolWorkerStateVisible(t *testing.T) {
	type ws struct{ hits int }
	p := NewPool(1, func(thread int) any { return &ws{} })
	defer p.Close()
	s := New(Config{Nodes: 1, Pool: p})
	s.NewVDP(tuple.New(0), 1, func(v *VDP) {
		v.Pop(0)
		v.WorkerState().(*ws).hits++
		v.Push(0, NewPacket([]int{1}))
	}, "stage", 1, 1)
	s.Input(tuple.New(0), 0, 64)
	s.Output(tuple.New(0), 0, 64)
	s.Inject(tuple.New(0), 0, NewPacket([]int{0}))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := p.workers[0].state.(*ws).hits; got != 1 {
		t.Fatalf("worker state hits = %d, want 1", got)
	}
}

func TestAbortPooled(t *testing.T) {
	p := NewPool(2, nil)
	defer p.Close()
	// A VDP whose input never arrives: without Abort the run would sit
	// until the deadlock watchdog; Abort must return promptly.
	s := buildChain(Config{Nodes: 1, Pool: p, DeadlockTimeout: -1}, 3, 1)
	errc := make(chan error, 1)
	go func() { errc <- s.Run() }()
	time.Sleep(20 * time.Millisecond)
	s.Abort()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("Run returned %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("aborted pooled run did not return")
	}
	// The pool must still serve new work after an aborted job.
	runChainOnPool(t, p, 4, 2, 500)
}

func TestAbortClassic(t *testing.T) {
	s := buildChain(Config{Nodes: 1, ThreadsPerNode: 2, DeadlockTimeout: -1}, 3, 1)
	errc := make(chan error, 1)
	go func() { errc <- s.Run() }()
	time.Sleep(20 * time.Millisecond)
	s.Abort()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("Run returned %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("aborted run did not return")
	}
}

func TestAbortBeforeRun(t *testing.T) {
	s := buildChain(Config{Nodes: 1}, 2, 1)
	s.Abort()
	if err := s.Run(); !errors.Is(err, ErrAborted) {
		t.Fatalf("Run after Abort returned %v, want ErrAborted", err)
	}
}

func TestPoolDeadlockWatchdog(t *testing.T) {
	p := NewPool(1, nil)
	defer p.Close()
	s := buildChain(Config{Nodes: 1, Pool: p, DeadlockTimeout: 100 * time.Millisecond}, 2, 1)
	// No injection: the chain head never becomes ready.
	err := s.Run()
	if err == nil || errors.Is(err, ErrAborted) {
		t.Fatalf("starved pooled run returned %v, want deadlock error", err)
	}
	// The pool survives a deadlocked job.
	runChainOnPool(t, p, 3, 1, 7)
}
