package pulsar

import (
	"sync"
	"sync/atomic"
	"time"

	"pulsarqr/internal/numa"
)

// Pool is a persistent set of worker threads that outlives any single VSA
// run. Where a plain Run spawns its workers at start and joins them at the
// end, a Pool's workers are created once and host the VDPs of every VSA
// attached to them — concurrently, when several Runs overlap. This is the
// execution substrate of a long-running factorization service: per-worker
// state (kernel workspaces) stays warm across jobs, and many small arrays
// share one set of OS threads instead of each paying goroutine churn.
//
// A Pool serves one process — in distributed mode, one rank. Attach a VSA
// by setting Config.Pool; Run then places only the local rank's VDPs onto
// the pool's workers and returns when they have all been destroyed (or the
// run is aborted), leaving the workers running for the next job.
type Pool struct {
	threads int
	workers []*worker
	nodeOf  []int // worker thread → pinned NUMA node ID, -1 when unpinned

	next   atomic.Uint32 // round-robin cursor for Exec placement
	closed atomic.Bool

	wg        sync.WaitGroup
	closeOnce sync.Once
}

// PoolOptions parameterizes NewPoolOpts.
type PoolOptions struct {
	// Threads is the worker count; values ≤ 0 mean 1.
	Threads int
	// State, when non-nil, is called once per worker to create its private
	// state (e.g. a reusable kernel workspace) — the pooled equivalent of
	// Config.WorkerState, which is ignored for pooled runs.
	State func(thread int) any
	// PinNUMA pins each worker thread to a NUMA node (workers interleaved
	// round-robin across nodes) and creates its State on the pinned thread,
	// so first-touch allocation places per-worker workspaces — and the tile
	// pages a worker's kernels commit — on the worker's own node. Pinning
	// is best-effort: hosts without affinity support (non-Linux) or with a
	// single node run exactly as before.
	PinNUMA bool
	// Topology overrides NUMA detection (tests); nil means numa.Detect().
	Topology *numa.Topology
}

// NewPool starts threads persistent workers with default options; see
// PoolOptions.State for the state callback.
func NewPool(threads int, state func(thread int) any) *Pool {
	return NewPoolOpts(PoolOptions{Threads: threads, State: state})
}

// NewPoolOpts starts a pool as described by opts. It returns after every
// worker has finished its placement (pinning and state creation), so
// WorkerNode reports final values immediately.
func NewPoolOpts(opts PoolOptions) *Pool {
	threads := opts.Threads
	if threads <= 0 {
		threads = 1
	}
	p := &Pool{threads: threads, nodeOf: make([]int, threads)}
	var topo *numa.Topology
	if opts.PinNUMA {
		topo = opts.Topology
		if topo == nil {
			topo = numa.Detect()
		}
	}
	for t := 0; t < threads; t++ {
		w := &worker{id: t, pooled: true}
		w.cond = sync.NewCond(&w.mu)
		p.nodeOf[t] = -1
		if !opts.PinNUMA && opts.State != nil {
			// Unpinned pools keep the historical eager creation on the
			// caller's goroutine; placement doesn't matter without pinning.
			w.state = opts.State(t)
		}
		p.workers = append(p.workers, w)
	}
	// Workers start only after the slice is complete: their steal loops scan
	// p.workers, which must be immutable by then.
	var placed sync.WaitGroup
	for t, w := range p.workers {
		p.wg.Add(1)
		placed.Add(1)
		go func(t int, w *worker) {
			defer p.wg.Done()
			if opts.PinNUMA {
				if n := topo.NodeForWorker(t); n != nil {
					if err := numa.PinThread(n.CPUs); err == nil {
						p.nodeOf[t] = n.ID
					}
				}
				// First-touch placement: the state is created on the
				// worker's own (now pinned) thread, so its workspace
				// buffers commit pages on the worker's node.
				if opts.State != nil {
					w.state = opts.State(t)
				}
			}
			placed.Done()
			w.runPool(p)
		}(t, w)
	}
	placed.Wait()
	return p
}

// Threads returns the number of worker threads in the pool.
func (p *Pool) Threads() int { return p.threads }

// WorkerNode reports the NUMA node worker thread t is pinned to, or -1
// when t is unpinned (pool built without PinNUMA, pinning unsupported, or
// t out of range).
func (p *Pool) WorkerNode(t int) int {
	if t < 0 || t >= len(p.nodeOf) {
		return -1
	}
	return p.nodeOf[t]
}

// OnWait installs a hook observing every interval a pooled worker spends
// parked with nothing ready to fire. Pass nil to remove it. The hook sees
// wait intervals across all VSAs sharing the pool — it measures the pool's
// idleness, not any one job's.
func (p *Pool) OnWait(fn func(WaitEvent)) {
	for _, w := range p.workers {
		w.mu.Lock()
		w.waitHook = fn
		w.mu.Unlock()
	}
}

// Close stops the workers and waits for them to exit. VSAs still attached
// stop making progress and queued Exec tasks are dropped; Close is meant for
// process shutdown.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.closed.Store(true)
		for _, w := range p.workers {
			w.stop()
		}
		p.wg.Wait()
	})
}

// Exec schedules fn onto one of the pool's workers and returns immediately.
// fn receives the executing worker's private state (the same state VDP
// firings see via WorkerState), so batch tasks share the warm per-worker
// kernel workspaces with factorization jobs. Tasks are placed round-robin
// but idle workers steal queued tasks from their siblings, so one slow task
// cannot strand work behind it. Exec reports false — and drops fn — once the
// pool has been closed.
func (p *Pool) Exec(fn func(state any)) bool {
	if fn == nil || p.closed.Load() {
		return false
	}
	w := p.workers[int(p.next.Add(1))%len(p.workers)]
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return false
	}
	w.tasks = append(w.tasks, fn)
	w.kick = true
	w.mu.Unlock()
	w.cond.Signal()
	return true
}

// TasksQueued returns the number of Exec tasks waiting across all workers
// (diagnostics; the count is a racy snapshot).
func (p *Pool) TasksQueued() int {
	n := 0
	for _, w := range p.workers {
		w.mu.Lock()
		n += len(w.tasks)
		w.mu.Unlock()
	}
	return n
}

// popTask removes this worker's oldest queued task, or nil.
func (w *worker) popTask() func(any) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.tasks) == 0 {
		return nil
	}
	t := w.tasks[0]
	copy(w.tasks, w.tasks[1:])
	w.tasks[len(w.tasks)-1] = nil
	w.tasks = w.tasks[:len(w.tasks)-1]
	return t
}

// stealTask takes the newest queued task of another worker, scanning
// siblings from the thief's right-hand neighbor. Stealing from the tail
// keeps the victim's oldest (soonest-started) work with the victim.
func (p *Pool) stealTask(thief *worker) func(any) {
	for i := 1; i < len(p.workers); i++ {
		v := p.workers[(thief.id+i)%len(p.workers)]
		v.mu.Lock()
		if n := len(v.tasks); n > 0 {
			t := v.tasks[n-1]
			v.tasks[n-1] = nil
			v.tasks = v.tasks[:n-1]
			v.mu.Unlock()
			return t
		}
		v.mu.Unlock()
	}
	return nil
}

// attach hands a VSA's local VDPs to the pool's workers, lists[t] being the
// VDPs mapped to thread t.
func (p *Pool) attach(lists [][]*VDP) {
	for t, l := range lists {
		if len(l) == 0 {
			continue
		}
		w := p.workers[t]
		w.mu.Lock()
		w.vdps = append(w.vdps, l...)
		w.kick = true
		w.mu.Unlock()
		w.cond.Signal()
	}
}

// detach removes every VDP of s from the pool's workers. Run calls it after
// the VSA completed or aborted; the filtered copy leaves concurrently taken
// snapshots of the old slice intact.
func (p *Pool) detach(s *VSA) {
	for _, w := range p.workers {
		w.mu.Lock()
		var keep []*VDP
		for _, v := range w.vdps {
			if v.vsa != s {
				keep = append(keep, v)
			}
		}
		w.vdps = keep
		w.mu.Unlock()
	}
}

// runPool is the scheduling loop of a pooled worker: the same ready-sweep
// as the per-run loop, but over VDPs of any number of VSAs and without a
// termination condition — the worker parks when nothing is ready and lives
// until the pool closes. Between VDP sweeps the worker drains its Exec task
// queue, and before parking it tries to steal a queued task from a sibling.
func (w *worker) runPool(p *Pool) {
	for {
		w.mu.Lock()
		vdps := w.vdps
		stopped := w.stopped
		w.mu.Unlock()
		if stopped {
			return
		}
		progress := false
		for t := w.popTask(); t != nil; t = w.popTask() {
			t(w.state)
			progress = true
			if w.isStopped() {
				return
			}
		}
		for _, v := range vdps {
			s := v.vsa
			// busy brackets the aborted check and the firings so that an
			// aborting Run can wait for in-flight kernels to drain before it
			// inspects VDP state (see Run's pooled shutdown path).
			s.busy.Add(1)
			if !v.dead && !s.aborted.Load() {
				aggressive := s.cfg.Scheduling == Aggressive
				for v.ready() {
					w.fire(v)
					progress = true
					if v.dead || !aggressive {
						break
					}
				}
			}
			s.busy.Add(-1)
			if w.isStopped() {
				return
			}
		}
		if !progress {
			if t := p.stealTask(w); t != nil {
				t(w.state)
				continue
			}
			w.mu.Lock()
			hook := w.waitHook
			var t0 time.Time
			if hook != nil {
				t0 = time.Now()
			}
			for !w.kick && !w.stopped {
				w.cond.Wait()
			}
			w.kick = false
			stopped := w.stopped
			w.mu.Unlock()
			if hook != nil {
				hook(WaitEvent{Node: w.node, Thread: w.id, Start: t0, End: time.Now()})
			}
			if stopped {
				return
			}
		}
	}
}
