package pulsar

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pulsarqr/internal/transport"
	"pulsarqr/internal/tuple"
)

// ErrAborted is returned by Run when the VSA was stopped by Abort before
// every VDP was destroyed (e.g. a canceled job).
var ErrAborted = errors.New("pulsar: run aborted")

// Scheduling selects how a worker treats a ready VDP.
type Scheduling int

const (
	// Lazy fires a ready VDP once and moves on to the next VDP. It
	// encourages lookahead — interleaving panel factorizations with
	// trailing updates — and is the scheme the paper found to utilize
	// cores better for tree-based QR.
	Lazy Scheduling = iota
	// Aggressive keeps firing the same VDP for as long as it stays ready.
	Aggressive
)

func (s Scheduling) String() string {
	if s == Aggressive {
		return "aggressive"
	}
	return "lazy"
}

// Mapping places a VDP, identified by its tuple, onto a (node, thread)
// pair. It must be a pure function of the tuple so that every node derives
// the same placement.
type Mapping func(t tuple.Tuple) (node, thread int)

// FireEvent describes one VDP firing, for tracing and statistics.
type FireEvent struct {
	Tuple        tuple.Tuple
	Class        string
	Node, Thread int
	Start, End   time.Time
	Seq          int64
}

// WaitEvent describes one interval a worker spent parked with nothing ready
// to fire — the time its VDPs were blocked on empty input FIFOs. Recorded
// only when a WaitHook is installed.
type WaitEvent struct {
	Node, Thread int
	Start, End   time.Time
}

// CommKind classifies proxy and communicator activity for CommEvent.
type CommKind uint8

const (
	// CommSend is one eager Isend of a marshaled inter-node packet.
	CommSend CommKind = iota
	// CommRecv is one arrival delivered to a local channel (unmarshal + push).
	CommRecv
	// CommBarrier is the post-run collective barrier of a distributed Run.
	CommBarrier
)

// CommEvent describes one inter-node communication action of a node's proxy
// (or the closing barrier of a distributed run). Peer is the remote rank,
// -1 for collectives; Bytes is the marshaled payload size.
type CommEvent struct {
	Node       int
	Kind       CommKind
	Peer       int
	Tag        int
	Bytes      int
	Start, End time.Time
}

// Config parameterizes a VSA run.
type Config struct {
	// Nodes is the number of simulated distributed-memory nodes (MPI
	// ranks). Default 1.
	Nodes int
	// ThreadsPerNode is the number of worker threads per node (the paper
	// dedicates one extra thread per node to the communication proxy;
	// here the proxy is its own goroutine). Default 1.
	ThreadsPerNode int
	// Scheduling selects lazy or aggressive firing.
	Scheduling Scheduling
	// Map places VDPs on (node, thread) pairs; when nil, VDPs are placed
	// cyclically in insertion order.
	Map Mapping
	// Params is the read-only global parameter block visible to every VDP.
	Params any
	// FireHook, when non-nil, is called after every VDP firing. It may be
	// called concurrently from different workers and must be safe for that.
	FireHook func(FireEvent)
	// WaitHook, when non-nil, observes every interval a worker spends
	// parked with nothing ready to fire — channel-wait time. For pooled
	// runs it is ignored; install Pool.OnWait instead. Same concurrency
	// contract as FireHook.
	WaitHook func(WaitEvent)
	// CommHook, when non-nil, observes the proxy's inter-node sends and
	// deliveries and the closing barrier of a distributed run. Same
	// concurrency contract as FireHook.
	CommHook func(CommEvent)
	// WorkerState, when non-nil, is called once per worker thread at Run
	// time to create that worker's private state (e.g. a reusable kernel
	// workspace). A firing VDP reaches its worker's state through
	// VDP.WorkerState; since a worker fires one VDP at a time, the state
	// needs no locking.
	WorkerState func(node, thread int) any
	// DeadlockTimeout aborts the run when no VDP fires for this long while
	// VDPs remain alive. Zero selects the 30s default; negative disables.
	DeadlockTimeout time.Duration
	// Comm, when non-nil, switches the run to distributed mode: this
	// process executes only the VDPs mapped to node Comm.Rank() and
	// exchanges inter-node packets over the endpoint (e.g. a TCP mesh of
	// real OS processes built with transport.DialTCP). Every participating
	// process must construct an identical array — same VDPs, channels and
	// Map — so tags and placements agree. Nodes must equal Comm.Size().
	// When nil, all nodes run in this process over the in-process
	// substrate, preserving the original single-process behavior.
	Comm transport.Endpoint
	// Pool, when non-nil, executes this process's VDPs on a persistent
	// worker pool shared with other concurrently running VSAs, instead of
	// spawning per-run worker goroutines. ThreadsPerNode is forced to the
	// pool's thread count and WorkerState is ignored (pooled workers carry
	// their own state). Without Comm, Nodes must be 1: a pool serves one
	// process, and one process in pooled mode is one node.
	Pool *Pool
}

// VSA is a Virtual Systolic Array: the set of VDPs and channels built by
// the user, plus the runtime state needed to execute it. Build the array
// with NewVDP/Connect/Input/Output, seed it with Inject, then call Run.
type VSA struct {
	cfg      Config
	params   any
	vdps     map[string]*VDP
	order    []*VDP
	channels []*Channel

	collectMu sync.Mutex
	collected map[string][]*Packet

	running   atomic.Bool
	fired     atomic.Int64
	delivered atomic.Int64
	alive     atomic.Int64
	aborted   atomic.Bool
	busy      atomic.Int64 // pooled workers currently firing this VSA's VDPs
	done      chan struct{}
	doneOnce  sync.Once
	workers   [][]*worker // [node][thread]; only the local row in distributed mode
	proxies   []*proxy    // per node; only the local entry in distributed mode
	netMsgs   int64
	netBytes  int64
}

// New creates an empty VSA with the given configuration.
func New(cfg Config) *VSA {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.ThreadsPerNode <= 0 {
		cfg.ThreadsPerNode = 1
	}
	if cfg.Pool != nil {
		cfg.ThreadsPerNode = cfg.Pool.Threads()
		cfg.WorkerState = nil
	}
	if cfg.DeadlockTimeout == 0 {
		cfg.DeadlockTimeout = 30 * time.Second
	}
	return &VSA{
		cfg:       cfg,
		params:    cfg.Params,
		vdps:      map[string]*VDP{},
		collected: map[string][]*Packet{},
		done:      make(chan struct{}),
	}
}

// Abort stops the run: no further VDP of this VSA fires, and Run returns
// ErrAborted once in-flight firings have drained. It is safe to call from
// any goroutine, more than once, and before or after Run — the mechanism
// behind per-job cancellation in a long-running service.
func (s *VSA) Abort() {
	s.aborted.Store(true)
	if s.running.Load() && s.cfg.Pool == nil {
		s.stopAll()
	}
	s.markDone()
}

func (s *VSA) markDone() {
	s.doneOnce.Do(func() { close(s.done) })
}

// NewVDP creates a VDP with the given tuple, firing counter, executable
// function and trace class, inserts it into the array, and returns it.
// nin and nout size the input and output slot tables.
func (s *VSA) NewVDP(tup tuple.Tuple, counter int, fn Func, class string, nin, nout int) *VDP {
	if counter <= 0 {
		panic(fmt.Sprintf("pulsar: VDP %v counter %d must be positive", tup, counter))
	}
	key := tup.Key()
	if _, dup := s.vdps[key]; dup {
		panic(fmt.Sprintf("pulsar: duplicate VDP tuple %v", tup))
	}
	v := &VDP{
		tup:     tup.Clone(),
		counter: counter,
		fn:      fn,
		class:   class,
		in:      make([]*Channel, nin),
		out:     make([]*Channel, nout),
		vsa:     s,
	}
	s.vdps[key] = v
	s.order = append(s.order, v)
	return v
}

// VDPCount returns the number of VDPs in the array.
func (s *VSA) VDPCount() int { return len(s.order) }

// ChannelCount returns the number of channels in the array.
func (s *VSA) ChannelCount() int { return len(s.channels) }

// Fired returns the total number of VDP firings so far.
func (s *VSA) Fired() int64 { return s.fired.Load() }

// NetworkStats returns the number of inter-node messages and payload bytes
// the run moved through the message-passing substrate (valid after Run).
func (s *VSA) NetworkStats() (messages, bytes int64) { return s.netMsgs, s.netBytes }

// Connect creates a channel from output slot srcSlot of the VDP identified
// by src to input slot dstSlot of the VDP identified by dst. maxBytes
// declares the maximum packet size (used for accounting). When
// startDisabled is true the channel begins inactive and must be enabled by
// the destination VDP before it gates firing — the mechanism the QR array
// uses for the binary-tree-to-flat-tree hand-off.
func (s *VSA) Connect(src tuple.Tuple, srcSlot int, dst tuple.Tuple, dstSlot, maxBytes int, startDisabled bool) {
	sv := s.mustVDP(src)
	dv := s.mustVDP(dst)
	c := &Channel{
		src: src.Clone(), dst: dst.Clone(),
		srcSlot: srcSlot, dstSlot: dstSlot,
		maxBytes: maxBytes,
		active:   !startDisabled,
	}
	s.attachOut(sv, srcSlot, c)
	s.attachIn(dv, dstSlot, c)
	c.srcVDP, c.dstVDP = sv, dv
	s.channels = append(s.channels, c)
}

// Input creates an external injection channel into input slot dstSlot of
// dst. Packets enter it through Inject.
func (s *VSA) Input(dst tuple.Tuple, dstSlot, maxBytes int) {
	dv := s.mustVDP(dst)
	c := &Channel{dst: dst.Clone(), srcSlot: -1, dstSlot: dstSlot, maxBytes: maxBytes, active: true}
	s.attachIn(dv, dstSlot, c)
	c.dstVDP = dv
	s.channels = append(s.channels, c)
}

// Output creates an external collector channel on output slot srcSlot of
// src. Packets pushed to it accumulate and are retrieved with Collected
// after the run.
func (s *VSA) Output(src tuple.Tuple, srcSlot, maxBytes int) {
	sv := s.mustVDP(src)
	c := &Channel{src: src.Clone(), srcSlot: srcSlot, dstSlot: -1, maxBytes: maxBytes, active: true}
	s.attachOut(sv, srcSlot, c)
	c.srcVDP = sv
	s.channels = append(s.channels, c)
}

// Inject pushes a packet into the external input channel at (dst, dstSlot).
// It may be called before the run to seed the array, or concurrently with
// it to stream data in.
func (s *VSA) Inject(dst tuple.Tuple, dstSlot int, p *Packet) {
	v, ok := s.vdps[dst.Key()]
	if !ok {
		panic(fmt.Sprintf("pulsar: Inject: no VDP %v", dst))
	}
	c := v.inputChannel(dstSlot)
	if c.src != nil {
		panic(fmt.Sprintf("pulsar: Inject: channel %s is not an external input", c))
	}
	c.push(p)
	if s.running.Load() {
		s.wakeWorker(v.node, v.thread)
	}
}

// Seed places an initial token into any input channel of dst before the
// run starts — the classical dataflow mechanism for pipeline delays (e.g.
// the delay registers of a systolic filter). Unlike Inject it works on
// internal channels, and it must be called before Run.
func (s *VSA) Seed(dst tuple.Tuple, dstSlot int, p *Packet) {
	if s.running.Load() {
		panic("pulsar: Seed must be called before Run")
	}
	v, ok := s.vdps[dst.Key()]
	if !ok {
		panic(fmt.Sprintf("pulsar: Seed: no VDP %v", dst))
	}
	v.inputChannel(dstSlot).push(p)
}

// Collected returns the packets pushed to the external output channel at
// (src, srcSlot), in push order. In distributed mode each process holds
// only the output of its own VDPs; drivers gather the rest explicitly
// (see AddCollected).
func (s *VSA) Collected(src tuple.Tuple, srcSlot int) []*Packet {
	s.collectMu.Lock()
	defer s.collectMu.Unlock()
	return s.collected[collectKey(src, srcSlot)]
}

// AddCollected appends a packet to the external output channel at
// (src, srcSlot), as if the array had pushed it. Distributed drivers use
// it on the root rank to merge collector output gathered from the other
// processes, so assembly code written against Collected works unchanged.
func (s *VSA) AddCollected(src tuple.Tuple, srcSlot int, p *Packet) {
	s.collectMu.Lock()
	key := collectKey(src, srcSlot)
	s.collected[key] = append(s.collected[key], p)
	s.collectMu.Unlock()
}

func collectKey(t tuple.Tuple, slot int) string {
	return t.Key() + "/" + fmt.Sprint(slot)
}

func (s *VSA) mustVDP(t tuple.Tuple) *VDP {
	v, ok := s.vdps[t.Key()]
	if !ok {
		panic(fmt.Sprintf("pulsar: no VDP %v", t))
	}
	return v
}

func (s *VSA) attachOut(v *VDP, slot int, c *Channel) {
	if slot < 0 || slot >= len(v.out) {
		panic(fmt.Sprintf("pulsar: VDP %v output slot %d out of range [0,%d)", v.tup, slot, len(v.out)))
	}
	if v.out[slot] != nil {
		panic(fmt.Sprintf("pulsar: VDP %v output slot %d already connected", v.tup, slot))
	}
	v.out[slot] = c
}

func (s *VSA) attachIn(v *VDP, slot int, c *Channel) {
	if slot < 0 || slot >= len(v.in) {
		panic(fmt.Sprintf("pulsar: VDP %v input slot %d out of range [0,%d)", v.tup, slot, len(v.in)))
	}
	if v.in[slot] != nil {
		panic(fmt.Sprintf("pulsar: VDP %v input slot %d already connected", v.tup, slot))
	}
	v.in[slot] = c
}

// sendBufPool recycles the marshal buffers of the inter-node send path:
// route fills one per packet and the proxy returns it right after Isend,
// which the Endpoint contract requires to have copied or serialized the
// bytes before returning.
var sendBufPool = sync.Pool{New: func() any { return new([]byte) }}

// route delivers a packet pushed on channel c: collectors accumulate,
// intra-node channels enqueue zero-copy, inter-node channels marshal into a
// pooled buffer and hand the bytes to the source node's proxy.
func (s *VSA) route(c *Channel, p *Packet) {
	switch {
	case c.dst == nil:
		s.collectMu.Lock()
		key := collectKey(c.src, c.srcSlot)
		s.collected[key] = append(s.collected[key], p)
		s.collectMu.Unlock()
	case !s.running.Load() || !c.interNode:
		c.push(p)
		if s.running.Load() {
			s.wakeWorker(c.dstVDP.node, c.dstVDP.thread)
		}
	default:
		buf := sendBufPool.Get().(*[]byte)
		b, err := appendPacket((*buf)[:0], p)
		if err != nil {
			panic(fmt.Sprintf("pulsar: cannot ship packet on %s: %v", c, err))
		}
		*buf = b
		s.proxies[c.srcNode].enqueue(c.dstNode, c.tag, buf)
	}
}

func (s *VSA) wakeWorker(node, thread int) {
	if node < len(s.workers) && thread < len(s.workers[node]) {
		s.workers[node][thread].wake()
	}
}
