package pulsar

import (
	"runtime"
	"sync"
	"testing"

	"pulsarqr/internal/numa"
)

// TestPoolPinNUMAPlacement checks that a pinned pool interleaves workers
// across the injected topology, creates per-worker state on the worker's
// own thread (first-touch), and reports placement through WorkerNode.
func TestPoolPinNUMAPlacement(t *testing.T) {
	// Every node pins to CPU 0 so the test passes on single-CPU hosts; the
	// placement logic under test is identical.
	topo := &numa.Topology{Nodes: []numa.Node{{ID: 0, CPUs: []int{0}}, {ID: 1, CPUs: []int{0}}}}
	var mu sync.Mutex
	madeBy := map[int]int{} // thread -> count of State calls
	p := NewPoolOpts(PoolOptions{
		Threads: 4,
		State: func(thread int) any {
			mu.Lock()
			madeBy[thread]++
			mu.Unlock()
			return thread
		},
		PinNUMA:  true,
		Topology: topo,
	})
	defer p.Close()

	for w := 0; w < 4; w++ {
		got := p.WorkerNode(w)
		if got == -1 {
			if runtime.GOOS != "linux" {
				continue // pinning unsupported: unpinned is the documented fallback
			}
			t.Errorf("worker %d unpinned on linux", w)
			continue
		}
		if want := topo.Nodes[w%2].ID; got != want {
			t.Errorf("WorkerNode(%d) = %d, want %d (round-robin)", w, got, want)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for w := 0; w < 4; w++ {
		if madeBy[w] != 1 {
			t.Errorf("State called %d times for worker %d, want exactly 1", madeBy[w], w)
		}
	}
}

// TestPoolPinNUMAStateReachesTasks checks pinned workers still hand their
// state to Exec tasks — i.e. the deferred on-thread creation finished
// before the pool accepted work.
func TestPoolPinNUMAStateReachesTasks(t *testing.T) {
	p := NewPoolOpts(PoolOptions{
		Threads: 2,
		State:   func(thread int) any { return 100 + thread },
		PinNUMA: true,
	})
	defer p.Close()
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		if !p.Exec(func(state any) {
			defer wg.Done()
			mu.Lock()
			seen[state.(int)] = true
			mu.Unlock()
		}) {
			t.Fatal("Exec refused work on an open pool")
		}
	}
	wg.Wait()
	for s := range seen {
		if s != 100 && s != 101 {
			t.Errorf("task saw unexpected state %d", s)
		}
	}
}

// TestPoolUnpinnedWorkerNode guards the accessor's out-of-range and
// unpinned contracts.
func TestPoolUnpinnedWorkerNode(t *testing.T) {
	p := NewPool(2, nil)
	defer p.Close()
	for _, w := range []int{-1, 0, 1, 2, 99} {
		if got := p.WorkerNode(w); got != -1 {
			t.Errorf("WorkerNode(%d) = %d on an unpinned pool, want -1", w, got)
		}
	}
}
