package pulsar

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pulsarqr/internal/transport"
)

// Run maps the array onto nodes and threads, launches the workers and
// proxies, propagates data until every VDP has been destroyed, and returns.
// A non-nil error reports a deadlock (no progress for DeadlockTimeout while
// VDPs remain alive), including a description of the stuck VDPs.
//
// When Config.Comm is nil every node runs in this process over the
// in-process substrate. When Comm is set, only the VDPs mapped to node
// Comm.Rank() execute here; inter-node packets travel over the endpoint,
// and Run ends with a Barrier across all ranks so that every process's
// proxy has shut down (its wildcard receive canceled) before any process
// posts follow-up traffic such as a result gather.
func (s *VSA) Run() error {
	if s.running.Load() {
		return fmt.Errorf("pulsar: VSA already running")
	}
	if s.aborted.Load() {
		return ErrAborted
	}
	if len(s.order) == 0 {
		return nil
	}
	dist := s.cfg.Comm != nil
	pooled := s.cfg.Pool != nil
	local := -1
	var msgs0, bytes0 int64
	if dist {
		if s.cfg.Comm.Size() != s.cfg.Nodes {
			return fmt.Errorf("pulsar: Comm spans %d ranks but Nodes is %d", s.cfg.Comm.Size(), s.cfg.Nodes)
		}
		local = s.cfg.Comm.Rank()
		msgs0, bytes0 = s.cfg.Comm.Stats() // endpoint is caller-owned: report deltas
	} else if pooled && s.cfg.Nodes != 1 {
		return fmt.Errorf("pulsar: a pooled run without Comm must have Nodes=1, got %d", s.cfg.Nodes)
	}
	s.place()

	var lw *transport.Local
	if !dist {
		lw = transport.NewLocal(s.cfg.Nodes)
	}
	s.workers = make([][]*worker, s.cfg.Nodes)
	s.proxies = make([]*proxy, s.cfg.Nodes)
	for n := 0; n < s.cfg.Nodes; n++ {
		if dist && n != local {
			continue
		}
		if pooled {
			s.workers[n] = s.cfg.Pool.workers
		} else {
			s.workers[n] = make([]*worker, s.cfg.ThreadsPerNode)
			for t := 0; t < s.cfg.ThreadsPerNode; t++ {
				w := &worker{vsa: s, node: n, id: t, waitHook: s.cfg.WaitHook}
				w.cond = sync.NewCond(&w.mu)
				if s.cfg.WorkerState != nil {
					w.state = s.cfg.WorkerState(n, t)
				}
				s.workers[n][t] = w
			}
		}
		ep := s.cfg.Comm
		if !dist {
			ep = lw.Endpoint(n)
		}
		s.proxies[n] = newProxy(s, n, ep)
	}
	s.resolveChannels()
	alive := 0
	attach := make([][]*VDP, s.cfg.ThreadsPerNode)
	for _, v := range s.order {
		if dist && v.node != local {
			continue
		}
		if pooled {
			attach[v.thread] = append(attach[v.thread], v)
		} else {
			w := s.workers[v.node][v.thread]
			w.vdps = append(w.vdps, v)
			w.aliveLocal++
		}
		alive++
	}
	s.alive.Store(int64(alive))
	s.running.Store(true)
	defer s.running.Store(false)

	// When the communicator can report peer deaths, a dead peer aborts the
	// run immediately — the deterministic alternative to waiting out the
	// deadlock watchdog — and the cause is carried to the returned error.
	var commMu sync.Mutex
	var commErr error
	if dist {
		if fo, ok := s.cfg.Comm.(transport.FailureObserver); ok {
			fo.OnPeerFailure(func(rank int, err error) {
				commMu.Lock()
				if commErr == nil {
					commErr = err
				}
				commMu.Unlock()
				s.Abort()
			})
			defer fo.OnPeerFailure(nil)
		}
	}

	var wg sync.WaitGroup
	if pooled {
		s.cfg.Pool.attach(attach)
		if alive == 0 {
			s.markDone()
		}
	} else {
		for _, row := range s.workers {
			for _, w := range row {
				wg.Add(1)
				go func(w *worker) {
					defer wg.Done()
					w.run()
				}(w)
			}
		}
	}
	var pwg sync.WaitGroup
	for _, p := range s.proxies {
		if p == nil {
			continue
		}
		pwg.Add(1)
		go func(p *proxy) {
			defer pwg.Done()
			p.run()
		}(p)
	}

	// Deadlock watchdog: if progress stalls while VDPs remain, stop the
	// workers; the error is composed after they have all exited, so VDP
	// state is read race-free. Progress is firings plus delivered
	// inter-node packets: a distributed rank may go long stretches without
	// firing while remote ranks feed it.
	var deadlocked bool
	watchdogDone := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(watchdogDone)
		if s.cfg.DeadlockTimeout < 0 {
			<-finished
			return
		}
		tick := time.NewTicker(s.cfg.DeadlockTimeout)
		defer tick.Stop()
		last := int64(-1)
		for {
			select {
			case <-finished:
				return
			case <-tick.C:
				cur := s.fired.Load() + s.delivered.Load()
				if cur == last && s.alive.Load() > 0 {
					deadlocked = true
					s.stopRun(pooled)
					return
				}
				last = cur
			}
		}
	}()

	if pooled {
		<-s.done
		// Drain in-flight firings so the shutdown path below (and a
		// deadlock error's VDP inspection) reads settled state, then free
		// the shared workers for the next job.
		for s.busy.Load() != 0 {
			time.Sleep(50 * time.Microsecond)
		}
		s.cfg.Pool.detach(s)
	} else {
		wg.Wait()
	}
	close(finished)
	<-watchdogDone
	for _, p := range s.proxies {
		if p != nil {
			p.stopProxy()
		}
	}
	pwg.Wait()
	aborted := s.aborted.Load() && !deadlocked
	if dist {
		m, b := s.cfg.Comm.Stats()
		s.netMsgs, s.netBytes = m-msgs0, b-bytes0
		s.cfg.Comm.OnArrival(nil) // the proxy is gone; stop waking it
		// An aborted run skips the closing barrier: its peers abort on
		// their own (a canceled job is canceled on every rank) and waiting
		// for them here would hold a canceled job's resources hostage.
		if !aborted {
			ch := s.cfg.CommHook
			var bt0 time.Time
			if ch != nil {
				bt0 = time.Now()
			}
			if err := s.cfg.Comm.Barrier(); err != nil && !deadlocked {
				return fmt.Errorf("pulsar: post-run barrier: %w", err)
			}
			if ch != nil {
				// This collective doubles as the trace clock anchor: every
				// rank leaves it within one release broadcast of the others,
				// so merged shards align on its End.
				ch(CommEvent{Node: local, Kind: CommBarrier, Peer: -1, Start: bt0, End: time.Now()})
			}
		}
	} else {
		s.netMsgs, s.netBytes = 0, 0
		for _, p := range s.proxies {
			m, b := p.comm.Stats()
			s.netMsgs += m
			s.netBytes += b
		}
	}
	if deadlocked {
		return s.deadlockError(dist, local)
	}
	commMu.Lock()
	ce := commErr
	commMu.Unlock()
	if ce != nil {
		return fmt.Errorf("pulsar: communicator failed: %w", ce)
	}
	if aborted {
		return ErrAborted
	}
	return nil
}

// stopRun halts this VSA's execution for the deadlock watchdog: a pooled
// run marks itself aborted (the shared workers skip its VDPs and must keep
// serving other VSAs), a classic run stops its private workers.
func (s *VSA) stopRun(pooled bool) {
	if pooled {
		s.aborted.Store(true)
		s.markDone()
	} else {
		s.stopAll()
	}
}

// place assigns every VDP to a (node, thread) pair using the configured
// mapping, or cyclically in insertion order when no mapping is given.
func (s *VSA) place() {
	nn, nt := s.cfg.Nodes, s.cfg.ThreadsPerNode
	for i, v := range s.order {
		if s.cfg.Map != nil {
			n, t := s.cfg.Map(v.tup)
			if n < 0 || n >= nn || t < 0 || t >= nt {
				panic(fmt.Sprintf("pulsar: mapping placed VDP %v on (%d,%d) outside %dx%d",
					v.tup, n, t, nn, nt))
			}
			v.node, v.thread = n, t
		} else {
			v.node = i % nn
			v.thread = (i / nn) % nt
		}
	}
}

// resolveChannels classifies channels as intra- or inter-node and assigns
// MPI tags to the latter: channels between each ordered pair of nodes are
// numbered consecutively in construction order, exactly the scheme the
// paper uses to route packets to destination channels on the receiving
// side.
func (s *VSA) resolveChannels() {
	type pair struct{ a, b int }
	next := map[pair]int{}
	for _, c := range s.channels {
		if c.srcVDP == nil || c.dstVDP == nil {
			continue // external
		}
		c.srcNode, c.dstNode = c.srcVDP.node, c.dstVDP.node
		if c.srcNode == c.dstNode {
			c.interNode = false
			continue
		}
		c.interNode = true
		p := pair{c.srcNode, c.dstNode}
		c.tag = next[p]
		next[p]++
	}
	for _, px := range s.proxies {
		if px != nil {
			px.index(s.channels)
		}
	}
}

func (s *VSA) stopAll() {
	for _, row := range s.workers {
		for _, w := range row {
			w.stop()
		}
	}
}

// deadlockError describes the live VDPs and the state of their inputs; in
// distributed mode only this rank's VDPs are inspected (remote ones never
// fire here, so their state is meaningless locally).
func (s *VSA) deadlockError(dist bool, local int) error {
	var stuck []string
	for _, v := range s.order {
		if v.dead || (dist && v.node != local) {
			continue
		}
		var ins []string
		for i, c := range v.in {
			if c == nil {
				continue
			}
			c.mu.Lock()
			state := "active"
			if c.destroyed {
				state = "destroyed"
			} else if !c.active {
				state = "disabled"
			}
			ins = append(ins, fmt.Sprintf("in%d:%s:%d", i, state, len(c.queue)))
			c.mu.Unlock()
		}
		stuck = append(stuck, fmt.Sprintf("%v(counter=%d)[%s]", v.tup, v.counter, strings.Join(ins, " ")))
		if len(stuck) >= 16 {
			stuck = append(stuck, "...")
			break
		}
	}
	sort.Strings(stuck)
	err := fmt.Errorf("pulsar: deadlock: %d VDPs alive after %v without progress: %s",
		s.alive.Load(), s.cfg.DeadlockTimeout, strings.Join(stuck, ", "))
	// A stall with a known-dead peer is network death, not an algorithmic
	// deadlock: surface the peer failure as the unwrappable cause so
	// callers can tell the two apart.
	if dist {
		if fo, ok := s.cfg.Comm.(transport.FailureObserver); ok {
			if pe := fo.PeerFailure(); pe != nil {
				return fmt.Errorf("pulsar: run stalled after peer failure: %w (%v)", pe, err)
			}
		}
	}
	return err
}

// worker sweeps its list of VDPs for ready ones and fires them, mirroring
// the per-thread scheduling loop of the PULSAR runtime. A worker is either
// private to one Run (vsa set, run loop) or part of a persistent Pool
// (pooled set, runPool loop, VDPs possibly from several VSAs — then vdps is
// guarded by mu because attach/detach happen from other goroutines).
type worker struct {
	vsa      *VSA // owning VSA for private workers; nil when pooled
	node, id int
	pooled   bool
	state    any // per-worker private state (Config.WorkerState or pool factory)

	mu      sync.Mutex
	cond    *sync.Cond
	kick    bool
	stopped bool

	vdps       []*VDP
	aliveLocal int

	// tasks is the worker's queue of Pool.Exec batch tasks (pooled workers
	// only, guarded by mu). FIFO for the owner; siblings steal from the tail.
	tasks []func(state any)

	// waitHook, when set, observes each parked interval. Private workers get
	// it from Config.WaitHook before their goroutine starts; pooled workers
	// get it from Pool.OnWait under mu (runPool reads it under mu too).
	waitHook func(WaitEvent)
}

func (w *worker) wake() {
	w.mu.Lock()
	w.kick = true
	w.mu.Unlock()
	w.cond.Signal()
}

func (w *worker) stop() {
	w.mu.Lock()
	w.stopped = true
	w.kick = true
	w.mu.Unlock()
	w.cond.Signal()
}

func (w *worker) run() {
	aggressive := w.vsa.cfg.Scheduling == Aggressive
	for {
		progress := false
		for _, v := range w.vdps {
			if v.dead {
				continue
			}
			for v.ready() {
				w.fire(v)
				progress = true
				if v.dead || !aggressive {
					break
				}
			}
			if w.isStopped() {
				return
			}
		}
		if w.aliveLocal == 0 {
			return
		}
		if !progress {
			hook := w.waitHook
			var t0 time.Time
			if hook != nil {
				t0 = time.Now()
			}
			w.mu.Lock()
			for !w.kick {
				w.cond.Wait()
			}
			w.kick = false
			stopped := w.stopped
			w.mu.Unlock()
			if hook != nil {
				hook(WaitEvent{Node: w.node, Thread: w.id, Start: t0, End: time.Now()})
			}
			if stopped {
				return
			}
		}
	}
}

func (w *worker) isStopped() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stopped
}

func (w *worker) fire(v *VDP) {
	s := v.vsa
	hook := s.cfg.FireHook
	var start time.Time
	if hook != nil {
		start = time.Now()
	}
	v.fn(v)
	v.counter--
	seq := s.fired.Add(1)
	if v.counter <= 0 {
		v.dead = true
		w.aliveLocal--
		if s.alive.Add(-1) == 0 {
			s.markDone()
		}
	}
	if hook != nil {
		hook(FireEvent{
			Tuple: v.tup, Class: v.class,
			Node: v.node, Thread: v.thread,
			Start: start, End: time.Now(), Seq: seq,
		})
	}
}

// proxy owns a node's inter-node communication: it posts one wildcard
// receive, routes arrivals to local channels by (source, tag), and drains
// per-node outgoing queues with eager non-blocking sends — the same
// Isend/Irecv/Test cycle the paper describes.
type proxy struct {
	vsa  *VSA
	node int
	comm transport.Endpoint

	mu      sync.Mutex
	cond    *sync.Cond
	kick    bool
	stopped bool
	outQ    []outMsg

	inChans map[int64]*Channel
}

type outMsg struct {
	dst, tag int
	buf      *[]byte // pooled marshal buffer, recycled after Isend
}

func newProxy(s *VSA, node int, comm transport.Endpoint) *proxy {
	p := &proxy{vsa: s, node: node, comm: comm, inChans: map[int64]*Channel{}}
	p.cond = sync.NewCond(&p.mu)
	comm.OnArrival(p.wake)
	return p
}

// index records the inbound inter-node channels of this node, keyed by
// source node and tag.
func (p *proxy) index(channels []*Channel) {
	for _, c := range channels {
		if c.interNode && c.dstNode == p.node {
			p.inChans[int64(c.srcNode)<<32|int64(c.tag)] = c
		}
	}
}

func (p *proxy) wake() {
	p.mu.Lock()
	p.kick = true
	p.mu.Unlock()
	p.cond.Signal()
}

func (p *proxy) stopProxy() {
	p.mu.Lock()
	p.stopped = true
	p.kick = true
	p.mu.Unlock()
	p.cond.Signal()
}

func (p *proxy) enqueue(dst, tag int, buf *[]byte) {
	p.mu.Lock()
	p.outQ = append(p.outQ, outMsg{dst, tag, buf})
	p.kick = true
	p.mu.Unlock()
	p.cond.Signal()
}

func (p *proxy) run() {
	recv := p.comm.Irecv(transport.Any, transport.Any)
	for {
		progress := false
		for recv.Test() {
			p.deliver(recv.Source(), recv.Tag(), recv.Data())
			recv = p.comm.Irecv(transport.Any, transport.Any)
			progress = true
		}
		p.mu.Lock()
		out := p.outQ
		p.outQ = nil
		p.mu.Unlock()
		for _, m := range out {
			// Sends are eager: the transport has copied or serialized the
			// payload by the time Isend returns, so the marshal buffer can
			// go back to the pool immediately.
			hook := p.vsa.cfg.CommHook
			var t0 time.Time
			if hook != nil {
				t0 = time.Now()
			}
			nb := len(*m.buf)
			p.comm.Isend(*m.buf, m.dst, m.tag)
			*m.buf = (*m.buf)[:0]
			sendBufPool.Put(m.buf)
			if hook != nil {
				hook(CommEvent{Node: p.node, Kind: CommSend, Peer: m.dst, Tag: m.tag, Bytes: nb, Start: t0, End: time.Now()})
			}
			progress = true
		}
		// Exit once asked to stop with nothing left to send or deliver;
		// stopProxy is only called after every VDP has been destroyed, so
		// anything still arriving is a dead letter (e.g. the final
		// circulating tokens of a toroidal array).
		p.mu.Lock()
		stopped := p.stopped && len(p.outQ) == 0
		p.mu.Unlock()
		if stopped && !recv.Test() {
			recv.Cancel()
			return
		}
		if !progress {
			p.mu.Lock()
			for !p.kick {
				p.cond.Wait()
			}
			p.kick = false
			p.mu.Unlock()
		}
	}
}

func (p *proxy) deliver(src, tag int, data []byte) {
	hook := p.vsa.cfg.CommHook
	var t0 time.Time
	if hook != nil {
		t0 = time.Now()
	}
	c, ok := p.inChans[int64(src)<<32|int64(tag)]
	if !ok {
		panic(fmt.Sprintf("pulsar: node %d received unroutable message src=%d tag=%d", p.node, src, tag))
	}
	pkt, err := UnmarshalPacket(data)
	if err != nil {
		panic(fmt.Sprintf("pulsar: node %d channel %s: %v", p.node, c, err))
	}
	c.push(pkt)
	p.vsa.delivered.Add(1)
	p.vsa.wakeWorker(c.dstVDP.node, c.dstVDP.thread)
	if hook != nil {
		hook(CommEvent{Node: p.node, Kind: CommRecv, Peer: src, Tag: tag, Bytes: len(data), Start: t0, End: time.Now()})
	}
}
