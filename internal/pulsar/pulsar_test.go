package pulsar

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/tuple"
)

func TestMatCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := matrix.NewRand(rng.Intn(10)+1, rng.Intn(10)+1, rng)
		got, err := DecodeMat(EncodeMat(m))
		if err != nil {
			return false
		}
		return matrix.MaxAbsDiff(m, got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketCodecs(t *testing.T) {
	cases := []any{
		[]float64{1.5, -2.5, 3},
		[]int{4, -5, 6},
		[]byte{7, 8},
		matrix.Identity(3),
	}
	for _, c := range cases {
		b, err := MarshalPacket(NewPacket(c))
		if err != nil {
			t.Fatalf("marshal %T: %v", c, err)
		}
		p, err := UnmarshalPacket(b)
		if err != nil {
			t.Fatalf("unmarshal %T: %v", c, err)
		}
		switch v := c.(type) {
		case *matrix.Mat:
			if matrix.MaxAbsDiff(v, p.Data.(*matrix.Mat)) != 0 {
				t.Fatal("matrix payload corrupted")
			}
		case []float64:
			got := p.Data.([]float64)
			for i := range v {
				if got[i] != v[i] {
					t.Fatal("float64 payload corrupted")
				}
			}
		case []int:
			got := p.Data.([]int)
			for i := range v {
				if got[i] != v[i] {
					t.Fatal("int payload corrupted")
				}
			}
		case []byte:
			got := p.Data.([]byte)
			for i := range v {
				if got[i] != v[i] {
					t.Fatal("byte payload corrupted")
				}
			}
		}
	}
	if _, err := MarshalPacket(NewPacket(struct{}{})); err == nil {
		t.Fatal("marshaling an unregistered type must fail")
	}
}

// buildChain creates a linear pipeline of n VDPs; each adds its index to
// the integer payload and forwards it. Returns the VSA.
func buildChain(cfg Config, n, packets int) *VSA {
	s := New(cfg)
	for i := 0; i < n; i++ {
		i := i
		s.NewVDP(tuple.New(i), packets, func(v *VDP) {
			p := v.Pop(0)
			vals := p.Data.([]int)
			out := append(append([]int{}, vals...), i)
			v.Push(0, NewPacket(out))
		}, "stage", 1, 1)
	}
	for i := 0; i+1 < n; i++ {
		s.Connect(tuple.New(i), 0, tuple.New(i+1), 0, 1024, false)
	}
	s.Input(tuple.New(0), 0, 1024)
	s.Output(tuple.New(n-1), 0, 1024)
	return s
}

func TestPipelineSingleNode(t *testing.T) {
	s := buildChain(Config{Nodes: 1, ThreadsPerNode: 2}, 5, 3)
	for k := 0; k < 3; k++ {
		s.Inject(tuple.New(0), 0, NewPacket([]int{100 + k}))
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	out := s.Collected(tuple.New(4), 0)
	if len(out) != 3 {
		t.Fatalf("collected %d packets, want 3", len(out))
	}
	for k, p := range out {
		want := []int{100 + k, 0, 1, 2, 3, 4}
		got := p.Data.([]int)
		if len(got) != len(want) {
			t.Fatalf("packet %d: %v", k, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("packet %d: got %v want %v", k, got, want)
			}
		}
	}
	if s.Fired() != 15 {
		t.Fatalf("fired %d, want 15", s.Fired())
	}
}

func TestPipelineMultiNode(t *testing.T) {
	// Chain spread over 3 nodes: packets must cross node boundaries
	// through marshaled proxy traffic and arrive intact and in order.
	cfg := Config{
		Nodes: 3, ThreadsPerNode: 2,
		Map: func(tp tuple.Tuple) (int, int) { return tp.At(0) % 3, tp.At(0) % 2 },
	}
	s := buildChain(cfg, 9, 4)
	for k := 0; k < 4; k++ {
		s.Inject(tuple.New(0), 0, NewPacket([]int{k}))
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	out := s.Collected(tuple.New(8), 0)
	if len(out) != 4 {
		t.Fatalf("collected %d packets", len(out))
	}
	for k, p := range out {
		got := p.Data.([]int)
		if got[0] != k || len(got) != 10 {
			t.Fatalf("packet %d corrupted: %v", k, got)
		}
		for i := 0; i < 9; i++ {
			if got[i+1] != i {
				t.Fatalf("packet %d hop order wrong: %v", k, got)
			}
		}
	}
}

func TestInterNodeTilePayload(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tile := matrix.NewRand(7, 5, rng)
	cfg := Config{
		Nodes: 2, ThreadsPerNode: 1,
		Map: func(tp tuple.Tuple) (int, int) { return tp.At(0), 0 },
	}
	s := New(cfg)
	s.NewVDP(tuple.New(0), 1, func(v *VDP) {
		p := v.Pop(0)
		v.Push(0, p)
	}, "", 1, 1)
	var got *matrix.Mat
	s.NewVDP(tuple.New(1), 1, func(v *VDP) {
		got = v.Pop(0).Tile()
	}, "", 1, 0)
	s.Connect(tuple.New(0), 0, tuple.New(1), 0, 8*7*5+16, false)
	s.Input(tuple.New(0), 0, 0)
	s.Inject(tuple.New(0), 0, NewPacket(tile))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil || matrix.MaxAbsDiff(got, tile) != 0 {
		t.Fatal("tile corrupted across nodes")
	}
	if got == tile {
		t.Fatal("inter-node transport must copy, not alias")
	}
}

func TestIntraNodeZeroCopy(t *testing.T) {
	tile := matrix.Identity(4)
	s := New(Config{Nodes: 1, ThreadsPerNode: 1})
	s.NewVDP(tuple.New(0), 1, func(v *VDP) { v.Push(0, v.Pop(0)) }, "", 1, 1)
	var got *matrix.Mat
	s.NewVDP(tuple.New(1), 1, func(v *VDP) { got = v.Pop(0).Tile() }, "", 1, 0)
	s.Connect(tuple.New(0), 0, tuple.New(1), 0, 0, false)
	s.Input(tuple.New(0), 0, 0)
	s.Inject(tuple.New(0), 0, NewPacket(tile))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != tile {
		t.Fatal("intra-node transport must alias the same tile")
	}
}

func TestCounterLifeSpan(t *testing.T) {
	var fires int
	s := New(Config{})
	s.NewVDP(tuple.New(0), 4, func(v *VDP) {
		v.Pop(0)
		fires++
	}, "", 1, 0)
	s.Input(tuple.New(0), 0, 0)
	for i := 0; i < 4; i++ {
		s.Inject(tuple.New(0), 0, NewPacket([]int{i}))
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fires != 4 {
		t.Fatalf("fired %d times, want 4", fires)
	}
}

func TestMultiInputFiringRule(t *testing.T) {
	// A VDP with two inputs must wait until both hold packets.
	var order []string
	var mu sync.Mutex
	s := New(Config{Nodes: 1, ThreadsPerNode: 1})
	s.NewVDP(tuple.New(0), 1, func(v *VDP) {
		a := v.Pop(0).Data.([]int)[0]
		b := v.Pop(1).Data.([]int)[0]
		mu.Lock()
		order = append(order, fmt.Sprintf("join:%d+%d", a, b))
		mu.Unlock()
	}, "", 2, 0)
	s.Input(tuple.New(0), 0, 0)
	s.Input(tuple.New(0), 1, 0)
	s.Inject(tuple.New(0), 0, NewPacket([]int{1}))
	go func() {
		time.Sleep(20 * time.Millisecond)
		s.Inject(tuple.New(0), 1, NewPacket([]int{2}))
	}()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || order[0] != "join:1+2" {
		t.Fatalf("order = %v", order)
	}
}

func TestDisabledChannelHandOff(t *testing.T) {
	// Mirrors the QR hand-off: consumer processes N packets from channel 0
	// with channel 1 disabled, then enables channel 1 and consumes from it.
	const n = 3
	s := New(Config{Nodes: 1, ThreadsPerNode: 2})
	s.NewVDP(tuple.New(0), 1, func(v *VDP) {
		// Producer for the late channel; its packet arrives early and must
		// sit in the disabled channel without triggering the consumer.
		v.Push(0, NewPacket([]int{99}))
	}, "", 0, 1)
	var got []int
	s.NewVDP(tuple.New(1), n+1, func(v *VDP) {
		st, _ := v.Local().(int)
		if st < n {
			got = append(got, v.Pop(0).Data.([]int)[0])
			if st == n-1 {
				v.DisableInput(0)
				v.EnableInput(1)
			}
		} else {
			got = append(got, v.Pop(1).Data.([]int)[0])
		}
		v.SetLocal(st + 1)
	}, "", 2, 0)
	s.Connect(tuple.New(0), 0, tuple.New(1), 1, 0, true) // starts disabled
	s.Input(tuple.New(1), 0, 0)
	for i := 0; i < n; i++ {
		s.Inject(tuple.New(1), 0, NewPacket([]int{i}))
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 99}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestDestroyInput(t *testing.T) {
	s := New(Config{})
	s.NewVDP(tuple.New(0), 2, func(v *VDP) {
		st, _ := v.Local().(int)
		if st == 0 {
			v.Pop(0)
			v.DestroyInput(1) // never deliverable; stop gating on it
		} else {
			v.Pop(0)
		}
		v.SetLocal(st + 1)
	}, "", 2, 0)
	s.Input(tuple.New(0), 0, 0)
	s.Input(tuple.New(0), 1, 0)
	s.Inject(tuple.New(0), 0, NewPacket([]int{1}))
	s.Inject(tuple.New(0), 1, NewPacket([]int{2})) // will be dropped by destroy... after first fire
	s.Inject(tuple.New(0), 0, NewPacket([]int{3}))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulingModesBothComplete(t *testing.T) {
	for _, sched := range []Scheduling{Lazy, Aggressive} {
		s := buildChain(Config{Nodes: 1, ThreadsPerNode: 3, Scheduling: sched}, 6, 5)
		for k := 0; k < 5; k++ {
			s.Inject(tuple.New(0), 0, NewPacket([]int{k}))
		}
		if err := s.Run(); err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		if got := len(s.Collected(tuple.New(5), 0)); got != 5 {
			t.Fatalf("%v: collected %d", sched, got)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New(Config{DeadlockTimeout: 50 * time.Millisecond})
	s.NewVDP(tuple.New(0), 1, func(v *VDP) { v.Pop(0) }, "stuck", 1, 0)
	s.Input(tuple.New(0), 0, 0)
	// Never inject: the VDP waits forever.
	err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if got := err.Error(); !contains(got, "deadlock") || !contains(got, "(0)") {
		t.Fatalf("unhelpful deadlock error: %v", got)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestGeneratorVDP(t *testing.T) {
	// A VDP with no inputs fires until its counter runs out.
	var n int
	s := New(Config{})
	s.NewVDP(tuple.New(0), 5, func(v *VDP) {
		n++
		v.Push(0, NewPacket([]int{n}))
	}, "gen", 0, 1)
	s.Output(tuple.New(0), 0, 0)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 || len(s.Collected(tuple.New(0), 0)) != 5 {
		t.Fatalf("generator fired %d times", n)
	}
}

func TestFireHookEvents(t *testing.T) {
	var mu sync.Mutex
	var events []FireEvent
	s := buildChain(Config{
		Nodes: 1, ThreadsPerNode: 2,
		FireHook: func(e FireEvent) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		},
	}, 3, 2)
	for k := 0; k < 2; k++ {
		s.Inject(tuple.New(0), 0, NewPacket([]int{k}))
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("hook saw %d events, want 6", len(events))
	}
	for _, e := range events {
		if e.Class != "stage" || e.End.Before(e.Start) {
			t.Fatalf("bad event %+v", e)
		}
	}
}

func TestMappingValidation(t *testing.T) {
	s := New(Config{Nodes: 2, ThreadsPerNode: 1,
		Map: func(tuple.Tuple) (int, int) { return 5, 0 }})
	s.NewVDP(tuple.New(0), 1, func(v *VDP) {}, "", 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range mapping must panic")
		}
	}()
	_ = s.Run()
}

func TestDuplicateTuplePanics(t *testing.T) {
	s := New(Config{})
	s.NewVDP(tuple.New(1, 2), 1, func(v *VDP) {}, "", 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate tuple must panic")
		}
	}()
	s.NewVDP(tuple.New(1, 2), 1, func(v *VDP) {}, "", 0, 0)
}

func TestSlotReusePanics(t *testing.T) {
	s := New(Config{})
	s.NewVDP(tuple.New(0), 1, func(v *VDP) {}, "", 1, 1)
	s.NewVDP(tuple.New(1), 1, func(v *VDP) {}, "", 2, 0)
	s.Connect(tuple.New(0), 0, tuple.New(1), 0, 0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("output slot reuse must panic")
		}
	}()
	s.Connect(tuple.New(0), 0, tuple.New(1), 1, 0, false)
}

// TestWavefrontIntegration runs a 2D systolic wavefront across several
// nodes and threads: VDP (i,j) receives a value from the left and one from
// the top, stores their sum plus one, and forwards it right and down. The
// bottom-right result equals the number of lattice paths weighted sum —
// verified against a sequential reference.
func TestWavefrontIntegration(t *testing.T) {
	const n = 8
	cfg := Config{
		Nodes: 3, ThreadsPerNode: 2,
		Map: func(tp tuple.Tuple) (int, int) {
			return (tp.At(0) + tp.At(1)) % 3, tp.At(1) % 2
		},
	}
	s := New(cfg)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.NewVDP(tuple.New2(i, j), 1, func(v *VDP) {
				a := v.Pop(0).Data.([]float64)[0]
				b := v.Pop(1).Data.([]float64)[0]
				sum := a + b + 1
				v.Push(0, NewPacket([]float64{sum})) // right
				v.Push(1, NewPacket([]float64{sum})) // down
			}, "cell", 2, 2)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j+1 < n {
				s.Connect(tuple.New2(i, j), 0, tuple.New2(i, j+1), 0, 64, false)
			} else {
				s.Output(tuple.New2(i, j), 0, 64)
			}
			if i+1 < n {
				s.Connect(tuple.New2(i, j), 1, tuple.New2(i+1, j), 1, 64, false)
			} else {
				s.Output(tuple.New2(i, j), 1, 64)
			}
		}
	}
	// Boundary injections: zeros from the left and top.
	for i := 0; i < n; i++ {
		s.Input(tuple.New2(i, 0), 0, 64)
		s.Inject(tuple.New2(i, 0), 0, NewPacket([]float64{0}))
		s.Input(tuple.New2(0, i), 1, 64)
		s.Inject(tuple.New2(0, i), 1, NewPacket([]float64{0}))
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Sequential reference.
	ref := make([][]float64, n)
	for i := range ref {
		ref[i] = make([]float64, n)
		for j := range ref[i] {
			var a, b float64
			if j > 0 {
				a = ref[i][j-1]
			}
			if i > 0 {
				b = ref[i-1][j]
			}
			ref[i][j] = a + b + 1
		}
	}
	got := s.Collected(tuple.New2(n-1, n-1), 0)
	if len(got) != 1 {
		t.Fatalf("corner emitted %d packets", len(got))
	}
	if v := got[0].Data.([]float64)[0]; v != ref[n-1][n-1] {
		t.Fatalf("wavefront corner = %v, want %v", v, ref[n-1][n-1])
	}
	if s.Fired() != n*n {
		t.Fatalf("fired %d, want %d", s.Fired(), n*n)
	}
}

func TestInjectDuringRun(t *testing.T) {
	s := New(Config{Nodes: 1, ThreadsPerNode: 1})
	var got []int
	s.NewVDP(tuple.New(0), 3, func(v *VDP) {
		got = append(got, v.Pop(0).Data.([]int)[0])
	}, "", 1, 0)
	s.Input(tuple.New(0), 0, 0)
	go func() {
		for i := 0; i < 3; i++ {
			time.Sleep(10 * time.Millisecond)
			s.Inject(tuple.New(0), 0, NewPacket([]int{i}))
		}
	}()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestEmptyVSARuns(t *testing.T) {
	if err := New(Config{}).Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAggressiveDrainsBeforeMoving(t *testing.T) {
	// With one thread and aggressive scheduling, a VDP with several queued
	// packets fires repeatedly before its peer runs.
	var seq []string
	s := New(Config{Scheduling: Aggressive})
	s.NewVDP(tuple.New(0), 3, func(v *VDP) {
		v.Pop(0)
		seq = append(seq, "a")
	}, "", 1, 0)
	s.NewVDP(tuple.New(1), 1, func(v *VDP) {
		v.Pop(0)
		seq = append(seq, "b")
	}, "", 1, 0)
	s.Input(tuple.New(0), 0, 0)
	s.Input(tuple.New(1), 0, 0)
	for i := 0; i < 3; i++ {
		s.Inject(tuple.New(0), 0, NewPacket([]int{i}))
	}
	s.Inject(tuple.New(1), 0, NewPacket([]int{0}))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "a", "a", "b"}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("aggressive order = %v", seq)
		}
	}
}
