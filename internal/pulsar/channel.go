package pulsar

import (
	"fmt"
	"sync"

	"pulsarqr/internal/tuple"
)

// Channel is a static unidirectional FIFO connection between two VDPs (or
// between the outside world and a VDP, for injection and collection). The
// source VDP pushes packets to its output slot; the destination VDP pops
// from its input slot. A channel may start disabled and be enabled,
// disabled or destroyed while the VSA runs; a VDP is ready to fire only
// when every *active* input channel holds a packet.
type Channel struct {
	// Static topology, fixed at construction.
	src, dst         tuple.Tuple // nil src: external injection; nil dst: collector
	srcSlot, dstSlot int
	maxBytes         int

	// Resolved at Run time.
	srcVDP, dstVDP *VDP
	interNode      bool
	tag            int // MPI tag within the (srcNode, dstNode) pair
	srcNode        int
	dstNode        int

	mu        sync.Mutex
	queue     []*Packet
	active    bool
	destroyed bool
}

// state helpers -------------------------------------------------------------

func (c *Channel) push(p *Packet) {
	c.mu.Lock()
	if c.destroyed {
		c.mu.Unlock()
		panic(fmt.Sprintf("pulsar: push on destroyed channel %v[%d] -> %v[%d]",
			c.src, c.srcSlot, c.dst, c.dstSlot))
	}
	c.queue = append(c.queue, p)
	c.mu.Unlock()
}

func (c *Channel) pop() *Packet {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return nil
	}
	p := c.queue[0]
	c.queue = c.queue[1:]
	return p
}

// gate evaluates this input channel against the firing rule under a single
// lock acquisition. pass reports whether the channel does not block firing
// (it is inactive, destroyed, or holds a packet); activeNonEmpty reports
// whether it is an active channel that holds a packet.
func (c *Channel) gate() (pass, activeNonEmpty bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.destroyed || !c.active {
		return true, false
	}
	if len(c.queue) > 0 {
		return true, true
	}
	return false, false
}

func (c *Channel) setActive(on bool) {
	c.mu.Lock()
	c.active = on
	c.mu.Unlock()
}

func (c *Channel) destroy() {
	c.mu.Lock()
	c.destroyed = true
	c.queue = nil
	c.mu.Unlock()
}

func (c *Channel) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// String describes the channel endpoints for diagnostics.
func (c *Channel) String() string {
	return fmt.Sprintf("%v[out %d] -> %v[in %d]", c.src, c.srcSlot, c.dst, c.dstSlot)
}
