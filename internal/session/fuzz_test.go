package session

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzCheckpointReader feeds arbitrary bytes to the QSC1 decoder. The
// decoder must never panic, never allocate beyond the validated-dims bound
// regardless of the bytes supplied, and must roundtrip anything it accepts.
func FuzzCheckpointReader(f *testing.F) {
	// Seed with a valid checkpoint, a header-only prefix, and structured noise.
	rng := rand.New(rand.NewSource(17))
	cp := randCheckpoint(rng)
	var buf bytes.Buffer
	if _, err := WriteCheckpoint(&buf, cp); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:40])
	f.Add([]byte("QSC1"))
	f.Add(append([]byte("QSC1"), bytes.Repeat([]byte{0xff}, 60)...))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			// Header-only mode must not panic on rejected inputs either
			// (it may validly accept a header whose spine is bad).
			ReadCheckpointInfo(bytes.NewReader(data))
			return
		}
		// Anything accepted must re-encode to a stream the reader accepts
		// again with identical structure (write canonicalizes, so compare
		// semantically, not byte-for-byte).
		var out bytes.Buffer
		if _, err := WriteCheckpoint(&out, cp); err != nil {
			t.Fatalf("accepted checkpoint does not re-encode: %v", err)
		}
		cp2, err := ReadCheckpoint(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded checkpoint rejected: %v", err)
		}
		if cp2.ID != cp.ID || cp2.Blocks != cp.Blocks || cp2.Rows != cp.Rows || len(cp2.Spine) != len(cp.Spine) {
			t.Fatalf("roundtrip drift: %+v vs %+v", cp2, cp)
		}
	})
}

// FuzzAppendReader feeds arbitrary bytes to the QSA1 block decoder.
func FuzzAppendReader(f *testing.F) {
	var body bytes.Buffer
	WriteAppendHeader(&body, 2)
	f.Add(body.Bytes())
	f.Add([]byte("QSA1"))
	f.Add(append([]byte("QSA1"), 0xff, 0xff, 0xff, 0xff))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ar, err := NewAppendReader(bytes.NewReader(data), 8, 2)
		if err != nil {
			return
		}
		for {
			block, rhs, err := ar.Next()
			if err != nil {
				return
			}
			if block.Cols != 8 || (rhs != nil && rhs.Cols != 2) || block.Rows < 1 || block.Rows > MaxBlockRows {
				t.Fatalf("decoder emitted out-of-contract block %dx%d", block.Rows, block.Cols)
			}
		}
	})
}
