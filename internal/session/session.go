package session

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/qr"
)

// Sentinel errors the service layer maps onto HTTP statuses.
var (
	ErrTableFull   = errors.New("session: session table full")         // 429
	ErrTenantFull  = errors.New("session: tenant session limit")       // 429
	ErrNotFound    = errors.New("session: no such session")            // 404
	ErrBusy        = errors.New("session: append already in progress") // 409
	ErrClosed      = errors.New("session: table closed")               // 503
	ErrGone        = errors.New("session: session deleted")            // 410
	ErrPoolClosed  = errors.New("session: worker pool closed")
	ErrInterrupted = errors.New("session: append interrupted")
)

// Config shapes a Table.
type Config struct {
	// Dir is the checkpoint directory. When set, sessions are durable:
	// every Every-th append persists the spine, idle sessions unload to
	// disk instead of dying, and NewTable re-registers any *.qsc files it
	// finds — a fleet restart (or kill -9) resumes where it stopped.
	// Empty means memory-only sessions that idle eviction deletes.
	Dir string

	// Pool, when non-nil, runs leaf reductions on warm workers so decode,
	// reduce, and commit of consecutive appends overlap. Nil reduces
	// inline on the caller's goroutine.
	Pool *pulsar.Pool

	MaxSessions  int           // table-wide live session cap (default 64)
	MaxPerTenant int           // per-tenant live session cap (default 8)
	IdleTimeout  time.Duration // unload/evict after this idle (default 10m; <0 disables)
	Every        int           // default checkpoint cadence in appends (default 1)
	Window       int           // in-flight leaf reductions per append stream (default 4)

	// Metrics hooks; all optional and called outside table locks.
	OnAppend     func(d time.Duration) // one committed append, commit-to-emit latency
	OnCheckpoint func(bytes int64)     // one durable checkpoint write
	OnRestore    func()                // one spine load from disk
	OnEvict      func()                // one idle unload (durable) or delete (memory-only)

	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.MaxPerTenant == 0 {
		c.MaxPerTenant = 8
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 10 * time.Minute
	}
	if c.Every < 1 {
		c.Every = 1
	}
	if c.Window < 1 {
		c.Window = 4
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Session is one long-lived streaming factorization. Identity and stream
// shape are immutable after open; the reduction state behind mu is either
// loaded (str != nil) or parked in its checkpoint file.
type Session struct {
	ID     string
	Tenant string
	N      int
	NRHS   int
	Opts   qr.Options
	Every  int  // checkpoint cadence for this session
	Ack    bool // ack-only: append replies carry no R payload

	t *Table

	mu        sync.Mutex
	str       *qr.Streamer
	blocks    int64 // mirrors of streamer totals, valid while unloaded
	rows      int64
	lastUsed  time.Time
	lastCkpt  time.Time
	ckptBytes int64
	dirty     int // appends since the last durable write
	appending bool
	gone      bool
	cur       *qr.StreamNode // reusable fold buffer for append replies
}

// Info is a point-in-time snapshot of a session for the info endpoint.
type Info struct {
	ID              string     `json:"id"`
	Tenant          string     `json:"tenant,omitempty"`
	N               int        `json:"n"`
	NRHS            int        `json:"nrhs"`
	Blocks          int64      `json:"blocks"`
	Rows            int64      `json:"rows"`
	Loaded          bool       `json:"loaded"`
	Ack             bool       `json:"ack_only,omitempty"`
	CheckpointEvery int        `json:"checkpoint_every,omitempty"`
	CheckpointBytes int64      `json:"checkpoint_bytes,omitempty"`
	CheckpointAt    *time.Time `json:"checkpoint_at,omitempty"`
}

// Table is the bounded, multi-tenant session registry.
type Table struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session
	tenants  map[string]int
	closed   bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewTable builds a session table. With cfg.Dir set, it scans the directory
// and re-registers every valid checkpoint as an unloaded session; corrupt
// or foreign files are skipped with a log line, never trusted.
func NewTable(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		cfg:      cfg,
		sessions: make(map[string]*Session),
		tenants:  make(map[string]int),
		stop:     make(chan struct{}),
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("session: checkpoint dir: %w", err)
		}
		if err := t.scan(); err != nil {
			return nil, err
		}
	}
	if cfg.IdleTimeout > 0 {
		t.wg.Add(1)
		go t.janitor()
	}
	return t, nil
}

// scan registers every readable checkpoint under cfg.Dir as an unloaded
// session. Only headers are parsed at boot; spines load lazily on first use.
func (t *Table) scan() error {
	ents, err := os.ReadDir(t.cfg.Dir)
	if err != nil {
		return fmt.Errorf("session: scan checkpoints: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".qsc") {
			continue
		}
		path := filepath.Join(t.cfg.Dir, name)
		cp, err := readInfoFile(path)
		if err != nil {
			t.cfg.Logf("session: skipping checkpoint %s: %v", name, err)
			continue
		}
		if cp.ID != strings.TrimSuffix(name, ".qsc") {
			t.cfg.Logf("session: skipping checkpoint %s: id %q mismatch", name, cp.ID)
			continue
		}
		s := &Session{
			ID: cp.ID, Tenant: cp.Tenant, N: cp.N, NRHS: cp.NRHS,
			Opts: cp.Opts, Every: cp.Every, Ack: cp.Ack,
			t: t, blocks: cp.Blocks, rows: cp.Rows,
			lastUsed: time.Now(), lastCkpt: time.Now(),
		}
		if fi, err := ent.Info(); err == nil {
			s.lastCkpt = fi.ModTime()
			s.ckptBytes = fi.Size()
		}
		t.sessions[s.ID] = s
		t.tenants[s.Tenant]++
	}
	if n := len(t.sessions); n > 0 {
		t.cfg.Logf("session: restored %d checkpointed session(s) from %s", n, t.cfg.Dir)
	}
	return nil
}

func readInfoFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpointInfo(f)
}

func (t *Table) janitor() {
	defer t.wg.Done()
	tick := time.NewTicker(max(t.cfg.IdleTimeout/4, time.Second))
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			t.sweep(time.Now())
		}
	}
}

// sweep unloads (durable) or deletes (memory-only) sessions idle past the
// timeout. Sessions mid-append are never touched.
func (t *Table) sweep(now time.Time) {
	t.mu.Lock()
	var idle []*Session
	for _, s := range t.sessions {
		idle = append(idle, s)
	}
	t.mu.Unlock()
	for _, s := range idle {
		s.mu.Lock()
		expired := !s.appending && !s.gone && now.Sub(s.lastUsed) > t.cfg.IdleTimeout
		durable := t.cfg.Dir != ""
		if expired && durable {
			if s.str != nil {
				if s.dirty > 0 {
					if err := s.checkpointLocked(); err != nil {
						t.cfg.Logf("session %s: checkpoint on unload: %v", s.ID, err)
						s.mu.Unlock()
						continue
					}
				}
				s.str = nil
				s.cur = nil
				s.mu.Unlock()
				t.notifyEvict()
				t.cfg.Logf("session %s: unloaded after idle", s.ID)
				continue
			}
			s.mu.Unlock()
			continue
		}
		s.mu.Unlock()
		if expired && !durable {
			if err := t.Delete(s.ID); err == nil {
				t.notifyEvict()
				t.cfg.Logf("session %s: evicted after idle", s.ID)
			}
		}
	}
}

func (t *Table) notifyEvict() {
	if t.cfg.OnEvict != nil {
		t.cfg.OnEvict()
	}
}

// Open admits a new session for tenant. every == 0 takes the table default
// cadence; ack skips R payloads in append replies. Durable tables write the
// initial (empty) checkpoint immediately so even a zero-append session
// survives a restart.
func (t *Table) Open(tenant string, n, nrhs int, opts qr.Options, every int, ack bool) (*Session, error) {
	if tenant != "" && !validName(tenant) {
		return nil, fmt.Errorf("session: tenant %q not a valid name", tenant)
	}
	if n < 1 || n > MaxN {
		return nil, fmt.Errorf("session: n=%d out of range [1,%d]", n, MaxN)
	}
	if nrhs < 0 || nrhs > MaxNRHS {
		return nil, fmt.Errorf("session: nrhs=%d out of range [0,%d]", nrhs, MaxNRHS)
	}
	if every < 0 || every > 1<<20 {
		return nil, fmt.Errorf("session: checkpoint cadence %d out of range", every)
	}
	if every == 0 {
		every = t.cfg.Every
	}
	str, err := qr.NewStreamer(n, nrhs, opts)
	if err != nil {
		return nil, err
	}
	s := &Session{
		ID: newID(), Tenant: tenant, N: n, NRHS: nrhs,
		Opts: str.Opts(), Every: every, Ack: ack,
		t: t, str: str, lastUsed: time.Now(),
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if len(t.sessions) >= t.cfg.MaxSessions {
		t.mu.Unlock()
		return nil, ErrTableFull
	}
	if t.tenants[tenant] >= t.cfg.MaxPerTenant {
		t.mu.Unlock()
		return nil, ErrTenantFull
	}
	t.sessions[s.ID] = s
	t.tenants[tenant]++
	t.mu.Unlock()
	if t.cfg.Dir != "" {
		s.mu.Lock()
		err := s.checkpointLocked()
		s.mu.Unlock()
		if err != nil {
			t.Delete(s.ID)
			return nil, fmt.Errorf("session: initial checkpoint: %w", err)
		}
	}
	return s, nil
}

// Get looks a session up by id.
func (t *Table) Get(id string) (*Session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	s, ok := t.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	return s, nil
}

// Delete removes a session and its checkpoint file. An append stream in
// flight observes the tombstone at its next commit and aborts.
func (t *Table) Delete(id string) error {
	t.mu.Lock()
	s, ok := t.sessions[id]
	if ok {
		delete(t.sessions, id)
		if t.tenants[s.Tenant] <= 1 {
			delete(t.tenants, s.Tenant)
		} else {
			t.tenants[s.Tenant]--
		}
	}
	t.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	s.mu.Lock()
	s.gone = true
	s.str = nil
	s.cur = nil
	s.mu.Unlock()
	if t.cfg.Dir != "" {
		if err := os.Remove(CheckpointPath(t.cfg.Dir, id)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// Stats summarizes the table for the metrics exporter.
type Stats struct {
	Sessions  int            // registered sessions
	Loaded    int            // sessions with a live in-memory spine
	PerTenant map[string]int // live sessions per tenant
	// LastCheckpoint is the most recent durable write across all sessions
	// (zero when none); CheckpointBytes sums each session's latest
	// checkpoint size.
	LastCheckpoint  time.Time
	CheckpointBytes int64
}

// Cap returns the table's session capacity (load-shed hints scale on it).
func (t *Table) Cap() int { return t.cfg.MaxSessions }

// Stats snapshots table occupancy.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	st := Stats{Sessions: len(t.sessions), PerTenant: make(map[string]int, len(t.tenants))}
	for tn, c := range t.tenants {
		st.PerTenant[tn] = c
	}
	sess := make([]*Session, 0, len(t.sessions))
	for _, s := range t.sessions {
		sess = append(sess, s)
	}
	t.mu.Unlock()
	for _, s := range sess {
		s.mu.Lock()
		if s.str != nil {
			st.Loaded++
		}
		if s.lastCkpt.After(st.LastCheckpoint) {
			st.LastCheckpoint = s.lastCkpt
		}
		st.CheckpointBytes += s.ckptBytes
		s.mu.Unlock()
	}
	return st
}

// List snapshots every session's Info, ordered by id.
func (t *Table) List() []Info {
	t.mu.Lock()
	sess := make([]*Session, 0, len(t.sessions))
	for _, s := range t.sessions {
		sess = append(sess, s)
	}
	t.mu.Unlock()
	infos := make([]Info, 0, len(sess))
	for _, s := range sess {
		infos = append(infos, s.Info())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// Close stops the janitor and flushes every dirty durable session to disk.
func (t *Table) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	sess := make([]*Session, 0, len(t.sessions))
	for _, s := range t.sessions {
		sess = append(sess, s)
	}
	t.mu.Unlock()
	close(t.stop)
	t.wg.Wait()
	var firstErr error
	for _, s := range sess {
		s.mu.Lock()
		if t.cfg.Dir != "" && s.str != nil && s.dirty > 0 && !s.gone {
			if err := s.checkpointLocked(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		s.mu.Unlock()
	}
	return firstErr
}

// newID returns a 16-hex-char random session id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return hex.EncodeToString(b[:])
}

// Info snapshots the session.
func (s *Session) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	in := Info{
		ID: s.ID, Tenant: s.Tenant, N: s.N, NRHS: s.NRHS,
		Blocks: s.blocksLocked(), Rows: s.rowsLocked(),
		Loaded: s.str != nil, Ack: s.Ack,
		CheckpointEvery: s.Every, CheckpointBytes: s.ckptBytes,
	}
	if !s.lastCkpt.IsZero() {
		at := s.lastCkpt
		in.CheckpointAt = &at
	}
	return in
}

func (s *Session) blocksLocked() int64 {
	if s.str != nil {
		return s.str.Blocks()
	}
	return s.blocks
}

func (s *Session) rowsLocked() int64 {
	if s.str != nil {
		return s.str.Rows()
	}
	return s.rows
}

// ensureLoadedLocked restores the spine from the checkpoint file when the
// session is parked on disk. Caller holds s.mu.
func (s *Session) ensureLoadedLocked() error {
	if s.gone {
		return ErrGone
	}
	if s.str != nil {
		return nil
	}
	if s.t.cfg.Dir == "" {
		return ErrGone // memory-only sessions cannot be reloaded
	}
	cp, err := ReadCheckpointFile(CheckpointPath(s.t.cfg.Dir, s.ID))
	if err != nil {
		return fmt.Errorf("session %s: restore: %w", s.ID, err)
	}
	str, err := qr.RestoreStreamer(s.N, s.NRHS, s.Opts, cp.Spine)
	if err != nil {
		return fmt.Errorf("session %s: restore: %w", s.ID, err)
	}
	s.str = str
	s.blocks, s.rows = str.Blocks(), str.Rows()
	s.dirty = 0
	if s.t.cfg.OnRestore != nil {
		s.t.cfg.OnRestore()
	}
	s.t.cfg.Logf("session %s: restored %d blocks / %d rows from checkpoint", s.ID, s.blocks, s.rows)
	return nil
}

// checkpointLocked durably writes the current spine. Caller holds s.mu and
// guarantees str != nil (or an empty spine for a fresh session).
func (s *Session) checkpointLocked() error {
	cp := &Checkpoint{
		ID: s.ID, Tenant: s.Tenant, N: s.N, NRHS: s.NRHS,
		Opts: s.Opts, Every: s.Every, Ack: s.Ack,
	}
	if s.str != nil {
		cp.Blocks, cp.Rows = s.str.Blocks(), s.str.Rows()
		cp.Spine = s.str.Spine()
	}
	n, err := WriteCheckpointFile(s.t.cfg.Dir, cp)
	if err != nil {
		return err
	}
	s.lastCkpt = time.Now()
	s.ckptBytes = n
	s.dirty = 0
	if s.t.cfg.OnCheckpoint != nil {
		s.t.cfg.OnCheckpoint(n)
	}
	return nil
}

// Current folds and returns the session's global state (R and, when the
// stream carries right-hand sides, QᵀB), loading the spine first if parked.
// The returned node is freshly allocated and owned by the caller.
func (s *Session) Current() (*qr.StreamNode, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureLoadedLocked(); err != nil {
		return nil, err
	}
	s.lastUsed = time.Now()
	return s.str.Current(nil, nil), nil
}

// leafResult carries one reduced leaf from a pool worker to the commit loop.
type leafResult struct {
	nd    *qr.StreamNode
	err   error
	start time.Time
}

// AppendStream drives one append stream: next yields row blocks (io.EOF
// ends the stream), and emit observes every committed append in order —
// with the folded global R, or nil for ack-only sessions. Leaf reductions
// pipeline over the table's pool with a bounded window while commits stay
// ordered, so results are bitwise identical to a sequential run.
//
// It returns the number of blocks committed. Only one stream may run per
// session at a time (ErrBusy otherwise). On durable tables a checkpoint
// write failure aborts the stream — an emitted update is never ahead of
// what a restart can recover beyond the session's cadence.
func (s *Session) AppendStream(ctx context.Context, next func() (block, rhs *matrix.Mat, err error), emit func(blocks, rows int64, cur *qr.StreamNode) error) (int64, error) {
	s.mu.Lock()
	if err := s.ensureLoadedLocked(); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	if s.appending {
		s.mu.Unlock()
		return 0, ErrBusy
	}
	s.appending = true
	str := s.str
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.appending = false
		s.lastUsed = time.Now()
		s.mu.Unlock()
	}()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The reader goroutine decodes blocks and dispatches leaf reductions;
	// the buffered futures channel is the pipelining window. Each future is
	// always resolved exactly once (by the worker, or by a failed dispatch),
	// so the commit loop below can rely on <-fut completing unless the pool
	// drops tasks at close — that case is covered by the ctx select.
	futures := make(chan chan leafResult, s.t.cfg.Window)
	readErr := make(chan error, 1)
	go func() {
		defer close(futures)
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			block, rhs, err := next()
			if err != nil {
				if err != io.EOF {
					readErr <- err
				}
				return
			}
			fut := make(chan leafResult, 1)
			start := time.Now()
			run := func(state any) {
				ws, _ := state.(*kernels.Workspace)
				if ws == nil {
					ws = kernels.BorrowWorkspace()
					defer kernels.ReturnWorkspace(ws)
				}
				nd, err := str.LeafReduce(ws, block, rhs)
				fut <- leafResult{nd: nd, err: err, start: start}
			}
			if p := s.t.cfg.Pool; p != nil {
				if !p.Exec(run) {
					fut <- leafResult{err: ErrPoolClosed, start: start}
				}
			} else {
				run(nil)
			}
			select {
			case futures <- fut:
			case <-ctx.Done():
				return
			}
		}
	}()

	ws := kernels.BorrowWorkspace()
	defer kernels.ReturnWorkspace(ws)
	var committed int64
	var streamErr error
loop:
	for fut := range futures {
		var res leafResult
		select {
		case res = <-fut:
		case <-ctx.Done():
			streamErr = context.Cause(ctx)
			break loop
		}
		if res.err != nil {
			streamErr = res.err
			break
		}
		s.mu.Lock()
		if s.gone {
			s.mu.Unlock()
			streamErr = ErrGone
			break
		}
		str.Commit(ws, res.nd)
		blocks, rows := str.Blocks(), str.Rows()
		s.blocks, s.rows = blocks, rows
		var cur *qr.StreamNode
		if !s.Ack {
			cur = str.Current(ws, s.cur)
			s.cur = cur
		}
		s.dirty++
		if s.t.cfg.Dir != "" && s.dirty >= s.Every {
			if err := s.checkpointLocked(); err != nil {
				s.mu.Unlock()
				streamErr = fmt.Errorf("session %s: checkpoint: %w", s.ID, err)
				break
			}
		}
		s.lastUsed = time.Now()
		s.mu.Unlock()
		if err := emit(blocks, rows, cur); err != nil {
			streamErr = err
			break
		}
		committed++
		if s.t.cfg.OnAppend != nil {
			s.t.cfg.OnAppend(time.Since(res.start))
		}
	}
	cancel()
	// Drain futures the reader already queued so their workers never block
	// (each fut has buffer 1, but we must consume the channel to let the
	// reader goroutine observe ctx and exit).
	for range futures {
	}
	if streamErr == nil {
		select {
		case err := <-readErr:
			streamErr = fmt.Errorf("%w: %v", ErrInterrupted, err)
		default:
		}
	}
	return committed, streamErr
}
