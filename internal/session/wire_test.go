package session

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"pulsarqr/internal/matrix"
)

func TestAppendWireRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, nrhs := range []int{0, 3} {
		n := 7
		var body bytes.Buffer
		type frame struct{ block, rhs *matrix.Mat }
		var want []frame
		count := 5
		if err := WriteAppendHeader(&body, count); err != nil {
			t.Fatal(err)
		}
		var enc []byte
		for i := 0; i < count; i++ {
			m := 1 + rng.Intn(20)
			f := frame{block: matrix.NewRand(m, n, rng)}
			if nrhs > 0 {
				f.rhs = matrix.NewRand(m, nrhs, rng)
			}
			want = append(want, f)
			enc = AppendBlock(enc[:0], f.block, f.rhs)
			body.Write(enc)
		}
		ar, err := NewAppendReader(&body, n, nrhs)
		if err != nil {
			t.Fatal(err)
		}
		if ar.Count() != count {
			t.Fatalf("count %d", ar.Count())
		}
		for i, f := range want {
			block, rhs, err := ar.Next()
			if err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if matrix.MaxAbsDiff(block, f.block) != 0 {
				t.Fatalf("frame %d: block not bitwise equal", i)
			}
			if nrhs > 0 && matrix.MaxAbsDiff(rhs, f.rhs) != 0 {
				t.Fatalf("frame %d: rhs not bitwise equal", i)
			}
			if nrhs == 0 && rhs != nil {
				t.Fatalf("frame %d: unexpected rhs", i)
			}
		}
		if _, _, err := ar.Next(); err != io.EOF {
			t.Fatalf("after count: %v", err)
		}
	}
}

func TestAppendWireHostile(t *testing.T) {
	// Declared row count beyond the bound must be rejected before any
	// allocation.
	var body bytes.Buffer
	if err := WriteAppendHeader(&body, 1); err != nil {
		t.Fatal(err)
	}
	body.Write([]byte{0xff, 0xff, 0xff, 0xff})
	ar, err := NewAppendReader(&body, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ar.Next(); err == nil {
		t.Fatal("hostile row count parsed")
	}
	// Truncated payload surfaces as unexpected EOF.
	body.Reset()
	WriteAppendHeader(&body, 1)
	body.Write([]byte{2, 0, 0, 0, 1, 2, 3})
	ar, _ = NewAppendReader(&body, 8, 0)
	if _, _, err := ar.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncation error = %v", err)
	}
	// Bad magic.
	if _, err := NewAppendReader(bytes.NewReader([]byte("NOPE0000")), 8, 0); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("magic error = %v", err)
	}
}

func TestReplyWireRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 6
	var body bytes.Buffer
	rw, err := NewReplyWriter(&body)
	if err != nil {
		t.Fatal(err)
	}
	var rs []*matrix.Mat
	for i := 0; i < 4; i++ {
		var r *matrix.Mat
		if i != 2 { // frame 2 is an ack-only update
			r = matrix.NewRand(n, n, rng)
		}
		rs = append(rs, r)
		if err := rw.WriteUpdate(int64(i+1), int64(10*(i+1)), r); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.WriteTrailer(3); err != nil {
		t.Fatal(err)
	}
	rr, err := NewReplyReader(&body, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range rs {
		up, tr, err := rr.Next()
		if err != nil || tr != nil {
			t.Fatalf("frame %d: up=%v tr=%v err=%v", i, up, tr, err)
		}
		if up.Blocks != int64(i+1) || up.Rows != int64(10*(i+1)) {
			t.Fatalf("frame %d: totals %d/%d", i, up.Blocks, up.Rows)
		}
		if (up.R == nil) != (want == nil) {
			t.Fatalf("frame %d: R presence", i)
		}
		if want != nil && matrix.MaxAbsDiff(up.R, want) != 0 {
			t.Fatalf("frame %d: R not bitwise equal", i)
		}
	}
	up, tr, err := rr.Next()
	if err != nil || up != nil || tr == nil {
		t.Fatalf("trailer: up=%v tr=%v err=%v", up, tr, err)
	}
	if tr.Done != 4 || tr.Shed != 3 {
		t.Fatalf("trailer %+v", tr)
	}
}

func TestReplyWireChecksumMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 5
	var body bytes.Buffer
	rw, _ := NewReplyWriter(&body)
	rw.WriteUpdate(1, 5, matrix.NewRand(n, n, rng))
	rw.WriteTrailer(0)
	b := body.Bytes()
	b[30] ^= 0x10 // flip a payload bit
	rr, _ := NewReplyReader(bytes.NewReader(b), n)
	for {
		_, tr, err := rr.Next()
		if err != nil {
			return // checksum (or structure) rejected the stream, as required
		}
		if tr != nil {
			t.Fatal("corrupted reply stream verified")
		}
	}
}
