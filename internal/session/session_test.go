package session

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/qr"
)

// feedBlocks returns a next() function yielding the given blocks/rhs pairs.
func feedBlocks(blocks, rhs []*matrix.Mat) func() (*matrix.Mat, *matrix.Mat, error) {
	i := 0
	return func() (*matrix.Mat, *matrix.Mat, error) {
		if i >= len(blocks) {
			return nil, nil, io.EOF
		}
		b := blocks[i]
		var r *matrix.Mat
		if rhs != nil {
			r = rhs[i]
		}
		i++
		return b, r, nil
	}
}

func genBlocks(rng *rand.Rand, count, n int) []*matrix.Mat {
	out := make([]*matrix.Mat, count)
	for i := range out {
		m := 4 + rng.Intn(40)
		if i == 0 {
			m = n + rng.Intn(40) // full rank from the first fold
		}
		out[i] = matrix.NewRand(m, n, rng)
	}
	return out
}

func cloneAll(ms []*matrix.Mat) []*matrix.Mat {
	out := make([]*matrix.Mat, len(ms))
	for i, m := range ms {
		out[i] = m.Clone()
	}
	return out
}

func TestTableLimits(t *testing.T) {
	tbl, err := NewTable(Config{MaxSessions: 3, MaxPerTenant: 2, IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	var opts qr.Options
	a1, err := tbl.Open("a", 4, 0, opts, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Open("a", 4, 0, opts, 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Open("a", 4, 0, opts, 0, false); !errors.Is(err, ErrTenantFull) {
		t.Fatalf("tenant overflow: %v", err)
	}
	if _, err := tbl.Open("b", 4, 0, opts, 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Open("c", 4, 0, opts, 0, false); !errors.Is(err, ErrTableFull) {
		t.Fatalf("table overflow: %v", err)
	}
	// Deleting frees both the table slot and the tenant slot.
	if err := tbl.Delete(a1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Open("a", 4, 0, opts, 0, false); err != nil {
		t.Fatalf("after delete: %v", err)
	}
	if _, err := tbl.Get(a1.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted session found: %v", err)
	}
	if _, err := tbl.Open("bad tenant!", 4, 0, opts, 0, false); err == nil {
		t.Fatal("hostile tenant name admitted")
	}
}

// TestAppendStreamMatchesFactorize streams blocks through a table (with a
// live pool, so the pipelined path runs) and checks the final R against a
// from-scratch factorization of the stacked rows.
func TestAppendStreamMatchesFactorize(t *testing.T) {
	pool := pulsar.NewPool(3, func(int) any { return kernels.NewWorkspace() })
	defer pool.Close()
	tbl, err := NewTable(Config{Pool: pool, IdleTimeout: -1, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	rng := rand.New(rand.NewSource(77))
	n := 13
	blocks := genBlocks(rng, 9, n)
	orig := cloneAll(blocks)
	s, err := tbl.Open("t", n, 0, qr.Options{NB: 16, IB: 4}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	var got *matrix.Mat
	var updates int64
	committed, err := s.AppendStream(context.Background(), feedBlocks(blocks, nil),
		func(bl, rows int64, cur *qr.StreamNode) error {
			updates++
			got = cur.R.Clone()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if committed != int64(len(blocks)) || updates != committed {
		t.Fatalf("committed %d, updates %d", committed, updates)
	}
	want := refR(t, orig, n)
	compareR(t, got, want)
}

// refR stacks blocks and factorizes from scratch.
func refR(t *testing.T, blocks []*matrix.Mat, n int) *matrix.Mat {
	t.Helper()
	rows := 0
	for _, b := range blocks {
		rows += b.Rows
	}
	a := matrix.New(rows, n)
	at := 0
	for _, b := range blocks {
		a.View(at, 0, b.Rows, n).CopyFrom(b)
		at += b.Rows
	}
	f, err := qr.Factorize(matrix.FromDense(a, 16), nil, qr.Options{NB: 16, IB: 4})
	if err != nil {
		t.Fatal(err)
	}
	return f.R()
}

// compareR canonicalizes row signs (diag ≥ 0) and compares elementwise.
func compareR(t *testing.T, got, want *matrix.Mat) {
	t.Helper()
	canon := func(r *matrix.Mat) {
		for i := 0; i < r.Rows && i < r.Cols; i++ {
			if r.At(i, i) < 0 {
				for j := 0; j < r.Cols; j++ {
					r.Set(i, j, -r.At(i, j))
				}
			}
		}
	}
	g, w := got.Clone(), want.Clone()
	canon(g)
	canon(w)
	scale := w.MaxAbs() + 1
	if d := matrix.MaxAbsDiff(g, w); d > 1e-10*scale {
		t.Fatalf("R mismatch: %g (scale %g)", d, scale)
	}
}

// TestAppendStreamBusy proves a second concurrent stream is refused.
func TestAppendStreamBusy(t *testing.T) {
	tbl, err := NewTable(Config{IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	s, err := tbl.Open("t", 4, 0, qr.Options{}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		first := true
		_, err := s.AppendStream(context.Background(), func() (*matrix.Mat, *matrix.Mat, error) {
			if first {
				first = false
				return matrix.NewRand(6, 4, rng), nil, nil
			}
			close(started)
			<-release
			return nil, nil, io.EOF
		}, func(int64, int64, *qr.StreamNode) error { return nil })
		done <- err
	}()
	<-started
	if _, err := s.AppendStream(context.Background(), feedBlocks(nil, nil),
		func(int64, int64, *qr.StreamNode) error { return nil }); !errors.Is(err, ErrBusy) {
		t.Fatalf("concurrent stream: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestDurableRestart writes a session through one table, closes it, and
// proves a fresh table over the same directory restores the session and
// that continued appends land bitwise where an uninterrupted run lands.
func TestDurableRestart(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(31))
	n, nrhs := 9, 2
	blocks := genBlocks(rng, 8, n)
	rhs := make([]*matrix.Mat, len(blocks))
	for i, b := range blocks {
		rhs[i] = matrix.NewRand(b.Rows, nrhs, rng)
	}
	cut := 5

	// Uninterrupted run for the bitwise oracle.
	oracleTbl, err := NewTable(Config{IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	so, err := oracleTbl.Open("t", n, nrhs, qr.Options{NB: 8, IB: 4}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := so.AppendStream(context.Background(), feedBlocks(cloneAll(blocks), cloneAll(rhs)),
		func(int64, int64, *qr.StreamNode) error { return nil }); err != nil {
		t.Fatal(err)
	}
	oracle, err := so.Current()
	if err != nil {
		t.Fatal(err)
	}
	oracleTbl.Close()

	// Interrupted run: first cut appends, then close (simulating restart —
	// checkpoint cadence 1 means even kill -9 only loses uncommitted work).
	var ckpts atomic.Int64
	tbl1, err := NewTable(Config{Dir: dir, IdleTimeout: -1,
		OnCheckpoint: func(int64) { ckpts.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := tbl1.Open("t", n, nrhs, qr.Options{NB: 8, IB: 4}, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	id := s1.ID
	if _, err := s1.AppendStream(context.Background(), feedBlocks(cloneAll(blocks[:cut]), cloneAll(rhs[:cut])),
		func(int64, int64, *qr.StreamNode) error { return nil }); err != nil {
		t.Fatal(err)
	}
	tbl1.Close()
	if got := ckpts.Load(); got < int64(cut) {
		t.Fatalf("expected ≥%d checkpoints, saw %d", cut, got)
	}

	// Fresh table over the same dir: the session must reappear unloaded...
	var restores atomic.Int64
	tbl2, err := NewTable(Config{Dir: dir, IdleTimeout: -1,
		OnRestore: func() { restores.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl2.Close()
	s2, err := tbl2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if in := s2.Info(); in.Loaded || in.Blocks != int64(cut) {
		t.Fatalf("restored info %+v", in)
	}
	// ...and replaying the remaining appends must land bitwise on the oracle.
	if _, err := s2.AppendStream(context.Background(), feedBlocks(cloneAll(blocks[cut:]), cloneAll(rhs[cut:])),
		func(int64, int64, *qr.StreamNode) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if restores.Load() != 1 {
		t.Fatalf("restores = %d", restores.Load())
	}
	got, err := s2.Current()
	if err != nil {
		t.Fatal(err)
	}
	if got.Blocks != oracle.Blocks || got.Rows != oracle.Rows {
		t.Fatalf("totals %d/%d vs %d/%d", got.Blocks, got.Rows, oracle.Blocks, oracle.Rows)
	}
	if d := matrix.MaxAbsDiff(got.R, oracle.R); d != 0 {
		t.Fatalf("restored R differs from uninterrupted run by %g (want bitwise equality)", d)
	}
	if d := matrix.MaxAbsDiff(got.QTB, oracle.QTB); d != 0 {
		t.Fatalf("restored QTB differs by %g", d)
	}
}

// TestIdleUnloadAndEvict drives the sweep directly: durable sessions unload
// (and survive), memory-only sessions are deleted.
func TestIdleUnloadAndEvict(t *testing.T) {
	dir := t.TempDir()
	var evicts atomic.Int64
	durable, err := NewTable(Config{Dir: dir, IdleTimeout: 50 * time.Millisecond,
		OnEvict: func() { evicts.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	defer durable.Close()
	s, err := durable.Open("t", 5, 0, qr.Options{}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	durable.sweep(time.Now().Add(time.Minute))
	if in := s.Info(); in.Loaded {
		t.Fatal("idle durable session still loaded")
	}
	if evicts.Load() != 1 {
		t.Fatalf("evicts = %d", evicts.Load())
	}
	if _, err := s.Current(); err != nil { // lazy reload works
		t.Fatal(err)
	}

	mem, err := NewTable(Config{IdleTimeout: 50 * time.Millisecond,
		OnEvict: func() { evicts.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	m, err := mem.Open("t", 5, 0, qr.Options{}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	mem.sweep(time.Now().Add(time.Minute))
	if _, err := mem.Get(m.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("idle memory-only session survived: %v", err)
	}
}

// TestDeleteMidAppend proves an in-flight stream observes the tombstone.
func TestDeleteMidAppend(t *testing.T) {
	dir := t.TempDir()
	tbl, err := NewTable(Config{Dir: dir, IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	s, err := tbl.Open("t", 4, 0, qr.Options{}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	sent := 0
	_, err = s.AppendStream(context.Background(), func() (*matrix.Mat, *matrix.Mat, error) {
		if sent == 1 {
			if err := tbl.Delete(s.ID); err != nil {
				t.Error(err)
			}
		}
		if sent >= 4 {
			return nil, nil, io.EOF
		}
		sent++
		return matrix.NewRand(5, 4, rng), nil, nil
	}, func(int64, int64, *qr.StreamNode) error { return nil })
	if !errors.Is(err, ErrGone) {
		t.Fatalf("stream after delete: %v", err)
	}
	if _, err := os.Stat(CheckpointPath(dir, s.ID)); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survived delete: %v", err)
	}
}

// TestBootScanSkipsGarbage drops junk files into the checkpoint dir and
// proves NewTable registers only the valid session.
func TestBootScanSkipsGarbage(t *testing.T) {
	dir := t.TempDir()
	tbl, err := NewTable(Config{Dir: dir, IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := tbl.Open("t", 6, 0, qr.Options{}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Close()
	os.WriteFile(dir+"/garbage.qsc", []byte("QSC1 but not really"), 0o644)
	os.WriteFile(dir+"/notes.txt", []byte("ignore me"), 0o644)
	tbl2, err := NewTable(Config{Dir: dir, IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl2.Close()
	st := tbl2.Stats()
	if st.Sessions != 1 {
		t.Fatalf("sessions after scan = %d", st.Sessions)
	}
	if _, err := tbl2.Get(s.ID); err != nil {
		t.Fatal(err)
	}
}
