package session

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/qr"
)

// randCheckpoint builds a structurally valid checkpoint with a random
// binary-counter spine.
func randCheckpoint(rng *rand.Rand) *Checkpoint {
	n := 1 + rng.Intn(12)
	nrhs := rng.Intn(3)
	cp := &Checkpoint{
		ID:     "deadbeef01234567",
		Tenant: "acme",
		N:      n,
		NRHS:   nrhs,
		Opts:   qr.Options{NB: 8 + rng.Intn(56), IB: 1 + rng.Intn(8)},
		Every:  rng.Intn(4),
		Ack:    rng.Intn(2) == 1,
	}
	if cp.Opts.IB > cp.Opts.NB {
		cp.Opts.IB = cp.Opts.NB
	}
	count := int64(1 + rng.Intn(127))
	for bit := 6; bit >= 0; bit-- { // set bits of count, descending: the binary-counter spine
		if count&(1<<bit) == 0 {
			continue
		}
		take := int64(1) << bit
		nd := &qr.StreamNode{Blocks: take, Rows: take * int64(1+rng.Intn(40))}
		nd.R = matrix.NewRand(n, n, rng)
		for j := 0; j < n; j++ { // zero below diagonal, like a real R
			for i := j + 1; i < n; i++ {
				nd.R.Set(i, j, 0)
			}
		}
		if nrhs > 0 {
			nd.QTB = matrix.NewRand(n, nrhs, rng)
		}
		cp.Spine = append(cp.Spine, nd)
		cp.Blocks += nd.Blocks
		cp.Rows += nd.Rows
	}
	return cp
}

func TestCheckpointRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		cp := randCheckpoint(rng)
		var buf bytes.Buffer
		n, err := WriteCheckpoint(&buf, cp)
		if err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("trial %d: reported %d bytes, wrote %d", trial, n, buf.Len())
		}
		got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		if got.ID != cp.ID || got.Tenant != cp.Tenant || got.N != cp.N || got.NRHS != cp.NRHS ||
			got.Opts.NB != cp.Opts.NB || got.Opts.IB != cp.Opts.IB ||
			got.Every != cp.Every || got.Ack != cp.Ack ||
			got.Blocks != cp.Blocks || got.Rows != cp.Rows || len(got.Spine) != len(cp.Spine) {
			t.Fatalf("trial %d: header mismatch: %+v vs %+v", trial, got, cp)
		}
		for i, nd := range cp.Spine {
			g := got.Spine[i]
			if g.Blocks != nd.Blocks || g.Rows != nd.Rows {
				t.Fatalf("trial %d node %d: counts", trial, i)
			}
			if matrix.MaxAbsDiff(g.R, nd.R) != 0 {
				t.Fatalf("trial %d node %d: R not bitwise equal", trial, i)
			}
			if (g.QTB == nil) != (nd.QTB == nil) {
				t.Fatalf("trial %d node %d: QTB presence", trial, i)
			}
			if nd.QTB != nil && matrix.MaxAbsDiff(g.QTB, nd.QTB) != 0 {
				t.Fatalf("trial %d node %d: QTB not bitwise equal", trial, i)
			}
		}
		// Header-only parse agrees and stops before the spine.
		info, err := ReadCheckpointInfo(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: info: %v", trial, err)
		}
		if info.Blocks != cp.Blocks || info.Rows != cp.Rows || info.Spine != nil {
			t.Fatalf("trial %d: info mismatch", trial)
		}
		// The restored spine must satisfy RestoreStreamer's invariants.
		if _, err := qr.RestoreStreamer(got.N, got.NRHS, got.Opts, got.Spine); err != nil {
			t.Fatalf("trial %d: restore: %v", trial, err)
		}
	}
}

func TestCheckpointTruncationAndCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cp := randCheckpoint(rng)
	var buf bytes.Buffer
	if _, err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every proper prefix must fail cleanly, never panic or misparse.
	for cut := 0; cut < len(full); cut += 1 + cut/7 {
		if _, err := ReadCheckpoint(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes parsed", cut, len(full))
		}
	}
	// A flipped payload bit must fail the trailer checksum.
	bad := append([]byte(nil), full...)
	bad[len(bad)-20] ^= 0x40
	if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted checkpoint parsed")
	} else if !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("corruption error = %v, want ErrBadCheckpoint", err)
	}
}

func TestCheckpointHostilePrefixAllocBound(t *testing.T) {
	// A tiny stream claiming enormous dims must be rejected on header
	// validation — before any spine allocation happens.
	hostile := [][]byte{
		append([]byte("QSC1"), bytes.Repeat([]byte{0xff}, 64)...),
		append([]byte("QSC1"), 0x02, 0x00, 'a', 'b', 0x00, 0x00,
			0xff, 0xff, 0xff, 0x7f, // n = huge
			0x00, 0x00, 0x00, 0x00),
		[]byte("QBS1nope"),
	}
	for i, b := range hostile {
		if _, err := ReadCheckpoint(bytes.NewReader(b)); err == nil {
			t.Fatalf("hostile stream %d parsed", i)
		}
	}
	// Structurally valid header declaring max dims: the reader may commit
	// at most one column buffer + one matrix before the payload must
	// actually arrive — it must hit EOF, not OOM.
	var buf bytes.Buffer
	cp := &Checkpoint{ID: "x", N: MaxN, NRHS: 0, Opts: qr.Options{NB: 64, IB: 16}, Blocks: 1, Rows: 1,
		Spine: nil}
	if _, err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()[:buf.Len()-8] // drop trailer, claim one spine node
	hdr[len(hdr)-4] = 1
	if _, err := ReadCheckpoint(bytes.NewReader(hdr)); err == nil {
		t.Fatal("truncated spine parsed")
	} else if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckpointRejectsUnsafeNames(t *testing.T) {
	base := randCheckpoint(rand.New(rand.NewSource(3)))
	for _, id := range []string{"", "../../etc/passwd", "a/b", ".hidden", strings.Repeat("x", MaxName+1), "sp ace"} {
		cp := *base
		cp.ID = id
		if _, err := WriteCheckpoint(io.Discard, &cp); err == nil {
			t.Fatalf("id %q encoded", id)
		}
	}
}

func TestCheckpointFileAtomicity(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(21))
	cp := randCheckpoint(rng)
	if _, err := WriteCheckpointFile(dir, cp); err != nil {
		t.Fatal(err)
	}
	// Overwrite with new content; the file must never be torn, and no temp
	// files may linger.
	cp2 := randCheckpoint(rng)
	cp2.ID = cp.ID
	if _, err := WriteCheckpointFile(dir, cp2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(CheckpointPath(dir, cp.ID))
	if err != nil {
		t.Fatal(err)
	}
	if got.Blocks != cp2.Blocks {
		t.Fatalf("read back blocks %d, want %d", got.Blocks, cp2.Blocks)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".qsc" {
			t.Fatalf("leftover file %s", e.Name())
		}
	}
}
