// Package session implements long-lived streaming TSQR factorization
// sessions: a client opens a session, streams row blocks into it, and reads
// back the updated R (and optionally accumulated QᵀB least-squares state)
// after each append. The reduction engine is qr.Streamer — only the
// leaf-to-root path of the reduction tree re-reduces per append — and the
// committed spine is small (≤ ⌈log₂ blocks⌉ n×n triangles), which is what
// makes durable checkpoints cheap enough to write on every append.
package session

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/qr"
)

// QSC1 is the durable checkpoint format. One file per session:
//
//	"QSC1" [u16 idLen] id [u16 tenantLen] tenant
//	[u32 n] [u32 nrhs] [u32 nb] [u32 ib] [u32 every] [u32 flags]
//	[u64 blocks] [u64 rows] [u32 spineLen]
//	spineLen × ( [u64 blocks] [u64 rows] R-mat [QTB-mat when nrhs>0] )
//	[u64 checksum]
//
// Matrices use the pulsar.AppendMat encoding (u32 rows, u32 cols, then
// column-major IEEE-754 bit patterns), all little-endian. The checksum is
// the XOR of the Float64bits of every spine element written — exact and
// order-independent, the same trailer idiom the batch wire format uses.
// Floats roundtrip bit-exactly, so a restored session replayed over the
// same remaining appends is bitwise identical to an uninterrupted run.
//
// The reader validates every count and dimension against a hard bound
// before committing memory, mirroring transport.ReadFrame's hostile-prefix
// defense: a short garbage file cannot force a large allocation.

// Checkpoint bounds. Dimensions are per-session limits, far above anything
// the service admits, but small enough that a hostile header cannot commit
// more than a few MB before payload bytes have to actually arrive.
const (
	MaxN     = 1 << 10 // columns per stream
	MaxNRHS  = 1 << 8  // ride-along right-hand-side columns
	MaxSpine = 64      // binary-counter spine depth (covers 2^64 blocks)
	MaxName  = 128     // id / tenant byte length
)

var ckptMagic = [4]byte{'Q', 'S', 'C', '1'}

// checkpoint flag bits.
const flagAckOnly = 1 << 0

// ErrBadCheckpoint reports a checkpoint stream that fails structural
// validation (bad magic, out-of-range dims, truncation, checksum mismatch).
var ErrBadCheckpoint = errors.New("session: bad checkpoint")

// Checkpoint is the serializable state of a session: identity, stream
// configuration, and the committed reduction spine.
type Checkpoint struct {
	ID     string
	Tenant string
	N      int
	NRHS   int
	Opts   qr.Options // only NB and IB persist; tree shape is implied
	Every  int        // checkpoint cadence (appends per durable write)
	Ack    bool       // ack-only sessions skip per-append R emission
	Blocks int64
	Rows   int64
	Spine  []*qr.StreamNode
}

// validIDByte reports whether c may appear in a session id or tenant name
// destined for a checkpoint filename.
func validIDByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '_' ||
		c >= 'A' && c <= 'Z' || c == '.'
}

// validName reports whether s is safe as a checkpoint identity: short,
// filesystem-safe bytes, and no dot-prefixed path tricks.
func validName(s string) bool {
	if len(s) > MaxName || strings.HasPrefix(s, ".") {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !validIDByte(s[i]) {
			return false
		}
	}
	return true
}

// WriteCheckpoint serializes cp to w. The caller must hold whatever lock
// serializes mutation of the spine.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) (int64, error) {
	if cp.ID == "" || !validName(cp.ID) {
		return 0, fmt.Errorf("session: checkpoint id %q not encodable", cp.ID)
	}
	if !validName(cp.Tenant) {
		return 0, fmt.Errorf("session: checkpoint tenant %q not encodable", cp.Tenant)
	}
	if cp.N < 1 || cp.N > MaxN || cp.NRHS < 0 || cp.NRHS > MaxNRHS || len(cp.Spine) > MaxSpine {
		return 0, fmt.Errorf("session: checkpoint dims n=%d nrhs=%d spine=%d out of range", cp.N, cp.NRHS, len(cp.Spine))
	}
	buf := make([]byte, 0, 4+4+len(cp.ID)+len(cp.Tenant)+6*4+2*8+4)
	buf = append(buf, ckptMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(cp.ID)))
	buf = append(buf, cp.ID...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(cp.Tenant)))
	buf = append(buf, cp.Tenant...)
	var flags uint32
	if cp.Ack {
		flags |= flagAckOnly
	}
	for _, v := range []uint32{uint32(cp.N), uint32(cp.NRHS), uint32(cp.Opts.NB), uint32(cp.Opts.IB), uint32(cp.Every), flags} {
		buf = binary.LittleEndian.AppendUint32(buf, v)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.Blocks))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.Rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cp.Spine)))
	var sum uint64
	total := int64(0)
	flush := func() error {
		n, err := w.Write(buf)
		total += int64(n)
		buf = buf[:0]
		return err
	}
	for _, nd := range cp.Spine {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(nd.Blocks))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(nd.Rows))
		buf = pulsar.AppendMat(buf, nd.R)
		sum ^= xorMat(nd.R)
		if cp.NRHS > 0 {
			buf = pulsar.AppendMat(buf, nd.QTB)
			sum ^= xorMat(nd.QTB)
		}
		if err := flush(); err != nil {
			return total, err
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, sum)
	err := flush()
	return total, err
}

// xorMat folds every element's bit pattern into one word.
func xorMat(m *matrix.Mat) uint64 {
	var sum uint64
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			sum ^= math.Float64bits(m.At(i, j))
		}
	}
	return sum
}

// ReadCheckpoint decodes a full checkpoint, verifying structure and
// checksum. Every length and dimension is bounds-checked before the
// corresponding allocation.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	return readCheckpoint(r, true)
}

// ReadCheckpointInfo decodes only the checkpoint header — identity, dims,
// and committed block/row counts — without loading the spine. Boot-time
// directory scans use it to register sessions lazily.
func ReadCheckpointInfo(r io.Reader) (*Checkpoint, error) {
	return readCheckpoint(r, false)
}

func readCheckpoint(r io.Reader, full bool) (*Checkpoint, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrBadCheckpoint, err)
	}
	if magic != ckptMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadCheckpoint, magic[:])
	}
	id, err := readName(r, "id")
	if err != nil {
		return nil, err
	}
	if id == "" {
		return nil, fmt.Errorf("%w: empty id", ErrBadCheckpoint)
	}
	tenant, err := readName(r, "tenant")
	if err != nil {
		return nil, err
	}
	var fixed [6*4 + 2*8 + 4]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadCheckpoint, noEOF(err))
	}
	cp := &Checkpoint{
		ID:     id,
		Tenant: tenant,
		N:      int(binary.LittleEndian.Uint32(fixed[0:])),
		NRHS:   int(binary.LittleEndian.Uint32(fixed[4:])),
		Opts: qr.Options{
			NB: int(binary.LittleEndian.Uint32(fixed[8:])),
			IB: int(binary.LittleEndian.Uint32(fixed[12:])),
		},
		Every:  int(binary.LittleEndian.Uint32(fixed[16:])),
		Blocks: int64(binary.LittleEndian.Uint64(fixed[24:])),
		Rows:   int64(binary.LittleEndian.Uint64(fixed[32:])),
	}
	flags := binary.LittleEndian.Uint32(fixed[20:])
	cp.Ack = flags&flagAckOnly != 0
	spineLen := binary.LittleEndian.Uint32(fixed[40:])
	if cp.N < 1 || cp.N > MaxN || cp.NRHS < 0 || cp.NRHS > MaxNRHS {
		return nil, fmt.Errorf("%w: dims n=%d nrhs=%d", ErrBadCheckpoint, cp.N, cp.NRHS)
	}
	if cp.Opts.NB < 1 || cp.Opts.NB > MaxN || cp.Opts.IB < 1 || cp.Opts.IB > cp.Opts.NB {
		return nil, fmt.Errorf("%w: blocking nb=%d ib=%d", ErrBadCheckpoint, cp.Opts.NB, cp.Opts.IB)
	}
	if cp.Every < 0 || cp.Every > 1<<20 || cp.Blocks < 0 || cp.Rows < 0 {
		return nil, fmt.Errorf("%w: counters", ErrBadCheckpoint)
	}
	if spineLen > MaxSpine {
		return nil, fmt.Errorf("%w: spine depth %d exceeds %d", ErrBadCheckpoint, spineLen, MaxSpine)
	}
	if !full {
		return cp, nil
	}
	var sum uint64
	var blocks, rows int64
	for i := 0; i < int(spineLen); i++ {
		var hdr [16]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("%w: spine node %d: %v", ErrBadCheckpoint, i, noEOF(err))
		}
		nd := &qr.StreamNode{
			Blocks: int64(binary.LittleEndian.Uint64(hdr[0:])),
			Rows:   int64(binary.LittleEndian.Uint64(hdr[8:])),
		}
		if nd.Blocks < 1 || nd.Rows < 1 {
			return nil, fmt.Errorf("%w: spine node %d counts", ErrBadCheckpoint, i)
		}
		if nd.R, err = readMat(r, cp.N, cp.N); err != nil {
			return nil, fmt.Errorf("%w: spine node %d R: %v", ErrBadCheckpoint, i, err)
		}
		sum ^= xorMat(nd.R)
		if cp.NRHS > 0 {
			if nd.QTB, err = readMat(r, cp.N, cp.NRHS); err != nil {
				return nil, fmt.Errorf("%w: spine node %d QTB: %v", ErrBadCheckpoint, i, err)
			}
			sum ^= xorMat(nd.QTB)
		}
		blocks += nd.Blocks
		rows += nd.Rows
		cp.Spine = append(cp.Spine, nd)
	}
	if blocks != cp.Blocks || rows != cp.Rows {
		return nil, fmt.Errorf("%w: spine folds %d blocks / %d rows, header claims %d / %d",
			ErrBadCheckpoint, blocks, rows, cp.Blocks, cp.Rows)
	}
	var trailer [8]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, fmt.Errorf("%w: trailer: %v", ErrBadCheckpoint, noEOF(err))
	}
	if got := binary.LittleEndian.Uint64(trailer[:]); got != sum {
		return nil, fmt.Errorf("%w: checksum %#x, recomputed %#x", ErrBadCheckpoint, got, sum)
	}
	return cp, nil
}

// readName decodes one u16-length-prefixed identity string.
func readName(r io.Reader, what string) (string, error) {
	var ln [2]byte
	if _, err := io.ReadFull(r, ln[:]); err != nil {
		return "", fmt.Errorf("%w: %s length: %v", ErrBadCheckpoint, what, noEOF(err))
	}
	n := int(binary.LittleEndian.Uint16(ln[:]))
	if n > MaxName {
		return "", fmt.Errorf("%w: %s length %d exceeds %d", ErrBadCheckpoint, what, n, MaxName)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: %s: %v", ErrBadCheckpoint, what, noEOF(err))
	}
	s := string(buf)
	if n > 0 && !validName(s) {
		return "", fmt.Errorf("%w: %s %q not a valid name", ErrBadCheckpoint, what, s)
	}
	return s, nil
}

// readMat decodes one pulsar.AppendMat-encoded matrix whose dimensions must
// equal rows×cols exactly; the shape is known from the validated session
// header, so a hostile inner header cannot inflate the allocation.
func readMat(r io.Reader, rows, cols int) (*matrix.Mat, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, noEOF(err)
	}
	gr := int(binary.LittleEndian.Uint32(hdr[0:]))
	gc := int(binary.LittleEndian.Uint32(hdr[4:]))
	if gr != rows || gc != cols {
		return nil, fmt.Errorf("matrix is %dx%d, want %dx%d", gr, gc, rows, cols)
	}
	m := matrix.New(rows, cols)
	buf := make([]byte, 8*rows)
	for j := 0; j < cols; j++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, noEOF(err)
		}
		for i := 0; i < rows; i++ {
			m.Set(i, j, math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:])))
		}
	}
	return m, nil
}

// noEOF turns a bare io.EOF into io.ErrUnexpectedEOF: inside a declared
// stream, running out of bytes is always a truncation.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// CheckpointPath returns the file a session's checkpoint lives at.
func CheckpointPath(dir, id string) string {
	return filepath.Join(dir, id+".qsc")
}

// WriteCheckpointFile durably writes cp under dir with the crash-safe
// temp-file + fsync + rename dance: a kill -9 at any instant leaves either
// the previous checkpoint or the new one, never a torn file.
func WriteCheckpointFile(dir string, cp *Checkpoint) (int64, error) {
	final := CheckpointPath(dir, cp.ID)
	tmp, err := os.CreateTemp(dir, "."+cp.ID+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	n, err := WriteCheckpoint(tmp, cp)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), final)
	}
	if err != nil {
		return 0, err
	}
	return n, nil
}

// ReadCheckpointFile loads and validates the checkpoint at path.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}
