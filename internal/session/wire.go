package session

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"pulsarqr/internal/matrix"
)

// Wire format of POST /v1/sessions/{id}/append. The request body is one
// stream of row blocks:
//
//	"QSA1" [u32 count] count × ( [u32 m] m·n × [f64] m·nrhs × [f64] )
//
// n and nrhs are fixed per session, so frames carry only the row count.
// The response mirrors the batch API: one frame per committed append, in
// commit order, followed by a trailer so the client always learns how far
// the server got:
//
//	"QSB1" frames × ( [u64 blocks] [u64 rows] [u32 k] k·n × [f64] ) trailer
//	trailer = [u32 0xFFFFFFFF pad] [u32 done] [u32 shed] [u64 checksum]
//
// blocks/rows are the session's cumulative totals after the commit; k is n
// when the frame carries the folded global R (zeros below the diagonal) and
// 0 for ack-only sessions. All integers little-endian; floats are IEEE-754
// bit patterns, column-major. The checksum is the XOR of the Float64bits of
// every R element emitted. Frame row counts are bounds-checked before any
// allocation — the hostile-prefix defense shared with the batch and
// checkpoint decoders.

var (
	appendMagic = [4]byte{'Q', 'S', 'A', '1'}
	replyMagic  = [4]byte{'Q', 'S', 'B', '1'}
)

// MaxAppends bounds the block count one append stream may declare.
const MaxAppends = 1 << 20

// MaxBlockRows bounds the rows one appended block may carry; larger updates
// split into multiple appends. Together with MaxN/MaxNRHS it caps the
// decoder's scratch at a few tens of MB even under a hostile prefix.
const MaxBlockRows = 1 << 12

// appendTrailer marks the response trailer frame (in the blocks position's
// low word it can never collide: a trailer's first u32 is all-ones padding).
const appendTrailer = 0xFFFFFFFF

// ErrBadMagic reports a session stream that does not start with its magic.
var ErrBadMagic = errors.New("session: bad stream magic")

// WriteAppendHeader writes the append-request magic and declared block count.
func WriteAppendHeader(w io.Writer, count int) error {
	if count < 0 || count > MaxAppends {
		return fmt.Errorf("session: append count %d out of range [0,%d]", count, MaxAppends)
	}
	var hdr [8]byte
	copy(hdr[:4], appendMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:], uint32(count))
	_, err := w.Write(hdr[:])
	return err
}

// AppendBlock appends the request encoding of one row block (and its
// ride-along rhs rows, nil for R-only sessions) to dst.
func AppendBlock(dst []byte, block, rhs *matrix.Mat) []byte {
	if block.Rows < 1 || block.Rows > MaxBlockRows {
		panic(fmt.Sprintf("session: encode %d-row block", block.Rows))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(block.Rows))
	dst = appendCols(dst, block)
	if rhs != nil {
		if rhs.Rows != block.Rows {
			panic(fmt.Sprintf("session: rhs has %d rows, block %d", rhs.Rows, block.Rows))
		}
		dst = appendCols(dst, rhs)
	}
	return dst
}

func appendCols(dst []byte, m *matrix.Mat) []byte {
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.LD : j*m.LD+m.Rows]
		for _, v := range col {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// AppendReader decodes an append-request stream block by block so the
// session can reduce early blocks while later ones are still arriving.
// Blocks returned by Next are freshly allocated and owned by the caller
// (the reduction consumes them); the byte scratch is reused.
type AppendReader struct {
	r       io.Reader
	n, nrhs int
	count   int
	read    int
	buf     []byte
}

// NewAppendReader validates the stream header against the session's fixed
// column counts and returns a reader over its blocks.
func NewAppendReader(r io.Reader, n, nrhs int) (*AppendReader, error) {
	if n < 1 || n > MaxN || nrhs < 0 || nrhs > MaxNRHS {
		return nil, fmt.Errorf("session: append reader dims n=%d nrhs=%d", n, nrhs)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("session: append header: %w", err)
	}
	if [4]byte(hdr[:4]) != appendMagic {
		return nil, ErrBadMagic
	}
	count := binary.LittleEndian.Uint32(hdr[4:])
	if count > MaxAppends {
		return nil, fmt.Errorf("session: append declares %d blocks, limit %d", count, MaxAppends)
	}
	return &AppendReader{r: r, n: n, nrhs: nrhs, count: int(count)}, nil
}

// Count returns the block count the stream header declared.
func (ar *AppendReader) Count() int { return ar.count }

// Next decodes the next appended block (and its rhs rows, nil when the
// session carries none). It returns io.EOF after the declared count; a
// stream ending early yields an error wrapping io.ErrUnexpectedEOF. The row
// count is validated before the payload is allocated or read.
func (ar *AppendReader) Next() (block, rhs *matrix.Mat, err error) {
	if ar.read >= ar.count {
		return nil, nil, io.EOF
	}
	var hdr [4]byte
	if _, err := io.ReadFull(ar.r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("session: block %d header: %w", ar.read, noEOF(err))
	}
	m := int(binary.LittleEndian.Uint32(hdr[:]))
	if m < 1 || m > MaxBlockRows {
		return nil, nil, fmt.Errorf("session: block %d declares %d rows; need 1..%d", ar.read, m, MaxBlockRows)
	}
	need := 8 * m * (ar.n + ar.nrhs)
	if cap(ar.buf) < need {
		ar.buf = make([]byte, need)
	}
	buf := ar.buf[:need]
	if _, err := io.ReadFull(ar.r, buf); err != nil {
		return nil, nil, fmt.Errorf("session: block %d payload: %w", ar.read, noEOF(err))
	}
	block = matrix.New(m, ar.n)
	fillBits(block, buf[:8*m*ar.n])
	if ar.nrhs > 0 {
		rhs = matrix.New(m, ar.nrhs)
		fillBits(rhs, buf[8*m*ar.n:])
	}
	ar.read++
	return block, rhs, nil
}

func fillBits(m *matrix.Mat, b []byte) {
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

// ReplyWriter encodes the append-response stream, tracking the running
// checksum and frame count for the trailer. The append loop serializes
// emission; it is not safe for concurrent use.
type ReplyWriter struct {
	w    io.Writer
	buf  []byte
	sum  uint64
	done uint32
}

// NewReplyWriter writes the response magic and returns the writer.
func NewReplyWriter(w io.Writer) (*ReplyWriter, error) {
	if _, err := w.Write(replyMagic[:]); err != nil {
		return nil, err
	}
	return &ReplyWriter{w: w}, nil
}

// WriteUpdate emits one commit frame: the session's cumulative totals and,
// unless r is nil (ack-only), the folded global R.
func (rw *ReplyWriter) WriteUpdate(blocks, rows int64, r *matrix.Mat) error {
	rw.buf = rw.buf[:0]
	rw.buf = binary.LittleEndian.AppendUint64(rw.buf, uint64(blocks))
	rw.buf = binary.LittleEndian.AppendUint64(rw.buf, uint64(rows))
	if r == nil {
		rw.buf = binary.LittleEndian.AppendUint32(rw.buf, 0)
	} else {
		rw.buf = binary.LittleEndian.AppendUint32(rw.buf, uint32(r.Rows))
		for j := 0; j < r.Cols; j++ {
			col := r.Data[j*r.LD : j*r.LD+r.Rows]
			for _, v := range col {
				bits := math.Float64bits(v)
				rw.sum ^= bits
				rw.buf = binary.LittleEndian.AppendUint64(rw.buf, bits)
			}
		}
	}
	if _, err := rw.w.Write(rw.buf); err != nil {
		return err
	}
	rw.done++
	return nil
}

// Done returns the commit frames written so far.
func (rw *ReplyWriter) Done() int { return int(rw.done) }

// WriteTrailer ends the stream, reporting blocks the server never committed
// (shed) and the checksum of everything emitted.
func (rw *ReplyWriter) WriteTrailer(shed int) error {
	rw.buf = rw.buf[:0]
	rw.buf = binary.LittleEndian.AppendUint32(rw.buf, appendTrailer)
	rw.buf = binary.LittleEndian.AppendUint32(rw.buf, appendTrailer)
	rw.buf = binary.LittleEndian.AppendUint32(rw.buf, rw.done)
	rw.buf = binary.LittleEndian.AppendUint32(rw.buf, uint32(shed))
	rw.buf = binary.LittleEndian.AppendUint64(rw.buf, rw.sum)
	_, err := rw.w.Write(rw.buf)
	return err
}

// Update is one decoded append-response frame.
type Update struct {
	Blocks int64       // session row blocks committed so far
	Rows   int64       // session matrix rows committed so far
	R      *matrix.Mat // folded global R; nil on ack-only streams
}

// Trailer is the decoded end-of-stream summary of an append response.
type Trailer struct {
	Done int    // commit frames the server emitted
	Shed int    // appended blocks the server dropped (cancel, shutdown)
	Sum  uint64 // server-side checksum of every emitted element
}

// ReplyReader decodes an append response, verifying the trailer checksum
// against what was actually received.
type ReplyReader struct {
	r    io.Reader
	n    int
	buf  []byte
	sum  uint64
	done int
}

// NewReplyReader validates the response magic and returns a reader; n is
// the session's column count.
func NewReplyReader(r io.Reader, n int) (*ReplyReader, error) {
	if n < 1 || n > MaxN {
		return nil, fmt.Errorf("session: reply reader n=%d", n)
	}
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("session: response header: %w", err)
	}
	if magic != replyMagic {
		return nil, ErrBadMagic
	}
	return &ReplyReader{r: r, n: n}, nil
}

// Next decodes the next frame. At the end of the stream it returns
// (nil, trailer, nil) after verifying checksum and frame count; before
// that, (update, nil, nil). A trailer is recognized by its first 8 bytes
// being all ones — a cumulative block count can never reach 2⁶⁴−1.
func (rr *ReplyReader) Next() (*Update, *Trailer, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(rr.r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("session: response frame: %w", noEOF(err))
	}
	if binary.LittleEndian.Uint64(hdr[:]) == math.MaxUint64 {
		var rest [16]byte
		if _, err := io.ReadFull(rr.r, rest[:]); err != nil {
			return nil, nil, fmt.Errorf("session: response trailer: %w", noEOF(err))
		}
		tr := &Trailer{
			Done: int(binary.LittleEndian.Uint32(rest[0:])),
			Shed: int(binary.LittleEndian.Uint32(rest[4:])),
			Sum:  binary.LittleEndian.Uint64(rest[8:]),
		}
		if tr.Done != rr.done {
			return nil, nil, fmt.Errorf("session: trailer claims %d frames, read %d", tr.Done, rr.done)
		}
		if tr.Sum != rr.sum {
			return nil, nil, fmt.Errorf("session: response checksum %#x, received %#x", tr.Sum, rr.sum)
		}
		return nil, tr, nil
	}
	var rest [12]byte
	if _, err := io.ReadFull(rr.r, rest[:]); err != nil {
		return nil, nil, fmt.Errorf("session: response frame: %w", noEOF(err))
	}
	up := &Update{
		Blocks: int64(binary.LittleEndian.Uint64(hdr[:])),
		Rows:   int64(binary.LittleEndian.Uint64(rest[0:])),
	}
	k := int(binary.LittleEndian.Uint32(rest[8:]))
	if k != 0 && k != rr.n {
		return nil, nil, fmt.Errorf("session: response frame k=%d, session n=%d", k, rr.n)
	}
	if k > 0 {
		need := 8 * k * rr.n
		if cap(rr.buf) < need {
			rr.buf = make([]byte, need)
		}
		buf := rr.buf[:need]
		if _, err := io.ReadFull(rr.r, buf); err != nil {
			return nil, nil, fmt.Errorf("session: response R payload: %w", noEOF(err))
		}
		up.R = matrix.New(k, rr.n)
		for i := range up.R.Data {
			bits := binary.LittleEndian.Uint64(buf[i*8:])
			rr.sum ^= bits
			up.R.Data[i] = math.Float64frombits(bits)
		}
	}
	rr.done++
	return up, nil, nil
}
