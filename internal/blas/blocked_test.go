package blas

import (
	"math"
	"math/rand"
	"testing"
)

// Differential tests for the blocked level-3 engine: the blocked paths must
// agree with the retained scalar references (dgemmScalar, trmmLeftScalar)
// to rounding on every shape, including the adversarial ones around the
// micro-kernel and blocking boundaries.

// boundarySizes straddles every compile-time blocking constant: the
// micro-tile edges (MR=8, NR=6), the cache blocks (MC=128, KC=256), primes,
// and the degenerate 0/1 cases.
var boundarySizes = []int{0, 1, 2, 3, 5, 6, 7, 8, 9, 13, 16, 17, 31, 48, 97, 127, 128, 129, 257}

// gemmDiff runs the public Dgemm (which may route to the blocked engine)
// against dgemmScalar on identical inputs and returns the max abs error.
func gemmDiff(t *testing.T, rng *rand.Rand, transA, transB bool, m, n, k int, alpha, beta float64) {
	t.Helper()
	ar, ac := m, k
	if transA {
		ar, ac = k, m
	}
	br, bc := k, n
	if transB {
		br, bc = n, k
	}
	lda, ldb, ldc := ar+3, br+1, m+2
	if lda < 1 {
		lda = 1
	}
	if ldb < 1 {
		ldb = 1
	}
	if ldc < 1 {
		ldc = 1
	}
	a := colMajor(rng, ar, ac, lda)
	b := colMajor(rng, br, bc, ldb)
	c := colMajor(rng, m, n, ldc)
	want := make([]float64, len(c))
	copy(want, c)
	dgemmScalar(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, want, ldc)
	Dgemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	// Elementwise error bound: each entry is a k-term inner product of
	// values in [-1,1] plus beta*C; reassociation error grows with k.
	tol := 1e-13 * float64(k+4)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			if d := math.Abs(c[i+j*ldc] - want[i+j*ldc]); d > tol {
				t.Fatalf("gemm(tA=%v tB=%v m=%d n=%d k=%d alpha=%v beta=%v): |diff|=%g at (%d,%d)",
					transA, transB, m, n, k, alpha, beta, d, i, j)
			}
		}
	}
	checkPadding(t, c, m, n, ldc, "C")
}

func TestDgemmBlockedMatchesScalarShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, transA := range []bool{false, true} {
		for _, transB := range []bool{false, true} {
			for _, m := range boundarySizes {
				for _, n := range boundarySizes {
					for _, k := range boundarySizes {
						// Keep the full sweep affordable: skip triples where
						// every dimension is large — the boundary behavior
						// they exercise is covered by the mixed triples.
						if m*n*k > 48*48*97 {
							continue
						}
						gemmDiff(t, rng, transA, transB, m, n, k, 0.5, -1)
					}
				}
			}
		}
	}
}

func TestDgemmBlockedMatchesScalarCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, alpha := range []float64{0, 1, -1, 0.5} {
		for _, beta := range []float64{0, 1, -1, 0.5} {
			for _, sz := range [][3]int{{48, 48, 48}, {17, 129, 31}, {9, 7, 257}} {
				gemmDiff(t, rng, false, false, sz[0], sz[1], sz[2], alpha, beta)
				gemmDiff(t, rng, true, false, sz[0], sz[1], sz[2], alpha, beta)
			}
		}
	}
}

// TestDgemmBlockedDeterministic locks in the determinism contract: repeated
// blocked runs on the same inputs must agree bitwise, regardless of which
// pooled scratch buffer they draw.
func TestDgemmBlockedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, n, k := 97, 65, 129
	a := colMajor(rng, m, k, m)
	b := colMajor(rng, k, n, k)
	c0 := colMajor(rng, m, n, m)
	c1 := make([]float64, len(c0))
	copy(c1, c0)
	Dgemm(false, false, m, n, k, 1.5, a, m, b, k, 0.5, c0, m)
	Dgemm(false, false, m, n, k, 1.5, a, m, b, k, 0.5, c1, m)
	for i := range c0 {
		if c0[i] != c1[i] {
			t.Fatalf("blocked Dgemm not bitwise deterministic at %d", i)
		}
	}
}

func trmmDiff(t *testing.T, rng *rand.Rand, upper, trans, unit bool, m, n int, alpha float64) {
	t.Helper()
	lda, ldb := m+2, m+1
	if m == 0 {
		lda, ldb = 1, 1
	}
	a := colMajor(rng, m, m, lda)
	b := colMajor(rng, m, n, ldb)
	want := make([]float64, len(b))
	copy(want, b)
	trmmLeftScalar(upper, trans, unit, m, n, alpha, a, lda, want, ldb)
	Dtrmm(true, upper, trans, unit, m, n, alpha, a, lda, b, ldb)
	tol := 1e-13 * float64(m+4)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			if d := math.Abs(b[i+j*ldb] - want[i+j*ldb]); d > tol {
				t.Fatalf("trmm(upper=%v trans=%v unit=%v m=%d n=%d alpha=%v): |diff|=%g at (%d,%d)",
					upper, trans, unit, m, n, alpha, d, i, j)
			}
		}
	}
	checkPadding(t, b, m, n, ldb, "B")
}

func TestDtrmmBlockedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, upper := range []bool{false, true} {
		for _, trans := range []bool{false, true} {
			for _, unit := range []bool{false, true} {
				for _, m := range []int{1, 2, 7, 15, 16, 17, 24, 31, 48, 97, 129} {
					for _, n := range []int{1, 5, 48, 193} {
						trmmDiff(t, rng, upper, trans, unit, m, n, 1)
					}
				}
				for _, alpha := range []float64{0, -1, 0.5} {
					trmmDiff(t, rng, upper, trans, unit, 49, 33, alpha)
				}
			}
		}
	}
}

// FuzzDgemmBlocked cross-checks the blocked engine against the scalar
// reference on fuzzer-chosen shapes and coefficients.
func FuzzDgemmBlocked(f *testing.F) {
	f.Add(int64(1), uint8(48), uint8(48), uint8(48), uint8(0), 1.0, 0.0)
	f.Add(int64(2), uint8(129), uint8(7), uint8(255), uint8(1), 0.5, -1.0)
	f.Add(int64(3), uint8(9), uint8(6), uint8(8), uint8(3), -1.0, 0.5)
	f.Fuzz(func(t *testing.T, seed int64, mm, nn, kk, flags uint8, alpha, beta float64) {
		m, n, k := int(mm), int(nn), int(kk)
		if m == 0 || n == 0 || k == 0 {
			return
		}
		if !(math.Abs(alpha) <= 4 && math.Abs(beta) <= 4) {
			return // keep magnitudes comparable so tolerances stay meaningful
		}
		transA := flags&1 != 0
		transB := flags&2 != 0
		rng := rand.New(rand.NewSource(seed))
		ar, ac := m, k
		if transA {
			ar, ac = k, m
		}
		br, bc := k, n
		if transB {
			br, bc = n, k
		}
		a := colMajor(rng, ar, ac, ar)
		b := colMajor(rng, br, bc, br)
		c := colMajor(rng, m, n, m)
		want := make([]float64, len(c))
		copy(want, c)
		dgemmScalar(transA, transB, m, n, k, alpha, a, ar, b, br, beta, want, m)
		Dgemm(transA, transB, m, n, k, alpha, a, ar, b, br, beta, c, m)
		tol := 1e-13 * float64(k+4) * (math.Abs(alpha) + math.Abs(beta) + 1)
		for i := range c {
			if d := math.Abs(c[i] - want[i]); d > tol {
				t.Fatalf("blocked/scalar mismatch: m=%d n=%d k=%d tA=%v tB=%v alpha=%v beta=%v |diff|=%g",
					m, n, k, transA, transB, alpha, beta, d)
			}
		}
	})
}
