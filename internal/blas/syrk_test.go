package blas

import (
	"math"
	"math/rand"
	"testing"
)

func refSyrk(upper, trans bool, n, k int, alpha float64, a []float64, lda int,
	beta float64, c []float64, ldc int) []float64 {
	out := make([]float64, len(c))
	copy(out, c)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			inTri := (upper && i <= j) || (!upper && i >= j)
			if !inTri {
				continue
			}
			var s float64
			for l := 0; l < k; l++ {
				var av, bv float64
				if trans {
					av, bv = get(a, lda, l, i), get(a, lda, l, j)
				} else {
					av, bv = get(a, lda, i, l), get(a, lda, j, l)
				}
				s += av * bv
			}
			out[i+j*ldc] = alpha*s + beta*get(c, ldc, i, j)
		}
	}
	return out
}

func TestDsyrkAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, k := 6, 4
	for _, upper := range []bool{false, true} {
		for _, trans := range []bool{false, true} {
			for _, beta := range []float64{0, 1, -0.5} {
				ar, ac := n, k
				if trans {
					ar, ac = k, n
				}
				lda, ldc := ar+1, n+2
				a := colMajor(rng, ar, ac, lda)
				c := colMajor(rng, n, n, ldc)
				orig := make([]float64, len(c))
				copy(orig, c)
				want := refSyrk(upper, trans, n, k, 1.5, a, lda, beta, c, ldc)
				Dsyrk(upper, trans, n, k, 1.5, a, lda, beta, c, ldc)
				for j := 0; j < n; j++ {
					for i := 0; i < n; i++ {
						inTri := (upper && i <= j) || (!upper && i >= j)
						if inTri {
							if math.Abs(c[i+j*ldc]-want[i+j*ldc]) > 1e-12 {
								t.Fatalf("syrk(%v,%v,%v) mismatch at (%d,%d)", upper, trans, beta, i, j)
							}
						} else if c[i+j*ldc] != orig[i+j*ldc] {
							t.Fatalf("syrk touched the opposite triangle at (%d,%d)", i, j)
						}
					}
				}
				checkPadding(t, c, n, n, ldc, "C")
			}
		}
	}
}

func TestDsyrkDegenerate(t *testing.T) {
	c := []float64{1, 2, 3, 4}
	Dsyrk(false, false, 0, 3, 1, nil, 1, 0, c, 2)
	Dsyrk(false, false, 2, 0, 1, nil, 1, 2, c, 2)
	// beta=2 with k=0 doubles the lower triangle only.
	if c[0] != 2 || c[1] != 4 || c[2] != 3 || c[3] != 8 {
		t.Fatalf("degenerate syrk wrong: %v", c)
	}
}
