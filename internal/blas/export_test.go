package blas

// forceKernel swaps the active micro-kernel configuration for the duration
// of a test and returns a restore function. Pooled scratch is sized for the
// largest config (scratchAP/scratchBP), so buffers packed under one config
// and reused under another stay in bounds; callers must not hold packed
// panels across the swap (KernelID changes with it).
func forceKernel(p kernelParams) (restore func()) {
	old := kp
	kp = p
	return func() { kp = old }
}

// Exported-for-test kernel configs and capability flags.
var (
	testParamsAVX512 = paramsAVX512
	testParamsAVX2   = paramsAVX2
	testParamsScalar = paramsScalar

	testHaveAVX512 = haveAVX512
	testHaveAVX2   = haveFastKernel
)
