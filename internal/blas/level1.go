// Package blas implements the subset of column-major double-precision BLAS
// required by the tile QR kernels: level-1 vector operations, a few level-2
// routines for unblocked Householder updates, and the level-3 routines
// (Dgemm, Dtrmm, Dtrsm) that dominate the compute time of the factorization.
//
// All matrices are column-major with an explicit leading dimension, matching
// the reference BLAS so the kernel package translates one-to-one from the
// LAPACK formulations. Vector arguments take an increment, but the kernels
// only use contiguous vectors (inc == 1), which the implementations fast-path.
package blas

import "math"

// Ddot returns xᵀy over n elements with increments incX, incY.
func Ddot(n int, x []float64, incX int, y []float64, incY int) float64 {
	if n <= 0 {
		return 0
	}
	var s float64
	if incX == 1 && incY == 1 {
		x, y = x[:n], y[:n]
		for i, v := range x {
			s += v * y[i]
		}
		return s
	}
	ix, iy := 0, 0
	for i := 0; i < n; i++ {
		s += x[ix] * y[iy]
		ix += incX
		iy += incY
	}
	return s
}

// Dnrm2 returns the Euclidean norm of x with overflow-safe scaling.
func Dnrm2(n int, x []float64, incX int) float64 {
	if n <= 0 {
		return 0
	}
	scale, ssq := 0.0, 1.0
	ix := 0
	for i := 0; i < n; i++ {
		v := math.Abs(x[ix])
		ix += incX
		if v == 0 {
			continue
		}
		if scale < v {
			r := scale / v
			ssq = 1 + ssq*r*r
			scale = v
		} else {
			r := v / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Daxpy computes y += alpha*x over n elements.
func Daxpy(n int, alpha float64, x []float64, incX int, y []float64, incY int) {
	if n <= 0 || alpha == 0 {
		return
	}
	if incX == 1 && incY == 1 {
		x, y = x[:n], y[:n]
		for i, v := range x {
			y[i] += alpha * v
		}
		return
	}
	ix, iy := 0, 0
	for i := 0; i < n; i++ {
		y[iy] += alpha * x[ix]
		ix += incX
		iy += incY
	}
}

// Dscal computes x *= alpha over n elements.
func Dscal(n int, alpha float64, x []float64, incX int) {
	if n <= 0 {
		return
	}
	if incX == 1 {
		x = x[:n]
		for i := range x {
			x[i] *= alpha
		}
		return
	}
	ix := 0
	for i := 0; i < n; i++ {
		x[ix] *= alpha
		ix += incX
	}
}

// Dcopy copies x into y over n elements.
func Dcopy(n int, x []float64, incX int, y []float64, incY int) {
	if n <= 0 {
		return
	}
	if incX == 1 && incY == 1 {
		copy(y[:n], x[:n])
		return
	}
	ix, iy := 0, 0
	for i := 0; i < n; i++ {
		y[iy] = x[ix]
		ix += incX
		iy += incY
	}
}

// Idamax returns the index of the element of largest absolute value,
// or -1 when n <= 0.
func Idamax(n int, x []float64, incX int) int {
	if n <= 0 {
		return -1
	}
	best, bi := math.Abs(x[0]), 0
	ix := incX
	for i := 1; i < n; i++ {
		if v := math.Abs(x[ix]); v > best {
			best, bi = v, i
		}
		ix += incX
	}
	return bi
}
