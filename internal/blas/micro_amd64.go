//go:build amd64

package blas

// dgemmKernel8x6 is the AVX2+FMA micro-kernel: C[0:8,0:6] += Ap·Bp over kc
// rank-1 terms, where Ap is an 8-row packed panel (8 values per k-step,
// contiguous) and Bp a 6-column packed panel (6 values per k-step,
// contiguous). C is column-major with leading dimension ldc (elements).
// The 8×6 accumulator tile lives in twelve YMM registers for the whole
// k-loop and is added into C once at the end.
//
//go:noescape
func dgemmKernel8x6(kc int, a, b, c *float64, ldc int)

// cpuidx executes CPUID with the given leaf/subleaf.
//
//go:noescape
func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask.
//
//go:noescape
func xgetbv0() (eax, edx uint32)

// haveFastKernel reports whether this host can run the assembly kernel.
// Detected once at startup so the per-tile dispatch is a predictable branch.
var haveFastKernel = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidx(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidx(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&(fmaBit|osxsaveBit|avxBit) != fmaBit|osxsaveBit|avxBit {
		return false
	}
	// The OS must save/restore YMM state (XCR0 bits 1 and 2).
	if xeax, _ := xgetbv0(); xeax&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuidx(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

func microFast(kc int, a, b, c []float64, ldc int) {
	dgemmKernel8x6(kc, &a[0], &b[0], &c[0], ldc)
}
