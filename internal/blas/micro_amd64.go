//go:build amd64 && !noasm

package blas

// dgemmKernel8x6 is the AVX2+FMA micro-kernel: C[0:8,0:6] += Ap·Bp over kc
// rank-1 terms, where Ap is an 8-row packed panel (8 values per k-step,
// contiguous) and Bp a 6-column packed panel (6 values per k-step,
// contiguous). C is column-major with leading dimension ldc (elements).
// The 8×6 accumulator tile lives in twelve YMM registers for the whole
// k-loop and is added into C once at the end.
//
//go:noescape
func dgemmKernel8x6(kc int, a, b, c *float64, ldc int)

// dgemmKernel12x8 is the AVX-512 micro-kernel: C[0:12,0:8] += Ap·Bp over
// kc rank-1 terms, Ap a 12-row packed panel and Bp an 8-column packed
// panel. The 12×8 accumulator tile lives in sixteen ZMM/YMM registers
// (rows 0–7 in a ZMM, rows 8–11 in the paired YMM) for the whole k-loop.
//
//go:noescape
func dgemmKernel12x8(kc int, a, b, c *float64, ldc int)

// cpuidx executes CPUID with the given leaf/subleaf.
//
//go:noescape
func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask.
//
//go:noescape
func xgetbv0() (eax, edx uint32)

// haveFastKernel reports whether this host can run the AVX2 assembly
// kernel; haveAVX512 whether it can run the AVX-512 one. Detected once at
// startup so the per-tile dispatch is a predictable branch.
var (
	haveFastKernel = detectAVX2FMA()
	haveAVX512     = detectAVX512()
)

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidx(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidx(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&(fmaBit|osxsaveBit|avxBit) != fmaBit|osxsaveBit|avxBit {
		return false
	}
	// The OS must save/restore YMM state (XCR0 bits 1 and 2).
	if xeax, _ := xgetbv0(); xeax&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuidx(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

func detectAVX512() bool {
	maxID, _, _, _ := cpuidx(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidx(1, 0)
	const osxsaveBit = 1 << 27
	if ecx1&osxsaveBit == 0 {
		return false
	}
	// The OS must save/restore SSE/AVX state and all three AVX-512 state
	// components (XCR0 bits 1,2 and 5,6,7 = opmask, ZMM-hi256, hi16-ZMM).
	if xeax, _ := xgetbv0(); xeax&0xe6 != 0xe6 {
		return false
	}
	_, ebx7, _, _ := cpuidx(7, 0)
	const (
		avx512f  = 1 << 16
		avx512dq = 1 << 17
		avx512bw = 1 << 30
		avx512vl = 1 << 31
	)
	const want = uint32(avx512f | avx512dq | avx512bw | avx512vl)
	return ebx7&want == want
}

func microFast8x6(kc int, a, b, c []float64, ldc int) {
	dgemmKernel8x6(kc, &a[0], &b[0], &c[0], ldc)
}

func microFast12x8(kc int, a, b, c []float64, ldc int) {
	dgemmKernel12x8(kc, &a[0], &b[0], &c[0], ldc)
}
