//go:build amd64

#include "textflag.h"

// func dgemmKernel8x6(kc int, a, b, c *float64, ldc int)
//
// 8×6 AVX2+FMA micro-kernel. The accumulator tile occupies Y4–Y15 (column
// j is the pair Y(4+2j) = rows 0–3, Y(5+2j) = rows 4–7); Y0/Y1 hold the
// current 8 packed A values and Y2/Y3 rotate through broadcast B values.
// Per k-step: 2 vector loads + 6 broadcasts + 12 FMAs = 96 flops.
TEXT ·dgemmKernel8x6(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), R8
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ c+24(FP), CX
	MOVQ ldc+32(FP), DX
	SHLQ $3, DX              // ldc in bytes

	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11
	VXORPD Y12, Y12, Y12
	VXORPD Y13, Y13, Y13
	VXORPD Y14, Y14, Y14
	VXORPD Y15, Y15, Y15

	TESTQ R8, R8
	JZ    done

loop:
	VMOVUPD (SI), Y0         // a[0:4]
	VMOVUPD 32(SI), Y1       // a[4:8]

	VBROADCASTSD (DI), Y2    // b[0]
	VBROADCASTSD 8(DI), Y3   // b[1]
	VFMADD231PD  Y2, Y0, Y4
	VFMADD231PD  Y2, Y1, Y5
	VFMADD231PD  Y3, Y0, Y6
	VFMADD231PD  Y3, Y1, Y7

	VBROADCASTSD 16(DI), Y2  // b[2]
	VBROADCASTSD 24(DI), Y3  // b[3]
	VFMADD231PD  Y2, Y0, Y8
	VFMADD231PD  Y2, Y1, Y9
	VFMADD231PD  Y3, Y0, Y10
	VFMADD231PD  Y3, Y1, Y11

	VBROADCASTSD 32(DI), Y2  // b[4]
	VBROADCASTSD 40(DI), Y3  // b[5]
	VFMADD231PD  Y2, Y0, Y12
	VFMADD231PD  Y2, Y1, Y13
	VFMADD231PD  Y3, Y0, Y14
	VFMADD231PD  Y3, Y1, Y15

	ADDQ $64, SI
	ADDQ $48, DI
	DECQ R8
	JNZ  loop

done:
	// C[:, j] += acc column pair, walking one ldc stride per column.
	VMOVUPD (CX), Y0
	VMOVUPD 32(CX), Y1
	VADDPD  Y4, Y0, Y0
	VADDPD  Y5, Y1, Y1
	VMOVUPD Y0, (CX)
	VMOVUPD Y1, 32(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Y0
	VMOVUPD 32(CX), Y1
	VADDPD  Y6, Y0, Y0
	VADDPD  Y7, Y1, Y1
	VMOVUPD Y0, (CX)
	VMOVUPD Y1, 32(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Y0
	VMOVUPD 32(CX), Y1
	VADDPD  Y8, Y0, Y0
	VADDPD  Y9, Y1, Y1
	VMOVUPD Y0, (CX)
	VMOVUPD Y1, 32(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Y0
	VMOVUPD 32(CX), Y1
	VADDPD  Y10, Y0, Y0
	VADDPD  Y11, Y1, Y1
	VMOVUPD Y0, (CX)
	VMOVUPD Y1, 32(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Y0
	VMOVUPD 32(CX), Y1
	VADDPD  Y12, Y0, Y0
	VADDPD  Y13, Y1, Y1
	VMOVUPD Y0, (CX)
	VMOVUPD Y1, 32(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Y0
	VMOVUPD 32(CX), Y1
	VADDPD  Y14, Y0, Y0
	VADDPD  Y15, Y1, Y1
	VMOVUPD Y0, (CX)
	VMOVUPD Y1, 32(CX)

	VZEROUPPER
	RET

// func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidx(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
