//go:build amd64 && !noasm

#include "textflag.h"

// func dgemmKernel8x6(kc int, a, b, c *float64, ldc int)
//
// 8×6 AVX2+FMA micro-kernel. The accumulator tile occupies Y4–Y15 (column
// j is the pair Y(4+2j) = rows 0–3, Y(5+2j) = rows 4–7); Y0/Y1 hold the
// current 8 packed A values and Y2/Y3 rotate through broadcast B values.
// Per k-step: 2 vector loads + 6 broadcasts + 12 FMAs = 96 flops.
TEXT ·dgemmKernel8x6(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), R8
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ c+24(FP), CX
	MOVQ ldc+32(FP), DX
	SHLQ $3, DX              // ldc in bytes

	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11
	VXORPD Y12, Y12, Y12
	VXORPD Y13, Y13, Y13
	VXORPD Y14, Y14, Y14
	VXORPD Y15, Y15, Y15

	TESTQ R8, R8
	JZ    done

loop:
	VMOVUPD (SI), Y0         // a[0:4]
	VMOVUPD 32(SI), Y1       // a[4:8]

	VBROADCASTSD (DI), Y2    // b[0]
	VBROADCASTSD 8(DI), Y3   // b[1]
	VFMADD231PD  Y2, Y0, Y4
	VFMADD231PD  Y2, Y1, Y5
	VFMADD231PD  Y3, Y0, Y6
	VFMADD231PD  Y3, Y1, Y7

	VBROADCASTSD 16(DI), Y2  // b[2]
	VBROADCASTSD 24(DI), Y3  // b[3]
	VFMADD231PD  Y2, Y0, Y8
	VFMADD231PD  Y2, Y1, Y9
	VFMADD231PD  Y3, Y0, Y10
	VFMADD231PD  Y3, Y1, Y11

	VBROADCASTSD 32(DI), Y2  // b[4]
	VBROADCASTSD 40(DI), Y3  // b[5]
	VFMADD231PD  Y2, Y0, Y12
	VFMADD231PD  Y2, Y1, Y13
	VFMADD231PD  Y3, Y0, Y14
	VFMADD231PD  Y3, Y1, Y15

	ADDQ $64, SI
	ADDQ $48, DI
	DECQ R8
	JNZ  loop

done:
	// C[:, j] += acc column pair, walking one ldc stride per column.
	VMOVUPD (CX), Y0
	VMOVUPD 32(CX), Y1
	VADDPD  Y4, Y0, Y0
	VADDPD  Y5, Y1, Y1
	VMOVUPD Y0, (CX)
	VMOVUPD Y1, 32(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Y0
	VMOVUPD 32(CX), Y1
	VADDPD  Y6, Y0, Y0
	VADDPD  Y7, Y1, Y1
	VMOVUPD Y0, (CX)
	VMOVUPD Y1, 32(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Y0
	VMOVUPD 32(CX), Y1
	VADDPD  Y8, Y0, Y0
	VADDPD  Y9, Y1, Y1
	VMOVUPD Y0, (CX)
	VMOVUPD Y1, 32(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Y0
	VMOVUPD 32(CX), Y1
	VADDPD  Y10, Y0, Y0
	VADDPD  Y11, Y1, Y1
	VMOVUPD Y0, (CX)
	VMOVUPD Y1, 32(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Y0
	VMOVUPD 32(CX), Y1
	VADDPD  Y12, Y0, Y0
	VADDPD  Y13, Y1, Y1
	VMOVUPD Y0, (CX)
	VMOVUPD Y1, 32(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Y0
	VMOVUPD 32(CX), Y1
	VADDPD  Y14, Y0, Y0
	VADDPD  Y15, Y1, Y1
	VMOVUPD Y0, (CX)
	VMOVUPD Y1, 32(CX)

	VZEROUPPER
	RET

// func dgemmKernel12x8(kc int, a, b, c *float64, ldc int)
//
// 12×8 AVX-512 micro-kernel. Column j of the accumulator tile is the pair
// Z(4+2j) = rows 0–7 and Y(5+2j) = rows 8–11 (YMM 16–19 need AVX512VL,
// which detection requires). Z0/Y1 hold the current 12 packed A values and
// Z2/Z3 rotate through broadcast B values — a VEX/EVEX write to a YMM
// zeroes the upper ZMM lanes, so Y2/Y3 are the correctly broadcast low
// halves of Z2/Z3. Per k-step: 2 loads + 8 broadcasts + 16 FMAs = 192
// flops from one 96-byte A panel line and one 64-byte B panel line.
TEXT ·dgemmKernel12x8(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), R8
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ c+24(FP), CX
	MOVQ ldc+32(FP), DX
	SHLQ $3, DX              // ldc in bytes

	VPXORQ Z4, Z4, Z4
	VPXORQ Y5, Y5, Y5
	VPXORQ Z6, Z6, Z6
	VPXORQ Y7, Y7, Y7
	VPXORQ Z8, Z8, Z8
	VPXORQ Y9, Y9, Y9
	VPXORQ Z10, Z10, Z10
	VPXORQ Y11, Y11, Y11
	VPXORQ Z12, Z12, Z12
	VPXORQ Y13, Y13, Y13
	VPXORQ Z14, Z14, Z14
	VPXORQ Y15, Y15, Y15
	VPXORQ Z16, Z16, Z16
	VPXORQ Y17, Y17, Y17
	VPXORQ Z18, Z18, Z18
	VPXORQ Y19, Y19, Y19

	TESTQ R8, R8
	JZ    done12

loop12:
	VMOVUPD (SI), Z0         // a[0:8]
	VMOVUPD 64(SI), Y1       // a[8:12]

	VBROADCASTSD (DI), Z2    // b[0]
	VBROADCASTSD 8(DI), Z3   // b[1]
	VFMADD231PD  Z2, Z0, Z4
	VFMADD231PD  Y2, Y1, Y5
	VFMADD231PD  Z3, Z0, Z6
	VFMADD231PD  Y3, Y1, Y7

	VBROADCASTSD 16(DI), Z2  // b[2]
	VBROADCASTSD 24(DI), Z3  // b[3]
	VFMADD231PD  Z2, Z0, Z8
	VFMADD231PD  Y2, Y1, Y9
	VFMADD231PD  Z3, Z0, Z10
	VFMADD231PD  Y3, Y1, Y11

	VBROADCASTSD 32(DI), Z2  // b[4]
	VBROADCASTSD 40(DI), Z3  // b[5]
	VFMADD231PD  Z2, Z0, Z12
	VFMADD231PD  Y2, Y1, Y13
	VFMADD231PD  Z3, Z0, Z14
	VFMADD231PD  Y3, Y1, Y15

	VBROADCASTSD 48(DI), Z2  // b[6]
	VBROADCASTSD 56(DI), Z3  // b[7]
	VFMADD231PD  Z2, Z0, Z16
	VFMADD231PD  Y2, Y1, Y17
	VFMADD231PD  Z3, Z0, Z18
	VFMADD231PD  Y3, Y1, Y19

	ADDQ $96, SI
	ADDQ $64, DI
	DECQ R8
	JNZ  loop12

done12:
	// C[:, j] += acc pair, walking one ldc stride per column.
	VMOVUPD (CX), Z0
	VMOVUPD 64(CX), Y1
	VADDPD  Z4, Z0, Z0
	VADDPD  Y5, Y1, Y1
	VMOVUPD Z0, (CX)
	VMOVUPD Y1, 64(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Z0
	VMOVUPD 64(CX), Y1
	VADDPD  Z6, Z0, Z0
	VADDPD  Y7, Y1, Y1
	VMOVUPD Z0, (CX)
	VMOVUPD Y1, 64(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Z0
	VMOVUPD 64(CX), Y1
	VADDPD  Z8, Z0, Z0
	VADDPD  Y9, Y1, Y1
	VMOVUPD Z0, (CX)
	VMOVUPD Y1, 64(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Z0
	VMOVUPD 64(CX), Y1
	VADDPD  Z10, Z0, Z0
	VADDPD  Y11, Y1, Y1
	VMOVUPD Z0, (CX)
	VMOVUPD Y1, 64(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Z0
	VMOVUPD 64(CX), Y1
	VADDPD  Z12, Z0, Z0
	VADDPD  Y13, Y1, Y1
	VMOVUPD Z0, (CX)
	VMOVUPD Y1, 64(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Z0
	VMOVUPD 64(CX), Y1
	VADDPD  Z14, Z0, Z0
	VADDPD  Y15, Y1, Y1
	VMOVUPD Z0, (CX)
	VMOVUPD Y1, 64(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Z0
	VMOVUPD 64(CX), Y1
	VADDPD  Z16, Z0, Z0
	VADDPD  Y17, Y1, Y1
	VMOVUPD Z0, (CX)
	VMOVUPD Y1, 64(CX)
	ADDQ    DX, CX

	VMOVUPD (CX), Z0
	VMOVUPD 64(CX), Y1
	VADDPD  Z18, Z0, Z0
	VADDPD  Y19, Y1, Y1
	VMOVUPD Z0, (CX)
	VMOVUPD Y1, 64(CX)

	VZEROUPPER
	RET

// func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidx(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
