package blas

import (
	"math"
	"math/rand"
	"testing"
)

// Differential tests for the micro-kernel dispatch layer: every selectable
// kernel configuration must agree with the scalar reference on fringe
// shapes, the packed-LHS entry points must be bitwise-identical to the
// blocked engine, and the environment override must only ever downgrade.

// kernelConfigs returns the configurations runnable on this host, the
// scalar reference always first.
func kernelConfigs() []kernelParams {
	cfgs := []kernelParams{testParamsScalar}
	if testHaveAVX2 {
		cfgs = append(cfgs, testParamsAVX2)
	}
	if testHaveAVX512 {
		cfgs = append(cfgs, testParamsAVX512)
	}
	return cfgs
}

// fringeSizes straddles the register-tile edges of every kernel geometry
// (MR ∈ {8,12}, NR ∈ {6,8}) and the cache-block edges (MC ∈ {120,128},
// KC ∈ {192,256}, NC ∈ {512,516}).
var fringeSizes = []int{1, 2, 3, 5, 7, 8, 9, 11, 12, 13, 119, 120, 121, 127, 128, 129, 191, 192, 193}

func TestMicroKernelsMatchScalarOnFringeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range kernelConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			restore := forceKernel(cfg)
			defer restore()
			for _, m := range fringeSizes {
				for _, n := range fringeSizes {
					for _, k := range []int{1, 5, 12, 13} {
						if m*n > 200*200 {
							continue // keep the sweep fast; large edges pair with small k below
						}
						blockedDiff(t, rng, false, false, m, n, k)
					}
				}
			}
			// Large-k edges with transposes, sparser grid.
			for _, sz := range [][3]int{{13, 13, 191}, {12, 8, 192}, {129, 7, 193}, {121, 11, 256}, {8, 6, 257}} {
				for _, tA := range []bool{false, true} {
					for _, tB := range []bool{false, true} {
						blockedDiff(t, rng, tA, tB, sz[0], sz[1], sz[2])
					}
				}
			}
		})
	}
}

// blockedDiff drives dgemmBlocked directly (bypassing the size-based
// dispatch in Dgemm) so fringe shapes exercise the forced micro-kernel.
func blockedDiff(t *testing.T, rng *rand.Rand, transA, transB bool, m, n, k int) {
	t.Helper()
	ar, ac := m, k
	if transA {
		ar, ac = k, m
	}
	br, bc := k, n
	if transB {
		br, bc = n, k
	}
	lda, ldb, ldc := ar+2, br+1, m+3
	a := colMajor(rng, ar, ac, lda)
	b := colMajor(rng, br, bc, ldb)
	c := colMajor(rng, m, n, ldc)
	want := make([]float64, len(c))
	copy(want, c)
	const alpha = 1.25
	dgemmScalar(transA, transB, m, n, k, alpha, a, lda, b, ldb, 1, want, ldc)
	dgemmBlocked(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
	tol := 1e-13 * float64(k+4)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			if d := math.Abs(c[i+j*ldc] - want[i+j*ldc]); d > tol {
				t.Fatalf("%s gemm(tA=%v tB=%v m=%d n=%d k=%d): |diff|=%g at (%d,%d)",
					kp.name, transA, transB, m, n, k, d, i, j)
			}
		}
	}
	checkPadding(t, c, m, n, ldc, "C")
}

// TestPackedLHSBitwiseMatchesBlocked proves the prepack contract the panel
// cache rests on: PackLHS + DgemmPackedLHS must produce results bitwise
// identical to dgemmBlocked on the same operands, for every available
// kernel geometry, with and without a transposed left-hand side.
func TestPackedLHSBitwiseMatchesBlocked(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{{1, 1, 1}, {7, 5, 3}, {12, 8, 13}, {13, 9, 12}, {48, 192, 32}, {121, 67, 129}, {128, 200, 256}, {129, 193, 257}}
	for _, cfg := range kernelConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			restore := forceKernel(cfg)
			defer restore()
			for _, trans := range []bool{false, true} {
				for _, sz := range shapes {
					m, n, k := sz[0], sz[1], sz[2]
					ar, ac := m, k
					if trans {
						ar, ac = k, m
					}
					lda, ldb, ldc := ar+1, k+2, m+1
					a := colMajor(rng, ar, ac, lda)
					b := colMajor(rng, k, n, ldb)
					c1 := colMajor(rng, m, n, ldc)
					c2 := make([]float64, len(c1))
					copy(c2, c1)
					const alpha = -0.75
					dgemmBlocked(trans, false, m, n, k, alpha, a, lda, b, ldb, c1, ldc)
					ap := make([]float64, PackedLHSLen(m, k))
					PackLHS(trans, m, k, a, lda, ap)
					DgemmPackedLHS(m, n, k, ap, alpha, b, ldb, c2, ldc)
					for i := range c1 {
						if c1[i] != c2[i] {
							t.Fatalf("%s trans=%v m=%d n=%d k=%d: packed path diverges bitwise at flat index %d: %v vs %v",
								kp.name, trans, m, n, k, i, c1[i], c2[i])
						}
					}
				}
			}
		})
	}
}

// TestTrmmDensePathMatchesScalar pins the small-shape routing fix: the
// panel-apply shapes (48×192 and its recursion halves) must route through
// the dense-expanded packed path and still match the scalar triangle walk,
// under every kernel geometry.
func TestTrmmDensePathMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, cfg := range kernelConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			restore := forceKernel(cfg)
			defer restore()
			for _, sz := range [][2]int{{17, 64}, {24, 192}, {32, 100}, {48, 192}, {64, 192}, {96, 192}, {192, 192}} {
				m, n := sz[0], sz[1]
				for _, upper := range []bool{false, true} {
					for _, trans := range []bool{false, true} {
						for _, unit := range []bool{false, true} {
							trmmDiff(t, rng, upper, trans, unit, m, n, 1.0)
						}
					}
				}
			}
		})
	}
}

func TestTrmmDenseRoutingPredicate(t *testing.T) {
	// The 48×192 panel-apply shape and its 96-row parent must take the
	// dense path; tiny and huge triangles must not.
	for _, tc := range []struct {
		m, n int
		want bool
	}{
		{48, 192, true},
		{17, 64, true},
		{16, 192, false}, // triangle small enough for the scalar walk
		{65, 192, false}, // above trmmDenseMaxM: blocked recursion splits it first
		{48, 4, false},   // narrower than any NR: packing overhead cannot amortize
		{20, 20, false},  // below the blocked work threshold
	} {
		if got := trmmLeftDenseOK(tc.m, tc.n); got != tc.want {
			t.Errorf("trmmLeftDenseOK(%d, %d) = %v, want %v", tc.m, tc.n, got, tc.want)
		}
	}
}

// TestPickKernelEnvDowngrade checks the override can only lower the level.
func TestPickKernelEnvDowngrade(t *testing.T) {
	best := pickKernel()
	t.Setenv("PULSARQR_MICROKERNEL", "portable")
	if got := pickKernel(); got.level != levelGeneric {
		t.Fatalf("portable override picked %s", got.name)
	}
	t.Setenv("PULSARQR_MICROKERNEL", "avx2")
	if got := pickKernel(); got.level > levelAVX2 {
		t.Fatalf("avx2 override picked %s", got.name)
	}
	t.Setenv("PULSARQR_MICROKERNEL", "avx512")
	if got := pickKernel(); got.level > best.level {
		t.Fatalf("avx512 request upgraded past detection: %s vs best %s", got.name, best.name)
	}
	t.Setenv("PULSARQR_MICROKERNEL", "")
	if got := pickKernel(); got.level != best.level {
		t.Fatalf("empty override changed selection: %s vs %s", got.name, best.name)
	}
}

func TestKernelIDDistinguishesConfigs(t *testing.T) {
	seen := map[uint32]string{}
	for _, cfg := range []kernelParams{testParamsScalar, testParamsAVX2, testParamsAVX512} {
		restore := forceKernel(cfg)
		id := KernelID()
		restore()
		if prev, dup := seen[id]; dup {
			t.Fatalf("KernelID %#x shared by %s and %s", id, prev, cfg.name)
		}
		seen[id] = cfg.name
	}
}
