//go:build !amd64 || noasm

package blas

// Hosts without the assembly micro-kernels (non-amd64, or the `noasm`
// build tag) always take the portable path.
const (
	haveFastKernel = false
	haveAVX512     = false
)

// The fast entry points exist so dispatch.go compiles everywhere; the
// constant capability flags above keep pickKernel from ever selecting
// them, so these bodies are unreachable.
func microFast8x6(kc int, a, b, c []float64, ldc int) {
	microGeneric(kc, a, b, c, ldc, 8, 6)
}

func microFast12x8(kc int, a, b, c []float64, ldc int) {
	microGeneric(kc, a, b, c, ldc, 12, 8)
}
