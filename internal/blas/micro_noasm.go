//go:build !amd64

package blas

// Hosts without the assembly micro-kernel always take the portable path.
const haveFastKernel = false

func microFast(kc int, a, b, c []float64, ldc int) {
	microGeneric(kc, a, b, c, ldc)
}
