package blas

// Dsyrk performs the symmetric rank-k update C := alpha·A·Aᵀ + beta·C
// (trans=false) or C := alpha·Aᵀ·A + beta·C (trans=true), touching only
// the selected triangle of the n×n matrix C. A is n×k (or k×n when
// trans). Needed by the tile Cholesky factorization.
func Dsyrk(upper, trans bool, n, k int, alpha float64, a []float64, lda int,
	beta float64, c []float64, ldc int) {
	if n <= 0 {
		return
	}
	// Scale the triangle by beta.
	for j := 0; j < n; j++ {
		lo, hi := j, n // lower: rows j..n-1
		if upper {
			lo, hi = 0, j+1
		}
		col := c[j*ldc:]
		if beta == 0 {
			for i := lo; i < hi; i++ {
				col[i] = 0
			}
		} else if beta != 1 {
			for i := lo; i < hi; i++ {
				col[i] *= beta
			}
		}
	}
	if alpha == 0 || k <= 0 {
		return
	}
	if !trans {
		// C += alpha * A*Aᵀ: rank-1 sweeps over A's columns.
		for l := 0; l < k; l++ {
			acol := a[l*lda : l*lda+n]
			for j := 0; j < n; j++ {
				t := alpha * acol[j]
				if t == 0 {
					continue
				}
				ccol := c[j*ldc:]
				if upper {
					for i := 0; i <= j; i++ {
						ccol[i] += t * acol[i]
					}
				} else {
					for i := j; i < n; i++ {
						ccol[i] += t * acol[i]
					}
				}
			}
		}
		return
	}
	// C += alpha * Aᵀ*A with A stored k×n: dot products of A's columns.
	for j := 0; j < n; j++ {
		ccol := c[j*ldc:]
		aj := a[j*lda : j*lda+k]
		lo, hi := j, n
		if upper {
			lo, hi = 0, j+1
		}
		for i := lo; i < hi; i++ {
			ai := a[i*lda : i*lda+k]
			var s float64
			for l := range aj {
				s += ai[l] * aj[l]
			}
			ccol[i] += alpha * s
		}
	}
}
