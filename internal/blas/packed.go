package blas

// Pre-packed left-hand-side API. The blocked engine re-packs op(A) on every
// call; callers that apply the same operand repeatedly (the tile kernels'
// V/T panels during a trailing-update sweep) can pack it once with PackLHS
// and replay it through DgemmPackedLHS. The packed layout is exactly what
// dgemmBlocked builds internally — KC-deep blocks of zero-padded MR-row
// panels, with MC a multiple of MR so block boundaries land on panel
// boundaries — and DgemmPackedLHS drives the same macroKernel over it, so
// for a given shape the result is bitwise identical to an unpacked
// Dgemm(beta=1) through the blocked path. The layout is only meaningful to
// the kernel geometry that produced it: cache packed panels keyed by
// KernelID().

// PackedLHSLen returns the []float64 length PackLHS needs for an m×k
// op(A) under the active micro-kernel's packing geometry.
func PackedLHSLen(m, k int) int {
	mr := kp.mr
	return (m + mr - 1) / mr * mr * k
}

// PackLHS packs op(A) — a is m×k when !trans, k×m when trans — into dst,
// which must hold PackedLHSLen(m, k) elements. The packing absorbs the
// transposition, so DgemmPackedLHS has no trans parameter.
func PackLHS(trans bool, m, k int, a []float64, lda int, dst []float64) {
	mr := kp.mr
	mRound := (m + mr - 1) / mr * mr
	off := 0
	for pc := 0; pc < k; pc += kp.kc {
		kc := min(kp.kc, k-pc)
		packA(dst[off:], trans, a, lda, 0, pc, m, kc)
		off += mRound * kc
	}
}

// DgemmPackedLHS computes C += P·(alpha·B) where P is the m×k op(A) packed
// into ap by PackLHS, B is k×n with leading dimension ldb, and C is m×n
// with leading dimension ldc. alpha is folded into the B packing exactly
// as in dgemmBlocked.
func DgemmPackedLHS(m, n, k int, ap []float64, alpha float64,
	b []float64, ldb int, c []float64, ldc int) {
	if m <= 0 || n <= 0 || k <= 0 || alpha == 0 {
		return
	}
	mr := kp.mr
	mRound := (m + mr - 1) / mr * mr
	sc := gemmScratchPool.Get().(*gemmScratch)
	defer gemmScratchPool.Put(sc)
	for jc := 0; jc < n; jc += kp.nc {
		nc := min(kp.nc, n-jc)
		off := 0
		for pc := 0; pc < k; pc += kp.kc {
			kc := min(kp.kc, k-pc)
			packB(sc.bp, false, b, ldb, alpha, pc, jc, kc, nc)
			for ic := 0; ic < m; ic += kp.mc {
				mc := min(kp.mc, m-ic)
				// Panels for rows [ic, ic+mc) of this KC block start at
				// element ic·kc: mc is a multiple of mr except at the
				// fringe, so panel index ic/mr × (mr·kc) = ic·kc.
				macroKernel(ap[off+ic*kc:], sc.bp, mc, nc, kc, c[ic+jc*ldc:], ldc)
			}
			off += mRound * kc
		}
	}
}
