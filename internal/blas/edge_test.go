package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDgemmMatchesNaiveProperty(t *testing.T) {
	// Randomized shapes (including the 4-way unrolled fast paths and their
	// remainders) against the straightforward triple loop.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(13) + 1
		n := rng.Intn(13) + 1
		k := rng.Intn(13) + 1
		transA := rng.Intn(2) == 1
		transB := rng.Intn(2) == 1
		ar, ac := m, k
		if transA {
			ar, ac = k, m
		}
		br, bc := k, n
		if transB {
			br, bc = n, k
		}
		lda, ldb, ldc := ar+rng.Intn(3), br+rng.Intn(3), m+rng.Intn(3)
		a := colMajor(rng, ar, ac, lda)
		b := colMajor(rng, br, bc, ldb)
		c := colMajor(rng, m, n, ldc)
		alpha, beta := rng.Float64()*2-1, rng.Float64()*2-1
		want := refGemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		Dgemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				if math.Abs(c[i+j*ldc]-want[i+j*ldc]) > 1e-11 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDgemvStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, n, lda := 4, 3, 5
	a := colMajor(rng, m, n, lda)
	x := []float64{1, -9, 2, -9, 3, -9}        // incX = 2
	y := []float64{1, -7, 1, -7, 1, -7, 1, -7} // incY = 2
	Dgemv(false, m, n, 1, a, lda, x, 2, 1, y, 2)
	for i := 0; i < m; i++ {
		want := 1.0
		for j, xv := range []float64{1, 2, 3} {
			want += get(a, lda, i, j) * xv
		}
		if math.Abs(y[2*i]-want) > 1e-13 {
			t.Fatalf("strided gemv wrong at %d", i)
		}
		if y[2*i+1] != -7 {
			t.Fatal("strided gemv wrote the gaps")
		}
	}
}

func TestDgerStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m, n, lda := 3, 2, 3
	a := colMajor(rng, m, n, lda)
	orig := append([]float64(nil), a...)
	x := []float64{1, 0, 2, 0, 3, 0}
	y := []float64{4, 0, 0, 5, 0, 0}
	Dger(m, n, 2, x, 2, y, 3, a, lda)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			want := orig[i+j*lda] + 2*x[2*i]*y[3*j]
			if math.Abs(get(a, lda, i, j)-want) > 1e-13 {
				t.Fatalf("strided ger wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestIdamaxFirstOfTies(t *testing.T) {
	if got := Idamax(4, []float64{2, -2, 2, -2}, 1); got != 0 {
		t.Fatalf("tie should report the first index, got %d", got)
	}
}

func TestDaxpyZeroAlphaNoop(t *testing.T) {
	y := []float64{1, 2}
	Daxpy(2, 0, []float64{9, 9}, 1, y, 1)
	if y[0] != 1 || y[1] != 2 {
		t.Fatal("alpha=0 must be a no-op")
	}
}

func TestDtrmmAlphaZeroClearsB(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	b := colMajor(rng, 3, 2, 4)
	Dtrmm(true, true, false, false, 3, 2, 0, make([]float64, 9), 3, b, 4)
	for j := 0; j < 2; j++ {
		for i := 0; i < 3; i++ {
			if b[i+j*4] != 0 {
				t.Fatal("alpha=0 must zero B")
			}
		}
	}
	checkPadding(t, b, 3, 2, 4, "B")
}

func TestSolveTriSingularProducesInf(t *testing.T) {
	// Not an error path — like LAPACK, division by an exact zero pivot
	// yields Inf rather than panicking; callers check diagonals.
	a := make([]float64, 4) // zero diagonal
	x := []float64{1, 1}
	Dtrsm(true, true, false, false, 2, 1, 1, a, 2, x, 2)
	if !math.IsInf(x[1], 0) && !math.IsNaN(x[1]) {
		t.Fatalf("zero pivot should produce Inf/NaN, got %v", x[1])
	}
}
