package blas

import (
	"math/rand"
	"testing"
)

func benchGemm(b *testing.B, transA bool, n int) {
	rng := rand.New(rand.NewSource(1))
	a := colMajor(rng, n, n, n)
	bb := colMajor(rng, n, n, n)
	c := colMajor(rng, n, n, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dgemm(transA, false, n, n, n, 1, a, n, bb, n, 1, c, n)
	}
	b.SetBytes(int64(2 * n * n * n * 8))
	b.ReportMetric(float64(2*n*n*n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop/s")
}

func BenchmarkGemmNN128(b *testing.B) { benchGemm(b, false, 128) }
func BenchmarkGemmTN128(b *testing.B) { benchGemm(b, true, 128) }
func BenchmarkGemmNN192(b *testing.B) { benchGemm(b, false, 192) }
func BenchmarkGemmTN192(b *testing.B) { benchGemm(b, true, 192) }
func BenchmarkGemmNN512(b *testing.B) { benchGemm(b, false, 512) }
func BenchmarkGemmTN512(b *testing.B) { benchGemm(b, true, 512) }

// benchTrmmLeft measures the left-side triangular multiply the block
// reflector applies lean on: B := op(T)·B with T k×k and B k×n. Dtrmm is
// in-place, so B is refreshed from a pristine copy every iteration — left
// to feed back, |T|<1 entries shrink B into the denormal range within a
// few iterations and the bench measures microcode assists instead of the
// kernel. The copy is timed (it is cheap next to the multiply and keeps
// the loop allocation-free), slightly understating the true kernel rate.
func benchTrmmLeft(b *testing.B, trans bool, k, n int) {
	rng := rand.New(rand.NewSource(2))
	a := colMajor(rng, k, k, k)
	b0 := colMajor(rng, k, n, k)
	bb := make([]float64, len(b0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(bb, b0)
		Dtrmm(true, true, trans, false, k, n, 1, a, k, bb, k)
	}
	b.ReportMetric(float64(k*k*n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop/s")
}

func BenchmarkTrmmLeft48x192(b *testing.B)  { benchTrmmLeft(b, false, 48, 192) }
func BenchmarkTrmmLeftT48x192(b *testing.B) { benchTrmmLeft(b, true, 48, 192) }
func BenchmarkTrmmLeft192x192(b *testing.B) { benchTrmmLeft(b, false, 192, 192) }
