package blas

import (
	"math/rand"
	"testing"
)

func benchGemm(b *testing.B, transA bool, n int) {
	rng := rand.New(rand.NewSource(1))
	a := colMajor(rng, n, n, n)
	bb := colMajor(rng, n, n, n)
	c := colMajor(rng, n, n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dgemm(transA, false, n, n, n, 1, a, n, bb, n, 1, c, n)
	}
	b.SetBytes(int64(2 * n * n * n * 8))
	b.ReportMetric(float64(2*n*n*n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop/s")
}

func BenchmarkGemmNN128(b *testing.B) { benchGemm(b, false, 128) }
func BenchmarkGemmTN128(b *testing.B) { benchGemm(b, true, 128) }
