package blas

import "sync"

// Blocked GEMM engine. The driver follows the classic BLIS/GotoBLAS
// decomposition: the iteration space is carved into NC-wide column slabs,
// KC-deep rank-k updates and MC-tall row blocks, chosen so that the packed
// KC×NC slab of op(B) stays resident in the outer cache while each packed
// MC×KC block of op(A) streams through the inner cache. Inside a block the
// packed panels are walked by a register-tiled MR×NR micro-kernel that
// keeps the whole C tile in registers for the full KC-long inner product
// (AVX-512 or AVX2+FMA assembly on capable amd64 hosts, a portable Go
// kernel elsewhere — see dispatch.go for the geometry of each level).
//
// Packing writes op(A) into MR-row panels and alpha·op(B) into NR-column
// panels, zero-padding ragged edges to full panels so the micro-kernel
// never branches on shape; partial C tiles are accumulated through a small
// stack buffer instead. Both transpositions are absorbed by the packing
// routines, so all four op(A)/op(B) cases share one kernel.
//
// Determinism: for fixed operand shapes the blocking boundaries, packing
// order and micro-kernel summation order are all fixed at process start —
// the result is a pure function of (inputs, host kernel), independent of
// caller, scratch-buffer history, or how many workers run concurrently
// elsewhere. See docs/KERNELS.md for the full contract.

// blockedThreshold gates the blocked path: below it the packing traffic
// (m·k + k·n extra reads and writes) is not paid back by the micro-kernel,
// and the scalar loops win. The bound is in multiply-add pairs.
const blockedThreshold = 16 * 1024

func useBlocked(m, n, k int) bool {
	return m >= 4 && n >= 4 && k >= 8 && m*n*k >= blockedThreshold
}

// gemmScratch holds the packing buffers of one in-flight Dgemm. The pool
// keeps them warm across calls so steady-state factorizations allocate
// nothing in the GEMM path. Buffers are sized for the largest kernel
// config so a test-forced kernel switch never outgrows a pooled buffer.
type gemmScratch struct {
	ap []float64 // packed op(A): MC×KC in MR-row panels
	bp []float64 // packed alpha·op(B): KC×NC in NR-column panels
}

var gemmScratchPool = sync.Pool{
	New: func() any {
		return &gemmScratch{
			ap: make([]float64, scratchAP),
			bp: make([]float64, scratchBP),
		}
	},
}

// dgemmBlocked computes C += op(A)·(alpha·op(B)) for m×n C, with C already
// scaled by beta. It is correct for every shape (including those below the
// dispatch threshold); Dgemm only routes profitable shapes here.
func dgemmBlocked(transA, transB bool, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	sc := gemmScratchPool.Get().(*gemmScratch)
	defer gemmScratchPool.Put(sc)
	for jc := 0; jc < n; jc += kp.nc {
		nc := min(kp.nc, n-jc)
		for pc := 0; pc < k; pc += kp.kc {
			kc := min(kp.kc, k-pc)
			packB(sc.bp, transB, b, ldb, alpha, pc, jc, kc, nc)
			for ic := 0; ic < m; ic += kp.mc {
				mc := min(kp.mc, m-ic)
				packA(sc.ap, transA, a, lda, ic, pc, mc, kc)
				macroKernel(sc.ap, sc.bp, mc, nc, kc, c[ic+jc*ldc:], ldc)
			}
		}
	}
}

// macroKernel sweeps the micro-kernel over one packed MC×KC block of op(A)
// and the packed KC×NC slab of alpha·op(B), accumulating into C (leading
// dimension ldc). It is shared by dgemmBlocked and DgemmPackedLHS, which is
// what makes pre-packed panels bitwise-identical to freshly packed ones:
// same walk, same summation order.
func macroKernel(ap, bp []float64, mc, nc, kc int, c []float64, ldc int) {
	mr, nr := kp.mr, kp.nr
	for jr := 0; jr < nc; jr += nr {
		ncr := min(nr, nc-jr)
		bpp := bp[jr*kc:]
		for ir := 0; ir < mc; ir += mr {
			mcr := min(mr, mc-ir)
			app := ap[ir*kc:]
			if mcr == mr && ncr == nr {
				microTile(kc, app, bpp, c[ir+jr*ldc:], ldc)
				continue
			}
			// Ragged edge: accumulate the full padded tile into a stack
			// buffer, then fold the live part into C.
			var tmp [maxMR * maxNR]float64
			microTile(kc, app, bpp, tmp[:], mr)
			for j := 0; j < ncr; j++ {
				cc := c[ir+(jr+j)*ldc:]
				tt := tmp[j*mr:]
				for i := 0; i < mcr; i++ {
					cc[i] += tt[i]
				}
			}
		}
	}
}

// packA packs op(A)[i0:i0+mc, p0:p0+kc] into MR-row panels: panel ir holds
// rows [ir, ir+MR) with the MR row values of each k-step contiguous, so the
// micro-kernel loads them as vectors. The last panel is zero-padded to a
// full MR rows.
func packA(dst []float64, trans bool, a []float64, lda, i0, p0, mc, kc int) {
	mr := kp.mr
	for ir := 0; ir < mc; ir += mr {
		rows := min(mr, mc-ir)
		panel := dst[ir*kc : ir*kc+mr*kc]
		if !trans {
			// op(A)[i,p] = a[(i0+i) + (p0+p)*lda]: copy column runs.
			for p := 0; p < kc; p++ {
				col := a[(i0+ir)+(p0+p)*lda:]
				d := panel[p*mr : p*mr+mr]
				for i := 0; i < rows; i++ {
					d[i] = col[i]
				}
				for i := rows; i < mr; i++ {
					d[i] = 0
				}
			}
		} else {
			// op(A)[i,p] = a[(p0+p) + (i0+i)*lda]: each stored column of a
			// is one row of op(A); scatter it across the panel.
			for i := 0; i < rows; i++ {
				col := a[p0+(i0+ir+i)*lda:]
				for p := 0; p < kc; p++ {
					panel[p*mr+i] = col[p]
				}
			}
			for i := rows; i < mr; i++ {
				for p := 0; p < kc; p++ {
					panel[p*mr+i] = 0
				}
			}
		}
	}
}

// packB packs alpha·op(B)[p0:p0+kc, j0:j0+nc] into NR-column panels: panel
// jr holds columns [jr, jr+NR) with the NR column values of each k-step
// contiguous. The last panel is zero-padded to a full NR columns. Folding
// alpha here multiplies each element once instead of once per use.
func packB(dst []float64, trans bool, b []float64, ldb int, alpha float64, p0, j0, kc, nc int) {
	nr := kp.nr
	for jr := 0; jr < nc; jr += nr {
		cols := min(nr, nc-jr)
		panel := dst[jr*kc : jr*kc+nr*kc]
		if !trans {
			// op(B)[p,j] = b[(p0+p) + (j0+j)*ldb]: scatter column runs.
			for j := 0; j < cols; j++ {
				col := b[p0+(j0+jr+j)*ldb:]
				for p := 0; p < kc; p++ {
					panel[p*nr+j] = alpha * col[p]
				}
			}
			for j := cols; j < nr; j++ {
				for p := 0; p < kc; p++ {
					panel[p*nr+j] = 0
				}
			}
		} else {
			// op(B)[p,j] = b[(j0+j) + (p0+p)*ldb]: copy row runs.
			for p := 0; p < kc; p++ {
				row := b[(j0+jr)+(p0+p)*ldb:]
				d := panel[p*nr : p*nr+nr]
				for j := 0; j < cols; j++ {
					d[j] = alpha * row[j]
				}
				for j := cols; j < nr; j++ {
					d[j] = 0
				}
			}
		}
	}
}

// microGeneric is the portable MR×NR micro-kernel: C[0:mr,0:nr] += Ap·Bp
// over kc rank-1 terms, with the accumulator tile in a local array. Used
// when the host lacks the assembly kernels' ISA, and as the oracle the
// assembly kernels are differential-tested against. The summation order (k
// ascending, one fused tile) matches the assembly kernels' term order,
// though rounding may differ where FMA contraction applies.
func microGeneric(kc int, a, b, c []float64, ldc, mr, nr int) {
	var acc [maxMR * maxNR]float64
	a = a[:kc*mr]
	b = b[:kc*nr]
	for p := 0; p < kc; p++ {
		ar := a[p*mr : p*mr+mr]
		br := b[p*nr : p*nr+nr]
		for j, bv := range br {
			cj := acc[j*mr : j*mr+mr]
			for i, av := range ar {
				cj[i] += av * bv
			}
		}
	}
	for j := 0; j < nr; j++ {
		cc := c[j*ldc : j*ldc+mr]
		aj := acc[j*mr : j*mr+mr]
		for i, v := range aj {
			cc[i] += v
		}
	}
}
