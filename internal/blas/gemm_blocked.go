package blas

import "sync"

// Blocked GEMM engine. The driver follows the classic BLIS/GotoBLAS
// decomposition: the iteration space is carved into NC-wide column slabs,
// KC-deep rank-k updates and MC-tall row blocks, chosen so that the packed
// KC×NC slab of op(B) stays resident in the outer cache while each packed
// MC×KC block of op(A) streams through the inner cache. Inside a block the
// packed panels are walked by a register-tiled MR×NR micro-kernel that
// keeps the whole C tile in registers for the full KC-long inner product
// (an AVX2+FMA assembly kernel on capable amd64 hosts, a portable Go
// kernel elsewhere).
//
// Packing writes op(A) into MR-row panels and alpha·op(B) into NR-column
// panels, zero-padding ragged edges to full panels so the micro-kernel
// never branches on shape; partial C tiles are accumulated through a small
// stack buffer instead. Both transpositions are absorbed by the packing
// routines, so all four op(A)/op(B) cases share one kernel.
//
// Determinism: for fixed operand shapes the blocking boundaries, packing
// order and micro-kernel summation order are all compile-time constants —
// the result is a pure function of the inputs, independent of caller,
// scratch-buffer history, or how many workers run concurrently elsewhere.
// See docs/KERNELS.md for the full contract.
const (
	gemmMR = 8   // micro-tile rows (two 4-wide vector registers)
	gemmNR = 6   // micro-tile columns (12 accumulator registers of 16)
	gemmMC = 128 // row-block height: packed A block is MC·KC·8 = 256 KiB
	gemmKC = 256 // rank-k depth: an 8×KC micro-panel of A is 16 KiB (½ L1d)
	gemmNC = 516 // column-slab width (multiple of NR): packed B ≤ ~1 MiB
)

// blockedThreshold gates the blocked path: below it the packing traffic
// (m·k + k·n extra reads and writes) is not paid back by the micro-kernel,
// and the scalar loops win. The bound is in multiply-add pairs.
const blockedThreshold = 16 * 1024

func useBlocked(m, n, k int) bool {
	return m >= 4 && n >= 4 && k >= 8 && m*n*k >= blockedThreshold
}

// gemmScratch holds the packing buffers of one in-flight Dgemm. The pool
// keeps them warm across calls so steady-state factorizations allocate
// nothing in the GEMM path.
type gemmScratch struct {
	ap []float64 // packed op(A): MC×KC in MR-row panels
	bp []float64 // packed alpha·op(B): KC×NC in NR-column panels
}

var gemmScratchPool = sync.Pool{
	New: func() any {
		return &gemmScratch{
			ap: make([]float64, gemmMC*gemmKC),
			bp: make([]float64, gemmKC*gemmNC),
		}
	},
}

// dgemmBlocked computes C += op(A)·(alpha·op(B)) for m×n C, with C already
// scaled by beta. It is correct for every shape (including those below the
// dispatch threshold); Dgemm only routes profitable shapes here.
func dgemmBlocked(transA, transB bool, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	sc := gemmScratchPool.Get().(*gemmScratch)
	defer gemmScratchPool.Put(sc)
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			packB(sc.bp, transB, b, ldb, alpha, pc, jc, kc, nc)
			for ic := 0; ic < m; ic += gemmMC {
				mc := min(gemmMC, m-ic)
				packA(sc.ap, transA, a, lda, ic, pc, mc, kc)
				for jr := 0; jr < nc; jr += gemmNR {
					ncr := min(gemmNR, nc-jr)
					bp := sc.bp[jr*kc:]
					for ir := 0; ir < mc; ir += gemmMR {
						mcr := min(gemmMR, mc-ir)
						ap := sc.ap[ir*kc:]
						if mcr == gemmMR && ncr == gemmNR {
							microTile(kc, ap, bp, c[(ic+ir)+(jc+jr)*ldc:], ldc)
							continue
						}
						// Ragged edge: accumulate the full padded tile into
						// a stack buffer, then fold the live part into C.
						var tmp [gemmMR * gemmNR]float64
						microTile(kc, ap, bp, tmp[:], gemmMR)
						for j := 0; j < ncr; j++ {
							cc := c[(ic+ir)+(jc+jr+j)*ldc:]
							tt := tmp[j*gemmMR:]
							for i := 0; i < mcr; i++ {
								cc[i] += tt[i]
							}
						}
					}
				}
			}
		}
	}
}

// microTile dispatches one MR×NR tile update to the best kernel for this
// host. The branch is over concrete functions (not a function variable) so
// escape analysis keeps the caller's edge buffer on the stack.
func microTile(kc int, ap, bp, c []float64, ldc int) {
	if haveFastKernel {
		microFast(kc, ap, bp, c, ldc)
	} else {
		microGeneric(kc, ap, bp, c, ldc)
	}
}

// packA packs op(A)[i0:i0+mc, p0:p0+kc] into MR-row panels: panel ir holds
// rows [ir, ir+MR) with the MR row values of each k-step contiguous, so the
// micro-kernel loads them as vectors. The last panel is zero-padded to a
// full MR rows.
func packA(dst []float64, trans bool, a []float64, lda, i0, p0, mc, kc int) {
	for ir := 0; ir < mc; ir += gemmMR {
		rows := min(gemmMR, mc-ir)
		panel := dst[ir*kc : ir*kc+gemmMR*kc]
		if !trans {
			// op(A)[i,p] = a[(i0+i) + (p0+p)*lda]: copy column runs.
			for p := 0; p < kc; p++ {
				col := a[(i0+ir)+(p0+p)*lda:]
				d := panel[p*gemmMR : p*gemmMR+gemmMR]
				for i := 0; i < rows; i++ {
					d[i] = col[i]
				}
				for i := rows; i < gemmMR; i++ {
					d[i] = 0
				}
			}
		} else {
			// op(A)[i,p] = a[(p0+p) + (i0+i)*lda]: each stored column of a
			// is one row of op(A); scatter it across the panel.
			for i := 0; i < rows; i++ {
				col := a[p0+(i0+ir+i)*lda:]
				for p := 0; p < kc; p++ {
					panel[p*gemmMR+i] = col[p]
				}
			}
			for i := rows; i < gemmMR; i++ {
				for p := 0; p < kc; p++ {
					panel[p*gemmMR+i] = 0
				}
			}
		}
	}
}

// packB packs alpha·op(B)[p0:p0+kc, j0:j0+nc] into NR-column panels: panel
// jr holds columns [jr, jr+NR) with the NR column values of each k-step
// contiguous. The last panel is zero-padded to a full NR columns. Folding
// alpha here multiplies each element once instead of once per use.
func packB(dst []float64, trans bool, b []float64, ldb int, alpha float64, p0, j0, kc, nc int) {
	for jr := 0; jr < nc; jr += gemmNR {
		cols := min(gemmNR, nc-jr)
		panel := dst[jr*kc : jr*kc+gemmNR*kc]
		if !trans {
			// op(B)[p,j] = b[(p0+p) + (j0+j)*ldb]: scatter column runs.
			for j := 0; j < cols; j++ {
				col := b[p0+(j0+jr+j)*ldb:]
				for p := 0; p < kc; p++ {
					panel[p*gemmNR+j] = alpha * col[p]
				}
			}
			for j := cols; j < gemmNR; j++ {
				for p := 0; p < kc; p++ {
					panel[p*gemmNR+j] = 0
				}
			}
		} else {
			// op(B)[p,j] = b[(j0+j) + (p0+p)*ldb]: copy row runs.
			for p := 0; p < kc; p++ {
				row := b[(j0+jr)+(p0+p)*ldb:]
				d := panel[p*gemmNR : p*gemmNR+gemmNR]
				for j := 0; j < cols; j++ {
					d[j] = alpha * row[j]
				}
				for j := cols; j < gemmNR; j++ {
					d[j] = 0
				}
			}
		}
	}
}

// microGeneric is the portable MR×NR micro-kernel: C[0:MR,0:NR] += Ap·Bp
// over kc rank-1 terms, with the accumulator tile in a local array. Used
// when the host lacks the assembly kernel's ISA. The summation order (k
// ascending, one fused tile) matches the assembly kernel's term order,
// though rounding may differ where FMA contraction applies.
func microGeneric(kc int, a, b, c []float64, ldc int) {
	var acc [gemmMR * gemmNR]float64
	a = a[:kc*gemmMR]
	b = b[:kc*gemmNR]
	for p := 0; p < kc; p++ {
		ar := a[p*gemmMR : p*gemmMR+gemmMR]
		br := b[p*gemmNR : p*gemmNR+gemmNR]
		for j, bv := range br {
			cj := acc[j*gemmMR : j*gemmMR+gemmMR]
			for i, av := range ar {
				cj[i] += av * bv
			}
		}
	}
	for j := 0; j < gemmNR; j++ {
		cc := c[j*ldc : j*ldc+gemmMR]
		aj := acc[j*gemmMR : j*gemmMR+gemmMR]
		for i, v := range aj {
			cc[i] += v
		}
	}
}
