package blas

import "os"

// Micro-kernel dispatch. The blocked engine is generic over the micro-tile
// geometry (MR×NR) and cache blocking (MC/KC/NC); the concrete kernel is
// picked once at package init from CPUID and held in kp. Everything that
// depends on the geometry — packing, the macro-kernel sweep, PackLHS
// layouts — reads kp, so the whole engine switches as one unit and the
// result of any BLAS call remains a pure function of (shape, host kernel).
//
// Three levels exist:
//
//	avx512-12x8   AVX-512 assembly, 12×8 tile in 16 ZMM/YMM accumulators
//	avx2-8x6      AVX2+FMA assembly, 8×6 tile in 12 YMM accumulators
//	portable-8x6  pure Go fallback (also the oracle for differential tests)
//
// The `noasm` build tag removes both assembly kernels, forcing the portable
// level everywhere; the PULSARQR_MICROKERNEL environment variable (values
// "avx512", "avx2", "portable") can *downgrade* the choice at startup so
// benchmark runs are attributable to a specific code path.
type microLevel uint8

const (
	levelGeneric microLevel = iota
	levelAVX2
	levelAVX512
)

// kernelParams bundles a micro-kernel with the packing and cache-blocking
// geometry tuned for it. mc must be a multiple of mr and nc a multiple of
// nr so pre-packed panels line up with the macro-kernel's block walk.
type kernelParams struct {
	level      microLevel
	name       string
	mr, nr     int
	mc, kc, nc int
}

// Upper bounds over every config, sizing fixed buffers (edge tiles, pooled
// pack scratch) so a test-forced kernel switch never outgrows them.
const (
	maxMR     = 12
	maxNR     = 8
	scratchAP = 128 * 256 // ≥ mc·kc for every config
	scratchBP = 256 * 516 // ≥ kc·nc for every config
)

var (
	paramsAVX512 = kernelParams{levelAVX512, "avx512-12x8", 12, 8, 120, 192, 512}
	paramsAVX2   = kernelParams{levelAVX2, "avx2-8x6", 8, 6, 128, 256, 516}
	paramsScalar = kernelParams{levelGeneric, "portable-8x6", 8, 6, 128, 256, 516}
)

// kp is the active kernel configuration. Mutable only by tests (via
// forceKernel); everywhere else it is set once at init.
var kp = pickKernel()

func pickKernel() kernelParams {
	best := paramsScalar
	switch {
	case haveAVX512:
		best = paramsAVX512
	case haveFastKernel:
		best = paramsAVX2
	}
	// Allow explicit downgrade for attribution and debugging. Requests for
	// a level the host cannot run fall back to the best available.
	switch os.Getenv("PULSARQR_MICROKERNEL") {
	case "portable":
		return paramsScalar
	case "avx2":
		if haveFastKernel {
			return paramsAVX2
		}
		return paramsScalar
	case "avx512":
		// Cannot upgrade past detection; keep best.
	}
	return best
}

// MicroKernelName identifies the active micro-kernel ("avx512-12x8",
// "avx2-8x6", "portable-8x6") so benchmark records and CI logs can
// attribute numbers to a code path.
func MicroKernelName() string { return kp.name }

// KernelID returns a small integer unique to the active micro-kernel and
// its packing geometry. Consumers that cache PackLHS output include it in
// their cache keys: packings from one geometry are garbage to another.
func KernelID() uint32 {
	return uint32(kp.level)<<16 | uint32(kp.mr)<<8 | uint32(kp.nr)
}

// CPUFeatures reports the SIMD capabilities detected at startup, for CI
// logging and bench attribution.
func CPUFeatures() string {
	s := "baseline"
	if haveFastKernel {
		s = "avx2+fma"
	}
	if haveAVX512 {
		s += "+avx512(f,dq,bw,vl)"
	}
	return s
}

// microTile dispatches one MR×NR tile update to the active kernel. The
// switch is over concrete functions (not a function variable) so escape
// analysis keeps the macro-kernel's edge buffer on the stack.
func microTile(kc int, ap, bp, c []float64, ldc int) {
	switch kp.level {
	case levelAVX512:
		microFast12x8(kc, ap, bp, c, ldc)
	case levelAVX2:
		microFast8x6(kc, ap, bp, c, ldc)
	default:
		microGeneric(kc, ap, bp, c, ldc, kp.mr, kp.nr)
	}
}
