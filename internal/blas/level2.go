package blas

// Dgemv computes y := alpha*op(A)*x + beta*y where op is the identity when
// trans is false and transposition when trans is true. A is m×n column-major
// with leading dimension lda.
func Dgemv(trans bool, m, n int, alpha float64, a []float64, lda int,
	x []float64, incX int, beta float64, y []float64, incY int) {
	if m <= 0 || n <= 0 {
		return
	}
	ylen := m
	if trans {
		ylen = n
	}
	if beta != 1 {
		if beta == 0 {
			iy := 0
			for i := 0; i < ylen; i++ {
				y[iy] = 0
				iy += incY
			}
		} else {
			Dscal(ylen, beta, y, incY)
		}
	}
	if alpha == 0 {
		return
	}
	if !trans {
		// y += alpha * A * x, column sweep.
		ix := 0
		for j := 0; j < n; j++ {
			t := alpha * x[ix]
			ix += incX
			if t != 0 {
				col := a[j*lda : j*lda+m]
				if incY == 1 {
					yv := y[:m]
					for i, v := range col {
						yv[i] += t * v
					}
				} else {
					iy := 0
					for i := 0; i < m; i++ {
						y[iy] += t * col[i]
						iy += incY
					}
				}
			}
		}
		return
	}
	// y += alpha * Aᵀ * x, dot products per column.
	iy := 0
	for j := 0; j < n; j++ {
		col := a[j*lda : j*lda+m]
		var s float64
		if incX == 1 {
			xv := x[:m]
			for i, v := range col {
				s += v * xv[i]
			}
		} else {
			ix := 0
			for i := 0; i < m; i++ {
				s += col[i] * x[ix]
				ix += incX
			}
		}
		y[iy] += alpha * s
		iy += incY
	}
}

// Dger performs the rank-one update A += alpha * x * yᵀ.
func Dger(m, n int, alpha float64, x []float64, incX int,
	y []float64, incY int, a []float64, lda int) {
	if m <= 0 || n <= 0 || alpha == 0 {
		return
	}
	iy := 0
	for j := 0; j < n; j++ {
		t := alpha * y[iy]
		iy += incY
		if t == 0 {
			continue
		}
		col := a[j*lda : j*lda+m]
		if incX == 1 {
			xv := x[:m]
			for i, v := range xv {
				col[i] += t * v
			}
		} else {
			ix := 0
			for i := 0; i < m; i++ {
				col[i] += t * x[ix]
				ix += incX
			}
		}
	}
}

// Dtrmv computes x := op(A)*x for an n×n triangular matrix A.
// upper selects the triangle, trans selects op, unit marks a unit diagonal.
func Dtrmv(upper, trans, unit bool, n int, a []float64, lda int, x []float64, incX int) {
	if n <= 0 {
		return
	}
	if incX != 1 {
		// The kernels only use contiguous vectors; keep the general case
		// simple and correct by staging through a temporary.
		tmp := make([]float64, n)
		ix := 0
		for i := 0; i < n; i++ {
			tmp[i] = x[ix]
			ix += incX
		}
		Dtrmv(upper, trans, unit, n, a, lda, tmp, 1)
		ix = 0
		for i := 0; i < n; i++ {
			x[ix] = tmp[i]
			ix += incX
		}
		return
	}
	x = x[:n]
	switch {
	case upper && !trans:
		for i := 0; i < n; i++ {
			var s float64
			if unit {
				s = x[i]
			} else {
				s = a[i+i*lda] * x[i]
			}
			for j := i + 1; j < n; j++ {
				s += a[i+j*lda] * x[j]
			}
			x[i] = s
		}
	case upper && trans:
		for i := n - 1; i >= 0; i-- {
			var s float64
			if unit {
				s = x[i]
			} else {
				s = a[i+i*lda] * x[i]
			}
			for j := 0; j < i; j++ {
				s += a[j+i*lda] * x[j]
			}
			x[i] = s
		}
	case !upper && !trans:
		for i := n - 1; i >= 0; i-- {
			var s float64
			if unit {
				s = x[i]
			} else {
				s = a[i+i*lda] * x[i]
			}
			for j := 0; j < i; j++ {
				s += a[i+j*lda] * x[j]
			}
			x[i] = s
		}
	default: // lower, trans
		for i := 0; i < n; i++ {
			var s float64
			if unit {
				s = x[i]
			} else {
				s = a[i+i*lda] * x[i]
			}
			for j := i + 1; j < n; j++ {
				s += a[j+i*lda] * x[j]
			}
			x[i] = s
		}
	}
}
