package blas

import "sync"

// Dgemm computes C := alpha*op(A)*op(B) + beta*C with op selected by
// transA/transB. C is m×n, op(A) is m×k, op(B) is k×n, all column-major.
//
// Shapes large enough to amortize panel packing run on the blocked engine
// in gemm_blocked.go; everything else falls through to the scalar loops in
// dgemmScalar. The routing depends only on (m, n, k), so for fixed operand
// shapes the summation order — and therefore the bitwise result — is
// fixed too.
func Dgemm(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int,
	b []float64, ldb int, beta float64, c []float64, ldc int) {
	if m <= 0 || n <= 0 {
		return
	}
	if alpha != 0 && k > 0 && useBlocked(m, n, k) {
		scaleC(beta, m, n, c, ldc)
		dgemmBlocked(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	dgemmScalar(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// scaleC applies C := beta*C over the m×n window.
func scaleC(beta float64, m, n int, c []float64, ldc int) {
	if beta == 1 {
		return
	}
	for j := 0; j < n; j++ {
		col := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range col {
				col[i] = 0
			}
		} else {
			for i := range col {
				col[i] *= beta
			}
		}
	}
}

// dgemmScalar is the unblocked reference implementation, kept both as the
// small-shape fast path (packing overhead exceeds the work below the
// dispatch threshold) and as the oracle the differential tests pit the
// blocked engine against.
//
// The no-transpose path runs a j-k-i loop nest so the inner loop streams
// down contiguous columns, which is the cache-friendly order for
// column-major data; the transposed paths reduce to dot products or
// column-axpy sweeps with the same property.
func dgemmScalar(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int,
	b []float64, ldb int, beta float64, c []float64, ldc int) {
	if m <= 0 || n <= 0 {
		return
	}
	scaleC(beta, m, n, c, ldc)
	if alpha == 0 || k <= 0 {
		return
	}
	switch {
	case !transA && !transB:
		// C += alpha * A * B. Process four columns of C per sweep over a
		// column of A: each load of A feeds four multiply-adds, which
		// quadruples the arithmetic intensity of the inner loop.
		j := 0
		for ; j+4 <= n; j += 4 {
			c0 := c[(j+0)*ldc : (j+0)*ldc+m]
			c1 := c[(j+1)*ldc : (j+1)*ldc+m]
			c2 := c[(j+2)*ldc : (j+2)*ldc+m]
			c3 := c[(j+3)*ldc : (j+3)*ldc+m]
			for l := 0; l < k; l++ {
				t0 := alpha * b[l+(j+0)*ldb]
				t1 := alpha * b[l+(j+1)*ldb]
				t2 := alpha * b[l+(j+2)*ldb]
				t3 := alpha * b[l+(j+3)*ldb]
				if t0 == 0 && t1 == 0 && t2 == 0 && t3 == 0 {
					continue
				}
				acol := a[l*lda : l*lda+m]
				for i, v := range acol {
					c0[i] += t0 * v
					c1[i] += t1 * v
					c2[i] += t2 * v
					c3[i] += t3 * v
				}
			}
		}
		for ; j < n; j++ {
			ccol := c[j*ldc : j*ldc+m]
			for l := 0; l < k; l++ {
				t := alpha * b[l+j*ldb]
				if t == 0 {
					continue
				}
				acol := a[l*lda : l*lda+m]
				for i, v := range acol {
					ccol[i] += t * v
				}
			}
		}
	case transA && !transB:
		// C += alpha * Aᵀ * B ; A is k×m stored, columns of A are rows of
		// op(A). Four simultaneous dot products share each load of B.
		for j := 0; j < n; j++ {
			bcol := b[j*ldb : j*ldb+k]
			ccol := c[j*ldc : j*ldc+m]
			i := 0
			for ; i+4 <= m; i += 4 {
				a0 := a[(i+0)*lda : (i+0)*lda+k]
				a1 := a[(i+1)*lda : (i+1)*lda+k]
				a2 := a[(i+2)*lda : (i+2)*lda+k]
				a3 := a[(i+3)*lda : (i+3)*lda+k]
				var s0, s1, s2, s3 float64
				for l, bv := range bcol {
					s0 += a0[l] * bv
					s1 += a1[l] * bv
					s2 += a2[l] * bv
					s3 += a3[l] * bv
				}
				ccol[i+0] += alpha * s0
				ccol[i+1] += alpha * s1
				ccol[i+2] += alpha * s2
				ccol[i+3] += alpha * s3
			}
			for ; i < m; i++ {
				acol := a[i*lda : i*lda+k]
				var s float64
				for l, v := range acol {
					s += v * bcol[l]
				}
				ccol[i] += alpha * s
			}
		}
	case !transA && transB:
		// C += alpha * A * Bᵀ ; B is n×k stored.
		for j := 0; j < n; j++ {
			ccol := c[j*ldc : j*ldc+m]
			for l := 0; l < k; l++ {
				t := alpha * b[j+l*ldb]
				if t == 0 {
					continue
				}
				acol := a[l*lda : l*lda+m]
				for i, v := range acol {
					ccol[i] += t * v
				}
			}
		}
	default:
		// C += alpha * Aᵀ * Bᵀ
		for j := 0; j < n; j++ {
			ccol := c[j*ldc : j*ldc+m]
			for i := 0; i < m; i++ {
				acol := a[i*lda : i*lda+k]
				var s float64
				for l, v := range acol {
					s += v * b[j+l*ldb]
				}
				ccol[i] += alpha * s
			}
		}
	}
}

// Dtrmm computes B := alpha*op(A)*B (left) or B := alpha*B*op(A) (right)
// for a triangular A. B is m×n; A is m×m (left) or n×n (right).
func Dtrmm(left, upper, trans, unit bool, m, n int, alpha float64,
	a []float64, lda int, b []float64, ldb int) {
	if m <= 0 || n <= 0 {
		return
	}
	if alpha == 0 {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			for i := range col {
				col[i] = 0
			}
		}
		return
	}
	if left {
		switch {
		case trmmLeftDenseOK(m, n):
			trmmLeftDense(upper, trans, unit, m, n, alpha, a, lda, b, ldb)
		case m > trmmLeafM:
			trmmLeftBlocked(upper, trans, unit, m, n, alpha, a, lda, b, ldb)
		default:
			trmmLeftScalar(upper, trans, unit, m, n, alpha, a, lda, b, ldb)
		}
		return
	}
	// Right side: B := alpha * B * op(A). Process by columns of the result.
	// result[:, j] = alpha * sum_k B[:, k] * op(A)[k, j].
	// op(A)[k, j] = A[k, j] when !trans, A[j, k] when trans.
	tmp := make([]float64, m)
	out := make([]float64, m*n)
	for j := 0; j < n; j++ {
		for i := range tmp {
			tmp[i] = 0
		}
		for k := 0; k < n; k++ {
			var akj float64
			switch {
			case k == j:
				if unit {
					akj = 1
				} else {
					akj = a[k+j*lda]
				}
			case !trans:
				if (upper && k < j) || (!upper && k > j) {
					akj = a[k+j*lda]
				}
			default:
				if (upper && j < k) || (!upper && j > k) {
					akj = a[j+k*lda]
				}
			}
			if akj == 0 {
				continue
			}
			bcol := b[k*ldb : k*ldb+m]
			for i, v := range bcol {
				tmp[i] += v * akj
			}
		}
		ocol := out[j*m : j*m+m]
		for i := range tmp {
			ocol[i] = alpha * tmp[i]
		}
	}
	for j := 0; j < n; j++ {
		copy(b[j*ldb:j*ldb+m], out[j*m:j*m+m])
	}
}

// trmmLeafM is the triangle size below which the recursive left-side Dtrmm
// stops splitting and runs the per-column scalar sweep directly.
const trmmLeafM = 16

// trmmLeftScalar is the unblocked reference: one Dtrmv per column of B.
// Retained both as the recursion leaf and as the oracle for the
// differential Dtrmm tests.
func trmmLeftScalar(upper, trans, unit bool, m, n int, alpha float64,
	a []float64, lda int, b []float64, ldb int) {
	for j := 0; j < n; j++ {
		col := b[j*ldb : j*ldb+m]
		Dtrmv(upper, trans, unit, m, a, lda, col, 1)
		if alpha != 1 {
			for i := range col {
				col[i] *= alpha
			}
		}
	}
}

// trmmLeftBlocked computes B := alpha*op(A)*B by splitting the triangle in
// two: the diagonal blocks recurse and the off-diagonal rectangle becomes a
// Dgemm, which routes the bulk of the flops onto the blocked engine. The
// update order within each case is chosen so every term reads operand rows
// that have not been overwritten yet. The split point depends only on m, so
// the evaluation order — and the bitwise result — is a pure function of the
// operand shape.
func trmmLeftBlocked(upper, trans, unit bool, m, n int, alpha float64,
	a []float64, lda int, b []float64, ldb int) {
	if trmmLeftDenseOK(m, n) {
		trmmLeftDense(upper, trans, unit, m, n, alpha, a, lda, b, ldb)
		return
	}
	if m <= trmmLeafM {
		trmmLeftScalar(upper, trans, unit, m, n, alpha, a, lda, b, ldb)
		return
	}
	// Split rows at h, rounded to the micro-tile height so the Dgemm below
	// sees aligned panels. m > trmmLeafM guarantees 0 < h < m.
	h := (m/2 + kp.mr - 1) / kp.mr * kp.mr
	// Partition A = [A11 A12; A21 A22] with A11 h×h, and B rows as B1/B2.
	a22 := a[h+h*lda:]
	b2 := b[h:]
	switch {
	case upper && !trans:
		// B1 = alpha*(A11·B1 + A12·B2); B2 = alpha*A22·B2. B1 first: it
		// needs the not-yet-updated B2.
		trmmLeftBlocked(upper, trans, unit, h, n, alpha, a, lda, b, ldb)
		Dgemm(false, false, h, n, m-h, alpha, a[h*lda:], lda, b2, ldb, 1, b, ldb)
		trmmLeftBlocked(upper, trans, unit, m-h, n, alpha, a22, lda, b2, ldb)
	case upper && trans:
		// op(A) is lower: B2 = alpha*(A12ᵀ·B1 + A22ᵀ·B2); B1 = alpha*A11ᵀ·B1.
		trmmLeftBlocked(upper, trans, unit, m-h, n, alpha, a22, lda, b2, ldb)
		Dgemm(true, false, m-h, n, h, alpha, a[h*lda:], lda, b, ldb, 1, b2, ldb)
		trmmLeftBlocked(upper, trans, unit, h, n, alpha, a, lda, b, ldb)
	case !upper && !trans:
		// Lower: B2 = alpha*(A21·B1 + A22·B2); B1 = alpha*A11·B1.
		trmmLeftBlocked(upper, trans, unit, m-h, n, alpha, a22, lda, b2, ldb)
		Dgemm(false, false, m-h, n, h, alpha, a[h:], lda, b, ldb, 1, b2, ldb)
		trmmLeftBlocked(upper, trans, unit, h, n, alpha, a, lda, b, ldb)
	default:
		// Lower, trans — op(A) is upper: B1 = alpha*(A11ᵀ·B1 + A21ᵀ·B2);
		// B2 = alpha*A22ᵀ·B2.
		trmmLeftBlocked(upper, trans, unit, h, n, alpha, a, lda, b, ldb)
		Dgemm(true, false, h, n, m-h, alpha, a[h:], lda, b2, ldb, 1, b, ldb)
		trmmLeftBlocked(upper, trans, unit, m-h, n, alpha, a22, lda, b2, ldb)
	}
}

// trmmDenseMaxM bounds the dense-expanded path: triangles up to this size
// cost at most 2x the triangular flops when treated as dense, and the
// micro-kernel's rate advantage over the scalar leaves is far more than 2x.
// Beyond it the wasted zero-half flops start to matter and the recursive
// split (whose off-diagonal Dgemm wastes nothing) wins.
const trmmDenseMaxM = 64

// trmmLeftDenseOK reports whether a left-side m×m triangle applied to m×n B
// should be dense-expanded onto the packed micro-kernel path. Mid-size
// triangles (16 < m ≤ 64) recursing to scalar leaves run at ~1.5 Gflop/s;
// padding the triangle to a dense matrix and running one packed pass is ≥5x
// faster despite the wasted half. The decision depends only on the shape,
// preserving the bitwise-determinism contract.
func trmmLeftDenseOK(m, n int) bool {
	return m > trmmLeafM && m <= trmmDenseMaxM && n >= kp.nr &&
		m*m*n >= blockedThreshold
}

// trmmScratch backs one in-flight dense-expanded Dtrmm: the zero-filled
// dense image of the triangle, its packed form, and the out-of-place
// product (Dtrmm is in-place over B, the packed engine is not).
type trmmScratch struct {
	dense  []float64
	packed []float64
	out    []float64
}

var trmmScratchPool = sync.Pool{New: func() any { return new(trmmScratch) }}

func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// trmmLeftDense computes B := alpha·op(A)·B by expanding the m×m triangle
// (explicit zeros in the dead half, explicit ones on a unit diagonal) into
// a dense matrix, packing it once with PackLHS, and running a single
// DgemmPackedLHS pass into an out-of-place buffer that is then copied back
// over B. All flops land on the micro-kernel; no scalar leaves remain.
func trmmLeftDense(upper, trans, unit bool, m, n int, alpha float64,
	a []float64, lda int, b []float64, ldb int) {
	sc := trmmScratchPool.Get().(*trmmScratch)
	defer trmmScratchPool.Put(sc)
	d := growFloats(&sc.dense, m*m)
	for i := range d {
		d[i] = 0
	}
	// Copy the stored triangle of A; PackLHS absorbs the transposition.
	for j := 0; j < m; j++ {
		if upper {
			for i := 0; i < j; i++ {
				d[i+j*m] = a[i+j*lda]
			}
		} else {
			for i := j + 1; i < m; i++ {
				d[i+j*m] = a[i+j*lda]
			}
		}
		if unit {
			d[j+j*m] = 1
		} else {
			d[j+j*m] = a[j+j*lda]
		}
	}
	p := growFloats(&sc.packed, PackedLHSLen(m, m))
	PackLHS(trans, m, m, d, m, p)
	out := growFloats(&sc.out, m*n)
	for i := range out {
		out[i] = 0
	}
	DgemmPackedLHS(m, n, m, p, alpha, b, ldb, out, m)
	for j := 0; j < n; j++ {
		copy(b[j*ldb:j*ldb+m], out[j*m:j*m+m])
	}
}

// Dtrsm solves op(A)*X = alpha*B (left) or X*op(A) = alpha*B (right) for X,
// overwriting B. A is triangular and assumed nonsingular.
func Dtrsm(left, upper, trans, unit bool, m, n int, alpha float64,
	a []float64, lda int, b []float64, ldb int) {
	if m <= 0 || n <= 0 {
		return
	}
	if alpha != 1 {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			for i := range col {
				col[i] *= alpha
			}
		}
	}
	if left {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			solveTri(upper, trans, unit, m, a, lda, col)
		}
		return
	}
	// Right side: X * op(A) = B  ⇔  op(A)ᵀ Xᵀ = Bᵀ. Solve row systems.
	row := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			row[j] = b[i+j*ldb]
		}
		solveTri(upper, !trans, unit, n, a, lda, row)
		for j := 0; j < n; j++ {
			b[i+j*ldb] = row[j]
		}
	}
}

// solveTri solves op(A) x = b in place for one right-hand side.
func solveTri(upper, trans, unit bool, n int, a []float64, lda int, x []float64) {
	switch {
	case upper && !trans:
		for i := n - 1; i >= 0; i-- {
			s := x[i]
			for j := i + 1; j < n; j++ {
				s -= a[i+j*lda] * x[j]
			}
			if !unit {
				s /= a[i+i*lda]
			}
			x[i] = s
		}
	case upper && trans:
		for i := 0; i < n; i++ {
			s := x[i]
			for j := 0; j < i; j++ {
				s -= a[j+i*lda] * x[j]
			}
			if !unit {
				s /= a[i+i*lda]
			}
			x[i] = s
		}
	case !upper && !trans:
		for i := 0; i < n; i++ {
			s := x[i]
			for j := 0; j < i; j++ {
				s -= a[i+j*lda] * x[j]
			}
			if !unit {
				s /= a[i+i*lda]
			}
			x[i] = s
		}
	default: // lower, trans
		for i := n - 1; i >= 0; i-- {
			s := x[i]
			for j := i + 1; j < n; j++ {
				s -= a[j+i*lda] * x[j]
			}
			if !unit {
				s /= a[i+i*lda]
			}
			x[i] = s
		}
	}
}
