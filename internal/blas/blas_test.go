package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// colMajor builds a column-major array with the given leading dimension,
// padding rows filled with a sentinel so tests catch out-of-bounds writes.
func colMajor(rng *rand.Rand, rows, cols, ld int) []float64 {
	a := make([]float64, ld*cols)
	for i := range a {
		a[i] = 1e30 // sentinel for padding
	}
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			a[i+j*ld] = 2*rng.Float64() - 1
		}
	}
	return a
}

func checkPadding(t *testing.T, a []float64, rows, cols, ld int, name string) {
	t.Helper()
	for j := 0; j < cols; j++ {
		for i := rows; i < ld; i++ {
			if a[i+j*ld] != 1e30 {
				t.Fatalf("%s: padding overwritten at (%d,%d)", name, i, j)
			}
		}
	}
}

func get(a []float64, ld, i, j int) float64 { return a[i+j*ld] }

// refGemm is a simple reference for op(A)·op(B) accumulation.
func refGemm(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int,
	b []float64, ldb int, beta float64, c []float64, ldc int) []float64 {
	out := make([]float64, len(c))
	copy(out, c)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s float64
			for l := 0; l < k; l++ {
				var av, bv float64
				if transA {
					av = get(a, lda, l, i)
				} else {
					av = get(a, lda, i, l)
				}
				if transB {
					bv = get(b, ldb, j, l)
				} else {
					bv = get(b, ldb, l, j)
				}
				s += av * bv
			}
			out[i+j*ldc] = alpha*s + beta*get(c, ldc, i, j)
		}
	}
	return out
}

func TestDgemmAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, transA := range []bool{false, true} {
		for _, transB := range []bool{false, true} {
			for _, beta := range []float64{0, 1, -0.5} {
				m, n, k := 5, 4, 3
				lda, ldb, ldc := 7, 6, 8
				ar, ac := m, k
				if transA {
					ar, ac = k, m
				}
				br, bc := k, n
				if transB {
					br, bc = n, k
				}
				a := colMajor(rng, ar, ac, lda)
				b := colMajor(rng, br, bc, ldb)
				c := colMajor(rng, m, n, ldc)
				want := refGemm(transA, transB, m, n, k, 1.5, a, lda, b, ldb, beta, c, ldc)
				Dgemm(transA, transB, m, n, k, 1.5, a, lda, b, ldb, beta, c, ldc)
				for j := 0; j < n; j++ {
					for i := 0; i < m; i++ {
						if math.Abs(c[i+j*ldc]-want[i+j*ldc]) > 1e-12 {
							t.Fatalf("gemm(%v,%v,beta=%v) mismatch at (%d,%d)",
								transA, transB, beta, i, j)
						}
					}
				}
				checkPadding(t, c, m, n, ldc, "C")
			}
		}
	}
}

func TestDgemmDegenerate(t *testing.T) {
	c := []float64{1, 2}
	Dgemm(false, false, 0, 1, 3, 1, nil, 1, nil, 1, 1, c, 2)
	Dgemm(false, false, 2, 1, 0, 1, nil, 2, nil, 1, 2, c, 2)
	if c[0] != 2 || c[1] != 4 {
		t.Fatal("k=0 must still scale C by beta")
	}
	Dgemm(false, false, 2, 1, 5, 0, make([]float64, 10), 2, make([]float64, 5), 5, 1, c, 2)
	if c[0] != 2 || c[1] != 4 {
		t.Fatal("alpha=0 must leave C (beta=1)")
	}
}

func applyTriRef(upper, trans, unit bool, n int, a []float64, lda int, x []float64) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var v float64
			ii, jj := i, j
			if trans {
				ii, jj = j, i
			}
			switch {
			case ii == jj:
				if unit {
					v = 1
				} else {
					v = get(a, lda, ii, jj)
				}
			case (upper && ii < jj) || (!upper && ii > jj):
				v = get(a, lda, ii, jj)
			}
			out[i] += v * x[j]
		}
	}
	return out
}

func TestDtrmvAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, lda := 6, 8
	a := colMajor(rng, n, n, lda)
	for _, upper := range []bool{false, true} {
		for _, trans := range []bool{false, true} {
			for _, unit := range []bool{false, true} {
				x := make([]float64, n)
				for i := range x {
					x[i] = rng.Float64()
				}
				want := applyTriRef(upper, trans, unit, n, a, lda, x)
				Dtrmv(upper, trans, unit, n, a, lda, x, 1)
				for i := range x {
					if math.Abs(x[i]-want[i]) > 1e-12 {
						t.Fatalf("trmv(%v,%v,%v) mismatch at %d", upper, trans, unit, i)
					}
				}
			}
		}
	}
}

func TestDtrmvStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, lda := 4, 4
	a := colMajor(rng, n, n, lda)
	x := []float64{1, -9, 2, -9, 3, -9, 4, -9}
	xc := []float64{1, 2, 3, 4}
	want := applyTriRef(true, false, false, n, a, lda, xc)
	Dtrmv(true, false, false, n, a, lda, x, 2)
	for i := 0; i < n; i++ {
		if math.Abs(x[2*i]-want[i]) > 1e-12 {
			t.Fatal("strided trmv wrong")
		}
		if x[2*i+1] != -9 {
			t.Fatal("strided trmv wrote gaps")
		}
	}
}

func TestDtrmmLeftRight(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, n := 5, 4
	for _, left := range []bool{true, false} {
		for _, upper := range []bool{false, true} {
			for _, trans := range []bool{false, true} {
				for _, unit := range []bool{false, true} {
					na := m
					if !left {
						na = n
					}
					lda, ldb := na+2, m+1
					a := colMajor(rng, na, na, lda)
					b := colMajor(rng, m, n, ldb)
					// Reference: apply column-by-column (left) or build from
					// row systems (right) using applyTriRef on B's rows.
					want := make([]float64, len(b))
					copy(want, b)
					if left {
						for j := 0; j < n; j++ {
							col := make([]float64, m)
							for i := 0; i < m; i++ {
								col[i] = get(b, ldb, i, j)
							}
							res := applyTriRef(upper, trans, unit, m, a, lda, col)
							for i := 0; i < m; i++ {
								want[i+j*ldb] = 2 * res[i]
							}
						}
					} else {
						for i := 0; i < m; i++ {
							row := make([]float64, n)
							for j := 0; j < n; j++ {
								row[j] = get(b, ldb, i, j)
							}
							// B·op(A) row i = op(A)ᵀ · rowᵀ.
							res := applyTriRef(upper, !trans, unit, n, a, lda, row)
							for j := 0; j < n; j++ {
								want[i+j*ldb] = 2 * res[j]
							}
						}
					}
					Dtrmm(left, upper, trans, unit, m, n, 2, a, lda, b, ldb)
					for j := 0; j < n; j++ {
						for i := 0; i < m; i++ {
							if math.Abs(b[i+j*ldb]-want[i+j*ldb]) > 1e-12 {
								t.Fatalf("trmm(left=%v,%v,%v,%v) mismatch",
									left, upper, trans, unit)
							}
						}
					}
					checkPadding(t, b, m, n, ldb, "B")
				}
			}
		}
	}
}

func TestDtrsmInvertsDtrmm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, n := 5, 3
	for _, left := range []bool{true, false} {
		for _, upper := range []bool{false, true} {
			for _, trans := range []bool{false, true} {
				for _, unit := range []bool{false, true} {
					na := m
					if !left {
						na = n
					}
					lda, ldb := na, m
					a := colMajor(rng, na, na, lda)
					// Make A well conditioned.
					for i := 0; i < na; i++ {
						a[i+i*lda] = 3 + rng.Float64()
					}
					x := colMajor(rng, m, n, ldb)
					b := make([]float64, len(x))
					copy(b, x)
					Dtrmm(left, upper, trans, unit, m, n, 1, a, lda, b, ldb)
					// Solve op(A)·Y = B (or Y·op(A) = B); must recover X.
					Dtrsm(left, upper, trans, unit, m, n, 1, a, lda, b, ldb)
					for j := 0; j < n; j++ {
						for i := 0; i < m; i++ {
							if math.Abs(b[i+j*ldb]-x[i+j*ldb]) > 1e-10 {
								t.Fatalf("trsm(left=%v,%v,%v,%v) did not invert trmm",
									left, upper, trans, unit)
							}
						}
					}
				}
			}
		}
	}
}

func TestDtrsmAlpha(t *testing.T) {
	// op(A)=I (unit, no off-diagonals): X = alpha*B.
	a := make([]float64, 4)
	b := []float64{1, 2, 3, 4}
	Dtrsm(true, true, false, true, 2, 2, 3, a, 2, b, 2)
	want := []float64{3, 6, 9, 12}
	for i := range b {
		if b[i] != want[i] {
			t.Fatal("alpha scaling wrong")
		}
	}
}

func TestDgemvGer(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, n, lda := 5, 4, 6
	a := colMajor(rng, m, n, lda)
	x := make([]float64, n)
	y := make([]float64, m)
	for i := range x {
		x[i] = rng.Float64()
	}
	for i := range y {
		y[i] = rng.Float64()
	}
	// y2 = 2*A*x + 0.5*y
	y2 := make([]float64, m)
	copy(y2, y)
	Dgemv(false, m, n, 2, a, lda, x, 1, 0.5, y2, 1)
	for i := 0; i < m; i++ {
		want := 0.5 * y[i]
		for j := 0; j < n; j++ {
			want += 2 * get(a, lda, i, j) * x[j]
		}
		if math.Abs(y2[i]-want) > 1e-12 {
			t.Fatal("gemv notrans wrong")
		}
	}
	// x2 = Aᵀ*y with beta=0
	x2 := make([]float64, n)
	for i := range x2 {
		x2[i] = 123
	}
	Dgemv(true, m, n, 1, a, lda, y, 1, 0, x2, 1)
	for j := 0; j < n; j++ {
		var want float64
		for i := 0; i < m; i++ {
			want += get(a, lda, i, j) * y[i]
		}
		if math.Abs(x2[j]-want) > 1e-12 {
			t.Fatal("gemv trans wrong")
		}
	}
	// A += 2*y*xᵀ
	ac := make([]float64, len(a))
	copy(ac, a)
	Dger(m, n, 2, y, 1, x, 1, a, lda)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			want := get(ac, lda, i, j) + 2*y[i]*x[j]
			if math.Abs(get(a, lda, i, j)-want) > 1e-12 {
				t.Fatal("ger wrong")
			}
		}
	}
	checkPadding(t, a, m, n, lda, "A")
}

func TestLevel1(t *testing.T) {
	x := []float64{3, -4, 0}
	if got := Dnrm2(3, x, 1); math.Abs(got-5) > 1e-15 {
		t.Fatalf("nrm2 = %v", got)
	}
	if got := Dnrm2(2, []float64{1e200, 1e200}, 1); math.IsInf(got, 0) {
		t.Fatal("nrm2 overflowed")
	}
	if got := Ddot(2, []float64{1, 2}, 1, []float64{3, 4}, 1); got != 11 {
		t.Fatalf("ddot = %v", got)
	}
	if got := Ddot(2, []float64{1, 0, 2}, 2, []float64{3, 4}, 1); got != 11 {
		t.Fatalf("strided ddot = %v", got)
	}
	y := []float64{1, 1}
	Daxpy(2, 2, []float64{1, 2}, 1, y, 1)
	if y[0] != 3 || y[1] != 5 {
		t.Fatal("daxpy wrong")
	}
	Dscal(2, 0.5, y, 1)
	if y[0] != 1.5 || y[1] != 2.5 {
		t.Fatal("dscal wrong")
	}
	z := make([]float64, 2)
	Dcopy(2, y, 1, z, 1)
	if z[0] != 1.5 || z[1] != 2.5 {
		t.Fatal("dcopy wrong")
	}
	if got := Idamax(4, []float64{1, -7, 3, 7}, 1); got != 1 {
		t.Fatalf("idamax = %d", got)
	}
	if got := Idamax(0, nil, 1); got != -1 {
		t.Fatal("idamax empty must return -1")
	}
}

func TestDnrm2MatchesNaiveProperty(t *testing.T) {
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 1
			}
			// Keep magnitudes sane for the naive reference.
			vals[i] = math.Mod(vals[i], 1e6)
		}
		var ss float64
		for _, v := range vals {
			ss += v * v
		}
		want := math.Sqrt(ss)
		got := Dnrm2(len(vals), vals, 1)
		if want == 0 {
			return got == 0
		}
		return math.Abs(got-want)/want < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDgemmAssociativityProperty(t *testing.T) {
	// (A·B)·C == A·(B·C) within round-off, exercised through Dgemm.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 1
		a := colMajor(rng, n, n, n)
		b := colMajor(rng, n, n, n)
		c := colMajor(rng, n, n, n)
		ab := make([]float64, n*n)
		bc := make([]float64, n*n)
		l, r := make([]float64, n*n), make([]float64, n*n)
		Dgemm(false, false, n, n, n, 1, a, n, b, n, 0, ab, n)
		Dgemm(false, false, n, n, n, 1, b, n, c, n, 0, bc, n)
		Dgemm(false, false, n, n, n, 1, ab, n, c, n, 0, l, n)
		Dgemm(false, false, n, n, n, 1, a, n, bc, n, 0, r, n)
		for i := range l {
			if math.Abs(l[i]-r[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
