//go:build unix

package procgroup

import (
	"os/exec"
	"syscall"
)

// setup puts the child in its own process group so signals aimed at it
// reach its descendants too — and so a ^C delivered to the launcher's
// foreground group does not pre-empt our orderly shutdown of the children.
func setup(cmd *exec.Cmd) {
	if cmd.SysProcAttr == nil {
		cmd.SysProcAttr = &syscall.SysProcAttr{}
	}
	cmd.SysProcAttr.Setpgid = true
}

func signalGroup(cmd *exec.Cmd, sig syscall.Signal) {
	if cmd.Process == nil || cmd.Process.Pid <= 0 {
		return
	}
	if pgid, err := syscall.Getpgid(cmd.Process.Pid); err == nil && pgid > 0 {
		if syscall.Kill(-pgid, sig) == nil {
			return
		}
	}
	cmd.Process.Signal(sig)
}

func term(cmd *exec.Cmd) { signalGroup(cmd, syscall.SIGTERM) }
func kill(cmd *exec.Cmd) { signalGroup(cmd, syscall.SIGKILL) }
