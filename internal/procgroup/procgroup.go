// Package procgroup supervises launched child processes as one unit. The
// launchers (qrfactor -launch, qrserve -launch) spawn one process per rank;
// if the parent dies or any rank fails, the rest must not linger as orphans
// holding ports and CPUs. On Unix every child is started in its own process
// group, so Kill reaches the child and anything it spawned; elsewhere it
// degrades to killing the direct child.
package procgroup

import (
	"errors"
	"os/exec"
	"sync"
)

var errKilled = errors.New("procgroup: group already killed")

// Group tracks started commands and kills them together.
type Group struct {
	mu     sync.Mutex
	cmds   []*exec.Cmd
	killed bool
}

func New() *Group { return &Group{} }

// Start configures cmd for group supervision (own process group on Unix)
// and starts it. After the group was killed, Start refuses new children.
func (g *Group) Start(cmd *exec.Cmd) error {
	setup(cmd)
	g.mu.Lock()
	if g.killed {
		g.mu.Unlock()
		return errKilled
	}
	g.mu.Unlock()
	if err := cmd.Start(); err != nil {
		return err
	}
	g.mu.Lock()
	killed := g.killed
	g.cmds = append(g.cmds, cmd)
	g.mu.Unlock()
	if killed {
		kill(cmd) // lost the race with Kill; don't leak the straggler
		return errKilled
	}
	return nil
}

// Term sends the polite termination signal (SIGTERM on Unix) to every
// child's process group, giving them a chance to exit cleanly.
func (g *Group) Term() {
	g.mu.Lock()
	cmds := append([]*exec.Cmd(nil), g.cmds...)
	g.mu.Unlock()
	for _, c := range cmds {
		term(c)
	}
}

// Kill forcibly terminates every child (and, on Unix, each child's whole
// process group). Idempotent; safe from signal handlers and deferred exit
// paths alike.
func (g *Group) Kill() {
	g.mu.Lock()
	g.killed = true
	cmds := append([]*exec.Cmd(nil), g.cmds...)
	g.mu.Unlock()
	for _, c := range cmds {
		kill(c)
	}
}

// Killed reports whether Kill was called, so exit paths can tell expected
// child deaths from real failures.
func (g *Group) Killed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.killed
}
