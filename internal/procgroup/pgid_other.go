//go:build !unix

package procgroup

import (
	"os"
	"os/exec"
)

func setup(cmd *exec.Cmd) {}

func term(cmd *exec.Cmd) {
	if cmd.Process != nil {
		cmd.Process.Signal(os.Interrupt)
	}
}

func kill(cmd *exec.Cmd) {
	if cmd.Process != nil {
		cmd.Process.Kill()
	}
}
