// Package quark implements a QUARK-style task-superscalar runtime: the
// dynamic scheduling baseline the paper contrasts with the systolic design
// (§III-A). Tasks are submitted serially with read/write access
// declarations on data handles; the runtime infers dependencies exactly as
// a superscalar processor renames registers — a writer depends on the
// previous writer and every reader since, a reader depends on the previous
// writer — and executes ready tasks on a pool of workers.
//
// Centralized dependency tracking is what distinguishes this model from
// the systolic runtime: every submission serializes through the tracking
// structures, whereas PULSAR's dataflow resolves locally per channel. The
// benchmark harness uses that difference to reproduce the paper's
// runtime-comparison findings.
package quark

import (
	"fmt"
	"sync"
)

// Access declares how a task uses one handle.
type Access int

const (
	// Read declares shared, read-only use.
	Read Access = iota
	// Write declares exclusive, mutating use (covers read-modify-write).
	Write
)

// Dep pairs a data handle with an access mode. Handles may be any
// comparable value; pointers to tiles are typical.
type Dep struct {
	Handle any
	Mode   Access
}

// R builds a read dependency.
func R(h any) Dep { return Dep{Handle: h, Mode: Read} }

// W builds a write dependency.
func W(h any) Dep { return Dep{Handle: h, Mode: Write} }

type task struct {
	label   string
	fn      func()
	pending int     // unsatisfied dependencies
	succs   []*task // tasks waiting on this one
	seq     int
	done    bool
}

// lastUse tracks the renaming state of one handle.
type lastUse struct {
	writer  *task
	readers []*task
}

// Runtime is a task-superscalar execution engine. Submit tasks from one
// goroutine, then Wait for completion. A Runtime may be reused for
// multiple Submit/Wait rounds.
type Runtime struct {
	workers int
	window  int // maximum in-flight tasks; 0 = unbounded

	mu       sync.Mutex
	cond     *sync.Cond
	ready    []*task
	uses     map[any]*lastUse
	inflight int
	seq      int
	started  bool
	closed   bool
	wg       sync.WaitGroup
}

// New creates a runtime with the given number of worker goroutines
// (minimum 1). Workers start on first submission and stop at Close.
func New(workers int) *Runtime {
	return NewWithWindow(workers, 0)
}

// NewWithWindow creates a runtime whose task window is bounded: Submit
// blocks while `window` tasks are already in flight. QUARK uses the same
// mechanism to cap the memory held by pending task descriptors during long
// submission loops; window <= 0 means unbounded.
func NewWithWindow(workers, window int) *Runtime {
	if workers < 1 {
		workers = 1
	}
	r := &Runtime{workers: workers, window: window, uses: map[any]*lastUse{}}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Submit enqueues a task with the given label, body and data accesses.
// Submission order defines dependency order, as in QUARK.
func (r *Runtime) Submit(label string, fn func(), deps ...Dep) {
	t := &task{label: label, fn: fn}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		panic("quark: Submit after Close")
	}
	for r.window > 0 && r.inflight >= r.window {
		r.cond.Wait()
	}
	t.seq = r.seq
	r.seq++
	r.inflight++

	// Dependency inference. A task touching the same handle twice is
	// legal; Write subsumes Read.
	seen := map[any]Access{}
	for _, d := range deps {
		if prev, dup := seen[d.Handle]; dup {
			if prev == Write || d.Mode == Read {
				continue
			}
		}
		seen[d.Handle] = d.Mode

		u := r.uses[d.Handle]
		if u == nil {
			u = &lastUse{}
			r.uses[d.Handle] = u
		}
		switch d.Mode {
		case Read:
			depend(u.writer, t)
			u.readers = append(u.readers, t)
		case Write:
			depend(u.writer, t)
			for _, rd := range u.readers {
				depend(rd, t)
			}
			u.writer = t
			u.readers = nil
		}
	}
	if t.pending == 0 {
		r.ready = append(r.ready, t)
		r.cond.Signal()
	}
	if !r.started {
		r.started = true
		for i := 0; i < r.workers; i++ {
			r.wg.Add(1)
			go r.worker()
		}
	}
	r.mu.Unlock()
}

// depend makes t wait for pred. Must run with the runtime lock held: a
// predecessor that already completed (done under the same lock) imposes no
// dependency, and duplicates are filtered by a linear scan (fan-outs are
// small in tile algorithms).
func depend(pred, t *task) {
	if pred == nil || pred == t || pred.done {
		return
	}
	for _, s := range pred.succs {
		if s == t {
			return
		}
	}
	pred.succs = append(pred.succs, t)
	t.pending++
}

func (r *Runtime) worker() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for len(r.ready) == 0 && !r.closed {
			r.cond.Wait()
		}
		if len(r.ready) == 0 && r.closed {
			r.mu.Unlock()
			return
		}
		// FIFO by submission order keeps the schedule close to QUARK's.
		t := r.ready[0]
		r.ready = r.ready[1:]
		r.mu.Unlock()

		t.fn()

		r.mu.Lock()
		t.done = true
		for _, s := range t.succs {
			s.pending--
			if s.pending == 0 {
				r.ready = append(r.ready, s)
			}
		}
		if len(t.succs) > 0 {
			r.cond.Broadcast()
		}
		r.inflight--
		if r.inflight == 0 || (r.window > 0 && r.inflight == r.window-1) {
			r.cond.Broadcast() // wake Wait and window-blocked Submit
		}
		r.mu.Unlock()
	}
}

// Wait blocks until every submitted task has completed. The dependency
// state is reset afterwards so the runtime can be reused.
func (r *Runtime) Wait() {
	r.mu.Lock()
	for r.inflight > 0 {
		r.cond.Wait()
	}
	r.uses = map[any]*lastUse{}
	r.mu.Unlock()
}

// Close waits for completion and stops the workers.
func (r *Runtime) Close() {
	r.Wait()
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	if r.started {
		r.wg.Wait()
	}
}

// Stats describes the current engine state, for tests.
func (r *Runtime) Stats() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("submitted=%d inflight=%d ready=%d", r.seq, r.inflight, len(r.ready))
}
