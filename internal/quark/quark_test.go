package quark

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWriteAfterWriteOrder(t *testing.T) {
	r := New(4)
	defer r.Close()
	h := "x"
	var order []int
	var mu sync.Mutex
	for i := 0; i < 20; i++ {
		i := i
		r.Submit("w", func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}, W(h))
	}
	r.Wait()
	for i := range order {
		if order[i] != i {
			t.Fatalf("WAW order violated: %v", order)
		}
	}
}

func TestReadersRunConcurrentlyBetweenWriters(t *testing.T) {
	r := New(4)
	defer r.Close()
	h := "x"
	var phase atomic.Int32 // 0 before writer1, 1 after, 2 after writer2
	var readersSeen atomic.Int32
	r.Submit("w1", func() { phase.Store(1) }, W(h))
	var wg sync.WaitGroup
	wg.Add(3)
	for i := 0; i < 3; i++ {
		r.Submit("r", func() {
			defer wg.Done()
			if phase.Load() != 1 {
				t.Error("reader ran before writer 1 or after writer 2")
			}
			readersSeen.Add(1)
			time.Sleep(5 * time.Millisecond)
		}, R(h))
	}
	r.Submit("w2", func() {
		if readersSeen.Load() != 3 {
			t.Error("writer 2 ran before all readers")
		}
		phase.Store(2)
	}, W(h))
	r.Wait()
	wg.Wait()
}

func TestIndependentTasksRunInParallel(t *testing.T) {
	r := New(4)
	defer r.Close()
	var running, peak atomic.Int32
	var wg sync.WaitGroup
	wg.Add(4)
	for i := 0; i < 4; i++ {
		i := i
		r.Submit("p", func() {
			defer wg.Done()
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
			running.Add(-1)
		}, W(i))
	}
	r.Wait()
	wg.Wait()
	if peak.Load() < 2 {
		t.Fatalf("independent tasks never overlapped (peak %d)", peak.Load())
	}
}

func TestDependencyOnFinishedTask(t *testing.T) {
	// A task submitted long after its predecessor completed must still run.
	r := New(2)
	defer r.Close()
	var a, b atomic.Bool
	r.Submit("first", func() { a.Store(true) }, W("h"))
	r.Wait()
	r.Submit("second", func() {
		if !a.Load() {
			t.Error("ordering broken")
		}
		b.Store(true)
	}, W("h"))
	r.Wait()
	if !b.Load() {
		t.Fatal("second task never ran")
	}
}

func TestRandomGraphMatchesSequential(t *testing.T) {
	// Random read/write programs over a small heap must produce the same
	// final memory as sequential execution.
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		const cells = 6
		const tasks = 120
		type op struct {
			dst, src1, src2 int
			coef            float64
		}
		prog := make([]op, tasks)
		for i := range prog {
			prog[i] = op{rng.Intn(cells), rng.Intn(cells), rng.Intn(cells),
				1 + rng.Float64()}
		}
		// Sequential.
		want := make([]float64, cells)
		for i := range want {
			want[i] = float64(i + 1)
		}
		for _, o := range prog {
			want[o.dst] = o.coef*want[o.src1] + want[o.src2]
		}
		// Parallel.
		got := make([]float64, cells)
		for i := range got {
			got[i] = float64(i + 1)
		}
		r := New(4)
		for _, o := range prog {
			o := o
			r.Submit("op", func() {
				got[o.dst] = o.coef*got[o.src1] + got[o.src2]
			}, W(o.dst), R(o.src1), R(o.src2))
		}
		r.Close()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: cell %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestDuplicateHandleInOneTask(t *testing.T) {
	r := New(2)
	defer r.Close()
	x := 0.0
	r.Submit("init", func() { x = 2 }, W("h"))
	// Same handle read and written by one task must not self-deadlock.
	r.Submit("square", func() { x = x * x }, R("h"), W("h"))
	r.Wait()
	if x != 4 {
		t.Fatalf("x = %v", x)
	}
}

func TestWaitReusable(t *testing.T) {
	r := New(3)
	defer r.Close()
	var n atomic.Int32
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			r.Submit("t", func() { n.Add(1) }, W("h"))
		}
		r.Wait()
		if int(n.Load()) != (round+1)*10 {
			t.Fatalf("round %d: %d tasks done", round, n.Load())
		}
	}
}

func TestSubmitAfterClosePanics(t *testing.T) {
	r := New(1)
	r.Submit("t", func() {}, W("h"))
	r.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Submit after Close must panic")
		}
	}()
	r.Submit("late", func() {}, W("h"))
}

func TestWindowBoundsInflight(t *testing.T) {
	const window = 3
	r := NewWithWindow(2, window)
	defer r.Close()
	var peak, cur atomic.Int32
	var submitted atomic.Int32
	for i := 0; i < 30; i++ {
		submitted.Add(1)
		r.Submit("w", func() {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		}, W(rand.Int())) // independent handles
	}
	r.Wait()
	if submitted.Load() != 30 {
		t.Fatal("not all submitted")
	}
	if peak.Load() > window {
		t.Fatalf("inflight peak %d exceeded window %d", peak.Load(), window)
	}
}

func TestWindowCorrectnessUnderDependencies(t *testing.T) {
	// A tight window must not deadlock or reorder dependent tasks.
	r := NewWithWindow(2, 2)
	defer r.Close()
	var order []int
	var mu sync.Mutex
	for i := 0; i < 25; i++ {
		i := i
		r.Submit("w", func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}, W("h"))
	}
	r.Wait()
	for i := range order {
		if order[i] != i {
			t.Fatalf("order violated with window: %v", order)
		}
	}
}

func TestNoDepsTasksAllRun(t *testing.T) {
	r := New(4)
	defer r.Close()
	var n atomic.Int32
	for i := 0; i < 50; i++ {
		r.Submit("free", func() { n.Add(1) })
	}
	r.Wait()
	if n.Load() != 50 {
		t.Fatalf("ran %d of 50", n.Load())
	}
}
