package service

// Fleet degradation end-to-end: kill one agent rank mid-job over a real TCP
// mesh and prove the job is requeued onto the survivors, completes with a
// correct result, and that the eviction shows up in /metrics and /healthz.

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pulsarqr/internal/transport"
)

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return string(body)
}

// resilientTCPMesh dials an n-rank in-process TCP mesh with reconnect mode
// on, so a crashed rank is declared dead only after the redial budget.
func resilientTCPMesh(t *testing.T, n int) []transport.Endpoint {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	eps := make([]transport.Endpoint, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eps[i], errs[i] = transport.DialTCP(transport.TCPConfig{
				Rank:              i,
				Peers:             peers,
				Listener:          lns[i],
				RendezvousTimeout: 10 * time.Second,
				Reconnect:         200 * time.Millisecond,
				ReconnectBackoff:  2 * time.Millisecond,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return eps
}

// TestServerFleetSurvivesAgentDeath kills one of two agents while a job is
// running. The job's session dies with the rank; the server must evict the
// rank, requeue the job within its retry budget, and finish it on the
// surviving agent — with the whole story visible in metrics and health.
func TestServerFleetSurvivesAgentDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet chaos test skipped in -short mode")
	}
	eps := resilientTCPMesh(t, 3)

	agents := make([]*Agent, 2)
	agentDone := make([]chan error, 2)
	for i := 0; i < 2; i++ {
		ag, err := NewAgent(eps[1+i], 2, t.Logf)
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = ag
		agentDone[i] = make(chan error, 1)
		go func(i int) { agentDone[i] <- agents[i].Run(context.Background()) }(i)
	}

	s, err := NewServer(Config{Threads: 2, QueueCap: 8, MaxConcurrent: 2, Ep: eps[0], Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}

	spec := JobSpec{M: 1024, N: 512, NB: 32, IB: 8, Seed: 61, MaxRetries: 2, RetryBackoffMS: 5}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Crash agent rank 2 the moment the job starts running, so its session
	// spans the dead rank and must be retried on the survivors.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if state, _ := j.State(); state == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	eps[2].(transport.Crasher).Crash()

	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("job did not finish after the agent death")
	}
	state, msg := j.State()
	if state != StateDone {
		t.Fatalf("job state = %s (%s), want done on the surviving ranks", state, msg)
	}
	if !j.Result().OK {
		t.Fatalf("retried job residual %g", j.Result().Residual)
	}
	checkResultR(t, "survivor", j.Result().R, oracleR(t, spec))
	if j.Attempts() < 1 {
		t.Fatal("job completed with zero retries; the test never exercised requeue")
	}

	// The eviction and the requeue are both visible in the counters.
	if got := s.Metrics().Evicted.Load(); got < 1 {
		t.Errorf("evictions = %d, want >= 1", got)
	}
	if got := s.Metrics().Requeued.Load(); got < 1 {
		t.Errorf("requeued = %d, want >= 1", got)
	}
	if !s.Degraded() {
		t.Error("fleet not marked degraded after losing a rank")
	}
	if got := s.AgentsLive(); got != 2 {
		t.Errorf("AgentsLive = %d, want 2 (server + surviving agent)", got)
	}

	// The same story through the HTTP surface.
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body := httpGet(t, srv.URL+"/metrics")
	for _, want := range []string{"qrserve_agent_evictions_total", "qrserve_jobs_requeued_total", "qrserve_fleet_degraded 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	var health struct {
		OK        bool `json:"ok"`
		Ranks     int  `json:"ranks"`
		RanksLive int  `json:"ranks_live"`
		Degraded  bool `json:"degraded"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/healthz")), &health); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if !health.Degraded || health.RanksLive != 2 || health.Ranks != 3 {
		t.Errorf("healthz = %+v, want degraded with 2 of 3 ranks live", health)
	}

	s.Close()
	// The surviving agent drains on the shutdown broadcast; the crashed
	// one's Run can only end in an error, which is not this test's concern.
	select {
	case err := <-agentDone[0]:
		if err != nil {
			t.Errorf("surviving agent exited with %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("surviving agent did not exit after shutdown broadcast")
	}
	agents[0].Close()
	for _, ep := range eps {
		ep.Close()
	}
}
