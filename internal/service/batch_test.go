package service

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"pulsarqr/internal/batch"
	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/qr"
)

func newBatchTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, &Client{Base: ts.URL, HTTP: ts.Client()}
}

// seqOracleR canonicalizes the sequential tree-QR reference's R for
// comparison with the batch path.
func seqOracleR(t *testing.T, a *matrix.Mat) *matrix.Mat {
	t.Helper()
	f, err := qr.Factorize(matrix.FromDense(a, 64), nil, qr.Options{NB: 64, IB: 16})
	if err != nil {
		t.Fatal(err)
	}
	r := f.R()
	batch.Canonicalize(r)
	return r
}

// The headline batch requirement: a 10k-matrix batch of 32×32 QRs
// round-trips through POST /v1/batch with every R elementwise equal to a
// direct FactorWS and the sequential tree oracle, the checksum verified, and
// no goroutines leaked by the stream machinery.
func TestBatchEndToEnd(t *testing.T) {
	s, _, c := newBatchTestServer(t, Config{Threads: 4, BatchStreams: 2})

	count := 10_000
	if testing.Short() {
		count = 1_000
	}
	rng := rand.New(rand.NewSource(21))
	mats := make([]*matrix.Mat, count)
	for i := range mats {
		mats[i] = matrix.NewRand(32, 32, rng)
	}

	before := runtime.NumGoroutine()
	got := make([]*matrix.Mat, count)
	tr, err := c.Batch(mats, func(res batch.Result) error {
		if res.Index < 0 || res.Index >= count || got[res.Index] != nil {
			t.Errorf("bad or duplicate result index %d", res.Index)
		}
		got[res.Index] = res.R
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Done != count || tr.Shed != 0 {
		t.Fatalf("trailer done=%d shed=%d, want %d/0", tr.Done, tr.Shed, count)
	}

	// Every result is bitwise what the batch engine computes locally…
	ws := kernels.NewWorkspace()
	for i, a := range mats {
		want := a.Clone()
		if err := batch.FactorWS(ws, want, 0); err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(got[i], want); d != 0 {
			t.Fatalf("matrix %d: served R differs from FactorWS by %g", i, d)
		}
	}
	// …and a sample matches the sequential tree-QR oracle elementwise.
	for i := 0; i < count; i += count / 50 {
		want := seqOracleR(t, mats[i])
		if d := matrix.MaxAbsDiff(got[i].View(0, 0, 32, 32), want); d > 1e-11 {
			t.Fatalf("matrix %d: served R differs from sequential oracle by %g", i, d)
		}
	}

	// The stream machinery (scheduler goroutine, pipe writer) must be gone.
	// Idle keepalive connections hold goroutines on both sides; drop them so
	// the count isolates what the batch path itself left behind.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		c.http().CloseIdleConnections()
		time.Sleep(20 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines grew from %d to %d across the batch stream", before, g)
	}
	if got := s.metrics.BatchRequests.Load(); got != 1 {
		t.Errorf("BatchRequests = %d, want 1", got)
	}
}

// Batch admission is its own class: with the single batch slot held open,
// new batch streams are shed with 429 + Retry-After while the job queue
// stays fully available — and vice versa, a full job queue does not impede
// batch admission.
func TestBatchBackpressureSeparateClass(t *testing.T) {
	_, ts, c := newBatchTestServer(t, Config{
		Threads: 2, QueueCap: 2, MaxConcurrent: 1, BatchStreams: 1,
	})

	// Hold the only batch slot: a request whose body stalls after the header.
	pr, pw := io.Pipe()
	go func() {
		batch.WriteRequestHeader(pw, 100) // declared but never delivered
	}()
	type respErr struct {
		resp *http.Response
		err  error
	}
	heldc := make(chan respErr, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/octet-stream", pr)
		heldc <- respErr{resp, err}
	}()

	// Wait until the slot is actually taken (the 429 below depends on it).
	waitUntil(t, func() bool {
		m, err := c.Metrics()
		return err == nil && strings.Contains(m, "qrserve_batch_active 1")
	})

	// A second batch arrival is shed with 429 + Retry-After.
	var body bytes.Buffer
	batch.WriteRequestHeader(&body, 0)
	resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second batch stream: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carried no Retry-After header")
	}

	// The job tenant is unaffected by batch saturation.
	if _, code, err := c.Submit(JobSpec{M: 64, N: 32, NB: 32, IB: 8, Tree: "flat", Seed: 1}, true); err != nil || code != http.StatusOK {
		t.Fatalf("job submit during batch saturation: code %d, err %v", code, err)
	}

	// Ending the stalled body (clean EOF, 100 matrices short) ends the held
	// stream with partial-progress accounting: 0 done, 100 shed, and a
	// verifiable trailer.
	pw.Close()
	he := <-heldc
	if he.err != nil {
		t.Fatalf("held stream: %v", he.err)
	}
	defer he.resp.Body.Close()
	rd, err := batch.NewResultReader(he.resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for {
		res, tr, err := rd.Next()
		if err != nil {
			t.Fatalf("held stream response: %v", err)
		}
		if res != nil {
			t.Fatalf("held stream emitted result %d with no delivered matrices", res.Index)
		}
		if tr != nil {
			if tr.Done != 0 || tr.Shed != 100 {
				t.Fatalf("partial trailer done=%d shed=%d, want 0/100", tr.Done, tr.Shed)
			}
			break
		}
	}
}

// A full job queue sheds jobs with Retry-After but leaves batch admission
// open.
func TestJobQueueFullRetryAfterBatchUnaffected(t *testing.T) {
	s, ts, c := newBatchTestServer(t, Config{
		Threads: 1, QueueCap: 1, MaxConcurrent: 1, BatchStreams: 1, DeadlockTimeout: -1,
	})

	// Wedge the single execution slot and fill the queue.
	slow := JobSpec{M: 256, N: 256, NB: 8, IB: 4, Tree: "flat", Seed: 3}
	if _, err := s.Submit(slow); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return s.metrics.Running.Load() == 1 })
	if _, err := s.Submit(slow); err != nil {
		t.Fatal(err)
	}

	// Now the queue is full: a JSON submit gets 429 + Retry-After.
	resp, err := ts.Client().Post(ts.URL+"/v1/factorize", "application/json",
		strings.NewReader(`{"m":64,"n":32,"nb":32,"ib":8,"tree":"flat","seed":9}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit on full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("factorize 429 carried no Retry-After header")
	}

	// Batch still admits: the classes are independent.
	rng := rand.New(rand.NewSource(22))
	mats := []*matrix.Mat{matrix.NewRand(8, 8, rng)}
	tr, err := c.Batch(mats, nil)
	if err != nil {
		t.Fatalf("batch during job-queue saturation: %v", err)
	}
	if tr.Done != 1 {
		t.Fatalf("batch done = %d, want 1", tr.Done)
	}
}

// The client's 429 retry honors Retry-After (seconds) from the server and
// falls back to Backoff when the header is absent or unparseable.
func TestClientRetryAfter(t *testing.T) {
	var hits, noHeaderHits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs/1":
			hits++
			if hits <= 2 {
				w.Header().Set("Retry-After", "0")
				writeJSON(w, http.StatusTooManyRequests, errorResponse{"busy"})
				return
			}
			writeJSON(w, http.StatusOK, JobView{ID: 1, Status: "done"})
		case "/v1/jobs/2":
			noHeaderHits++
			if noHeaderHits <= 1 {
				writeJSON(w, http.StatusTooManyRequests, errorResponse{"busy"})
				return
			}
			writeJSON(w, http.StatusOK, JobView{ID: 2, Status: "done"})
		}
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL, HTTP: ts.Client(), Retry429: 3, Backoff: 10 * time.Millisecond}
	v, err := c.Job(1, false)
	if err != nil || v.Status != "done" {
		t.Fatalf("retried request: %v (status %q)", err, v.Status)
	}
	if hits != 3 {
		t.Fatalf("server saw %d attempts, want 3", hits)
	}

	start := time.Now()
	if _, err := c.Job(2, false); err != nil {
		t.Fatalf("fallback retry: %v", err)
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("fallback retry waited only %v, want >= Backoff", el)
	}

	// Default client (Retry429 = 0) surfaces the 429 immediately.
	hits = 0
	c0 := &Client{Base: ts.URL, HTTP: ts.Client()}
	if _, err := c0.Job(1, false); err == nil {
		t.Fatal("default client swallowed a 429")
	}
	if hits != 1 {
		t.Fatalf("default client made %d attempts, want 1", hits)
	}
}

// Server shutdown mid-stream unblocks the batch handler promptly with
// partial accounting rather than wedging on in-flight work.
func TestBatchShutdownMidStream(t *testing.T) {
	s, ts, _ := newBatchTestServer(t, Config{Threads: 2, BatchStreams: 1})

	pr, pw := io.Pipe()
	go func() {
		batch.WriteRequestHeader(pw, 50)
		rng := rand.New(rand.NewSource(23))
		var buf []byte
		for i := 0; i < 10; i++ { // deliver a fifth, then stall
			buf = batch.AppendMatrix(buf[:0], matrix.NewRand(16, 16, rng))
			if _, err := pw.Write(buf); err != nil {
				return
			}
		}
	}()
	respc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/octet-stream", pr)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		respc <- err
	}()

	waitUntil(t, func() bool { return s.metrics.BatchRequests.Load() == 1 })
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("server Close wedged behind an open batch stream")
	}
	pw.CloseWithError(io.ErrClosedPipe) // release the client-side writer
	select {
	case <-respc:
	case <-time.After(10 * time.Second):
		t.Fatal("batch request never returned after shutdown")
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
