package service

import (
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"time"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/obs"
	"pulsarqr/internal/plan"
	"pulsarqr/internal/simulate"
)

// costModel fits the runtime's real cost structure online: every completed
// job contributes one sample (useful flops f, VDP firings t, core-seconds b),
// and the model solves the ridge-regularized least squares for
//
//	b ≈ secondsPerFlop·f + secondsPerTask·t
//
// Separating the two terms is what makes predictions transfer across tile
// sizes: a single achieved-rate anchor folds per-task overhead into the
// flop rate at whatever nb the measured jobs happened to use, which makes
// the simulator systematically over-reward small tiles (4x the tasks, same
// flops). The split is identifiable only when the samples vary in their
// flops-per-task ratio — jobs at different nb — so until the workload mix
// excites that dimension, the ridge anchor keeps the solution at the priors.
type costModel struct {
	mu                      sync.Mutex
	sff, sft, stt, sfb, stb float64 // normal-equation accumulators
	n                       int64
}

func (cm *costModel) add(flops, tasks, coreSeconds float64) {
	if !(flops > 0) || !(tasks > 0) || !(coreSeconds > 0) {
		return
	}
	cm.mu.Lock()
	defer cm.mu.Unlock()
	cm.sff += flops * flops
	cm.sft += flops * tasks
	cm.stt += tasks * tasks
	cm.sfb += flops * coreSeconds
	cm.stb += tasks * coreSeconds
	cm.n++
}

func (cm *costModel) samples() int64 {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return cm.n
}

// solve returns the fitted (secondsPerFlop, secondsPerTask). The ridge terms
// are scaled to the diagonal so they are unit-free: with collinear samples
// (every job at one nb) the fit degrades gracefully toward the priors
// instead of exploding along the unidentifiable direction.
func (cm *costModel) solve(priorSPF, priorSPT float64) (spf, spt float64, ok bool) {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if cm.n < 2 {
		return 0, 0, false
	}
	l1 := 1e-3 * cm.sff
	l2 := 1e-3 * cm.stt
	a11 := cm.sff + l1
	a22 := cm.stt + l2
	b1 := cm.sfb + l1*priorSPF
	b2 := cm.stb + l2*priorSPT
	det := a11*a22 - cm.sft*cm.sft
	if !(det > 0) {
		return 0, 0, false
	}
	spf = (b1*a22 - b2*cm.sft) / det
	spt = (a11*b2 - cm.sft*b1) / det
	if !(spf > 0) || math.IsNaN(spt) || spt < 0 {
		return 0, 0, false
	}
	return spf, spt, true
}

// recordCostSample feeds one completed job into the online cost model.
//
// The fit wants the core-seconds the simulator would book for this
// configuration — not wall core-seconds (the DES models idle time itself;
// charging real idleness as work double-counts it and turns every prediction
// pessimistic), and not the pool's measured busy time either (the real
// runtime also idles on synchronization the DES does not model, which would
// leave that idleness uncharged and turn predictions optimistic). The
// self-consistent deflator is the simulator's own predicted utilization for
// the exact configuration the job ran: prediction later inflates work by
// 1/utilization again, so a calibrated model reproduces measured wall time
// by construction and the calibration harness can hold it to a tolerance.
func (s *Server) recordCostSample(spec JobSpec, res *Result, elapsed time.Duration, waitSec float64) {
	flops := kernels.FlopsQR(spec.M, spec.N)
	workers := float64(s.cfg.Threads * s.AgentsLive())
	if workers < 1 {
		workers = 1
	}
	u := 1.0
	opts, optErr := spec.Options()
	if optErr == nil && res.Stats.Firings > 0 && res.Stats.Firings < 1<<20 {
		mach, _ := s.machineModel()
		mach.Nodes = s.AgentsLive()
		r := simulate.Run(simulate.Workload{M: spec.M, N: spec.N, Opts: opts},
			mach, simulate.SystolicProfile)
		if r.Utilization > 0.02 {
			u = r.Utilization
		}
	} else if tsec := elapsed.Seconds() * float64(s.cfg.Threads); tsec > 0 && waitSec > 0 {
		// A graph too large to re-simulate per completion: fall back to the
		// local pool's measured busy fraction.
		u = 1 - waitSec/tsec
		if u < 0.05 {
			u = 0.05
		}
	}
	s.costs.add(flops, float64(res.Stats.Firings), elapsed.Seconds()*workers*u)
}

// machineModel assembles the server's current best machine model: the
// LocalHost baseline overridden by whatever this process has measured —
// per-flop and per-task costs from the online cost model, (α, β) from the
// link estimator. measured reports whether anything beyond the defaults went
// in. This is the single source both GET /v1/machine-model and the planner
// use, so what the endpoint publishes is exactly what dispatch plans with.
func (s *Server) machineModel() (mach simulate.Machine, measured bool) {
	mach = simulate.LocalHost(s.Ranks(), s.cfg.Threads+1)
	// Priors for the cost fit: the static baseline's rate anchored to the
	// trailing-update kernel's efficiency — the simulator multiplies
	// CoreGflops by the per-kernel Eff factors, and tsmqr dominates a tile
	// QR's flops, so anchoring there keeps measurement and simulation from
	// counting the kernel efficiency twice.
	priorSPF := 1 / (mach.CoreGflops * 1e9 * mach.Eff[simulate.Tsmqr])
	if spf, spt, ok := s.costs.solve(priorSPF, mach.TaskOverhead); ok {
		mach.CoreGflops = 1 / (spf * 1e9 * mach.Eff[simulate.Tsmqr])
		if spt <= simulate.MaxCostSeconds {
			mach.TaskOverhead = spt
		}
		measured = true
	} else if flops, busy := math.Float64frombits(s.metrics.flopBits.Load()),
		math.Float64frombits(s.metrics.busyBits.Load()); busy > 0 && flops > 0 {
		// Fewer than two samples: fall back to the single achieved-rate
		// anchor over every completed job, spread across the fleet's workers.
		workers := float64(s.cfg.Threads * s.AgentsLive())
		if workers < 1 {
			workers = 1
		}
		achieved := flops / busy / 1e9 / workers
		mach.CoreGflops = achieved / mach.Eff[simulate.Tsmqr]
		measured = true
	}
	if est := s.obs.Estimator(); est != nil {
		if a, b, ok := est.Aggregate(); ok {
			mach.AlphaInter = a
			mach.BetaInter = b
			measured = true
		}
	}
	if mach.Validate() != nil {
		// A degenerate measurement (e.g. an absurd achieved rate from a
		// single tiny job) must never poison planning: fall back to the
		// static baseline.
		return simulate.LocalHost(s.Ranks(), s.cfg.Threads+1), false
	}
	return mach, measured
}

// modelEpoch quantizes the machine model's evidence into a cache epoch: it
// advances every 128 link samples, every 2 cost-model samples, or every 8
// completed jobs, so plan-cache entries age out as fresh evidence shifts the
// model but repeat shapes in between plan in microseconds.
func (s *Server) modelEpoch() uint64 {
	var adds int64
	if est := s.obs.Estimator(); est != nil {
		adds = est.Samples()
	}
	completed := s.metrics.Completed.Load()
	return uint64(adds/128)*1000003 + uint64(s.costs.samples()/2)*31 + uint64(completed/8)
}

// planJob returns the spec the job should actually run: j.Spec itself
// unless autotuning is on for it, in which case the planner's chosen
// configuration overrides NB/IB/H/Tree (shape, data and policy fields ride
// through untouched). Planning failures degrade to the literal spec — the
// autotuner must never turn a runnable job into a failed one.
func (s *Server) planJob(j *Job) JobSpec {
	spec := j.Spec
	if !spec.Autotune && !s.cfg.Autotune {
		return spec
	}
	mach, _ := s.machineModel()
	mach.Nodes = s.AgentsLive()
	start := time.Now()
	d, err := s.planner.Plan(plan.Spec{M: spec.M, N: spec.N}, mach, s.modelEpoch())
	if err != nil {
		s.cfg.Logf("job %d: plan failed (%v); running literal spec", j.ID, err)
		return spec
	}
	planMS := float64(time.Since(start)) / 1e6
	if d.FromCache {
		d.PlanMS = planMS // a cache hit's cost is the lookup, not the sweep
	}
	s.metrics.ObservePlan(time.Since(start), d.FromCache)
	s.obs.Emit(obs.Event{Kind: obs.EvPlan, Class: "job", Job: j.ID,
		Tenant: spec.Tenant, DurMS: d.PlanMS, Detail: d.Rationale})
	j.setPlan(&d)
	c := d.Choice
	spec.NB, spec.IB, spec.H, spec.Tree = c.NB, c.IB, c.H, c.Tree
	s.cfg.Logf("job %d planned: %s (predicted %.3gms, %.2fx vs default, cache=%v, %.3gms to plan)",
		j.ID, c.Describe(), c.PredictedMS, d.SpeedupVsDefault, d.FromCache, d.PlanMS)
	return spec
}

// recordPlanOutcome closes the loop on a planned job that completed: the
// actual-over-predicted ratio feeds the calibration histogram, and the
// status page's last-plan record updates so an operator sees predicted vs
// actual without scraping metrics.
func (s *Server) recordPlanOutcome(j *Job, elapsed time.Duration) {
	d := j.Plan()
	if d == nil || d.Choice.PredictedMS <= 0 {
		return
	}
	actualMS := float64(elapsed) / float64(time.Millisecond)
	s.metrics.ObservePlanAccuracy(actualMS / d.Choice.PredictedMS)
	s.mu.Lock()
	s.lastPlan = lastPlanInfo{
		job:         j.ID,
		config:      d.Choice.Describe(),
		predictedMS: d.Choice.PredictedMS,
		actualMS:    actualMS,
	}
	s.mu.Unlock()
}

// PlannerStatus is the planner block of GET /v1/status.
type PlannerStatus struct {
	Enabled         bool    `json:"enabled"` // fleet-wide -autotune (jobs can still opt in)
	Plans           int64   `json:"plans"`   // decisions computed fresh
	CacheHits       int64   `json:"cache_hits"`
	Epoch           uint64  `json:"epoch"` // current machine-model epoch
	LastJob         uint32  `json:"last_job,omitempty"`
	LastConfig      string  `json:"last_config,omitempty"`
	LastPredictedMS float64 `json:"last_predicted_ms,omitempty"`
	LastActualMS    float64 `json:"last_actual_ms,omitempty"`
}

func (s *Server) plannerStatus() PlannerStatus {
	computed, hits := s.planner.Stats()
	s.mu.Lock()
	last := s.lastPlan
	s.mu.Unlock()
	return PlannerStatus{
		Enabled:         s.cfg.Autotune,
		Plans:           computed,
		CacheHits:       hits,
		Epoch:           s.modelEpoch(),
		LastJob:         last.job,
		LastConfig:      last.config,
		LastPredictedMS: last.predictedMS,
		LastActualMS:    last.actualMS,
	}
}

// PlanResponse is the POST /v1/plan body: the planner's decision for the
// posted JobSpec against the machine model the server would really use,
// echoed back so callers can reproduce the decision offline.
type PlanResponse struct {
	Decision plan.Decision    `json:"decision"`
	Machine  simulate.Machine `json:"machine"`
	Measured bool             `json:"measured"` // model carries live measurements
	Epoch    uint64           `json:"epoch"`
}

// handlePlan serves POST /v1/plan: a dry-run of exactly the planning that
// JobSpec.Autotune would do at dispatch, committing nothing. Uploaded data
// is ignored — only the shape matters — so a dry-run can describe a job
// without shipping its matrix.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request: " + err.Error()})
		return
	}
	spec.Data = nil
	if err := spec.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	mach, measured := s.machineModel()
	mach.Nodes = s.AgentsLive()
	epoch := s.modelEpoch()
	var target float64
	if spec.DeadlineMS > 0 {
		// On a dry run the queue deadline doubles as a completion target:
		// the caller is asking "what would you pick to land inside this".
		target = float64(spec.DeadlineMS)
	}
	start := time.Now()
	d, err := s.planner.Plan(plan.Spec{M: spec.M, N: spec.N, TargetMS: target}, mach, epoch)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{err.Error()})
		return
	}
	if d.FromCache {
		d.PlanMS = float64(time.Since(start)) / 1e6
	}
	s.metrics.ObservePlan(time.Since(start), d.FromCache)
	writeJSON(w, http.StatusOK, PlanResponse{Decision: d, Machine: mach, Measured: measured, Epoch: epoch})
}
