package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/obs"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/session"
)

// SessionSpec is the POST /v1/sessions body. NB/IB default to the engine's
// tile configuration when zero; checkpoint_every defaults to the server's
// cadence; ack_only sessions get block receipts without R payloads.
type SessionSpec struct {
	Tenant          string `json:"tenant,omitempty"`
	N               int    `json:"n"`
	NRHS            int    `json:"nrhs,omitempty"`
	NB              int    `json:"nb,omitempty"`
	IB              int    `json:"ib,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`
	AckOnly         bool   `json:"ack_only,omitempty"`
}

// sessionErrStatus maps session-package sentinels onto the HTTP surface.
func sessionErrStatus(err error) int {
	switch {
	case errors.Is(err, session.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, session.ErrBusy):
		return http.StatusConflict
	case errors.Is(err, session.ErrGone):
		return http.StatusGone
	case errors.Is(err, session.ErrClosed), errors.Is(err, session.ErrPoolClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	var req SessionSpec
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		return
	}
	sess, err := s.sessions.Open(req.Tenant, req.N, req.NRHS,
		qr.Options{NB: req.NB, IB: req.IB}, req.CheckpointEvery, req.AckOnly)
	if err != nil {
		if errors.Is(err, session.ErrTableFull) || errors.Is(err, session.ErrTenantFull) {
			// Sessions are capacity, not queued work: Retry-After scales with
			// how full the table is, and frees require a client DELETE or the
			// idle janitor — so the hint is deliberately coarse.
			s.metrics.SessionsRejected.Add(1)
			s.shed429(w, "session", req.Tenant, s.sessions.Stats().Sessions, s.sessions.Cap(), err.Error())
			return
		}
		writeJSON(w, sessionErrStatus(err), errorResponse{err.Error()})
		return
	}
	s.metrics.SessionsOpened.Add(1)
	s.obs.Emit(obs.Event{Kind: obs.EvSessionOpen, Class: "session", Session: sess.ID, Tenant: sess.Tenant})
	s.cfg.Logf("session %s opened: tenant=%q n=%d nrhs=%d every=%d ack=%v",
		sess.ID, sess.Tenant, sess.N, sess.NRHS, sess.Every, sess.Ack)
	writeJSON(w, http.StatusCreated, sess.Info())
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sessions": s.sessions.List()})
}

func (s *Server) sessionFromPath(w http.ResponseWriter, r *http.Request) *session.Session {
	sess, err := s.sessions.Get(r.PathValue("id"))
	if err != nil {
		writeJSON(w, sessionErrStatus(err), errorResponse{err.Error()})
		return nil
	}
	return sess
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionFromPath(w, r)
	if sess == nil {
		return
	}
	writeJSON(w, http.StatusOK, sess.Info())
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sessions.Delete(id); err != nil {
		writeJSON(w, sessionErrStatus(err), errorResponse{err.Error()})
		return
	}
	s.obs.Emit(obs.Event{Kind: obs.EvSessionClose, Class: "session", Session: id})
	s.cfg.Logf("session %s deleted", id)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

// handleSessionR serves the session's current global state as a one-frame
// QSB1 stream: a single update carrying R (and the fold is fresh, so a parked
// session reloads its spine first), then the trailer.
func (s *Server) handleSessionR(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionFromPath(w, r)
	if sess == nil {
		return
	}
	cur, err := sess.Current()
	if err != nil {
		writeJSON(w, sessionErrStatus(err), errorResponse{err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	rw, err := session.NewReplyWriter(w)
	if err != nil {
		return // headers are out; nothing more to say
	}
	if err := rw.WriteUpdate(cur.Blocks, cur.Rows, cur.R); err != nil {
		return
	}
	rw.WriteTrailer(0)
}

// handleSessionAppend serves POST /v1/sessions/{id}/append: a QSA1 stream of
// row blocks in, a QSB1 stream of committed updates out, full duplex — each
// reply frame carries the session's new global R (or a bare receipt for
// ack-only sessions), so the client holds an up-to-date factorization after
// every block it streams. Admission is its own class (cfg.SessionStreams
// slots) shed with 429 + Retry-After, and the response commits to an octet
// stream only once the first append has actually committed: failures before
// that — busy session, deleted session, malformed stream — return clean JSON
// statuses instead of a 200 with an error trailer.
func (s *Server) handleSessionAppend(w http.ResponseWriter, r *http.Request) {
	select {
	case s.sessionSem <- struct{}{}:
		defer func() { <-s.sessionSem }()
	default:
		s.metrics.AppendRejected.Add(1)
		s.shed429(w, "session", "", int(s.metrics.AppendActive.Load()), s.cfg.SessionStreams,
			"session append capacity exhausted; retry later")
		return
	}
	if s.baseCtx.Err() != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{ErrClosed.Error()})
		return
	}
	sess := s.sessionFromPath(w, r)
	if sess == nil {
		return
	}
	ar, err := session.NewAppendReader(r.Body, sess.N, sess.NRHS)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad append stream: " + err.Error()})
		return
	}

	// A client disconnect cancels the stream via the request context; server
	// shutdown must too, since committed-but-unsent updates are recoverable
	// from the checkpoint anyway.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	s.metrics.AppendActive.Add(1)
	defer s.metrics.AppendActive.Add(-1)

	rc := http.NewResponseController(w)
	var rw *session.ReplyWriter
	emit := func(blocks, rows int64, cur *qr.StreamNode) error {
		if rw == nil {
			// First committed append: commit the response to a QSB1 stream.
			// Full duplex lets updates flow while the client is still
			// streaming blocks at us.
			rc.EnableFullDuplex()
			w.Header().Set("Content-Type", "application/octet-stream")
			var err error
			if rw, err = session.NewReplyWriter(w); err != nil {
				return err
			}
		}
		var rm *matrix.Mat
		if cur != nil {
			rm = cur.R
		}
		if err := rw.WriteUpdate(blocks, rows, rm); err != nil {
			return err
		}
		// Appends are interactive — the client blocks on each update to
		// decide its next block — so every frame flushes.
		return rc.Flush()
	}

	start := time.Now()
	var done int64
	var streamErr error
	// Every append stream ends with one structured event and one run-span
	// observation, whichever exit path it takes.
	defer func() {
		detail := fmt.Sprintf("%d blocks", done)
		if streamErr != nil {
			detail += ": " + streamErr.Error()
		}
		s.metrics.ObserveStreamSpan("session", time.Since(start))
		s.obs.Emit(obs.Event{Kind: obs.EvAppendStream, Class: "session",
			Session: sess.ID, Tenant: sess.Tenant,
			DurMS: float64(time.Since(start)) / float64(time.Millisecond), Detail: detail})
	}()
	done, streamErr = sess.AppendStream(ctx, ar.Next, emit)
	if rw == nil {
		// Nothing committed and no bytes out: the error (or the empty
		// stream) still gets a clean status line.
		if streamErr != nil {
			writeJSON(w, sessionErrStatus(streamErr), errorResponse{streamErr.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		var err error
		if rw, err = session.NewReplyWriter(w); err != nil {
			return
		}
	}
	shed := ar.Count() - int(done)
	if shed < 0 {
		shed = 0 // count is a client claim; never trust it below reality
	}
	if streamErr != nil {
		s.cfg.Logf("session %s: append stream ended after %d/%d blocks: %v",
			sess.ID, done, ar.Count(), streamErr)
	} else {
		// Only a cleanly completed stream drains the request body; an
		// aborted one must not block on a client still sending.
		io.Copy(io.Discard, r.Body)
		s.cfg.Logf("session %s: appended %d blocks (%d rows total) in %v",
			sess.ID, done, sess.Info().Rows, time.Since(start))
	}
	rw.WriteTrailer(shed)
}

// writeSessionProm renders the sampled session-table gauges after the
// counter block on /metrics: occupancy, per-tenant shares, and checkpoint
// freshness — the dashboard's view of how much streamed state would survive
// a crash right now.
func (s *Server) writeSessionProm(w io.Writer) {
	st := s.sessions.Stats()
	fmt.Fprintf(w, "# HELP qrserve_sessions_active Streaming sessions registered (loaded or parked).\n# TYPE qrserve_sessions_active gauge\nqrserve_sessions_active %d\n", st.Sessions)
	fmt.Fprintf(w, "# HELP qrserve_sessions_loaded Sessions with a live in-memory spine.\n# TYPE qrserve_sessions_loaded gauge\nqrserve_sessions_loaded %d\n", st.Loaded)
	fmt.Fprintf(w, "# HELP qrserve_tenant_sessions Sessions registered per tenant.\n# TYPE qrserve_tenant_sessions gauge\n")
	tenants := make([]string, 0, len(st.PerTenant))
	for tn := range st.PerTenant {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	for _, tn := range tenants {
		fmt.Fprintf(w, "qrserve_tenant_sessions{tenant=%q} %d\n", tn, st.PerTenant[tn])
	}
	fmt.Fprintf(w, "# HELP qrserve_checkpoint_resident_bytes Bytes held by the latest checkpoint of every session.\n# TYPE qrserve_checkpoint_resident_bytes gauge\nqrserve_checkpoint_resident_bytes %d\n", st.CheckpointBytes)
	if !st.LastCheckpoint.IsZero() {
		fmt.Fprintf(w, "# HELP qrserve_checkpoint_age_seconds Seconds since the most recent durable checkpoint write.\n# TYPE qrserve_checkpoint_age_seconds gauge\nqrserve_checkpoint_age_seconds %g\n", time.Since(st.LastCheckpoint).Seconds())
	}
}
