// Package service implements qrserve: a long-running, multi-tenant
// factorization service that multiplexes concurrent QR jobs onto a warm,
// persistent VSA fleet. One Server owns a persistent worker pool (per-worker
// kernel workspaces stay hot across jobs), persistent transport sessions to
// its fleet (multiplexed per job by transport.Mux), a bounded admission
// queue with priorities and deadlines, and an HTTP/JSON surface.
package service

import (
	"fmt"
	"math/rand"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/qr"
)

// maxDim bounds accepted problem sizes: admission control should reject an
// absurd request at the door, not after it has been allocated.
const maxDim = 1 << 20

// JobSpec is the wire description of one factorization request. The matrix
// is either uploaded (Data, column-major, len M*N) or generated server-side
// from Seed — the latter is what a fleet uses for benchmarking, and it lets
// every rank derive an identical input without shipping the matrix.
type JobSpec struct {
	// Tenant attributes the job for per-tenant accounting: shed events,
	// the /v1/status tenant table. Empty is the anonymous tenant.
	Tenant string `json:"tenant,omitempty"`
	// M, N are the matrix dimensions; tall-skinny (M >= N) required.
	M int `json:"m"`
	N int `json:"n"`
	// NB, IB, H and Tree select the algorithm configuration; zero values
	// take the library defaults (NB=64, IB=16, hierarchical, H=4).
	NB   int    `json:"nb,omitempty"`
	IB   int    `json:"ib,omitempty"`
	H    int    `json:"h,omitempty"`
	Tree string `json:"tree,omitempty"` // "hierarchical", "flat", "binary"
	// Seed generates the input server-side when Data is empty.
	Seed int64 `json:"seed,omitempty"`
	// Data is an optional column-major upload of the matrix entries.
	Data []float64 `json:"data,omitempty"`
	// Priority orders admission: higher runs first; equal priorities are
	// FIFO.
	Priority int `json:"priority,omitempty"`
	// DeadlineMS drops the job if it has not been dispatched within this
	// many milliseconds of admission; zero means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Trace records a full execution trace of this job on every rank; the
	// merged shards are fetched from GET /v1/jobs/{id}/trace once the job
	// is done. The flag rides the control-plane open broadcast, so agents
	// trace exactly the jobs the client asked to trace.
	Trace bool `json:"trace,omitempty"`
	// MaxRetries is the job's retry budget: when its run dies with a fleet
	// member (not a cancellation or an algorithmic failure), the server
	// requeues it onto the surviving ranks up to this many times. Capped
	// at 8; zero means fail on the first peer death.
	MaxRetries int `json:"max_retries,omitempty"`
	// RetryBackoffMS delays each requeue, doubling per attempt; zero takes
	// the service default (100ms).
	RetryBackoffMS int64 `json:"retry_backoff_ms,omitempty"`
	// Autotune asks the server to plan this job's configuration against the
	// fleet's measured machine model before dispatch: explicit NB/IB/H/Tree
	// values are ignored in favor of the planner's pick, and the decision is
	// reported on GET /v1/jobs/{id}. Also enabled fleet-wide by qrserve
	// -autotune.
	Autotune bool `json:"autotune,omitempty"`
}

// maxTenantLen bounds the tenant label: it rides every event and metric
// attribution, so an unbounded client string must not be storable.
const maxTenantLen = 64

// Validate checks the spec without allocating the matrix.
func (sp *JobSpec) Validate() error {
	if len(sp.Tenant) > maxTenantLen {
		return fmt.Errorf("service: tenant label longer than %d bytes", maxTenantLen)
	}
	if sp.M <= 0 || sp.N <= 0 {
		return fmt.Errorf("service: invalid shape %dx%d", sp.M, sp.N)
	}
	if sp.M < sp.N {
		return fmt.Errorf("service: matrix is %dx%d; tall-skinny factorization requires m >= n", sp.M, sp.N)
	}
	if sp.M > maxDim || sp.N > maxDim {
		return fmt.Errorf("service: shape %dx%d exceeds limit %d", sp.M, sp.N, maxDim)
	}
	if len(sp.Data) != 0 && len(sp.Data) != sp.M*sp.N {
		return fmt.Errorf("service: data holds %d entries, want %d (column-major m*n)", len(sp.Data), sp.M*sp.N)
	}
	if _, err := sp.tree(); err != nil {
		return err
	}
	if sp.MaxRetries < 0 || sp.MaxRetries > 8 {
		return fmt.Errorf("service: max_retries %d out of range [0,8]", sp.MaxRetries)
	}
	if sp.RetryBackoffMS < 0 {
		return fmt.Errorf("service: negative retry_backoff_ms %d", sp.RetryBackoffMS)
	}
	return nil
}

func (sp *JobSpec) tree() (qr.TreeKind, error) {
	t, err := qr.ParseTree(sp.Tree)
	if err != nil {
		return 0, fmt.Errorf("service: unknown tree %q (want hierarchical, flat or binary)", sp.Tree)
	}
	return t, nil
}

// Options maps the spec to the qr layer's algorithm configuration.
func (sp *JobSpec) Options() (qr.Options, error) {
	tree, err := sp.tree()
	if err != nil {
		return qr.Options{}, err
	}
	opts := qr.DefaultOptions()
	if sp.NB > 0 {
		opts.NB = sp.NB
	}
	if sp.IB > 0 {
		opts.IB = sp.IB
	}
	if sp.H > 0 {
		opts.H = sp.H
	}
	opts.Tree = tree
	return opts, nil
}

// BuildInputs materializes the input matrix: the dense form (for the
// residual check) and its tiling. Deterministic in the spec, so every rank
// of a fleet constructs the same matrix from the same ctlOpen message.
func (sp *JobSpec) BuildInputs() (*matrix.Tiled, *matrix.Mat, error) {
	if err := sp.Validate(); err != nil {
		return nil, nil, err
	}
	opts, err := sp.Options()
	if err != nil {
		return nil, nil, err
	}
	var d *matrix.Mat
	if len(sp.Data) > 0 {
		d = matrix.New(sp.M, sp.N)
		copy(d.Data, sp.Data)
	} else {
		d = matrix.NewRand(sp.M, sp.N, rand.New(rand.NewSource(sp.Seed)))
	}
	return matrix.FromDense(d, opts.NB), d, nil
}

// Control-plane messages, exchanged as JSON on the reserved mux job 0
// between the server (underlying rank 0) and its fleet agents.
const (
	ctlJob = 0 // reserved mux job id for the control plane
	ctlTag = 0
)

type ctlMsg struct {
	Op   string   `json:"op"` // "open", "cancel", "shutdown"
	Job  uint32   `json:"job,omitempty"`
	Spec *JobSpec `json:"spec,omitempty"`
	// Session is the mux channel id of this attempt. A retried job keeps
	// its Job id but runs each attempt on a fresh session id, so stragglers
	// of a dead attempt can never leak into the rerun.
	Session uint32 `json:"session,omitempty"`
	// Ranks is the member set (real ranks) of the attempt's session; on a
	// degraded fleet it names the survivors. Agents not listed ignore the
	// open. Nil means the whole fleet.
	Ranks []int `json:"ranks,omitempty"`
}
