package service

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pulsarqr/internal/obs"
	"pulsarqr/internal/simulate"
)

// testObserver builds an Observer with no slog sink: events land only in
// the flight ring, which is what these tests inspect.
func testObserver() *obs.Observer {
	return obs.New(obs.Options{})
}

// A completed job's lifecycle spans must telescope: queue wait + dispatch +
// run + gather equals the submitted→terminal total, and the total cannot
// exceed the wall time the client measured around the blocking submit.
func TestJobSpansTelescopeE2E(t *testing.T) {
	s, err := NewServer(Config{Threads: 2, QueueCap: 4, MaxConcurrent: 2, Obs: testObserver()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	start := time.Now()
	v, code, err := c.Submit(JobSpec{M: 128, N: 64, NB: 32, IB: 8, Seed: 31}, true)
	wall := time.Since(start)
	if err != nil || code != http.StatusOK {
		t.Fatalf("submit: code %d err %v", code, err)
	}
	got, err := c.Job(v.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	sp := got.Spans
	if sp == nil {
		t.Fatal("completed job carries no spans")
	}
	if sp.Phase != "terminal" {
		t.Errorf("span phase = %q, want terminal", sp.Phase)
	}
	sum := sp.QueueWaitMS + sp.DispatchMS + sp.RunMS + sp.GatherMS
	if d := math.Abs(sum - sp.TotalMS); d > 0.01 {
		t.Errorf("span sum %.4fms != total %.4fms (off by %.4fms)", sum, sp.TotalMS, d)
	}
	if sp.TotalMS <= 0 {
		t.Errorf("total span %.4fms, want > 0", sp.TotalMS)
	}
	wallMS := float64(wall) / float64(time.Millisecond)
	if sp.TotalMS > wallMS+1 {
		t.Errorf("span total %.2fms exceeds client wall time %.2fms", sp.TotalMS, wallMS)
	}
	if sp.RunMS <= 0 {
		t.Errorf("run span %.4fms, want > 0 for a completed factorization", sp.RunMS)
	}
	// A healthy terminal carries no flight tail.
	if len(got.Flight) != 0 {
		t.Errorf("done job carries %d flight events, want none", len(got.Flight))
	}
}

// A job that ends in failure must carry a non-empty flight-recorder tail of
// its own events on GET /v1/jobs/{id}.
func TestFailedJobCarriesFlightTail(t *testing.T) {
	s, err := NewServer(Config{
		Threads: 1, QueueCap: 4, MaxConcurrent: 1, DeadlockTimeout: -1, Obs: testObserver(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Wedge the single slot so the victim stays queued and cannot race its
	// injected failure with a real run.
	if _, err := s.Submit(JobSpec{M: 256, N: 256, NB: 8, IB: 4, Tree: "flat", Seed: 3}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return s.metrics.Running.Load() == 1 })

	victim, err := s.Submit(JobSpec{M: 64, N: 32, NB: 32, IB: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !victim.finish(StateFailed, "injected fault", nil) {
		t.Fatal("victim already terminal before the injected failure")
	}

	var view JobView
	if err := json.Unmarshal([]byte(httpGet(t, ts.URL+"/v1/jobs/"+itoa(victim.ID))), &view); err != nil {
		t.Fatal(err)
	}
	if view.Status != string(StateFailed) {
		t.Fatalf("status = %s, want failed", view.Status)
	}
	if len(view.Flight) == 0 {
		t.Fatal("failed job carries no flight-recorder tail")
	}
	for _, e := range view.Flight {
		if e.Job != victim.ID {
			t.Errorf("flight tail leaked event for job %d into job %d", e.Job, victim.ID)
		}
	}
	// The tail must include the terminal event with its detail.
	found := false
	for _, e := range view.Flight {
		if e.Kind == obs.EvFailed && strings.Contains(e.Detail, "injected fault") {
			found = true
		}
	}
	if !found {
		t.Errorf("flight tail missing the job_failed event: %+v", view.Flight)
	}
}

func itoa(id uint32) string {
	var b [10]byte
	i := len(b)
	for {
		i--
		b[i] = byte('0' + id%10)
		id /= 10
		if id == 0 {
			return string(b[i:])
		}
	}
}

// /v1/status stays consistent under concurrent readers while jobs churn —
// run with -race this is the data-race guard for the snapshot path.
func TestStatusEndpointConcurrent(t *testing.T) {
	s, err := NewServer(Config{Threads: 2, QueueCap: 8, MaxConcurrent: 2, Obs: testObserver()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				c.Submit(JobSpec{M: 64, N: 32, NB: 32, IB: 8, Seed: seed*10 + int64(i), Tenant: "hammer"}, true)
			}
		}(int64(g))
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				body := httpGet(t, ts.URL+"/v1/status?events=8")
				var st StatusView
				if err := json.Unmarshal([]byte(body), &st); err != nil {
					t.Errorf("status decode: %v", err)
					return
				}
				if st.Build.Kernel == "" || st.Build.GoVersion == "" {
					t.Errorf("status build info incomplete: %+v", st.Build)
					return
				}
				if _, ok := st.Classes["jobs"]; !ok {
					t.Error("status missing jobs class")
					return
				}
			}
		}()
	}
	wg.Wait()

	var st StatusView
	if err := json.Unmarshal([]byte(httpGet(t, ts.URL+"/v1/status")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Events == 0 {
		t.Error("no structured events after 16 jobs")
	}
	found := false
	for _, tn := range st.Tenants {
		if tn.Tenant == "hammer" {
			found = true
		}
	}
	if !found && len(st.Tenants) > 0 {
		t.Errorf("tenant tally missing 'hammer': %+v", st.Tenants)
	}

	// Build identity and event counters surface on /metrics too.
	metrics := httpGet(t, ts.URL+"/metrics")
	for _, want := range []string{
		"qrserve_build_info{", "qrserve_obs_events_total",
		"qrserve_queue_wait_seconds_bucket", "qrserve_run_seconds_sum",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// A shed 429 emits a structured shed event carrying the admission class and
// the Retry-After hint that went out on the wire.
func TestShedEmitsStructuredEvent(t *testing.T) {
	s, err := NewServer(Config{
		Threads: 1, QueueCap: 1, MaxConcurrent: 1, DeadlockTimeout: -1, Obs: testObserver(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slow := JobSpec{M: 256, N: 256, NB: 8, IB: 4, Tree: "flat", Seed: 7}
	if _, err := s.Submit(slow); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return s.metrics.Running.Load() == 1 })
	if _, err := s.Submit(slow); err != nil {
		t.Fatal(err)
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/factorize", "application/json",
		strings.NewReader(`{"m":64,"n":32,"nb":32,"ib":8,"tree":"flat","seed":9,"tenant":"shedme"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit on full queue: status %d, want 429", resp.StatusCode)
	}

	var shed *obs.Event
	for _, e := range s.obs.Tail(64) {
		if e.Kind == obs.EvShed {
			ev := e
			shed = &ev
		}
	}
	if shed == nil {
		t.Fatal("no shed event in the flight ring after a 429")
	}
	if shed.Class != "job" || shed.Tenant != "shedme" || shed.RetryS <= 0 {
		t.Errorf("shed event = %+v, want class=job tenant=shedme retry>0", shed)
	}
}

// The /v1/machine-model body's "machine" subobject loads directly through
// internal/simulate with no conversion, and a 2-process TCP fleet that has
// actually moved bytes publishes measured per-link α–β estimates.
func TestMachineModelLoadsIntoSimulate(t *testing.T) {
	eps := resilientTCPMesh(t, 2)
	ag, err := NewAgent(eps[1], 2, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	agentDone := make(chan error, 1)
	go func() { agentDone <- ag.Run(context.Background()) }()

	s, err := NewServer(Config{
		Threads: 2, QueueCap: 4, MaxConcurrent: 1, Ep: eps[0], Logf: t.Logf, Obs: testObserver(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := &Client{Base: ts.URL}
	if v, code, err := c.Submit(JobSpec{M: 256, N: 128, NB: 32, IB: 8, Seed: 41}, true); err != nil || code != http.StatusOK || v.Status != string(StateDone) {
		t.Fatalf("fleet job: code %d status %s err %v", code, v.Status, err)
	}

	body := httpGet(t, ts.URL+"/v1/machine-model")
	var view struct {
		Machine  json.RawMessage `json:"machine"`
		Links    []obs.LinkModel `json:"links"`
		Measured bool            `json:"measured"`
	}
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("machine-model decode: %v", err)
	}

	// The subobject round-trips through the simulator's own loader.
	mach, err := simulate.MachineFromJSON(view.Machine)
	if err != nil {
		t.Fatalf("simulate.MachineFromJSON rejected the served model: %v\n%s", err, body)
	}
	if mach.Nodes != 2 {
		t.Errorf("machine nodes = %d, want 2", mach.Nodes)
	}
	if mach.AlphaInter <= 0 || mach.BetaInter <= 0 {
		t.Errorf("machine α=%g β=%g, want positive", mach.AlphaInter, mach.BetaInter)
	}

	// A fleet job moves real bytes rank0↔rank1, so the estimator must have
	// at least the rank-1 link with samples.
	if !view.Measured {
		t.Error("machine model not marked measured after a completed fleet job")
	}
	if len(view.Links) == 0 {
		t.Fatal("no per-link estimates after a fleet job")
	}
	link := view.Links[0]
	if link.Peer != 1 || link.Samples == 0 || link.Alpha < 0 {
		t.Errorf("link = %+v, want peer 1 with samples and α >= 0", link)
	}

	// The same estimates surface as gauges.
	metrics := httpGet(t, ts.URL+"/metrics")
	for _, want := range []string{`qrserve_link_alpha_seconds{peer="1"}`, `qrserve_link_beta_seconds_per_byte{peer="1"}`} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	s.Close()
	select {
	case <-agentDone:
	case <-time.After(10 * time.Second):
		t.Fatal("agent did not shut down")
	}
}
