package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"pulsarqr/internal/batch"
	"pulsarqr/internal/blas"
	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/session"
	"pulsarqr/internal/trace"
	"pulsarqr/internal/transport"
)

// residualTol is the acceptance threshold on the relative backward error
// ||QR - A|| / ||A||: anything above it marks the result not-OK.
const residualTol = 1e-10

// Config parameterizes a Server.
type Config struct {
	// Threads sizes the persistent worker pool. Default 2.
	Threads int
	// QueueCap bounds the admission queue; a submit beyond it returns
	// ErrQueueFull. Default 32.
	QueueCap int
	// MaxConcurrent is the number of jobs factorizing at once. Default 4.
	MaxConcurrent int
	// ResultCap bounds the number of terminal jobs kept queryable; older
	// ones are evicted. Default 64.
	ResultCap int
	// Ep, when non-nil, is the fleet communicator: this process must be
	// rank 0, and the remaining ranks must run Agents. Jobs then execute
	// across the whole fleet over mux-multiplexed sessions. When nil the
	// server factorizes alone.
	Ep transport.Endpoint
	// DeadlockTimeout passes through to the runtime; zero = default.
	DeadlockTimeout time.Duration
	// TraceCap bounds each traced job's event recorder; zero takes
	// trace.DefaultCapacity. Overflow drops the oldest events and is
	// reported in the shard and the qrserve_trace_dropped_total counter.
	TraceCap int
	// BatchStreams caps concurrent POST /v1/batch streams — the batch
	// tenant's admission class, separate from the job queue so a flood of
	// batch traffic cannot starve big single-job tenants (and vice versa).
	// Default 2.
	BatchStreams int
	// BatchChunk is the number of matrices per dispatched batch task;
	// zero takes the scheduler default (64).
	BatchChunk int
	// BatchCrossover is the Givens/compact-WY engine threshold; zero takes
	// batch.DefaultCrossover.
	BatchCrossover int
	// PinNUMA pins pool workers to NUMA nodes and allocates their
	// workspaces node-local (see pulsar.PoolOptions.PinNUMA). Best-effort:
	// single-node or non-Linux hosts run exactly as before.
	PinNUMA bool
	// CheckpointDir, when set, makes streaming sessions durable: every
	// session checkpoints its reduction spine there (QSC1 files), idle
	// sessions unload to disk, and a restarted server re-registers every
	// checkpoint it finds. Empty keeps sessions memory-only.
	CheckpointDir string
	// SessionStreams caps concurrent POST /v1/sessions/{id}/append streams —
	// the third admission class beside the job queue and batch streams.
	// Default 2.
	SessionStreams int
	// MaxSessions bounds the session table; MaxSessionsPerTenant bounds one
	// tenant's share. Zeros take the session package defaults (64 / 8).
	MaxSessions          int
	MaxSessionsPerTenant int
	// SessionIdle is how long a session may sit unused before it unloads
	// (durable) or is evicted (memory-only); zero takes the session package
	// default (10m), negative disables.
	SessionIdle time.Duration
	// CheckpointEvery is the default appends-per-checkpoint cadence for new
	// sessions (overridable per session); zero means every append.
	CheckpointEvery int
	// Logf receives service logs; nil discards them.
	Logf func(format string, args ...any)
}

// Server is the factorization service: persistent pool, persistent fleet
// sessions, bounded admission queue, job registry, metrics.
type Server struct {
	cfg     Config
	pool    *pulsar.Pool
	mux     *transport.Mux
	ctl     *transport.JobEndpoint
	mgr     *Manager
	metrics *Metrics

	batchSched *batch.Scheduler
	batchSem   chan struct{} // admission slots for POST /v1/batch streams

	sessions   *session.Table
	sessionSem chan struct{} // admission slots for session append streams

	baseCtx context.Context
	stop    context.CancelFunc

	nextID atomic.Uint32

	mu        sync.Mutex
	jobs      map[uint32]*Job
	terminal  []uint32     // eviction order of terminal jobs
	deadRanks map[int]bool // fleet ranks evicted after a peer-death verdict

	closeOnce sync.Once
}

// NewServer builds the service and warms its pool. With cfg.Ep set it also
// claims the control-plane mux channel to the fleet.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 32
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.ResultCap <= 0 {
		cfg.ResultCap = 64
	}
	if cfg.BatchStreams <= 0 {
		cfg.BatchStreams = 2
	}
	if cfg.SessionStreams <= 0 {
		cfg.SessionStreams = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:       cfg,
		metrics:   NewMetrics(),
		jobs:      map[uint32]*Job{},
		deadRanks: map[int]bool{},
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	if cfg.Ep != nil && cfg.Ep.Size() > 1 {
		if cfg.Ep.Rank() != 0 {
			return nil, fmt.Errorf("service: server must run on rank 0, got rank %d", cfg.Ep.Rank())
		}
		s.mux = transport.NewMux(cfg.Ep)
		ctl, err := s.mux.Open(ctlJob)
		if err != nil {
			s.mux.Close()
			return nil, err
		}
		s.ctl = ctl
		// Fleet degradation: when the transport declares an agent rank
		// dead, evict it so new attempts session only the survivors. The
		// departures of a deliberate shutdown are not evictions.
		s.mux.OnPeerFailure(func(rank int, err error) {
			if s.baseCtx.Err() != nil {
				return
			}
			s.mu.Lock()
			seen := s.deadRanks[rank]
			s.deadRanks[rank] = true
			s.mu.Unlock()
			if !seen {
				s.metrics.Evicted.Add(1)
				s.cfg.Logf("fleet degraded: agent rank %d evicted: %v", rank, err)
			}
		})
	}
	s.pool = pulsar.NewPoolOpts(pulsar.PoolOptions{
		Threads: cfg.Threads,
		State:   func(int) any { return kernels.NewWorkspace() },
		PinNUMA: cfg.PinNUMA,
	})
	s.pool.OnWait(s.metrics.ObserveWait) // park intervals feed the worker-wait histogram
	// Attribute this process's compute path once at startup: bench JSONs and
	// fleet logs need to know which micro-kernel produced the numbers.
	cfg.Logf("compute: micro-kernel %s, cpu features %s, numa pinning %v (worker 0 on node %d)",
		blas.MicroKernelName(), blas.CPUFeatures(), cfg.PinNUMA, s.pool.WorkerNode(0))
	s.mgr = NewManager(cfg.QueueCap, cfg.MaxConcurrent, s.metrics, s.runJob)
	s.batchSem = make(chan struct{}, cfg.BatchStreams)
	s.batchSched = batch.NewScheduler(batch.SchedConfig{
		Pool:      s.pool,
		ChunkSize: cfg.BatchChunk,
		Crossover: cfg.BatchCrossover,
		OnChunk:   s.metrics.ObserveBatchChunk,
	})
	s.sessionSem = make(chan struct{}, cfg.SessionStreams)
	tbl, err := session.NewTable(session.Config{
		Dir:          cfg.CheckpointDir,
		Pool:         s.pool,
		MaxSessions:  cfg.MaxSessions,
		MaxPerTenant: cfg.MaxSessionsPerTenant,
		IdleTimeout:  cfg.SessionIdle,
		Every:        cfg.CheckpointEvery,
		OnAppend:     s.metrics.ObserveAppend,
		OnCheckpoint: s.metrics.ObserveCheckpoint,
		OnRestore:    func() { s.metrics.SessionsRestored.Add(1) },
		OnEvict:      func() { s.metrics.SessionsEvicted.Add(1) },
		Logf:         cfg.Logf,
	})
	if err != nil {
		s.pool.Close()
		if s.mux != nil {
			s.mux.Close()
		}
		return nil, err
	}
	s.sessions = tbl
	return s, nil
}

// Sessions exposes the session table (tests and embedders).
func (s *Server) Sessions() *session.Table { return s.sessions }

// Metrics exposes the server's counters (shared with the HTTP surface).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Ranks returns the fleet size this server drives (1 when standalone).
func (s *Server) Ranks() int {
	if s.cfg.Ep == nil {
		return 1
	}
	return s.cfg.Ep.Size()
}

// liveRanks returns the surviving fleet ranks (rank 0 plus every agent not
// evicted), the member set of the next job session.
func (s *Server) liveRanks() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := []int{0}
	for r := 1; r < s.cfg.Ep.Size(); r++ {
		if !s.deadRanks[r] {
			live = append(live, r)
		}
	}
	return live
}

// AgentsLive returns the number of fleet ranks still alive (including the
// server's own rank); 1 when standalone.
func (s *Server) AgentsLive() int {
	if s.mux == nil {
		return 1
	}
	return len(s.liveRanks())
}

// Degraded reports whether any fleet agent has been evicted.
func (s *Server) Degraded() bool {
	if s.mux == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.deadRanks) > 0
}

// Submit validates and admits a job. The returned job is queryable via Get
// until it is evicted; rejection with ErrQueueFull is the service's
// backpressure signal and buffers nothing.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		s.metrics.RejectedBad.Add(1)
		return nil, err
	}
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	j := &Job{
		ID:       s.nextID.Add(1), // ids start at 1; mux job 0 is the control plane
		Spec:     spec,
		ctx:      ctx,
		cancel:   cancel,
		enqueued: time.Now(),
		state:    StatePending,
		done:     make(chan struct{}),
	}
	// Retirement rides the terminal transition itself, so every path that
	// ends a job — runJob, the dispatcher's pre-dispatch deadline/cancel
	// drops, Manager.Close — retires it exactly once, before Done observers
	// wake, and eviction bounds the registry no matter how the job ended.
	j.onTerminal = func() { s.retire(j.ID) }
	if spec.DeadlineMS > 0 {
		j.deadline = j.enqueued.Add(time.Duration(spec.DeadlineMS) * time.Millisecond)
	}
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.mu.Unlock()
	if err := s.mgr.Submit(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.mu.Unlock()
		cancel(nil)
		return nil, err
	}
	s.cfg.Logf("job %d admitted: %dx%d nb=%d tree=%s prio=%d", j.ID, spec.M, spec.N, spec.NB, spec.Tree, spec.Priority)
	return j, nil
}

// Get returns an admitted job by id.
func (s *Server) Get(id uint32) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// runJob executes one dispatched job to a terminal state. In fleet mode it
// first broadcasts the spec so every agent opens the same mux channel and
// builds the same array.
func (s *Server) runJob(j *Job) {
	var ep transport.Endpoint
	stopRelay := func() bool { return false }
	if s.mux != nil && len(s.liveRanks()) > 1 {
		members := s.liveRanks()
		// Every attempt gets a fresh session id from the same monotonic
		// space as job ids, so a retried job can never collide with the
		// mux channel of its own dead attempt; on a degraded fleet the
		// session spans only the survivors.
		sid := s.nextID.Add(1)
		jep, err := s.mux.OpenOn(sid, members)
		if err != nil {
			s.fail(j, fmt.Sprintf("open job channel: %v", err))
			return
		}
		defer jep.Close()
		s.broadcast(ctlMsg{Op: "open", Job: j.ID, Session: sid, Ranks: members, Spec: &j.Spec})
		// Cancellation must be collective: relay it to the agents AND fail
		// this rank's job session. Closing jep fails its barrier state, so
		// a rank whose local share finished before the cancel — already
		// blocked in the collective post-run barrier its aborting peers
		// will never enter — unwinds instead of wedging this dispatcher
		// worker forever. The success path stops the relay before finish's
		// cancel(nil) so a completed job broadcasts nothing; a failed job
		// leaves it armed, releasing agents still running their share.
		stopRelay = context.AfterFunc(j.ctx, func() {
			s.broadcast(ctlMsg{Op: "cancel", Job: j.ID})
			jep.Close()
		})
		defer stopRelay()
		ep = jep
	}

	a, dense, err := j.Spec.BuildInputs()
	if err != nil {
		s.fail(j, err.Error())
		return
	}
	opts, err := j.Spec.Options()
	if err != nil {
		s.fail(j, err.Error())
		return
	}
	rc := qr.RunConfig{
		FireHook:        s.metrics.FireHook,
		DeadlockTimeout: s.cfg.DeadlockTimeout,
	}
	var rec *trace.Recorder
	if j.Spec.Trace {
		rec = trace.NewRecorderCap(s.cfg.TraceCap)
		hook := rec.Hook()
		rc.FireHook = func(ev pulsar.FireEvent) {
			s.metrics.FireHook(ev)
			hook(ev)
		}
		rc.CommHook = rec.CommHook()
	}
	start := time.Now()
	f, err := qr.FactorizeVSAServe(j.ctx, a, nil, opts, rc, ep, s.pool)
	elapsed := time.Since(start)
	if err != nil {
		switch {
		case j.ctx.Err() != nil:
			if j.finish(StateCanceled, "", nil) {
				s.metrics.Canceled.Add(1)
				s.cfg.Logf("job %d canceled after %v", j.ID, elapsed)
			}
		case peerDeath(err, ep) && j.Attempts() < j.Spec.MaxRetries && j.requeue():
			// The attempt died with a fleet rank, not on its own merits:
			// requeue onto whatever fleet survives, with backoff doubling
			// per attempt. A cancel racing the retry wins (requeue false).
			s.metrics.Requeued.Add(1)
			// Reap the dead attempt's shares on the agents: the job is not
			// canceled, but its old session is, and a rank whose share
			// out-lived this one would otherwise idle in it until the
			// retry's open arrived — or forever, if the retry never opens.
			// Control sends are ordered, so this cannot overtake the
			// retry's own open broadcast.
			s.broadcast(ctlMsg{Op: "cancel", Job: j.ID})
			attempt := j.Attempts()
			backoff := time.Duration(j.Spec.RetryBackoffMS) * time.Millisecond
			if backoff <= 0 {
				backoff = 100 * time.Millisecond
			}
			backoff <<= attempt - 1
			s.cfg.Logf("job %d attempt %d lost a fleet rank (%v); requeueing in %v", j.ID, attempt, err, backoff)
			time.AfterFunc(backoff, func() {
				if err := s.mgr.Submit(j); err != nil {
					s.fail(j, fmt.Sprintf("requeue after fleet failure: %v", err))
				}
			})
		default:
			s.fail(j, err.Error())
		}
		return
	}

	res := &Result{Elapsed: elapsed, Stats: f.Stats}
	flops := kernels.FlopsQR(j.Spec.M, j.Spec.N)
	if sec := elapsed.Seconds(); sec > 0 {
		res.Gflops = flops / sec / 1e9
	}
	norm := dense.MaxAbs()
	if norm == 0 {
		norm = 1
	}
	res.Residual = f.Residual(dense) / norm
	res.OK = res.Residual <= residualTol
	res.R = rRows(f.R())
	if rec != nil {
		// The gather must precede stopRelay: the job session is still live
		// and agents are blocked sending their shards toward rank 0.
		s.storeTrace(j, ep, rec)
	}
	stopRelay() // a completed job must not broadcast a cancel from finish's cancel(nil)
	if j.finish(StateDone, "", res) {
		s.metrics.Completed.Add(1)
		s.metrics.ObserveJob(time.Since(j.enqueued).Seconds(), elapsed.Seconds(), flops)
		s.cfg.Logf("job %d done in %v: %.2f Gflop/s, residual %.2e", j.ID, elapsed, res.Gflops, res.Residual)
	}
}

// storeTrace gathers the fleet's per-rank trace shards onto the job. On the
// fleet path the agents are symmetric senders (see Agent.runJob), so the
// collective completes as soon as every rank's share has finished; a rank
// that never delivers its shard times the gather out and the job keeps the
// local shard rather than failing.
func (s *Server) storeTrace(j *Job, ep transport.Endpoint, rec *trace.Recorder) {
	local := rec.Shard(0)
	ctx, cancel := context.WithTimeout(j.ctx, 10*time.Second)
	defer cancel()
	shards, err := trace.GatherShards(ctx, ep, local)
	if err != nil {
		s.cfg.Logf("job %d: trace gather: %v (keeping local shard)", j.ID, err)
		shards = []trace.Shard{local}
	}
	for _, sh := range shards {
		s.metrics.TraceEvents.Add(int64(len(sh.Events)))
		s.metrics.TraceDrops.Add(sh.Drops)
	}
	j.setTrace(shards)
}

// peerDeath reports whether a run error traces back to a dead fleet rank —
// either the error chain carries the transport's verdict, or the job's
// session observed a member die while the run unwound with a broader error.
func peerDeath(err error, ep transport.Endpoint) bool {
	var pde *transport.PeerDeathError
	if errors.As(err, &pde) {
		return true
	}
	if fo, ok := ep.(transport.FailureObserver); ok && fo.PeerFailure() != nil {
		return true
	}
	return false
}

func (s *Server) fail(j *Job, msg string) {
	if j.finish(StateFailed, msg, nil) {
		s.metrics.Failed.Add(1)
		s.cfg.Logf("job %d failed: %s", j.ID, msg)
	}
}

// retire records a terminal job for eviction and drops the oldest ones
// beyond ResultCap, bounding the service's memory across a long life.
func (s *Server) retire(id uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.terminal = append(s.terminal, id)
	for len(s.terminal) > s.cfg.ResultCap {
		evict := s.terminal[0]
		s.terminal = s.terminal[1:]
		delete(s.jobs, evict)
	}
}

// resident returns the number of jobs currently held in the registry.
func (s *Server) resident() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// broadcast sends a control message to every agent rank.
func (s *Server) broadcast(msg ctlMsg) {
	b, err := json.Marshal(msg)
	if err != nil {
		s.cfg.Logf("broadcast %s: %v", msg.Op, err)
		return
	}
	for r := 1; r < s.cfg.Ep.Size(); r++ {
		s.ctl.Isend(b, r, ctlTag)
	}
}

// writeTransportProm renders the transport-layer telemetry — per-link wire
// counters, barrier timing, mux channel occupancy — after the job metrics on
// the /metrics page. Standalone servers (no fleet endpoint) emit nothing.
func (s *Server) writeTransportProm(w io.Writer) {
	if lr, ok := s.cfg.Ep.(transport.LinkReporter); ok {
		fmt.Fprintf(w, "# HELP qrserve_link_sent_bytes_total Bytes sent to each peer rank.\n# TYPE qrserve_link_sent_bytes_total counter\n")
		links := lr.Links()
		for _, l := range links {
			fmt.Fprintf(w, "qrserve_link_sent_bytes_total{peer=\"%d\"} %d\n", l.Peer, l.SentBytes)
		}
		fmt.Fprintf(w, "# HELP qrserve_link_sent_frames_total Frames sent to each peer rank.\n# TYPE qrserve_link_sent_frames_total counter\n")
		for _, l := range links {
			fmt.Fprintf(w, "qrserve_link_sent_frames_total{peer=\"%d\"} %d\n", l.Peer, l.SentFrames)
		}
		fmt.Fprintf(w, "# HELP qrserve_link_recv_bytes_total Bytes received from each peer rank.\n# TYPE qrserve_link_recv_bytes_total counter\n")
		for _, l := range links {
			fmt.Fprintf(w, "qrserve_link_recv_bytes_total{peer=\"%d\"} %d\n", l.Peer, l.RecvBytes)
		}
		fmt.Fprintf(w, "# HELP qrserve_link_recv_frames_total Frames received from each peer rank.\n# TYPE qrserve_link_recv_frames_total counter\n")
		for _, l := range links {
			fmt.Fprintf(w, "qrserve_link_recv_frames_total{peer=\"%d\"} %d\n", l.Peer, l.RecvFrames)
		}
		fmt.Fprintf(w, "# HELP qrserve_link_queue_depth Outbound frames queued toward each peer rank.\n# TYPE qrserve_link_queue_depth gauge\n")
		for _, l := range links {
			fmt.Fprintf(w, "qrserve_link_queue_depth{peer=\"%d\"} %d\n", l.Peer, l.QueueDepth)
		}
	}
	if br, ok := s.cfg.Ep.(transport.BarrierReporter); ok {
		bs := br.BarrierStats()
		fmt.Fprintf(w, "# HELP qrserve_transport_barriers_total Collective barriers completed on the fleet endpoint.\n# TYPE qrserve_transport_barriers_total counter\nqrserve_transport_barriers_total %d\n", bs.Count)
		fmt.Fprintf(w, "# HELP qrserve_transport_barrier_wait_seconds_total Seconds spent waiting in collective barriers.\n# TYPE qrserve_transport_barrier_wait_seconds_total counter\nqrserve_transport_barrier_wait_seconds_total %g\n", bs.Wait.Seconds())
	}
	if s.mux != nil {
		degraded := 0
		if s.Degraded() {
			degraded = 1
		}
		fmt.Fprintf(w, "# HELP qrserve_fleet_ranks_live Fleet ranks still alive (server included).\n# TYPE qrserve_fleet_ranks_live gauge\nqrserve_fleet_ranks_live %d\n", s.AgentsLive())
		fmt.Fprintf(w, "# HELP qrserve_fleet_degraded Whether any fleet agent has been evicted (0/1).\n# TYPE qrserve_fleet_degraded gauge\nqrserve_fleet_degraded %d\n", degraded)
		open, pending, backlog := s.mux.Depths()
		fmt.Fprintf(w, "# HELP qrserve_mux_jobs_open Mux job channels currently open.\n# TYPE qrserve_mux_jobs_open gauge\nqrserve_mux_jobs_open %d\n", open)
		fmt.Fprintf(w, "# HELP qrserve_mux_pending_messages Messages parked for not-yet-open mux channels.\n# TYPE qrserve_mux_pending_messages gauge\nqrserve_mux_pending_messages %d\n", pending)
		fmt.Fprintf(w, "# HELP qrserve_mux_backlog_messages Messages buffered in open job mailboxes awaiting receivers.\n# TYPE qrserve_mux_backlog_messages gauge\nqrserve_mux_backlog_messages %d\n", backlog)
	}
}

// Close shuts the service down: stop admitting, cancel everything, tell the
// agents to exit, release the fleet sessions and the pool. The underlying
// endpoint stays open for the caller to close.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.stop() // cancels every job context derived from baseCtx
		s.mgr.Close()
		// Flush dirty session spines to their checkpoints while the pool is
		// still alive: append streams unwind on the canceled baseCtx first.
		if err := s.sessions.Close(); err != nil {
			s.cfg.Logf("session table close: %v", err)
		}
		if s.mux != nil {
			s.broadcast(ctlMsg{Op: "shutdown"})
			s.ctl.Close()
			s.mux.Close()
		}
		s.pool.Close()
	})
}

// rRows converts the R factor to row-major rows for the JSON surface.
func rRows(r *matrix.Mat) [][]float64 {
	if r == nil {
		return nil
	}
	rows := make([][]float64, r.Rows)
	for i := range rows {
		row := make([]float64, r.Cols)
		for c := 0; c < r.Cols; c++ {
			row[c] = r.At(i, c)
		}
		rows[i] = row
	}
	return rows
}
