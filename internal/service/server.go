package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pulsarqr/internal/batch"
	"pulsarqr/internal/blas"
	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/obs"
	"pulsarqr/internal/plan"
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/session"
	"pulsarqr/internal/trace"
	"pulsarqr/internal/transport"
)

// residualTol is the acceptance threshold on the relative backward error
// ||QR - A|| / ||A||: anything above it marks the result not-OK.
const residualTol = 1e-10

// flightTailLen is how many flight-recorder events attach to a job that ends
// in trouble; flightDumpLen is the postmortem dumped to the log when a fleet
// agent is evicted.
const (
	flightTailLen = 32
	flightDumpLen = 64
)

// Config parameterizes a Server.
type Config struct {
	// Threads sizes the persistent worker pool. Default 2.
	Threads int
	// QueueCap bounds the admission queue; a submit beyond it returns
	// ErrQueueFull. Default 32.
	QueueCap int
	// MaxConcurrent is the number of jobs factorizing at once. Default 4.
	MaxConcurrent int
	// ResultCap bounds the number of terminal jobs kept queryable; older
	// ones are evicted. Default 64.
	ResultCap int
	// Ep, when non-nil, is the fleet communicator: this process must be
	// rank 0, and the remaining ranks must run Agents. Jobs then execute
	// across the whole fleet over mux-multiplexed sessions. When nil the
	// server factorizes alone.
	Ep transport.Endpoint
	// DeadlockTimeout passes through to the runtime; zero = default.
	DeadlockTimeout time.Duration
	// TraceCap bounds each traced job's event recorder; zero takes
	// trace.DefaultCapacity. Overflow drops the oldest events and is
	// reported in the shard and the qrserve_trace_dropped_total counter.
	TraceCap int
	// BatchStreams caps concurrent POST /v1/batch streams — the batch
	// tenant's admission class, separate from the job queue so a flood of
	// batch traffic cannot starve big single-job tenants (and vice versa).
	// Default 2.
	BatchStreams int
	// BatchChunk is the number of matrices per dispatched batch task;
	// zero takes the scheduler default (64).
	BatchChunk int
	// BatchCrossover is the Givens/compact-WY engine threshold; zero takes
	// batch.DefaultCrossover.
	BatchCrossover int
	// PinNUMA pins pool workers to NUMA nodes and allocates their
	// workspaces node-local (see pulsar.PoolOptions.PinNUMA). Best-effort:
	// single-node or non-Linux hosts run exactly as before.
	PinNUMA bool
	// CheckpointDir, when set, makes streaming sessions durable: every
	// session checkpoints its reduction spine there (QSC1 files), idle
	// sessions unload to disk, and a restarted server re-registers every
	// checkpoint it finds. Empty keeps sessions memory-only.
	CheckpointDir string
	// SessionStreams caps concurrent POST /v1/sessions/{id}/append streams —
	// the third admission class beside the job queue and batch streams.
	// Default 2.
	SessionStreams int
	// MaxSessions bounds the session table; MaxSessionsPerTenant bounds one
	// tenant's share. Zeros take the session package defaults (64 / 8).
	MaxSessions          int
	MaxSessionsPerTenant int
	// SessionIdle is how long a session may sit unused before it unloads
	// (durable) or is evicted (memory-only); zero takes the session package
	// default (10m), negative disables.
	SessionIdle time.Duration
	// CheckpointEvery is the default appends-per-checkpoint cadence for new
	// sessions (overridable per session); zero means every append.
	CheckpointEvery int
	// Autotune plans every job's configuration against the fleet's measured
	// machine model before dispatch (jobs can also opt in individually via
	// JobSpec.Autotune). The qrserve -autotune flag sets this.
	Autotune bool
	// Logf receives service logs; nil discards them.
	Logf func(format string, args ...any)
	// Obs is the observability layer: structured events, the flight
	// recorder, and the α–β machine-model estimator. Nil disables all of it
	// at zero cost (every obs call is nil-checked and allocation-free).
	Obs *obs.Observer
}

// Server is the factorization service: persistent pool, persistent fleet
// sessions, bounded admission queue, job registry, metrics.
type Server struct {
	cfg     Config
	pool    *pulsar.Pool
	mux     *transport.Mux
	ctl     *transport.JobEndpoint
	mgr     *Manager
	metrics *Metrics
	obs     *obs.Observer // nil when observability is disabled
	started time.Time

	batchSched *batch.Scheduler
	batchSem   chan struct{} // admission slots for POST /v1/batch streams

	sessions   *session.Table
	sessionSem chan struct{} // admission slots for session append streams

	baseCtx context.Context
	stop    context.CancelFunc

	nextID atomic.Uint32

	planner *plan.Planner // always non-nil; consulted when autotuning is on
	costs   costModel     // online per-flop/per-task cost fit from completed jobs

	mu        sync.Mutex
	jobs      map[uint32]*Job
	terminal  []uint32     // eviction order of terminal jobs
	deadRanks map[int]bool // fleet ranks evicted after a peer-death verdict
	lastPlan  lastPlanInfo // most recent planned job, for /v1/status

	closeOnce sync.Once
}

// lastPlanInfo is the status page's "what did the planner do last" record.
type lastPlanInfo struct {
	job         uint32
	config      string
	predictedMS float64
	actualMS    float64
}

// NewServer builds the service and warms its pool. With cfg.Ep set it also
// claims the control-plane mux channel to the fleet.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 32
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.ResultCap <= 0 {
		cfg.ResultCap = 64
	}
	if cfg.BatchStreams <= 0 {
		cfg.BatchStreams = 2
	}
	if cfg.SessionStreams <= 0 {
		cfg.SessionStreams = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:       cfg,
		metrics:   NewMetrics(),
		obs:       cfg.Obs,
		started:   time.Now(),
		jobs:      map[uint32]*Job{},
		deadRanks: map[int]bool{},
		planner:   plan.NewPlanner(plan.Config{}, plan.DefaultCacheCap),
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	if cfg.Ep != nil && cfg.Ep.Size() > 1 {
		if cfg.Ep.Rank() != 0 {
			return nil, fmt.Errorf("service: server must run on rank 0, got rank %d", cfg.Ep.Rank())
		}
		s.mux = transport.NewMux(cfg.Ep)
		ctl, err := s.mux.Open(ctlJob)
		if err != nil {
			s.mux.Close()
			return nil, err
		}
		s.ctl = ctl
		// Fleet degradation: when the transport declares an agent rank
		// dead, evict it so new attempts session only the survivors. The
		// departures of a deliberate shutdown are not evictions.
		s.mux.OnPeerFailure(func(rank int, err error) {
			if s.baseCtx.Err() != nil {
				return
			}
			s.mu.Lock()
			seen := s.deadRanks[rank]
			s.deadRanks[rank] = true
			s.mu.Unlock()
			if !seen {
				s.metrics.Evicted.Add(1)
				s.obs.Emit(obs.Event{Kind: obs.EvAgentEvict, Rank: rank, Detail: err.Error()})
				// An eviction is the postmortem moment: dump the flight
				// recorder so the log shows what led up to the degradation.
				s.obs.DumpTail(fmt.Sprintf("agent rank %d evicted", rank), flightDumpLen)
				s.cfg.Logf("fleet degraded: agent rank %d evicted: %v", rank, err)
			}
		})
		for r := 1; r < cfg.Ep.Size(); r++ {
			s.obs.Emit(obs.Event{Kind: obs.EvAgentJoin, Rank: r})
		}
	}
	s.pool = pulsar.NewPoolOpts(pulsar.PoolOptions{
		Threads: cfg.Threads,
		State:   func(int) any { return kernels.NewWorkspace() },
		PinNUMA: cfg.PinNUMA,
	})
	s.pool.OnWait(s.metrics.ObserveWait) // park intervals feed the worker-wait histogram
	// Attribute this process's compute path once at startup: bench JSONs and
	// fleet logs need to know which micro-kernel produced the numbers.
	cfg.Logf("compute: micro-kernel %s, cpu features %s, numa pinning %v (worker 0 on node %d)",
		blas.MicroKernelName(), blas.CPUFeatures(), cfg.PinNUMA, s.pool.WorkerNode(0))
	s.mgr = NewManager(cfg.QueueCap, cfg.MaxConcurrent, s.metrics, s.runJob)
	s.mgr.obs = cfg.Obs
	// A warm boot restores the last persisted machine model as the
	// estimator's prior: live traffic overrides it within its first jobs.
	if cfg.CheckpointDir != "" && cfg.Obs.Enabled() {
		path := filepath.Join(cfg.CheckpointDir, obs.ModelFileName)
		if mf, err := obs.LoadModelFile(path); err == nil {
			cfg.Obs.Estimator().Seed(mf.Links)
			cfg.Obs.Emit(obs.Event{Kind: obs.EvModelLoaded, Detail: path})
			cfg.Logf("machine model restored from %s (%d links)", path, len(mf.Links))
		} else if !errors.Is(err, os.ErrNotExist) {
			cfg.Logf("machine model %s unreadable: %v (starting uncalibrated)", path, err)
		}
	}
	s.batchSem = make(chan struct{}, cfg.BatchStreams)
	s.batchSched = batch.NewScheduler(batch.SchedConfig{
		Pool:      s.pool,
		ChunkSize: cfg.BatchChunk,
		Crossover: cfg.BatchCrossover,
		OnChunk:   s.metrics.ObserveBatchChunk,
	})
	s.sessionSem = make(chan struct{}, cfg.SessionStreams)
	tbl, err := session.NewTable(session.Config{
		Dir:          cfg.CheckpointDir,
		Pool:         s.pool,
		MaxSessions:  cfg.MaxSessions,
		MaxPerTenant: cfg.MaxSessionsPerTenant,
		IdleTimeout:  cfg.SessionIdle,
		Every:        cfg.CheckpointEvery,
		OnAppend:     s.metrics.ObserveAppend,
		OnCheckpoint: func(bytes int64) {
			s.metrics.ObserveCheckpoint(bytes)
			s.obs.Emit(obs.Event{Kind: obs.EvCheckpoint, Bytes: bytes})
		},
		OnRestore: func() { s.metrics.SessionsRestored.Add(1) },
		OnEvict:   func() { s.metrics.SessionsEvicted.Add(1) },
		Logf:      cfg.Logf,
	})
	if err != nil {
		s.pool.Close()
		if s.mux != nil {
			s.mux.Close()
		}
		return nil, err
	}
	s.sessions = tbl
	return s, nil
}

// Sessions exposes the session table (tests and embedders).
func (s *Server) Sessions() *session.Table { return s.sessions }

// Metrics exposes the server's counters (shared with the HTTP surface).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Ranks returns the fleet size this server drives (1 when standalone).
func (s *Server) Ranks() int {
	if s.cfg.Ep == nil {
		return 1
	}
	return s.cfg.Ep.Size()
}

// liveRanks returns the surviving fleet ranks (rank 0 plus every agent not
// evicted), the member set of the next job session.
func (s *Server) liveRanks() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := []int{0}
	for r := 1; r < s.cfg.Ep.Size(); r++ {
		if !s.deadRanks[r] {
			live = append(live, r)
		}
	}
	return live
}

// AgentsLive returns the number of fleet ranks still alive (including the
// server's own rank); 1 when standalone.
func (s *Server) AgentsLive() int {
	if s.mux == nil {
		return 1
	}
	return len(s.liveRanks())
}

// Degraded reports whether any fleet agent has been evicted.
func (s *Server) Degraded() bool {
	if s.mux == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.deadRanks) > 0
}

// Submit validates and admits a job. The returned job is queryable via Get
// until it is evicted; rejection with ErrQueueFull is the service's
// backpressure signal and buffers nothing.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		s.metrics.RejectedBad.Add(1)
		return nil, err
	}
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	j := &Job{
		ID:       s.nextID.Add(1), // ids start at 1; mux job 0 is the control plane
		Spec:     spec,
		ctx:      ctx,
		cancel:   cancel,
		enqueued: time.Now(),
		state:    StatePending,
		done:     make(chan struct{}),
	}
	j.life.Mark(obs.PhaseSubmitted)
	// Retirement rides the terminal transition itself, so every path that
	// ends a job — runJob, the dispatcher's pre-dispatch deadline/cancel
	// drops, Manager.Close — retires it exactly once, before Done observers
	// wake, and eviction bounds the registry no matter how the job ended.
	// The same transition closes out observability: span histograms observe
	// the final accounting, the terminal event is emitted, and a job that
	// ended in trouble gets the flight-recorder tail pinned to its record
	// (after the emit, so the tail includes the terminal event itself).
	j.onTerminal = func() {
		s.retire(j.ID)
		sp := j.Spans()
		s.metrics.ObserveSpans("job", sp)
		state, errMsg := j.State()
		kind := obs.EvDone
		switch state {
		case StateFailed:
			kind = obs.EvFailed
		case StateCanceled:
			kind = obs.EvCanceled
		case StateExpired:
			kind = obs.EvExpired
		}
		s.obs.Emit(obs.Event{Kind: kind, Class: "job", Job: j.ID, Tenant: spec.Tenant,
			Attempt: j.Attempts(), DurMS: float64(sp.Total) / float64(time.Millisecond), Detail: errMsg})
		if kind != obs.EvDone && s.obs.Enabled() {
			j.setFlight(s.obs.TailJob(j.ID, flightTailLen))
		}
	}
	if spec.DeadlineMS > 0 {
		j.deadline = j.enqueued.Add(time.Duration(spec.DeadlineMS) * time.Millisecond)
	}
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.mu.Unlock()
	if err := s.mgr.Submit(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.mu.Unlock()
		cancel(nil)
		return nil, err
	}
	s.cfg.Logf("job %d admitted: %dx%d nb=%d tree=%s prio=%d", j.ID, spec.M, spec.N, spec.NB, spec.Tree, spec.Priority)
	return j, nil
}

// Get returns an admitted job by id.
func (s *Server) Get(id uint32) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// runJob executes one dispatched job to a terminal state. In fleet mode it
// first broadcasts the spec so every agent opens the same mux channel and
// builds the same array.
//
// The spec that actually runs is planJob's effective spec: identical to
// j.Spec unless autotuning rewrote the algorithm configuration. j.Spec
// itself stays immutable — job views read it without the lock.
func (s *Server) runJob(j *Job) {
	spec := s.planJob(j)
	var ep transport.Endpoint
	var sessionMembers []int
	stopRelay := func() bool { return false }
	if s.mux != nil {
		members := s.liveRanks()
		if d := j.Plan(); d != nil && d.Choice.Ranks >= 1 && d.Choice.Ranks < len(members) {
			// The planner decided fewer ranks win (communication outweighs
			// the extra compute): session only a prefix of the live fleet.
			// Ranks not in the member set ignore the open broadcast.
			members = members[:d.Choice.Ranks]
		}
		if len(members) > 1 {
			sessionMembers = members
			// Every attempt gets a fresh session id from the same monotonic
			// space as job ids, so a retried job can never collide with the
			// mux channel of its own dead attempt; on a degraded fleet the
			// session spans only the survivors.
			sid := s.nextID.Add(1)
			jep, err := s.mux.OpenOn(sid, members)
			if err != nil {
				s.fail(j, fmt.Sprintf("open job channel: %v", err))
				return
			}
			defer jep.Close()
			if est := s.obs.Estimator(); est != nil {
				// Deferred after jep.Close's defer, so it runs first (LIFO):
				// fold the session's barrier waits into the α estimate as
				// zero-byte latency samples while the counters are still live.
				defer func() {
					if bs := jep.BarrierStats(); bs.Count > 0 {
						avg := bs.Wait / time.Duration(bs.Count)
						for _, r := range members[1:] {
							est.Add(r, 0, avg)
						}
					}
				}()
			}
			s.broadcast(ctlMsg{Op: "open", Job: j.ID, Session: sid, Ranks: members, Spec: &spec})
			// Cancellation must be collective: relay it to the agents AND fail
			// this rank's job session. Closing jep fails its barrier state, so
			// a rank whose local share finished before the cancel — already
			// blocked in the collective post-run barrier its aborting peers
			// will never enter — unwinds instead of wedging this dispatcher
			// worker forever. The success path stops the relay before finish's
			// cancel(nil) so a completed job broadcasts nothing; a failed job
			// leaves it armed, releasing agents still running their share.
			stopRelay = context.AfterFunc(j.ctx, func() {
				s.obs.Emit(obs.Event{Kind: obs.EvBarrierAbort, Class: "job", Job: j.ID,
					Detail: "cancel relayed to fleet; job session closed"})
				s.broadcast(ctlMsg{Op: "cancel", Job: j.ID})
				jep.Close()
			})
			defer stopRelay()
			ep = jep
		}
	}

	a, dense, err := spec.BuildInputs()
	if err != nil {
		s.fail(j, err.Error())
		return
	}
	opts, err := spec.Options()
	if err != nil {
		s.fail(j, err.Error())
		return
	}
	rc := qr.RunConfig{
		FireHook:        s.metrics.FireHook,
		DeadlockTimeout: s.cfg.DeadlockTimeout,
	}
	var rec *trace.Recorder
	if spec.Trace {
		rec = trace.NewRecorderCap(s.cfg.TraceCap)
		hook := rec.Hook()
		rc.FireHook = func(ev pulsar.FireEvent) {
			s.metrics.FireHook(ev)
			hook(ev)
		}
		rc.CommHook = rec.CommHook()
	}
	if est := s.obs.Estimator(); est != nil && len(sessionMembers) > 1 {
		// The α–β sampler rides the same hook as the trace recorder. Only
		// deliveries are usable: sends are eager (Isend returns once the
		// payload is serialized, timing nothing), so CommRecv intervals are
		// the per-message cost signal, attributed to the real peer rank
		// behind the session's virtual one.
		members := sessionMembers
		prev := rc.CommHook
		rc.CommHook = func(ev pulsar.CommEvent) {
			if prev != nil {
				prev(ev)
			}
			if ev.Kind == pulsar.CommRecv && ev.Bytes > 0 && ev.Peer > 0 && ev.Peer < len(members) {
				est.Add(members[ev.Peer], int64(ev.Bytes), ev.End.Sub(ev.Start))
			}
		}
	}
	j.life.Mark(obs.PhaseRunning)
	s.obs.Emit(obs.Event{Kind: obs.EvRunning, Class: "job", Job: j.ID,
		Tenant: j.Spec.Tenant, Attempt: j.Attempts()})
	start := time.Now()
	wait0 := s.metrics.WaitSeconds()
	f, err := qr.FactorizeVSAServe(j.ctx, a, nil, opts, rc, ep, s.pool)
	elapsed := time.Since(start)
	waitSec := s.metrics.WaitSeconds() - wait0
	if err != nil {
		switch {
		case j.ctx.Err() != nil:
			if j.finish(StateCanceled, "", nil) {
				s.metrics.Canceled.Add(1)
				s.cfg.Logf("job %d canceled after %v", j.ID, elapsed)
			}
		case peerDeath(err, ep) && j.Attempts() < j.Spec.MaxRetries && j.requeue():
			// The attempt died with a fleet rank, not on its own merits:
			// requeue onto whatever fleet survives, with backoff doubling
			// per attempt. A cancel racing the retry wins (requeue false).
			s.metrics.Requeued.Add(1)
			// Reap the dead attempt's shares on the agents: the job is not
			// canceled, but its old session is, and a rank whose share
			// out-lived this one would otherwise idle in it until the
			// retry's open arrived — or forever, if the retry never opens.
			// Control sends are ordered, so this cannot overtake the
			// retry's own open broadcast.
			s.broadcast(ctlMsg{Op: "cancel", Job: j.ID})
			attempt := j.Attempts()
			backoff := time.Duration(j.Spec.RetryBackoffMS) * time.Millisecond
			if backoff <= 0 {
				backoff = 100 * time.Millisecond
			}
			backoff <<= attempt - 1
			s.obs.Emit(obs.Event{Kind: obs.EvRetry, Class: "job", Job: j.ID,
				Tenant: j.Spec.Tenant, Attempt: attempt,
				DurMS: float64(backoff) / float64(time.Millisecond), Detail: err.Error()})
			s.cfg.Logf("job %d attempt %d lost a fleet rank (%v); requeueing in %v", j.ID, attempt, err, backoff)
			time.AfterFunc(backoff, func() {
				if err := s.mgr.Submit(j); err != nil {
					s.fail(j, fmt.Sprintf("requeue after fleet failure: %v", err))
				}
			})
		default:
			s.fail(j, err.Error())
		}
		return
	}

	res := &Result{Elapsed: elapsed, Stats: f.Stats}
	flops := kernels.FlopsQR(j.Spec.M, j.Spec.N)
	if sec := elapsed.Seconds(); sec > 0 {
		res.Gflops = flops / sec / 1e9
	}
	norm := dense.MaxAbs()
	if norm == 0 {
		norm = 1
	}
	res.Residual = f.Residual(dense) / norm
	res.OK = res.Residual <= residualTol
	res.R = rRows(f.R())
	if rec != nil {
		// The gather must precede stopRelay: the job session is still live
		// and agents are blocked sending their shards toward rank 0.
		j.life.Mark(obs.PhaseGathering)
		s.obs.Emit(obs.Event{Kind: obs.EvGathering, Class: "job", Job: j.ID})
		s.storeTrace(j, ep, rec)
	}
	stopRelay() // a completed job must not broadcast a cancel from finish's cancel(nil)
	if j.finish(StateDone, "", res) {
		s.metrics.Completed.Add(1)
		s.metrics.ObserveJob(time.Since(j.enqueued).Seconds(), elapsed.Seconds(), flops)
		s.recordCostSample(spec, res, elapsed, waitSec)
		s.recordPlanOutcome(j, elapsed)
		s.cfg.Logf("job %d done in %v: %.2f Gflop/s, residual %.2e", j.ID, elapsed, res.Gflops, res.Residual)
	}
}

// storeTrace gathers the fleet's per-rank trace shards onto the job. On the
// fleet path the agents are symmetric senders (see Agent.runJob), so the
// collective completes as soon as every rank's share has finished; a rank
// that never delivers its shard times the gather out and the job keeps the
// local shard rather than failing.
func (s *Server) storeTrace(j *Job, ep transport.Endpoint, rec *trace.Recorder) {
	local := rec.Shard(0)
	ctx, cancel := context.WithTimeout(j.ctx, 10*time.Second)
	defer cancel()
	shards, err := trace.GatherShards(ctx, ep, local)
	if err != nil {
		s.cfg.Logf("job %d: trace gather: %v (keeping local shard)", j.ID, err)
		shards = []trace.Shard{local}
	}
	for _, sh := range shards {
		s.metrics.TraceEvents.Add(int64(len(sh.Events)))
		s.metrics.TraceDrops.Add(sh.Drops)
	}
	j.setTrace(shards)
}

// peerDeath reports whether a run error traces back to a dead fleet rank —
// either the error chain carries the transport's verdict, or the job's
// session observed a member die while the run unwound with a broader error.
func peerDeath(err error, ep transport.Endpoint) bool {
	var pde *transport.PeerDeathError
	if errors.As(err, &pde) {
		return true
	}
	if fo, ok := ep.(transport.FailureObserver); ok && fo.PeerFailure() != nil {
		return true
	}
	return false
}

func (s *Server) fail(j *Job, msg string) {
	if j.finish(StateFailed, msg, nil) {
		s.metrics.Failed.Add(1)
		s.cfg.Logf("job %d failed: %s", j.ID, msg)
	}
}

// retire records a terminal job for eviction and drops the oldest ones
// beyond ResultCap, bounding the service's memory across a long life.
func (s *Server) retire(id uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.terminal = append(s.terminal, id)
	for len(s.terminal) > s.cfg.ResultCap {
		evict := s.terminal[0]
		s.terminal = s.terminal[1:]
		delete(s.jobs, evict)
	}
}

// resident returns the number of jobs currently held in the registry.
func (s *Server) resident() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// broadcast sends a control message to every agent rank.
func (s *Server) broadcast(msg ctlMsg) {
	b, err := json.Marshal(msg)
	if err != nil {
		s.cfg.Logf("broadcast %s: %v", msg.Op, err)
		return
	}
	for r := 1; r < s.cfg.Ep.Size(); r++ {
		s.ctl.Isend(b, r, ctlTag)
	}
}

// writeTransportProm renders the transport-layer telemetry — per-link wire
// counters, barrier timing, mux channel occupancy — after the job metrics on
// the /metrics page. Standalone servers (no fleet endpoint) emit nothing.
func (s *Server) writeTransportProm(w io.Writer) {
	if lr, ok := s.cfg.Ep.(transport.LinkReporter); ok {
		fmt.Fprintf(w, "# HELP qrserve_link_sent_bytes_total Bytes sent to each peer rank.\n# TYPE qrserve_link_sent_bytes_total counter\n")
		links := lr.Links()
		for _, l := range links {
			fmt.Fprintf(w, "qrserve_link_sent_bytes_total{peer=\"%d\"} %d\n", l.Peer, l.SentBytes)
		}
		fmt.Fprintf(w, "# HELP qrserve_link_sent_frames_total Frames sent to each peer rank.\n# TYPE qrserve_link_sent_frames_total counter\n")
		for _, l := range links {
			fmt.Fprintf(w, "qrserve_link_sent_frames_total{peer=\"%d\"} %d\n", l.Peer, l.SentFrames)
		}
		fmt.Fprintf(w, "# HELP qrserve_link_recv_bytes_total Bytes received from each peer rank.\n# TYPE qrserve_link_recv_bytes_total counter\n")
		for _, l := range links {
			fmt.Fprintf(w, "qrserve_link_recv_bytes_total{peer=\"%d\"} %d\n", l.Peer, l.RecvBytes)
		}
		fmt.Fprintf(w, "# HELP qrserve_link_recv_frames_total Frames received from each peer rank.\n# TYPE qrserve_link_recv_frames_total counter\n")
		for _, l := range links {
			fmt.Fprintf(w, "qrserve_link_recv_frames_total{peer=\"%d\"} %d\n", l.Peer, l.RecvFrames)
		}
		fmt.Fprintf(w, "# HELP qrserve_link_queue_depth Outbound frames queued toward each peer rank.\n# TYPE qrserve_link_queue_depth gauge\n")
		for _, l := range links {
			fmt.Fprintf(w, "qrserve_link_queue_depth{peer=\"%d\"} %d\n", l.Peer, l.QueueDepth)
		}
	}
	if br, ok := s.cfg.Ep.(transport.BarrierReporter); ok {
		// These count barriers run on the ROOT endpoint itself, outside any
		// mux session — in fleet mode jobs barrier through their mux job
		// sessions instead, so these staying near zero is expected, not a
		// bug. Per-session barriers are qrserve_mux_barriers_total below.
		bs := br.BarrierStats()
		fmt.Fprintf(w, "# HELP qrserve_transport_barriers_total Barriers run directly on the root fleet endpoint (not mux job sessions; see qrserve_mux_barriers_total).\n# TYPE qrserve_transport_barriers_total counter\nqrserve_transport_barriers_total %d\n", bs.Count)
		fmt.Fprintf(w, "# HELP qrserve_transport_barrier_wait_seconds_total Seconds spent waiting in root-endpoint barriers.\n# TYPE qrserve_transport_barrier_wait_seconds_total counter\nqrserve_transport_barrier_wait_seconds_total %g\n", bs.Wait.Seconds())
	}
	if s.mux != nil {
		degraded := 0
		if s.Degraded() {
			degraded = 1
		}
		fmt.Fprintf(w, "# HELP qrserve_fleet_ranks_live Fleet ranks still alive (server included).\n# TYPE qrserve_fleet_ranks_live gauge\nqrserve_fleet_ranks_live %d\n", s.AgentsLive())
		fmt.Fprintf(w, "# HELP qrserve_fleet_degraded Whether any fleet agent has been evicted (0/1).\n# TYPE qrserve_fleet_degraded gauge\nqrserve_fleet_degraded %d\n", degraded)
		mbs := s.mux.BarrierTotals()
		fmt.Fprintf(w, "# HELP qrserve_mux_barriers_total Collective barriers completed across all mux job sessions, surviving their close.\n# TYPE qrserve_mux_barriers_total counter\nqrserve_mux_barriers_total %d\n", mbs.Count)
		fmt.Fprintf(w, "# HELP qrserve_mux_barrier_wait_seconds_total Seconds spent waiting in mux job-session barriers.\n# TYPE qrserve_mux_barrier_wait_seconds_total counter\nqrserve_mux_barrier_wait_seconds_total %g\n", mbs.Wait.Seconds())
		open, pending, backlog := s.mux.Depths()
		fmt.Fprintf(w, "# HELP qrserve_mux_jobs_open Mux job channels currently open.\n# TYPE qrserve_mux_jobs_open gauge\nqrserve_mux_jobs_open %d\n", open)
		fmt.Fprintf(w, "# HELP qrserve_mux_pending_messages Messages parked for not-yet-open mux channels.\n# TYPE qrserve_mux_pending_messages gauge\nqrserve_mux_pending_messages %d\n", pending)
		fmt.Fprintf(w, "# HELP qrserve_mux_backlog_messages Messages buffered in open job mailboxes awaiting receivers.\n# TYPE qrserve_mux_backlog_messages gauge\nqrserve_mux_backlog_messages %d\n", backlog)
	}
}

// Close shuts the service down: stop admitting, cancel everything, tell the
// agents to exit, release the fleet sessions and the pool. The underlying
// endpoint stays open for the caller to close.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.stop() // cancels every job context derived from baseCtx
		s.mgr.Close()
		// Flush dirty session spines to their checkpoints while the pool is
		// still alive: append streams unwind on the canceled baseCtx first.
		if err := s.sessions.Close(); err != nil {
			s.cfg.Logf("session table close: %v", err)
		}
		if s.mux != nil {
			s.broadcast(ctlMsg{Op: "shutdown"})
			s.ctl.Close()
			s.mux.Close()
		}
		// Persist the calibrated machine model next to the checkpoints so
		// the next boot starts with this fleet's measured (α, β) as priors.
		if s.cfg.CheckpointDir != "" {
			if est := s.obs.Estimator(); est != nil && len(est.Links()) > 0 {
				path := filepath.Join(s.cfg.CheckpointDir, obs.ModelFileName)
				if err := est.Save(path); err != nil {
					s.cfg.Logf("machine model save: %v", err)
				} else {
					s.obs.Emit(obs.Event{Kind: obs.EvModelSaved, Detail: path})
					s.cfg.Logf("machine model saved to %s", path)
				}
			}
		}
		s.pool.Close()
	})
}

// rRows converts the R factor to row-major rows for the JSON surface.
func rRows(r *matrix.Mat) [][]float64 {
	if r == nil {
		return nil
	}
	rows := make([][]float64, r.Rows)
	for i := range rows {
		row := make([]float64, r.Cols)
		for c := 0; c < r.Cols; c++ {
			row[c] = r.At(i, c)
		}
		rows[i] = row
	}
	return rows
}
