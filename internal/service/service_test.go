package service

import (
	"context"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/transport"
)

// oracleR factors the spec's matrix with the sequential reference and
// returns R for comparison.
func oracleR(t *testing.T, spec JobSpec) *matrix.Mat {
	t.Helper()
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	var d *matrix.Mat
	if len(spec.Data) > 0 {
		d = matrix.New(spec.M, spec.N)
		copy(d.Data, spec.Data)
	} else {
		d = matrix.NewRand(spec.M, spec.N, rand.New(rand.NewSource(spec.Seed)))
	}
	f, err := qr.Factorize(matrix.FromDense(d, opts.NB), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f.R()
}

func checkResultR(t *testing.T, label string, got [][]float64, want *matrix.Mat) {
	t.Helper()
	if len(got) != want.Rows {
		t.Errorf("%s: R has %d rows, want %d", label, len(got), want.Rows)
		return
	}
	for i, row := range got {
		if len(row) != want.Cols {
			t.Errorf("%s: R row %d has %d cols, want %d", label, i, len(row), want.Cols)
			return
		}
		for c := range row {
			if d := math.Abs(row[c] - want.At(i, c)); d > 1e-12 {
				t.Errorf("%s: R[%d,%d] differs from oracle by %g", label, i, c, d)
				return
			}
		}
	}
}

// The headline requirement: one server sustains at least 8 concurrent jobs
// with distinct shapes and trees, every result matching the sequential
// oracle, with correct terminal accounting.
func TestServerConcurrentJobsOracle(t *testing.T) {
	s, err := NewServer(Config{Threads: 4, QueueCap: 16, MaxConcurrent: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	specs := []JobSpec{
		{M: 128, N: 64, NB: 32, IB: 8, Tree: "hierarchical", H: 2, Seed: 1},
		{M: 192, N: 96, NB: 32, IB: 8, Tree: "flat", Seed: 2},
		{M: 160, N: 64, NB: 32, IB: 8, Tree: "binary", Seed: 3},
		{M: 96, N: 96, NB: 32, IB: 8, Tree: "hierarchical", H: 2, Seed: 4},
		{M: 256, N: 64, NB: 64, IB: 16, Tree: "flat", Seed: 5},
		{M: 128, N: 32, NB: 32, IB: 8, Tree: "binary", Seed: 6},
		{M: 224, N: 96, NB: 32, IB: 8, Tree: "hierarchical", H: 2, Seed: 7},
		{M: 160, N: 160, NB: 32, IB: 8, Tree: "flat", Seed: 8},
	}
	jobs := make([]*Job, len(specs))
	for i, sp := range specs {
		j, err := s.Submit(sp)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		select {
		case <-j.Done():
		case <-time.After(120 * time.Second):
			t.Fatalf("job %d did not finish", i)
		}
		state, errMsg := j.State()
		if state != StateDone {
			t.Fatalf("job %d state = %s (%s)", i, state, errMsg)
		}
		res := j.Result()
		if !res.OK {
			t.Errorf("job %d residual %g above tolerance", i, res.Residual)
		}
		checkResultR(t, j.Spec.Tree, res.R, oracleR(t, specs[i]))
	}
	if got := s.metrics.Completed.Load(); got != int64(len(specs)) {
		t.Errorf("completed = %d, want %d", got, len(specs))
	}
	if got := s.metrics.Running.Load(); got != 0 {
		t.Errorf("running gauge = %d after drain", got)
	}
}

// An uploaded matrix (Data) round-trips through admission and matches its
// oracle.
func TestServerUploadedMatrix(t *testing.T) {
	s, err := NewServer(Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(11))
	d := matrix.NewRand(96, 64, rng)
	spec := JobSpec{M: 96, N: 64, NB: 32, IB: 8, Data: append([]float64(nil), d.Data...)}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if state, msg := j.State(); state != StateDone {
		t.Fatalf("state = %s (%s)", state, msg)
	}
	checkResultR(t, "upload", j.Result().R, oracleR(t, spec))
}

// Full HTTP round-trip: submit-and-wait, fetch with R, reject invalid
// specs, 404 unknown ids, metrics exposition.
func TestServerHTTP(t *testing.T) {
	s, err := NewServer(Config{Threads: 2, QueueCap: 8, MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	if err := c.Health(); err != nil {
		t.Fatalf("health: %v", err)
	}
	spec := JobSpec{M: 128, N: 64, NB: 32, IB: 8, Seed: 21}
	v, code, err := c.Submit(spec, true)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if code != 200 || v.Status != string(StateDone) || !v.OK {
		t.Fatalf("submit-and-wait: code %d status %s ok %v", code, v.Status, v.OK)
	}
	got, err := c.Job(v.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	checkResultR(t, "http", got.R, oracleR(t, spec))

	if _, code, err := c.Submit(JobSpec{M: 10, N: 20}, false); err == nil || code != 400 {
		t.Errorf("wide matrix accepted (code %d, err %v)", code, err)
	}
	if _, err := c.Job(99999, false); err == nil {
		t.Error("unknown job id did not 404")
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"qrserve_jobs_accepted_total",
		"qrserve_jobs_completed_total 1",
		"qrserve_queue_depth",
		"qrserve_job_latency_seconds_count 1",
		"qrserve_vdp_firings_total{class=\"panel\"}",
		"qrserve_gflops",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// HTTP backpressure: with the queue full the service answers 429 and the
// rejection is counted; accepted work still completes afterwards.
func TestServerHTTPBackpressure(t *testing.T) {
	s, err := NewServer(Config{Threads: 1, QueueCap: 1, MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	// One large job occupies the single runner; one sits in the queue.
	big := JobSpec{M: 768, N: 384, NB: 32, IB: 8, Seed: 31}
	first, _, err := c.Submit(big, false)
	if err != nil {
		t.Fatal(err)
	}
	var queued JobView
	deadline := time.Now().Add(10 * time.Second)
	for {
		// Fill the queue: keep submitting until one lands in it (the first
		// job may not have been dispatched yet).
		v, code, err := c.Submit(JobSpec{M: 96, N: 64, NB: 32, IB: 8, Seed: 32}, false)
		if err == nil && code == 202 {
			if s.mgr.Depth() >= 1 {
				queued = v
				break
			}
			continue
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}
	v, code, err := c.Submit(JobSpec{M: 96, N: 64, NB: 32, IB: 8, Seed: 33}, false)
	if err == nil || code != 429 {
		t.Fatalf("submit beyond capacity: code %d err %v view %+v", code, err, v)
	}
	if got := s.metrics.RejectedFull.Load(); got < 1 {
		t.Errorf("rejected_full = %d, want >= 1", got)
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, `qrserve_jobs_rejected_total{reason="queue_full"}`) {
		t.Error("metrics missing queue_full rejection counter")
	}
	// Drain: everything admitted still completes.
	for _, id := range []uint32{first.ID, queued.ID} {
		j, err := s.Get(id)
		if err != nil {
			t.Fatalf("job %d: %v", id, err)
		}
		select {
		case <-j.Done():
		case <-time.After(120 * time.Second):
			t.Fatalf("job %d did not finish", id)
		}
	}
}

// Cancel a running job over HTTP: terminal state canceled, counters agree,
// and the service takes new work afterwards.
func TestServerCancelRunning(t *testing.T) {
	s, err := NewServer(Config{Threads: 1, QueueCap: 4, MaxConcurrent: 1, DeadlockTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j, err := s.Submit(JobSpec{M: 1024, N: 512, NB: 32, IB: 8, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	j.Cancel()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("canceled job did not reach a terminal state")
	}
	if state, _ := j.State(); state != StateCanceled {
		t.Fatalf("state = %s, want canceled", state)
	}
	if got := s.metrics.Canceled.Load(); got != 1 {
		t.Errorf("canceled = %d, want 1", got)
	}
	j2, err := s.Submit(JobSpec{M: 96, N: 64, NB: 32, IB: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	if state, msg := j2.State(); state != StateDone {
		t.Fatalf("post-cancel job state = %s (%s)", state, msg)
	}
}

// Fleet mode: a server on rank 0 and an agent on rank 1 share a 2-rank
// in-process mesh; concurrent jobs multiplex over it and match the oracle.
func TestServerFleet(t *testing.T) {
	l := transport.NewLocal(2)
	agent, err := NewAgent(l.Endpoint(1), 2, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	agentDone := make(chan error, 1)
	go func() { agentDone <- agent.Run(context.Background()) }()

	s, err := NewServer(Config{Threads: 2, QueueCap: 8, MaxConcurrent: 4, Ep: l.Endpoint(0), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	specs := []JobSpec{
		{M: 160, N: 64, NB: 32, IB: 8, Tree: "hierarchical", H: 2, Seed: 51},
		{M: 128, N: 96, NB: 32, IB: 8, Tree: "flat", Seed: 52},
		{M: 192, N: 64, NB: 32, IB: 8, Tree: "binary", Seed: 53},
	}
	var jobs []*Job
	for i, sp := range specs {
		j, err := s.Submit(sp)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	for i, j := range jobs {
		select {
		case <-j.Done():
		case <-time.After(120 * time.Second):
			t.Fatalf("fleet job %d did not finish", i)
		}
		state, msg := j.State()
		if state != StateDone {
			t.Fatalf("fleet job %d state = %s (%s)", i, state, msg)
		}
		if !j.Result().OK {
			t.Errorf("fleet job %d residual %g", i, j.Result().Residual)
		}
		checkResultR(t, "fleet", j.Result().R, oracleR(t, specs[i]))
	}
	s.Close()
	select {
	case err := <-agentDone:
		if err != nil {
			t.Errorf("agent exited with %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("agent did not exit after shutdown broadcast")
	}
	agent.Close()
}

// Canceling fleet jobs must not wedge dispatcher workers or the agent:
// when ranks observe the cancel at different times, a rank whose share
// already finished sits in the collective post-run barrier that its
// aborting peers never enter, and only failing the job's session releases
// it. Cancel as many running jobs as there are dispatcher workers, then
// prove every worker is free again (a fresh job completes) and that the
// agent still drains and shuts down. The deadlock watchdog is disabled so
// a wedged barrier hangs the test instead of being silently rescued.
func TestServerFleetCancelReleasesWorkers(t *testing.T) {
	l := transport.NewLocal(2)
	agent, err := NewAgent(l.Endpoint(1), 2, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	agentDone := make(chan error, 1)
	go func() { agentDone <- agent.Run(context.Background()) }()

	const workers = 2
	s, err := NewServer(Config{Threads: 2, QueueCap: 8, MaxConcurrent: workers,
		Ep: l.Endpoint(0), DeadlockTimeout: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		j, err := s.Submit(JobSpec{M: 1024, N: 512, NB: 32, IB: 8, Seed: int64(70 + i)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		// Stagger the cancels so they land at different points of the run
		// (including mid-flight, after dispatch).
		time.Sleep(time.Duration(50+100*i) * time.Millisecond)
		j.Cancel()
		select {
		case <-j.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("canceled fleet job %d did not reach a terminal state", i)
		}
		if state, msg := j.State(); state != StateCanceled {
			t.Fatalf("fleet job %d state = %s (%s), want canceled", i, state, msg)
		}
	}
	// Every dispatcher worker must be back: saturate them all with fresh
	// work and require completion.
	spec := JobSpec{M: 128, N: 64, NB: 32, IB: 8, Seed: 79}
	var after []*Job
	for i := 0; i < workers; i++ {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("post-cancel submit %d: %v", i, err)
		}
		after = append(after, j)
	}
	for i, j := range after {
		select {
		case <-j.Done():
		case <-time.After(120 * time.Second):
			t.Fatalf("post-cancel job %d did not finish: a dispatcher worker is wedged", i)
		}
		if state, msg := j.State(); state != StateDone {
			t.Fatalf("post-cancel job %d state = %s (%s)", i, state, msg)
		}
		checkResultR(t, "post-cancel", j.Result().R, oracleR(t, spec))
	}
	s.Close()
	select {
	case err := <-agentDone:
		if err != nil {
			t.Errorf("agent exited with %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("agent did not exit after shutdown: its job WaitGroup is wedged")
	}
	agent.Close()
}

// Result eviction bounds the registry: old terminal jobs disappear.
func TestServerEviction(t *testing.T) {
	s, err := NewServer(Config{Threads: 2, QueueCap: 8, MaxConcurrent: 2, ResultCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var ids []uint32
	for i := 0; i < 4; i++ {
		j, err := s.Submit(JobSpec{M: 64, N: 32, NB: 32, IB: 8, Seed: int64(60 + i)})
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
		ids = append(ids, j.ID)
	}
	if _, err := s.Get(ids[0]); err == nil {
		t.Error("oldest job survived eviction")
	}
	if _, err := s.Get(ids[3]); err != nil {
		t.Errorf("newest job evicted: %v", err)
	}
	if got := s.resident(); got > 2 {
		t.Errorf("resident = %d, want <= 2", got)
	}
}
