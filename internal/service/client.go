package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"pulsarqr/internal/batch"
	"pulsarqr/internal/matrix"
)

// Client is a thin HTTP client for qrserve, used by the smoke tests and
// available to callers embedding the service.
type Client struct {
	Base string // e.g. "http://127.0.0.1:7311"
	HTTP *http.Client

	// Retry429 is the number of times a 429 response is retried before it
	// surfaces as an error. Zero (the default) disables retries, so 429s
	// stay observable — tests and admission-aware callers depend on that.
	Retry429 int
	// Backoff is the wait before a 429 retry when the server sent no
	// usable Retry-After header; zero defaults to one second. A Retry-After
	// header always wins over this fallback.
	Backoff time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// retryWait returns how long to wait before retrying a 429: the server's
// Retry-After header when present and parseable, the configured fallback
// otherwise.
func (c *Client) retryWait(resp *http.Response) time.Duration {
	if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec >= 0 {
		return time.Duration(sec) * time.Second
	}
	if c.Backoff > 0 {
		return c.Backoff
	}
	return time.Second
}

func (c *Client) do(method, path string, body, out any) (int, error) {
	var enc []byte
	if body != nil {
		var err error
		if enc, err = json.Marshal(body); err != nil {
			return 0, err
		}
	}
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(enc)
		}
		req, err := http.NewRequest(method, c.Base+path, rd)
		if err != nil {
			return 0, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return 0, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < c.Retry429 {
			wait := c.retryWait(resp)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(wait)
			continue
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, err
		}
		if resp.StatusCode >= 400 {
			var e errorResponse
			if json.Unmarshal(data, &e) == nil && e.Error != "" {
				return resp.StatusCode, fmt.Errorf("%s", e.Error)
			}
			return resp.StatusCode, fmt.Errorf("http %d", resp.StatusCode)
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return resp.StatusCode, err
			}
		}
		return resp.StatusCode, nil
	}
}

// Submit posts a factorization; with wait true the call blocks until the
// job is terminal. A 429 surfaces as an error with ErrQueueFull's message.
func (c *Client) Submit(spec JobSpec, wait bool) (JobView, int, error) {
	var v JobView
	code, err := c.do("POST", "/v1/factorize", submitRequest{JobSpec: spec, Wait: wait}, &v)
	return v, code, err
}

// Job fetches a job's state; includeR adds the R factor to the view.
func (c *Client) Job(id uint32, includeR bool) (JobView, error) {
	path := fmt.Sprintf("/v1/jobs/%d", id)
	if includeR {
		path += "?include=r"
	}
	var v JobView
	_, err := c.do("GET", path, nil, &v)
	return v, err
}

// Cancel requests a job's cancellation.
func (c *Client) Cancel(id uint32) (JobView, error) {
	var v JobView
	_, err := c.do("DELETE", fmt.Sprintf("/v1/jobs/%d", id), nil, &v)
	return v, err
}

// Health checks /healthz.
func (c *Client) Health() error {
	var out struct {
		OK bool `json:"ok"`
	}
	if _, err := c.do("GET", "/healthz", nil, &out); err != nil {
		return err
	}
	if !out.OK {
		return fmt.Errorf("service unhealthy")
	}
	return nil
}

// Plan posts a dry-run planning request: the decision the autotuner would
// make for spec at dispatch time, committing nothing.
func (c *Client) Plan(spec JobSpec) (PlanResponse, error) {
	var v PlanResponse
	_, err := c.do("POST", "/v1/plan", spec, &v)
	return v, err
}

// MachineModel fetches the server's current machine-model estimate.
func (c *Client) MachineModel() (MachineModelView, error) {
	var v MachineModelView
	_, err := c.do("GET", "/v1/machine-model", nil, &v)
	return v, err
}

// Batch streams mats through POST /v1/batch and calls each for every R
// factor as it arrives — in completion order, not submission order; the
// result's Index says which input it answers. It returns the server's
// trailer, whose Done/Shed reconcile partial progress and whose checksum the
// reader has already verified against the received bytes. Every matrix must
// be m×n with m ≥ n ≥ 1 and m ≤ batch.MaxDim. 429 responses are retried
// Retry429 times, honoring Retry-After.
func (c *Client) Batch(mats []*matrix.Mat, each func(res batch.Result) error) (batch.Trailer, error) {
	for attempt := 0; ; attempt++ {
		tr, status, err := c.batchOnce(mats, each)
		if status == http.StatusTooManyRequests && attempt < c.Retry429 {
			time.Sleep(tr.retryWait(c))
			continue
		}
		return tr.Trailer, err
	}
}

// batchTrailer carries the trailer plus the 429 wait hint through a retry
// loop without re-reading headers.
type batchTrailer struct {
	batch.Trailer
	retryAfter time.Duration
}

func (t batchTrailer) retryWait(c *Client) time.Duration {
	if t.retryAfter > 0 {
		return t.retryAfter
	}
	if c.Backoff > 0 {
		return c.Backoff
	}
	return time.Second
}

func (c *Client) batchOnce(mats []*matrix.Mat, each func(res batch.Result) error) (batchTrailer, int, error) {
	// The request body streams through a pipe: 10k matrices never exist as
	// one contiguous buffer on either side of the wire.
	pr, pw := io.Pipe()
	go func() {
		if err := batch.WriteRequestHeader(pw, len(mats)); err != nil {
			pw.CloseWithError(err)
			return
		}
		var buf []byte
		for _, m := range mats {
			buf = batch.AppendMatrix(buf[:0], m)
			if _, err := pw.Write(buf); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()

	req, err := http.NewRequest("POST", c.Base+"/v1/batch", pr)
	if err != nil {
		return batchTrailer{}, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return batchTrailer{}, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t := batchTrailer{retryAfter: 0}
		if sec, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && sec >= 0 {
			t.retryAfter = time.Duration(sec) * time.Second
		}
		data, _ := io.ReadAll(resp.Body)
		var e errorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return t, resp.StatusCode, fmt.Errorf("%s", e.Error)
		}
		return t, resp.StatusCode, fmt.Errorf("http %d", resp.StatusCode)
	}

	rd, err := batch.NewResultReader(resp.Body)
	if err != nil {
		return batchTrailer{}, resp.StatusCode, err
	}
	for {
		res, tr, err := rd.Next()
		if err != nil {
			return batchTrailer{}, resp.StatusCode, err
		}
		if tr != nil {
			return batchTrailer{Trailer: *tr}, resp.StatusCode, nil
		}
		if each != nil {
			if err := each(*res); err != nil {
				return batchTrailer{}, resp.StatusCode, err
			}
		}
	}
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics() (string, error) {
	req, err := http.NewRequest("GET", c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
