package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is a thin HTTP client for qrserve, used by the smoke tests and
// available to callers embedding the service.
type Client struct {
	Base string // e.g. "http://127.0.0.1:7311"
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(method, path string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 400 {
		var e errorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return resp.StatusCode, fmt.Errorf("%s", e.Error)
		}
		return resp.StatusCode, fmt.Errorf("http %d", resp.StatusCode)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// Submit posts a factorization; with wait true the call blocks until the
// job is terminal. A 429 surfaces as an error with ErrQueueFull's message.
func (c *Client) Submit(spec JobSpec, wait bool) (JobView, int, error) {
	var v JobView
	code, err := c.do("POST", "/v1/factorize", submitRequest{JobSpec: spec, Wait: wait}, &v)
	return v, code, err
}

// Job fetches a job's state; includeR adds the R factor to the view.
func (c *Client) Job(id uint32, includeR bool) (JobView, error) {
	path := fmt.Sprintf("/v1/jobs/%d", id)
	if includeR {
		path += "?include=r"
	}
	var v JobView
	_, err := c.do("GET", path, nil, &v)
	return v, err
}

// Cancel requests a job's cancellation.
func (c *Client) Cancel(id uint32) (JobView, error) {
	var v JobView
	_, err := c.do("DELETE", fmt.Sprintf("/v1/jobs/%d", id), nil, &v)
	return v, err
}

// Health checks /healthz.
func (c *Client) Health() error {
	var out struct {
		OK bool `json:"ok"`
	}
	if _, err := c.do("GET", "/healthz", nil, &out); err != nil {
		return err
	}
	if !out.OK {
		return fmt.Errorf("service unhealthy")
	}
	return nil
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics() (string, error) {
	req, err := http.NewRequest("GET", c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
