package service

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/session"
)

// genRowBlocks makes a streaming workload: the first block has full column
// rank so the sign-canonicalized R is unique from the first fold on.
func genRowBlocks(rng *rand.Rand, count, n int) []*matrix.Mat {
	out := make([]*matrix.Mat, count)
	for i := range out {
		m := 1 + rng.Intn(2*n)
		if i == 0 {
			m = n + 4
		}
		out[i] = matrix.NewRand(m, n, rng)
	}
	return out
}

// stackedOracleR factorizes the stacked blocks from scratch and returns R.
func stackedOracleR(t *testing.T, blocks []*matrix.Mat, n int) *matrix.Mat {
	t.Helper()
	rows := 0
	for _, b := range blocks {
		rows += b.Rows
	}
	a := matrix.New(rows, n)
	at := 0
	for _, b := range blocks {
		a.View(at, 0, b.Rows, n).CopyFrom(b)
		at += b.Rows
	}
	f, err := qr.Factorize(matrix.FromDense(a, 16), nil, qr.Options{NB: 16, IB: 4})
	if err != nil {
		t.Fatal(err)
	}
	return f.R()
}

// compareCanonR canonicalizes row signs (diag ≥ 0) and compares elementwise.
func compareCanonR(t *testing.T, got, want *matrix.Mat) {
	t.Helper()
	canon := func(r *matrix.Mat) {
		for i := 0; i < r.Rows && i < r.Cols; i++ {
			if r.At(i, i) < 0 {
				for j := 0; j < r.Cols; j++ {
					r.Set(i, j, -r.At(i, j))
				}
			}
		}
	}
	g, w := got.Clone(), want.Clone()
	canon(g)
	canon(w)
	scale := w.MaxAbs() + 1
	if d := matrix.MaxAbsDiff(g, w); d > 1e-10*scale {
		t.Fatalf("R mismatch: %g (scale %g)", d, scale)
	}
}

// The headline session requirement end to end over HTTP: open a streaming
// session, append row blocks over one full-duplex request observing an
// updated R after every block, and end with an R elementwise equal (after
// sign canonicalization) to a from-scratch factorization of all the rows.
func TestSessionEndToEnd(t *testing.T) {
	_, _, c := newBatchTestServer(t, Config{Threads: 3})

	rng := rand.New(rand.NewSource(41))
	n := 13
	blocks := genRowBlocks(rng, 9, n)

	info, err := c.OpenSession(SessionSpec{Tenant: "acme", N: n, NB: 16, IB: 4})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.N != n || info.Blocks != 0 {
		t.Fatalf("open returned %+v", info)
	}

	var updates []session.Update
	tr, err := c.SessionAppend(info.ID, n, blocks, nil, func(u session.Update) error {
		updates = append(updates, u)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Done != len(blocks) || tr.Shed != 0 {
		t.Fatalf("trailer done=%d shed=%d, want %d/0", tr.Done, tr.Shed, len(blocks))
	}
	if len(updates) != len(blocks) {
		t.Fatalf("got %d updates, want %d", len(updates), len(blocks))
	}
	// Every update carries monotone progress and a full R.
	wantRows := int64(0)
	for i, u := range updates {
		wantRows += int64(blocks[i].Rows)
		if u.Blocks != int64(i+1) || u.Rows != wantRows {
			t.Fatalf("update %d: blocks=%d rows=%d, want %d/%d", i, u.Blocks, u.Rows, i+1, wantRows)
		}
		if u.R == nil || u.R.Rows != n || u.R.Cols != n {
			t.Fatalf("update %d: bad R", i)
		}
	}

	// The streamed R and the GET endpoint agree bitwise, and both match the
	// from-scratch oracle elementwise after canonicalization.
	got, err := c.SessionR(info.ID, n)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got.R, updates[len(updates)-1].R); d != 0 {
		t.Fatalf("GET /r differs from last streamed update by %g", d)
	}
	compareCanonR(t, got.R, stackedOracleR(t, blocks, n))

	// Info, list, delete, gone.
	info2, err := c.SessionInfo(info.ID)
	if err != nil || info2.Blocks != int64(len(blocks)) {
		t.Fatalf("info after stream: %+v, %v", info2, err)
	}
	list, err := c.Sessions()
	if err != nil || len(list) != 1 || list[0].ID != info.ID {
		t.Fatalf("list: %+v, %v", list, err)
	}
	if err := c.CloseSession(info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionInfo(info.ID); err == nil {
		t.Fatal("deleted session still queryable")
	}

	// The metrics surface reports the session series.
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"qrserve_sessions_opened_total 1",
		"qrserve_session_appends_total 9",
		"qrserve_sessions_active 0",
		"qrserve_session_append_seconds_count 9",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// Ack-only sessions get receipts without R payloads on the append stream,
// while GET /r still serves the full state.
func TestSessionAckOnly(t *testing.T) {
	_, _, c := newBatchTestServer(t, Config{Threads: 2})
	rng := rand.New(rand.NewSource(43))
	n := 8
	blocks := genRowBlocks(rng, 4, n)
	info, err := c.OpenSession(SessionSpec{N: n, NB: 16, IB: 4, AckOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.SessionAppend(info.ID, n, blocks, nil, func(u session.Update) error {
		if u.R != nil {
			t.Error("ack-only update carried an R payload")
		}
		return nil
	})
	if err != nil || tr.Done != len(blocks) {
		t.Fatalf("append: trailer %+v, err %v", tr, err)
	}
	got, err := c.SessionR(info.ID, n)
	if err != nil {
		t.Fatal(err)
	}
	compareCanonR(t, got.R, stackedOracleR(t, blocks, n))
}

// A session with right-hand sides folds QᵀB along with R, so a least-squares
// solve from the streamed state matches the from-scratch solve.
func TestSessionWithRHS(t *testing.T) {
	srv, _, c := newBatchTestServer(t, Config{Threads: 2})
	rng := rand.New(rand.NewSource(47))
	n, nrhs := 9, 2
	blocks := genRowBlocks(rng, 5, n)
	rhs := make([]*matrix.Mat, len(blocks))
	for i, b := range blocks {
		rhs[i] = matrix.NewRand(b.Rows, nrhs, rng)
	}
	info, err := c.OpenSession(SessionSpec{N: n, NRHS: nrhs, NB: 16, IB: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionAppend(info.ID, n, blocks, rhs, nil); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.Sessions().Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sess.Current()
	if err != nil {
		t.Fatal(err)
	}
	x := cur.SolveLS()

	// Oracle: stack rows and rhs, factorize with the rhs riding along.
	rows := 0
	for _, b := range blocks {
		rows += b.Rows
	}
	a, b := matrix.New(rows, n), matrix.New(rows, nrhs)
	at := 0
	for i, blk := range blocks {
		a.View(at, 0, blk.Rows, n).CopyFrom(blk)
		b.View(at, 0, blk.Rows, nrhs).CopyFrom(rhs[i])
		at += blk.Rows
	}
	f, err := qr.Factorize(matrix.FromDense(a, 16), matrix.FromDense(b, 16), qr.Options{NB: 16, IB: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := f.SolveFromQTB()
	scale := want.MaxAbs() + 1
	if d := matrix.MaxAbsDiff(x, want); d > 1e-9*scale {
		t.Fatalf("least-squares drift: %g (scale %g)", d, scale)
	}
}

// A server restart over the same checkpoint directory restores the session
// and replaying the remaining blocks yields an R bitwise equal to an
// uninterrupted run — the durability contract at the HTTP surface.
func TestSessionCrashRestoreBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n := 12
	blocks := genRowBlocks(rng, 8, n)
	cut := 3

	// Oracle: one uninterrupted streaming run, memory-only server.
	_, _, oc := newBatchTestServer(t, Config{Threads: 2})
	oinfo, err := oc.OpenSession(SessionSpec{N: n, NB: 16, IB: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oc.SessionAppend(oinfo.ID, n, blocks, nil, nil); err != nil {
		t.Fatal(err)
	}
	want, err := oc.SessionR(oinfo.ID, n)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: durable server, checkpoint every append, stopped
	// after cut blocks without a clean session close.
	dir := t.TempDir()
	sA, err := NewServer(Config{Threads: 2, CheckpointDir: dir, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(sA.Handler())
	cA := &Client{Base: tsA.URL, HTTP: tsA.Client()}
	info, err := cA.OpenSession(SessionSpec{N: n, NB: 16, IB: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cA.SessionAppend(info.ID, n, blocks[:cut], nil, nil); err != nil {
		t.Fatal(err)
	}
	tsA.Close()
	sA.Close()

	// Restart: a fresh server over the same directory re-registers the
	// session from its checkpoint, parked until first use.
	sB, err := NewServer(Config{Threads: 2, CheckpointDir: dir, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(sB.Handler())
	t.Cleanup(tsB.Close)
	t.Cleanup(sB.Close)
	cB := &Client{Base: tsB.URL, HTTP: tsB.Client()}
	rinfo, err := cB.SessionInfo(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Blocks != int64(cut) || rinfo.Loaded {
		t.Fatalf("restored info %+v, want blocks=%d loaded=false", rinfo, cut)
	}
	if _, err := cB.SessionAppend(info.ID, n, blocks[cut:], nil, nil); err != nil {
		t.Fatal(err)
	}
	got, err := cB.SessionR(info.ID, n)
	if err != nil {
		t.Fatal(err)
	}
	if got.Blocks != int64(len(blocks)) {
		t.Fatalf("restored run committed %d blocks, want %d", got.Blocks, len(blocks))
	}
	// Identical block sequence, identical kernels: the restored-and-replayed
	// R must equal the uninterrupted one to the bit.
	if d := matrix.MaxAbsDiff(got.R, want.R); d != 0 {
		t.Fatalf("restored R differs from uninterrupted run by %g", d)
	}
	if sB.metrics.SessionsRestored.Load() == 0 {
		t.Error("restore path never fired the restored counter")
	}
	m, err := cB.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, wantSeries := range []string{
		"qrserve_checkpoint_writes_total",
		"qrserve_checkpoint_resident_bytes",
		"qrserve_checkpoint_age_seconds",
	} {
		if !strings.Contains(m, wantSeries) {
			t.Errorf("metrics missing %q", wantSeries)
		}
	}
}

// A request body cut off mid-stream still yields an orderly response: every
// block delivered before the cut commits, the trailer reconciles the shed
// remainder, and the session stays usable.
func TestSessionAppendTruncatedBody(t *testing.T) {
	_, ts, c := newBatchTestServer(t, Config{Threads: 2})
	rng := rand.New(rand.NewSource(59))
	n := 8
	blocks := genRowBlocks(rng, 4, n)
	info, err := c.OpenSession(SessionSpec{N: n, NB: 16, IB: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Declare 4 blocks, deliver 2, then end the body at a frame boundary.
	var body bytes.Buffer
	session.WriteAppendHeader(&body, 4)
	var buf []byte
	for _, b := range blocks[:2] {
		buf = session.AppendBlock(buf[:0], b, nil)
		body.Write(buf)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions/"+info.ID+"/append", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	rd, err := session.NewReplyReader(resp.Body, n)
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	for {
		_, tr, err := rd.Next()
		if err != nil {
			t.Fatalf("reply stream: %v", err)
		}
		if tr != nil {
			if tr.Done != 2 || tr.Shed != 2 {
				t.Fatalf("trailer done=%d shed=%d, want 2/2", tr.Done, tr.Shed)
			}
			break
		}
		frames++
	}
	if frames != 2 {
		t.Fatalf("got %d update frames, want 2", frames)
	}

	// The session took the two delivered blocks and keeps serving.
	if info2, err := c.SessionInfo(info.ID); err != nil || info2.Blocks != 2 {
		t.Fatalf("after truncation: %+v, %v", info2, err)
	}
	if _, err := c.SessionAppend(info.ID, n, blocks[2:], nil, nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.SessionR(info.ID, n)
	if err != nil {
		t.Fatal(err)
	}
	compareCanonR(t, got.R, stackedOracleR(t, blocks, n))
}

// Pre-stream failures return clean JSON statuses, never a committed 200
// octet stream: missing session 404, deleted session append 404, malformed
// magic 400.
func TestSessionAppendErrorStatuses(t *testing.T) {
	_, ts, c := newBatchTestServer(t, Config{Threads: 2})
	post := func(path string, body io.Reader) *http.Response {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+path, "application/octet-stream", body)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := post("/v1/sessions/nope/append", strings.NewReader("QSA1\x00\x00\x00\x00")); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing session: %d, want 404", resp.StatusCode)
	}
	info, err := c.OpenSession(SessionSpec{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if resp := post("/v1/sessions/"+info.ID+"/append", strings.NewReader("JUNK")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad magic: %d, want 400", resp.StatusCode)
	}
	if err := c.CloseSession(info.ID); err != nil {
		t.Fatal(err)
	}
	if resp := post("/v1/sessions/"+info.ID+"/append", strings.NewReader("QSA1\x00\x00\x00\x00")); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session: %d, want 404", resp.StatusCode)
	}
}

// The regression contract for load shedding: all three admission classes —
// the job queue, batch streams, and session streams (append slots and table
// capacity) — refuse work through the same helper, so every 429 carries a
// Retry-After hint.
func TestShedAllClassesEmitRetryAfter(t *testing.T) {
	s, ts, c := newBatchTestServer(t, Config{
		Threads: 1, QueueCap: 1, MaxConcurrent: 1, BatchStreams: 1, SessionStreams: 1,
		MaxSessions: 1, DeadlockTimeout: -1,
	})

	expect429 := func(what string, resp *http.Response, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s: status %d, want 429", what, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s: 429 carried no Retry-After header", what)
		}
	}

	// Jobs: wedge the execution slot, fill the queue, then overflow it.
	slow := JobSpec{M: 256, N: 256, NB: 8, IB: 4, Tree: "flat", Seed: 3}
	if _, err := s.Submit(slow); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return s.metrics.Running.Load() == 1 })
	if _, err := s.Submit(slow); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/factorize", "application/json",
		strings.NewReader(`{"m":64,"n":32,"nb":32,"ib":8,"tree":"flat","seed":9}`))
	expect429("job overflow", resp, err)

	// Batch: occupy the only stream slot, then arrive.
	s.batchSem <- struct{}{}
	resp, err = ts.Client().Post(ts.URL+"/v1/batch", "application/octet-stream", strings.NewReader("QBR1\x00\x00\x00\x00"))
	expect429("batch overflow", resp, err)
	<-s.batchSem

	// Session appends: occupy the only append slot, then arrive.
	info, err := c.OpenSession(SessionSpec{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.sessionSem <- struct{}{}
	resp, err = ts.Client().Post(ts.URL+"/v1/sessions/"+info.ID+"/append", "application/octet-stream", strings.NewReader("QSA1\x00\x00\x00\x00"))
	expect429("session append overflow", resp, err)
	<-s.sessionSem

	// Session table: the single slot is held, a second open is shed.
	resp, err = ts.Client().Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{"n":8}`))
	expect429("session table overflow", resp, err)
	if s.metrics.SessionsRejected.Load() != 1 {
		t.Errorf("sessions rejected counter = %d, want 1", s.metrics.SessionsRejected.Load())
	}
}
