package service

// Job tracing through the service: the HTTP trace endpoint serves gathered
// shards for traced jobs only, and concurrent traced jobs on a shared
// fleet keep their shards isolated — each job sees exactly its own run.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pulsarqr/internal/trace"
	"pulsarqr/internal/transport"
)

// waitDone blocks until the job reaches StateDone or the test times out.
func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("job %d did not finish", j.ID)
	}
	if state, msg := j.State(); state != StateDone {
		t.Fatalf("job %d state = %s (%s)", j.ID, state, msg)
	}
}

// fireCounts tallies per-rank fire events across a job's shards.
func fireCounts(shards []trace.Shard) map[int]int {
	counts := map[int]int{}
	for _, s := range shards {
		for _, e := range s.Events {
			if e.Kind == trace.KindFire {
				counts[s.Rank]++
			}
		}
	}
	return counts
}

// A traced job's shards are served over HTTP as JSONL; an untraced job
// answers 404 on the same route.
func TestServerTraceHTTP(t *testing.T) {
	s, err := NewServer(Config{Threads: 2, QueueCap: 8, MaxConcurrent: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	traced, code, err := c.Submit(JobSpec{M: 128, N: 64, NB: 32, IB: 8, Seed: 91, Trace: true}, true)
	if err != nil || code != http.StatusOK || traced.Status != string(StateDone) {
		t.Fatalf("traced submit: code %d status %s err %v", code, traced.Status, err)
	}
	plain, code, err := c.Submit(JobSpec{M: 96, N: 64, NB: 32, IB: 8, Seed: 92}, true)
	if err != nil || code != http.StatusOK || plain.Status != string(StateDone) {
		t.Fatalf("plain submit: code %d status %s err %v", code, plain.Status, err)
	}

	get := func(id uint32) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/trace", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	resp, body := get(traced.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced job: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	shards, err := trace.ReadShards(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 || shards[0].Rank != 0 || len(shards[0].Events) == 0 {
		t.Fatalf("standalone trace: %d shards, %+v", len(shards), shards)
	}
	if n := fireCounts(shards)[0]; n == 0 {
		t.Fatal("traced job recorded no fire events")
	}

	if resp, body := get(plain.ID); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("untraced job trace: %d %s", resp.StatusCode, body)
	}
}

// Two traced jobs running concurrently on a 2-rank fleet must each gather
// a private trace: the per-rank fire counts of a job run concurrently
// equal those of the same spec run alone (placement is deterministic), so
// any cross-job bleed shows up as an inflated count.
func TestFleetTraceIsolation(t *testing.T) {
	l := transport.NewLocal(2)
	agent, err := NewAgent(l.Endpoint(1), 2, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	agentDone := make(chan error, 1)
	go func() { agentDone <- agent.Run(context.Background()) }()

	s, err := NewServer(Config{Threads: 2, QueueCap: 8, MaxConcurrent: 4, Ep: l.Endpoint(0), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	specA := JobSpec{M: 160, N: 64, NB: 32, IB: 8, Tree: "hierarchical", H: 2, Seed: 95, Trace: true}
	specB := JobSpec{M: 128, N: 96, NB: 32, IB: 8, Tree: "flat", Seed: 96, Trace: true}

	ja, err := s.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := s.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ja)
	waitDone(t, jb)

	shardsA, shardsB := ja.TraceShards(), jb.TraceShards()
	for name, shards := range map[string][]trace.Shard{"A": shardsA, "B": shardsB} {
		if len(shards) != 2 {
			t.Fatalf("job %s gathered %d shards, want 2", name, len(shards))
		}
		for r, sh := range shards {
			if sh.Rank != r || len(sh.Events) == 0 {
				t.Fatalf("job %s shard %d: rank %d, %d events", name, r, sh.Rank, len(sh.Events))
			}
		}
	}

	// Reference run: the same spec A alone on the now-idle fleet.
	jref, err := s.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, jref)
	ref := jref.TraceShards()
	if len(ref) != 2 {
		t.Fatalf("reference gathered %d shards", len(ref))
	}

	got, want := fireCounts(shardsA), fireCounts(ref)
	for r := 0; r < 2; r++ {
		if got[r] != want[r] {
			t.Fatalf("rank %d fire count: concurrent %d vs alone %d (trace bled across jobs?)",
				r, got[r], want[r])
		}
	}

	s.Close()
	select {
	case err := <-agentDone:
		if err != nil {
			t.Errorf("agent exited with %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("agent did not exit after shutdown broadcast")
	}
	agent.Close()
}
