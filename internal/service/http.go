package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"pulsarqr/internal/obs"
	"pulsarqr/internal/trace"
)

// JobView is the JSON shape of a job on the HTTP surface.
type JobView struct {
	ID        uint32          `json:"id"`
	Status    string          `json:"status"`
	Error     string          `json:"error,omitempty"`
	Tenant    string          `json:"tenant,omitempty"`
	Attempts  int             `json:"attempts,omitempty"` // requeues after fleet failures
	M         int             `json:"m"`
	N         int             `json:"n"`
	Priority  int             `json:"priority,omitempty"`
	ElapsedMS float64         `json:"elapsed_ms,omitempty"`
	Gflops    float64         `json:"gflops,omitempty"`
	Residual  float64         `json:"residual,omitempty"`
	OK        bool            `json:"ok"`
	Firings   int64           `json:"firings,omitempty"`
	Messages  int64           `json:"messages,omitempty"`
	Bytes     int64           `json:"bytes,omitempty"`
	Spans     *obs.SpanReport `json:"spans,omitempty"`  // lifecycle span accounting, live or final
	Flight    []obs.Event     `json:"flight,omitempty"` // flight-recorder tail on troubled terminals
	Plan      *PlanView       `json:"plan,omitempty"`   // autotuner decision, when the job was planned
	R         [][]float64     `json:"r,omitempty"`
}

// PlanView is the job view's autotuning block: the chosen configuration,
// what the simulator predicted, and — once the job is done — how reality
// compared.
type PlanView struct {
	Tree                string  `json:"tree"`
	NB                  int     `json:"nb"`
	IB                  int     `json:"ib"`
	H                   int     `json:"h,omitempty"`
	Ranks               int     `json:"ranks"`
	PredictedMS         float64 `json:"predicted_ms"`
	SpeedupVsDefault    float64 `json:"speedup_vs_default,omitempty"`
	FromCache           bool    `json:"from_cache,omitempty"`
	PlanMS              float64 `json:"plan_ms"`
	ActualOverPredicted float64 `json:"actual_over_predicted,omitempty"` // set once the job is done
	Rationale           string  `json:"rationale,omitempty"`
}

func viewOf(j *Job, includeR bool) JobView {
	state, errMsg := j.State()
	v := JobView{
		ID:       j.ID,
		Status:   string(state),
		Error:    errMsg,
		Tenant:   j.Spec.Tenant,
		Attempts: j.Attempts(),
		M:        j.Spec.M,
		N:        j.Spec.N,
		Priority: j.Spec.Priority,
	}
	if j.life.Started() {
		rep := j.Spans().Report()
		v.Spans = &rep
	}
	v.Flight = j.Flight()
	if d := j.Plan(); d != nil {
		c := d.Choice
		v.Plan = &PlanView{
			Tree: c.Tree, NB: c.NB, IB: c.IB, H: c.H, Ranks: c.Ranks,
			PredictedMS:      c.PredictedMS,
			SpeedupVsDefault: d.SpeedupVsDefault,
			FromCache:        d.FromCache,
			PlanMS:           d.PlanMS,
			Rationale:        d.Rationale,
		}
	}
	if r := j.Result(); r != nil {
		v.ElapsedMS = float64(r.Elapsed) / float64(time.Millisecond)
		v.Gflops = r.Gflops
		v.Residual = r.Residual
		v.OK = r.OK
		if v.Plan != nil && v.Plan.PredictedMS > 0 {
			v.Plan.ActualOverPredicted = v.ElapsedMS / v.Plan.PredictedMS
		}
		v.Firings = r.Stats.Firings
		v.Messages = r.Stats.Messages
		v.Bytes = r.Stats.Bytes
		if includeR {
			v.R = r.R
		}
	}
	return v
}

// submitRequest is the POST /v1/factorize body: a JobSpec plus the wait
// flag, which blocks the response until the job is terminal.
type submitRequest struct {
	JobSpec
	Wait bool `json:"wait,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/factorize", s.handleSubmit)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionOpen)
	mux.HandleFunc("GET /v1/sessions", s.handleSessionList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("GET /v1/sessions/{id}/r", s.handleSessionR)
	mux.HandleFunc("POST /v1/sessions/{id}/append", s.handleSessionAppend)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/machine-model", s.handleMachineModel)
	mux.HandleFunc("POST /v1/plan", s.handlePlan)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		return
	}
	j, err := s.Submit(req.JobSpec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Explicit backpressure: 429, nothing buffered. Retry-After scales
		// with how many queued jobs must drain per execution slot before a
		// retry can be admitted, so clients back off harder the deeper the
		// queue — without any client-side knowledge of server sizing.
		s.shed429(w, "job", req.Tenant, s.mgr.Depth(), s.cfg.MaxConcurrent, err.Error())
		return
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	if req.Wait {
		select {
		case <-j.Done():
		case <-r.Context().Done():
			// Client went away while waiting; the job keeps running.
			writeJSON(w, http.StatusAccepted, viewOf(j, false))
			return
		}
		writeJSON(w, http.StatusOK, viewOf(j, false))
		return
	}
	writeJSON(w, http.StatusAccepted, viewOf(j, false))
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) *Job {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad job id"})
		return nil
	}
	j, err := s.Get(uint32(id))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{err.Error()})
		return nil
	}
	return j
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, viewOf(j, r.URL.Query().Get("include") == "r"))
}

// handleTrace streams the job's gathered per-rank trace shards as JSONL,
// ready for qrtrace -merge. 404 until the job completed with Trace set.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	shards := j.TraceShards()
	if shards == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{"no trace for this job (submit with \"trace\": true and wait for completion)"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	trace.WriteShards(w, shards...)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, viewOf(j, false))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	bi := buildInfo(s.cfg.Threads)
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":           true,
		"ranks":        s.Ranks(),
		"ranks_live":   s.AgentsLive(),
		"degraded":     s.Degraded(),
		"threads":      s.cfg.Threads,
		"version":      bi.Version,
		"kernel":       bi.Kernel,
		"cpu_features": bi.CPUFeatures,
		"numa_nodes":   bi.NUMANodes,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteProm(w, s.mgr.Depth(), s.resident())
	// Process-level goroutine count: the smoke tests diff it across a batch
	// stream to prove the scheduler leaks nothing.
	fmt.Fprintf(w, "# HELP qrserve_goroutines Goroutines live in the server process.\n# TYPE qrserve_goroutines gauge\nqrserve_goroutines %d\n", runtime.NumGoroutine())
	s.writeSessionProm(w)
	s.writeTransportProm(w)
	s.writeObsProm(w)
}

// retryAfterSeconds derives a 429 Retry-After hint from queue depth: one
// second per queued job per execution slot, clamped to [1, 30].
func retryAfterSeconds(depth, slots int) int {
	if slots < 1 {
		slots = 1
	}
	sec := 1 + depth/slots
	if sec > 30 {
		sec = 30
	}
	return sec
}

// shed429 is the one load-shedding response for every admission class — the
// job queue, batch streams, session opens and session append streams all
// refuse work through it, so clients see a uniform 429 + Retry-After
// contract (depth is the work already admitted in that class, slots its
// drain parallelism) and every shed emits one structured event carrying the
// class, the tenant and the hint it was sent.
func (s *Server) shed429(w http.ResponseWriter, class, tenant string, depth, slots int, msg string) {
	sec := retryAfterSeconds(depth, slots)
	s.obs.Emit(obs.Event{Kind: obs.EvShed, Class: class, Tenant: tenant, RetryS: sec, Detail: msg})
	w.Header().Set("Retry-After", strconv.Itoa(sec))
	writeJSON(w, http.StatusTooManyRequests, errorResponse{msg})
}
