package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/session"
)

// OpenSession creates a streaming session and returns its descriptor. 429
// responses (table or tenant full) are retried Retry429 times, honoring
// Retry-After.
func (c *Client) OpenSession(spec SessionSpec) (session.Info, error) {
	var info session.Info
	_, err := c.do("POST", "/v1/sessions", spec, &info)
	return info, err
}

// SessionInfo fetches one session's descriptor.
func (c *Client) SessionInfo(id string) (session.Info, error) {
	var info session.Info
	_, err := c.do("GET", "/v1/sessions/"+id, nil, &info)
	return info, err
}

// Sessions lists every registered session.
func (c *Client) Sessions() ([]session.Info, error) {
	var out struct {
		Sessions []session.Info `json:"sessions"`
	}
	_, err := c.do("GET", "/v1/sessions", nil, &out)
	return out.Sessions, err
}

// CloseSession deletes a session and its checkpoint.
func (c *Client) CloseSession(id string) error {
	_, err := c.do("DELETE", "/v1/sessions/"+id, nil, nil)
	return err
}

// SessionAppend streams row blocks into a session over one full-duplex
// request and calls each for every committed update as it arrives — each
// update carries the session's new global R (nil for ack-only sessions).
// blocks[i] must be m×n; rhs is nil for nrhs=0 sessions, else rhs[i] is
// m×nrhs. n is the session's column count (from its Info). 429 responses are
// retried Retry429 times, honoring Retry-After.
func (c *Client) SessionAppend(id string, n int, blocks, rhs []*matrix.Mat, each func(u session.Update) error) (session.Trailer, error) {
	for attempt := 0; ; attempt++ {
		tr, status, retryAfter, err := c.sessionAppendOnce(id, n, blocks, rhs, each)
		if status == http.StatusTooManyRequests && attempt < c.Retry429 {
			wait := retryAfter
			if wait <= 0 {
				if wait = c.Backoff; wait <= 0 {
					wait = time.Second
				}
			}
			time.Sleep(wait)
			continue
		}
		return tr, err
	}
}

func (c *Client) sessionAppendOnce(id string, n int, blocks, rhs []*matrix.Mat, each func(u session.Update) error) (session.Trailer, int, time.Duration, error) {
	// The request streams through a pipe so a long-lived append session
	// never materializes its blocks as one buffer.
	pr, pw := io.Pipe()
	go func() {
		if err := session.WriteAppendHeader(pw, len(blocks)); err != nil {
			pw.CloseWithError(err)
			return
		}
		var buf []byte
		for i, b := range blocks {
			var r *matrix.Mat
			if rhs != nil {
				r = rhs[i]
			}
			buf = session.AppendBlock(buf[:0], b, r)
			if _, err := pw.Write(buf); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()

	req, err := http.NewRequest("POST", c.Base+"/v1/sessions/"+id+"/append", pr)
	if err != nil {
		return session.Trailer{}, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return session.Trailer{}, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var retryAfter time.Duration
		if sec, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && sec >= 0 {
			retryAfter = time.Duration(sec) * time.Second
		}
		data, _ := io.ReadAll(resp.Body)
		var e errorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return session.Trailer{}, resp.StatusCode, retryAfter, fmt.Errorf("%s", e.Error)
		}
		return session.Trailer{}, resp.StatusCode, retryAfter, fmt.Errorf("http %d", resp.StatusCode)
	}

	rd, err := session.NewReplyReader(resp.Body, n)
	if err != nil {
		return session.Trailer{}, resp.StatusCode, 0, err
	}
	for {
		u, tr, err := rd.Next()
		if err != nil {
			return session.Trailer{}, resp.StatusCode, 0, err
		}
		if tr != nil {
			return *tr, resp.StatusCode, 0, nil
		}
		if each != nil {
			if err := each(*u); err != nil {
				return session.Trailer{}, resp.StatusCode, 0, err
			}
		}
	}
}

// SessionR fetches the session's current global state (blocks, rows, R) as
// a one-frame QSB1 stream. n is the session's column count.
func (c *Client) SessionR(id string, n int) (session.Update, error) {
	req, err := http.NewRequest("GET", c.Base+"/v1/sessions/"+id+"/r", nil)
	if err != nil {
		return session.Update{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return session.Update{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		var e errorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return session.Update{}, fmt.Errorf("%s", e.Error)
		}
		return session.Update{}, fmt.Errorf("http %d", resp.StatusCode)
	}
	rd, err := session.NewReplyReader(resp.Body, n)
	if err != nil {
		return session.Update{}, err
	}
	var got session.Update
	seen := false
	for {
		u, tr, err := rd.Next()
		if err != nil {
			return session.Update{}, err
		}
		if tr != nil {
			if !seen {
				return session.Update{}, fmt.Errorf("session: empty R stream")
			}
			return got, nil
		}
		got, seen = *u, true
	}
}
