package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"pulsarqr/internal/blas"
	"pulsarqr/internal/kernels"
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/trace"
	"pulsarqr/internal/transport"
)

// Agent is a fleet member: a non-root rank that keeps a warm pool and
// persistent sessions and executes its share of every job the server
// dispatches. It listens on the control-plane mux channel for open, cancel
// and shutdown messages.
type Agent struct {
	ep   transport.Endpoint
	mux  *transport.Mux
	ctl  *transport.JobEndpoint
	pool *pulsar.Pool
	logf func(format string, args ...any)

	mu   sync.Mutex
	jobs map[uint32]agentAttempt

	wg sync.WaitGroup
}

// AgentOptions parameterizes NewAgentOpts.
type AgentOptions struct {
	// Threads sizes the agent's worker pool. Default 2.
	Threads int
	// PinNUMA pins pool workers to NUMA nodes with node-local workspaces;
	// best-effort, see pulsar.PoolOptions.PinNUMA.
	PinNUMA bool
	// Logf receives agent logs; nil discards them.
	Logf func(format string, args ...any)
}

// NewAgent wraps a dialed endpoint (any rank except 0) in an agent with a
// pool of threads workers.
func NewAgent(ep transport.Endpoint, threads int, logf func(string, ...any)) (*Agent, error) {
	return NewAgentOpts(ep, AgentOptions{Threads: threads, Logf: logf})
}

// NewAgentOpts wraps a dialed endpoint (any rank except 0) in an agent as
// described by opts.
func NewAgentOpts(ep transport.Endpoint, opts AgentOptions) (*Agent, error) {
	if ep.Rank() == 0 {
		return nil, fmt.Errorf("service: rank 0 runs the server, not an agent")
	}
	if opts.Threads <= 0 {
		opts.Threads = 2
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	mux := transport.NewMux(ep)
	ctl, err := mux.Open(ctlJob)
	if err != nil {
		mux.Close()
		return nil, err
	}
	pool := pulsar.NewPoolOpts(pulsar.PoolOptions{
		Threads: opts.Threads,
		State:   func(int) any { return kernels.NewWorkspace() },
		PinNUMA: opts.PinNUMA,
	})
	opts.Logf("agent rank %d: micro-kernel %s, numa pinning %v (worker 0 on node %d)",
		ep.Rank(), blas.MicroKernelName(), opts.PinNUMA, pool.WorkerNode(0))
	return &Agent{
		ep:   ep,
		mux:  mux,
		ctl:  ctl,
		pool: pool,
		jobs: map[uint32]agentAttempt{},
		logf: opts.Logf,
	}, nil
}

// Run serves control messages until the server sends shutdown, ctx is
// canceled, or the session dies. It returns after all in-flight jobs have
// unwound.
func (ag *Agent) Run(ctx context.Context) error {
	defer ag.wg.Wait()
	for {
		req := ag.ctl.Irecv(0, ctlTag)
		stop := context.AfterFunc(ctx, func() { req.Cancel() })
		req.Wait()
		stop()
		if req.Canceled() {
			ag.cancelAll()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("service: control session closed")
		}
		var msg ctlMsg
		if err := json.Unmarshal(req.Data(), &msg); err != nil {
			ag.logf("agent: bad control message: %v", err)
			continue
		}
		switch msg.Op {
		case "open":
			if msg.Spec == nil {
				ag.logf("agent: open without spec for job %d", msg.Job)
				continue
			}
			if msg.Ranks != nil && !contains(msg.Ranks, ag.ep.Rank()) {
				// An attempt sessioned onto other ranks (a degraded-fleet
				// rerun this rank is not part of).
				continue
			}
			session := msg.Session
			if session == 0 {
				session = msg.Job
			}
			jctx, cancel := context.WithCancel(ctx)
			ag.mu.Lock()
			prev := ag.jobs[msg.Job]
			ag.jobs[msg.Job] = agentAttempt{session: session, cancel: cancel}
			ag.mu.Unlock()
			if prev.cancel != nil {
				// A fresh open for a job this rank is still running means
				// the server gave up on that attempt (a degraded-fleet
				// retry): reap the zombie so it cannot linger in a dead
				// session, and so its exit cannot be mistaken for ours.
				prev.cancel()
			}
			ag.wg.Add(1)
			go ag.runJob(jctx, msg.Job, session, msg.Ranks, *msg.Spec)
		case "cancel":
			ag.mu.Lock()
			att := ag.jobs[msg.Job]
			ag.mu.Unlock()
			if att.cancel != nil {
				att.cancel()
			}
		case "shutdown":
			ag.cancelAll()
			return nil
		default:
			ag.logf("agent: unknown control op %q", msg.Op)
		}
	}
}

func (ag *Agent) cancelAll() {
	ag.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(ag.jobs))
	for _, att := range ag.jobs {
		cancels = append(cancels, att.cancel)
	}
	ag.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// agentAttempt is one in-flight attempt of a job on this rank. The session
// id distinguishes a live attempt from the zombie of a requeued one, so
// cleanup and cancellation always hit the attempt they mean.
type agentAttempt struct {
	session uint32
	cancel  context.CancelFunc
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// runJob executes this rank's share of one job attempt: the session id
// (distinct per attempt) names the mux channel, and ranks — when set —
// names the attempt's member set on a degraded fleet.
func (ag *Agent) runJob(ctx context.Context, id, session uint32, ranks []int, spec JobSpec) {
	defer ag.wg.Done()
	defer func() {
		ag.mu.Lock()
		// Deregister only our own attempt: a degraded-fleet retry may have
		// replaced this entry with a newer session, which must keep running.
		if att := ag.jobs[id]; att.session == session && att.cancel != nil {
			delete(ag.jobs, id)
			att.cancel()
		}
		ag.mu.Unlock()
	}()
	var jep *transport.JobEndpoint
	var err error
	if ranks != nil {
		jep, err = ag.mux.OpenOn(session, ranks)
	} else {
		jep, err = ag.mux.Open(session)
	}
	if err != nil {
		ag.logf("agent: job %d: open channel %d: %v", id, session, err)
		return
	}
	defer jep.Close()
	// A cancel must fail this rank's job session, not just abort its VSA:
	// if this rank's share finished before the cancel arrived, it is
	// blocked in the collective post-run barrier that its aborting peers
	// will never enter, and only failing the endpoint's barrier state lets
	// it return (otherwise ag.wg never drains and Run/Close hang).
	stop := context.AfterFunc(ctx, func() { jep.Close() })
	defer stop()
	a, _, err := spec.BuildInputs()
	if err != nil {
		ag.logf("agent: job %d: %v", id, err)
		return
	}
	opts, err := spec.Options()
	if err != nil {
		ag.logf("agent: job %d: %v", id, err)
		return
	}
	var rc qr.RunConfig
	var rec *trace.Recorder
	if spec.Trace {
		rec = trace.NewRecorder()
		rc.FireHook = rec.Hook()
		rc.CommHook = rec.CommHook()
	}
	if _, err := qr.FactorizeVSAServe(ctx, a, nil, opts, rc, jep, ag.pool); err != nil {
		ag.logf("agent: job %d: %v", id, err)
		return
	}
	if rec != nil {
		// Ship this rank's shard to the server, which is blocked gathering
		// on the still-open job session.
		gctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		if _, err := trace.GatherShards(gctx, jep, rec.Shard(jep.Rank())); err != nil {
			ag.logf("agent: job %d: trace gather: %v", id, err)
		}
	}
}

// Close releases the agent's sessions and pool (the endpoint itself stays
// the caller's).
func (ag *Agent) Close() {
	ag.ctl.Close()
	ag.mux.Close()
	ag.pool.Close()
	ag.wg.Wait()
}
