package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/trace"
	"pulsarqr/internal/transport"
)

// Agent is a fleet member: a non-root rank that keeps a warm pool and
// persistent sessions and executes its share of every job the server
// dispatches. It listens on the control-plane mux channel for open, cancel
// and shutdown messages.
type Agent struct {
	ep   transport.Endpoint
	mux  *transport.Mux
	ctl  *transport.JobEndpoint
	pool *pulsar.Pool
	logf func(format string, args ...any)

	mu   sync.Mutex
	jobs map[uint32]context.CancelFunc

	wg sync.WaitGroup
}

// NewAgent wraps a dialed endpoint (any rank except 0) in an agent with a
// pool of threads workers.
func NewAgent(ep transport.Endpoint, threads int, logf func(string, ...any)) (*Agent, error) {
	if ep.Rank() == 0 {
		return nil, fmt.Errorf("service: rank 0 runs the server, not an agent")
	}
	if threads <= 0 {
		threads = 2
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	mux := transport.NewMux(ep)
	ctl, err := mux.Open(ctlJob)
	if err != nil {
		mux.Close()
		return nil, err
	}
	return &Agent{
		ep:   ep,
		mux:  mux,
		ctl:  ctl,
		pool: pulsar.NewPool(threads, func(int) any { return kernels.NewWorkspace() }),
		jobs: map[uint32]context.CancelFunc{},
		logf: logf,
	}, nil
}

// Run serves control messages until the server sends shutdown, ctx is
// canceled, or the session dies. It returns after all in-flight jobs have
// unwound.
func (ag *Agent) Run(ctx context.Context) error {
	defer ag.wg.Wait()
	for {
		req := ag.ctl.Irecv(0, ctlTag)
		stop := context.AfterFunc(ctx, func() { req.Cancel() })
		req.Wait()
		stop()
		if req.Canceled() {
			ag.cancelAll()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("service: control session closed")
		}
		var msg ctlMsg
		if err := json.Unmarshal(req.Data(), &msg); err != nil {
			ag.logf("agent: bad control message: %v", err)
			continue
		}
		switch msg.Op {
		case "open":
			if msg.Spec == nil {
				ag.logf("agent: open without spec for job %d", msg.Job)
				continue
			}
			jctx, cancel := context.WithCancel(ctx)
			ag.mu.Lock()
			ag.jobs[msg.Job] = cancel
			ag.mu.Unlock()
			ag.wg.Add(1)
			go ag.runJob(jctx, msg.Job, *msg.Spec)
		case "cancel":
			ag.mu.Lock()
			cancel := ag.jobs[msg.Job]
			ag.mu.Unlock()
			if cancel != nil {
				cancel()
			}
		case "shutdown":
			ag.cancelAll()
			return nil
		default:
			ag.logf("agent: unknown control op %q", msg.Op)
		}
	}
}

func (ag *Agent) cancelAll() {
	ag.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(ag.jobs))
	for _, c := range ag.jobs {
		cancels = append(cancels, c)
	}
	ag.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// runJob executes this rank's share of one job.
func (ag *Agent) runJob(ctx context.Context, id uint32, spec JobSpec) {
	defer ag.wg.Done()
	defer func() {
		ag.mu.Lock()
		if cancel := ag.jobs[id]; cancel != nil {
			delete(ag.jobs, id)
			cancel()
		}
		ag.mu.Unlock()
	}()
	jep, err := ag.mux.Open(id)
	if err != nil {
		ag.logf("agent: job %d: open channel: %v", id, err)
		return
	}
	defer jep.Close()
	// A cancel must fail this rank's job session, not just abort its VSA:
	// if this rank's share finished before the cancel arrived, it is
	// blocked in the collective post-run barrier that its aborting peers
	// will never enter, and only failing the endpoint's barrier state lets
	// it return (otherwise ag.wg never drains and Run/Close hang).
	stop := context.AfterFunc(ctx, func() { jep.Close() })
	defer stop()
	a, _, err := spec.BuildInputs()
	if err != nil {
		ag.logf("agent: job %d: %v", id, err)
		return
	}
	opts, err := spec.Options()
	if err != nil {
		ag.logf("agent: job %d: %v", id, err)
		return
	}
	var rc qr.RunConfig
	var rec *trace.Recorder
	if spec.Trace {
		rec = trace.NewRecorder()
		rc.FireHook = rec.Hook()
		rc.CommHook = rec.CommHook()
	}
	if _, err := qr.FactorizeVSAServe(ctx, a, nil, opts, rc, jep, ag.pool); err != nil {
		ag.logf("agent: job %d: %v", id, err)
		return
	}
	if rec != nil {
		// Ship this rank's shard to the server, which is blocked gathering
		// on the still-open job session.
		gctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		if _, err := trace.GatherShards(gctx, jep, rec.Shard(jep.Rank())); err != nil {
			ag.logf("agent: job %d: trace gather: %v", id, err)
		}
	}
}

// Close releases the agent's sessions and pool (the endpoint itself stays
// the caller's).
func (ag *Agent) Close() {
	ag.ctl.Close()
	ag.mux.Close()
	ag.pool.Close()
	ag.wg.Wait()
}
