package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func newTestJob(prio int, deadline time.Duration) *Job {
	ctx, cancel := context.WithCancelCause(context.Background())
	j := &Job{
		Spec:     JobSpec{M: 8, N: 8, Priority: prio},
		ctx:      ctx,
		cancel:   cancel,
		enqueued: time.Now(),
		state:    StatePending,
		done:     make(chan struct{}),
	}
	if deadline != 0 {
		j.deadline = j.enqueued.Add(deadline)
	}
	return j
}

// blockingRunner holds every dispatched job until released, recording the
// order in which jobs reached it.
type blockingRunner struct {
	mu      sync.Mutex
	order   []*Job
	started chan *Job
	release chan struct{}
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{started: make(chan *Job, 64), release: make(chan struct{})}
}

func (r *blockingRunner) run(j *Job) {
	r.mu.Lock()
	r.order = append(r.order, j)
	r.mu.Unlock()
	r.started <- j
	<-r.release
	j.finish(StateDone, "", &Result{})
}

// Queue at capacity: the next submit is rejected with ErrQueueFull, nothing
// is buffered, and the rejection counter agrees.
func TestManagerBackpressure(t *testing.T) {
	met := NewMetrics()
	r := newBlockingRunner()
	m := NewManager(2, 1, met, r.run)
	defer func() { close(r.release); m.Close() }()

	running := newTestJob(0, 0)
	if err := m.Submit(running); err != nil {
		t.Fatal(err)
	}
	<-r.started // the single worker is now occupied
	q1, q2 := newTestJob(0, 0), newTestJob(0, 0)
	if err := m.Submit(q1); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(q2); err != nil {
		t.Fatal(err)
	}
	if d := m.Depth(); d != 2 {
		t.Fatalf("queue depth = %d, want 2", d)
	}
	over := newTestJob(0, 0)
	if err := m.Submit(over); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit beyond capacity returned %v, want ErrQueueFull", err)
	}
	if got := met.RejectedFull.Load(); got != 1 {
		t.Errorf("rejected_full = %d, want 1", got)
	}
	if got := met.Accepted.Load(); got != 3 {
		t.Errorf("accepted = %d, want 3", got)
	}
	if d := m.Depth(); d != 2 {
		t.Errorf("rejected submit changed queue depth to %d", d)
	}
}

// A job whose deadline passed while queued is dropped at the dispatch
// point: the runner never sees it and the expired counter increments.
func TestManagerDeadlineExpiry(t *testing.T) {
	met := NewMetrics()
	r := newBlockingRunner()
	m := NewManager(8, 1, met, r.run)

	blocker := newTestJob(0, 0)
	if err := m.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-r.started
	doomed := newTestJob(0, time.Millisecond)
	if err := m.Submit(doomed); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the deadline lapse while queued
	close(r.release)
	select {
	case <-doomed.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("expired job never reached a terminal state")
	}
	if state, _ := doomed.State(); state != StateExpired {
		t.Fatalf("doomed job state = %s, want expired", state)
	}
	m.Close()
	if got := met.Expired.Load(); got != 1 {
		t.Errorf("expired = %d, want 1", got)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, j := range r.order {
		if j == doomed {
			t.Error("expired job was dispatched to the runner")
		}
	}
}

// A queued job canceled before dispatch never runs.
func TestManagerCancelQueued(t *testing.T) {
	met := NewMetrics()
	r := newBlockingRunner()
	m := NewManager(8, 1, met, r.run)

	blocker := newTestJob(0, 0)
	if err := m.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-r.started
	victim := newTestJob(0, 0)
	if err := m.Submit(victim); err != nil {
		t.Fatal(err)
	}
	victim.Cancel()
	close(r.release)
	select {
	case <-victim.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("canceled job never reached a terminal state")
	}
	if state, _ := victim.State(); state != StateCanceled {
		t.Fatalf("victim state = %s, want canceled", state)
	}
	m.Close()
	if got := met.Canceled.Load(); got != 1 {
		t.Errorf("canceled = %d, want 1", got)
	}
}

// Queued jobs dispatch by priority, FIFO within a priority class.
func TestManagerPriorityOrder(t *testing.T) {
	met := NewMetrics()
	r := newBlockingRunner()
	m := NewManager(8, 1, met, r.run)

	blocker := newTestJob(0, 0)
	if err := m.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-r.started
	low := newTestJob(0, 0)
	high := newTestJob(5, 0)
	mid1 := newTestJob(1, 0)
	mid2 := newTestJob(1, 0)
	for _, j := range []*Job{low, high, mid1, mid2} {
		if err := m.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	close(r.release)
	for _, j := range []*Job{low, high, mid1, mid2} {
		<-j.Done()
	}
	m.Close()
	r.mu.Lock()
	defer r.mu.Unlock()
	want := []*Job{blocker, high, mid1, mid2, low}
	if len(r.order) != len(want) {
		t.Fatalf("ran %d jobs, want %d", len(r.order), len(want))
	}
	for i := range want {
		if r.order[i] != want[i] {
			t.Fatalf("dispatch order wrong at %d: got prio %d", i, r.order[i].Spec.Priority)
		}
	}
}

// Manager.Close cancels what is still queued.
func TestManagerCloseCancelsQueued(t *testing.T) {
	met := NewMetrics()
	r := newBlockingRunner()
	m := NewManager(8, 1, met, r.run)
	blocker := newTestJob(0, 0)
	if err := m.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-r.started
	queued := newTestJob(0, 0)
	if err := m.Submit(queued); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(r.release)
	}()
	m.Close()
	if state, _ := queued.State(); state != StateCanceled {
		t.Fatalf("queued job state after Close = %s, want canceled", state)
	}
	if err := m.Submit(newTestJob(0, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close returned %v, want ErrClosed", err)
	}
}
