package service

import (
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"time"

	"fmt"
	"io"

	"pulsarqr/internal/blas"
	"pulsarqr/internal/numa"
	"pulsarqr/internal/obs"
	"pulsarqr/internal/simulate"
)

// Version identifies the build on /healthz, /v1/status and the
// qrserve_build_info metric; release builds override it via
// -ldflags "-X pulsarqr/internal/service.Version=...".
var Version = "dev"

// BuildInfo names the build and the compute path it runs on — enough for an
// operator to tell from one status call whether this process is using the
// kernel and topology they think it is.
type BuildInfo struct {
	Version     string `json:"version"`
	GoVersion   string `json:"go_version"`
	Kernel      string `json:"kernel"`       // active BLAS micro-kernel
	CPUFeatures string `json:"cpu_features"` // instruction-set level selected
	NUMANodes   int    `json:"numa_nodes"`
	Threads     int    `json:"threads"` // pool workers
}

func buildInfo(threads int) BuildInfo {
	return BuildInfo{
		Version:     Version,
		GoVersion:   runtime.Version(),
		Kernel:      blas.MicroKernelName(),
		CPUFeatures: blas.CPUFeatures(),
		NUMANodes:   numa.Detect().NumNodes(),
		Threads:     threads,
	}
}

// ClassStatus is one admission class's live occupancy on /v1/status.
type ClassStatus struct {
	Depth    int   `json:"depth"`    // admitted work waiting (streams queue nothing)
	Capacity int   `json:"capacity"` // admission bound
	Active   int64 `json:"active"`   // work executing now
	Slots    int   `json:"slots"`    // drain parallelism
}

// TenantStatus is one tenant's live footprint.
type TenantStatus struct {
	Tenant   string `json:"tenant"`
	Jobs     int    `json:"jobs"` // resident jobs (queued, running or retained)
	Running  int    `json:"running"`
	Sessions int    `json:"sessions"`
}

// FleetStatus is the fleet membership view.
type FleetStatus struct {
	Ranks    int   `json:"ranks"`
	Live     int   `json:"live"`
	Evicted  []int `json:"evicted,omitempty"`
	Degraded bool  `json:"degraded"`
}

// StatusView is the GET /v1/status snapshot: one JSON object a dashboard (or
// cmd/qrstat) polls instead of scraping and joining a dozen metric series.
type StatusView struct {
	Now        time.Time              `json:"now"`
	UptimeS    float64                `json:"uptime_s"`
	Build      BuildInfo              `json:"build"`
	Fleet      FleetStatus            `json:"fleet"`
	Classes    map[string]ClassStatus `json:"classes"`
	Tenants    []TenantStatus         `json:"tenants,omitempty"`
	Planner    PlannerStatus          `json:"planner"`
	Events     int64                  `json:"events"`      // structured events emitted since boot
	EventDrops int64                  `json:"event_drops"` // flight-ring overwrites (honest loss count)
	Flight     []obs.Event            `json:"flight,omitempty"`
}

// handleStatus serves GET /v1/status. ?events=N sizes the flight tail
// (default 16, 0 disables, capped at 256).
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	tailN := 16
	if q := r.URL.Query().Get("events"); q != "" {
		if n, err := strconv.Atoi(q); err == nil && n >= 0 {
			tailN = min(n, 256)
		}
	}

	s.mu.Lock()
	evicted := make([]int, 0, len(s.deadRanks))
	for rank := range s.deadRanks {
		evicted = append(evicted, rank)
	}
	resident := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		resident = append(resident, j)
	}
	s.mu.Unlock()
	sort.Ints(evicted)

	type tally struct{ jobs, running int }
	byTenant := map[string]*tally{}
	for _, j := range resident {
		t := byTenant[j.Spec.Tenant]
		if t == nil {
			t = &tally{}
			byTenant[j.Spec.Tenant] = t
		}
		t.jobs++
		if st, _ := j.State(); st == StateRunning {
			t.running++
		}
	}
	sessTenants := s.sessions.Stats().PerTenant
	names := make(map[string]bool, len(byTenant)+len(sessTenants))
	for tn := range byTenant {
		names[tn] = true
	}
	for tn := range sessTenants {
		names[tn] = true
	}
	tenants := make([]TenantStatus, 0, len(names))
	for tn := range names {
		ts := TenantStatus{Tenant: tn, Sessions: sessTenants[tn]}
		if t := byTenant[tn]; t != nil {
			ts.Jobs, ts.Running = t.jobs, t.running
		}
		tenants = append(tenants, ts)
	}
	sort.Slice(tenants, func(a, b int) bool { return tenants[a].Tenant < tenants[b].Tenant })

	events, drops := s.obs.Stats()
	writeJSON(w, http.StatusOK, StatusView{
		Now:     time.Now(),
		UptimeS: time.Since(s.started).Seconds(),
		Build:   buildInfo(s.cfg.Threads),
		Fleet: FleetStatus{
			Ranks:    s.Ranks(),
			Live:     s.AgentsLive(),
			Evicted:  evicted,
			Degraded: s.Degraded(),
		},
		Classes: map[string]ClassStatus{
			"jobs": {
				Depth:    s.mgr.Depth(),
				Capacity: s.cfg.QueueCap,
				Active:   s.metrics.Running.Load(),
				Slots:    s.cfg.MaxConcurrent,
			},
			"batch": {
				Capacity: s.cfg.BatchStreams,
				Active:   s.metrics.BatchActive.Load(),
				Slots:    s.cfg.BatchStreams,
			},
			"session_appends": {
				Capacity: s.cfg.SessionStreams,
				Active:   s.metrics.AppendActive.Load(),
				Slots:    s.cfg.SessionStreams,
			},
		},
		Tenants:    tenants,
		Planner:    s.plannerStatus(),
		Events:     events,
		EventDrops: drops,
		Flight:     s.obs.Tail(tailN),
	})
}

// MachineModelView is the GET /v1/machine-model body. Machine is directly
// loadable by internal/simulate (MachineFromJSON on the "machine" subobject
// — same field names, no conversion), so a client can feed a live server's
// calibration straight into the planner.
type MachineModelView struct {
	Machine     simulate.Machine `json:"machine"`
	Links       []obs.LinkModel  `json:"links,omitempty"`
	Measured    bool             `json:"measured"` // false: defaults only, nothing observed yet
	UpdatedUnix int64            `json:"updated_unix"`
}

// handleMachineModel serves the current machine-model estimate — the same
// model the planner uses (see Server.machineModel), plus the per-link
// evidence behind it.
func (s *Server) handleMachineModel(w http.ResponseWriter, r *http.Request) {
	mach, measured := s.machineModel()
	var links []obs.LinkModel
	if est := s.obs.Estimator(); est != nil {
		links = est.Links()
	}
	writeJSON(w, http.StatusOK, MachineModelView{
		Machine:     mach,
		Links:       links,
		Measured:    measured,
		UpdatedUnix: time.Now().Unix(),
	})
}

// writeObsProm renders the observability layer's own metrics after the
// transport block on /metrics: build identity, event-log volume and loss,
// and the live per-link α–β gauges.
func (s *Server) writeObsProm(w io.Writer) {
	bi := buildInfo(s.cfg.Threads)
	fmt.Fprintf(w, "# HELP qrserve_build_info Build and compute-path identity (value is always 1).\n# TYPE qrserve_build_info gauge\n")
	fmt.Fprintf(w, "qrserve_build_info{version=%q,kernel=%q,goversion=%q} 1\n", bi.Version, bi.Kernel, bi.GoVersion)
	if !s.obs.Enabled() {
		return
	}
	events, drops := s.obs.Stats()
	fmt.Fprintf(w, "# HELP qrserve_obs_events_total Structured events emitted.\n# TYPE qrserve_obs_events_total counter\nqrserve_obs_events_total %d\n", events)
	fmt.Fprintf(w, "# HELP qrserve_obs_event_drops_total Flight-recorder ring overwrites (oldest events lost).\n# TYPE qrserve_obs_event_drops_total counter\nqrserve_obs_event_drops_total %d\n", drops)
	links := s.obs.Links()
	if len(links) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP qrserve_link_alpha_seconds Estimated per-message latency toward each peer rank.\n# TYPE qrserve_link_alpha_seconds gauge\n")
	for _, l := range links {
		fmt.Fprintf(w, "qrserve_link_alpha_seconds{peer=\"%d\"} %g\n", l.Peer, l.Alpha)
	}
	fmt.Fprintf(w, "# HELP qrserve_link_beta_seconds_per_byte Estimated per-byte transfer cost toward each peer rank.\n# TYPE qrserve_link_beta_seconds_per_byte gauge\n")
	for _, l := range links {
		fmt.Fprintf(w, "qrserve_link_beta_seconds_per_byte{peer=\"%d\"} %g\n", l.Peer, l.Beta)
	}
}
