package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pulsarqr/internal/obs"
	"pulsarqr/internal/pulsar"
)

// Metrics aggregates service counters and exposes them in the Prometheus
// text format. Everything is hand-rolled on sync/atomic — the service takes
// no dependencies beyond the standard library.
type Metrics struct {
	Accepted     atomic.Int64 // jobs admitted to the queue
	RejectedFull atomic.Int64 // jobs refused with ErrQueueFull
	RejectedBad  atomic.Int64 // jobs refused at validation
	Completed    atomic.Int64 // jobs that finished successfully
	Failed       atomic.Int64 // jobs whose factorization errored
	Canceled     atomic.Int64 // jobs canceled by the client
	Expired      atomic.Int64 // jobs dropped at dispatch: deadline passed
	Running      atomic.Int64 // jobs currently executing
	Evicted      atomic.Int64 // fleet agent ranks declared dead
	Requeued     atomic.Int64 // job attempts requeued after a fleet failure

	TraceEvents atomic.Int64 // events in gathered trace shards
	TraceDrops  atomic.Int64 // events lost to recorder capacity bounds

	BatchRequests atomic.Int64 // batch streams admitted
	BatchRejected atomic.Int64 // batch streams shed at admission (429)
	BatchMatrices atomic.Int64 // matrices factorized and emitted by batch streams
	BatchShed     atomic.Int64 // matrices a batch stream declared but never emitted
	BatchActive   atomic.Int64 // batch streams currently executing

	SessionsOpened   atomic.Int64 // sessions created via POST /v1/sessions
	SessionsRejected atomic.Int64 // session opens refused (table or tenant full)
	SessionsRestored atomic.Int64 // session spines reloaded from checkpoints
	SessionsEvicted  atomic.Int64 // sessions unloaded or evicted by the janitor
	SessionAppends   atomic.Int64 // row blocks appended across all sessions
	AppendRejected   atomic.Int64 // append streams shed at admission (429)
	AppendActive     atomic.Int64 // append streams currently executing
	CheckpointWrites atomic.Int64 // QSC1 checkpoint files written
	CheckpointBytes  atomic.Int64 // total bytes of checkpoint writes

	PlansComputed atomic.Int64 // planner decisions computed fresh (DES sweep ran)
	PlanCacheHits atomic.Int64 // planner decisions served from the plan cache

	flopBits atomic.Uint64 // total useful flops, float64 bits
	busyBits atomic.Uint64 // total seconds spent factorizing, float64 bits

	latency    *histogram
	wait       *histogram // pool worker park intervals
	chunk      *histogram // batch chunk dispatch-to-completion latency
	appendH    *histogram // session append latency, receipt to committed R
	planH      *histogram // planning latency (cache hits and DES sweeps alike)
	planRatioH *histogram // actual/predicted run-time ratio of planned jobs

	queueWaitH *classHist // lifecycle span: admission to dispatch, by class
	dispatchH  *classHist // lifecycle span: dispatch to execution start
	runH       *classHist // lifecycle span: execution (run + gather)

	mu      sync.Mutex
	firings map[string]*atomic.Int64 // VDP firings by trace class
}

// latencyBuckets are the histogram upper bounds in seconds, spanning a tiny
// tile job to a deliberately queued large one.
var latencyBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// waitBuckets span a worker's park intervals: sub-microsecond wakeups up to
// the multi-second idling of a drained service.
var waitBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 1, 10,
}

// chunkBuckets span a batch chunk's life from dispatch to completion: tens
// of microseconds for a chunk of tiny Givens matrices up to the queueing
// delay behind a saturated pool.
var chunkBuckets = []float64{
	1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1,
}

// appendBuckets span one streamed append's life from receipt to committed R:
// a carry-free leaf reduction is tens of microseconds; a deep carry chain
// plus a checkpoint fsync can reach seconds.
var appendBuckets = []float64{
	1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5,
}

// planBuckets span one planning call: a cache hit is microseconds, a cold
// DES sweep over a big shape can reach a second.
var planBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.5, 1, 5,
}

// planRatioBuckets span the calibration ratio actual/predicted: 1 is a
// perfect model, the E2E calibration gate asserts within 3× either way.
var planRatioBuckets = []float64{
	0.1, 0.2, 0.33, 0.5, 0.75, 1, 1.33, 2, 3, 5, 10,
}

// spanBuckets span the lifecycle phases: a dispatch on an idle service is
// tens of microseconds; a queue wait behind a deep backlog can reach a
// minute.
var spanBuckets = []float64{
	1e-5, 1e-4, 1e-3, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60,
}

// histogram is a fixed-bucket Prometheus-style histogram on atomics; the
// final counts entry is the +Inf bucket.
type histogram struct {
	buckets []float64
	counts  []atomic.Int64
	sumBits atomic.Uint64
	n       atomic.Int64
}

func newHistogram(buckets []float64) *histogram {
	return &histogram{buckets: buckets, counts: make([]atomic.Int64, len(buckets)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	addFloat(&h.sumBits, v)
}

// classHist is a family of histograms labeled by admission class ("job",
// "batch", "session"), materialized lazily so only classes that saw traffic
// render.
type classHist struct {
	buckets []float64

	mu sync.Mutex
	by map[string]*histogram
}

func newClassHist(buckets []float64) *classHist {
	return &classHist{buckets: buckets, by: map[string]*histogram{}}
}

func (c *classHist) observe(class string, v float64) {
	c.mu.Lock()
	h := c.by[class]
	if h == nil {
		h = newHistogram(c.buckets)
		c.by[class] = h
	}
	c.mu.Unlock()
	h.observe(v)
}

// snapshot returns the class names sorted and their histograms in that order.
func (c *classHist) snapshot() ([]string, []*histogram) {
	c.mu.Lock()
	defer c.mu.Unlock()
	classes := make([]string, 0, len(c.by))
	for cl := range c.by {
		classes = append(classes, cl)
	}
	sort.Strings(classes)
	hs := make([]*histogram, len(classes))
	for i, cl := range classes {
		hs[i] = c.by[cl]
	}
	return classes, hs
}

// addFloat accumulates a float64 into an atomic bit pattern (CAS loop).
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func NewMetrics() *Metrics {
	return &Metrics{
		firings:    map[string]*atomic.Int64{},
		latency:    newHistogram(latencyBuckets),
		wait:       newHistogram(waitBuckets),
		chunk:      newHistogram(chunkBuckets),
		appendH:    newHistogram(appendBuckets),
		planH:      newHistogram(planBuckets),
		planRatioH: newHistogram(planRatioBuckets),
		queueWaitH: newClassHist(spanBuckets),
		dispatchH:  newClassHist(spanBuckets),
		runH:       newClassHist(spanBuckets),
	}
}

// ObserveSpans records one terminal request's lifecycle span accounting.
// Run and gather fold into one "run" histogram: both are execution from the
// client's point of view, and gather is usually a rounding error.
func (m *Metrics) ObserveSpans(class string, sp obs.Spans) {
	m.queueWaitH.observe(class, sp.QueueWait.Seconds())
	m.dispatchH.observe(class, sp.Dispatch.Seconds())
	m.runH.observe(class, (sp.Run + sp.Gather).Seconds())
}

// ObserveStreamSpan records one stream's life (a batch or session-append
// request) in the run histogram — streams admit or shed instantly, so queue
// wait and dispatch are identically zero and only run time means anything.
func (m *Metrics) ObserveStreamSpan(class string, d time.Duration) {
	m.runH.observe(class, d.Seconds())
}

// ObserveAppend records one committed session append (receipt to updated R).
// The session table installs it as OnAppend, so it runs on commit goroutines.
func (m *Metrics) ObserveAppend(d time.Duration) {
	m.SessionAppends.Add(1)
	m.appendH.observe(d.Seconds())
}

// ObserveCheckpoint records one durable checkpoint write and its size.
func (m *Metrics) ObserveCheckpoint(bytes int64) {
	m.CheckpointWrites.Add(1)
	m.CheckpointBytes.Add(bytes)
}

// ObserveBatchChunk records one completed batch chunk: its matrix count and
// dispatch-to-completion wall time. The scheduler installs it as OnChunk, so
// it is called from pool worker goroutines.
func (m *Metrics) ObserveBatchChunk(matrices int, d time.Duration) {
	m.BatchMatrices.Add(int64(matrices))
	m.chunk.observe(d.Seconds())
}

// ObservePlan records one planning call — its wall time and whether it was
// served from the plan cache.
func (m *Metrics) ObservePlan(d time.Duration, fromCache bool) {
	if fromCache {
		m.PlanCacheHits.Add(1)
	} else {
		m.PlansComputed.Add(1)
	}
	m.planH.observe(d.Seconds())
}

// ObservePlanAccuracy records one planned job's actual/predicted run-time
// ratio — the live calibration signal behind the CI calibration gate.
func (m *Metrics) ObservePlanAccuracy(ratio float64) {
	m.planRatioH.observe(ratio)
}

// ObserveJob records one finished factorization: end-to-end latency, time
// spent computing, and the useful flop count.
func (m *Metrics) ObserveJob(latencySec, busySec, flops float64) {
	m.latency.observe(latencySec)
	addFloat(&m.busyBits, busySec)
	addFloat(&m.flopBits, flops)
}

// ObserveWait records one pool-worker park interval; the server installs it
// via Pool.OnWait.
func (m *Metrics) ObserveWait(ev pulsar.WaitEvent) {
	m.wait.observe(ev.End.Sub(ev.Start).Seconds())
}

// WaitSeconds returns the cumulative pool-worker park time. The server
// snapshots it around a job's run to estimate the busy fraction that feeds
// the cost model.
func (m *Metrics) WaitSeconds() float64 {
	return math.Float64frombits(m.wait.sumBits.Load())
}

// FireHook counts VDP firings by trace class; the server installs it as the
// runtime's FireHook for every job.
func (m *Metrics) FireHook(ev pulsar.FireEvent) {
	m.mu.Lock()
	c := m.firings[ev.Class]
	if c == nil {
		c = &atomic.Int64{}
		m.firings[ev.Class] = c
	}
	m.mu.Unlock()
	c.Add(1)
}

// WriteProm renders the metrics in the Prometheus text exposition format.
// queueDepth and resident are sampled gauges supplied by the caller.
func (m *Metrics) WriteProm(w io.Writer, queueDepth, resident int) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("qrserve_jobs_accepted_total", "Jobs admitted to the queue.", m.Accepted.Load())
	fmt.Fprintf(w, "# HELP qrserve_jobs_rejected_total Jobs refused at admission.\n# TYPE qrserve_jobs_rejected_total counter\n")
	fmt.Fprintf(w, "qrserve_jobs_rejected_total{reason=\"queue_full\"} %d\n", m.RejectedFull.Load())
	fmt.Fprintf(w, "qrserve_jobs_rejected_total{reason=\"invalid\"} %d\n", m.RejectedBad.Load())
	counter("qrserve_jobs_completed_total", "Jobs that finished successfully.", m.Completed.Load())
	counter("qrserve_jobs_failed_total", "Jobs whose factorization errored.", m.Failed.Load())
	counter("qrserve_jobs_canceled_total", "Jobs canceled by the client.", m.Canceled.Load())
	counter("qrserve_jobs_expired_total", "Jobs dropped before dispatch: deadline passed.", m.Expired.Load())
	counter("qrserve_agent_evictions_total", "Fleet agent ranks declared dead and evicted.", m.Evicted.Load())
	counter("qrserve_jobs_requeued_total", "Job attempts requeued onto the surviving fleet after a peer death.", m.Requeued.Load())
	gauge("qrserve_queue_depth", "Jobs waiting in the admission queue.", int64(queueDepth))
	gauge("qrserve_jobs_running", "Jobs currently executing.", m.Running.Load())
	gauge("qrserve_jobs_resident", "Jobs resident in memory (queued, running or retained).", int64(resident))

	fmt.Fprintf(w, "# HELP qrserve_vdp_firings_total VDP firings by trace class.\n# TYPE qrserve_vdp_firings_total counter\n")
	m.mu.Lock()
	classes := make([]string, 0, len(m.firings))
	for c := range m.firings {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	counts := make([]int64, len(classes))
	for i, c := range classes {
		counts[i] = m.firings[c].Load()
	}
	m.mu.Unlock()
	for i, c := range classes {
		fmt.Fprintf(w, "qrserve_vdp_firings_total{class=%q} %d\n", c, counts[i])
	}

	flops := math.Float64frombits(m.flopBits.Load())
	busy := math.Float64frombits(m.busyBits.Load())
	fmt.Fprintf(w, "# HELP qrserve_flops_total Useful floating point operations factorized.\n# TYPE qrserve_flops_total counter\nqrserve_flops_total %g\n", flops)
	fmt.Fprintf(w, "# HELP qrserve_busy_seconds_total Seconds spent factorizing.\n# TYPE qrserve_busy_seconds_total counter\nqrserve_busy_seconds_total %g\n", busy)
	gflops := 0.0
	if busy > 0 {
		gflops = flops / busy / 1e9
	}
	fmt.Fprintf(w, "# HELP qrserve_gflops Achieved Gflop/s over all completed jobs.\n# TYPE qrserve_gflops gauge\nqrserve_gflops %g\n", gflops)

	hist := func(name, help string, h *histogram) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		var cum int64
		for i, ub := range h.buckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, ub, cum)
		}
		cum += h.counts[len(h.buckets)].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "%s_sum %g\n", name, math.Float64frombits(h.sumBits.Load()))
		fmt.Fprintf(w, "%s_count %d\n", name, h.n.Load())
	}
	hist("qrserve_job_latency_seconds", "End-to-end job latency, admission to completion.", m.latency)
	hist("qrserve_worker_wait_seconds", "Pool worker park intervals (time spent idle between tasks).", m.wait)

	chist := func(name, help string, c *classHist) {
		classes, hs := c.snapshot()
		if len(classes) == 0 {
			return
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		for ci, class := range classes {
			h := hs[ci]
			var cum int64
			for i, ub := range h.buckets {
				cum += h.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket{class=%q,le=\"%g\"} %d\n", name, class, ub, cum)
			}
			cum += h.counts[len(h.buckets)].Load()
			fmt.Fprintf(w, "%s_bucket{class=%q,le=\"+Inf\"} %d\n", name, class, cum)
			fmt.Fprintf(w, "%s_sum{class=%q} %g\n", name, class, math.Float64frombits(h.sumBits.Load()))
			fmt.Fprintf(w, "%s_count{class=%q} %d\n", name, class, h.n.Load())
		}
	}
	chist("qrserve_queue_wait_seconds", "Lifecycle span: admission to dispatch, by class.", m.queueWaitH)
	chist("qrserve_dispatch_seconds", "Lifecycle span: dispatch to execution start, by class.", m.dispatchH)
	chist("qrserve_run_seconds", "Lifecycle span: execution (run plus trace gather), by class.", m.runH)

	counter("qrserve_batch_requests_total", "Batch streams admitted.", m.BatchRequests.Load())
	counter("qrserve_batch_rejected_total", "Batch streams shed at admission.", m.BatchRejected.Load())
	counter("qrserve_batch_matrices_total", "Matrices factorized and emitted by batch streams.", m.BatchMatrices.Load())
	counter("qrserve_batch_shed_total", "Matrices declared by batch requests but never emitted.", m.BatchShed.Load())
	gauge("qrserve_batch_active", "Batch streams currently executing.", m.BatchActive.Load())
	hist("qrserve_batch_chunk_seconds", "Batch chunk latency, dispatch to completion.", m.chunk)

	counter("qrserve_sessions_opened_total", "Streaming sessions created.", m.SessionsOpened.Load())
	counter("qrserve_sessions_rejected_total", "Session opens refused (table or tenant full).", m.SessionsRejected.Load())
	counter("qrserve_sessions_restored_total", "Session spines reloaded from checkpoints.", m.SessionsRestored.Load())
	counter("qrserve_sessions_evicted_total", "Sessions unloaded or evicted by the idle janitor.", m.SessionsEvicted.Load())
	counter("qrserve_session_appends_total", "Row blocks appended across all streaming sessions.", m.SessionAppends.Load())
	counter("qrserve_session_append_rejected_total", "Append streams shed at admission.", m.AppendRejected.Load())
	gauge("qrserve_session_appends_active", "Append streams currently executing.", m.AppendActive.Load())
	counter("qrserve_checkpoint_writes_total", "QSC1 checkpoint files written.", m.CheckpointWrites.Load())
	counter("qrserve_checkpoint_bytes_total", "Total bytes written to checkpoint files.", m.CheckpointBytes.Load())
	hist("qrserve_session_append_seconds", "Session append latency, receipt to committed R.", m.appendH)

	counter("qrserve_trace_events_total", "Events in gathered trace shards.", m.TraceEvents.Load())
	counter("qrserve_trace_dropped_total", "Trace events lost to recorder capacity bounds.", m.TraceDrops.Load())

	fmt.Fprintf(w, "# HELP qrserve_plan_total Planner decisions by source.\n# TYPE qrserve_plan_total counter\n")
	fmt.Fprintf(w, "qrserve_plan_total{source=\"computed\"} %d\n", m.PlansComputed.Load())
	fmt.Fprintf(w, "qrserve_plan_total{source=\"cache\"} %d\n", m.PlanCacheHits.Load())
	hist("qrserve_plan_seconds", "Planning latency per decision (cache hits and DES sweeps).", m.planH)
	hist("qrserve_plan_actual_over_predicted", "Actual over predicted run time of planned jobs (1 = perfect model).", m.planRatioH)
}
