package service

import (
	"container/heap"
	"context"
	"errors"
	"sync"
	"time"

	"pulsarqr/internal/obs"
	"pulsarqr/internal/plan"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/trace"
)

// Job lifecycle states. A job is terminal in done, failed, canceled or
// expired; its done channel closes exactly once on the transition.
type State string

const (
	StatePending  State = "pending"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
	StateExpired  State = "expired"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateExpired
}

// Result is what a completed factorization leaves behind. The factor matrix
// R is retained (until evicted) so clients can fetch it; Q lives only as
// the implicit reflectors inside the run and is not kept.
type Result struct {
	Elapsed  time.Duration
	Gflops   float64
	Residual float64
	OK       bool // residual passed the service's acceptance threshold
	Stats    qr.RunStats
	R        [][]float64 // row-major rows of R, nil on non-root ranks
}

// Job is one admitted factorization request.
type Job struct {
	ID   uint32
	Spec JobSpec

	ctx    context.Context
	cancel context.CancelCauseFunc

	enqueued time.Time
	deadline time.Time // zero: none
	seq      int64     // admission order, FIFO tiebreak within a priority

	// life tracks the job's phase transitions and per-phase dwell times.
	// Always on: marking is lock-plus-arithmetic, and the spans come back
	// on every GET /v1/jobs/{id}.
	life obs.Lifecycle

	mu      sync.Mutex
	state   State
	errMsg  string
	result  *Result
	attempt int            // completed dispatch attempts beyond the first
	trace   []trace.Shard  // per-rank shards, set before finish when Spec.Trace
	flight  []obs.Event    // flight-recorder tail, attached on non-done terminals
	planned *plan.Decision // autotuner's choice, set before the run starts

	done       chan struct{}
	onTerminal func() // runs once on the terminal transition, before done closes
}

// State returns the job's current state and error message (empty unless
// failed).
func (j *Job) State() (State, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg
}

// Result returns the job's result, nil until it completed successfully.
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// TraceShards returns the job's gathered per-rank trace shards, nil unless
// the job requested tracing and completed.
func (j *Job) TraceShards() []trace.Shard {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

func (j *Job) setTrace(shards []trace.Shard) {
	j.mu.Lock()
	j.trace = shards
	j.mu.Unlock()
}

// Spans returns the job's lifecycle span accounting so far.
func (j *Job) Spans() obs.Spans { return j.life.Snapshot() }

// Flight returns the flight-recorder tail attached when the job ended in
// trouble (failed, canceled, expired); nil for healthy or live jobs.
func (j *Job) Flight() []obs.Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flight
}

func (j *Job) setFlight(tail []obs.Event) {
	j.mu.Lock()
	j.flight = tail
	j.mu.Unlock()
}

// Plan returns the autotuner's decision for this job, nil when the job ran
// (or will run) with its literal spec.
func (j *Job) Plan() *plan.Decision {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.planned
}

func (j *Job) setPlan(d *plan.Decision) {
	j.mu.Lock()
	j.planned = d
	j.mu.Unlock()
}

// Attempts returns how many times the job has been requeued after a fleet
// failure (0 on the first attempt).
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempt
}

// requeue returns the job to the pending state for another attempt,
// reporting false if it already reached a terminal state (a cancel racing
// the retry wins).
func (j *Job) requeue() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = StatePending
	j.attempt++
	j.life.Mark(obs.PhaseQueued) // retry wait accrues to queue time
	return true
}

// Done closes when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cancellation: queued jobs are dropped at dispatch,
// running jobs abort.
func (j *Job) Cancel() { j.cancel(context.Canceled) }

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(s State, errMsg string, r *Result) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = s
	j.errMsg = errMsg
	j.result = r
	j.mu.Unlock()
	j.life.Mark(obs.PhaseTerminal)
	if j.onTerminal != nil {
		j.onTerminal()
	}
	close(j.done)
	j.cancel(nil) // release the context's resources
	return true
}

// Admission errors.
var (
	ErrQueueFull = errors.New("service: admission queue full")
	ErrClosed    = errors.New("service: manager closed")
	ErrNotFound  = errors.New("service: no such job")
)

// Manager is the admission queue and dispatcher: a bounded priority queue
// in front of a fixed number of dispatcher goroutines. Backpressure is
// explicit — when the queue is at capacity Submit returns ErrQueueFull and
// nothing is buffered.
type Manager struct {
	run     func(*Job) // executes one job to a terminal state
	metrics *Metrics
	obs     *obs.Observer // event sink; nil is valid and free

	mu      sync.Mutex
	cond    *sync.Cond
	queue   jobQueue
	cap     int
	nextSeq int64
	closed  bool

	wg sync.WaitGroup
}

// NewManager starts workers dispatcher goroutines in front of a queue
// bounded at capacity. run is called once per dispatched job and must drive
// it to a terminal state.
func NewManager(capacity, workers int, metrics *Metrics, run func(*Job)) *Manager {
	if capacity <= 0 {
		capacity = 1
	}
	if workers <= 0 {
		workers = 1
	}
	m := &Manager{run: run, metrics: metrics, cap: capacity}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.dispatch()
	}
	return m
}

// Depth returns the number of queued (not yet dispatched) jobs.
func (m *Manager) Depth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queue.Len()
}

// Submit admits a job or rejects it with ErrQueueFull. The job must carry
// its context and deadline already; Submit assigns the FIFO sequence.
func (m *Manager) Submit(j *Job) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if m.queue.Len() >= m.cap {
		m.mu.Unlock()
		m.metrics.RejectedFull.Add(1)
		return ErrQueueFull
	}
	j.seq = m.nextSeq
	m.nextSeq++
	heap.Push(&m.queue, j)
	// The queued mark must land before the push is signaled: a dispatcher
	// could pop the job immediately, and a late mark would drag the phase
	// backwards. Submitted and Queued both accrue to queue wait anyway.
	j.life.Mark(obs.PhaseQueued)
	m.mu.Unlock()
	m.metrics.Accepted.Add(1)
	m.obs.Emit(obs.Event{Kind: obs.EvQueued, Class: "job", Job: j.ID,
		Tenant: j.Spec.Tenant, Attempt: j.Attempts()})
	m.cond.Signal()
	return nil
}

// Close stops admitting, drains the dispatchers, and cancels queued jobs.
// Running jobs are not interrupted here — the server cancels their contexts
// during shutdown.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	var rest []*Job
	for m.queue.Len() > 0 {
		rest = append(rest, heap.Pop(&m.queue).(*Job))
	}
	m.mu.Unlock()
	m.cond.Broadcast()
	for _, j := range rest {
		if j.finish(StateCanceled, "service shutting down", nil) {
			m.metrics.Canceled.Add(1)
		}
	}
	m.wg.Wait()
}

// dispatch pops jobs in priority order and runs them, enforcing deadlines
// and cancellation at the dispatch point: an expired or canceled job is
// dropped before any resources are committed to it.
func (m *Manager) dispatch() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for m.queue.Len() == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.queue.Len() == 0 && m.closed {
			m.mu.Unlock()
			return
		}
		j := heap.Pop(&m.queue).(*Job)
		m.mu.Unlock()

		if !j.deadline.IsZero() && time.Now().After(j.deadline) {
			if j.finish(StateExpired, "deadline passed before dispatch", nil) {
				m.metrics.Expired.Add(1)
			}
			continue
		}
		if j.ctx.Err() != nil {
			if j.finish(StateCanceled, "", nil) {
				m.metrics.Canceled.Add(1)
			}
			continue
		}
		j.mu.Lock()
		j.state = StateRunning
		j.mu.Unlock()
		j.life.Mark(obs.PhaseDispatched)
		m.obs.Emit(obs.Event{Kind: obs.EvDispatched, Class: "job", Job: j.ID,
			Tenant: j.Spec.Tenant, Attempt: j.Attempts()})
		m.metrics.Running.Add(1)
		m.run(j)
		m.metrics.Running.Add(-1)
	}
}

// jobQueue is a max-heap by priority, FIFO within equal priorities.
type jobQueue []*Job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(a, b int) bool {
	if q[a].Spec.Priority != q[b].Spec.Priority {
		return q[a].Spec.Priority > q[b].Spec.Priority
	}
	return q[a].seq < q[b].seq
}
func (q jobQueue) Swap(a, b int) { q[a], q[b] = q[b], q[a] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(*Job)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}
