package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// submitTimed runs one blocking job and returns its view plus server-side
// elapsed milliseconds.
func submitTimed(t *testing.T, c *Client, spec JobSpec) (JobView, float64) {
	t.Helper()
	v, code, err := c.Submit(spec, true)
	if err != nil || code != http.StatusOK {
		t.Fatalf("submit %dx%d: code %d err %v", spec.M, spec.N, code, err)
	}
	if v.Status != string(StateDone) || !v.OK {
		t.Fatalf("job %d: status %s ok=%v err=%q", v.ID, v.Status, v.OK, v.Error)
	}
	return v, v.ElapsedMS
}

// TestPlannerCalibrationE2E is the calibration harness the ISSUE demands: a
// real 2-process TCP fleet runs warm-up jobs until the machine model carries
// live measurements, then plans and runs a tall-skinny and a square job. The
// simulator's prediction must track the measured wall time within 3x in
// either direction, and the planned configuration must not lose to the
// hand-default end-to-end. If the DES model drifts from the real runtime,
// this test fails and CI catches the drift.
func TestPlannerCalibrationE2E(t *testing.T) {
	eps := resilientTCPMesh(t, 2)
	ag, err := NewAgent(eps[1], 2, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	agentDone := make(chan error, 1)
	go func() { agentDone <- ag.Run(context.Background()) }()

	s, err := NewServer(Config{
		Threads: 2, QueueCap: 16, MaxConcurrent: 1, Ep: eps[0], Logf: t.Logf, Obs: testObserver(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	// Warm-up: the machine model starts as a static LocalHost guess; real
	// fleet jobs feed the cost model and the α–β estimator until the model is
	// marked measured. The mix deliberately spans tile sizes AND shapes — the
	// per-flop / per-task cost split is identifiable only from jobs with
	// different flops-per-task ratios, and a fit trained on one kernel mix
	// (panel-heavy tall-skinny vs update-heavy square) does not transfer to
	// the other (system identification needs the input to excite the
	// dimensions being estimated). The runs also warm the page cache out of
	// the measured comparisons.
	warmup := []struct{ m, n, nb int }{
		{1024, 128, 64}, {1024, 128, 32}, {512, 512, 64}, {1024, 128, 96}, {512, 512, 128},
	}
	for i, w := range warmup {
		submitTimed(t, c, JobSpec{M: w.m, N: w.n, NB: w.nb, IB: w.nb / 4, Seed: 100 + int64(i)})
	}
	waitUntil(t, func() bool {
		mm, err := c.MachineModel()
		return err == nil && mm.Measured
	})
	if mm, err := c.MachineModel(); err == nil {
		t.Logf("calibrated model: %.3f Gflop/s/core, alpha=%.3gs beta=%.3gs/B ovh=%.3gs",
			mm.Machine.CoreGflops, mm.Machine.AlphaInter, mm.Machine.BetaInter, mm.Machine.TaskOverhead)
	}

	shapes := []struct {
		name string
		spec JobSpec
	}{
		{"tall-skinny", JobSpec{M: 1536, N: 192, Seed: 53}},
		{"square", JobSpec{M: 640, N: 640, Seed: 59}},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			// Best-of-2 on both arms: one timing of a sub-second job on a
			// loaded CI box is noise, the minimum of two is a usable signal.
			defMS, planMS := 1e18, 1e18
			var planned JobView
			for i := int64(0); i < 2; i++ {
				spec := sh.spec
				spec.Seed += 10 * i
				if _, ms := submitTimed(t, c, spec); ms < defMS {
					defMS = ms
				}
				spec.Autotune = true
				spec.Seed += 5
				v, ms := submitTimed(t, c, spec)
				if ms < planMS {
					planMS = ms
					planned = v
				}
			}
			if planned.Plan == nil {
				t.Fatal("autotuned job carries no plan block")
			}
			if planned.Plan.PredictedMS <= 0 {
				t.Fatalf("plan predicted %.3f ms, want > 0", planned.Plan.PredictedMS)
			}

			// Calibration: predicted within 3x of measured, both directions.
			ratio := planMS / planned.Plan.PredictedMS
			t.Logf("%s: default %.1f ms, planned %.1f ms (%s), predicted %.1f ms, actual/predicted %.2f",
				sh.name, defMS, planMS, planned.Plan.Tree, planned.Plan.PredictedMS, ratio)
			if ratio > 3 || ratio < 1.0/3 {
				t.Errorf("calibration drift: measured %.1f ms vs predicted %.1f ms (ratio %.2f, want within 3x)",
					planMS, planned.Plan.PredictedMS, ratio)
			}

			// The planned configuration must not lose to the default
			// end-to-end; 25% headroom absorbs scheduler noise.
			if planMS > defMS*1.25 {
				t.Errorf("planned config measurably slower: %.1f ms vs default %.1f ms", planMS, defMS)
			}
		})
	}

	// The decisions and their outcomes must be visible on the surfaces the
	// ISSUE names: /v1/status's planner block and the plan metrics.
	body := httpGet(t, ts.URL+"/v1/status")
	for _, want := range []string{`"planner"`, `"plans"`, `"last_predicted_ms"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/v1/status missing %s: %s", want, body)
		}
	}
	metrics := httpGet(t, ts.URL+"/metrics")
	for _, want := range []string{
		`qrserve_plan_total{source="computed"}`,
		"qrserve_plan_seconds_bucket",
		"qrserve_plan_actual_over_predicted_bucket",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	s.Close()
	select {
	case <-agentDone:
	case <-time.After(10 * time.Second):
		t.Fatal("agent did not shut down")
	}
}

// POST /v1/plan is a pure dry run: it must return a decision consistent with
// the planner's invariant (never slower than default), echo the machine model
// it used, and leave no job behind.
func TestPlanEndpointDryRun(t *testing.T) {
	s, err := NewServer(Config{Threads: 2, QueueCap: 4, MaxConcurrent: 1, Obs: testObserver()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	pr, err := c.Plan(JobSpec{M: 2048, N: 256})
	if err != nil {
		t.Fatal(err)
	}
	d := pr.Decision
	if d.Simulated == 0 {
		t.Fatalf("dry run simulated nothing: %+v", d)
	}
	if d.Choice.PredictedMS > d.Default.PredictedMS*(1+1e-9) {
		t.Errorf("dry-run choice %.3f ms slower than default %.3f ms", d.Choice.PredictedMS, d.Default.PredictedMS)
	}
	if pr.Machine.Nodes < 1 || pr.Machine.CoreGflops <= 0 {
		t.Errorf("dry run echoed a broken machine: %+v", pr.Machine)
	}
	if d.Rationale == "" {
		t.Error("dry run missing rationale")
	}

	// A replan of the same shape at the same epoch must hit the cache.
	pr2, err := c.Plan(JobSpec{M: 2048, N: 256})
	if err != nil {
		t.Fatal(err)
	}
	if !pr2.Decision.FromCache {
		t.Error("identical dry-run replan missed the plan cache")
	}

	// Bad shapes are a client error, not a planner crash.
	if _, err := c.Plan(JobSpec{M: 64, N: 128}); err == nil {
		t.Error("wide shape accepted by /v1/plan")
	}

	// Dry runs admit no jobs.
	if got := s.metrics.Accepted.Load(); got != 0 {
		t.Errorf("dry runs admitted %d jobs", got)
	}
}
