package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"pulsarqr/internal/batch"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/obs"
)

// batchSeq numbers batch streams for event correlation: a batch request has
// no job id, so its start/end events share a synthetic "b<N>" session tag.
var batchSeq atomic.Int64

// batchFlushEvery bounds how many result frames accumulate in the HTTP
// response buffer before an explicit flush: frequent enough that a slow
// stream shows progress, rare enough that flush syscalls stay off the
// per-matrix path.
const batchFlushEvery = 64

// handleBatch serves POST /v1/batch: a length-prefixed stream of packed
// small matrices in, a stream of R factors out (completion order, trailer
// last — see docs/BATCH.md). Admission is a separate class from the job
// queue: at most cfg.BatchStreams streams factorize at once, and an arrival
// beyond that is shed immediately with 429 + Retry-After, buffering nothing.
// A stream cut short — client gone, shutdown, decode error — still ends with
// a trailer carrying partial-progress accounting, since the response headers
// are already out by then.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	select {
	case s.batchSem <- struct{}{}:
		defer func() { <-s.batchSem }()
	default:
		s.metrics.BatchRejected.Add(1)
		// Busy slots drain in chunk time, not job time: depth is the streams
		// already running, slots the stream cap, so the hint stays short.
		s.shed429(w, "batch", "", int(s.metrics.BatchActive.Load()), s.cfg.BatchStreams,
			"batch capacity exhausted; retry later")
		return
	}
	if s.baseCtx.Err() != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{ErrClosed.Error()})
		return
	}

	rr, err := batch.NewRequestReader(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad batch request: " + err.Error()})
		return
	}

	s.metrics.BatchRequests.Add(1)
	s.metrics.BatchActive.Add(1)
	defer s.metrics.BatchActive.Add(-1)

	bid := fmt.Sprintf("b%d", batchSeq.Add(1))
	bstart := time.Now()
	s.obs.Emit(obs.Event{Kind: obs.EvBatchStart, Class: "batch", Session: bid})

	// The stream must end when either the client or the server goes away:
	// merge the request context with the server's base context. Server Close
	// cancels baseCtx before closing the pool, so a stream wedged on a
	// dropped chunk is always unblocked here first.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	// Results stream while the request body is still arriving, which on
	// HTTP/1.1 requires explicit opt-in — without it the server closes the
	// body at the first response write. HTTP/2 is full duplex already, so
	// the error is advisory.
	http.NewResponseController(w).EnableFullDuplex()

	w.Header().Set("Content-Type", "application/octet-stream")
	rw, err := batch.NewResultWriter(w)
	if err != nil {
		return // client already gone; the stream never started
	}
	flusher, _ := w.(http.Flusher)
	sinceFlush := 0
	done, serr := s.batchSched.Stream(ctx, rr.Next, func(index int, res *matrix.Mat) error {
		if err := rw.WriteResult(index, res); err != nil {
			return err
		}
		if sinceFlush++; sinceFlush >= batchFlushEvery && flusher != nil {
			sinceFlush = 0
			flusher.Flush()
		}
		return nil
	})

	// Whatever ended the stream, the trailer reconciles it: shed is every
	// matrix the request declared that no result frame answered. Writes may
	// fail if the client is gone — nothing left to do about it.
	shed := rr.Count() - done
	if shed < 0 {
		shed = 0
	}
	s.metrics.BatchShed.Add(int64(shed))
	rw.WriteTrailer(shed)
	if flusher != nil {
		flusher.Flush()
	}
	s.metrics.ObserveStreamSpan("batch", time.Since(bstart))
	endDetail := fmt.Sprintf("%d/%d matrices", done, rr.Count())
	if serr != nil {
		endDetail += ": " + serr.Error()
	}
	s.obs.Emit(obs.Event{Kind: obs.EvBatchEnd, Class: "batch", Session: bid,
		DurMS: float64(time.Since(bstart)) / float64(time.Millisecond), Detail: endDetail})
	if serr != nil {
		s.cfg.Logf("batch stream ended early after %d/%d matrices: %v", done, rr.Count(), serr)
		return
	}
	// A complete stream leaves only the chunked-encoding terminator in the
	// body; consuming it here, on the handler goroutine, keeps net/http's
	// full-duplex close-time drain from racing the keepalive reader. Early
	// exits skip this — their bodies may stall, and those connections are
	// not worth reusing anyway.
	io.Copy(io.Discard, r.Body)
}
