// Package chol implements a tile Cholesky factorization on the same
// virtual-systolic-array runtime as the QR — the demonstration the paper's
// conclusion calls for ("we are currently ... mapping other algorithms
// onto PULSAR"). The algorithm is the classical right-looking tile
// Cholesky (PLASMA's dpotrf): for each step k,
//
//	dpotrf  A[k][k] = L[k][k]·L[k][k]ᵀ
//	dtrsm   A[i][k] := A[i][k]·L[k][k]⁻ᵀ           (i > k)
//	dsyrk   A[i][i] -= L[i][k]·L[i][k]ᵀ            (i > k)
//	dgemm   A[i][j] -= L[i][k]·L[j][k]ᵀ            (k < j < i)
//
// Only the lower triangle of tiles is stored and referenced. Like the QR,
// a sequential reference and the systolic execution perform the identical
// kernel sequence, so their results match elementwise.
package chol

import (
	"fmt"
	"math"

	"pulsarqr/internal/blas"
	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
)

// Factorization is a tile Cholesky result: L in the lower tiles of A.
type Factorization struct {
	N    int
	NB   int
	A    *matrix.Tiled // lower tiles hold L; above-diagonal tiles unused
	Opts Options
}

// Options parameterizes the factorization.
type Options struct {
	// NB is the tile size.
	NB int
}

func (o Options) normalize() Options {
	if o.NB <= 0 {
		o.NB = 64
	}
	return o
}

// Factorize computes the tile Cholesky of the symmetric positive-definite
// matrix held in a (only the lower tiles are referenced), in place — the
// sequential reference.
func Factorize(a *matrix.Tiled, opts Options) (*Factorization, error) {
	opts = opts.normalize()
	if a.M != a.N {
		return nil, fmt.Errorf("chol: matrix is %dx%d; Cholesky needs square", a.M, a.N)
	}
	if a.NB != opts.NB {
		return nil, fmt.Errorf("chol: matrix tiled with nb=%d but options say nb=%d", a.NB, opts.NB)
	}
	nt := a.NT
	for k := 0; k < nt; k++ {
		if err := kernels.Dpotrf(a.Tile(k, k)); err != nil {
			return nil, fmt.Errorf("chol: step %d: %w", k, err)
		}
		lkk := a.Tile(k, k)
		for i := k + 1; i < nt; i++ {
			t := a.Tile(i, k)
			// A[i][k] := A[i][k] · L[k][k]⁻ᵀ  (right, lower, transposed).
			blas.Dtrsm(false, false, true, false, t.Rows, t.Cols, 1,
				lkk.Data, lkk.LD, t.Data, t.LD)
		}
		for i := k + 1; i < nt; i++ {
			lik := a.Tile(i, k)
			for j := k + 1; j <= i; j++ {
				if j == i {
					c := a.Tile(i, i)
					blas.Dsyrk(false, false, c.Rows, lik.Cols, -1,
						lik.Data, lik.LD, 1, c.Data, c.LD)
				} else {
					ljk := a.Tile(j, k)
					c := a.Tile(i, j)
					blas.Dgemm(false, true, c.Rows, c.Cols, lik.Cols, -1,
						lik.Data, lik.LD, ljk.Data, ljk.LD, 1, c.Data, c.LD)
				}
			}
		}
	}
	return &Factorization{N: a.N, NB: opts.NB, A: a, Opts: opts}, nil
}

// L assembles the dense lower-triangular factor.
func (f *Factorization) L() *matrix.Mat {
	l := matrix.New(f.N, f.N)
	nb := f.NB
	for i := 0; i < f.A.MT; i++ {
		for j := 0; j <= i; j++ {
			src := f.A.Tile(i, j)
			dst := l.View(i*nb, j*nb, src.Rows, src.Cols)
			if i == j {
				for jj := 0; jj < src.Cols; jj++ {
					for ii := jj; ii < src.Rows; ii++ {
						dst.Set(ii, jj, src.At(ii, jj))
					}
				}
			} else {
				dst.CopyFrom(src)
			}
		}
	}
	return l
}

// Solve solves A·x = b using the factorization (forward then backward
// substitution), overwriting nothing; b is m×nrhs dense.
func (f *Factorization) Solve(b *matrix.Mat) *matrix.Mat {
	if b.Rows != f.N {
		panic(fmt.Sprintf("chol: rhs has %d rows, want %d", b.Rows, f.N))
	}
	x := b.Clone()
	l := f.L()
	// L·y = b, then Lᵀ·x = y.
	blas.Dtrsm(true, false, false, false, f.N, b.Cols, 1, l.Data, l.LD, x.Data, x.LD)
	blas.Dtrsm(true, false, true, false, f.N, b.Cols, 1, l.Data, l.LD, x.Data, x.LD)
	return x
}

// Residual returns ‖A − L·Lᵀ‖_F/‖A‖_F against the original dense matrix.
func (f *Factorization) Residual(orig *matrix.Mat) float64 {
	l := f.L()
	llt := l.Mul(l.Transpose())
	// Compare only the lower triangle (the factorization never saw the
	// strictly-upper part).
	diff, norm := 0.0, 0.0
	for j := 0; j < f.N; j++ {
		for i := j; i < f.N; i++ {
			d := llt.At(i, j) - orig.At(i, j)
			diff += d * d
			norm += orig.At(i, j) * orig.At(i, j)
		}
	}
	if norm == 0 {
		return 0
	}
	return math.Sqrt(diff) / math.Sqrt(norm)
}
