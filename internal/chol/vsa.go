package chol

import (
	"fmt"
	"time"

	"pulsarqr/internal/blas"
	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/tuple"
)

// The virtual systolic array for tile Cholesky. One single-firing VDP per
// task, mirroring the QR array's structure:
//
//   - the factored diagonal L[k][k] travels down a by-pass chain through
//     the step's dtrsm VDPs,
//   - each panel tile L[i][k] produced by a dtrsm broadcasts along two
//     by-pass chains: its row (the dgemm/dsyrk updates A[i][k+1..i]) and
//     its column (the dgemm updates A[i+1..][i]),
//   - updated trailing tiles are released directly to their task in step
//     k+1, so successive steps pipeline exactly like the QR panels.

const (
	kindPotrf = 0
	kindTrsm  = 1
	kindGemm  = 2 // dsyrk when i == j
)

// Trace classes for the Cholesky array.
const (
	ClassPotrf  = "potrf"
	ClassTrsm   = "trsm"
	ClassUpdate = "update"
)

// RunConfig mirrors qr.RunConfig for the Cholesky array.
type RunConfig struct {
	Nodes, Threads  int
	Scheduling      pulsar.Scheduling
	FireHook        func(pulsar.FireEvent)
	DeadlockTimeout time.Duration
}

func potrfTup(k int) tuple.Tuple      { return tuple.Tuple{kindPotrf, k, -1, -1} }
func trsmTup(k, i int) tuple.Tuple    { return tuple.Tuple{kindTrsm, k, i, -1} }
func gemmTup(k, i, j int) tuple.Tuple { return tuple.Tuple{kindGemm, k, i, j} }

type cholLocal struct {
	k, i, j int
	nt      int
}

// FactorizeVSA computes the tile Cholesky on the systolic runtime; results
// are elementwise identical to Factorize.
func FactorizeVSA(a *matrix.Tiled, opts Options, rc RunConfig) (*Factorization, error) {
	opts = opts.normalize()
	if a.M != a.N {
		return nil, fmt.Errorf("chol: matrix is %dx%d; Cholesky needs square", a.M, a.N)
	}
	if a.NB != opts.NB {
		return nil, fmt.Errorf("chol: matrix tiled with nb=%d but options say nb=%d", a.NB, opts.NB)
	}
	if rc.Nodes <= 0 {
		rc.Nodes = 1
	}
	if rc.Threads <= 0 {
		rc.Threads = 1
	}
	nt := a.NT
	nbBytes := 8*opts.NB*opts.NB + 64

	rowsPerNode := (nt + rc.Nodes - 1) / rc.Nodes
	s := pulsar.New(pulsar.Config{
		Nodes:           rc.Nodes,
		ThreadsPerNode:  rc.Threads,
		Scheduling:      rc.Scheduling,
		FireHook:        rc.FireHook,
		DeadlockTimeout: rc.DeadlockTimeout,
		Map: func(t tuple.Tuple) (int, int) {
			row, col := t.At(2), t.At(3)
			if row < 0 {
				row = t.At(1)
			}
			if col < 0 {
				col = t.At(1)
			}
			n := row / rowsPerNode
			if n >= rc.Nodes {
				n = rc.Nodes - 1
			}
			return n, (row + col) % rc.Threads
		},
	})

	// Pass 1: VDPs.
	for k := 0; k < nt; k++ {
		v := s.NewVDP(potrfTup(k), 1, potrfFn, ClassPotrf, 1, 2)
		v.SetLocal(&cholLocal{k: k, i: k, j: k, nt: nt})
		for i := k + 1; i < nt; i++ {
			v := s.NewVDP(trsmTup(k, i), 1, trsmFn, ClassTrsm, 2, 4)
			v.SetLocal(&cholLocal{k: k, i: i, j: k, nt: nt})
			for j := k + 1; j <= i; j++ {
				v := s.NewVDP(gemmTup(k, i, j), 1, gemmFn, ClassUpdate, 3, 3)
				v.SetLocal(&cholLocal{k: k, i: i, j: j, nt: nt})
			}
		}
	}
	// Pass 2: channels.
	release := func(k, i, j int, from tuple.Tuple, slot int) {
		// Updated tile A[i][j] after step k flows to its step-k+1 task.
		switch {
		case j == k+1 && i == j:
			s.Connect(from, slot, potrfTup(k+1), 0, nbBytes, false)
		case j == k+1:
			s.Connect(from, slot, trsmTup(k+1, i), 0, nbBytes, false)
		default:
			s.Connect(from, slot, gemmTup(k+1, i, j), 0, nbBytes, false)
		}
	}
	for k := 0; k < nt; k++ {
		s.Output(potrfTup(k), 1, nbBytes) // final L[k][k]
		if k+1 < nt {
			s.Connect(potrfTup(k), 0, trsmTup(k, k+1), 1, nbBytes, false)
		}
		for i := k + 1; i < nt; i++ {
			if i+1 < nt {
				s.Connect(trsmTup(k, i), 0, trsmTup(k, i+1), 1, nbBytes, false) // Lkk chain
				s.Connect(trsmTup(k, i), 2, gemmTup(k, i+1, i), 2, nbBytes, false)
			}
			s.Connect(trsmTup(k, i), 1, gemmTup(k, i, k+1), 1, nbBytes, false)
			s.Output(trsmTup(k, i), 3, nbBytes) // final L[i][k]
			for j := k + 1; j <= i; j++ {
				from := gemmTup(k, i, j)
				if j < i {
					s.Connect(from, 0, gemmTup(k, i, j+1), 1, nbBytes, false) // row fwd
					if i+1 < nt {
						s.Connect(from, 1, gemmTup(k, i+1, j), 2, nbBytes, false) // col fwd
					}
				}
				release(k, i, j, from, 2)
			}
		}
	}
	// Injection of the lower tiles.
	for i := 0; i < nt; i++ {
		for j := 0; j <= i; j++ {
			var dst tuple.Tuple
			var slot int
			switch {
			case j == 0 && i == 0:
				dst, slot = potrfTup(0), 0
			case j == 0:
				dst, slot = trsmTup(0, i), 0
			default:
				dst, slot = gemmTup(0, i, j), 0
			}
			s.Input(dst, slot, nbBytes)
			s.Inject(dst, slot, pulsar.NewPacket(a.Tile(i, j)))
		}
	}
	if err := s.Run(); err != nil {
		return nil, err
	}

	// Assemble.
	out := matrix.NewTiled(a.M, a.N, a.NB)
	one := func(tup tuple.Tuple, slot int) (*matrix.Mat, error) {
		ps := s.Collected(tup, slot)
		if len(ps) != 1 {
			return nil, fmt.Errorf("chol: collector %v[%d] holds %d packets", tup, slot, len(ps))
		}
		if err, ok := ps[0].Data.(error); ok {
			return nil, err
		}
		return ps[0].Tile(), nil
	}
	for k := 0; k < nt; k++ {
		tl, err := one(potrfTup(k), 1)
		if err != nil {
			return nil, err
		}
		out.SetTile(k, k, tl)
		for i := k + 1; i < nt; i++ {
			tl, err := one(trsmTup(k, i), 3)
			if err != nil {
				return nil, err
			}
			out.SetTile(i, k, tl)
		}
	}
	return &Factorization{N: a.N, NB: opts.NB, A: out, Opts: opts}, nil
}

func potrfFn(v *pulsar.VDP) {
	loc := v.Local().(*cholLocal)
	tile := v.Pop(0).Tile()
	if err := kernels.Dpotrf(tile); err != nil {
		// Deliver the failure through the collector; the driver surfaces
		// it after the run drains (remaining VDPs starve by design, so the
		// deadlock watchdog would fire — destroy downstream expectations
		// by pushing the factored-anyway tile onward is wrong; instead
		// push the error and the unmodified tile down the chain so the
		// array still drains).
		v.Push(1, pulsar.NewPacket(fmt.Errorf("chol: step %d: %w", loc.k, err)))
		if loc.k+1 < loc.nt {
			v.Push(0, pulsar.NewPacket(tile))
		}
		return
	}
	v.Push(1, pulsar.NewPacket(tile))
	if loc.k+1 < loc.nt {
		v.Push(0, pulsar.NewPacket(tile))
	}
}

func trsmFn(v *pulsar.VDP) {
	loc := v.Local().(*cholLocal)
	lkkPkt := v.Pop(1)
	if loc.i+1 < loc.nt {
		v.Push(0, lkkPkt) // by-pass the diagonal down the chain
	}
	tile := v.Pop(0).Tile()
	lkk := lkkPkt.Tile()
	blas.Dtrsm(false, false, true, false, tile.Rows, tile.Cols, 1,
		lkk.Data, lkk.LD, tile.Data, tile.LD)
	v.Push(1, pulsar.NewPacket(tile)) // row chain
	if loc.i+1 < loc.nt {
		v.Push(2, pulsar.NewPacket(tile)) // column chain
	}
	v.Push(3, pulsar.NewPacket(tile)) // final L[i][k]
}

func gemmFn(v *pulsar.VDP) {
	loc := v.Local().(*cholLocal)
	likPkt := v.Pop(1)
	if loc.j < loc.i {
		v.Push(0, likPkt) // forward along the row first
	}
	var ljk *matrix.Mat
	if loc.j < loc.i {
		ljkPkt := v.Pop(2)
		if loc.i+1 < loc.nt {
			v.Push(1, ljkPkt) // forward down the column
		}
		ljk = ljkPkt.Tile()
	}
	tile := v.Pop(0).Tile()
	lik := likPkt.Tile()
	if loc.j == loc.i {
		blas.Dsyrk(false, false, tile.Rows, lik.Cols, -1, lik.Data, lik.LD, 1, tile.Data, tile.LD)
	} else {
		blas.Dgemm(false, true, tile.Rows, tile.Cols, lik.Cols, -1,
			lik.Data, lik.LD, ljk.Data, ljk.LD, 1, tile.Data, tile.LD)
	}
	v.Push(2, pulsar.NewPacket(tile))
}
