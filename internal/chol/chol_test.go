package chol

import (
	"math/rand"
	"strings"
	"testing"

	"pulsarqr/internal/matrix"
)

// spd builds a well-conditioned symmetric positive-definite matrix.
func spd(n int, seed int64) *matrix.Mat {
	rng := rand.New(rand.NewSource(seed))
	b := matrix.NewRand(n, n, rng)
	a := b.Transpose().Mul(b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestSequentialCholesky(t *testing.T) {
	for _, n := range []int{1, 5, 8, 16, 23, 40} {
		a := spd(n, int64(n))
		o := Options{NB: 8}
		f, err := Factorize(matrix.FromDense(a, o.NB), o)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res := f.Residual(a); res > 1e-13 {
			t.Fatalf("n=%d: residual %v", n, res)
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	n := 24
	a := spd(n, 7)
	xTrue := matrix.NewRand(n, 3, rand.New(rand.NewSource(8)))
	b := a.Mul(xTrue)
	f, err := Factorize(matrix.FromDense(a, 8), Options{NB: 8})
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve(b)
	if d := matrix.MaxAbsDiff(x, xTrue); d > 1e-11 {
		t.Fatalf("solution off by %v", d)
	}
}

func TestCholeskyLIsLowerTriangular(t *testing.T) {
	a := spd(20, 9)
	f, err := Factorize(matrix.FromDense(a, 8), Options{NB: 8})
	if err != nil {
		t.Fatal(err)
	}
	l := f.L()
	for j := 0; j < 20; j++ {
		for i := 0; i < j; i++ {
			if l.At(i, j) != 0 {
				t.Fatalf("L(%d,%d) = %v above diagonal", i, j, l.At(i, j))
			}
		}
		if l.At(j, j) <= 0 {
			t.Fatalf("L(%d,%d) = %v not positive", j, j, l.At(j, j))
		}
	}
}

func TestVSACholeskyMatchesSequential(t *testing.T) {
	for _, n := range []int{8, 16, 23, 40, 55} {
		a := spd(n, int64(100+n))
		o := Options{NB: 8}
		seq, err := Factorize(matrix.FromDense(a, o.NB), o)
		if err != nil {
			t.Fatal(err)
		}
		vsa, err := FactorizeVSA(matrix.FromDense(a, o.NB), o, RunConfig{Nodes: 2, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(seq.L(), vsa.L()); d != 0 {
			t.Fatalf("n=%d: systolic L differs by %v", n, d)
		}
	}
}

func TestVSACholeskyMultiNode(t *testing.T) {
	a := spd(64, 11)
	o := Options{NB: 8}
	seq, err := Factorize(matrix.FromDense(a, o.NB), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 3, 4} {
		vsa, err := FactorizeVSA(matrix.FromDense(a, o.NB), o, RunConfig{Nodes: nodes, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(seq.L(), vsa.L()); d != 0 {
			t.Fatalf("nodes=%d: L differs by %v", nodes, d)
		}
	}
}

func TestNotPositiveDefinite(t *testing.T) {
	a := matrix.New(16, 16) // the zero matrix is not PD
	if _, err := Factorize(matrix.FromDense(a, 8), Options{NB: 8}); err == nil {
		t.Fatal("zero matrix must be rejected")
	}
	// Indefinite: flip a diagonal sign of an SPD matrix.
	b := spd(16, 12)
	b.Set(5, 5, -b.At(5, 5))
	_, err := Factorize(matrix.FromDense(b, 8), Options{NB: 8})
	if err == nil || !strings.Contains(err.Error(), "positive definite") {
		t.Fatalf("expected not-PD error, got %v", err)
	}
	// The systolic version reports the same failure instead of hanging.
	_, err = FactorizeVSA(matrix.FromDense(b, 8), Options{NB: 8}, RunConfig{Threads: 2})
	if err == nil || !strings.Contains(err.Error(), "positive definite") {
		t.Fatalf("systolic: expected not-PD error, got %v", err)
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	a := matrix.NewRand(8, 6, rand.New(rand.NewSource(1)))
	if _, err := Factorize(matrix.FromDense(a, 8), Options{NB: 8}); err == nil {
		t.Fatal("non-square must be rejected")
	}
	if _, err := FactorizeVSA(matrix.FromDense(a, 8), Options{NB: 8}, RunConfig{}); err == nil {
		t.Fatal("non-square must be rejected by the systolic path")
	}
}
