// Package numa discovers the host's NUMA topology and pins worker threads
// to nodes, so a pulsar.Pool can keep each worker's kernel workspaces, tile
// packings and firing traffic on the memory local to its socket.
//
// Discovery reads the Linux sysfs tree (/sys/devices/system/node); on
// other platforms, or when sysfs is absent, Detect degrades to a single
// node covering every CPU, and PinThread reports ErrUnsupported — callers
// treat pinning as best-effort and run unpinned.
//
// Node-local allocation uses the first-touch policy every mainstream OS
// applies to anonymous memory: pages are committed on the node of the CPU
// that first writes them. The pool therefore creates each worker's state
// on the worker's own thread after pinning, and tile storage written by a
// pinned worker's first kernel firing lands on that worker's node without
// any explicit placement syscalls.
package numa

import (
	"errors"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// ErrUnsupported is returned by PinThread on platforms without a thread
// affinity syscall. Callers should fall back to running unpinned.
var ErrUnsupported = errors.New("numa: thread pinning not supported on this platform")

// Node is one NUMA node: its sysfs ID and the CPUs it owns.
type Node struct {
	ID   int
	CPUs []int
}

// Topology is the set of NUMA nodes visible to this process, sorted by ID.
type Topology struct {
	Nodes []Node
}

// NumNodes returns the node count (at least 1 for a valid topology).
func (t *Topology) NumNodes() int { return len(t.Nodes) }

// NodeForWorker maps worker thread w of threads total onto a node,
// interleaving workers round-robin across nodes so concurrent firings
// spread over every memory controller. The mapping is deterministic.
func (t *Topology) NodeForWorker(w int) *Node {
	if len(t.Nodes) == 0 {
		return nil
	}
	return &t.Nodes[w%len(t.Nodes)]
}

// sysNodeDir is swappable in tests.
var sysNodeDir = "/sys/devices/system/node"

// Detect reads the host topology from sysfs. It never fails: hosts without
// readable NUMA information (non-Linux, containers hiding sysfs) get a
// single node 0 spanning runtime.NumCPU() logical CPUs, which makes every
// downstream decision a no-op.
func Detect() *Topology {
	if t := detectSysfs(sysNodeDir); t != nil {
		return t
	}
	cpus := make([]int, runtime.NumCPU())
	for i := range cpus {
		cpus[i] = i
	}
	return &Topology{Nodes: []Node{{ID: 0, CPUs: cpus}}}
}

func detectSysfs(dir string) *Topology {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var t Topology
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "node") {
			continue
		}
		id, err := strconv.Atoi(name[len("node"):])
		if err != nil {
			continue
		}
		raw, err := os.ReadFile(dir + "/" + name + "/cpulist")
		if err != nil {
			continue
		}
		cpus := ParseCPUList(strings.TrimSpace(string(raw)))
		if len(cpus) == 0 {
			continue // memory-only node: nothing to pin to
		}
		t.Nodes = append(t.Nodes, Node{ID: id, CPUs: cpus})
	}
	if len(t.Nodes) == 0 {
		return nil
	}
	sort.Slice(t.Nodes, func(i, j int) bool { return t.Nodes[i].ID < t.Nodes[j].ID })
	return &t
}

// ParseCPUList parses the kernel's cpulist format — comma-separated CPU
// numbers and inclusive ranges, e.g. "0-3,8,10-11". Malformed fields are
// skipped rather than failing the whole list.
func ParseCPUList(s string) []int {
	var cpus []int
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(field, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || b < a {
				continue
			}
			for c := a; c <= b; c++ {
				cpus = append(cpus, c)
			}
		} else if c, err := strconv.Atoi(field); err == nil {
			cpus = append(cpus, c)
		}
	}
	return cpus
}
