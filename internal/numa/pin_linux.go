//go:build linux

package numa

import (
	"errors"
	"runtime"
	"syscall"
	"unsafe"
)

// maskWords sizes the affinity bitmask for up to 1024 logical CPUs, the
// kernel's conventional cpu_set_t width.
const maskWords = 16

// PinThread locks the calling goroutine to its OS thread and restricts
// that thread to the given CPUs. The lock is intentionally never released:
// a pinned pool worker owns its thread for the life of the process, which
// is what makes first-touch allocations from that worker node-stable. CPUs
// outside [0, 1024) are ignored; an empty effective mask is an error and
// leaves the thread unpinned.
func PinThread(cpus []int) error {
	var mask [maskWords]uint64
	any := false
	for _, c := range cpus {
		if c < 0 || c >= maskWords*64 {
			continue
		}
		mask[c/64] |= 1 << (c % 64)
		any = true
	}
	if !any {
		return errors.New("numa: empty CPU mask")
	}
	runtime.LockOSThread()
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, // current thread
		uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		runtime.UnlockOSThread()
		return errno
	}
	return nil
}
