//go:build !linux

package numa

// PinThread is unavailable off Linux; callers run unpinned.
func PinThread(cpus []int) error { return ErrUnsupported }
