package numa

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseCPUList(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []int
	}{
		{"0", []int{0}},
		{"0-3", []int{0, 1, 2, 3}},
		{"0-1,4-5", []int{0, 1, 4, 5}},
		{"7,9,11", []int{7, 9, 11}},
		{" 0-2 , 8 ", []int{0, 1, 2, 8}},
		{"", nil},
		{"x,3", []int{3}},   // malformed field skipped
		{"5-3,2", []int{2}}, // inverted range skipped
		{"1-1", []int{1}},   // degenerate range
	} {
		if got := ParseCPUList(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseCPUList(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// fakeSysfs materializes a /sys/devices/system/node tree with the given
// per-node cpulist contents.
func fakeSysfs(t *testing.T, nodes map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, cpulist := range nodes {
		if err := os.MkdirAll(filepath.Join(dir, name), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name, "cpulist"), []byte(cpulist+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestDetectSysfs(t *testing.T) {
	dir := fakeSysfs(t, map[string]string{
		"node1":    "8-15",
		"node0":    "0-7",
		"node2":    "", // memory-only node: no CPUs, must be skipped
		"has_cpu":  "ignored",
		"possible": "ignored",
	})
	topo := detectSysfs(dir)
	if topo == nil {
		t.Fatal("detectSysfs returned nil for a populated tree")
	}
	want := []Node{{ID: 0, CPUs: []int{0, 1, 2, 3, 4, 5, 6, 7}}, {ID: 1, CPUs: []int{8, 9, 10, 11, 12, 13, 14, 15}}}
	if !reflect.DeepEqual(topo.Nodes, want) {
		t.Fatalf("Nodes = %+v, want %+v", topo.Nodes, want)
	}
}

func TestDetectFallsBackToSingleNode(t *testing.T) {
	old := sysNodeDir
	sysNodeDir = filepath.Join(t.TempDir(), "does-not-exist")
	defer func() { sysNodeDir = old }()
	topo := Detect()
	if topo.NumNodes() != 1 || topo.Nodes[0].ID != 0 || len(topo.Nodes[0].CPUs) == 0 {
		t.Fatalf("fallback topology = %+v, want one node 0 covering all CPUs", topo.Nodes)
	}
}

func TestNodeForWorkerInterleaves(t *testing.T) {
	topo := &Topology{Nodes: []Node{{ID: 0}, {ID: 1}, {ID: 3}}}
	for w, want := range []int{0, 1, 3, 0, 1, 3, 0} {
		if got := topo.NodeForWorker(w); got.ID != want {
			t.Errorf("NodeForWorker(%d).ID = %d, want %d", w, got.ID, want)
		}
	}
	empty := &Topology{}
	if empty.NodeForWorker(0) != nil {
		t.Error("NodeForWorker on empty topology should return nil")
	}
}

func TestPinThreadEmptyMask(t *testing.T) {
	if err := PinThread(nil); err == nil {
		t.Fatal("PinThread(nil) succeeded, want error")
	}
	if err := PinThread([]int{-1, 1 << 20}); err == nil {
		t.Fatal("PinThread with only out-of-range CPUs succeeded, want error")
	}
}
