package qr

// Fault propagation: when a peer dies mid-factorization, FactorizeVSADist
// must surface the transport's dead-peer verdict as the cause — long before
// the deadlock watchdog would fire, and identifiable with errors.As so the
// service layer can decide to requeue.

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/transport"
)

// faultTCPMesh dials a 2-rank in-process TCP mesh with fail-fast (zero
// reconnect) config, so a crash yields an immediate verdict.
func faultTCPMesh(t *testing.T, n int) []transport.Endpoint {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	eps := make([]transport.Endpoint, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eps[i], errs[i] = transport.DialTCP(transport.TCPConfig{
				Rank:              i,
				Peers:             peers,
				Listener:          lns[i],
				RendezvousTimeout: 10 * time.Second,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return eps
}

func TestFactorizeVSADistSurfacesPeerDeath(t *testing.T) {
	eps := faultTCPMesh(t, 2)
	d, b, o := distInputs()

	// Rank 0 factorizes with a watchdog far beyond the test budget: if the
	// peer-death cause were swallowed into a generic deadlock timeout, this
	// test would hang for two minutes instead of returning promptly.
	errCh := make(chan error, 1)
	go func() {
		_, err := FactorizeVSADist(
			matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB),
			o, RunConfig{Threads: 2, DeadlockTimeout: 2 * time.Minute}, eps[0])
		errCh <- err
	}()

	// Rank 1 never joins the computation and crashes shortly after the
	// mesh is up — a worker lost mid-job.
	time.Sleep(50 * time.Millisecond)
	eps[1].(transport.Crasher).Crash()

	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("factorization succeeded with a dead peer")
		}
		var pde *transport.PeerDeathError
		if !errors.As(err, &pde) {
			t.Fatalf("error %v does not carry the transport's PeerDeathError", err)
		}
		if pde.Rank != 1 {
			t.Fatalf("dead peer reported as rank %d, want 1", pde.Rank)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("peer death not propagated; factorization still blocked (deadlock watchdog would mask the cause)")
	}
	eps[0].Close()
}
