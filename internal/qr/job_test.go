package qr

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/transport"
)

func randTiled(t *testing.T, m, n, nb int, seed int64) (*matrix.Tiled, *matrix.Mat) {
	t.Helper()
	d := matrix.NewRand(m, n, rand.New(rand.NewSource(seed)))
	return matrix.FromDense(d, nb), d
}

// checkAgainstOracle factors the same dense input sequentially and compares
// R factors, then checks the residual and Q's orthogonality directly.
func checkAgainstOracle(t *testing.T, f *Factorization, d *matrix.Mat, opts Options) {
	t.Helper()
	want, err := Factorize(matrix.FromDense(d, opts.NB), nil, opts)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if diff := matrix.MaxAbsDiff(f.R(), want.R()); diff > 1e-12 {
		t.Errorf("R differs from sequential oracle by %g", diff)
	}
	if res := f.Residual(d); res > 1e-12 {
		t.Errorf("residual %g", res)
	}
	q := f.Q()
	n := q.Cols
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			var dot float64
			for k := 0; k < q.Rows; k++ {
				dot += q.At(k, i) * q.At(k, j)
			}
			want := 0.0
			if i == j {
				want = 1.0
			}
			if diff := dot - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("Q^T Q [%d,%d] = %g, want %g", i, j, dot, want)
			}
		}
	}
}

func TestServeLocalPooled(t *testing.T) {
	pool := pulsar.NewPool(3, func(int) any { return kernels.NewWorkspace() })
	defer pool.Close()
	opts := Options{NB: 32, IB: 8, Tree: HierarchicalTree, H: 2}
	a, d := randTiled(t, 160, 96, 32, 1)
	f, err := FactorizeVSAServe(context.Background(), a, nil, opts, RunConfig{}, nil, pool)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, f, d, opts)
}

// Concurrent jobs with distinct shapes and trees share one pool; each must
// match its own sequential oracle. Run under -race this also exercises the
// pool's cross-job scheduling.
func TestServeConcurrentJobsOracle(t *testing.T) {
	pool := pulsar.NewPool(4, func(int) any { return kernels.NewWorkspace() })
	defer pool.Close()
	type job struct {
		m, n, nb int
		tree     TreeKind
	}
	jobs := []job{
		{128, 64, 32, HierarchicalTree},
		{192, 96, 32, FlatTree},
		{160, 64, 32, BinaryTree},
		{96, 96, 32, HierarchicalTree},
		{256, 64, 64, FlatTree},
		{128, 32, 32, BinaryTree},
		{224, 96, 32, HierarchicalTree},
		{160, 160, 32, FlatTree},
	}
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			opts := Options{NB: j.nb, IB: 8, Tree: j.tree, H: 2}
			a, d := randTiled(t, j.m, j.n, j.nb, int64(100+i))
			f, err := FactorizeVSAServe(context.Background(), a, nil, opts, RunConfig{}, nil, pool)
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			checkAgainstOracle(t, f, d, opts)
		}(i, j)
	}
	wg.Wait()
}

func TestServeCancel(t *testing.T) {
	pool := pulsar.NewPool(1, func(int) any { return kernels.NewWorkspace() })
	defer pool.Close()
	opts := Options{NB: 32, IB: 8}
	a, _ := randTiled(t, 512, 256, 32, 3)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := FactorizeVSAServe(ctx, a, nil, opts, RunConfig{DeadlockTimeout: -1}, nil, pool)
		errc <- err
	}()
	cancel()
	select {
	case err := <-errc:
		// Either the run aborted (cancellation error wrapping ctx's cause)
		// or it finished before observing the cancel; both are legal.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled run did not return")
	}
	// The pool still serves jobs after the cancellation.
	a2, d2 := randTiled(t, 96, 64, 32, 4)
	f, err := FactorizeVSAServe(context.Background(), a2, nil, opts, RunConfig{}, nil, pool)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, f, d2, opts)
}

func TestServeCancelBeforeStart(t *testing.T) {
	pool := pulsar.NewPool(1, nil)
	defer pool.Close()
	opts := Options{NB: 32, IB: 8}
	a, _ := randTiled(t, 128, 64, 32, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FactorizeVSAServe(ctx, a, nil, opts, RunConfig{}, nil, pool); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled run returned %v, want context.Canceled", err)
	}
}

// Distributed serve jobs over a mux: two in-process ranks, two concurrent
// jobs sharing the rank's pool and the underlying local endpoints.
func TestServeDistMuxConcurrent(t *testing.T) {
	l := transport.NewLocal(2)
	m0 := transport.NewMux(l.Endpoint(0))
	m1 := transport.NewMux(l.Endpoint(1))
	defer m0.Close()
	defer m1.Close()
	pools := []*pulsar.Pool{
		pulsar.NewPool(2, func(int) any { return kernels.NewWorkspace() }),
		pulsar.NewPool(2, func(int) any { return kernels.NewWorkspace() }),
	}
	defer pools[0].Close()
	defer pools[1].Close()
	muxes := []*transport.Mux{m0, m1}

	type spec struct {
		job  uint32
		m, n int
		tree TreeKind
	}
	specs := []spec{
		{1, 160, 64, HierarchicalTree},
		{2, 128, 96, FlatTree},
	}
	var wg sync.WaitGroup
	for _, sp := range specs {
		for rank := 0; rank < 2; rank++ {
			wg.Add(1)
			go func(sp spec, rank int) {
				defer wg.Done()
				ep, err := muxes[rank].Open(sp.job)
				if err != nil {
					t.Errorf("job %d rank %d: open: %v", sp.job, rank, err)
					return
				}
				defer ep.Close()
				opts := Options{NB: 32, IB: 8, Tree: sp.tree, H: 2}
				a, d := randTiled(t, sp.m, sp.n, 32, int64(sp.job))
				f, err := FactorizeVSAServe(context.Background(), a, nil, opts, RunConfig{}, ep, pools[rank])
				if err != nil {
					t.Errorf("job %d rank %d: %v", sp.job, rank, err)
					return
				}
				if rank == 0 {
					checkAgainstOracle(t, f, d, opts)
				} else if f != nil {
					t.Errorf("job %d rank %d: non-nil factorization on non-root", sp.job, rank)
				}
			}(sp, rank)
		}
	}
	wg.Wait()
}

// FactorizeVSADistCtx cancellation: cancel on both ranks (as the launcher's
// process-group signal would) and expect prompt unwinding.
func TestDistCtxCancel(t *testing.T) {
	l := transport.NewLocal(2)
	ctx, cancel := context.WithCancel(context.Background())
	opts := Options{NB: 32, IB: 8}
	errc := make(chan error, 2)
	for rank := 0; rank < 2; rank++ {
		go func(rank int) {
			a, _ := randTiled(t, 512, 256, 32, 9)
			_, err := FactorizeVSADistCtx(ctx, a, nil, opts, RunConfig{Threads: 1, DeadlockTimeout: -1}, l.Endpoint(rank))
			errc <- err
		}(rank)
	}
	time.Sleep(5 * time.Millisecond)
	cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errc:
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("rank returned %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("canceled distributed run did not return")
		}
	}
}
