package qr

import (
	"math"
	"math/rand"
	"testing"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/scalapack"
)

func TestPlanFlatInterStructure(t *testing.T) {
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 4, Inter: FlatInter}.normalize()
	p := planPanel(0, 24, o)
	// 6 domains, tops 0,4,8,...,20: flat chain folds each into top 0.
	if len(p.Merges) != 5 {
		t.Fatalf("merges: %+v", p.Merges)
	}
	for i, m := range p.Merges {
		if m.Surv != 0 || m.K != (i+1)*4 || m.Level != i {
			t.Fatalf("merge %d = %+v", i, m)
		}
	}
}

func TestPlanFlatInterInvariants(t *testing.T) {
	// The generic plan invariants must hold for the flat inter-tree too.
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 3, Inter: FlatInter}.normalize()
	for _, mt := range []int{5, 9, 17} {
		for j := 0; j < mt; j++ {
			p := planPanel(j, mt, o)
			elim := map[int]bool{}
			for _, m := range p.Merges {
				if elim[m.Surv] || elim[m.K] {
					t.Fatalf("mt=%d j=%d: reuse of eliminated top: %+v", mt, j, p.Merges)
				}
				elim[m.K] = true
			}
			if elim[j] {
				t.Fatalf("mt=%d j=%d: panel top eliminated", mt, j)
			}
			if len(elim) != len(p.Domains)-1 {
				t.Fatalf("mt=%d j=%d: %d merges for %d domains", mt, j, len(elim), len(p.Domains))
			}
		}
	}
}

func TestFlatInterEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	d := matrix.NewRand(66, 17, rng)
	b := matrix.NewRand(66, 2, rng)
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 3, Inter: FlatInter}
	seq, err := Factorize(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB), o)
	if err != nil {
		t.Fatal(err)
	}
	if res := seq.Residual(d); res > 1e-13 {
		t.Fatalf("flat-inter residual %v", res)
	}
	vsa, err := FactorizeVSA(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB), o,
		RunConfig{Nodes: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertFactorizationsEqual(t, seq, vsa)
	qk, err := FactorizeQuark(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB), o, 3)
	if err != nil {
		t.Fatal(err)
	}
	assertFactorizationsEqual(t, seq, qk)
}

func TestQThinReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, o := range []Options{
		{NB: 8, IB: 4, Tree: HierarchicalTree, H: 3},
		{NB: 8, IB: 4, Tree: BinaryTree},
	} {
		m, n := 29, 11
		d := matrix.NewRand(m, n, rng)
		f := factorDense(t, d, o)
		q := f.Q()
		if q.Rows != m || q.Cols != n {
			t.Fatalf("thin Q shape %dx%d", q.Rows, q.Cols)
		}
		// QᵀQ = I and Q·R = A.
		if diff := matrix.MaxAbsDiff(q.Transpose().Mul(q), matrix.Identity(n)); diff > 1e-12 {
			t.Fatalf("%v: thin Q not orthonormal: %v", o, diff)
		}
		if diff := matrix.MaxAbsDiff(q.Mul(f.R()), d); diff > 1e-12 {
			t.Fatalf("%v: QR != A: %v", o, diff)
		}
	}
}

func TestQFullOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 2}
	m, n := 21, 9
	d := matrix.NewRand(m, n, rng)
	f := factorDense(t, d, o)
	q := f.QFull()
	if q.Rows != m || q.Cols != m {
		t.Fatalf("full Q shape %dx%d", q.Rows, q.Cols)
	}
	if diff := matrix.MaxAbsDiff(q.Transpose().Mul(q), matrix.Identity(m)); diff > 1e-12 {
		t.Fatalf("full Q not orthogonal: %v", diff)
	}
	// The thin Q is the first n columns of the full Q.
	if diff := matrix.MaxAbsDiff(q.View(0, 0, m, n), f.Q()); diff > 1e-12 {
		t.Fatalf("thin/full Q mismatch: %v", diff)
	}
}

// TestCrossValidateAgainstBlockQR compares the tree-based tile QR against
// the completely independent LAPACK-style block algorithm: |R| must agree
// entrywise (R is unique up to row signs for a full-rank matrix).
func TestCrossValidateAgainstBlockQR(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m, n := 57, 18
	d := matrix.NewRand(m, n, rng)
	tile := factorDense(t, d, Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 3})
	block, err := scalapack.Factorize(d.Clone(), 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	rt, rb := tile.R(), block.R()
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			if diff := math.Abs(math.Abs(rt.At(i, j)) - math.Abs(rb.At(i, j))); diff > 1e-11 {
				t.Fatalf("|R(%d,%d)| differs between tile and block QR by %v", i, j, diff)
			}
		}
	}
}
