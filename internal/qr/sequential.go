package qr

import (
	"fmt"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
)

// Factorize computes the tree-based tile QR of a in place and returns the
// factorization. It is the sequential reference implementation: it executes
// the exact kernel sequence the 3D VSA executes (same plan, same per-datum
// order), so the two produce bitwise-comparable results.
//
// b, when non-nil, is a tiled set of ride-along right-hand-side columns
// (same tile size and row count as a): it receives every trailing-matrix
// update but never enters panel factorization, leaving it equal to QᵀB —
// exactly how the VSA computes least-squares solutions without a second
// pass.
func Factorize(a *matrix.Tiled, b *matrix.Tiled, opts Options) (*Factorization, error) {
	opts = opts.normalize()
	if a.M < a.N {
		return nil, fmt.Errorf("qr: matrix is %dx%d; tall-skinny factorization requires m >= n", a.M, a.N)
	}
	if a.NB != opts.NB {
		return nil, fmt.Errorf("qr: matrix tiled with nb=%d but options say nb=%d", a.NB, opts.NB)
	}
	if b != nil && (b.M != a.M || b.NB != a.NB) {
		return nil, fmt.Errorf("qr: rhs is %d rows tile %d; matrix is %d rows tile %d", b.M, b.NB, a.M, a.NB)
	}
	f := &Factorization{M: a.M, N: a.N, Opts: opts, A: a, QTB: b}

	// One workspace for the whole factorization: the sequential reference is
	// single-goroutine, so every kernel call below reuses the same scratch.
	ws := kernels.NewWorkspace()

	// colTile enumerates the trailing tiles of row i at panel j: first the
	// matrix columns j+1..nt-1, then every rhs tile column.
	colTile := func(i, idx, j int) *matrix.Mat {
		if na := a.NT - j - 1; idx < na {
			return a.Tile(i, j+1+idx)
		} else if b != nil {
			return b.Tile(i, idx-na)
		}
		panic("qr: column index out of range")
	}
	ncols := func(j int) int {
		n := a.NT - j - 1
		if b != nil {
			n += b.NT
		}
		return n
	}

	for j := 0; j < a.NT && j < a.MT; j++ {
		n := a.TileCols(j)
		plan := planPanel(j, a.MT, opts)
		nc := ncols(j)

		// rs holds the evolving R of each domain, keyed by the domain top.
		rs := map[int]*matrix.Mat{}

		for _, d := range plan.Domains {
			top := d.Top
			tile := a.Tile(top, j)
			k := min(tile.Rows, n)
			tg := matrix.New(min(opts.IB, k), k)
			kernels.DgeqrtWS(ws, opts.IB, tile, tg)
			f.Ops = append(f.Ops, Op{Kind: OpGeqrt, J: j, I: top, K: -1, T: tg})
			for l := 0; l < nc; l++ {
				kernels.DormqrWS(ws, true, opts.IB, tile, tg, colTile(top, l, j))
			}
			// Extract the domain R as a working copy (upper trapezoid).
			r := matrix.New(k, n)
			for jj := 0; jj < n; jj++ {
				for ii := 0; ii <= jj && ii < k; ii++ {
					r.Set(ii, jj, tile.At(ii, jj))
				}
			}
			rs[top] = r

			for _, kRow := range d.Rows {
				kt := a.Tile(kRow, j)
				tt := matrix.New(min(opts.IB, n), n)
				kernels.DtsqrtWS(ws, opts.IB, r, kt, tt)
				f.Ops = append(f.Ops, Op{Kind: OpTsqrt, J: j, I: top, K: kRow, T: tt})
				for l := 0; l < nc; l++ {
					kernels.DtsmqrWS(ws, true, opts.IB, kt, tt, colTile(top, l, j), colTile(kRow, l, j))
				}
			}
		}

		for _, m := range plan.Merges {
			r1, r2 := rs[m.Surv], rs[m.K]
			tt := matrix.New(min(opts.IB, n), n)
			kernels.DttqrtWS(ws, opts.IB, r1, r2, tt)
			f.Ops = append(f.Ops, Op{Kind: OpTtqrt, J: j, I: m.Surv, K: m.K, T: tt, V2: r2})
			for l := 0; l < nc; l++ {
				kernels.DttmqrWS(ws, true, opts.IB, r2, tt, colTile(m.Surv, l, j), colTile(m.K, l, j))
			}
		}

		// The surviving R of the panel becomes the final R(j,j) block:
		// write it into the upper triangle of the diagonal tile (the
		// Householder vectors below it are untouched).
		final := rs[j]
		diag := a.Tile(j, j)
		for jj := 0; jj < n; jj++ {
			for ii := 0; ii <= jj && ii < final.Rows; ii++ {
				diag.Set(ii, jj, final.At(ii, jj))
			}
		}
	}
	return f, nil
}
