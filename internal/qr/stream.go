package qr

import (
	"fmt"

	"pulsarqr/internal/blas"
	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
)

// This file implements the incremental (streaming) TSQR engine behind
// long-lived factorization sessions: rows arrive in blocks, and after each
// appended block the engine re-reduces only the leaf-to-root path of the
// reduction tree — O(log P) tile kernels per append for P appended blocks,
// instead of the O(P) kernels a from-scratch refactorization would fire.
//
// The committed state is a binary-counter spine (exactly the subtree roots
// of a binary reduction tree over the appended leaves, one root per set bit
// of the leaf count): appending leaf P+1 pushes its n×n R and merges equal
// sized subtrees like a carry chain, so the spine never exceeds ⌈log₂ P⌉
// entries and the amortized merge cost per append is O(1). The current
// global R is the fold of the spine — at most popcount(P)−1 further merges,
// none of which disturb the committed state. Every merge is the same
// dttqrt/dttmqr tile kernel pair the batch factorization's binary tree
// fires, so streamed sessions inherit the kernel layer's workspaces and
// packed-panel cache unchanged.

// StreamNode is one committed subtree root of a streaming factorization:
// the R factor (and optionally the ride-along QᵀB rows) of every row block
// folded into it.
type StreamNode struct {
	Blocks int64 // appended row blocks folded into this node
	Rows   int64 // matrix rows folded into this node
	// R is the n×n upper-triangular factor of the node's rows; entries
	// below the diagonal are zero (never reflectors — eliminated factors
	// are discarded on merge).
	R *matrix.Mat
	// QTB holds the significant (top n) rows of Qᵀ·B for the node's
	// ride-along right-hand-side columns; nil when the stream carries none.
	QTB *matrix.Mat
}

// SolveLS returns the least-squares solution x of min‖A·x − b‖₂ over every
// row streamed into the node, solving R·x = (QᵀB)₁..n. It requires the
// stream to carry ride-along right-hand sides and R to be nonsingular.
func (nd *StreamNode) SolveLS() *matrix.Mat {
	if nd.QTB == nil {
		panic("qr: stream carries no ride-along right-hand sides")
	}
	x := nd.QTB.Clone()
	blas.Dtrsm(true, true, false, false, x.Rows, x.Cols, 1, nd.R.Data, nd.R.LD, x.Data, x.LD)
	return x
}

// Streamer is the incremental TSQR engine. LeafReduce is a pure function
// of its inputs and may run concurrently on several goroutines (each with
// its own Workspace) — that is what lets a session pipeline appends over a
// worker pool. Commit and Current mutate or read the spine and must be
// serialized by the caller (a session holds its lock across them).
type Streamer struct {
	n, nrhs int
	opts    Options

	spine  []*StreamNode
	blocks int64
	rows   int64

	// Hook, when non-nil, observes every tile-kernel firing with its trace
	// class ("tsqrt", "tsmqr", "ttqrt", "ttmqr"). It may be called from
	// concurrent LeafReduce goroutines and must be safe for concurrent use.
	Hook func(class string)

	scratchV *matrix.Mat // merge victim copy (Current must not destroy the spine)
	scratchQ *matrix.Mat
}

// NewStreamer returns an empty streaming factorization over n columns and
// nrhs ride-along right-hand-side columns (0 for R-only streams).
func NewStreamer(n, nrhs int, opts Options) (*Streamer, error) {
	if n < 1 {
		return nil, fmt.Errorf("qr: stream needs at least one column, got %d", n)
	}
	if nrhs < 0 {
		return nil, fmt.Errorf("qr: negative rhs count %d", nrhs)
	}
	return &Streamer{n: n, nrhs: nrhs, opts: opts.normalize()}, nil
}

// RestoreStreamer rebuilds a streamer from a checkpointed spine, taking
// ownership of the nodes. The spine must be ordered oldest first with
// strictly decreasing block counts (the binary-counter invariant).
func RestoreStreamer(n, nrhs int, opts Options, spine []*StreamNode) (*Streamer, error) {
	s, err := NewStreamer(n, nrhs, opts)
	if err != nil {
		return nil, err
	}
	for i, nd := range spine {
		if nd.Blocks < 1 || nd.Rows < 1 {
			return nil, fmt.Errorf("qr: spine node %d folds %d blocks / %d rows", i, nd.Blocks, nd.Rows)
		}
		if i > 0 && nd.Blocks >= spine[i-1].Blocks {
			return nil, fmt.Errorf("qr: spine block counts not strictly decreasing at node %d", i)
		}
		if nd.R == nil || nd.R.Rows != n || nd.R.Cols != n {
			return nil, fmt.Errorf("qr: spine node %d R is not %dx%d", i, n, n)
		}
		if nrhs == 0 && nd.QTB != nil {
			return nil, fmt.Errorf("qr: spine node %d carries rhs on an R-only stream", i)
		}
		if nrhs > 0 && (nd.QTB == nil || nd.QTB.Rows != n || nd.QTB.Cols != nrhs) {
			return nil, fmt.Errorf("qr: spine node %d QTB is not %dx%d", i, n, nrhs)
		}
		s.blocks += nd.Blocks
		s.rows += nd.Rows
	}
	s.spine = append(s.spine, spine...)
	return s, nil
}

// N returns the stream's column count.
func (s *Streamer) N() int { return s.n }

// NRHS returns the stream's ride-along right-hand-side column count.
func (s *Streamer) NRHS() int { return s.nrhs }

// Opts returns the stream's normalized algorithm configuration.
func (s *Streamer) Opts() Options { return s.opts }

// Blocks returns the number of row blocks committed so far.
func (s *Streamer) Blocks() int64 { return s.blocks }

// Rows returns the number of matrix rows committed so far.
func (s *Streamer) Rows() int64 { return s.rows }

// SpineDepth returns the number of committed subtree roots (= popcount of
// Blocks); it never exceeds ⌈log₂ Blocks⌉+1.
func (s *Streamer) SpineDepth() int { return len(s.spine) }

// Spine exposes the committed subtree roots, oldest first, for checkpoint
// serialization. The caller must not mutate the nodes and must hold the
// same lock that serializes Commit.
func (s *Streamer) Spine() []*StreamNode { return s.spine }

func (s *Streamer) hook(class string) {
	if s.Hook != nil {
		s.Hook(class)
	}
}

// tMat shapes the workspace's auxiliary slot 0 as the block-reflector T
// factor for one kernel call.
func tScratch(ws *kernels.Workspace, ib, n int) *matrix.Mat {
	return ws.Aux(0, min(ib, n), n)
}

// LeafReduce factorizes one appended row block into a leaf node: the block's
// tile chunks are folded into a fresh n×n R by a dtsqrt chain (the flat-tree
// leaf reduction), and rhs — required exactly when the stream carries
// right-hand sides — is dragged along into the leaf's QᵀB by the paired
// dtsmqr updates. The block and rhs contents are consumed (overwritten with
// reflectors and rotated rows).
//
// LeafReduce does not touch the spine: concurrent calls on distinct
// workspaces are safe, which is what lets a session overlap the leaf work of
// append k+1 with the commit of append k. Results are deterministic in the
// inputs alone, so pipelined and sequential executions are bitwise equal.
func (s *Streamer) LeafReduce(ws *kernels.Workspace, block, rhs *matrix.Mat) (*StreamNode, error) {
	if block == nil || block.Rows < 1 {
		return nil, fmt.Errorf("qr: empty append block")
	}
	if block.Cols != s.n {
		return nil, fmt.Errorf("qr: append block has %d cols, stream has %d", block.Cols, s.n)
	}
	if s.nrhs == 0 && rhs != nil {
		return nil, fmt.Errorf("qr: rhs passed to an R-only stream")
	}
	if s.nrhs > 0 && (rhs == nil || rhs.Rows != block.Rows || rhs.Cols != s.nrhs) {
		return nil, fmt.Errorf("qr: append rhs must be %dx%d", block.Rows, s.nrhs)
	}
	if ws == nil {
		ws = kernels.BorrowWorkspace()
		defer kernels.ReturnWorkspace(ws)
	}
	nd := &StreamNode{Blocks: 1, Rows: int64(block.Rows), R: matrix.New(s.n, s.n)}
	if s.nrhs > 0 {
		nd.QTB = matrix.New(s.n, s.nrhs)
	}
	nb, ib := s.opts.NB, s.opts.IB
	for r := 0; r < block.Rows; r += nb {
		cr := min(nb, block.Rows-r)
		chunk := block.View(r, 0, cr, s.n)
		t := tScratch(ws, ib, s.n)
		kernels.DtsqrtWS(ws, ib, nd.R, chunk, t)
		s.hook("tsqrt")
		if s.nrhs > 0 {
			kernels.DtsmqrWS(ws, true, ib, chunk, t, nd.QTB, rhs.View(r, 0, cr, s.nrhs))
			s.hook("tsmqr")
		}
	}
	return nd, nil
}

// merge folds victim into surv (the older, larger subtree) with one
// dttqrt/dttmqr pair. victim's matrices are destroyed.
func (s *Streamer) merge(ws *kernels.Workspace, surv, victim *StreamNode) {
	t := tScratch(ws, s.opts.IB, s.n)
	kernels.DttqrtWS(ws, s.opts.IB, surv.R, victim.R, t)
	s.hook("ttqrt")
	if s.nrhs > 0 {
		kernels.DttmqrWS(ws, true, s.opts.IB, victim.R, t, surv.QTB, victim.QTB)
		s.hook("ttmqr")
	}
	surv.Blocks += victim.Blocks
	surv.Rows += victim.Rows
}

// Commit appends a reduced leaf to the spine and runs the carry chain:
// while the two newest subtrees are equal sized they merge, exactly the
// leaf-to-root path of the binary reduction tree. Takes ownership of nd.
// Callers must serialize Commit with Current and Spine.
func (s *Streamer) Commit(ws *kernels.Workspace, nd *StreamNode) {
	if ws == nil {
		ws = kernels.BorrowWorkspace()
		defer kernels.ReturnWorkspace(ws)
	}
	s.spine = append(s.spine, nd)
	s.blocks += nd.Blocks
	s.rows += nd.Rows
	for len(s.spine) >= 2 && s.spine[len(s.spine)-1].Blocks == s.spine[len(s.spine)-2].Blocks {
		s.merge(ws, s.spine[len(s.spine)-2], s.spine[len(s.spine)-1])
		s.spine[len(s.spine)-1] = nil
		s.spine = s.spine[:len(s.spine)-1]
	}
}

// Current folds the spine into the global factorization state — the R (and
// QᵀB) of every row committed so far — without disturbing the committed
// nodes: merge victims are copied into streamer-owned scratch first. At most
// SpineDepth()−1 merges fire. dst's buffers are reused when correctly
// shaped; pass nil to allocate fresh. The result aliases dst, never the
// spine, so callers may hold it across later appends.
func (s *Streamer) Current(ws *kernels.Workspace, dst *StreamNode) *StreamNode {
	if ws == nil {
		ws = kernels.BorrowWorkspace()
		defer kernels.ReturnWorkspace(ws)
	}
	if dst == nil {
		dst = &StreamNode{}
	}
	dst.R = ensureShape(dst.R, s.n, s.n)
	if s.nrhs > 0 {
		dst.QTB = ensureShape(dst.QTB, s.n, s.nrhs)
	} else {
		dst.QTB = nil
	}
	dst.Blocks, dst.Rows = s.blocks, s.rows
	if len(s.spine) == 0 {
		dst.R.Zero()
		if dst.QTB != nil {
			dst.QTB.Zero()
		}
		return dst
	}
	dst.R.CopyFrom(s.spine[0].R)
	if s.nrhs > 0 {
		dst.QTB.CopyFrom(s.spine[0].QTB)
	}
	for _, nd := range s.spine[1:] {
		s.scratchV = ensureShape(s.scratchV, s.n, s.n)
		s.scratchV.CopyFrom(nd.R)
		t := tScratch(ws, s.opts.IB, s.n)
		kernels.DttqrtWS(ws, s.opts.IB, dst.R, s.scratchV, t)
		s.hook("ttqrt")
		if s.nrhs > 0 {
			s.scratchQ = ensureShape(s.scratchQ, s.n, s.nrhs)
			s.scratchQ.CopyFrom(nd.QTB)
			kernels.DttmqrWS(ws, true, s.opts.IB, s.scratchV, t, dst.QTB, s.scratchQ)
			s.hook("ttmqr")
		}
	}
	return dst
}

// ensureShape returns m when it is exactly rows×cols, a fresh matrix
// otherwise.
func ensureShape(m *matrix.Mat, rows, cols int) *matrix.Mat {
	if m != nil && m.Rows == rows && m.Cols == cols {
		return m
	}
	return matrix.New(rows, cols)
}
