package qr

import (
	"math/rand"
	"testing"

	"pulsarqr/internal/matrix"
)

func TestQuarkMatchesSequentialAllTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, o := range allTreeOpts() {
		d := matrix.NewRand(41, 13, rng)
		b := matrix.NewRand(41, 3, rng)
		seq, err := Factorize(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB), o)
		if err != nil {
			t.Fatal(err)
		}
		qk, err := FactorizeQuark(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB), o, 4)
		if err != nil {
			t.Fatal(err)
		}
		assertFactorizationsEqual(t, seq, qk)
	}
}

func TestQuarkLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 3}
	m, n := 48, 12
	d := matrix.NewRand(m, n, rng)
	xTrue := matrix.NewRand(n, 1, rng)
	bm := d.Mul(xTrue)
	f, err := FactorizeQuark(matrix.FromDense(d, o.NB), matrix.FromDense(bm, o.NB), o, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := f.SolveFromQTB()
	if diff := matrix.MaxAbsDiff(x, xTrue); diff > 1e-10 {
		t.Fatalf("quark least squares off by %v", diff)
	}
}

func TestQuarkWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	o := Options{NB: 8, IB: 4, Tree: BinaryTree}
	d := matrix.NewRand(32, 16, rng)
	seq, err := Factorize(matrix.FromDense(d, o.NB), nil, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		qk, err := FactorizeQuark(matrix.FromDense(d, o.NB), nil, o, w)
		if err != nil {
			t.Fatal(err)
		}
		assertFactorizationsEqual(t, seq, qk)
	}
}
