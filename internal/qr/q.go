package qr

import "pulsarqr/internal/matrix"

// Q assembles the explicit m×n "thin" orthogonal factor (the first n
// columns of the full Q), by applying the stored transformations to the
// identity. It is an O(m·n²) operation intended for verification and for
// small systems; production code should use ApplyQ/ApplyQT, which keep Q
// implicit.
func (f *Factorization) Q() *matrix.Mat {
	e := matrix.New(f.M, f.N)
	for i := 0; i < f.N; i++ {
		e.Set(i, i, 1)
	}
	t := matrix.FromDense(e, f.Opts.NB)
	f.ApplyQ(t)
	return t.ToDense()
}

// QFull assembles the explicit m×m orthogonal factor. O(m²·n) work and
// O(m²) memory; verification only.
func (f *Factorization) QFull() *matrix.Mat {
	t := matrix.FromDense(matrix.Identity(f.M), f.Opts.NB)
	f.ApplyQ(t)
	return t.ToDense()
}
