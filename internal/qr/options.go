// Package qr implements the paper's contribution: a tile QR factorization
// of a tall-and-skinny matrix whose panels are reduced by a hierarchical
// tree — flat-trees over domains of h tiles followed by a binary tree over
// the domain tops — executed either sequentially (the reference) or as a
// 3D Virtual Systolic Array on the PULSAR runtime.
package qr

import "fmt"

// TreeKind selects the panel reduction tree.
type TreeKind int

const (
	// HierarchicalTree is a binary tree on top of flat-trees: rows are
	// grouped into domains of H tiles, each domain is reduced by a
	// flat-tree, and the domain tops are combined by a binary tree. This
	// is the configuration the paper advocates for tall-skinny matrices.
	HierarchicalTree TreeKind = iota
	// FlatTree reduces the whole panel with a single flat-tree (the
	// "domino" configuration of the authors' previous work): best data
	// locality, least parallelism.
	FlatTree
	// BinaryTree reduces the panel purely pairwise: most parallelism,
	// least locality, and it pays the lower kernel efficiency of the
	// triangle-triangle operations.
	BinaryTree
)

func (k TreeKind) String() string {
	switch k {
	case FlatTree:
		return "flat"
	case BinaryTree:
		return "binary"
	default:
		return "hierarchical"
	}
}

// ParseTree maps a wire-format tree name onto its TreeKind. The empty
// string means "the default" (hierarchical), matching the service's JobSpec
// convention.
func ParseTree(s string) (TreeKind, error) {
	switch s {
	case "", "hierarchical":
		return HierarchicalTree, nil
	case "flat":
		return FlatTree, nil
	case "binary":
		return BinaryTree, nil
	default:
		return HierarchicalTree, fmt.Errorf("qr: unknown tree %q", s)
	}
}

// InterTree selects the second-level reduction combining the domain tops
// of a hierarchical panel. The paper fixes this to a binary tree ("instead
// of enumerating and subsequently testing all possible tree variants ...
// we focus on a more generic tree, i.e., binary-tree on top of
// flat-trees"); the hierarchical-QR work it builds on (Dongarra et al.,
// IPDPS'12) enumerates further variants, of which the flat chain is
// implemented here as an ablation.
type InterTree int

const (
	// BinaryInter merges domain tops pairwise, level by level: depth
	// ⌈log₂ d⌉, maximal parallelism between merges. The paper's choice.
	BinaryInter InterTree = iota
	// FlatInter folds every domain top into the panel top in sequence:
	// depth d−1, no merge parallelism, but each merge reuses the same
	// survivor (locality). Useful to show why the binary second level
	// matters at scale.
	FlatInter
)

func (t InterTree) String() string {
	if t == FlatInter {
		return "flat-inter"
	}
	return "binary-inter"
}

// BoundaryPolicy selects how domain boundaries move between consecutive
// panels (paper Fig. 6).
type BoundaryPolicy int

const (
	// ShiftedBoundary starts the domain partition at the current panel
	// row, so the boundary shifts by one tile per panel. Consecutive
	// flat-tree reductions overlap much better (paper Fig. 7b).
	ShiftedBoundary BoundaryPolicy = iota
	// FixedBoundary aligns domains to absolute row multiples of H for the
	// whole factorization (paper Fig. 7a); kept for the ablation study.
	FixedBoundary
)

func (b BoundaryPolicy) String() string {
	if b == FixedBoundary {
		return "fixed"
	}
	return "shifted"
}

// Options parameterizes a factorization.
type Options struct {
	// NB is the tile size (paper: 192 or 240).
	NB int
	// IB is the inner blocking of the kernels (paper: 48).
	IB int
	// Tree selects the panel reduction tree.
	Tree TreeKind
	// H is the number of tiles per flat-tree domain for the hierarchical
	// tree (paper: 6 or 12). Ignored for flat (whole panel) and binary
	// (1) trees.
	H int
	// Boundary selects shifted (default) or fixed domain boundaries.
	Boundary BoundaryPolicy
	// Inter selects the second-level tree over domain tops
	// (hierarchical tree only); the default is the paper's binary tree.
	Inter InterTree
}

// DefaultOptions mirrors the paper's best-performing configuration scaled
// to laptop-sized tiles.
func DefaultOptions() Options {
	return Options{NB: 64, IB: 16, Tree: HierarchicalTree, H: 4, Boundary: ShiftedBoundary}
}

// normalize validates and fills defaults.
func (o Options) normalize() Options {
	if o.NB <= 0 {
		o.NB = 64
	}
	if o.IB <= 0 || o.IB > o.NB {
		o.IB = min(16, o.NB)
	}
	if o.H <= 0 {
		o.H = 4
	}
	return o
}

// domainSize returns the effective flat-tree domain size for mt tile rows.
func (o Options) domainSize(mt int) int {
	switch o.Tree {
	case FlatTree:
		return mt // one domain spans everything
	case BinaryTree:
		return 1
	default:
		return o.H
	}
}

func (o Options) String() string {
	return fmt.Sprintf("tree=%v nb=%d ib=%d h=%d boundary=%v", o.Tree, o.NB, o.IB, o.H, o.Boundary)
}
