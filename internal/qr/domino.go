package qr

import (
	"fmt"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/tuple"
)

// Domino QR: the authors' first VSA design (their 2013 IPDPS paper, shown
// as example code in Fig. 9 of this one) — a 2D array with one VDP per
// tile and a flat-tree panel reduction. Each VDP fires once per panel step
// it participates in (its counter = min(i, j, nt−1)+1), popping the
// traveling tile from above and the (V, T) transformation from the left,
// and pushing the updated traveler down and the transformation right — the
// paper's exact three-input/three-output channel protocol:
//
//	in  0: A from (i−1, j)    out 0: A to (i+1, j)
//	in  1: V from (i, j−1)    out 1: V to (i, j+1)
//	in  2: T from (i, j−1)    out 2: T to (i, j+1)
//
// A fourth output gathers factored tiles for the driver (result
// collection, not part of the systolic flow). The final R rows emerge from
// the bottom of each column, one per panel step, like falling dominoes.
//
// A VDP's last firing may need none of its inputs (the diagonal dgeqrt) or
// only a subset (the dormqr that turns the local tile into the traveler);
// since the firing rule demands a packet in every *active* input channel,
// each VDP disables the channels its final firing will not read at the end
// of its penultimate firing — the channel-deactivation mechanism of §IV-A.
//
// The paper reports that the 3D array's flat-tree configuration performs
// equivalently to this design (§VI); the tests verify the two produce
// elementwise-identical factorizations and the harness compares their
// runtime cost.

// dominoLocal is a domino VDP's persistent state.
type dominoLocal struct {
	i, j  int // tile coordinates; j in global column space (rhs included)
	ib    int
	steps int // total firings
	step  int // current panel step k
	tile  *matrix.Mat
	mt    int
	nt    int // matrix tile columns (excluding rhs)
	ncols int // total columns including rhs
}

// FactorizeDomino computes the flat-tree (domino) QR on the 2D virtual
// systolic array. opts.Tree is ignored: the domino design is inherently
// flat-tree. Results are elementwise identical to Factorize with FlatTree.
func FactorizeDomino(a *matrix.Tiled, b *matrix.Tiled, opts Options, rc RunConfig) (*Factorization, error) {
	opts = opts.normalize()
	opts.Tree = FlatTree
	rc = rc.normalize()
	if a.M < a.N {
		return nil, fmt.Errorf("qr: matrix is %dx%d; tall-skinny factorization requires m >= n", a.M, a.N)
	}
	if a.NB != opts.NB {
		return nil, fmt.Errorf("qr: matrix tiled with nb=%d but options say nb=%d", a.NB, opts.NB)
	}
	if b != nil && (b.M != a.M || b.NB != a.NB) {
		return nil, fmt.Errorf("qr: rhs is %d rows tile %d; matrix is %d rows tile %d", b.M, b.NB, a.M, a.NB)
	}
	mt, nt := a.MT, a.NT
	bnt := 0
	if b != nil {
		bnt = b.NT
	}
	ncols := nt + bnt
	nbBytes := 8*opts.NB*opts.NB + 64

	s := pulsar.New(pulsar.Config{
		Nodes:           rc.Nodes,
		ThreadsPerNode:  rc.Threads,
		Scheduling:      rc.Scheduling,
		FireHook:        rc.FireHook,
		DeadlockTimeout: rc.DeadlockTimeout,
		Map:             dominoMapping(mt, rc),
	})

	steps := func(i, j int) int { return min(i, j, nt-1) + 1 }
	class := func(i, j int) string {
		if j < nt && j <= i {
			return ClassPanel
		}
		return ClassUpdate
	}

	// The 2D array of VDPs (Fig. 9's double loop).
	for i := 0; i < mt; i++ {
		for j := 0; j < ncols; j++ {
			var tl *matrix.Mat
			if j < nt {
				tl = a.Tile(i, j)
			} else {
				tl = b.Tile(i, j-nt)
			}
			loc := &dominoLocal{i: i, j: j, ib: opts.IB, steps: steps(i, j),
				tile: tl, mt: mt, nt: nt, ncols: ncols}
			v := s.NewVDP(tuple.New2(i, j), loc.steps, dominoFn, class(i, j), 3, 4)
			v.SetLocal(loc)
		}
	}
	// Channels: A down each column, V and T right along each row.
	for i := 0; i < mt; i++ {
		for j := 0; j < ncols; j++ {
			if i+1 < mt {
				s.Connect(tuple.New2(i, j), 0, tuple.New2(i+1, j), 0, nbBytes, false)
			} else {
				s.Output(tuple.New2(i, j), 0, nbBytes) // final R / QᵀB rows
			}
			if j+1 < ncols {
				s.Connect(tuple.New2(i, j), 1, tuple.New2(i, j+1), 1, nbBytes, false)
				s.Connect(tuple.New2(i, j), 2, tuple.New2(i, j+1), 2, nbBytes/2, false)
			}
			s.Output(tuple.New2(i, j), 3, nbBytes) // factored-tile gather
		}
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	f, err := assembleDomino(s, a, b, opts)
	if err != nil {
		return nil, err
	}
	msgs, bytes := s.NetworkStats()
	f.Stats = RunStats{
		Firings: s.Fired(), Messages: msgs, Bytes: bytes,
		VDPs: s.VDPCount(), Channels: s.ChannelCount(),
	}
	return f, nil
}

// dominoMapping distributes tile rows to nodes in contiguous blocks and
// threads cyclically by (row + column), like the 3D array.
func dominoMapping(mt int, rc RunConfig) pulsar.Mapping {
	rowsPerNode := (mt + rc.Nodes - 1) / rc.Nodes
	return func(t tuple.Tuple) (int, int) {
		i, j := t.At(0), t.At(1)
		n := i / rowsPerNode
		if n >= rc.Nodes {
			n = rc.Nodes - 1
		}
		return n, (i + j) % rc.Threads
	}
}

// dominoFn is the cycle of every domino VDP: the roles of Fig. 9's
// vdp_factor and vdp_update, selected by the current step.
func dominoFn(v *pulsar.VDP) {
	st := v.Local().(*dominoLocal)
	k := st.step
	st.step++
	i, j := st.i, st.j
	ib := st.ib
	forward := j+1 < st.ncols

	switch {
	case j == k && i == k:
		// Diagonal at its own step: dgeqrt. The local tile keeps the
		// reflectors; the extracted R becomes the traveler.
		n := min(st.tile.Cols, st.tile.Rows)
		tg := matrix.New(min(ib, n), n)
		kernels.Dgeqrt(ib, st.tile, tg)
		if forward {
			v.Push(1, pulsar.NewPacket(st.tile))
			v.Push(2, pulsar.NewPacket(tg))
		}
		v.Push(0, pulsar.NewPacket(extractR(st.tile, st.tile.Cols)))
		v.Push(3, pulsar.NewPacket(&collectMsg{Kind: OpGeqrt, J: j, I: i, K: -1, Tile: st.tile, T: tg}))

	case j == k && i > k:
		// Panel column below the diagonal: dtsqrt against the traveling R.
		r := v.Pop(0).Tile()
		n := r.Cols
		tt := matrix.New(min(ib, n), n)
		kernels.Dtsqrt(ib, r, st.tile, tt)
		if forward {
			v.Push(1, pulsar.NewPacket(st.tile))
			v.Push(2, pulsar.NewPacket(tt))
		}
		v.Push(0, pulsar.NewPacket(r))
		v.Push(3, pulsar.NewPacket(&collectMsg{Kind: OpTsqrt, J: j, I: k, K: i, Tile: st.tile, T: tt}))

	case j > k && i == k:
		// Top row of the step in a trailing column: dormqr; the local
		// tile becomes the traveler and leaves.
		vp, tp := v.Pop(1), v.Pop(2)
		if forward {
			v.Push(1, vp) // by-pass before applying (§V-C)
			v.Push(2, tp)
		}
		kernels.Dormqr(true, ib, vp.Tile(), tp.Tile(), st.tile)
		v.Push(0, pulsar.NewPacket(st.tile))
		st.tile = nil

	default: // j > k && i > k
		// Trailing pair update: dtsmqr on (traveler, local).
		vp, tp := v.Pop(1), v.Pop(2)
		if forward {
			v.Push(1, vp)
			v.Push(2, tp)
		}
		b1 := v.Pop(0).Tile()
		kernels.Dtsmqr(true, ib, vp.Tile(), tp.Tile(), b1, st.tile)
		v.Push(0, pulsar.NewPacket(b1))
	}

	// Deactivate the channels the final firing will not read (the
	// deactivation mechanism of §IV-A): the diagonal's dgeqrt reads
	// nothing; a dtsqrt reads only the traveler; a final dormqr reads only
	// the transformation.
	if st.step == st.steps-1 {
		lastK := st.steps - 1
		switch {
		case j < st.nt && j <= i && j == lastK: // panel firing next
			if j >= 1 {
				v.DisableInput(1)
				v.DisableInput(2)
			}
			if i == j && i >= 1 {
				v.DisableInput(0)
			}
		case i == lastK && j > lastK && i >= 1: // dormqr firing next
			v.DisableInput(0)
		}
	}

	// Trailing rhs rows below the last panel keep their (fully updated)
	// local tile; surrender it on the final firing.
	if st.step == st.steps && st.tile != nil && j >= st.nt && i >= st.nt {
		v.Push(3, pulsar.NewPacket(&collectMsg{Kind: -1, J: j, I: i, K: -1, Tile: st.tile}))
	}
}

// assembleDomino gathers the collectors into a Factorization.
func assembleDomino(s *pulsar.VSA, a, b *matrix.Tiled, opts Options) (*Factorization, error) {
	mt, nt := a.MT, a.NT
	bnt := 0
	if b != nil {
		bnt = b.NT
	}
	out := matrix.NewTiled(a.M, a.N, a.NB)
	var qtb *matrix.Tiled
	if b != nil {
		qtb = matrix.NewTiled(b.M, b.N, b.NB)
	}
	f := &Factorization{M: a.M, N: a.N, Opts: opts, A: out, QTB: qtb}

	// Panel-column reflector tiles and the op log, in flat-tree order.
	for j := 0; j < nt; j++ {
		for i := j; i < mt; i++ {
			var cm *collectMsg
			for _, p := range s.Collected(tuple.New2(i, j), 3) {
				c := p.Data.(*collectMsg)
				if c.Kind == OpGeqrt || c.Kind == OpTsqrt {
					cm = c
				}
			}
			if cm == nil {
				return nil, fmt.Errorf("qr: domino: missing reflector tile (%d,%d)", i, j)
			}
			out.SetTile(i, j, cm.Tile)
			f.Ops = append(f.Ops, Op{Kind: cm.Kind, J: j, I: cm.I, K: cm.K, T: cm.T})
		}
	}

	// Bottom-row outputs: column j emits, in step order, the final R(k, j)
	// (or (QᵀB)(k, ·)) travelers for k = 0..steps-1.
	for j := 0; j < nt+bnt; j++ {
		ps := s.Collected(tuple.New2(mt-1, j), 0)
		for k, p := range ps {
			tl := p.Tile()
			switch {
			case j < nt && k == j:
				// Final R(j,j): write into the diagonal tile's upper part.
				diag := out.Tile(j, j)
				for jj := 0; jj < tl.Cols; jj++ {
					for ii := 0; ii <= jj && ii < tl.Rows; ii++ {
						diag.Set(ii, jj, tl.At(ii, jj))
					}
				}
			case j < nt:
				out.SetTile(k, j, tl)
			default:
				qtb.SetTile(k, j-nt, tl)
			}
		}
	}

	// RHS rows below the last panel surrendered their local tiles.
	if b != nil {
		for r := 0; r < bnt; r++ {
			for i := nt; i < mt; i++ {
				var got *matrix.Mat
				for _, p := range s.Collected(tuple.New2(i, nt+r), 3) {
					if c := p.Data.(*collectMsg); c.Kind == -1 {
						got = c.Tile
					}
				}
				if got == nil {
					return nil, fmt.Errorf("qr: domino: rhs tile (%d,%d) not collected", i, r)
				}
				qtb.SetTile(i, r, got)
			}
		}
	}
	return f, nil
}
