package qr

// End-to-end tracing over the distributed path: every rank records its own
// shard during FactorizeVSADist, the shards are gathered at rank 0 over the
// same endpoint, and the merged timeline must carry aligned barriers, all
// four event classes, and a non-trivial critical path.

import (
	"context"
	"sync"
	"testing"
	"time"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/trace"
	"pulsarqr/internal/transport"
)

func TestDistTraceGather(t *testing.T) {
	d, b, o := distInputs()
	const ranks = 2
	lw := transport.NewLocal(ranks)
	var (
		wg     sync.WaitGroup
		errs   [ranks]error
		shards []trace.Shard
	)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := lw.Endpoint(r)
			rec := trace.NewRecorder()
			rc := RunConfig{
				Threads:  2,
				FireHook: rec.Hook(),
				WaitHook: rec.WaitHook(),
				CommHook: rec.CommHook(),
			}
			if _, errs[r] = FactorizeVSADist(
				matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB),
				o, rc, ep); errs[r] != nil {
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			var err error
			got, err := trace.GatherShards(ctx, ep, rec.Shard(r))
			if err != nil {
				errs[r] = err
				return
			}
			if r == 0 {
				shards = got
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}

	if len(shards) != ranks {
		t.Fatalf("gathered %d shards, want %d", len(shards), ranks)
	}
	for r, s := range shards {
		if s.Rank != r {
			t.Fatalf("shard %d has rank %d", r, s.Rank)
		}
		if len(s.Events) == 0 {
			t.Fatalf("rank %d shard is empty", r)
		}
		if s.Drops != 0 {
			t.Fatalf("rank %d dropped %d events at default capacity", r, s.Drops)
		}
	}

	events, drops := trace.Merge(shards)
	if drops != 0 {
		t.Fatalf("merge reports %d drops", drops)
	}
	// Each rank closes with a barrier and Merge anchors the clocks on it:
	// the ends must coincide exactly.
	var barEnds []time.Duration
	classes := map[string]bool{}
	for _, e := range events {
		classes[e.Class] = true
		if e.Kind == trace.KindBarrier {
			barEnds = append(barEnds, e.End)
		}
	}
	if len(barEnds) != ranks {
		t.Fatalf("%d barrier events, want %d", len(barEnds), ranks)
	}
	if barEnds[0] != barEnds[1] {
		t.Fatalf("barriers not aligned: %v vs %v", barEnds[0], barEnds[1])
	}
	for _, c := range []string{trace.ClassWait, trace.ClassSend, trace.ClassRecv, trace.ClassBarrier} {
		if !classes[c] {
			t.Fatalf("merged trace has no %q events (classes: %v)", c, classes)
		}
	}

	tl := trace.Build(events)
	cp := tl.CriticalPath()
	if len(cp.Events) == 0 || cp.Work <= 0 {
		t.Fatalf("degenerate critical path: %d events, work %v", len(cp.Events), cp.Work)
	}
	if cp.Work > tl.Makespan {
		t.Fatalf("critical path work %v exceeds makespan %v", cp.Work, tl.Makespan)
	}
}
