package qr

import (
	"math/rand"
	"testing"

	"pulsarqr/internal/matrix"
)

func TestRunStatsSingleNodeZeroCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	d := matrix.NewRand(48, 16, rng)
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 3}
	f, err := FactorizeVSA(matrix.FromDense(d, o.NB), nil, o, RunConfig{Nodes: 1, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats.Messages != 0 || f.Stats.Bytes != 0 {
		t.Fatalf("single-node run should be zero-copy, got %d msgs %d bytes",
			f.Stats.Messages, f.Stats.Bytes)
	}
	if f.Stats.Firings == 0 || f.Stats.VDPs == 0 || f.Stats.Channels == 0 {
		t.Fatalf("stats missing: %+v", f.Stats)
	}
	// Every single-fire VDP fires exactly once.
	if f.Stats.Firings != int64(f.Stats.VDPs) {
		t.Fatalf("firings %d != VDPs %d in the 3D array", f.Stats.Firings, f.Stats.VDPs)
	}
}

func TestRunStatsMultiNodeTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	d := matrix.NewRand(64, 16, rng)
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 2}
	f2, err := FactorizeVSA(matrix.FromDense(d, o.NB), nil, o, RunConfig{Nodes: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f2.Stats.Messages == 0 || f2.Stats.Bytes == 0 {
		t.Fatal("multi-node run must move messages")
	}
	f4, err := FactorizeVSA(matrix.FromDense(d, o.NB), nil, o, RunConfig{Nodes: 4, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f4.Stats.Messages <= f2.Stats.Messages {
		t.Fatalf("more nodes should cross more boundaries: %d vs %d msgs",
			f4.Stats.Messages, f2.Stats.Messages)
	}
}

func TestRunStatsDomino(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	d := matrix.NewRand(40, 8, rng)
	o := Options{NB: 8, IB: 4}
	f, err := FactorizeDomino(matrix.FromDense(d, o.NB), nil, o, RunConfig{Nodes: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats.Firings == 0 || f.Stats.Messages == 0 {
		t.Fatalf("domino stats missing: %+v", f.Stats)
	}
}
