package qr

import (
	"math/rand"
	"sync"
	"testing"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
)

func TestDominoMatchesFlatSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, sh := range [][2]int{{41, 13}, {24, 8}, {8, 8}, {30, 6}, {64, 16}} {
		d := matrix.NewRand(sh[0], sh[1], rng)
		b := matrix.NewRand(sh[0], 3, rng)
		o := Options{NB: 8, IB: 4, Tree: FlatTree}
		seq, err := Factorize(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB), o)
		if err != nil {
			t.Fatal(err)
		}
		dom, err := FactorizeDomino(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB), o,
			RunConfig{Nodes: 1, Threads: 3})
		if err != nil {
			t.Fatal(err)
		}
		assertFactorizationsEqual(t, seq, dom)
	}
}

func TestDominoMultiNode(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	d := matrix.NewRand(72, 16, rng)
	o := Options{NB: 8, IB: 4, Tree: FlatTree}
	seq, err := Factorize(matrix.FromDense(d, o.NB), nil, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{2, 4} {
		dom, err := FactorizeDomino(matrix.FromDense(d, o.NB), nil, o,
			RunConfig{Nodes: nodes, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		assertFactorizationsEqual(t, seq, dom)
	}
}

func TestDominoLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	o := Options{NB: 8, IB: 4}
	m, n := 48, 10
	d := matrix.NewRand(m, n, rng)
	xTrue := matrix.NewRand(n, 2, rng)
	bm := d.Mul(xTrue)
	f, err := FactorizeDomino(matrix.FromDense(d, o.NB), matrix.FromDense(bm, o.NB), o,
		RunConfig{Nodes: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := f.SolveFromQTB()
	if diff := matrix.MaxAbsDiff(x, xTrue); diff > 1e-10 {
		t.Fatalf("domino least squares off by %v", diff)
	}
}

func TestDominoSingleColumn(t *testing.T) {
	// nt == 1 exercises the single-firing corner cases.
	rng := rand.New(rand.NewSource(34))
	d := matrix.NewRand(33, 7, rng)
	b := matrix.NewRand(33, 2, rng)
	o := Options{NB: 8, IB: 4}
	seq, err := Factorize(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB),
		Options{NB: 8, IB: 4, Tree: FlatTree})
	if err != nil {
		t.Fatal(err)
	}
	dom, err := FactorizeDomino(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB), o,
		RunConfig{Nodes: 1, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertFactorizationsEqual(t, seq, dom)
}

func TestDominoSquareSingleTile(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	d := matrix.NewRand(6, 6, rng)
	o := Options{NB: 8, IB: 4}
	dom, err := FactorizeDomino(matrix.FromDense(d, o.NB), nil, o, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res := dom.Residual(d); res > 1e-13 {
		t.Fatalf("residual %v", res)
	}
}

func TestDominoFiringCounts(t *testing.T) {
	// Every VDP fires exactly min(i, j, nt-1)+1 times: the total firing
	// count is a closed-form function of the tiling.
	rng := rand.New(rand.NewSource(36))
	d := matrix.NewRand(40, 16, rng) // mt=5, nt=2 at nb=8
	o := Options{NB: 8, IB: 4}
	var mu sync.Mutex
	fires := 0
	rc := RunConfig{Nodes: 1, Threads: 2, FireHook: func(pulsar.FireEvent) {
		mu.Lock()
		fires++
		mu.Unlock()
	}}
	if _, err := FactorizeDomino(matrix.FromDense(d, o.NB), nil, o, rc); err != nil {
		t.Fatal(err)
	}
	mt, nt := 5, 2
	want := 0
	for i := 0; i < mt; i++ {
		for j := 0; j < nt; j++ {
			want += min(i, j, nt-1) + 1
		}
	}
	if fires != want {
		t.Fatalf("fired %d times, want %d", fires, want)
	}
}

func TestDominoRejectsBadShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	o := Options{NB: 8, IB: 4}
	if _, err := FactorizeDomino(matrix.FromDense(matrix.NewRand(5, 9, rng), 8), nil, o, RunConfig{}); err == nil {
		t.Fatal("wide matrix must be rejected")
	}
}
