package qr

import (
	"testing"
	"testing/quick"
)

func opts(tree TreeKind, h int, b BoundaryPolicy) Options {
	return Options{NB: 8, IB: 4, Tree: tree, H: h, Boundary: b}.normalize()
}

func TestPlanFlatSingleDomain(t *testing.T) {
	p := planPanel(0, 7, opts(FlatTree, 3, ShiftedBoundary))
	if len(p.Domains) != 1 || p.Domains[0].Top != 0 || len(p.Domains[0].Rows) != 6 {
		t.Fatalf("flat plan wrong: %+v", p)
	}
	if len(p.Merges) != 0 {
		t.Fatal("flat tree must have no merges")
	}
}

func TestPlanBinaryAllSingletons(t *testing.T) {
	p := planPanel(1, 9, opts(BinaryTree, 3, ShiftedBoundary))
	if len(p.Domains) != 8 {
		t.Fatalf("binary plan has %d domains", len(p.Domains))
	}
	for _, d := range p.Domains {
		if len(d.Rows) != 0 {
			t.Fatal("binary domains must be singletons")
		}
	}
	if len(p.Merges) != 7 {
		t.Fatalf("binary tree over 8 tops needs 7 merges, got %d", len(p.Merges))
	}
}

func TestPlanHierarchicalShifted(t *testing.T) {
	p := planPanel(2, 12, opts(HierarchicalTree, 4, ShiftedBoundary))
	// Rows 2..11 (10 rows) in domains of 4 starting at 2: [2..5],[6..9],[10..11].
	wantTops := []int{2, 6, 10}
	if len(p.Domains) != 3 {
		t.Fatalf("domains: %+v", p.Domains)
	}
	for i, d := range p.Domains {
		if d.Top != wantTops[i] {
			t.Fatalf("domain %d top = %d, want %d", i, d.Top, wantTops[i])
		}
	}
	if len(p.Domains[2].Rows) != 1 {
		t.Fatal("last domain must hold the remaining rows")
	}
}

func TestPlanHierarchicalFixed(t *testing.T) {
	p := planPanel(2, 12, opts(HierarchicalTree, 4, FixedBoundary))
	// Fixed grid boundaries at 0,4,8: panel 2 sees [2..3],[4..7],[8..11].
	wantTops := []int{2, 4, 8}
	if len(p.Domains) != 3 {
		t.Fatalf("domains: %+v", p.Domains)
	}
	for i, d := range p.Domains {
		if d.Top != wantTops[i] {
			t.Fatalf("domain %d top = %d, want %d", i, d.Top, wantTops[i])
		}
	}
	if len(p.Domains[0].Rows) != 1 || len(p.Domains[1].Rows) != 3 {
		t.Fatalf("fixed boundary partial first domain wrong: %+v", p.Domains)
	}
}

func TestPlanShiftMovesBoundaryByOne(t *testing.T) {
	o := opts(HierarchicalTree, 4, ShiftedBoundary)
	p0 := planPanel(0, 16, o)
	p1 := planPanel(1, 16, o)
	if p0.Domains[1].Top != 4 || p1.Domains[1].Top != 5 {
		t.Fatalf("shifted boundaries: %d then %d", p0.Domains[1].Top, p1.Domains[1].Top)
	}
	f0 := planPanel(0, 16, opts(HierarchicalTree, 4, FixedBoundary))
	f1 := planPanel(1, 16, opts(HierarchicalTree, 4, FixedBoundary))
	if f0.Domains[1].Top != 4 || f1.Domains[1].Top != 4 {
		t.Fatal("fixed boundaries must not move")
	}
}

func TestPlanMergeTreeStructure(t *testing.T) {
	p := planPanel(0, 24, opts(HierarchicalTree, 4, ShiftedBoundary))
	// 6 domains: tops 0,4,8,12,16,20. Binary tree:
	// level 0: (0,4) (8,12) (16,20); level 1: (0,8); level 2: (0,16).
	want := []Merge{{0, 4, 0}, {8, 12, 0}, {16, 20, 0}, {0, 8, 1}, {0, 16, 2}}
	if len(p.Merges) != len(want) {
		t.Fatalf("merges: %+v", p.Merges)
	}
	for i, m := range p.Merges {
		if m != want[i] {
			t.Fatalf("merge %d = %+v, want %+v", i, m, want[i])
		}
	}
}

func TestPlanInvariantsProperty(t *testing.T) {
	f := func(mtRaw, jRaw, hRaw uint8, treeRaw, boundRaw uint8) bool {
		mt := int(mtRaw%40) + 1
		j := int(jRaw) % mt
		h := int(hRaw%8) + 1
		tree := TreeKind(treeRaw % 3)
		bound := BoundaryPolicy(boundRaw % 2)
		o := opts(tree, h, bound)
		p := planPanel(j, mt, o)

		// Every row j..mt-1 appears exactly once across domains.
		seen := map[int]bool{}
		for _, d := range p.Domains {
			if seen[d.Top] {
				return false
			}
			seen[d.Top] = true
			prev := d.Top
			for _, r := range d.Rows {
				if seen[r] || r != prev+1 {
					return false
				}
				seen[r] = true
				prev = r
			}
		}
		for r := j; r < mt; r++ {
			if !seen[r] {
				return false
			}
		}
		if len(seen) != mt-j {
			return false
		}
		// First domain top is the panel row.
		if p.Domains[0].Top != j {
			return false
		}
		// The merge tree eliminates every top except j, each exactly once,
		// and each merge's survivor has not been eliminated before it.
		elim := map[int]bool{}
		for _, m := range p.Merges {
			if elim[m.Surv] || elim[m.K] || m.Surv >= m.K {
				return false
			}
			elim[m.K] = true
		}
		if elim[j] || len(elim) != len(p.Domains)-1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelCount(t *testing.T) {
	p := planPanel(0, 8, opts(HierarchicalTree, 4, ShiftedBoundary))
	c := p.Count(3)
	// 2 domains of 4: 2 geqrt, 6 tsqrt, 1 merge.
	if c.Geqrt != 2 || c.Tsqrt != 6 || c.Ttqrt != 1 {
		t.Fatalf("counts: %+v", c)
	}
	if c.Ormqr != 6 || c.Tsmqr != 18 || c.Ttmqr != 3 {
		t.Fatalf("update counts: %+v", c)
	}
}

func TestMergesOfRoles(t *testing.T) {
	p := planPanel(0, 24, opts(HierarchicalTree, 4, ShiftedBoundary))
	r0 := p.mergesOf(0)
	if len(r0) != 3 || !r0[0].surv || !r0[1].surv || !r0[2].surv {
		t.Fatalf("row 0 roles: %+v", r0)
	}
	r8 := p.mergesOf(8)
	// Row 8 survives (8,12) then is eliminated by (0,8).
	if len(r8) != 2 || !r8[0].surv || r8[1].surv {
		t.Fatalf("row 8 roles: %+v", r8)
	}
	r20 := p.mergesOf(20)
	if len(r20) != 1 || r20[0].surv {
		t.Fatalf("row 20 roles: %+v", r20)
	}
}
