package qr

import (
	"fmt"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/quark"
)

// rbox holds a domain's evolving R factor so that tasks submitted before
// the R exists can still name it as a dependency handle.
type rbox struct {
	m *matrix.Mat
}

// FactorizeQuark computes the same factorization as Factorize by
// submitting the kernel calls as tasks to a QUARK-style task-superscalar
// runtime with the given number of workers. The dependency declarations
// reproduce the sequential data flow exactly, so the result is
// elementwise identical to the reference; the execution schedule, however,
// is the centralized dynamic one the paper compares against.
func FactorizeQuark(a *matrix.Tiled, b *matrix.Tiled, opts Options, workers int) (*Factorization, error) {
	opts = opts.normalize()
	if a.M < a.N {
		return nil, fmt.Errorf("qr: matrix is %dx%d; tall-skinny factorization requires m >= n", a.M, a.N)
	}
	if a.NB != opts.NB {
		return nil, fmt.Errorf("qr: matrix tiled with nb=%d but options say nb=%d", a.NB, opts.NB)
	}
	if b != nil && (b.M != a.M || b.NB != a.NB) {
		return nil, fmt.Errorf("qr: rhs is %d rows tile %d; matrix is %d rows tile %d", b.M, b.NB, a.M, a.NB)
	}
	f := &Factorization{M: a.M, N: a.N, Opts: opts, A: a, QTB: b}
	rt := quark.New(workers)
	defer rt.Close()

	colTile := func(i, idx, j int) *matrix.Mat {
		if na := a.NT - j - 1; idx < na {
			return a.Tile(i, j+1+idx)
		} else if b != nil {
			return b.Tile(i, idx-na)
		}
		panic("qr: column index out of range")
	}
	ncols := func(j int) int {
		n := a.NT - j - 1
		if b != nil {
			n += b.NT
		}
		return n
	}
	ib := opts.IB

	// V2 of a merge op is the eliminated rbox's matrix, which only exists
	// after the tasks run; record the association and fill it in after the
	// final Wait.
	type v2fixup struct {
		opIdx int
		rb    *rbox
	}
	var fixups []v2fixup

	for j := 0; j < a.NT && j < a.MT; j++ {
		j := j
		n := a.TileCols(j)
		plan := planPanel(j, a.MT, opts)
		nc := ncols(j)
		rs := map[int]*rbox{}

		for _, d := range plan.Domains {
			top := d.Top
			tile := a.Tile(top, j)
			k := min(tile.Rows, n)
			tg := matrix.New(min(ib, k), k)
			rb := &rbox{}
			rs[top] = rb
			f.Ops = append(f.Ops, Op{Kind: OpGeqrt, J: j, I: top, K: -1, T: tg})
			rt.Submit("geqrt", func() {
				kernels.Dgeqrt(ib, tile, tg)
				rb.m = extractR(tile, n)
			}, quark.W(tile), quark.W(rb))
			for l := 0; l < nc; l++ {
				c := colTile(top, l, j)
				rt.Submit("ormqr", func() {
					kernels.Dormqr(true, ib, tile, tg, c)
				}, quark.R(tile), quark.W(c))
			}
			for _, kRow := range d.Rows {
				kt := a.Tile(kRow, j)
				tt := matrix.New(min(ib, n), n)
				f.Ops = append(f.Ops, Op{Kind: OpTsqrt, J: j, I: top, K: kRow, T: tt})
				rt.Submit("tsqrt", func() {
					kernels.Dtsqrt(ib, rb.m, kt, tt)
				}, quark.W(rb), quark.W(kt))
				for l := 0; l < nc; l++ {
					c1 := colTile(top, l, j)
					c2 := colTile(kRow, l, j)
					rt.Submit("tsmqr", func() {
						kernels.Dtsmqr(true, ib, kt, tt, c1, c2)
					}, quark.R(kt), quark.W(c1), quark.W(c2))
				}
			}
		}
		for _, m := range plan.Merges {
			rbS, rbK := rs[m.Surv], rs[m.K]
			tt := matrix.New(min(ib, n), n)
			fixups = append(fixups, v2fixup{opIdx: len(f.Ops), rb: rbK})
			f.Ops = append(f.Ops, Op{Kind: OpTtqrt, J: j, I: m.Surv, K: m.K, T: tt})
			rt.Submit("ttqrt", func() {
				kernels.Dttqrt(ib, rbS.m, rbK.m, tt)
			}, quark.W(rbS), quark.W(rbK))
			for l := 0; l < nc; l++ {
				c1 := colTile(m.Surv, l, j)
				c2 := colTile(m.K, l, j)
				rt.Submit("ttmqr", func() {
					kernels.Dttmqr(true, ib, rbK.m, tt, c1, c2)
				}, quark.R(rbK), quark.W(c1), quark.W(c2))
			}
		}
		// Write the panel's final R into the diagonal tile.
		rbFinal := rs[j]
		diag := a.Tile(j, j)
		rt.Submit("writeback", func() {
			for jj := 0; jj < n; jj++ {
				for ii := 0; ii <= jj && ii < rbFinal.m.Rows; ii++ {
					diag.Set(ii, jj, rbFinal.m.At(ii, jj))
				}
			}
		}, quark.R(rbFinal), quark.W(diag))
	}
	rt.Wait()
	for _, fx := range fixups {
		f.Ops[fx.opIdx].V2 = fx.rb.m
	}
	return f, nil
}
