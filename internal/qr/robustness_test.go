package qr

import (
	"math"
	"math/rand"
	"testing"

	"pulsarqr/internal/matrix"
)

// hilbertLike builds an ill-conditioned tall matrix: Vandermonde-ish
// columns on clustered nodes. Condition number grows fast with n.
func hilbertLike(m, n int) *matrix.Mat {
	a := matrix.New(m, n)
	for i := 0; i < m; i++ {
		x := float64(i+1) / float64(m+1)
		p := 1.0
		for j := 0; j < n; j++ {
			a.Set(i, j, p)
			p *= x
		}
	}
	return a
}

func TestIllConditionedResidualStaysSmall(t *testing.T) {
	// Householder QR is backward stable: ‖QR − A‖/‖A‖ must stay at machine
	// precision even when A is terribly conditioned.
	d := hilbertLike(60, 12)
	for _, o := range []Options{
		{NB: 8, IB: 4, Tree: HierarchicalTree, H: 3},
		{NB: 8, IB: 4, Tree: BinaryTree},
		{NB: 8, IB: 4, Tree: FlatTree},
	} {
		f := factorDense(t, d, o)
		q := f.Q()
		backward := matrix.MaxAbsDiff(q.Mul(f.R()), d) / d.MaxAbs()
		if backward > 1e-13 {
			t.Fatalf("%v: backward error %v", o, backward)
		}
		ortho := matrix.MaxAbsDiff(q.Transpose().Mul(q), matrix.Identity(12))
		if ortho > 1e-12 {
			t.Fatalf("%v: orthogonality loss %v", o, ortho)
		}
	}
}

func TestZeroMatrix(t *testing.T) {
	d := matrix.New(24, 8)
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 2}
	f := factorDense(t, d, o)
	if f.R().MaxAbs() != 0 {
		t.Fatal("R of the zero matrix must be zero")
	}
	// Q must still be orthogonal (identity reflectors).
	q := f.Q()
	if diff := matrix.MaxAbsDiff(q.Transpose().Mul(q), matrix.Identity(8)); diff > 1e-14 {
		t.Fatalf("zero-matrix Q not orthonormal: %v", diff)
	}
}

func TestIdentityInput(t *testing.T) {
	d := matrix.Identity(16)
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 2}
	f := factorDense(t, d.Clone(), o)
	r := f.R()
	for j := 0; j < 16; j++ {
		for i := 0; i <= j; i++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if diff := math.Abs(math.Abs(r.At(i, j)) - want); diff > 1e-14 {
				t.Fatalf("R(%d,%d) = %v", i, j, r.At(i, j))
			}
		}
	}
}

func TestHugeAndTinyScales(t *testing.T) {
	// Entries at 1e150 and 1e-150: the scaled norms must avoid overflow
	// and underflow.
	rng := rand.New(rand.NewSource(51))
	for _, scale := range []float64{1e150, 1e-150} {
		d := matrix.NewRand(24, 6, rng)
		for j := 0; j < d.Cols; j++ {
			for i := 0; i < d.Rows; i++ {
				d.Set(i, j, d.At(i, j)*scale)
			}
		}
		o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 2}
		f := factorDense(t, d.Clone(), o)
		r := f.R()
		for j := 0; j < r.Cols; j++ {
			for i := 0; i <= j; i++ {
				if math.IsNaN(r.At(i, j)) || math.IsInf(r.At(i, j), 0) {
					t.Fatalf("scale %g: R(%d,%d) = %v", scale, i, j, r.At(i, j))
				}
			}
		}
		q := f.Q()
		if diff := matrix.MaxAbsDiff(q.Transpose().Mul(q), matrix.Identity(6)); diff > 1e-12 {
			t.Fatalf("scale %g: Q not orthonormal: %v", scale, diff)
		}
	}
}

func TestRankDeficientColumns(t *testing.T) {
	// Duplicate columns: QR still completes with a (numerically) singular
	// R; the factorization itself must stay backward stable.
	rng := rand.New(rand.NewSource(52))
	d := matrix.NewRand(30, 9, rng)
	for i := 0; i < 30; i++ {
		d.Set(i, 5, d.At(i, 2)) // column 5 == column 2
	}
	o := Options{NB: 8, IB: 4, Tree: BinaryTree}
	f := factorDense(t, d.Clone(), o)
	q := f.Q()
	if diff := matrix.MaxAbsDiff(q.Mul(f.R()), d); diff > 1e-12 {
		t.Fatalf("rank-deficient backward error %v", diff)
	}
	// R(5,5) must be ~0 (the dependent column adds nothing new).
	if v := math.Abs(f.R().At(5, 5)); v > 1e-12 {
		t.Fatalf("R(5,5) = %v for a dependent column", v)
	}
}

// TestStressMediumHierarchicalMultiNode is a heavier end-to-end exercise:
// a 55-tile-row, 7-tile-column factorization with ride-along right-hand
// sides across 4 nodes and 3 threads each, checked against the sequential
// reference elementwise.
func TestStressMediumHierarchicalMultiNode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(53))
	d := matrix.NewRand(437, 55, rng) // ragged edges on both dimensions
	b := matrix.NewRand(437, 5, rng)
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 5}
	seq, err := Factorize(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB), o)
	if err != nil {
		t.Fatal(err)
	}
	vsa, err := FactorizeVSA(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB), o,
		RunConfig{Nodes: 4, Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertFactorizationsEqual(t, seq, vsa)
	if res := vsa.Residual(d); res > 1e-13 {
		t.Fatalf("stress residual %v", res)
	}
}
