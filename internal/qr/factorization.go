package qr

import (
	"fmt"

	"pulsarqr/internal/blas"
	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
)

// OpKind identifies a panel transformation in the factorization log.
type OpKind int

const (
	// OpGeqrt is the QR factorization of a domain-top tile.
	OpGeqrt OpKind = iota
	// OpTsqrt eliminates a full tile against a domain R (flat-tree step).
	OpTsqrt
	// OpTtqrt folds one domain R into another (binary-tree step).
	OpTtqrt
)

func (k OpKind) String() string {
	switch k {
	case OpGeqrt:
		return "geqrt"
	case OpTsqrt:
		return "tsqrt"
	default:
		return "ttqrt"
	}
}

// Op records one panel transformation, in global execution order, with the
// block-reflector factor needed to replay it. For OpGeqrt and OpTsqrt the
// Householder vectors live in the factored tile A(I,J) / A(K,J); for
// OpTtqrt they live in V2 (an upper-trapezoidal matrix of the eliminated
// domain's R rows).
type Op struct {
	Kind OpKind
	J    int // panel index
	I    int // top / survivor tile row
	K    int // eliminated tile row (OpTsqrt, OpTtqrt); -1 for OpGeqrt
	T    *matrix.Mat
	V2   *matrix.Mat // OpTtqrt only
}

// Factorization is the result of a tree-based tile QR: A = Q·R with Q held
// implicitly as the ordered transformation log plus the reflector tiles.
type Factorization struct {
	M, N int
	Opts Options
	// A holds the factored tiles: the final R blocks on and above the tile
	// diagonal, Householder vectors below (and below the diagonal of the
	// diagonal tiles).
	A *matrix.Tiled
	// Ops is the ordered transformation log.
	Ops []Op
	// QTB holds QᵀB for the ride-along right-hand-side columns passed to
	// the factorization, or nil.
	QTB *matrix.Tiled
	// Stats describes the runtime execution (systolic engines only).
	Stats RunStats
}

// RunStats summarizes a systolic execution.
type RunStats struct {
	// Firings is the total number of VDP firings.
	Firings int64
	// Messages and Bytes count inter-node traffic through the
	// message-passing substrate (zero for single-node runs, whose
	// channels are all zero-copy).
	Messages, Bytes int64
	// VDPs and Channels describe the array that was built.
	VDPs, Channels int
}

// R assembles the n×n upper-triangular factor.
func (f *Factorization) R() *matrix.Mat { return f.A.UpperTiles() }

// ApplyQT overwrites b (tiled with the same tile size and row count as A)
// with Qᵀ·b by replaying the transformation log forward.
func (f *Factorization) ApplyQT(b *matrix.Tiled) { f.apply(b, true) }

// ApplyQ overwrites b with Q·b by replaying the transformation log backward.
func (f *Factorization) ApplyQ(b *matrix.Tiled) { f.apply(b, false) }

func (f *Factorization) apply(b *matrix.Tiled, trans bool) {
	if b.M != f.M || b.NB != f.Opts.NB {
		panic(fmt.Sprintf("qr: apply shape mismatch: b is %d rows tile %d, A is %d rows tile %d",
			b.M, b.NB, f.M, f.Opts.NB))
	}
	ib := f.Opts.IB
	ops := f.Ops
	for idx := 0; idx < len(ops); idx++ {
		op := ops[idx]
		if !trans {
			op = ops[len(ops)-1-idx]
		}
		for lb := 0; lb < b.NT; lb++ {
			switch op.Kind {
			case OpGeqrt:
				kernels.Dormqr(trans, ib, f.A.Tile(op.I, op.J), op.T, b.Tile(op.I, lb))
			case OpTsqrt:
				kernels.Dtsmqr(trans, ib, f.A.Tile(op.K, op.J), op.T, b.Tile(op.I, lb), b.Tile(op.K, lb))
			case OpTtqrt:
				kernels.Dttmqr(trans, ib, op.V2, op.T, b.Tile(op.I, lb), b.Tile(op.K, lb))
			}
		}
	}
}

// Solve returns the least-squares solution x of min‖A·x − b‖₂ for each
// column of b (dense m×nrhs), using the stored factorization: x solves
// R·x = (Qᵀb)₁..n.
func (f *Factorization) Solve(b *matrix.Mat) *matrix.Mat {
	if b.Rows != f.M {
		panic(fmt.Sprintf("qr: Solve rhs has %d rows, want %d", b.Rows, f.M))
	}
	bt := matrix.FromDense(b, f.Opts.NB)
	f.ApplyQT(bt)
	c := bt.ToDense().View(0, 0, f.N, b.Cols).Clone()
	r := f.R()
	blas.Dtrsm(true, true, false, false, f.N, b.Cols, 1, r.Data, r.LD, c.Data, c.LD)
	return c
}

// SolveFromQTB returns the least-squares solution using the ride-along
// QᵀB computed during factorization (requires B to have been passed to
// Factorize). It avoids a second pass over the transformation log.
func (f *Factorization) SolveFromQTB() *matrix.Mat {
	if f.QTB == nil {
		panic("qr: factorization was computed without ride-along right-hand sides")
	}
	c := f.QTB.ToDense().View(0, 0, f.N, f.QTB.N).Clone()
	r := f.R()
	blas.Dtrsm(true, true, false, false, f.N, f.QTB.N, 1, r.Data, r.LD, c.Data, c.LD)
	return c
}

// Residual returns ‖AᵀA − RᵀR‖_F / ‖AᵀA‖_F for the original dense matrix
// a, a cheap factorization-quality check that does not require forming Q.
func (f *Factorization) Residual(a *matrix.Mat) float64 {
	r := f.R()
	ata := a.Transpose().Mul(a)
	rtr := r.Transpose().Mul(r)
	return ata.Sub(rtr).FrobNorm() / ata.FrobNorm()
}
