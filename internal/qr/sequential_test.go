package qr

import (
	"math"
	"math/rand"
	"testing"

	"pulsarqr/internal/matrix"
)

// allTreeOpts enumerates representative option sets covering every tree
// kind, both boundary policies, and awkward blocking parameters.
func allTreeOpts() []Options {
	return []Options{
		{NB: 8, IB: 4, Tree: FlatTree},
		{NB: 8, IB: 4, Tree: BinaryTree},
		{NB: 8, IB: 4, Tree: HierarchicalTree, H: 3},
		{NB: 8, IB: 4, Tree: HierarchicalTree, H: 3, Boundary: FixedBoundary},
		{NB: 8, IB: 3, Tree: HierarchicalTree, H: 2},
		{NB: 8, IB: 8, Tree: HierarchicalTree, H: 4},
		{NB: 5, IB: 2, Tree: HierarchicalTree, H: 3},
	}
}

func factorDense(t *testing.T, d *matrix.Mat, o Options) *Factorization {
	t.Helper()
	f, err := Factorize(matrix.FromDense(d, o.NB), nil, o)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSequentialResidualAllTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, o := range allTreeOpts() {
		for _, shape := range [][2]int{{40, 16}, {37, 11}, {64, 8}, {16, 16}, {9, 9}} {
			d := matrix.NewRand(shape[0], shape[1], rng)
			f := factorDense(t, d, o)
			if res := f.Residual(d); res > 1e-13 {
				t.Fatalf("%v %v: residual %v", o, shape, res)
			}
		}
	}
}

func TestSequentialQReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, o := range allTreeOpts() {
		m, n := 33, 13
		d := matrix.NewRand(m, n, rng)
		f := factorDense(t, d, o)

		// Build Q·R by applying Q to [R; 0] through the op log.
		r := f.R()
		stack := matrix.New(m, n)
		stack.View(0, 0, n, n).CopyFrom(r)
		st := matrix.FromDense(stack, o.NB)
		f.ApplyQ(st)
		if diff := matrix.MaxAbsDiff(st.ToDense(), d); diff > 1e-12 {
			t.Fatalf("%v: ||QR − A|| = %v", o, diff)
		}

		// Orthogonality: QᵀQ = I via applying Qᵀ then Q to random data.
		b := matrix.NewRand(m, 3, rng)
		bt := matrix.FromDense(b, o.NB)
		f.ApplyQT(bt)
		f.ApplyQ(bt)
		if diff := matrix.MaxAbsDiff(bt.ToDense(), b); diff > 1e-12 {
			t.Fatalf("%v: Q Qᵀ b != b: %v", o, diff)
		}
	}
}

func TestRideAlongMatchesReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, o := range allTreeOpts() {
		m, n, nrhs := 29, 10, 4
		d := matrix.NewRand(m, n, rng)
		b := matrix.NewRand(m, nrhs, rng)

		// Path 1: ride-along.
		f1, err := Factorize(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB), o)
		if err != nil {
			t.Fatal(err)
		}
		// Path 2: replay after the fact.
		f2 := factorDense(t, d, o)
		bt := matrix.FromDense(b, o.NB)
		f2.ApplyQT(bt)

		if diff := matrix.MaxAbsDiff(f1.QTB.ToDense(), bt.ToDense()); diff != 0 {
			t.Fatalf("%v: ride-along and replay disagree by %v", o, diff)
		}
	}
}

func TestLeastSquaresExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 3}
	m, n := 50, 12
	d := matrix.NewRand(m, n, rng)
	xTrue := matrix.NewRand(n, 2, rng)
	b := d.Mul(xTrue)
	f := factorDense(t, d, o)
	x := f.Solve(b)
	if diff := matrix.MaxAbsDiff(x, xTrue); diff > 1e-10 {
		t.Fatalf("exact system not recovered: %v", diff)
	}
}

func TestLeastSquaresNormalEquations(t *testing.T) {
	// For inconsistent b, the solution must satisfy Aᵀ(Ax − b) = 0.
	rng := rand.New(rand.NewSource(5))
	o := Options{NB: 8, IB: 4, Tree: BinaryTree}
	m, n := 41, 9
	d := matrix.NewRand(m, n, rng)
	b := matrix.NewRand(m, 1, rng)
	f := factorDense(t, d, o)
	x := f.Solve(b)
	grad := d.Transpose().Mul(d.Mul(x).Sub(b))
	if g := grad.MaxAbs(); g > 1e-11 {
		t.Fatalf("normal equations violated: %v", g)
	}
}

func TestSolveFromQTBMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 2}
	m, n := 30, 10
	d := matrix.NewRand(m, n, rng)
	b := matrix.NewRand(m, 3, rng)
	f, err := Factorize(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB), o)
	if err != nil {
		t.Fatal(err)
	}
	x1 := f.SolveFromQTB()
	x2 := f.Solve(b)
	if diff := matrix.MaxAbsDiff(x1, x2); diff > 1e-12 {
		t.Fatalf("solve paths disagree: %v", diff)
	}
}

func TestTreesAgreeUpToSigns(t *testing.T) {
	// R is unique up to row signs for full-rank A, so |R| must agree
	// across reduction trees.
	rng := rand.New(rand.NewSource(7))
	m, n := 48, 12
	d := matrix.NewRand(m, n, rng)
	var rs []*matrix.Mat
	for _, tree := range []TreeKind{FlatTree, BinaryTree, HierarchicalTree} {
		o := Options{NB: 8, IB: 4, Tree: tree, H: 2}
		f := factorDense(t, d, o)
		rs = append(rs, f.R())
	}
	for k := 1; k < len(rs); k++ {
		for j := 0; j < n; j++ {
			for i := 0; i <= j; i++ {
				if diff := math.Abs(math.Abs(rs[0].At(i, j)) - math.Abs(rs[k].At(i, j))); diff > 1e-10 {
					t.Fatalf("tree %d: |R(%d,%d)| differs by %v", k, i, j, diff)
				}
			}
		}
	}
}

func TestFactorizeRejectsBadShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	o := Options{NB: 8, IB: 4}
	if _, err := Factorize(matrix.FromDense(matrix.NewRand(5, 9, rng), 8), nil, o); err == nil {
		t.Fatal("wide matrix must be rejected")
	}
	a := matrix.FromDense(matrix.NewRand(16, 8, rng), 4)
	if _, err := Factorize(a, nil, o); err == nil {
		t.Fatal("tile-size mismatch must be rejected")
	}
	a = matrix.FromDense(matrix.NewRand(16, 8, rng), 8)
	badB := matrix.FromDense(matrix.NewRand(8, 2, rng), 8)
	if _, err := Factorize(a, badB, o); err == nil {
		t.Fatal("rhs row mismatch must be rejected")
	}
}

func TestOpLogStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	o := Options{NB: 4, IB: 2, Tree: HierarchicalTree, H: 2}
	d := matrix.NewRand(16, 8, rng) // mt=4, nt=2
	f := factorDense(t, d, o)
	// Panel 0: 2 domains of 2 -> 2 geqrt + 2 tsqrt + 1 ttqrt.
	// Panel 1: rows 1..3 -> domains [1,2],[3] -> 2 geqrt + 1 tsqrt + 1 ttqrt.
	var g, ts, tt int
	for _, op := range f.Ops {
		switch op.Kind {
		case OpGeqrt:
			g++
			if op.K != -1 {
				t.Fatal("geqrt op must have K=-1")
			}
		case OpTsqrt:
			ts++
		case OpTtqrt:
			tt++
			if op.V2 == nil {
				t.Fatal("ttqrt op must carry V2")
			}
		}
		if op.T == nil {
			t.Fatal("every op must carry T")
		}
	}
	if g != 4 || ts != 3 || tt != 2 {
		t.Fatalf("op counts: geqrt=%d tsqrt=%d ttqrt=%d", g, ts, tt)
	}
}

func TestSingleTileMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 4}
	d := matrix.NewRand(6, 6, rng)
	f := factorDense(t, d, o)
	if res := f.Residual(d); res > 1e-13 {
		t.Fatalf("single-tile residual %v", res)
	}
	if len(f.Ops) != 1 || f.Ops[0].Kind != OpGeqrt {
		t.Fatalf("single tile should need exactly one geqrt, got %+v", f.Ops)
	}
}
