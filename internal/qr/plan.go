package qr

import "fmt"

// Domain is one flat-tree reduction unit within a panel: Top is the tile
// row that absorbs the others; Rows lists the remaining rows in
// elimination order.
type Domain struct {
	Top  int
	Rows []int
}

// Merge is one binary-tree combination of two domain tops: the R factor in
// row K is folded into the R factor in row Surv by a dttqrt. Level orders
// the tree levels; merges on the same level are independent.
type Merge struct {
	Surv, K int
	Level   int
}

// PanelPlan is the reduction plan of one panel: which rows form which
// domains and how the domain tops are merged. The same plan drives the
// sequential reference, the 3D VSA construction, the task-superscalar
// baseline and the performance simulator, so all of them perform the same
// arithmetic in the same per-datum order.
type PanelPlan struct {
	J       int
	Domains []Domain
	Merges  []Merge
}

// Plan computes the reduction plan of panel j for mt tile rows. It is the
// exported entry point used by the performance simulator, which mirrors
// the systolic array's task graph without instantiating it.
func Plan(j, mt int, o Options) PanelPlan {
	return planPanel(j, mt, o.normalize())
}

// planPanel computes the reduction plan of panel j for mt tile rows.
func planPanel(j, mt int, o Options) PanelPlan {
	if j < 0 || j >= mt {
		panic(fmt.Sprintf("qr: panel %d out of %d tile rows", j, mt))
	}
	h := o.domainSize(mt)
	p := PanelPlan{J: j}

	// Partition rows j..mt-1 into domains.
	start := j
	for start < mt {
		end := start + h // exclusive
		if o.Tree == HierarchicalTree && o.Boundary == FixedBoundary {
			// Domains aligned to absolute multiples of h; the first domain
			// of a panel may be partial.
			end = (start/h + 1) * h
		}
		if end > mt {
			end = mt
		}
		d := Domain{Top: start}
		for r := start + 1; r < end; r++ {
			d.Rows = append(d.Rows, r)
		}
		p.Domains = append(p.Domains, d)
		start = end
	}

	// Second-level tree over domain tops.
	tops := make([]int, len(p.Domains))
	for i, d := range p.Domains {
		tops[i] = d.Top
	}
	switch o.Inter {
	case FlatInter:
		for level, t := range tops[1:] {
			p.Merges = append(p.Merges, Merge{Surv: tops[0], K: t, Level: level})
		}
	default: // BinaryInter
		level := 0
		for step := 1; step < len(tops); step *= 2 {
			for a := 0; a+step < len(tops); a += 2 * step {
				p.Merges = append(p.Merges, Merge{Surv: tops[a], K: tops[a+step], Level: level})
			}
			level++
		}
	}
	return p
}

// mergesOf returns, in level order, the merges in which row t participates,
// paired with whether t is the survivor in each.
func (p PanelPlan) mergesOf(t int) []mergeRole {
	var out []mergeRole
	for mi, m := range p.Merges {
		if m.Surv == t {
			out = append(out, mergeRole{index: mi, surv: true})
		} else if m.K == t {
			out = append(out, mergeRole{index: mi, surv: false})
			break // a row is eliminated at most once
		}
	}
	return out
}

type mergeRole struct {
	index int
	surv  bool
}

// domainOf returns the index of the domain containing row i.
func (p PanelPlan) domainOf(i int) int {
	for di, d := range p.Domains {
		if d.Top == i {
			return di
		}
		for _, r := range d.Rows {
			if r == i {
				return di
			}
		}
	}
	panic(fmt.Sprintf("qr: row %d not in panel %d plan", i, p.J))
}

// KernelCount tallies the kernels a plan implies for ncols trailing
// columns (update kernels run once per trailing column). Used by tests and
// the simulator.
type KernelCount struct {
	Geqrt, Tsqrt, Ttqrt int
	Ormqr, Tsmqr, Ttmqr int
}

// Count returns the kernel tally for this panel with ncols trailing columns.
func (p PanelPlan) Count(ncols int) KernelCount {
	var c KernelCount
	for _, d := range p.Domains {
		c.Geqrt++
		c.Ormqr += ncols
		c.Tsqrt += len(d.Rows)
		c.Tsmqr += len(d.Rows) * ncols
	}
	c.Ttqrt = len(p.Merges)
	c.Ttmqr = len(p.Merges) * ncols
	return c
}
