package qr

import (
	"context"
	"errors"
	"fmt"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/transport"
)

// FactorizeVSAServe is the entry point for a long-running service: it runs
// one factorization as a job inside an existing runtime environment instead
// of building one per call. pool, when non-nil, supplies the persistent
// worker threads (with their warm kernel workspaces); ep, when non-nil, is
// the job's communicator — typically a transport.JobEndpoint multiplexed
// over the fleet's persistent connections. With ep nil the job runs on the
// local pool alone. ctx cancels the job: the run aborts promptly on every
// rank that observes the cancellation, and the error wraps context.Cause.
//
// Like FactorizeVSADist, the distributed form is collective: every rank
// calls it with identical (a, b, opts) and rank 0 returns the assembled
// factorization. Cancellation must also be collective (the service
// broadcasts it); a rank that finishes normally while another aborts can
// otherwise wait in the final barrier until its job endpoint is closed.
func FactorizeVSAServe(ctx context.Context, a *matrix.Tiled, b *matrix.Tiled, opts Options, rc RunConfig, ep transport.Endpoint, pool *pulsar.Pool) (*Factorization, error) {
	if ep == nil || ep.Size() == 1 {
		return factorizeLocal(ctx, a, b, opts, rc, pool)
	}
	return factorizeDist(ctx, a, b, opts, rc, ep, pool)
}

// FactorizeVSADistCtx is FactorizeVSADist with job-scoped cancellation:
// when ctx is canceled the runtime aborts, in-flight kernels drain, and the
// call returns an error wrapping context.Cause(ctx). Cancellation is
// per-process — to cancel a mesh-wide run, cancel on every rank (the
// launcher's signal handling does this by signalling the process group).
func FactorizeVSADistCtx(ctx context.Context, a *matrix.Tiled, b *matrix.Tiled, opts Options, rc RunConfig, ep transport.Endpoint) (*Factorization, error) {
	return factorizeDist(ctx, a, b, opts, rc, ep, nil)
}

// factorizeLocal runs a single-process job, on a persistent pool when one
// is provided, with fresh per-run workers otherwise.
func factorizeLocal(ctx context.Context, a *matrix.Tiled, b *matrix.Tiled, opts Options, rc RunConfig, pool *pulsar.Pool) (*Factorization, error) {
	opts = opts.normalize()
	rc = rc.normalize()
	rc.Nodes = 1
	if pool != nil {
		rc.Threads = pool.Threads()
	}
	if err := checkShapes(a, b, opts); err != nil {
		return nil, err
	}

	bd := &builder{a: a, b: b, opts: opts, rc: rc}
	if b != nil {
		bd.bnt = b.NT
	}
	for j := 0; j < a.NT && j < a.MT; j++ {
		bd.plans = append(bd.plans, planPanel(j, a.MT, opts))
	}
	cfg := pulsar.Config{
		Nodes:           1,
		ThreadsPerNode:  rc.Threads,
		Scheduling:      rc.Scheduling,
		Map:             bd.mapping(),
		FireHook:        rc.FireHook,
		WaitHook:        rc.WaitHook,
		CommHook:        rc.CommHook,
		DeadlockTimeout: rc.DeadlockTimeout,
		Pool:            pool,
	}
	if pool == nil {
		cfg.WorkerState = func(node, thread int) any { return kernels.NewWorkspace() }
	}
	bd.s = pulsar.New(cfg)
	bd.build()
	bd.inject()
	if err := runCtx(ctx, bd.s); err != nil {
		return nil, err
	}
	f, err := bd.assemble()
	if err != nil {
		return nil, err
	}
	msgs, bytes := bd.s.NetworkStats()
	f.Stats = RunStats{
		Firings: bd.s.Fired(), Messages: msgs, Bytes: bytes,
		VDPs: bd.s.VDPCount(), Channels: bd.s.ChannelCount(),
	}
	return f, nil
}

// checkShapes validates the (a, b, opts) triple shared by every entry point.
func checkShapes(a *matrix.Tiled, b *matrix.Tiled, opts Options) error {
	if a.M < a.N {
		return fmt.Errorf("qr: matrix is %dx%d; tall-skinny factorization requires m >= n", a.M, a.N)
	}
	if a.NB != opts.NB {
		return fmt.Errorf("qr: matrix tiled with nb=%d but options say nb=%d", a.NB, opts.NB)
	}
	if b != nil && (b.M != a.M || b.NB != a.NB) {
		return fmt.Errorf("qr: rhs is %d rows tile %d; matrix is %d rows tile %d", b.M, b.NB, a.M, a.NB)
	}
	return nil
}

// runCtx runs the VSA with ctx wired to Abort, translating an abort that
// was caused by the context into a cancellation error.
func runCtx(ctx context.Context, s *pulsar.VSA) error {
	if ctx == nil {
		ctx = context.Background()
	}
	stop := context.AfterFunc(ctx, s.Abort)
	defer stop()
	err := s.Run()
	return ctxRunErr(ctx, err)
}

// ctxRunErr maps a runtime abort triggered by ctx to an error carrying the
// context's cause; other errors (deadlock, explicit Abort) pass through.
func ctxRunErr(ctx context.Context, err error) error {
	if err != nil && errors.Is(err, pulsar.ErrAborted) && ctx.Err() != nil {
		return fmt.Errorf("qr: factorization canceled: %w", context.Cause(ctx))
	}
	return err
}

// waitCtx waits for a transport request, canceling it when ctx fires so a
// gather blocked on a vanished peer unwinds instead of hanging.
func waitCtx(ctx context.Context, req transport.Request) {
	if ctx == nil {
		req.Wait()
		return
	}
	stop := context.AfterFunc(ctx, func() { req.Cancel() })
	defer stop()
	req.Wait()
}
