package qr

import (
	"strings"
	"testing"
)

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.NB <= 0 || o.IB <= 0 || o.H <= 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
	if o.IB > o.NB {
		t.Fatal("ib must not exceed nb")
	}
	// Oversized IB is clamped.
	o = Options{NB: 8, IB: 99}.normalize()
	if o.IB > o.NB {
		t.Fatalf("ib %d not clamped to nb %d", o.IB, o.NB)
	}
}

func TestDomainSizeByTree(t *testing.T) {
	mt := 40
	if got := (Options{Tree: FlatTree, H: 5}).domainSize(mt); got != mt {
		t.Fatalf("flat domain size %d", got)
	}
	if got := (Options{Tree: BinaryTree, H: 5}).domainSize(mt); got != 1 {
		t.Fatalf("binary domain size %d", got)
	}
	if got := (Options{Tree: HierarchicalTree, H: 5}).domainSize(mt); got != 5 {
		t.Fatalf("hierarchical domain size %d", got)
	}
}

func TestStringers(t *testing.T) {
	cases := map[string]string{
		FlatTree.String():         "flat",
		BinaryTree.String():       "binary",
		HierarchicalTree.String(): "hierarchical",
		ShiftedBoundary.String():  "shifted",
		FixedBoundary.String():    "fixed",
		BinaryInter.String():      "binary-inter",
		FlatInter.String():        "flat-inter",
		OpGeqrt.String():          "geqrt",
		OpTsqrt.String():          "tsqrt",
		OpTtqrt.String():          "ttqrt",
	}
	for got, want := range cases {
		if got != want {
			t.Fatalf("stringer: got %q want %q", got, want)
		}
	}
	s := (Options{NB: 192, IB: 48, Tree: HierarchicalTree, H: 6}).String()
	for _, frag := range []string{"nb=192", "ib=48", "h=6", "hierarchical"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("Options.String %q missing %q", s, frag)
		}
	}
}

func TestPlanLastPanelSingleRow(t *testing.T) {
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 3}.normalize()
	p := planPanel(9, 10, o)
	if len(p.Domains) != 1 || p.Domains[0].Top != 9 || len(p.Domains[0].Rows) != 0 {
		t.Fatalf("single-row panel plan wrong: %+v", p)
	}
	if len(p.Merges) != 0 {
		t.Fatal("single domain needs no merges")
	}
}

func TestPlanPanicsOutOfRange(t *testing.T) {
	o := Options{NB: 8, IB: 4}.normalize()
	for _, j := range []int{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("planPanel(%d, 10) must panic", j)
				}
			}()
			planPanel(j, 10, o)
		}()
	}
}

func TestExportedPlanNormalizes(t *testing.T) {
	// The exported Plan must fill defaults rather than panic on zero H.
	p := Plan(0, 12, Options{Tree: HierarchicalTree})
	if len(p.Domains) == 0 {
		t.Fatal("Plan returned empty domains")
	}
}

func TestEngineAndClassNames(t *testing.T) {
	for _, c := range []string{ClassPanel, ClassUpdate, ClassBinary, ClassBinaryUpdate} {
		if c == "" {
			t.Fatal("empty class name")
		}
	}
}
