package qr

import (
	"encoding/binary"
	"fmt"
	"time"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/tuple"
)

// The 3D Virtual Systolic Array (paper §V-C, Fig. 8). One VDP exists per
// (panel step, tile row[, trailing column]) — the three nested loops of the
// algorithm map directly onto the three dimensions of the array:
//
//   - panel VDPs (red): dgeqrt at each domain top, dtsqrt below it; the
//     evolving domain R travels down the flat-tree chain as a packet;
//   - update VDPs (orange): dormqr/dtsmqr on the trailing columns; the
//     domain-top row tile of each column travels down the same chain
//     shape, and (V,T) packets broadcast along each row through a by-pass
//     chain — every VDP forwards the transformation before applying it,
//     overlapping communication with computation;
//   - binary-tree VDPs (blue): dttqrt merges domain Rs pairwise, dttmqr
//     updates the paired row tiles; the eliminated side's tiles are
//     released to the next panel, which may start as soon as they arrive
//     (the shifted-boundary pipelining of Fig. 6/7).
//
// Tiles released by panel j flow directly to their VDP in panel j+1, and
// tiles that reach their final state (the R row of the surviving top, the
// QᵀB blocks) flow to collector channels for assembly by the driver.

// VDP kinds, the first component of every tuple.
const (
	kindPanel       = 0 // (0, j, i, -1, -1)
	kindUpdate      = 1 // (1, j, i, l, -1)
	kindMerge       = 2 // (2, j, surv, k, -1)
	kindMergeUpdate = 3 // (3, j, surv, k, l)
)

// Trace classes, matching the colors of the paper's Fig. 7/8.
const (
	ClassPanel        = "panel"         // red: dgeqrt/dtsqrt
	ClassUpdate       = "update"        // orange: dormqr/dtsmqr
	ClassBinary       = "binary"        // blue: dttqrt
	ClassBinaryUpdate = "binary-update" // blue: dttmqr
)

// RunConfig parameterizes the runtime execution of the array.
type RunConfig struct {
	// Nodes is the number of simulated distributed-memory nodes.
	Nodes int
	// Threads is the number of worker threads per node.
	Threads int
	// Scheduling selects the lazy or aggressive worker scheme.
	Scheduling pulsar.Scheduling
	// FireHook receives one event per VDP firing (tracing); may be nil.
	FireHook func(pulsar.FireEvent)
	// WaitHook receives worker channel-wait intervals (tracing); may be
	// nil. Ignored for pooled runs — install Pool.OnWait instead.
	WaitHook func(pulsar.WaitEvent)
	// CommHook receives proxy send/recv and barrier events (tracing); may
	// be nil.
	CommHook func(pulsar.CommEvent)
	// DeadlockTimeout is passed through to the runtime; zero = default.
	DeadlockTimeout time.Duration
}

func (rc RunConfig) normalize() RunConfig {
	if rc.Nodes <= 0 {
		rc.Nodes = 1
	}
	if rc.Threads <= 0 {
		rc.Threads = 1
	}
	return rc
}

// vtMsg carries a Householder transformation along a row: the reflector
// tile V (read-only once published) and its block factor T.
type vtMsg struct {
	V, T *matrix.Mat
}

// collectMsg carries a completed transformation to the driver: the kernel
// kind, its coordinates, the reflector tile and the T factor.
type collectMsg struct {
	Kind    OpKind
	J, I, K int
	Tile, T *matrix.Mat
}

func init() {
	// Inter-node codec for vtMsg packets: [lenV u32][V][T].
	pulsar.RegisterCodec(pulsar.Codec{
		ID: 16,
		Encode: func(v any) ([]byte, bool) {
			m, ok := v.(*vtMsg)
			if !ok {
				return nil, false
			}
			bv := pulsar.EncodeMat(m.V)
			bt := pulsar.EncodeMat(m.T)
			out := make([]byte, 4+len(bv)+len(bt))
			binary.LittleEndian.PutUint32(out, uint32(len(bv)))
			copy(out[4:], bv)
			copy(out[4+len(bv):], bt)
			return out, true
		},
		Decode: func(b []byte) (any, error) {
			if len(b) < 4 {
				return nil, fmt.Errorf("qr: short vt packet")
			}
			lv := int(binary.LittleEndian.Uint32(b))
			if 4+lv > len(b) {
				return nil, fmt.Errorf("qr: corrupt vt packet")
			}
			v, err := pulsar.DecodeMat(b[4 : 4+lv])
			if err != nil {
				return nil, err
			}
			t, err := pulsar.DecodeMat(b[4+lv:])
			if err != nil {
				return nil, err
			}
			return &vtMsg{V: v, T: t}, nil
		},
	})
}

// builder accumulates the array for one factorization.
type builder struct {
	a, b  *matrix.Tiled
	opts  Options
	rc    RunConfig
	s     *pulsar.VSA
	plans []PanelPlan
	bnt   int // rhs tile columns
}

// endpoint identifies a producer (VDP tuple + output slot) while wiring.
type endpoint struct {
	tup  tuple.Tuple
	slot int
}

// panelLocal is the build-time configuration stored in a panel VDP.
type panelLocal struct {
	j, i, n, ib int
	top         bool // dgeqrt (domain top) vs dtsqrt
	hasVT       bool // a trailing/rhs column exists
}

// updateLocal configures an update or merge-update VDP.
type updateLocal struct {
	ib    int
	top   bool // dormqr vs dtsmqr
	fwdVT bool // forward the (V,T) packet to the next column first
}

// mergeLocal configures a merge VDP.
type mergeLocal struct {
	j, surv, k, n, ib int
	hasVT             bool
}

// FactorizeVSA computes the same factorization as Factorize by building
// and running the 3D virtual systolic array on the PULSAR runtime. The
// tiles of a (and b) are consumed: they are injected into the array,
// transformed in place where locality permits, and reassembled into the
// returned factorization.
func FactorizeVSA(a *matrix.Tiled, b *matrix.Tiled, opts Options, rc RunConfig) (*Factorization, error) {
	opts = opts.normalize()
	rc = rc.normalize()
	if err := checkShapes(a, b, opts); err != nil {
		return nil, err
	}

	bd := &builder{a: a, b: b, opts: opts, rc: rc}
	if b != nil {
		bd.bnt = b.NT
	}
	for j := 0; j < a.NT && j < a.MT; j++ {
		bd.plans = append(bd.plans, planPanel(j, a.MT, opts))
	}
	bd.s = pulsar.New(pulsar.Config{
		Nodes:           rc.Nodes,
		ThreadsPerNode:  rc.Threads,
		Scheduling:      rc.Scheduling,
		Map:             bd.mapping(),
		FireHook:        rc.FireHook,
		WaitHook:        rc.WaitHook,
		CommHook:        rc.CommHook,
		DeadlockTimeout: rc.DeadlockTimeout,
		// One kernel workspace per worker thread: every VDP that fires on a
		// thread reuses that thread's scratch instead of allocating per fire.
		WorkerState: func(node, thread int) any { return kernels.NewWorkspace() },
	})
	bd.build()
	bd.inject()
	if err := bd.s.Run(); err != nil {
		return nil, err
	}
	f, err := bd.assemble()
	if err != nil {
		return nil, err
	}
	msgs, bytes := bd.s.NetworkStats()
	f.Stats = RunStats{
		Firings: bd.s.Fired(), Messages: msgs, Bytes: bytes,
		VDPs: bd.s.VDPCount(), Channels: bd.s.ChannelCount(),
	}
	return f, nil
}

// Tuple constructors for the four VDP kinds.
func panelTup(j, i int) tuple.Tuple          { return tuple.Tuple{kindPanel, j, i, -1, -1} }
func updateTup(j, i, l int) tuple.Tuple      { return tuple.Tuple{kindUpdate, j, i, l, -1} }
func mergeTup(j, s, k int) tuple.Tuple       { return tuple.Tuple{kindMerge, j, s, k, -1} }
func mergeUpdTup(j, s, k, l int) tuple.Tuple { return tuple.Tuple{kindMergeUpdate, j, s, k, l} }

// cols returns the global trailing column indices of panel j: matrix
// columns j+1..nt-1 followed by the rhs tile columns nt..nt+bnt-1.
func (bd *builder) cols(j int) []int {
	var out []int
	for l := j + 1; l < bd.a.NT; l++ {
		out = append(out, l)
	}
	for r := 0; r < bd.bnt; r++ {
		out = append(out, bd.a.NT+r)
	}
	return out
}

// colTile resolves a global column index to the tile at row i.
func (bd *builder) colTile(i, l int) *matrix.Mat {
	if l < bd.a.NT {
		return bd.a.Tile(i, l)
	}
	return bd.b.Tile(i, l-bd.a.NT)
}

// mapping places VDPs: tile rows are distributed to nodes in contiguous
// blocks (domains stay node-local for flat-trees), threads are assigned
// cyclically by (row, column), and — following the paper — a binary-tree
// parent is placed with its first (surviving) child.
func (bd *builder) mapping() pulsar.Mapping {
	mt := bd.a.MT
	nodes, threads := bd.rc.Nodes, bd.rc.Threads
	rowsPerNode := (mt + nodes - 1) / nodes
	place := func(row, col int) (int, int) {
		n := row / rowsPerNode
		if n >= nodes {
			n = nodes - 1
		}
		return n, (row + col) % threads
	}
	return func(t tuple.Tuple) (int, int) {
		switch t.At(0) {
		case kindPanel:
			return place(t.At(2), t.At(1))
		case kindUpdate:
			return place(t.At(2), t.At(3))
		case kindMerge:
			return place(t.At(2), t.At(1)) // survivor's row
		default: // kindMergeUpdate
			return place(t.At(2), t.At(4))
		}
	}
}

// build creates every VDP and channel of the array.
func (bd *builder) build() {
	nbBytes := 8*bd.opts.NB*bd.opts.NB + 64

	// Pass 1: create every VDP of every panel, so that cross-panel release
	// channels always find their destination.
	for _, plan := range bd.plans {
		j := plan.J
		n := bd.a.TileCols(j)
		cols := bd.cols(j)
		for _, d := range plan.Domains {
			bd.newPanelVDP(plan, d.Top, true, n, len(cols) > 0)
			for _, k := range d.Rows {
				bd.newPanelVDP(plan, k, false, n, len(cols) > 0)
			}
			for ci, l := range cols {
				bd.newUpdateVDP(j, d.Top, l, true, ci+1 < len(cols))
				for _, k := range d.Rows {
					bd.newUpdateVDP(j, k, l, false, ci+1 < len(cols))
				}
			}
		}
		for _, m := range plan.Merges {
			bd.newMergeVDP(plan, m, n, len(cols) > 0)
			for ci, l := range cols {
				bd.newMergeUpdVDP(j, m, l, ci+1 < len(cols))
			}
		}
	}

	// Pass 2: wire all channels.
	for _, plan := range bd.plans {
		j := plan.J
		cols := bd.cols(j)

		// --- (V,T) by-pass chains along each row ----------------------
		for _, d := range plan.Domains {
			rows := append([]int{d.Top}, d.Rows...)
			for _, i := range rows {
				prev := endpoint{panelTup(j, i), 1}
				for _, l := range cols {
					cur := updateTup(j, i, l)
					bd.s.Connect(prev.tup, prev.slot, cur, 1, nbBytes*2, false)
					prev = endpoint{cur, 0}
				}
			}
		}
		for _, m := range plan.Merges {
			prev := endpoint{mergeTup(j, m.Surv, m.K), 1}
			for _, l := range cols {
				cur := mergeUpdTup(j, m.Surv, m.K, l)
				bd.s.Connect(prev.tup, prev.slot, cur, 2, nbBytes*2, false)
				prev = endpoint{cur, 0}
			}
		}

		// --- R chain (panel column) ------------------------------------
		bd.wireStreams(plan, -1, nbBytes)
		// --- top-tile chains (each trailing column) --------------------
		for _, l := range cols {
			bd.wireStreams(plan, l, nbBytes)
		}

		// --- per-transformation collectors -----------------------------
		for _, d := range plan.Domains {
			bd.s.Output(panelTup(j, d.Top), 2, nbBytes)
			for _, k := range d.Rows {
				bd.s.Output(panelTup(j, k), 2, nbBytes)
			}
		}
		for _, m := range plan.Merges {
			bd.s.Output(mergeTup(j, m.Surv, m.K), 2, nbBytes)
		}
	}
}

// wireStreams wires the flat-tree chains and the binary tree for one
// column of panel plan. l == -1 selects the R chain through the panel and
// merge VDPs; l >= 0 selects the top-tile chain through the update and
// merge-update VDPs of global column l. The chain topology is identical —
// that structural sharing is the heart of the 3D array.
func (bd *builder) wireStreams(plan PanelPlan, l, nbBytes int) {
	j := plan.J
	isR := l < 0

	// Producer endpoint of each stage.
	headOf := func(i int) endpoint {
		if isR {
			return endpoint{panelTup(j, i), 0}
		}
		return endpoint{updateTup(j, i, l), 1}
	}
	chainIn := func(i int) (tuple.Tuple, int) {
		if isR {
			return panelTup(j, i), 1
		}
		return updateTup(j, i, l), 2
	}
	mergeOf := func(m Merge) (tuple.Tuple, int, int, int) {
		// tuple, in-slot for survivor stream, in-slot for eliminated
		// stream, out-slot of the surviving stream
		if isR {
			return mergeTup(j, m.Surv, m.K), 0, 1, 0
		}
		return mergeUpdTup(j, m.Surv, m.K, l), 0, 1, 1
	}

	streamEnd := map[int]endpoint{}
	for _, d := range plan.Domains {
		prod := headOf(d.Top)
		for _, k := range d.Rows {
			dst, slot := chainIn(k)
			bd.s.Connect(prod.tup, prod.slot, dst, slot, nbBytes, false)
			prod = headOf(k)
		}
		streamEnd[d.Top] = prod
	}
	for _, m := range plan.Merges {
		mtup, sIn, kIn, sOut := mergeOf(m)
		es, ek := streamEnd[m.Surv], streamEnd[m.K]
		bd.s.Connect(es.tup, es.slot, mtup, sIn, nbBytes, false)
		bd.s.Connect(ek.tup, ek.slot, mtup, kIn, nbBytes, false)
		streamEnd[m.Surv] = endpoint{mtup, sOut}
		// The eliminated side's tile is released to the next panel from
		// the merge VDP itself (the tile stream case); the R case keeps
		// V2 in the collector instead.
		if !isR {
			bd.connectRelease(j, m.K, l, endpoint{mtup, 2})
		}
	}
	// The surviving stream (row j) finalizes: its packet is the panel's
	// final R (isR) or the final tile R(j, l) / (QᵀB)(j, ·).
	fin := streamEnd[j]
	bd.s.Output(fin.tup, fin.slot, nbBytes)

	// Non-top rows release their own tile to the next panel.
	if !isR {
		for _, d := range plan.Domains {
			for _, k := range d.Rows {
				bd.connectRelease(j, k, l, endpoint{updateTup(j, k, l), 3})
			}
		}
	}
}

// connectRelease wires the hand-off of tile (i, l) from panel j to its VDP
// in panel j+1, or to a collector when panel j is the tile's last.
func (bd *builder) connectRelease(j, i, l int, from endpoint) {
	nbBytes := 8*bd.opts.NB*bd.opts.NB + 64
	lastPanel := len(bd.plans) - 1
	switch {
	case j == lastPanel:
		// No further panels: rhs tiles (and nothing else — matrix columns
		// l > lastPanel cannot exist) finalize here.
		bd.s.Output(from.tup, from.slot, nbBytes)
	case l == j+1:
		bd.s.Connect(from.tup, from.slot, panelTup(j+1, i), 0, nbBytes, false)
	default:
		bd.s.Connect(from.tup, from.slot, updateTup(j+1, i, l), 0, nbBytes, false)
	}
}

// --- VDP constructors -------------------------------------------------

func (bd *builder) newPanelVDP(plan PanelPlan, i int, top bool, n int, hasVT bool) {
	j := plan.J
	cfg := &panelLocal{j: j, i: i, n: n, ib: bd.opts.IB, top: top, hasVT: hasVT}
	nin := 2 // 0: tile, 1: incoming R (unused for tops)
	v := bd.s.NewVDP(panelTup(j, i), 1, panelFn, ClassPanel, nin, 3)
	v.SetLocal(cfg)
	if j == 0 {
		// Panel-0 tiles are injected from outside; later panels receive
		// their tile through the release channel from panel j-1.
		bd.s.Input(panelTup(j, i), 0, 8*bd.opts.NB*bd.opts.NB+64)
	}
}

func (bd *builder) newUpdateVDP(j, i, l int, top bool, fwdVT bool) {
	cfg := &updateLocal{ib: bd.opts.IB, top: top, fwdVT: fwdVT}
	// in: 0 tile, 1 VT, 2 top-tile (non-top only)
	// out: 0 VT fwd, 1 top-tile stream, 2 (unused), 3 release (non-top)
	v := bd.s.NewVDP(updateTup(j, i, l), 1, updateFn, ClassUpdate, 3, 4)
	v.SetLocal(cfg)
	if j == 0 {
		bd.s.Input(updateTup(j, i, l), 0, 8*bd.opts.NB*bd.opts.NB+64)
	}
}

func (bd *builder) newMergeVDP(plan PanelPlan, m Merge, n int, hasVT bool) {
	j := plan.J
	cfg := &mergeLocal{j: j, surv: m.Surv, k: m.K, n: n, ib: bd.opts.IB, hasVT: hasVT}
	v := bd.s.NewVDP(mergeTup(j, m.Surv, m.K), 1, mergeFn, ClassBinary, 2, 3)
	v.SetLocal(cfg)
}

func (bd *builder) newMergeUpdVDP(j int, m Merge, l int, fwdVT bool) {
	cfg := &updateLocal{ib: bd.opts.IB, fwdVT: fwdVT}
	// in: 0 B1 (survivor tile), 1 B2 (eliminated tile), 2 VT
	// out: 0 VT fwd, 1 B1 stream, 2 B2 release
	v := bd.s.NewVDP(mergeUpdTup(j, m.Surv, m.K, l), 1, mergeUpdFn, ClassBinaryUpdate, 3, 3)
	v.SetLocal(cfg)
}

// --- VDP bodies ---------------------------------------------------------

// extractR copies the upper trapezoid of a factored tile into a fresh
// k×n matrix that will travel down the reduction chains.
func extractR(tile *matrix.Mat, n int) *matrix.Mat {
	k := min(tile.Rows, n)
	r := matrix.New(k, n)
	for jj := 0; jj < n; jj++ {
		for ii := 0; ii <= jj && ii < k; ii++ {
			r.Set(ii, jj, tile.At(ii, jj))
		}
	}
	return r
}

// wsOf returns the firing worker's kernel workspace; nil (letting the
// kernels fall back to their pool) if the runtime has none configured.
func wsOf(v *pulsar.VDP) *kernels.Workspace {
	ws, _ := v.WorkerState().(*kernels.Workspace)
	return ws
}

func panelFn(v *pulsar.VDP) {
	cfg := v.Local().(*panelLocal)
	tile := v.Pop(0).Tile()
	if cfg.top {
		k := min(tile.Rows, cfg.n)
		tg := matrix.New(min(cfg.ib, k), k)
		kernels.DgeqrtWS(wsOf(v), cfg.ib, tile, tg)
		if cfg.hasVT {
			v.Push(1, pulsar.NewPacket(&vtMsg{V: tile, T: tg}))
		}
		v.Push(0, pulsar.NewPacket(extractR(tile, cfg.n)))
		v.Push(2, pulsar.NewPacket(&collectMsg{Kind: OpGeqrt, J: cfg.j, I: cfg.i, K: -1, Tile: tile, T: tg}))
		return
	}
	r := v.Pop(1).Tile()
	tt := matrix.New(min(cfg.ib, cfg.n), cfg.n)
	kernels.DtsqrtWS(wsOf(v), cfg.ib, r, tile, tt)
	if cfg.hasVT {
		v.Push(1, pulsar.NewPacket(&vtMsg{V: tile, T: tt}))
	}
	v.Push(0, pulsar.NewPacket(r))
	v.Push(2, pulsar.NewPacket(&collectMsg{Kind: OpTsqrt, J: cfg.j, I: -1, K: cfg.i, Tile: tile, T: tt}))
}

func updateFn(v *pulsar.VDP) {
	cfg := v.Local().(*updateLocal)
	vtp := v.Pop(1)
	if cfg.fwdVT {
		// By-pass: forward the transformation before applying it, so the
		// communication overlaps with the local kernel (paper §V-C).
		v.Push(0, vtp)
	}
	msg := vtp.Data.(*vtMsg)
	tile := v.Pop(0).Tile()
	if cfg.top {
		kernels.DormqrWS(wsOf(v), true, cfg.ib, msg.V, msg.T, tile)
		v.Push(1, pulsar.NewPacket(tile))
		return
	}
	topTile := v.Pop(2).Tile()
	kernels.DtsmqrWS(wsOf(v), true, cfg.ib, msg.V, msg.T, topTile, tile)
	v.Push(1, pulsar.NewPacket(topTile))
	v.Push(3, pulsar.NewPacket(tile))
}

func mergeFn(v *pulsar.VDP) {
	cfg := v.Local().(*mergeLocal)
	rs := v.Pop(0).Tile()
	rk := v.Pop(1).Tile()
	tt := matrix.New(min(cfg.ib, cfg.n), cfg.n)
	kernels.DttqrtWS(wsOf(v), cfg.ib, rs, rk, tt)
	if cfg.hasVT {
		v.Push(1, pulsar.NewPacket(&vtMsg{V: rk, T: tt}))
	}
	v.Push(0, pulsar.NewPacket(rs))
	v.Push(2, pulsar.NewPacket(&collectMsg{Kind: OpTtqrt, J: cfg.j, I: cfg.surv, K: cfg.k, Tile: rk, T: tt}))
}

func mergeUpdFn(v *pulsar.VDP) {
	cfg := v.Local().(*updateLocal)
	vtp := v.Pop(2)
	if cfg.fwdVT {
		v.Push(0, vtp)
	}
	msg := vtp.Data.(*vtMsg)
	b1 := v.Pop(0).Tile()
	b2 := v.Pop(1).Tile()
	kernels.DttmqrWS(wsOf(v), true, cfg.ib, msg.V, msg.T, b1, b2)
	v.Push(1, pulsar.NewPacket(b1))
	v.Push(2, pulsar.NewPacket(b2))
}

// --- injection and assembly ---------------------------------------------

// inject seeds the array with the matrix (and rhs) tiles: column 0 tiles
// enter their panel VDPs, every other tile enters its panel-0 update VDP.
func (bd *builder) inject() {
	for i := 0; i < bd.a.MT; i++ {
		bd.s.Inject(panelTup(0, i), 0, pulsar.NewPacket(bd.a.Tile(i, 0)))
		for _, l := range bd.cols(0) {
			bd.s.Inject(updateTup(0, i, l), 0, pulsar.NewPacket(bd.colTile(i, l)))
		}
	}
}

// assemble gathers the collector outputs into a Factorization.
func (bd *builder) assemble() (*Factorization, error) {
	a := bd.a
	out := matrix.NewTiled(a.M, a.N, a.NB)
	var qtb *matrix.Tiled
	if bd.b != nil {
		qtb = matrix.NewTiled(bd.b.M, bd.b.N, bd.b.NB)
	}
	f := &Factorization{M: a.M, N: a.N, Opts: bd.opts, A: out, QTB: qtb}

	one := func(tup tuple.Tuple, slot int) (*pulsar.Packet, error) {
		ps := bd.s.Collected(tup, slot)
		if len(ps) != 1 {
			return nil, fmt.Errorf("qr: collector %v[%d] holds %d packets, want 1", tup, slot, len(ps))
		}
		return ps[0], nil
	}

	for _, plan := range bd.plans {
		j := plan.J
		// Transformation log in plan order, and the panel-column V tiles.
		for _, d := range plan.Domains {
			rows := append([]int{d.Top}, d.Rows...)
			for _, i := range rows {
				p, err := one(panelTup(j, i), 2)
				if err != nil {
					return nil, err
				}
				cm := p.Data.(*collectMsg)
				op := Op{Kind: cm.Kind, J: j, T: cm.T}
				if cm.Kind == OpGeqrt {
					op.I, op.K = i, -1
				} else {
					op.I, op.K = d.Top, i
				}
				out.SetTile(i, j, cm.Tile)
				f.Ops = append(f.Ops, op)
			}
		}
		for _, m := range plan.Merges {
			p, err := one(mergeTup(j, m.Surv, m.K), 2)
			if err != nil {
				return nil, err
			}
			cm := p.Data.(*collectMsg)
			f.Ops = append(f.Ops, Op{Kind: OpTtqrt, J: j, I: m.Surv, K: m.K, T: cm.T, V2: cm.Tile})
		}

		// Final R of the panel: write into the upper triangle of the
		// diagonal tile (over the reflectors collected above).
		rEnd := bd.rStreamEnd(plan)
		p, err := one(rEnd.tup, rEnd.slot)
		if err != nil {
			return nil, err
		}
		final := p.Tile()
		diag := out.Tile(j, j)
		n := a.TileCols(j)
		for jj := 0; jj < n; jj++ {
			for ii := 0; ii <= jj && ii < final.Rows; ii++ {
				diag.Set(ii, jj, final.At(ii, jj))
			}
		}

		// Final row tiles R(j, l) and finished rhs tiles (QᵀB)(j, ·).
		for _, l := range bd.cols(j) {
			tEnd := bd.tileStreamEnd(plan, l)
			p, err := one(tEnd.tup, tEnd.slot)
			if err != nil {
				return nil, err
			}
			bd.placeFinal(f, j, l, p.Tile())
		}
	}

	// RHS tiles of rows below the last panel finalize at the last panel's
	// releases.
	if bd.b != nil {
		last := len(bd.plans) - 1
		plan := bd.plans[last]
		for r := 0; r < bd.bnt; r++ {
			l := a.NT + r
			for _, d := range plan.Domains {
				for _, k := range d.Rows {
					p, err := one(updateTup(last, k, l), 3)
					if err != nil {
						return nil, err
					}
					qtb.SetTile(k, r, p.Tile())
				}
			}
			for _, m := range plan.Merges {
				p, err := one(mergeUpdTup(last, m.Surv, m.K, l), 2)
				if err != nil {
					return nil, err
				}
				qtb.SetTile(m.K, r, p.Tile())
			}
		}
	}
	return f, nil
}

// placeFinal stores a finished tile of the surviving row j.
func (bd *builder) placeFinal(f *Factorization, j, l int, tile *matrix.Mat) {
	if l < bd.a.NT {
		f.A.SetTile(j, l, tile)
	} else {
		f.QTB.SetTile(j, l-bd.a.NT, tile)
	}
}

// rStreamEnd returns the producer endpoint of the panel's final R.
func (bd *builder) rStreamEnd(plan PanelPlan) endpoint {
	return bd.streamEndOf(plan, -1)
}

// tileStreamEnd returns the producer endpoint of the final tile (j, l).
func (bd *builder) tileStreamEnd(plan PanelPlan, l int) endpoint {
	return bd.streamEndOf(plan, l)
}

// streamEndOf recomputes the surviving stream's final endpoint, mirroring
// wireStreams.
func (bd *builder) streamEndOf(plan PanelPlan, l int) endpoint {
	j := plan.J
	isR := l < 0
	var end endpoint
	for _, d := range plan.Domains {
		if d.Top != j {
			continue
		}
		lastRow := j
		if len(d.Rows) > 0 {
			lastRow = d.Rows[len(d.Rows)-1]
		}
		if isR {
			end = endpoint{panelTup(j, lastRow), 0}
		} else {
			end = endpoint{updateTup(j, lastRow, l), 1}
		}
	}
	for _, m := range plan.Merges {
		if m.Surv != j {
			continue
		}
		if isR {
			end = endpoint{mergeTup(j, m.Surv, m.K), 0}
		} else {
			end = endpoint{mergeUpdTup(j, m.Surv, m.K, l), 1}
		}
	}
	return end
}
