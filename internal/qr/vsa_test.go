package qr

import (
	"math/rand"
	"sync"
	"testing"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
)

// factorBoth runs the sequential reference and the VSA on identical data
// and returns both factorizations.
func factorBoth(t *testing.T, d, b *matrix.Mat, o Options, rc RunConfig) (seq, vsa *Factorization) {
	t.Helper()
	var bs, bv *matrix.Tiled
	if b != nil {
		bs = matrix.FromDense(b, o.NB)
		bv = matrix.FromDense(b, o.NB)
	}
	var err error
	seq, err = Factorize(matrix.FromDense(d, o.NB), bs, o)
	if err != nil {
		t.Fatal(err)
	}
	vsa, err = FactorizeVSA(matrix.FromDense(d, o.NB), bv, o, rc)
	if err != nil {
		t.Fatal(err)
	}
	return seq, vsa
}

// assertFactorizationsEqual demands elementwise equality of the factored
// tiles, the final R, the op logs and QᵀB: the VSA executes the same
// kernels on the same data in the same per-datum order as the reference,
// so the results must match exactly, not just to rounding.
func assertFactorizationsEqual(t *testing.T, seq, vsa *Factorization) {
	t.Helper()
	if d := matrix.MaxAbsDiff(seq.A.ToDense(), vsa.A.ToDense()); d != 0 {
		t.Fatalf("factored tiles differ by %v", d)
	}
	if len(seq.Ops) != len(vsa.Ops) {
		t.Fatalf("op logs: %d vs %d entries", len(seq.Ops), len(vsa.Ops))
	}
	for i := range seq.Ops {
		so, vo := seq.Ops[i], vsa.Ops[i]
		if so.Kind != vo.Kind || so.J != vo.J || so.I != vo.I || so.K != vo.K {
			t.Fatalf("op %d differs: %+v vs %+v", i, so, vo)
		}
		if d := matrix.MaxAbsDiff(so.T, vo.T); d != 0 {
			t.Fatalf("op %d T differs by %v", i, d)
		}
		if (so.V2 == nil) != (vo.V2 == nil) {
			t.Fatalf("op %d V2 presence differs", i)
		}
		if so.V2 != nil {
			if d := matrix.MaxAbsDiff(so.V2, vo.V2); d != 0 {
				t.Fatalf("op %d V2 differs by %v", i, d)
			}
		}
	}
	if (seq.QTB == nil) != (vsa.QTB == nil) {
		t.Fatal("QTB presence differs")
	}
	if seq.QTB != nil {
		if d := matrix.MaxAbsDiff(seq.QTB.ToDense(), vsa.QTB.ToDense()); d != 0 {
			t.Fatalf("QᵀB differs by %v", d)
		}
	}
}

func TestVSAMatchesSequentialAllTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rc := RunConfig{Nodes: 1, Threads: 3}
	for _, o := range allTreeOpts() {
		d := matrix.NewRand(41, 13, rng)
		b := matrix.NewRand(41, 3, rng)
		seq, vsa := factorBoth(t, d, b, o, rc)
		assertFactorizationsEqual(t, seq, vsa)
		if res := vsa.Residual(d); res > 1e-13 {
			t.Fatalf("%v: residual %v", o, res)
		}
	}
}

func TestVSAMultiNodeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, nodes := range []int{2, 3, 5} {
		rc := RunConfig{Nodes: nodes, Threads: 2}
		o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 3}
		d := matrix.NewRand(77, 21, rng)
		b := matrix.NewRand(77, 2, rng)
		seq, vsa := factorBoth(t, d, b, o, rc)
		assertFactorizationsEqual(t, seq, vsa)
	}
}

func TestVSASchedulingModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 2}
	d := matrix.NewRand(40, 16, rng)
	for _, sched := range []pulsar.Scheduling{pulsar.Lazy, pulsar.Aggressive} {
		rc := RunConfig{Nodes: 2, Threads: 2, Scheduling: sched}
		seq, vsa := factorBoth(t, d, nil, o, rc)
		assertFactorizationsEqual(t, seq, vsa)
	}
}

func TestVSAFlatSingleColumn(t *testing.T) {
	// Degenerate shapes: one tile column, one tile, tiny threads.
	rng := rand.New(rand.NewSource(4))
	for _, shape := range [][2]int{{24, 6}, {8, 8}, {6, 6}, {30, 8}} {
		for _, tree := range []TreeKind{FlatTree, BinaryTree, HierarchicalTree} {
			o := Options{NB: 8, IB: 4, Tree: tree, H: 2}
			d := matrix.NewRand(shape[0], shape[1], rng)
			seq, vsa := factorBoth(t, d, nil, o, RunConfig{Nodes: 1, Threads: 1})
			assertFactorizationsEqual(t, seq, vsa)
		}
	}
}

func TestVSALeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 3}
	m, n := 56, 14
	d := matrix.NewRand(m, n, rng)
	xTrue := matrix.NewRand(n, 2, rng)
	b := d.Mul(xTrue)
	f, err := FactorizeVSA(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB), o, RunConfig{Nodes: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := f.SolveFromQTB()
	if diff := matrix.MaxAbsDiff(x, xTrue); diff > 1e-10 {
		t.Fatalf("least-squares solution off by %v", diff)
	}
}

func TestVSAQReplayAfterRun(t *testing.T) {
	// The factorization gathered from the array must support Q replay.
	rng := rand.New(rand.NewSource(6))
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 2}
	m, n := 33, 9
	d := matrix.NewRand(m, n, rng)
	f, err := FactorizeVSA(matrix.FromDense(d, o.NB), nil, o, RunConfig{Nodes: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := f.R()
	stack := matrix.New(m, n)
	stack.View(0, 0, n, n).CopyFrom(r)
	st := matrix.FromDense(stack, o.NB)
	f.ApplyQ(st)
	if diff := matrix.MaxAbsDiff(st.ToDense(), d); diff > 1e-12 {
		t.Fatalf("||QR − A|| = %v", diff)
	}
}

func TestVSATraceClassesPresent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 2}
	d := matrix.NewRand(48, 16, rng)
	var mu sync.Mutex
	classes := map[string]int{}
	rc := RunConfig{Nodes: 1, Threads: 2, FireHook: func(e pulsar.FireEvent) {
		mu.Lock()
		classes[e.Class]++
		mu.Unlock()
	}}
	if _, err := FactorizeVSA(matrix.FromDense(d, o.NB), nil, o, rc); err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{ClassPanel, ClassUpdate, ClassBinary, ClassBinaryUpdate} {
		if classes[c] == 0 {
			t.Fatalf("no firings of class %q: %v", c, classes)
		}
	}
	// Firing counts must match the plan's kernel counts.
	mt, nt := 6, 2
	var wantPanel, wantUpd, wantMerge, wantMergeUpd int
	for j := 0; j < nt; j++ {
		p := planPanel(j, mt, o.normalize())
		c := p.Count(nt - j - 1)
		wantPanel += c.Geqrt + c.Tsqrt
		wantUpd += c.Ormqr + c.Tsmqr
		wantMerge += c.Ttqrt
		wantMergeUpd += c.Ttmqr
	}
	if classes[ClassPanel] != wantPanel || classes[ClassUpdate] != wantUpd ||
		classes[ClassBinary] != wantMerge || classes[ClassBinaryUpdate] != wantMergeUpd {
		t.Fatalf("firing counts %v; want panel=%d update=%d binary=%d binary-update=%d",
			classes, wantPanel, wantUpd, wantMerge, wantMergeUpd)
	}
}

func TestVSAFixedVsShiftedBothCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := matrix.NewRand(64, 16, rng)
	for _, bp := range []BoundaryPolicy{ShiftedBoundary, FixedBoundary} {
		o := Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 3, Boundary: bp}
		seq, vsa := factorBoth(t, d, nil, o, RunConfig{Nodes: 2, Threads: 2})
		assertFactorizationsEqual(t, seq, vsa)
		if res := vsa.Residual(d); res > 1e-13 {
			t.Fatalf("%v: residual %v", bp, res)
		}
	}
}

func TestVSARejectsBadShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	o := Options{NB: 8, IB: 4}
	if _, err := FactorizeVSA(matrix.FromDense(matrix.NewRand(5, 9, rng), 8), nil, o, RunConfig{}); err == nil {
		t.Fatal("wide matrix must be rejected")
	}
}
