package qr

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
)

// stackDense stacks row blocks into one dense matrix.
func stackDense(blocks []*matrix.Mat, n int) *matrix.Mat {
	rows := 0
	for _, b := range blocks {
		rows += b.Rows
	}
	d := matrix.New(rows, n)
	r := 0
	for _, b := range blocks {
		d.View(r, 0, b.Rows, n).CopyFrom(b)
		r += b.Rows
	}
	return d
}

// canonR flips the sign of every row of r (and the matching row of q, when
// non-nil) whose diagonal entry is negative, making the R factor of a
// full-rank matrix unique.
func canonR(r, q *matrix.Mat) {
	for i := 0; i < r.Rows && i < r.Cols; i++ {
		if r.At(i, i) < 0 {
			for j := 0; j < r.Cols; j++ {
				r.Set(i, j, -r.At(i, j))
			}
			if q != nil {
				for j := 0; j < q.Cols; j++ {
					q.Set(i, j, -q.At(i, j))
				}
			}
		}
	}
}

// streamAll drives a streamer over the blocks sequentially and returns the
// folded current state.
func streamAll(t *testing.T, s *Streamer, ws *kernels.Workspace, blocks, rhs []*matrix.Mat) *StreamNode {
	t.Helper()
	for i, b := range blocks {
		var rb *matrix.Mat
		if rhs != nil {
			rb = rhs[i]
		}
		nd, err := s.LeafReduce(ws, b.Clone(), cloneOrNil(rb))
		if err != nil {
			t.Fatalf("LeafReduce block %d: %v", i, err)
		}
		s.Commit(ws, nd)
	}
	return s.Current(ws, nil)
}

func cloneOrNil(m *matrix.Mat) *matrix.Mat {
	if m == nil {
		return nil
	}
	return m.Clone()
}

// TestStreamMatchesFactorize streams randomly sized row blocks (including
// blocks shorter than n) and checks the folded R against a from-scratch
// factorization of the stacked matrix, elementwise after sign
// canonicalization. With ride-along right-hand sides it also checks the
// least-squares solution against the reference Solve.
func TestStreamMatchesFactorize(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct {
		n, nrhs, blocks int
	}{
		{8, 0, 5},
		{24, 0, 9},
		{32, 2, 7},
		{48, 3, 12},
	} {
		t.Run(fmt.Sprintf("n%d_rhs%d_b%d", tc.n, tc.nrhs, tc.blocks), func(t *testing.T) {
			opts := Options{NB: 32, IB: 8}
			var blocks, rhs []*matrix.Mat
			for i := 0; i < tc.blocks; i++ {
				m := 1 + rng.Intn(2*tc.n)
				if i == 0 {
					m = tc.n + rng.Intn(tc.n) // full rank from the first fold
				}
				blocks = append(blocks, matrix.NewRand(m, tc.n, rng))
				if tc.nrhs > 0 {
					rhs = append(rhs, matrix.NewRand(m, tc.nrhs, rng))
				}
			}
			s, err := NewStreamer(tc.n, tc.nrhs, opts)
			if err != nil {
				t.Fatal(err)
			}
			ws := kernels.NewWorkspace()
			cur := s.Current(ws, nil)
			if cur.R.MaxAbs() != 0 || cur.Rows != 0 {
				t.Fatalf("empty stream has nonzero state")
			}
			cur = streamAll(t, s, ws, blocks, rhs)

			dense := stackDense(blocks, tc.n)
			if int64(dense.Rows) != s.Rows() {
				t.Fatalf("streamed %d rows, stacked %d", s.Rows(), dense.Rows)
			}
			var denseB *matrix.Tiled
			if tc.nrhs > 0 {
				denseB = matrix.FromDense(stackDense(rhs, tc.nrhs), opts.NB)
			}
			f, err := Factorize(matrix.FromDense(dense, opts.NB), denseB, opts)
			if err != nil {
				t.Fatal(err)
			}
			want := f.R()
			canonR(want, nil)
			got := cur.R.Clone()
			var gotQ *matrix.Mat
			if tc.nrhs > 0 {
				gotQ = cur.QTB.Clone()
			}
			canonR(got, gotQ)
			tol := 1e-10 * float64(dense.Rows) * dense.MaxAbs()
			if d := matrix.MaxAbsDiff(got, want); d > tol {
				t.Fatalf("streamed R deviates from factorized R by %g (tol %g)", d, tol)
			}
			if tc.nrhs > 0 {
				xWant := f.SolveFromQTB()
				xGot := (&StreamNode{R: got, QTB: gotQ}).SolveLS()
				xTol := 1e-8 * float64(dense.Rows) * math.Max(1, xWant.MaxAbs())
				if d := matrix.MaxAbsDiff(xGot, xWant); d > xTol {
					t.Fatalf("streamed LS solution deviates by %g (tol %g)", d, xTol)
				}
			}
		})
	}
}

// TestStreamKernelCountLogP instruments kernel firings through the
// streamer's hook and asserts the per-append tile-kernel count is O(log P),
// not O(P): an append to a P-block session fires the leaf reduction plus at
// most the leaf-to-root merge path and the spine fold — never a full
// refactorization.
func TestStreamKernelCountLogP(t *testing.T) {
	const (
		n = 24
		P = 128
	)
	opts := Options{NB: 32, IB: 8}
	rng := rand.New(rand.NewSource(7))
	s, err := NewStreamer(n, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	s.Hook = func(string) { fired++ }
	ws := kernels.NewWorkspace()

	maxPerAppend, total := 0, 0
	var blocks []*matrix.Mat
	for i := 0; i < P; i++ {
		b := matrix.NewRand(opts.NB, n, rng) // one tile chunk per leaf
		blocks = append(blocks, b)
		fired = 0
		nd, err := s.LeafReduce(ws, b.Clone(), nil)
		if err != nil {
			t.Fatal(err)
		}
		s.Commit(ws, nd)
		s.Current(ws, nil)
		total += fired
		if fired > maxPerAppend {
			maxPerAppend = fired
		}
	}

	// Per append: 1 leaf tsqrt + ≤ log₂P carry ttqrts + ≤ log₂P fold
	// ttqrts. A refactorization would fire ≥ P kernels.
	logP := bits.Len(uint(P))
	if bound := 2*logP + 2; maxPerAppend > bound {
		t.Fatalf("append fired %d kernels, want <= %d (2·log2(%d)+2)", maxPerAppend, bound, P)
	}
	if maxPerAppend >= P/2 {
		t.Fatalf("append fired %d kernels on a %d-block session — that is O(P), not O(log P)", maxPerAppend, P)
	}
	if s.SpineDepth() > logP {
		t.Fatalf("spine depth %d exceeds log2(%d)", s.SpineDepth(), P)
	}
	t.Logf("P=%d: max %d kernels/append, %.1f avg, spine depth %d", P, maxPerAppend, float64(total)/P, s.SpineDepth())

	// The streamed R still matches a from-scratch factorization.
	s.Hook = nil
	cur := s.Current(ws, nil)
	dense := stackDense(blocks, n)
	f, err := Factorize(matrix.FromDense(dense, opts.NB), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := f.R()
	canonR(want, nil)
	got := cur.R.Clone()
	canonR(got, nil)
	tol := 1e-10 * float64(dense.Rows) * dense.MaxAbs()
	if d := matrix.MaxAbsDiff(got, want); d > tol {
		t.Fatalf("streamed R deviates from factorized R by %g (tol %g)", d, tol)
	}
}

// TestStreamRestoreBitwise checkpoints a stream mid-way (cloning the spine,
// as the durable checkpoint does), restores it into a fresh streamer, and
// drives both over the same remaining appends: the restored R must be
// bitwise identical to the uninterrupted run's.
func TestStreamRestoreBitwise(t *testing.T) {
	const n, nrhs, total, cut = 16, 2, 11, 6
	opts := Options{NB: 16, IB: 8}
	rng := rand.New(rand.NewSource(3))
	var blocks, rhs []*matrix.Mat
	for i := 0; i < total; i++ {
		m := 1 + rng.Intn(24)
		blocks = append(blocks, matrix.NewRand(m, n, rng))
		rhs = append(rhs, matrix.NewRand(m, nrhs, rng))
	}
	ws := kernels.NewWorkspace()

	orig, err := NewStreamer(n, nrhs, opts)
	if err != nil {
		t.Fatal(err)
	}
	streamAll(t, orig, ws, blocks[:cut], rhs[:cut])

	// Snapshot the spine the way a checkpoint does: deep copies.
	var snap []*StreamNode
	for _, nd := range orig.Spine() {
		snap = append(snap, &StreamNode{Blocks: nd.Blocks, Rows: nd.Rows, R: nd.R.Clone(), QTB: nd.QTB.Clone()})
	}
	restored, err := RestoreStreamer(n, nrhs, opts, snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Blocks() != cut || restored.Rows() != orig.Rows() {
		t.Fatalf("restored %d blocks / %d rows, want %d / %d", restored.Blocks(), restored.Rows(), cut, orig.Rows())
	}

	curOrig := streamAll(t, orig, ws, blocks[cut:], rhs[cut:])
	curRest := streamAll(t, restored, kernels.NewWorkspace(), blocks[cut:], rhs[cut:])
	if d := matrix.MaxAbsDiff(curOrig.R, curRest.R); d != 0 {
		t.Fatalf("restored R differs from uninterrupted run by %g (want bitwise equality)", d)
	}
	if d := matrix.MaxAbsDiff(curOrig.QTB, curRest.QTB); d != 0 {
		t.Fatalf("restored QTB differs from uninterrupted run by %g (want bitwise equality)", d)
	}
}

// TestStreamInputValidation exercises the error paths of LeafReduce and
// RestoreStreamer.
func TestStreamInputValidation(t *testing.T) {
	opts := Options{NB: 16, IB: 8}
	s, err := NewStreamer(8, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStreamer(0, 0, opts); err == nil {
		t.Fatal("NewStreamer accepted n=0")
	}
	if _, err := NewStreamer(8, -1, opts); err == nil {
		t.Fatal("NewStreamer accepted nrhs=-1")
	}
	if _, err := s.LeafReduce(nil, matrix.New(4, 7), nil); err == nil {
		t.Fatal("LeafReduce accepted a column mismatch")
	}
	if _, err := s.LeafReduce(nil, nil, nil); err == nil {
		t.Fatal("LeafReduce accepted a nil block")
	}
	if _, err := s.LeafReduce(nil, matrix.New(4, 8), matrix.New(4, 1)); err == nil {
		t.Fatal("LeafReduce accepted rhs on an R-only stream")
	}
	sr, err := NewStreamer(8, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.LeafReduce(nil, matrix.New(4, 8), nil); err == nil {
		t.Fatal("LeafReduce accepted a missing rhs")
	}
	if _, err := sr.LeafReduce(nil, matrix.New(4, 8), matrix.New(3, 1)); err == nil {
		t.Fatal("LeafReduce accepted an rhs row mismatch")
	}

	good := &StreamNode{Blocks: 2, Rows: 20, R: matrix.New(8, 8)}
	if _, err := RestoreStreamer(8, 0, opts, []*StreamNode{good, {Blocks: 2, Rows: 4, R: matrix.New(8, 8)}}); err == nil {
		t.Fatal("RestoreStreamer accepted non-decreasing block counts")
	}
	if _, err := RestoreStreamer(8, 0, opts, []*StreamNode{{Blocks: 1, Rows: 4, R: matrix.New(7, 8)}}); err == nil {
		t.Fatal("RestoreStreamer accepted a misshapen R")
	}
	if _, err := RestoreStreamer(8, 1, opts, []*StreamNode{good}); err == nil {
		t.Fatal("RestoreStreamer accepted a missing QTB")
	}
	if _, err := RestoreStreamer(8, 0, opts, []*StreamNode{good}); err != nil {
		t.Fatalf("RestoreStreamer rejected a valid spine: %v", err)
	}
}
