package qr

import (
	"context"
	"encoding/binary"
	"fmt"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/transport"
)

// gatherTagBase keys the post-run result gather: collector endpoint i uses
// tag gatherTagBase+i. The runtime's channel tags are small consecutive
// integers, so this range can never collide with in-run traffic (and the
// proxies are gone by gather time anyway — Run ends with a barrier).
const gatherTagBase = 1 << 24

func init() {
	// Inter-process codec for collectMsg packets, used by the result
	// gather: [kind u8][J i32][I i32][K i32][lenTile u32][tile][T].
	pulsar.RegisterCodec(pulsar.Codec{
		ID: 17,
		Encode: func(v any) ([]byte, bool) {
			m, ok := v.(*collectMsg)
			if !ok {
				return nil, false
			}
			bt := pulsar.EncodeMat(m.Tile)
			bf := pulsar.EncodeMat(m.T)
			out := make([]byte, 17+len(bt)+len(bf))
			out[0] = byte(m.Kind)
			binary.LittleEndian.PutUint32(out[1:], uint32(int32(m.J)))
			binary.LittleEndian.PutUint32(out[5:], uint32(int32(m.I)))
			binary.LittleEndian.PutUint32(out[9:], uint32(int32(m.K)))
			binary.LittleEndian.PutUint32(out[13:], uint32(len(bt)))
			copy(out[17:], bt)
			copy(out[17+len(bt):], bf)
			return out, true
		},
		Decode: func(b []byte) (any, error) {
			if len(b) < 17 {
				return nil, fmt.Errorf("qr: short collect packet")
			}
			lt := int(binary.LittleEndian.Uint32(b[13:]))
			if lt < 0 || 17+lt > len(b) {
				return nil, fmt.Errorf("qr: corrupt collect packet")
			}
			tile, err := pulsar.DecodeMat(b[17 : 17+lt])
			if err != nil {
				return nil, err
			}
			tf, err := pulsar.DecodeMat(b[17+lt:])
			if err != nil {
				return nil, err
			}
			return &collectMsg{
				Kind: OpKind(b[0]),
				J:    int(int32(binary.LittleEndian.Uint32(b[1:]))),
				I:    int(int32(binary.LittleEndian.Uint32(b[5:]))),
				K:    int(int32(binary.LittleEndian.Uint32(b[9:]))),
				Tile: tile, T: tf,
			}, nil
		},
	})
}

// FactorizeVSADist runs the 3D virtual systolic array across the real
// process mesh behind ep: every rank must call it with identical inputs
// (a, b, opts, rc), each builds the same array, and each executes only the
// VDPs its rank owns. Collector output is gathered to rank 0, which
// assembles and returns the factorization; the other ranks return
// (nil, nil). The call is collective and ends with a barrier, so when it
// returns on any rank the whole mesh has finished.
func FactorizeVSADist(a *matrix.Tiled, b *matrix.Tiled, opts Options, rc RunConfig, ep transport.Endpoint) (*Factorization, error) {
	return factorizeDist(context.Background(), a, b, opts, rc, ep, nil)
}

// factorizeDist is the collective implementation behind FactorizeVSADist,
// FactorizeVSADistCtx and the distributed arm of FactorizeVSAServe: one
// rank's share of a mesh-wide run, optionally on a persistent worker pool,
// aborted when ctx fires. Thread counts are local to each rank (placement
// depends only on the node count), so ranks may run pools of different
// sizes.
func factorizeDist(ctx context.Context, a *matrix.Tiled, b *matrix.Tiled, opts Options, rc RunConfig, ep transport.Endpoint, pool *pulsar.Pool) (*Factorization, error) {
	opts = opts.normalize()
	rc = rc.normalize()
	rc.Nodes = ep.Size()
	if pool != nil {
		rc.Threads = pool.Threads()
	}
	if err := checkShapes(a, b, opts); err != nil {
		return nil, err
	}

	bd := &builder{a: a, b: b, opts: opts, rc: rc}
	if b != nil {
		bd.bnt = b.NT
	}
	for j := 0; j < a.NT && j < a.MT; j++ {
		bd.plans = append(bd.plans, planPanel(j, a.MT, opts))
	}
	cfg := pulsar.Config{
		Nodes:           rc.Nodes,
		ThreadsPerNode:  rc.Threads,
		Scheduling:      rc.Scheduling,
		Map:             bd.mapping(),
		FireHook:        rc.FireHook,
		WaitHook:        rc.WaitHook,
		CommHook:        rc.CommHook,
		DeadlockTimeout: rc.DeadlockTimeout,
		Comm:            ep,
		Pool:            pool,
	}
	bd.s = pulsar.New(cfg)
	bd.build()
	bd.injectLocal(ep.Rank())
	if err := runCtx(ctx, bd.s); err != nil {
		return nil, err
	}
	if err := bd.gather(ctx, ep); err != nil {
		return nil, err
	}
	defer ep.Barrier()
	if ep.Rank() != 0 {
		return nil, nil
	}
	f, err := bd.assemble()
	if err != nil {
		return nil, err
	}
	msgs, bytes := bd.s.NetworkStats()
	f.Stats = RunStats{
		Firings: bd.s.Fired(), Messages: msgs, Bytes: bytes,
		VDPs: bd.s.VDPCount(), Channels: bd.s.ChannelCount(),
	}
	return f, nil
}

// injectLocal seeds the array with the tiles whose consuming VDP lives on
// this rank; the other ranks inject their own shares, so every tile enters
// the array exactly once across the mesh.
func (bd *builder) injectLocal(rank int) {
	mp := bd.mapping()
	for i := 0; i < bd.a.MT; i++ {
		if n, _ := mp(panelTup(0, i)); n == rank {
			bd.s.Inject(panelTup(0, i), 0, pulsar.NewPacket(bd.a.Tile(i, 0)))
		}
		for _, l := range bd.cols(0) {
			if n, _ := mp(updateTup(0, i, l)); n == rank {
				bd.s.Inject(updateTup(0, i, l), 0, pulsar.NewPacket(bd.colTile(i, l)))
			}
		}
	}
}

// collectorEndpoints enumerates every external output channel in the exact
// order assemble visits them. The enumeration is a pure function of the
// (identical) array structure, so all ranks agree on the index — and
// therefore the gather tag — of each endpoint.
func (bd *builder) collectorEndpoints() []endpoint {
	var eps []endpoint
	for _, plan := range bd.plans {
		j := plan.J
		for _, d := range plan.Domains {
			rows := append([]int{d.Top}, d.Rows...)
			for _, i := range rows {
				eps = append(eps, endpoint{panelTup(j, i), 2})
			}
		}
		for _, m := range plan.Merges {
			eps = append(eps, endpoint{mergeTup(j, m.Surv, m.K), 2})
		}
		eps = append(eps, bd.rStreamEnd(plan))
		for _, l := range bd.cols(j) {
			eps = append(eps, bd.tileStreamEnd(plan, l))
		}
	}
	if bd.b != nil {
		last := len(bd.plans) - 1
		plan := bd.plans[last]
		for r := 0; r < bd.bnt; r++ {
			l := bd.a.NT + r
			for _, d := range plan.Domains {
				for _, k := range d.Rows {
					eps = append(eps, endpoint{updateTup(last, k, l), 3})
				}
			}
			for _, m := range plan.Merges {
				eps = append(eps, endpoint{mergeUpdTup(last, m.Surv, m.K, l), 2})
			}
		}
	}
	return eps
}

// gather moves every collector packet to rank 0. Each endpoint holds
// exactly one packet on the rank that ran its producing VDP; the owner
// sends it with a tag derived from the endpoint's enumeration index, and
// rank 0 posts the matching specific receives — no wildcard, so nothing
// can be misattributed.
func (bd *builder) gather(ctx context.Context, ep transport.Endpoint) error {
	rank := ep.Rank()
	mp := bd.mapping()
	if rank != 0 {
		for idx, e := range bd.collectorEndpoints() {
			owner, _ := mp(e.tup)
			if owner != rank {
				continue
			}
			ps := bd.s.Collected(e.tup, e.slot)
			if len(ps) != 1 {
				return fmt.Errorf("qr: rank %d collector %v[%d] holds %d packets, want 1", rank, e.tup, e.slot, len(ps))
			}
			buf, err := pulsar.MarshalPacket(ps[0])
			if err != nil {
				return fmt.Errorf("qr: collector %v[%d]: %w", e.tup, e.slot, err)
			}
			ep.Isend(buf, 0, gatherTagBase+idx)
		}
		return nil
	}
	type pending struct {
		e   endpoint
		req transport.Request
	}
	var reqs []pending
	for idx, e := range bd.collectorEndpoints() {
		owner, _ := mp(e.tup)
		if owner == 0 {
			continue // already in the local collected map
		}
		reqs = append(reqs, pending{e, ep.Irecv(owner, gatherTagBase+idx)})
	}
	for _, p := range reqs {
		waitCtx(ctx, p.req)
		if p.req.Canceled() {
			if ctx != nil && ctx.Err() != nil {
				return fmt.Errorf("qr: factorization canceled during gather: %w", context.Cause(ctx))
			}
			// A canceled gather receive means the owning rank departed; when
			// the transport knows why, name the dead peer instead of the
			// generic verdict.
			if fo, ok := ep.(transport.FailureObserver); ok {
				if pe := fo.PeerFailure(); pe != nil {
					return fmt.Errorf("qr: gather of collector %v[%d]: %w", p.e.tup, p.e.slot, pe)
				}
			}
			return fmt.Errorf("qr: gather of collector %v[%d] canceled: peer gone", p.e.tup, p.e.slot)
		}
		pkt, err := pulsar.UnmarshalPacket(p.req.Data())
		if err != nil {
			return fmt.Errorf("qr: gather of collector %v[%d]: %w", p.e.tup, p.e.slot, err)
		}
		bd.s.AddCollected(p.e.tup, p.e.slot, pkt)
	}
	return nil
}
