package qr

// Distributed factorization tests. The first drives FactorizeVSADist over
// the in-process transport (three ranks as goroutines); the second spawns
// real OS processes joined by a TCP mesh — the test binary re-executes
// itself in a worker role, so no auxiliary binary is built.

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/transport"
)

const (
	distEnvRole  = "PULSARQR_QR_WORKER"
	distEnvRank  = "PULSARQR_QR_RANK"
	distEnvPeers = "PULSARQR_QR_PEERS"
)

func TestMain(m *testing.M) {
	if os.Getenv(distEnvRole) != "" {
		os.Exit(runDistWorker())
	}
	os.Exit(m.Run())
}

// distInputs builds the (identical) worker inputs: every rank re-derives
// the same matrices from the same seed, mirroring how real distributed
// codes agree on input without shipping it.
func distInputs() (d, b *matrix.Mat, o Options) {
	rng := rand.New(rand.NewSource(42))
	d = matrix.NewRand(61, 17, rng)
	b = matrix.NewRand(61, 3, rng)
	o = Options{NB: 8, IB: 4, Tree: HierarchicalTree, H: 3}
	return d, b, o
}

func TestFactorizeVSADistMatchesSequential(t *testing.T) {
	d, b, o := distInputs()
	seq, err := Factorize(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB), o)
	if err != nil {
		t.Fatal(err)
	}

	const ranks = 3
	lw := transport.NewLocal(ranks)
	results := make([]*Factorization, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = FactorizeVSADist(
				matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB),
				o, RunConfig{Threads: 2}, lw.Endpoint(r))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 1; r < ranks; r++ {
		if results[r] != nil {
			t.Fatalf("rank %d returned a factorization; only rank 0 assembles", r)
		}
	}
	assertFactorizationsEqual(t, seq, results[0])
	if res := results[0].Residual(d); res > 1e-13 {
		t.Fatalf("residual %v", res)
	}
	if results[0].Stats.Messages == 0 || results[0].Stats.Bytes == 0 {
		t.Fatal("distributed run reports no network traffic")
	}
}

// runDistWorker is one rank of the TCP factorization: rank 0 additionally
// checks the distributed result elementwise against the sequential
// reference and reports through its exit status and output.
func runDistWorker() int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "worker: "+format+"\n", args...)
		return 1
	}
	rank, err := strconv.Atoi(os.Getenv(distEnvRank))
	if err != nil {
		return fail("bad rank: %v", err)
	}
	peers := strings.Split(os.Getenv(distEnvPeers), ",")
	ep, err := transport.DialTCP(transport.TCPConfig{
		Rank:              rank,
		Peers:             peers,
		RendezvousTimeout: 20 * time.Second,
	})
	if err != nil {
		return fail("dial: %v", err)
	}
	defer ep.Close()

	d, b, o := distInputs()
	f, err := FactorizeVSADist(
		matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB),
		o, RunConfig{Threads: 2}, ep)
	if err != nil {
		return fail("factorize: %v", err)
	}
	if rank != 0 {
		fmt.Println("qr worker done rank", rank)
		return 0
	}
	seq, err := Factorize(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB), o)
	if err != nil {
		return fail("sequential reference: %v", err)
	}
	if diff := matrix.MaxAbsDiff(seq.A.ToDense(), f.A.ToDense()); diff != 0 {
		return fail("factored tiles differ by %v", diff)
	}
	if diff := matrix.MaxAbsDiff(seq.QTB.ToDense(), f.QTB.ToDense()); diff != 0 {
		return fail("QtB differs by %v", diff)
	}
	if len(seq.Ops) != len(f.Ops) {
		return fail("op logs: %d vs %d entries", len(seq.Ops), len(f.Ops))
	}
	if res := f.Residual(d); res > 1e-13 {
		return fail("residual %v", res)
	}
	fmt.Println("qr dist equal to sequential")
	return 0
}

// TestFactorizeVSADistOverTCPProcesses runs the factorization as 2 real OS
// processes over loopback TCP and asserts the result is elementwise equal
// to the sequential reference (checked inside the rank-0 process).
func TestFactorizeVSADistOverTCPProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	const n = 2
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	peerList := strings.Join(addrs, ",")

	cmds := make([]*exec.Cmd, n)
	outs := make([]strings.Builder, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, "-test.run=^$")
		cmd.Env = append(os.Environ(),
			distEnvRole+"=1",
			fmt.Sprintf("%s=%d", distEnvRank, i),
			distEnvPeers+"="+peerList,
		)
		cmd.Stdout = &outs[i]
		cmd.Stderr = &outs[i]
		if err := cmd.Start(); err != nil {
			t.Fatalf("start rank %d: %v", i, err)
		}
		cmds[i] = cmd
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Errorf("rank %d failed: %v\n%s", i, err, outs[i].String())
		}
	}
	if !strings.Contains(outs[0].String(), "qr dist equal to sequential") {
		t.Errorf("rank 0 did not verify equality:\n%s", outs[0].String())
	}
}
