package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pulsarqr/internal/matrix"
)

const tol = 1e-12

// explicitH builds the dense Householder matrix I − tau·v·vᵀ.
func explicitH(tau float64, v []float64) *matrix.Mat {
	n := len(v)
	h := matrix.Identity(n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			h.Add(i, j, -tau*v[i]*v[j])
		}
	}
	return h
}

func TestDlarfgAnnihilates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 17} {
		alpha := 2*rng.Float64() - 1
		x := make([]float64, n-1)
		for i := range x {
			x[i] = 2*rng.Float64() - 1
		}
		orig := append([]float64{alpha}, x...)
		a := alpha
		tau := Dlarfg(&a, x)
		v := append([]float64{1}, x...)
		res := explicitH(tau, v).Mul(matrix.FromColMajor(n, 1, n, orig))
		if math.Abs(res.At(0, 0)-a) > tol {
			t.Fatalf("n=%d: beta mismatch %v vs %v", n, res.At(0, 0), a)
		}
		for i := 1; i < n; i++ {
			if math.Abs(res.At(i, 0)) > tol {
				t.Fatalf("n=%d: entry %d not annihilated: %v", n, i, res.At(i, 0))
			}
		}
		// Norm preservation.
		want := 0.0
		for _, u := range orig {
			want += u * u
		}
		if math.Abs(a*a-want) > 1e-11 {
			t.Fatalf("n=%d: norm not preserved", n)
		}
	}
}

func TestDlarfgZeroTail(t *testing.T) {
	a := -3.5
	tau := Dlarfg(&a, []float64{0, 0})
	if tau != 0 || a != -3.5 {
		t.Fatal("zero tail must yield identity reflector")
	}
	a = 2.0
	tau = Dlarfg(&a, nil)
	if tau != 0 || a != 2.0 {
		t.Fatal("empty tail must yield identity reflector")
	}
}

// geqrtQ builds the explicit m×m Q from a Dgeqrt output by applying Q to
// the identity.
func geqrtQ(ib int, v, tm *matrix.Mat) *matrix.Mat {
	q := matrix.Identity(v.Rows)
	Dormqr(false, ib, v, tm, q)
	return q
}

// upperTrap extracts the m×n upper-trapezoidal R from a factored tile.
func upperTrap(a *matrix.Mat) *matrix.Mat {
	r := matrix.New(a.Rows, a.Cols)
	for j := 0; j < a.Cols; j++ {
		for i := 0; i <= j && i < a.Rows; i++ {
			r.Set(i, j, a.At(i, j))
		}
	}
	return r
}

func checkOrtho(t *testing.T, q *matrix.Mat, what string) {
	t.Helper()
	qtq := q.Transpose().Mul(q)
	d := matrix.MaxAbsDiff(qtq, matrix.Identity(q.Cols))
	if d > 1e-11 {
		t.Fatalf("%s: ||QᵀQ − I|| = %v", what, d)
	}
}

func TestDgeqrtReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shapes := []struct{ m, n, ib int }{
		{1, 1, 1}, {4, 4, 2}, {8, 8, 3}, {8, 8, 8}, {8, 8, 1},
		{12, 5, 2}, {5, 12, 2}, {7, 7, 4}, {16, 16, 4}, {9, 6, 4},
	}
	for _, s := range shapes {
		a := matrix.NewRand(s.m, s.n, rng)
		orig := a.Clone()
		tm := matrix.New(min(s.ib, min(s.m, s.n)), min(s.m, s.n))
		Dgeqrt(s.ib, a, tm)
		q := geqrtQ(s.ib, a, tm)
		checkOrtho(t, q, "dgeqrt")
		qr := q.Mul(upperTrap(a))
		if d := matrix.MaxAbsDiff(qr, orig); d > 1e-11 {
			t.Fatalf("m=%d n=%d ib=%d: ||QR − A|| = %v", s.m, s.n, s.ib, d)
		}
	}
}

func TestDormqrRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n, ib := 10, 6, 3
	a := matrix.NewRand(m, n, rng)
	tm := matrix.New(ib, n)
	Dgeqrt(ib, a, tm)
	c := matrix.NewRand(m, 4, rng)
	orig := c.Clone()
	Dormqr(true, ib, a, tm, c)  // C ← QᵀC
	Dormqr(false, ib, a, tm, c) // C ← Q QᵀC
	if d := matrix.MaxAbsDiff(c, orig); d > 1e-11 {
		t.Fatalf("Q Qᵀ C != C: %v", d)
	}
}

func TestDormqrMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, n, ib := 9, 5, 2
	a := matrix.NewRand(m, n, rng)
	tm := matrix.New(ib, n)
	Dgeqrt(ib, a, tm)
	q := geqrtQ(ib, a, tm)
	c := matrix.NewRand(m, 3, rng)
	want := q.Transpose().Mul(c)
	Dormqr(true, ib, a, tm, c)
	if d := matrix.MaxAbsDiff(c, want); d > 1e-11 {
		t.Fatalf("dormqr vs explicit: %v", d)
	}
}

// tsFactor runs Dtsqrt (tri=false) or Dttqrt (tri=true) on fresh random
// data and returns everything needed for checks.
func tsFactor(rng *rand.Rand, n, m2, ib int, tri bool) (a1, a2, tm, origStack *matrix.Mat) {
	a1 = matrix.NewRand(n, n, rng)
	// a1 plays the role of an R factor: make it upper triangular.
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			a1.Set(i, j, 0)
		}
	}
	a2 = matrix.NewRand(m2, n, rng)
	if tri {
		for j := 0; j < n; j++ {
			for i := j + 1; i < m2; i++ {
				a2.Set(i, j, 0)
			}
		}
	}
	origStack = matrix.New(n+m2, n)
	origStack.View(0, 0, n, n).CopyFrom(a1)
	origStack.View(n, 0, m2, n).CopyFrom(a2)
	tm = matrix.New(min(ib, n), n)
	if tri {
		Dttqrt(ib, a1, a2, tm)
	} else {
		Dtsqrt(ib, a1, a2, tm)
	}
	return a1, a2, tm, origStack
}

// tsQ builds the explicit (n+m2)×(n+m2) Q of a TS/TT factorization by
// applying Q to the identity through the MQR kernel.
func tsQ(ib int, v2, tm *matrix.Mat, n, m2 int, tri bool) *matrix.Mat {
	q := matrix.New(n+m2, n+m2)
	b1 := matrix.Identity(n+m2).View(0, 0, n, n+m2).Clone()
	b2 := matrix.New(m2, n+m2)
	for i := 0; i < m2; i++ {
		b2.Set(i, n+i, 1)
	}
	if tri {
		Dttmqr(false, ib, v2, tm, b1, b2)
	} else {
		Dtsmqr(false, ib, v2, tm, b1, b2)
	}
	q.View(0, 0, n, n+m2).CopyFrom(b1)
	q.View(n, 0, m2, n+m2).CopyFrom(b2)
	return q
}

func TestDtsqrtReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct{ n, m2, ib int }{
		{1, 1, 1}, {4, 4, 2}, {6, 6, 6}, {6, 6, 1},
		{5, 9, 2}, {9, 3, 4}, {8, 8, 3}, {6, 0, 2},
	}
	for _, c := range cases {
		a1, a2, tm, orig := tsFactor(rng, c.n, c.m2, c.ib, false)
		q := tsQ(c.ib, a2, tm, c.n, c.m2, false)
		checkOrtho(t, q, "dtsqrt")
		// Q · [R; 0] must reproduce the original stack.
		rstack := matrix.New(c.n+c.m2, c.n)
		rstack.View(0, 0, c.n, c.n).CopyFrom(upperTrap(a1))
		got := q.Mul(rstack)
		if d := matrix.MaxAbsDiff(got, orig); d > 1e-11 {
			t.Fatalf("n=%d m2=%d ib=%d: ||Q[R;0] − [A1;A2]|| = %v", c.n, c.m2, c.ib, d)
		}
	}
}

func TestDttqrtReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cases := []struct{ n, m2, ib int }{
		{1, 1, 1}, {4, 4, 2}, {6, 6, 6}, {6, 6, 1}, {8, 8, 3}, {5, 5, 4},
	}
	for _, c := range cases {
		a1, a2, tm, orig := tsFactor(rng, c.n, c.m2, c.ib, true)
		q := tsQ(c.ib, a2, tm, c.n, c.m2, true)
		checkOrtho(t, q, "dttqrt")
		rstack := matrix.New(c.n+c.m2, c.n)
		rstack.View(0, 0, c.n, c.n).CopyFrom(upperTrap(a1))
		got := q.Mul(rstack)
		if d := matrix.MaxAbsDiff(got, orig); d > 1e-11 {
			t.Fatalf("n=%d ib=%d: ||Q[R;0] − [R1;R2]|| = %v", c.n, c.ib, d)
		}
	}
}

func TestDttqrtPreservesForeignLowerParts(t *testing.T) {
	// In the hierarchical algorithm both TT operands carry Householder
	// vectors of earlier factorizations below their diagonals. The kernel
	// must neither read nor write those entries.
	rng := rand.New(rand.NewSource(7))
	n, ib := 6, 2
	mkUpper := func(seed int64) *matrix.Mat {
		r := rand.New(rand.NewSource(seed))
		m := matrix.NewRand(n, n, r)
		for j := 0; j < n; j++ {
			for i := j + 1; i < n; i++ {
				m.Set(i, j, 0)
			}
		}
		return m
	}
	a1c, a2c := mkUpper(10), mkUpper(11)
	tmc := matrix.New(ib, n)
	Dttqrt(ib, a1c.Clone(), a2c.Clone(), tmc) // clean run for reference
	refA1, refA2 := a1c.Clone(), a2c.Clone()
	refT := matrix.New(ib, n)
	Dttqrt(ib, refA1, refA2, refT)

	// Dirty run: poison strictly-lower parts with garbage.
	a1d, a2d := a1c.Clone(), a2c.Clone()
	garbage := func(m *matrix.Mat, base float64) {
		for j := 0; j < n; j++ {
			for i := j + 1; i < n; i++ {
				m.Set(i, j, base+float64(i*n+j))
			}
		}
	}
	garbage(a1d, 1e6)
	garbage(a2d, -1e6)
	a1dOrig, a2dOrig := a1d.Clone(), a2d.Clone()
	tmd := matrix.New(ib, n)
	Dttqrt(ib, a1d, a2d, tmd)

	// Upper parts must match the clean run exactly.
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			if a1d.At(i, j) != refA1.At(i, j) || a2d.At(i, j) != refA2.At(i, j) {
				t.Fatalf("garbage below diagonal affected results at (%d,%d)", i, j)
			}
		}
		for i := j + 1; i < n; i++ {
			if a1d.At(i, j) != a1dOrig.At(i, j) || a2d.At(i, j) != a2dOrig.At(i, j) {
				t.Fatalf("kernel overwrote foreign data at (%d,%d)", i, j)
			}
		}
	}
	if matrix.MaxAbsDiff(tmd, refT) != 0 {
		t.Fatal("T factors differ between clean and dirty runs")
	}
	_ = rng
}

func TestDttmqrPreservesForeignData(t *testing.T) {
	// Dttmqr's v2 tile carries foreign reflectors below its diagonal, and
	// B2 may have rows beyond the reflector span that must stay untouched.
	rng := rand.New(rand.NewSource(8))
	n, m2, ib, nc := 5, 8, 2, 4
	a1, a2, tm, _ := tsFactor(rng, n, n, ib, true)
	_ = a1
	b1 := matrix.NewRand(n, nc, rng)
	b2 := matrix.NewRand(m2, nc, rng)
	b1ref, b2ref := b1.Clone(), b2.Clone()
	Dttmqr(true, ib, a2, tm, b1ref, b2ref)

	// Dirty v2: poison below-diagonal.
	v2d := a2.Clone()
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			v2d.Set(i, j, 1e9)
		}
	}
	b1d, b2d := b1.Clone(), b2.Clone()
	Dttmqr(true, ib, v2d, tm, b1d, b2d)
	if matrix.MaxAbsDiff(b1d, b1ref) != 0 || matrix.MaxAbsDiff(b2d, b2ref) != 0 {
		t.Fatal("dttmqr read foreign below-diagonal data")
	}
	// Rows n..m2-1 of B2 must be untouched.
	for j := 0; j < nc; j++ {
		for i := n; i < m2; i++ {
			if b2d.At(i, j) != b2.At(i, j) {
				t.Fatalf("dttmqr wrote beyond reflector span at (%d,%d)", i, j)
			}
		}
	}
}

func TestDtsmqrMatchesExplicitQ(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, m2, ib, nc := 5, 7, 2, 3
	_, a2, tm, _ := tsFactor(rng, n, m2, ib, false)
	q := tsQ(ib, a2, tm, n, m2, false)
	b1 := matrix.NewRand(n+2, nc, rng) // extra rows beyond k must be ignored
	b2 := matrix.NewRand(m2, nc, rng)
	stack := matrix.New(n+m2, nc)
	stack.View(0, 0, n, nc).CopyFrom(b1.View(0, 0, n, nc))
	stack.View(n, 0, m2, nc).CopyFrom(b2)
	want := q.Transpose().Mul(stack)
	b1orig := b1.Clone()
	Dtsmqr(true, ib, a2, tm, b1, b2)
	for j := 0; j < nc; j++ {
		for i := 0; i < n; i++ {
			if math.Abs(b1.At(i, j)-want.At(i, j)) > 1e-11 {
				t.Fatalf("b1 mismatch (%d,%d)", i, j)
			}
		}
		for i := n; i < n+2; i++ {
			if b1.At(i, j) != b1orig.At(i, j) {
				t.Fatal("dtsmqr touched b1 rows beyond k")
			}
		}
		for i := 0; i < m2; i++ {
			if math.Abs(b2.At(i, j)-want.At(n+i, j)) > 1e-11 {
				t.Fatalf("b2 mismatch (%d,%d)", i, j)
			}
		}
	}
}

func TestTSRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(7) + 1
		m2 := rng.Intn(8)
		ib := rng.Intn(n) + 1
		tri := rng.Intn(2) == 0
		if tri {
			m2 = n
		}
		_, a2, tm, _ := tsFactor(rng, n, m2, ib, tri)
		nc := rng.Intn(4) + 1
		b1 := matrix.NewRand(n, nc, rng)
		b2 := matrix.NewRand(m2, nc, rng)
		o1, o2 := b1.Clone(), b2.Clone()
		if tri {
			Dttmqr(true, ib, a2, tm, b1, b2)
			Dttmqr(false, ib, a2, tm, b1, b2)
		} else {
			Dtsmqr(true, ib, a2, tm, b1, b2)
			Dtsmqr(false, ib, a2, tm, b1, b2)
		}
		return matrix.MaxAbsDiff(b1, o1) < 1e-10 && matrix.MaxAbsDiff(b2, o2) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGeqrtRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(12) + 1
		n := rng.Intn(12) + 1
		k := min(m, n)
		ib := rng.Intn(k) + 1
		a := matrix.NewRand(m, n, rng)
		orig := a.Clone()
		tm := matrix.New(min(ib, k), k)
		Dgeqrt(ib, a, tm)
		q := geqrtQ(ib, a, tm)
		return matrix.MaxAbsDiff(q.Mul(upperTrap(a)), orig) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFlopsPositiveAndOrdered(t *testing.T) {
	b := 64
	if FlopsQR(4*b, b) <= 0 || FlopsGeqrt(b, b) <= 0 {
		t.Fatal("flop counts must be positive")
	}
	// TT must be cheaper than TS at equal sizes (the point of triangles).
	if FlopsTtqrt(b) >= FlopsTsqrt(b, b) {
		t.Fatal("ttqrt should cost less than tsqrt")
	}
	if FlopsTtmqr(b, b) >= FlopsTsmqr(b, b, b) {
		t.Fatal("ttmqr should cost less than tsmqr")
	}
	// QR flops grow with m.
	if FlopsQR(8*b, b) <= FlopsQR(4*b, b) {
		t.Fatal("flops must grow with m")
	}
}
