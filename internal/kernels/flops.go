package kernels

// Flop counts for the tile kernels. These follow the operation counts of
// the implementations in this package (including T-factor formation) and
// are used by the discrete-event simulator to cost tasks. Reported Gflop/s
// figures divide the conventional factorization count FlopsQR by time, as
// is customary for tree-based QR, so the extra flops of the TT kernels show
// up as time, never as inflated rates.

// FlopsQR is the conventional flop count of a Householder QR of an m×n
// matrix: 2n²(m − n/3).
func FlopsQR(m, n int) float64 {
	fm, fn := float64(m), float64(n)
	return 2 * fn * fn * (fm - fn/3)
}

// FlopsGeqrt counts Dgeqrt on an m×n tile: the factorization itself plus
// block T formation.
func FlopsGeqrt(m, n int) float64 {
	fm, fn := float64(m), float64(n)
	k := fn
	if fm < fn {
		k = fm
	}
	// Factor: 2k²(m − k/3) + low order; T: ≈ k²(m − k/3).
	return 3 * k * k * (fm - k/3)
}

// FlopsOrmqr counts Dormqr applying k reflectors of height m to an m×n
// tile (both triangular and rectangular gemm parts plus the T multiply).
func FlopsOrmqr(m, n, k int) float64 {
	fm, fn, fk := float64(m), float64(n), float64(k)
	return 4*fm*fk*fn - fk*fk*fn
}

// FlopsTsqrt counts Dtsqrt on [R n×n; A2 m2×n]: trailing updates plus T.
func FlopsTsqrt(m2, n int) float64 {
	fm, fn := float64(m2), float64(n)
	return 3 * fm * fn * fn
}

// FlopsTsmqr counts Dtsmqr applying k reflectors with dense part height m2
// to a pair of tiles with nc columns.
func FlopsTsmqr(m2, k, nc int) float64 {
	fm, fk, fc := float64(m2), float64(k), float64(nc)
	return 4*fm*fk*fc + fk*fk*fc
}

// FlopsTtqrt counts Dttqrt on two stacked n×n triangles; roughly half the
// TS cost thanks to the triangular reflectors.
func FlopsTtqrt(n int) float64 {
	fn := float64(n)
	return (4.0 / 3.0) * fn * fn * fn
}

// FlopsTtmqr counts Dttmqr with k triangular reflectors applied to a pair
// of tiles with nc columns.
func FlopsTtmqr(k, nc int) float64 {
	fk, fc := float64(k), float64(nc)
	return 3 * fk * fk * fc
}
