//go:build !race

package kernels

const raceEnabled = false
