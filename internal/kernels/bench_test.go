package kernels

import (
	"math/rand"
	"testing"

	"pulsarqr/internal/matrix"
)

// Steady-state kernel benchmarks at the qrbench real-run tile shape
// (nb=128, ib=32). Each holds one Workspace across iterations, the way a
// runtime worker does, and reports allocations: the zero-alloc contract of
// the workspace plumbing is locked in by TestKernelSteadyStateAllocs below,
// and visible here as 0 allocs/op.

const benchNB, benchIB = 128, 32

func benchWorkspaceSetup() (ws *Workspace, a1u, a2, t *matrix.Mat) {
	rng := rand.New(rand.NewSource(1))
	a1u = matrix.NewRand(benchNB, benchNB, rng).UpperTriangle()
	a2 = matrix.NewRand(benchNB, benchNB, rng)
	t = matrix.New(benchIB, benchNB)
	return NewWorkspace(), a1u, a2, t
}

func BenchmarkDgeqrt(b *testing.B) {
	ws, _, src, t := benchWorkspaceSetup()
	a := src.Clone()
	DgeqrtWS(ws, benchIB, a, t) // grow workspace buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.CopyFrom(src)
		DgeqrtWS(ws, benchIB, a, t)
	}
	b.ReportMetric(FlopsGeqrt(benchNB, benchNB)*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop/s")
}

func BenchmarkDtsqrt(b *testing.B) {
	ws, r0, src, t := benchWorkspaceSetup()
	r := r0.Clone()
	a2 := src.Clone()
	DtsqrtWS(ws, benchIB, r, a2, t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.CopyFrom(r0)
		a2.CopyFrom(src)
		DtsqrtWS(ws, benchIB, r, a2, t)
	}
	b.ReportMetric(FlopsTsqrt(benchNB, benchNB)*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop/s")
}

func BenchmarkDttqrt(b *testing.B) {
	ws, r0, srcFull, t := benchWorkspaceSetup()
	src := srcFull.UpperTriangle()
	r := r0.Clone()
	a2 := src.Clone()
	DttqrtWS(ws, benchIB, r, a2, t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.CopyFrom(r0)
		a2.CopyFrom(src)
		DttqrtWS(ws, benchIB, r, a2, t)
	}
	b.ReportMetric(FlopsTtqrt(benchNB)*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop/s")
}

func BenchmarkDormqr(b *testing.B) {
	ws, _, v, t := benchWorkspaceSetup()
	DgeqrtWS(ws, benchIB, v, t)
	c := matrix.NewRand(benchNB, benchNB, rand.New(rand.NewSource(3)))
	DormqrWS(ws, true, benchIB, v, t, c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DormqrWS(ws, true, benchIB, v, t, c)
	}
	b.ReportMetric(FlopsOrmqr(benchNB, benchNB, benchNB)*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop/s")
}

func BenchmarkDtsmqr(b *testing.B) {
	ws, r, v2, t := benchWorkspaceSetup()
	DtsqrtWS(ws, benchIB, r, v2, t)
	rng := rand.New(rand.NewSource(4))
	c1 := matrix.NewRand(benchNB, benchNB, rng)
	c2 := matrix.NewRand(benchNB, benchNB, rng)
	DtsmqrWS(ws, true, benchIB, v2, t, c1, c2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DtsmqrWS(ws, true, benchIB, v2, t, c1, c2)
	}
	b.ReportMetric(FlopsTsmqr(benchNB, benchNB, benchNB)*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop/s")
}

func BenchmarkDttmqr(b *testing.B) {
	ws, r, v2full, t := benchWorkspaceSetup()
	v2 := v2full.UpperTriangle()
	DttqrtWS(ws, benchIB, r, v2, t)
	rng := rand.New(rand.NewSource(5))
	c1 := matrix.NewRand(benchNB, benchNB, rng)
	c2 := matrix.NewRand(benchNB, benchNB, rng)
	DttmqrWS(ws, true, benchIB, v2, t, c1, c2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DttmqrWS(ws, true, benchIB, v2, t, c1, c2)
	}
	b.ReportMetric(FlopsTtmqr(benchNB, benchNB)*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop/s")
}

// TestKernelSteadyStateAllocs pins the zero-alloc contract independently of
// benchmark flags: once a workspace has warmed up, the apply kernels must
// not allocate at all.
func TestKernelSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool sheds items under the race detector; alloc counts are meaningless")
	}
	ws, r, v2, tt := benchWorkspaceSetup()
	DtsqrtWS(ws, benchIB, r, v2, tt)
	rng := rand.New(rand.NewSource(6))
	c1 := matrix.NewRand(benchNB, benchNB, rng)
	c2 := matrix.NewRand(benchNB, benchNB, rng)
	DtsmqrWS(ws, true, benchIB, v2, tt, c1, c2) // warm
	n := testing.AllocsPerRun(10, func() {
		DtsmqrWS(ws, true, benchIB, v2, tt, c1, c2)
	})
	if n != 0 {
		t.Errorf("Dtsmqr steady state allocates %.1f objects/op, want 0", n)
	}
	v := matrix.NewRand(benchNB, benchNB, rng)
	tg := matrix.New(benchIB, benchNB)
	DgeqrtWS(ws, benchIB, v, tg)
	c := matrix.NewRand(benchNB, benchNB, rng)
	DormqrWS(ws, true, benchIB, v, tg, c) // warm
	n = testing.AllocsPerRun(10, func() {
		DormqrWS(ws, true, benchIB, v, tg, c)
	})
	if n != 0 {
		t.Errorf("Dormqr steady state allocates %.1f objects/op, want 0", n)
	}
}
