package kernels

import (
	"fmt"
	"math"

	"pulsarqr/internal/blas"
	"pulsarqr/internal/matrix"
)

// Dpotrf computes the Cholesky factorization A = L·Lᵀ of the symmetric
// positive-definite n×n tile a, storing L in the lower triangle (the
// strictly-upper part is not referenced). It returns an error naming the
// first non-positive pivot when a is not positive definite, matching
// LAPACK's info convention.
func Dpotrf(a *matrix.Mat) error {
	n := a.Rows
	if a.Cols != n {
		return fmt.Errorf("kernels: Dpotrf needs a square tile, got %dx%d", n, a.Cols)
	}
	for j := 0; j < n; j++ {
		// d = a[j][j] − Σ l[j][k]².
		d := a.At(j, j) - blas.Ddot(j, a.Data[j:], a.LD, a.Data[j:], a.LD)
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("kernels: Dpotrf: leading minor of order %d is not positive definite", j+1)
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		if j+1 < n {
			// Column below the diagonal: a[i][j] = (a[i][j] − Σ) / d.
			blas.Dgemv(false, n-j-1, j, -1,
				a.Data[j+1:], a.LD, a.Data[j:], a.LD, 1, a.Data[j+1+j*a.LD:], 1)
			blas.Dscal(n-j-1, 1/d, a.Data[j+1+j*a.LD:], 1)
		}
	}
	return nil
}

// FlopsPotrf counts Dpotrf on an n×n tile.
func FlopsPotrf(n int) float64 {
	fn := float64(n)
	return fn * fn * fn / 3
}

// FlopsTrsmRight counts the triangular solve of an m×n tile against an
// n×n triangle.
func FlopsTrsmRight(m, n int) float64 {
	return float64(m) * float64(n) * float64(n)
}

// FlopsSyrk counts the symmetric rank-nb update of an n×n tile.
func FlopsSyrk(n, k int) float64 {
	return float64(n) * float64(n) * float64(k)
}

// FlopsGemmTile counts C -= A·Bᵀ on nb×nb tiles.
func FlopsGemmTile(n int) float64 {
	fn := float64(n)
	return 2 * fn * fn * fn
}
