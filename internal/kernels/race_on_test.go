//go:build race

package kernels

// raceEnabled reports whether the race detector is active; sync.Pool
// deliberately drops items under it, so alloc-count assertions are skipped.
const raceEnabled = true
