package kernels

import (
	"sync"

	"pulsarqr/internal/matrix"
)

// Workspace holds the scratch storage a kernel invocation needs — the W
// panel of the block-reflector applies, the zero-padded V2 copy of the
// triangular kernels, Dgeqrt's tau/work vectors, and reusable matrix
// headers for the per-block operand views — so that steady-state kernel
// fires allocate nothing.
//
// Ownership rules (see docs/KERNELS.md): a Workspace belongs to exactly one
// goroutine at a time and is NOT safe for concurrent use. The runtime gives
// each worker thread its own via pulsar.Config.WorkerState; the sequential
// reference owns one per factorization; callers without one pass nil and
// the entry points borrow from a process-wide sync.Pool. Buffers grow
// monotonically and are never shrunk or zeroed between calls — every kernel
// fully overwrites the region it reads, which is what keeps results
// independent of buffer history (the determinism contract).
type Workspace struct {
	tau    []float64 // Dgeqrt reflector scaling factors
	work   []float64 // dgeqr2/dlarft vector scratch
	wvec   []float64 // tsqrtGeneric T-column scratch
	wbuf   []float64 // applyTS/dlarfb/applyFused W panel storage
	w2buf  []float64 // applyFused op(T)·W panel storage
	v2b    []float64 // v2Block zero-padded triangular copy storage
	pdense []float64 // panel-cache dense-expansion scratch (T, V1)

	vView, tView, c1View, c2View matrix.Mat // per-block operand view headers
	wMat, w2Mat, v2Mat           matrix.Mat // W/W2 panels and V2 copy headers

	auxBuf [2][]float64  // Aux backing storage
	auxMat [2]matrix.Mat // Aux headers

	panels panelCache // packed reflector panels, keyed by tile identity+generation
}

// NewWorkspace returns an empty workspace; buffers grow on demand and are
// retained across kernel calls.
func NewWorkspace() *Workspace { return &Workspace{} }

// wsPool backs the nil-Workspace convenience path of the exported kernels.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// BorrowWorkspace takes a workspace from the process-wide pool; pair it
// with ReturnWorkspace. Callers on a hot path should hold their own
// workspace instead (one per goroutine) — the pool exists for convenience
// entry points and fallbacks.
func BorrowWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// ReturnWorkspace gives a borrowed workspace back to the pool.
func ReturnWorkspace(ws *Workspace) { wsPool.Put(ws) }

// grow returns buf resized to n elements, reallocating only when capacity
// is insufficient. Contents are unspecified: callers must fully overwrite
// whatever they later read.
func grow(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// Aux returns one of the workspace's auxiliary scratch matrices (slot 0 or
// 1) shaped as a compact rows×cols matrix. The backing buffer grows on
// demand and is retained across calls; contents are unspecified, so callers
// must fully overwrite whatever they later read. Auxiliary matrices let
// callers outside this package (e.g. the batched small-QR fast path) run
// zero-alloc in steady state on the same per-worker workspace the tile
// kernels use — subject to the same single-goroutine ownership rule.
func (ws *Workspace) Aux(slot, rows, cols int) *matrix.Mat {
	return matInto(&ws.auxMat[slot], &ws.auxBuf[slot], rows, cols)
}

// matInto shapes one of the workspace's matrix headers as a compact
// rows×cols matrix over the given backing buffer and returns it.
func matInto(hdr *matrix.Mat, buf *[]float64, rows, cols int) *matrix.Mat {
	ld := rows
	if ld < 1 {
		ld = 1
	}
	hdr.Rows, hdr.Cols, hdr.LD = rows, cols, ld
	hdr.Data = grow(buf, ld*cols)
	return hdr
}
