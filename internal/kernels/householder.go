// Package kernels implements the six tile kernels of the tree-based QR
// factorization — Dgeqrt, Dormqr, Dtsqrt, Dtsmqr, Dttqrt, Dttmqr — plus the
// Householder primitives they are built from. These are functional
// equivalents of the PLASMA core_blas kernels referenced by the paper.
//
// Conventions (all matrices column-major, tiles from package matrix):
//
//   - A factored tile holds R in its upper triangle and the Householder
//     vectors V (unit lower-trapezoidal, implicit ones on the diagonal)
//     below it.
//   - T factors are stored as an ib×n matrix: for the column block starting
//     at column j with width sb = min(ib, n−j), T[0:sb, j:j+sb] is the
//     upper-triangular block-reflector factor, so a block reflector is
//     H = I − V·T·Vᵀ.
//   - Dtsqrt factors a pair [R; A2] with R n×n upper triangular on top; the
//     top parts of its reflectors are implicit identity columns and only the
//     dense V2 part is stored in A2. Dttqrt is the same with A2 (and hence
//     V2) upper triangular, at roughly half the flops.
package kernels

import (
	"math"

	"pulsarqr/internal/blas"
	"pulsarqr/internal/matrix"
)

// Dlarfg generates an elementary Householder reflector H such that
// H · [alpha; x] = [beta; 0] with H = I − tau·v·vᵀ and v = [1; x_out].
// alpha is updated to beta and x is overwritten with the tail of v.
// The returned tau is zero when no reflection is needed (H = I).
func Dlarfg(alpha *float64, x []float64) (tau float64) {
	xnorm := blas.Dnrm2(len(x), x, 1)
	if xnorm == 0 {
		return 0
	}
	a := *alpha
	beta := -math.Copysign(math.Hypot(a, xnorm), a)
	tau = (beta - a) / beta
	blas.Dscal(len(x), 1/(a-beta), x, 1)
	*alpha = beta
	return tau
}

// dgeqr2 computes the unblocked QR factorization of the panel view a
// (m×n, m ≥ 1), storing reflectors below the diagonal and R on and above
// it. tau must have length ≥ min(m, n). work must have length ≥ n.
func dgeqr2(a *matrix.Mat, tau, work []float64) {
	m, n, ld := a.Rows, a.Cols, a.LD
	k := min(m, n)
	for j := 0; j < k; j++ {
		col := a.Data[j+j*ld:]
		tau[j] = Dlarfg(&col[0], col[1:m-j])
		if tau[j] != 0 && j+1 < n {
			// Apply H = I − tau v vᵀ to a[j:m, j+1:n] with v = [1; col tail].
			d := col[0]
			col[0] = 1
			v := col[:m-j]
			c := a.Data[j+(j+1)*ld:]
			nc := n - j - 1
			w := work[:nc]
			// w = Cᵀ v
			blas.Dgemv(true, m-j, nc, 1, c, ld, v, 1, 0, w, 1)
			// C -= tau v wᵀ
			blas.Dger(m-j, nc, -tau[j], v, 1, w, 1, c, ld)
			col[0] = d
		}
	}
}

// dlarft forms the upper-triangular factor T of the block reflector
// H = I − V·T·Vᵀ for k forward, columnwise reflectors. v is m×k unit
// lower-trapezoidal (stored entries below the diagonal), t is at least k×k,
// work must have length ≥ k.
func dlarft(v *matrix.Mat, tau []float64, t *matrix.Mat, work []float64) {
	m, k := v.Rows, len(tau)
	for i := 0; i < k; i++ {
		if tau[i] == 0 {
			for l := 0; l <= i; l++ {
				t.Set(l, i, 0)
			}
			continue
		}
		if i > 0 {
			w := work[:i]
			// w = V[:, 0:i]ᵀ · v_i with v_i = e_i + V[i+1:m, i].
			for l := 0; l < i; l++ {
				w[l] = v.At(i, l)
			}
			if i+1 < m {
				blas.Dgemv(true, m-i-1, i, 1,
					v.Data[i+1:], v.LD, v.Data[i+1+i*v.LD:], 1, 1, w, 1)
			}
			// T[0:i, i] = −tau_i · T[0:i, 0:i] · w
			blas.Dtrmv(true, false, false, i, t.Data, t.LD, w, 1)
			for l := 0; l < i; l++ {
				t.Set(l, i, -tau[i]*w[l])
			}
		}
		t.Set(i, i, tau[i])
	}
}

// dlarfb applies the block reflector H = I − V·T·Vᵀ (or its transpose when
// trans is true) from the left to C. V is m×k unit lower-trapezoidal with
// m ≥ k, T is the k×k upper-triangular view, C is m×n. The W panel lives in
// ws and is fully overwritten before use.
func dlarfb(ws *Workspace, trans bool, v, t, c *matrix.Mat) {
	m, k := v.Rows, v.Cols
	n := c.Cols
	if k == 0 || n == 0 || m == 0 {
		return
	}
	w := matInto(&ws.wMat, &ws.wbuf, k, n)
	// W = V1ᵀ C1  (V1 = top k×k unit lower triangle of V).
	for j := 0; j < n; j++ {
		copy(w.Data[j*w.LD:j*w.LD+k], c.Data[j*c.LD:j*c.LD+k])
	}
	blas.Dtrmm(true, false, true, true, k, n, 1, v.Data, v.LD, w.Data, w.LD)
	if m > k {
		// W += V2ᵀ C2.
		blas.Dgemm(true, false, k, n, m-k, 1,
			v.Data[k:], v.LD, c.Data[k:], c.LD, 1, w.Data, w.LD)
	}
	// W := op(T) W.
	blas.Dtrmm(true, true, trans, false, k, n, 1, t.Data, t.LD, w.Data, w.LD)
	if m > k {
		// C2 -= V2 W.
		blas.Dgemm(false, false, m-k, n, k, -1,
			v.Data[k:], v.LD, w.Data, w.LD, 1, c.Data[k:], c.LD)
	}
	// C1 -= V1 W.
	blas.Dtrmm(true, false, false, true, k, n, 1, v.Data, v.LD, w.Data, w.LD)
	for j := 0; j < n; j++ {
		ccol := c.Data[j*c.LD : j*c.LD+k]
		wcol := w.Data[j*w.LD : j*w.LD+k]
		for i := range wcol {
			ccol[i] -= wcol[i]
		}
	}
}
