package kernels

import (
	"pulsarqr/internal/blas"
	"pulsarqr/internal/matrix"
)

// Panel cache. During a trailing-update sweep the same V and T tiles are
// applied to every tile of a row: without caching, each firing re-packs the
// identical reflector panels for the packed GEMM engine. The cache keeps
// the packed forms in the per-worker Workspace, keyed by the source tile's
// identity (backing-array address) plus the block coordinates, the packing
// variant, and the active micro-kernel geometry (blas.KernelID — packings
// from one geometry are garbage to another).
//
// Correctness does not rest on cooperative invalidation: every entry
// records the source's write generation (matrix.WriteGen) at pack time and
// a hit requires the generation to still match. Factor and apply kernels
// bump the generation of every tile they write (matrix.NoteWrite), as do
// matrix.New and matrix.FromColMajor for fresh or wrapped storage — so a
// recycled address, a re-factored tile, or a tile decoded off the wire all
// miss and re-pack. A stale entry is therefore unreachable; eviction is
// purely a capacity concern (LRU clock).
//
// The cached forms are packed left-hand-side operands for
// blas.DgemmPackedLHS, which replays them through the same macro-kernel as
// a fresh pack — cached and uncached firings produce bitwise-identical
// results.

// panelCacheSize is the per-workspace entry count. A sweep holds one (V,T)
// pair live: k/ib column blocks × up to 6 variants — 32 covers an
// nb=192/ib=32 sweep in both Q and Qᵀ directions with room to spare.
const panelCacheSize = 32

// Packing variants. V2 is the dense reflector block of the TS/TT kernels
// (or the sub-diagonal block of an ormqr V panel); T is the dense-expanded
// upper-triangular block factor; V1 the dense-expanded unit-lower diagonal
// block of an ormqr V panel. Transposed variants are distinct packings, not
// flags, because PackLHS absorbs the transposition into the layout.
const (
	panelV2T uint8 = iota
	panelV2
	panelT
	panelTT
	panelV1T
	panelV1
)

// panelKey identifies one packed panel: source identity, micro-kernel
// geometry, variant, block origin (i, j) in the source, and logical shape.
type panelKey struct {
	ptr        uintptr
	kernel     uint32
	variant    uint8
	i, j       int32
	rows, cols int32
}

type panelEntry struct {
	key  panelKey
	gen  uint64 // source write generation at pack time
	used uint64 // LRU clock tick of last touch
	buf  []float64
}

type panelCache struct {
	entries      [panelCacheSize]panelEntry
	clock        uint64
	hits, misses uint64
}

// PanelCacheStats reports cumulative packed-panel cache hits and misses,
// for tests and diagnostics.
func (ws *Workspace) PanelCacheStats() (hits, misses uint64) {
	return ws.panels.hits, ws.panels.misses
}

// panelSlot finds or claims the cache slot for (src, variant, block). On a
// hit it returns the packed buffer and true. On a miss it claims a slot
// (the stale entry for the same key if one exists, else the LRU victim),
// records the key and src's current write generation, and returns a
// packLen-sized buffer the caller MUST fill before use.
func (ws *Workspace) panelSlot(src *matrix.Mat, variant uint8, i, j, rows, cols, packLen int) ([]float64, bool) {
	key := panelKey{
		ptr: matrix.DataPtr(src), kernel: blas.KernelID(), variant: variant,
		i: int32(i), j: int32(j), rows: int32(rows), cols: int32(cols),
	}
	gen := matrix.WriteGen(src)
	pc := &ws.panels
	pc.clock++
	victim := &pc.entries[0]
	for idx := range pc.entries {
		e := &pc.entries[idx]
		if e.key == key {
			if e.gen == gen {
				e.used = pc.clock
				pc.hits++
				return e.buf[:packLen], true
			}
			victim = e // same key, stale generation: repack in place
			break
		}
		if e.used < victim.used {
			victim = e
		}
	}
	pc.misses++
	victim.key = key
	victim.gen = gen
	victim.used = pc.clock
	if cap(victim.buf) < packLen {
		victim.buf = make([]float64, packLen)
	}
	return victim.buf[:packLen], false
}

// packedV2Panels returns the cached packed forms of V2ᵀ and V2 for the
// rows×sb reflector block whose first column is column j of v2, starting
// at row i0. In the triangular case the stored column heights vary and the
// entries below them may hold unrelated data, so the pack reads a
// zero-padded copy (v2Block) — the packed panel depends only on stored
// reflector data either way.
func (ws *Workspace) packedV2Panels(v2 *matrix.Mat, i0, j, sb, rows int, tri bool) (pv2t, pv2 []float64) {
	bt, okt := ws.panelSlot(v2, panelV2T, i0, j, rows, sb, blas.PackedLHSLen(sb, rows))
	bn, okn := ws.panelSlot(v2, panelV2, i0, j, rows, sb, blas.PackedLHSLen(rows, sb))
	if okt && okn {
		return bt, bn
	}
	src, lda := v2.Data[i0+j*v2.LD:], v2.LD
	if tri {
		c := v2Block(ws, v2, j, sb, rows, tri)
		src, lda = c.Data, c.LD
	}
	if !okt {
		blas.PackLHS(true, sb, rows, src, lda, bt)
	}
	if !okn {
		blas.PackLHS(false, rows, sb, src, lda, bn)
	}
	return bt, bn
}

// packedTPanel returns the cached packed form of op(T) for the sb×sb
// upper-triangular block factor at columns [j, j+sb) of t, dense-expanded
// (explicit zeros below the diagonal) so the triangular multiply of the
// block-reflector apply lands on the micro-kernel instead of Dtrmv leaves.
func (ws *Workspace) packedTPanel(t *matrix.Mat, j, sb int, trans bool) []float64 {
	variant := panelT
	if trans {
		variant = panelTT
	}
	buf, ok := ws.panelSlot(t, variant, 0, j, sb, sb, blas.PackedLHSLen(sb, sb))
	if ok {
		return buf
	}
	d := grow(&ws.pdense, sb*sb)
	for l := 0; l < sb; l++ {
		col := d[l*sb : l*sb+sb]
		src := t.Data[(j+l)*t.LD:]
		for i := 0; i <= l; i++ {
			col[i] = src[i]
		}
		for i := l + 1; i < sb; i++ {
			col[i] = 0
		}
	}
	blas.PackLHS(trans, sb, sb, d, sb, buf)
	return buf
}

// packedV1Panels returns the cached packed forms of V1ᵀ and V1 for the
// sb×sb unit-lower-triangular diagonal block of an ormqr reflector panel at
// (j, j) of v, dense-expanded (explicit unit diagonal, zeros above).
func (ws *Workspace) packedV1Panels(v *matrix.Mat, j, sb int) (pv1t, pv1 []float64) {
	n := blas.PackedLHSLen(sb, sb)
	bt, okt := ws.panelSlot(v, panelV1T, j, j, sb, sb, n)
	bn, okn := ws.panelSlot(v, panelV1, j, j, sb, sb, n)
	if okt && okn {
		return bt, bn
	}
	d := grow(&ws.pdense, sb*sb)
	for l := 0; l < sb; l++ {
		col := d[l*sb : l*sb+sb]
		src := v.Data[(j+l)+(j+l)*v.LD:]
		for i := 0; i < l; i++ {
			col[i] = 0
		}
		col[l] = 1
		for i := l + 1; i < sb; i++ {
			col[i] = src[i-l]
		}
	}
	if !okt {
		blas.PackLHS(true, sb, sb, d, sb, bt)
	}
	if !okn {
		blas.PackLHS(false, sb, sb, d, sb, bn)
	}
	return bt, bn
}
