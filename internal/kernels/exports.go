package kernels

import "pulsarqr/internal/matrix"

// Dgeqr2 computes the unblocked Householder QR of the m×n panel a,
// storing R on and above the diagonal and the reflectors below it; tau
// receives min(m,n) scaling factors. Exported for the block (LAPACK-style)
// algorithm used by the ScaLAPACK baseline.
func Dgeqr2(a *matrix.Mat, tau []float64) {
	work := make([]float64, max(a.Rows, a.Cols))
	dgeqr2(a, tau, work)
}

// Dlarft forms the k×k upper-triangular factor T of the block reflector
// defined by the unit lower-trapezoidal v (m×k) and tau.
func Dlarft(v *matrix.Mat, tau []float64, t *matrix.Mat) {
	work := make([]float64, len(tau))
	dlarft(v, tau, t, work)
}

// Dlarfb applies the block reflector H = I − V·T·Vᵀ (or Hᵀ when trans) to
// c from the left.
func Dlarfb(trans bool, v, t, c *matrix.Mat) {
	dlarfb(trans, v, t, c)
}
