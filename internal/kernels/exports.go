package kernels

import "pulsarqr/internal/matrix"

// Dgeqr2 computes the unblocked Householder QR of the m×n panel a,
// storing R on and above the diagonal and the reflectors below it; tau
// receives min(m,n) scaling factors. Exported for the block (LAPACK-style)
// algorithm used by the ScaLAPACK baseline.
func Dgeqr2(a *matrix.Mat, tau []float64) {
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	dgeqr2(a, tau, grow(&ws.work, max(a.Rows, a.Cols)))
}

// Dlarft forms the k×k upper-triangular factor T of the block reflector
// defined by the unit lower-trapezoidal v (m×k) and tau.
func Dlarft(v *matrix.Mat, tau []float64, t *matrix.Mat) {
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	dlarft(v, tau, t, grow(&ws.work, len(tau)))
}

// Dlarfb applies the block reflector H = I − V·T·Vᵀ (or Hᵀ when trans) to
// c from the left.
func Dlarfb(trans bool, v, t, c *matrix.Mat) {
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	dlarfb(ws, trans, v, t, c)
}
