package kernels

import (
	"math/rand"
	"testing"

	"pulsarqr/internal/matrix"
)

// cacheSetup factors a TS pair and returns a warm workspace plus the
// factored (V, T) and a pair of target tiles for Dtsmqr sweeps.
func cacheSetup(nb, ib int) (ws *Workspace, v2, tt, b1, b2 *matrix.Mat) {
	rng := rand.New(rand.NewSource(21))
	a1 := matrix.NewRand(nb, nb, rng).UpperTriangle()
	v2 = matrix.NewRand(nb, nb, rng)
	tt = matrix.New(ib, nb)
	ws = NewWorkspace()
	DtsqrtWS(ws, ib, a1, v2, tt)
	b1 = matrix.NewRand(nb, nb, rng)
	b2 = matrix.NewRand(nb, nb, rng)
	return ws, v2, tt, b1, b2
}

// TestPanelCacheReusesAcrossFirings is the cache's raison d'être: a second
// apply of the same (V, T) pair must hit for every panel and pack nothing.
func TestPanelCacheReusesAcrossFirings(t *testing.T) {
	ws, v2, tt, b1, b2 := cacheSetup(64, 16)
	DtsmqrWS(ws, true, 16, v2, tt, b1, b2) // populate
	h0, m0 := ws.PanelCacheStats()
	DtsmqrWS(ws, true, 16, v2, tt, b1, b2)
	h1, m1 := ws.PanelCacheStats()
	if m1 != m0 {
		t.Errorf("re-applying an unchanged (V,T) repacked %d panels, want 0", m1-m0)
	}
	if h1 == h0 {
		t.Error("re-applying an unchanged (V,T) hit no cached panels")
	}
}

// TestPanelCacheInvalidatesOnRewrite pins the write-generation protocol:
// once the source tiles are rewritten — by a kernel or by a direct store
// followed by NoteWrite — every cached packing of them must miss.
func TestPanelCacheInvalidatesOnRewrite(t *testing.T) {
	ws, v2, tt, b1, b2 := cacheSetup(64, 16)
	DtsmqrWS(ws, true, 16, v2, tt, b1, b2) // populate

	// Kernel rewrite: re-factoring writes v2 and tt and bumps their
	// generations itself.
	rng := rand.New(rand.NewSource(22))
	a1 := matrix.NewRand(64, 64, rng).UpperTriangle()
	DtsqrtWS(ws, 16, a1, v2, tt)
	_, m0 := ws.PanelCacheStats()
	DtsmqrWS(ws, true, 16, v2, tt, b1, b2)
	_, m1 := ws.PanelCacheStats()
	if m1 == m0 {
		t.Fatal("apply after re-factorization reused stale packings")
	}

	// Direct rewrite: a caller mutating tile storage must be able to
	// invalidate with NoteWrite alone.
	DtsmqrWS(ws, true, 16, v2, tt, b1, b2)
	_, m2 := ws.PanelCacheStats()
	v2.Data[0] += 0.5
	matrix.NoteWrite(v2)
	DtsmqrWS(ws, true, 16, v2, tt, b1, b2)
	_, m3 := ws.PanelCacheStats()
	if m3 == m2 {
		t.Fatal("apply after NoteWrite reused stale packings of the mutated tile")
	}
}

// TestPanelCacheBitwiseTransparent checks the cache cannot be observed in
// the results: applying with a warm cache must be bitwise identical to
// applying with a cold workspace, for both Dtsmqr and Dormqr and both
// transpose directions.
func TestPanelCacheBitwiseTransparent(t *testing.T) {
	for _, trans := range []bool{false, true} {
		ws, v2, tt, b1, b2 := cacheSetup(64, 16)
		warm1, warm2 := b1.Clone(), b2.Clone()
		DtsmqrWS(ws, trans, 16, v2, tt, warm1, warm2) // populate cache
		warm1.CopyFrom(b1)
		warm2.CopyFrom(b2)
		DtsmqrWS(ws, trans, 16, v2, tt, warm1, warm2) // cached firing

		cold1, cold2 := b1.Clone(), b2.Clone()
		DtsmqrWS(NewWorkspace(), trans, 16, v2, tt, cold1, cold2)
		for j := 0; j < 64; j++ {
			for i := 0; i < 64; i++ {
				if warm1.At(i, j) != cold1.At(i, j) || warm2.At(i, j) != cold2.At(i, j) {
					t.Fatalf("trans=%v: cached Dtsmqr diverges bitwise from cold at (%d,%d)", trans, i, j)
				}
			}
		}
	}

	rng := rand.New(rand.NewSource(23))
	for _, trans := range []bool{false, true} {
		v := matrix.NewRand(64, 64, rng)
		tg := matrix.New(16, 64)
		ws := NewWorkspace()
		DgeqrtWS(ws, 16, v, tg)
		c := matrix.NewRand(64, 64, rng)
		warm := c.Clone()
		DormqrWS(ws, trans, 16, v, tg, warm) // populate cache
		warm.CopyFrom(c)
		DormqrWS(ws, trans, 16, v, tg, warm) // cached firing
		cold := c.Clone()
		DormqrWS(NewWorkspace(), trans, 16, v, tg, cold)
		for j := 0; j < 64; j++ {
			for i := 0; i < 64; i++ {
				if warm.At(i, j) != cold.At(i, j) {
					t.Fatalf("trans=%v: cached Dormqr diverges bitwise from cold at (%d,%d)", trans, i, j)
				}
			}
		}
	}
}

// TestPanelCacheStatsStartZero guards the diagnostics contract.
func TestPanelCacheStatsStartZero(t *testing.T) {
	if h, m := NewWorkspace().PanelCacheStats(); h != 0 || m != 0 {
		t.Fatalf("fresh workspace reports %d hits, %d misses", h, m)
	}
}
