package kernels

import (
	"fmt"

	"pulsarqr/internal/matrix"
)

// Dgeqrt computes the blocked QR factorization of the m×n tile a with inner
// block size ib. On exit a holds R in its upper triangle and the Householder
// vectors below the diagonal; t (ib×n, at least ib×min(m,n)) holds the
// upper-triangular block-reflector factors, one sb×sb block per column block.
func Dgeqrt(ib int, a, t *matrix.Mat) {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	if k == 0 {
		return
	}
	if ib <= 0 {
		panic(fmt.Sprintf("kernels: Dgeqrt ib=%d", ib))
	}
	if t.Rows < min(ib, k) || t.Cols < k {
		panic(fmt.Sprintf("kernels: Dgeqrt T %dx%d too small for ib=%d k=%d",
			t.Rows, t.Cols, ib, k))
	}
	tau := make([]float64, ib)
	work := make([]float64, max(m, n))
	for j := 0; j < k; j += ib {
		sb := min(ib, k-j)
		panel := a.View(j, j, m-j, sb)
		dgeqr2(panel, tau[:sb], work)
		tb := t.View(0, j, sb, sb)
		dlarft(panel, tau[:sb], tb, work)
		if j+sb < n {
			dlarfb(true, panel, tb, a.View(j, j+sb, m-j, n-j-sb))
		}
	}
}

// Dormqr applies Q (trans=false) or Qᵀ (trans=true) to the m×n matrix c
// from the left, where the reflectors are stored in v (m×nv, k=min(m,nv)
// reflectors, output of Dgeqrt) with block factors in t (ib×k).
func Dormqr(trans bool, ib int, v, t, c *matrix.Mat) {
	m, n := c.Rows, c.Cols
	if v.Rows != m {
		panic(fmt.Sprintf("kernels: Dormqr v rows %d != c rows %d", v.Rows, m))
	}
	k := min(v.Rows, v.Cols)
	if k == 0 || n == 0 {
		return
	}
	blocks := blockStarts(k, ib, trans)
	for _, j := range blocks {
		sb := min(ib, k-j)
		dlarfb(trans, v.View(j, j, m-j, sb), t.View(0, j, sb, sb),
			c.View(j, 0, m-j, n))
	}
}

// blockStarts returns the column-block starting offsets for k reflectors
// with block size ib, forward when fwd is true (Qᵀ application) and
// backward otherwise (Q application).
func blockStarts(k, ib int, fwd bool) []int {
	var s []int
	for j := 0; j < k; j += ib {
		s = append(s, j)
	}
	if !fwd {
		for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
			s[i], s[j] = s[j], s[i]
		}
	}
	return s
}
