package kernels

import (
	"fmt"

	"pulsarqr/internal/matrix"
)

// Dgeqrt computes the blocked QR factorization of the m×n tile a with inner
// block size ib. On exit a holds R in its upper triangle and the Householder
// vectors below the diagonal; t (ib×n, at least ib×min(m,n)) holds the
// upper-triangular block-reflector factors, one sb×sb block per column block.
// Scratch comes from a pooled Workspace; callers that hold one should use
// DgeqrtWS.
func Dgeqrt(ib int, a, t *matrix.Mat) {
	DgeqrtWS(nil, ib, a, t)
}

// DgeqrtWS is Dgeqrt drawing its scratch from ws. A nil ws borrows a
// pooled workspace for the duration of the call.
func DgeqrtWS(ws *Workspace, ib int, a, t *matrix.Mat) {
	if ws == nil {
		ws = wsPool.Get().(*Workspace)
		defer wsPool.Put(ws)
	}
	m, n := a.Rows, a.Cols
	k := min(m, n)
	if k == 0 {
		return
	}
	if ib <= 0 {
		panic(fmt.Sprintf("kernels: Dgeqrt ib=%d", ib))
	}
	if t.Rows < min(ib, k) || t.Cols < k {
		panic(fmt.Sprintf("kernels: Dgeqrt T %dx%d too small for ib=%d k=%d",
			t.Rows, t.Cols, ib, k))
	}
	tau := grow(&ws.tau, ib)
	work := grow(&ws.work, max(m, n))
	for j := 0; j < k; j += ib {
		sb := min(ib, k-j)
		panel := a.ViewInto(&ws.vView, j, j, m-j, sb)
		dgeqr2(panel, tau[:sb], work)
		tb := t.ViewInto(&ws.tView, 0, j, sb, sb)
		dlarft(panel, tau[:sb], tb, work)
		if j+sb < n {
			// Uncached dlarfb: the panel was written moments ago inside
			// this call, so a cached packing could never be reused.
			dlarfb(ws, true, panel, tb, a.ViewInto(&ws.c1View, j, j+sb, m-j, n-j-sb))
		}
	}
	// Both outputs were rewritten: kill any packed panels cached against
	// them (a/t are exactly the V/T tiles later applies pack).
	matrix.NoteWrite(a)
	matrix.NoteWrite(t)
}

// Dormqr applies Q (trans=false) or Qᵀ (trans=true) to the m×n matrix c
// from the left, where the reflectors are stored in v (m×nv, k=min(m,nv)
// reflectors, output of Dgeqrt) with block factors in t (ib×k).
func Dormqr(trans bool, ib int, v, t, c *matrix.Mat) {
	DormqrWS(nil, trans, ib, v, t, c)
}

// DormqrWS is Dormqr drawing its scratch from ws (nil borrows a pooled one).
func DormqrWS(ws *Workspace, trans bool, ib int, v, t, c *matrix.Mat) {
	if ws == nil {
		ws = wsPool.Get().(*Workspace)
		defer wsPool.Put(ws)
	}
	m, n := c.Rows, c.Cols
	if v.Rows != m {
		panic(fmt.Sprintf("kernels: Dormqr v rows %d != c rows %d", v.Rows, m))
	}
	k := min(v.Rows, v.Cols)
	if k == 0 || n == 0 {
		return
	}
	apply := func(j int) {
		sb := min(ib, k-j)
		// The diagonal block V1 (unit lower triangular) and op(T) are
		// dense-expanded and packed once per sweep via the panel cache, so
		// the whole reflector chain runs on the packed micro-kernel; the
		// sub-diagonal block V2 packs like the TS kernels' dense block.
		pv1t, pv1 := ws.packedV1Panels(v, j, sb)
		pt := ws.packedTPanel(t, j, sb, trans)
		rows := m - j - sb
		var pv2t, pv2 []float64
		if rows > 0 {
			pv2t, pv2 = ws.packedV2Panels(v, j+sb, j, sb, rows, false)
		}
		applyFused(ws, pv1t, pv1, pv2t, pv2, pt, sb, rows,
			c.ViewInto(&ws.c1View, j, 0, sb, n),
			c.ViewInto(&ws.c2View, j+sb, 0, rows, n))
	}
	// Column blocks forward for Qᵀ, backward for Q.
	if trans {
		for j := 0; j < k; j += ib {
			apply(j)
		}
	} else {
		for j := (k - 1) / ib * ib; j >= 0; j -= ib {
			apply(j)
		}
	}
	// C was rewritten: kill any packed panels cached against it.
	matrix.NoteWrite(c)
}
