package kernels

import (
	"fmt"

	"pulsarqr/internal/blas"
	"pulsarqr/internal/matrix"
)

// Dtsqrt computes the QR factorization of the stacked pair [A1; A2] where
// a1 is n×n upper triangular (the R factor of an already-factored tile) and
// a2 is a full m2×n tile. On exit a1 holds the updated R, a2 holds the
// dense parts V2 of the reflectors (the top parts are implicit identity
// columns), and t (ib×n) holds the block-reflector factors.
//
// Only the upper triangle of a1 is read or written, so reflector vectors
// stored below a1's diagonal by an earlier Dgeqrt survive intact.
func Dtsqrt(ib int, a1, a2, t *matrix.Mat) {
	DtsqrtWS(nil, ib, a1, a2, t)
}

// DtsqrtWS is Dtsqrt drawing its scratch from ws (nil borrows a pooled one).
func DtsqrtWS(ws *Workspace, ib int, a1, a2, t *matrix.Mat) {
	if ws == nil {
		ws = wsPool.Get().(*Workspace)
		defer wsPool.Put(ws)
	}
	tsqrtGeneric(ws, ib, a1, a2, t, false)
}

// Dttqrt is Dtsqrt for the case where the relevant content of a2 is also
// upper triangular (the meeting of two R factors in a reduction tree). The
// reflector parts V2 stay upper triangular, which roughly halves the flops.
// The strictly-lower part of a2 is neither read nor written, so Householder
// vectors stored there by an earlier Dgeqrt survive intact.
func Dttqrt(ib int, a1, a2, t *matrix.Mat) {
	DttqrtWS(nil, ib, a1, a2, t)
}

// DttqrtWS is Dttqrt drawing its scratch from ws (nil borrows a pooled one).
func DttqrtWS(ws *Workspace, ib int, a1, a2, t *matrix.Mat) {
	if ws == nil {
		ws = wsPool.Get().(*Workspace)
		defer wsPool.Put(ws)
	}
	tsqrtGeneric(ws, ib, a1, a2, t, true)
}

func tsqrtGeneric(ws *Workspace, ib int, a1, a2, t *matrix.Mat, tri bool) {
	n, m2 := a1.Cols, a2.Rows
	if a1.Rows < n {
		panic(fmt.Sprintf("kernels: tsqrt a1 %dx%d not at least square", a1.Rows, n))
	}
	if a2.Cols != n {
		panic(fmt.Sprintf("kernels: tsqrt a2 cols %d != a1 cols %d", a2.Cols, n))
	}
	if n == 0 {
		return
	}
	if t.Rows < min(ib, n) || t.Cols < n {
		panic(fmt.Sprintf("kernels: tsqrt T %dx%d too small for ib=%d n=%d",
			t.Rows, t.Cols, ib, n))
	}
	// vrows(jj) is the stored height of reflector jj's dense part.
	vrows := func(jj int) int {
		if tri {
			return min(jj+1, m2)
		}
		return m2
	}
	w := grow(&ws.wvec, n)
	for j := 0; j < n; j += ib {
		sb := min(ib, n-j)
		for jj := j; jj < j+sb; jj++ {
			rows := vrows(jj)
			vcol := a2.Data[jj*a2.LD : jj*a2.LD+rows]
			tau := Dlarfg(&a1.Data[jj+jj*a1.LD], vcol)
			if tau != 0 {
				// Apply H to the remaining columns of the inner block.
				for l := jj + 1; l < j+sb; l++ {
					ccol := a2.Data[l*a2.LD : l*a2.LD+rows]
					wv := tau * (a1.At(jj, l) + blas.Ddot(rows, vcol, 1, ccol, 1))
					a1.Add(jj, l, -wv)
					blas.Daxpy(rows, -wv, vcol, 1, ccol, 1)
				}
			}
			// Build T column jj within the current block. The top parts of
			// the reflectors are identity columns, whose mutual products
			// vanish, so only V2 contributes.
			i := jj - j
			for l := 0; l < i; l++ {
				h := min(vrows(j+l), rows)
				w[l] = blas.Ddot(h, a2.Data[(j+l)*a2.LD:], 1, vcol, 1)
			}
			if i > 0 {
				blas.Dtrmv(true, false, false, i, t.Data[j*t.LD:], t.LD, w, 1)
				for l := 0; l < i; l++ {
					t.Set(l, jj, -tau*w[l])
				}
			}
			t.Set(i, jj, tau)
		}
		// Block-apply Hᵀ to the trailing columns of the pair. This stays on
		// the uncached applyTS: V2 was written moments ago inside this very
		// call, so a cached packing could never be reused.
		if nc := n - j - sb; nc > 0 {
			rows := vrows(j + sb - 1)
			v2 := v2Block(ws, a2, j, sb, rows, tri)
			applyTS(ws, true, v2, t.ViewInto(&ws.tView, 0, j, sb, sb),
				a1.ViewInto(&ws.c1View, j, j+sb, sb, nc),
				a2.ViewInto(&ws.c2View, 0, j+sb, rows, nc))
		}
	}
	// All three outputs were rewritten: kill any packed panels cached
	// against them (a2/t are exactly the V2/T tiles later applies pack).
	matrix.NoteWrite(a1)
	matrix.NoteWrite(a2)
	matrix.NoteWrite(t)
}

// v2Block returns the rows×sb reflector block starting at column j of a2.
// In the triangular case the stored heights vary per column and entries
// below a column's height may hold unrelated data (Householder vectors of
// an earlier factorization), so a zero-padded copy is built in the
// workspace instead of a view; the copy cost is negligible against the
// level-3 work it enables. Every element of the copy is written — copied up
// to the column height, zeroed below it — so reuse cannot leak state
// between calls.
func v2Block(ws *Workspace, a2 *matrix.Mat, j, sb, rows int, tri bool) *matrix.Mat {
	if !tri {
		return a2.ViewInto(&ws.vView, 0, j, rows, sb)
	}
	c := matInto(&ws.v2Mat, &ws.v2b, rows, sb)
	for l := 0; l < sb; l++ {
		h := min(j+l+1, rows)
		col := c.Data[l*c.LD : l*c.LD+rows]
		copy(col[:h], a2.Data[(j+l)*a2.LD:(j+l)*a2.LD+h])
		for i := h; i < rows; i++ {
			col[i] = 0
		}
	}
	return c
}

// applyTS applies the TS/TT block reflector H = I − [E;V2]·T·[E;V2]ᵀ (or
// its transpose) to the stacked pair [C1; C2], where the identity part E
// aligns with C1's rows. C1 is sb×nc (rows j..j+sb of the top tile), v2 is
// rows×sb, C2 is rows×nc. The W panel lives in ws and is fully overwritten
// before use.
func applyTS(ws *Workspace, trans bool, v2, t, c1, c2 *matrix.Mat) {
	sb, nc := c1.Rows, c1.Cols
	rows := v2.Rows
	if nc == 0 || sb == 0 {
		return
	}
	w := matInto(&ws.wMat, &ws.wbuf, sb, nc)
	// W = C1 + V2ᵀ C2.
	w.CopyFrom(c1)
	if rows > 0 {
		blas.Dgemm(true, false, sb, nc, rows, 1,
			v2.Data, v2.LD, c2.Data, c2.LD, 1, w.Data, w.LD)
	}
	// W := op(T) W.
	blas.Dtrmm(true, true, trans, false, sb, nc, 1, t.Data, t.LD, w.Data, w.LD)
	// C1 -= W.
	for jc := 0; jc < nc; jc++ {
		ccol := c1.Data[jc*c1.LD : jc*c1.LD+sb]
		wcol := w.Data[jc*w.LD : jc*w.LD+sb]
		for i := range wcol {
			ccol[i] -= wcol[i]
		}
	}
	// C2 -= V2 W.
	if rows > 0 {
		blas.Dgemm(false, false, rows, nc, sb, -1,
			v2.Data, v2.LD, w.Data, w.LD, 1, c2.Data, c2.LD)
	}
}

// Dtsmqr applies the transformations computed by Dtsqrt to the stacked pair
// [B1; B2]: Qᵀ·[B1;B2] when trans is true (factorization updates), Q·[B1;B2]
// when false. v2 holds the dense reflector parts (m2×k), t the block factors
// (ib×k). B1 must have at least k rows (only its first k rows are touched);
// B2 must have m2 rows and the same number of columns as B1.
func Dtsmqr(trans bool, ib int, v2, t, b1, b2 *matrix.Mat) {
	DtsmqrWS(nil, trans, ib, v2, t, b1, b2)
}

// DtsmqrWS is Dtsmqr drawing its scratch from ws (nil borrows a pooled one).
func DtsmqrWS(ws *Workspace, trans bool, ib int, v2, t, b1, b2 *matrix.Mat) {
	if ws == nil {
		ws = wsPool.Get().(*Workspace)
		defer wsPool.Put(ws)
	}
	tsmqrGeneric(ws, trans, ib, v2, t, b1, b2, false)
}

// Dttmqr applies the transformations computed by Dttqrt to the stacked pair
// [B1; B2]. Only the upper triangle of v2's first k columns is referenced
// (the rest of the tile may hold unrelated reflectors); only the first k
// rows of B2 are touched.
func Dttmqr(trans bool, ib int, v2, t, b1, b2 *matrix.Mat) {
	DttmqrWS(nil, trans, ib, v2, t, b1, b2)
}

// DttmqrWS is Dttmqr drawing its scratch from ws (nil borrows a pooled one).
func DttmqrWS(ws *Workspace, trans bool, ib int, v2, t, b1, b2 *matrix.Mat) {
	if ws == nil {
		ws = wsPool.Get().(*Workspace)
		defer wsPool.Put(ws)
	}
	tsmqrGeneric(ws, trans, ib, v2, t, b1, b2, true)
}

func tsmqrGeneric(ws *Workspace, trans bool, ib int, v2, t, b1, b2 *matrix.Mat, tri bool) {
	k := v2.Cols
	nc := b1.Cols
	if b2.Cols != nc {
		panic(fmt.Sprintf("kernels: tsmqr b1 cols %d != b2 cols %d", nc, b2.Cols))
	}
	if b1.Rows < k {
		panic(fmt.Sprintf("kernels: tsmqr b1 rows %d < k %d", b1.Rows, k))
	}
	if !tri && b2.Rows != v2.Rows {
		panic(fmt.Sprintf("kernels: tsmqr b2 rows %d != v2 rows %d", b2.Rows, v2.Rows))
	}
	if tri && b2.Rows < min(k, v2.Rows) {
		panic(fmt.Sprintf("kernels: ttmqr b2 rows %d < %d", b2.Rows, min(k, v2.Rows)))
	}
	if k == 0 || nc == 0 {
		return
	}
	apply := func(j int) {
		sb := min(ib, k-j)
		rows := v2.Rows
		if tri {
			rows = min(j+sb, v2.Rows)
		}
		// V2ᵀ, V2 and op(T) come pre-packed from the workspace panel
		// cache: across a trailing-update row sweep the same (V, T) pair
		// is applied to every tile, and only the first firing packs.
		pv2t, pv2 := ws.packedV2Panels(v2, 0, j, sb, rows, tri)
		pt := ws.packedTPanel(t, j, sb, trans)
		applyFused(ws, nil, nil, pv2t, pv2, pt, sb, rows,
			b1.ViewInto(&ws.c1View, j, 0, sb, nc),
			b2.ViewInto(&ws.c2View, 0, 0, rows, nc))
	}
	// Column blocks forward for Qᵀ, backward for Q.
	if trans {
		for j := 0; j < k; j += ib {
			apply(j)
		}
	} else {
		for j := (k - 1) / ib * ib; j >= 0; j -= ib {
			apply(j)
		}
	}
	// The pair was rewritten: kill any packed panels cached against it.
	matrix.NoteWrite(b1)
	matrix.NoteWrite(b2)
}
