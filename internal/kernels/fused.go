package kernels

import (
	"pulsarqr/internal/blas"
	"pulsarqr/internal/matrix"
)

// fusedNC is the column-slab width of the fused block-reflector apply. It
// is a multiple of both micro-kernel NR geometries (6 and 8) so slab
// boundaries land on packed-panel boundaries, and narrow enough that a
// slab of C2 plus the W panels stay cache-resident between the W-build
// pass that reads them and the update pass that writes them.
const fusedNC = 192

// applyFused is the packed-engine form of the block-reflector apply shared
// by Dtsmqr/Dttmqr (TS/TT reflectors: identity on top, pv1t/pv1 nil) and
// Dormqr (full panels: dense-expanded unit-lower V1). It applies
// H = I − [V1;V2]·T·[V1;V2]ᵀ (or Hᵀ — the transposition is baked into the
// pt packing) to the stacked [C1; C2], with every packed operand coming
// from the workspace panel cache.
//
// Where the classic formulation makes two full passes over C2 (one Dgemm
// reading it into W, a second writing the update) plus three triangular
// multiplies on scalar leaves, this walks C in fusedNC-wide column slabs
// and performs the whole chain — W build, T application, C1 and C2 update
// — per slab, so each C2 slab is read and rewritten while still hot and
// every flop lands on the micro-kernel:
//
//	W  = V1ᵀ·C1ₛ (or a copy of C1ₛ when V1 is an implicit identity)
//	W += V2ᵀ·C2ₛ
//	W2 = op(T)·W
//	C1ₛ -= V1·W2 (or W2 itself)
//	C2ₛ -= V2·W2
//
// Slab boundaries depend only on the shape, and per-column GEMM summation
// order is independent of the column-slab split, so the result is bitwise
// identical across slab widths and to an unfused packed pass.
func applyFused(ws *Workspace, pv1t, pv1, pv2t, pv2, pt []float64, sb, rows int, c1, c2 *matrix.Mat) {
	nc := c1.Cols
	if nc == 0 || sb == 0 {
		return
	}
	for js := 0; js < nc; js += fusedNC {
		fw := min(fusedNC, nc-js)
		w := matInto(&ws.wMat, &ws.wbuf, sb, fw)
		w2 := matInto(&ws.w2Mat, &ws.w2buf, sb, fw)
		// W = V1ᵀ·C1 slab (TS/TT: the identity top makes this a copy).
		if pv1t == nil {
			for jc := 0; jc < fw; jc++ {
				copy(w.Data[jc*w.LD:jc*w.LD+sb], c1.Data[(js+jc)*c1.LD:(js+jc)*c1.LD+sb])
			}
		} else {
			zeroFloats(w.Data[:sb*fw])
			blas.DgemmPackedLHS(sb, fw, sb, pv1t, 1, c1.Data[js*c1.LD:], c1.LD, w.Data, w.LD)
		}
		// W += V2ᵀ·C2 slab.
		if rows > 0 {
			blas.DgemmPackedLHS(sb, fw, rows, pv2t, 1, c2.Data[js*c2.LD:], c2.LD, w.Data, w.LD)
		}
		// W2 = op(T)·W.
		zeroFloats(w2.Data[:sb*fw])
		blas.DgemmPackedLHS(sb, fw, sb, pt, 1, w.Data, w.LD, w2.Data, w2.LD)
		// C1 slab -= V1·W2 (identity top: subtract W2 directly).
		if pv1 == nil {
			for jc := 0; jc < fw; jc++ {
				ccol := c1.Data[(js+jc)*c1.LD : (js+jc)*c1.LD+sb]
				wcol := w2.Data[jc*w2.LD : jc*w2.LD+sb]
				for i := range wcol {
					ccol[i] -= wcol[i]
				}
			}
		} else {
			blas.DgemmPackedLHS(sb, fw, sb, pv1, -1, w2.Data, w2.LD, c1.Data[js*c1.LD:], c1.LD)
		}
		// C2 slab -= V2·W2, closing the pass while the slab is still hot.
		if rows > 0 {
			blas.DgemmPackedLHS(rows, fw, sb, pv2, -1, w2.Data, w2.LD, c2.Data[js*c2.LD:], c2.LD)
		}
	}
}

func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}
