package kernels

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pulsarqr/internal/matrix"
)

func spdTile(n int, seed int64) *matrix.Mat {
	rng := rand.New(rand.NewSource(seed))
	b := matrix.NewRand(n, n, rng)
	a := b.Transpose().Mul(b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestDpotrfReconstruction(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 33} {
		a := spdTile(n, int64(n))
		l := a.Clone()
		if err := Dpotrf(l); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Zero the strictly-upper part (unreferenced storage).
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ {
				l.Set(i, j, 0)
			}
		}
		llt := l.Mul(l.Transpose())
		if d := matrix.MaxAbsDiff(llt, a); d > 1e-11*float64(n) {
			t.Fatalf("n=%d: ||LLᵀ − A|| = %v", n, d)
		}
	}
}

func TestDpotrfLeavesUpperUntouched(t *testing.T) {
	a := spdTile(8, 3)
	for j := 0; j < 8; j++ {
		for i := 0; i < j; i++ {
			a.Set(i, j, 1e99) // garbage that must survive
		}
	}
	if err := Dpotrf(a); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 8; j++ {
		for i := 0; i < j; i++ {
			if a.At(i, j) != 1e99 {
				t.Fatalf("upper (%d,%d) modified", i, j)
			}
		}
	}
}

func TestDpotrfRejectsIndefinite(t *testing.T) {
	a := spdTile(6, 4)
	a.Set(3, 3, -1)
	err := Dpotrf(a)
	if err == nil || !strings.Contains(err.Error(), "order 4") {
		t.Fatalf("expected failure at minor 4, got %v", err)
	}
	if err := Dpotrf(matrix.New(0, 0)); err != nil {
		t.Fatalf("empty tile: %v", err)
	}
	if err := Dpotrf(matrix.NewRand(3, 4, rand.New(rand.NewSource(1)))); err == nil {
		t.Fatal("non-square tile must be rejected")
	}
}

func TestDpotrfProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 1
		a := spdTile(n, seed)
		l := a.Clone()
		if err := Dpotrf(l); err != nil {
			return false
		}
		for j := 0; j < n; j++ {
			if l.At(j, j) <= 0 {
				return false
			}
			for i := 0; i < j; i++ {
				l.Set(i, j, 0)
			}
		}
		return matrix.MaxAbsDiff(l.Mul(l.Transpose()), a) < 1e-10*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
