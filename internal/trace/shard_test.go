package trace

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/tuple"
)

// A recorder over capacity must keep at most its bound, overwrite the
// oldest events, and count every loss.
func TestRecorderBounded(t *testing.T) {
	const capacity = 32
	r := NewRecorderCap(capacity)
	h := r.Hook()
	base := time.Now()
	const total = 500
	for i := 0; i < total; i++ {
		// One lane only, so a single stripe absorbs everything and the
		// per-stripe bound is what's exercised.
		h(pulsar.FireEvent{Tuple: tuple.New(0, i), Class: "panel", Node: 0, Thread: 0,
			Start: base.Add(time.Duration(i) * time.Microsecond),
			End:   base.Add(time.Duration(i+1) * time.Microsecond)})
	}
	perStripe := (capacity + recShards - 1) / recShards
	if got := r.Len(); got != perStripe {
		t.Fatalf("Len() = %d, want the stripe bound %d", got, perStripe)
	}
	if got := r.Drops(); got != total-int64(perStripe) {
		t.Fatalf("Drops() = %d, want %d", got, total-perStripe)
	}
	// Overwrite-oldest: the survivors are the most recent events.
	for _, e := range r.Events() {
		if e.Panel < total-perStripe {
			t.Fatalf("old event survived: panel %d", e.Panel)
		}
	}
	sh := r.Shard(3)
	if sh.Rank != 3 || sh.Drops != r.Drops() || len(sh.Events) != perStripe {
		t.Fatalf("shard mismatch: %+v", sh)
	}
}

func TestShardRoundtrip(t *testing.T) {
	shards := []Shard{
		{Rank: 0, Epoch: 1_000_000, Drops: 2, Events: []Event{
			{Kind: KindFire, Class: "panel", Panel: 4, Node: 0, Thread: 1, Start: 0, End: 5 * time.Millisecond},
			{Kind: KindWait, Class: ClassWait, Panel: -1, Node: 0, Thread: 0, Peer: -1, Start: time.Millisecond, End: 2 * time.Millisecond},
			{Kind: KindSend, Class: ClassSend, Panel: -1, Node: 0, Thread: ProxyThread, Peer: 1, Bytes: 4096, Start: 3 * time.Millisecond, End: 4 * time.Millisecond},
			{Kind: KindBarrier, Class: ClassBarrier, Panel: -1, Node: 0, Thread: ProxyThread, Peer: -1, Start: 8 * time.Millisecond, End: 9 * time.Millisecond},
		}},
		{Rank: 1, Epoch: 1_200_000, Drops: 0, Events: []Event{
			{Kind: KindRecv, Class: ClassRecv, Panel: -1, Node: 1, Thread: ProxyThread, Peer: 0, Bytes: 4096, Start: 0, End: time.Millisecond},
		}},
	}
	var buf bytes.Buffer
	if err := WriteShards(&buf, shards...); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShards(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shards, got) {
		t.Fatalf("roundtrip mismatch:\nwant %+v\ngot  %+v", shards, got)
	}
}

func TestReadShardsSkipsUnknownLines(t *testing.T) {
	in := `{"t":"shard","rank":0,"epoch_ns":5,"drops":0,"events":1}
{"t":"future-extension","x":1}

{"t":"ev","kind":"fire","class":"panel","panel":0,"node":0,"thread":0,"peer":0,"start_ns":0,"end_ns":10}
`
	shards, err := ReadShards(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 || len(shards[0].Events) != 1 {
		t.Fatalf("shards = %+v", shards)
	}
}

func TestDecodeShardRejectsMultiple(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteShards(&buf, Shard{Rank: 0}, Shard{Rank: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeShard(buf.Bytes()); err == nil {
		t.Fatal("DecodeShard accepted two shards")
	}
}

// barrierShard is a shard whose events end in a closing barrier at barNS
// (relative to its own epoch), mimicking one rank's view of a run.
func barrierShard(rank int, epoch, barNS int64, fires ...Event) Shard {
	evs := append([]Event(nil), fires...)
	evs = append(evs, Event{Kind: KindBarrier, Class: ClassBarrier, Panel: -1,
		Node: rank, Thread: ProxyThread, Peer: -1,
		Start: time.Duration(barNS - 1000), End: time.Duration(barNS)})
	return Shard{Rank: rank, Epoch: epoch, Events: evs}
}

// Merge must align skewed clocks on the closing barrier: two ranks whose
// epochs disagree wildly still produce coinciding barrier ends.
func TestMergeAlignsOnBarrier(t *testing.T) {
	fire := func(node int, start, end int64) Event {
		return Event{Kind: KindFire, Class: "panel", Panel: 0, Node: node,
			Start: time.Duration(start), End: time.Duration(end)}
	}
	// Rank 1's wall clock is 5 seconds ahead; raw epochs would shear the
	// timelines apart.
	s0 := barrierShard(0, 1_000_000, 10_000, fire(0, 0, 4000))
	s1 := barrierShard(1, 5_001_000_000, 9_000, fire(1, 0, 3000))
	// Out-of-order arrival must not matter.
	events, drops := Merge([]Shard{s1, s0})
	if drops != 0 {
		t.Fatalf("drops = %d", drops)
	}
	var barEnds []time.Duration
	for _, e := range events {
		if e.Kind == KindBarrier {
			barEnds = append(barEnds, e.End)
		}
	}
	if len(barEnds) != 2 {
		t.Fatalf("%d barrier events", len(barEnds))
	}
	if barEnds[0] != barEnds[1] {
		t.Fatalf("barrier ends not aligned: %v vs %v", barEnds[0], barEnds[1])
	}
	// Renormalized: earliest start is zero, everything non-negative.
	if events[0].Start != 0 {
		t.Fatalf("first event starts at %v", events[0].Start)
	}
	for _, e := range events {
		if e.Start < 0 || e.End < e.Start {
			t.Fatalf("bad interval %+v", e)
		}
	}
}

// Without a barrier on every shard, Merge falls back to raw epochs.
func TestMergeFallsBackToEpochs(t *testing.T) {
	fire := func(node int, start, end int64) Event {
		return Event{Kind: KindFire, Class: "panel", Panel: 0, Node: node,
			Start: time.Duration(start), End: time.Duration(end)}
	}
	s0 := Shard{Rank: 0, Epoch: 1000, Events: []Event{fire(0, 0, 500)}}
	s1 := Shard{Rank: 1, Epoch: 3000, Events: []Event{fire(1, 0, 500)}}
	events, _ := Merge([]Shard{s0, s1})
	if len(events) != 2 {
		t.Fatalf("%d events", len(events))
	}
	// Rank 1's event sits 2000ns (the epoch gap) after rank 0's.
	if got := events[1].Start - events[0].Start; got != 2000 {
		t.Fatalf("epoch gap = %v, want 2000ns", got)
	}
}

func TestMergeCountsDropsAcrossShards(t *testing.T) {
	s0 := Shard{Rank: 0, Drops: 3}
	s1 := Shard{Rank: 1, Drops: 4}
	events, drops := Merge([]Shard{s0, s1})
	if events != nil || drops != 7 {
		t.Fatalf("events=%v drops=%d", events, drops)
	}
}
