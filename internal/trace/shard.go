package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Shard is one rank's slice of a distributed trace: its events relative to
// its own epoch, plus the epoch itself (wall clock, UnixNano) so shards
// from different machines can be aligned, and the local drop count.
type Shard struct {
	Rank   int
	Epoch  int64 // UnixNano of the rank's recorder epoch; 0 when no events
	Drops  int64
	Events []Event
}

// Shard snapshots the recorder as rank's shard.
func (r *Recorder) Shard(rank int) Shard {
	return Shard{Rank: rank, Epoch: r.Epoch(), Drops: r.Drops(), Events: r.Events()}
}

// JSONL wire/file format: one object per line. A "shard" header line opens
// each shard; the "ev" lines that follow (until the next header) belong to
// it. Shards may appear in any order.
type shardHeader struct {
	T      string `json:"t"` // "shard"
	Rank   int    `json:"rank"`
	Epoch  int64  `json:"epoch_ns"`
	Drops  int64  `json:"drops"`
	Events int    `json:"events"`
}

type eventRec struct {
	T       string `json:"t"` // "ev"
	Kind    string `json:"kind"`
	Class   string `json:"class"`
	Panel   int    `json:"panel"`
	Node    int    `json:"node"`
	Thread  int    `json:"thread"`
	Peer    int    `json:"peer"`
	Bytes   int64  `json:"bytes,omitempty"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
}

var kindNames = map[string]EventKind{
	"fire": KindFire, "wait": KindWait, "send": KindSend,
	"recv": KindRecv, "barrier": KindBarrier,
}

// WriteShards encodes shards as JSONL.
func WriteShards(w io.Writer, shards ...Shard) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range shards {
		h := shardHeader{T: "shard", Rank: s.Rank, Epoch: s.Epoch, Drops: s.Drops, Events: len(s.Events)}
		if err := enc.Encode(h); err != nil {
			return err
		}
		for _, e := range s.Events {
			rec := eventRec{
				T: "ev", Kind: e.Kind.String(), Class: e.Class, Panel: e.Panel,
				Node: e.Node, Thread: e.Thread, Peer: e.Peer, Bytes: e.Bytes,
				StartNS: int64(e.Start), EndNS: int64(e.End),
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadShards decodes a JSONL stream of shards; unknown line types are
// skipped so the format can grow.
func ReadShards(r io.Reader) ([]Shard, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var shards []Shard
	var cur *Shard
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var probe struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(b, &probe); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		switch probe.T {
		case "shard":
			var h shardHeader
			if err := json.Unmarshal(b, &h); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			shards = append(shards, Shard{Rank: h.Rank, Epoch: h.Epoch, Drops: h.Drops})
			cur = &shards[len(shards)-1]
		case "ev":
			if cur == nil {
				return nil, fmt.Errorf("trace: line %d: event before any shard header", line)
			}
			var rec eventRec
			if err := json.Unmarshal(b, &rec); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			kind, ok := kindNames[rec.Kind]
			if !ok {
				return nil, fmt.Errorf("trace: line %d: unknown event kind %q", line, rec.Kind)
			}
			cur.Events = append(cur.Events, Event{
				Kind: kind, Class: rec.Class, Panel: rec.Panel,
				Node: rec.Node, Thread: rec.Thread, Peer: rec.Peer, Bytes: rec.Bytes,
				Start: time.Duration(rec.StartNS), End: time.Duration(rec.EndNS),
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return shards, nil
}

// EncodeShard serializes one shard for the wire.
func EncodeShard(s Shard) []byte {
	var b bytes.Buffer
	_ = WriteShards(&b, s) // bytes.Buffer writes cannot fail
	return b.Bytes()
}

// DecodeShard parses one wire-encoded shard.
func DecodeShard(b []byte) (Shard, error) {
	shards, err := ReadShards(bytes.NewReader(b))
	if err != nil {
		return Shard{}, err
	}
	if len(shards) != 1 {
		return Shard{}, fmt.Errorf("trace: expected 1 shard, got %d", len(shards))
	}
	return shards[0], nil
}

// Merge aligns the shards of one run onto a common clock and returns the
// combined events (sorted, renormalized to start at zero) plus the total
// drop count.
//
// Alignment: when every non-empty shard recorded the closing barrier of the
// run, the barriers' End instants are used as the anchor — all ranks leave
// that collective within one release broadcast of each other, which bounds
// the residual skew far tighter than raw wall clocks across machines.
// Otherwise raw epochs (UnixNano) are trusted as-is.
func Merge(shards []Shard) ([]Event, int64) {
	var drops int64
	type offs struct {
		s      *Shard
		anchor int64 // absolute ns of the alignment point; 0 = none
	}
	var use []offs
	aligned := true
	for i := range shards {
		s := &shards[i]
		drops += s.Drops
		if len(s.Events) == 0 {
			continue
		}
		var anchor int64
		for _, e := range s.Events { // last barrier wins
			if e.Kind == KindBarrier {
				anchor = s.Epoch + int64(e.End)
			}
		}
		if anchor == 0 {
			aligned = false
		}
		use = append(use, offs{s: s, anchor: anchor})
	}
	if len(use) == 0 {
		return nil, drops
	}
	// Per-shard shift: with barrier anchors, move every shard so its anchor
	// lands on the maximum anchor (the true collective exit is no earlier
	// than any rank's observation of it); without, keep raw epochs.
	var refAnchor int64
	if aligned {
		for _, u := range use {
			if u.anchor > refAnchor {
				refAnchor = u.anchor
			}
		}
	}
	var out []Event
	for _, u := range use {
		shift := u.s.Epoch
		if aligned {
			shift = u.s.Epoch + (refAnchor - u.anchor)
		}
		for _, e := range u.s.Events {
			e.Start += time.Duration(shift)
			e.End += time.Duration(shift)
			out = append(out, e)
		}
	}
	minStart := out[0].Start
	for _, e := range out {
		if e.Start < minStart {
			minStart = e.Start
		}
	}
	for i := range out {
		out[i].Start -= minStart
		out[i].End -= minStart
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out, drops
}
