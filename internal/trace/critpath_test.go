package trace

import (
	"testing"
	"time"
)

func fireEv(panel, node, thread int, start, end time.Duration) Event {
	return Event{Kind: KindFire, Class: "panel", Panel: panel, Node: node, Thread: thread,
		Start: start, End: end}
}

// A simple dependent chain across lanes: the path must follow it end to end.
func TestCriticalPathChain(t *testing.T) {
	ms := time.Millisecond
	tl := Build([]Event{
		fireEv(0, 0, 0, 0, 10*ms),     // on path
		fireEv(0, 0, 1, 2*ms, 5*ms),   // shadowed: shorter, same window
		fireEv(1, 1, 0, 10*ms, 25*ms), // on path (starts when panel 0 ends)
		fireEv(2, 0, 0, 25*ms, 30*ms), // on path
		fireEv(2, 1, 1, 26*ms, 28*ms), // shadowed
	})
	cp := tl.CriticalPath()
	if len(cp.Events) != 3 {
		t.Fatalf("path has %d events: %+v", len(cp.Events), cp.Events)
	}
	if cp.Work != 30*ms {
		t.Fatalf("work = %v, want 30ms", cp.Work)
	}
	for i, want := range []int{0, 1, 2} {
		if cp.Events[i].Panel != want {
			t.Fatalf("path[%d].Panel = %d, want %d", i, cp.Events[i].Panel, want)
		}
	}
	// Path events must be chained in time.
	for i := 1; i < len(cp.Events); i++ {
		if cp.Events[i-1].End > cp.Events[i].Start {
			t.Fatalf("path not time-ordered: %+v", cp.Events)
		}
	}
	if cp.ByClass["panel"] != 30*ms {
		t.Fatalf("ByClass = %v", cp.ByClass)
	}
}

// Precedence is (time, panel)-ordered: an earlier-finishing task of a LATER
// panel must not feed a task of an earlier panel — dataflow in the tile QR
// only runs toward higher panel indices.
func TestCriticalPathRespectsPanelOrder(t *testing.T) {
	ms := time.Millisecond
	tl := Build([]Event{
		fireEv(5, 0, 0, 0, 8*ms),     // later panel, finishes before e2 starts
		fireEv(0, 1, 0, 9*ms, 12*ms), // earlier panel: must NOT chain onto panel 5
	})
	cp := tl.CriticalPath()
	if len(cp.Events) != 1 {
		t.Fatalf("chained across panel order: %+v", cp.Events)
	}
	if cp.Events[0].Panel != 5 || cp.Work != 8*ms {
		t.Fatalf("wrong winner: %+v (work %v)", cp.Events[0], cp.Work)
	}
}

// Non-fire events (waits, comm) never appear on the path.
func TestCriticalPathIgnoresNonFire(t *testing.T) {
	ms := time.Millisecond
	tl := Build([]Event{
		fireEv(0, 0, 0, 0, 5*ms),
		{Kind: KindWait, Class: ClassWait, Panel: -1, Node: 0, Thread: 1, Start: 0, End: 50 * ms},
		{Kind: KindBarrier, Class: ClassBarrier, Panel: -1, Node: 0, Thread: ProxyThread, Start: 5 * ms, End: 60 * ms},
	})
	cp := tl.CriticalPath()
	if len(cp.Events) != 1 || cp.Events[0].Kind != KindFire {
		t.Fatalf("non-fire events on the path: %+v", cp.Events)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	cp := Build(nil).CriticalPath()
	if len(cp.Events) != 0 || cp.Work != 0 {
		t.Fatalf("empty timeline produced a path: %+v", cp)
	}
}
