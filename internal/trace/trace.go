// Package trace records VDP firings and renders execution traces in the
// style of the paper's Fig. 7: per-thread timelines where red is flat-tree
// panel work, orange is the corresponding trailing updates, and blue is
// binary-tree work. It also computes the overlap statistics that quantify
// why shifted domain boundaries pipeline better than fixed ones.
//
// Beyond firings, the recorder captures worker channel-wait intervals and
// proxy communication (sends, deliveries, the closing barrier), and each
// rank of a distributed run can snapshot its recorder into a Shard for
// gathering and merging at rank 0 (see shard.go, gather.go).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pulsarqr/internal/pulsar"
)

// EventKind classifies a recorded event. The zero value is a VDP firing so
// hand-built Event literals (tests, the simulator) keep their old meaning.
type EventKind uint8

const (
	KindFire EventKind = iota
	KindWait
	KindSend
	KindRecv
	KindBarrier
)

func (k EventKind) String() string {
	switch k {
	case KindFire:
		return "fire"
	case KindWait:
		return "wait"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindBarrier:
		return "barrier"
	}
	return "unknown"
}

// Classes of the non-fire events the recorder emits. Fire classes come from
// the VDPs themselves ("panel", "update", "binary", "binary-update").
const (
	ClassWait    = "wait"
	ClassSend    = "send"
	ClassRecv    = "recv"
	ClassBarrier = "barrier"
)

// ProxyThread is the Thread value of communication events: each node's
// proxy gets its own lane below the workers'.
const ProxyThread = -1

// Event is one recorded interval: a firing, a worker wait, or a proxy
// communication action.
type Event struct {
	Kind         EventKind
	Class        string
	Panel        int // panel index j from the VDP tuple; -1 for non-fire events
	Node, Thread int
	Peer         int           // comm events: remote rank (-1 for collectives); 0 otherwise
	Bytes        int64         // comm events: payload size
	Start, End   time.Duration // relative to the recorder's epoch
}

// DefaultCapacity is the recorder's default event bound.
const DefaultCapacity = 1 << 18

// recShards is the number of independent ring buffers a Recorder stripes
// events over to keep workers from serializing on one lock.
const recShards = 16

// Recorder collects runtime events into a bounded, sharded ring buffer. It
// is safe for concurrent use by multiple workers; when the buffer is full
// the oldest events are overwritten and counted as drops.
type Recorder struct {
	capPerShard int
	t0ns        atomic.Int64 // UnixNano of the first recorded start (the epoch)
	drops       atomic.Int64
	shards      [recShards]recShard
}

type recShard struct {
	mu   sync.Mutex
	ev   []Event
	next int // overwrite cursor once len(ev) == capPerShard
}

// NewRecorder returns an empty recorder bounded at DefaultCapacity.
func NewRecorder() *Recorder { return NewRecorderCap(DefaultCapacity) }

// NewRecorderCap returns an empty recorder holding at most capacity events
// (rounded up to a multiple of the stripe count); non-positive selects the
// default. Once full, new events overwrite the oldest and Drops counts the
// losses.
func NewRecorderCap(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	cps := (capacity + recShards - 1) / recShards
	if cps < 1 {
		cps = 1
	}
	return &Recorder{capPerShard: cps}
}

// Epoch returns the wall-clock origin (UnixNano) event times are relative
// to; zero until the first event is recorded.
func (r *Recorder) Epoch() int64 { return r.t0ns.Load() }

// Drops returns the number of events lost to the capacity bound.
func (r *Recorder) Drops() int64 { return r.drops.Load() }

// Len returns the number of events currently held.
func (r *Recorder) Len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += len(s.ev)
		s.mu.Unlock()
	}
	return n
}

// epoch pins the recorder's time origin to the first observed start and
// returns it.
func (r *Recorder) epoch(start time.Time) int64 {
	t0 := r.t0ns.Load()
	if t0 == 0 {
		r.t0ns.CompareAndSwap(0, start.UnixNano())
		t0 = r.t0ns.Load()
	}
	return t0
}

func (r *Recorder) record(lane int, e Event) {
	s := &r.shards[uint(lane)%recShards]
	s.mu.Lock()
	if len(s.ev) < r.capPerShard {
		s.ev = append(s.ev, e)
		s.mu.Unlock()
		return
	}
	s.ev[s.next] = e
	s.next = (s.next + 1) % r.capPerShard
	s.mu.Unlock()
	r.drops.Add(1)
}

// lane stripes (node, thread) pairs over the ring buffers; +2 keeps the
// proxy lane (thread -1) non-negative.
func lane(node, thread int) int { return node*31 + thread + 2 }

// Hook adapts the recorder to the runtime's FireHook.
func (r *Recorder) Hook() func(pulsar.FireEvent) {
	return func(e pulsar.FireEvent) {
		t0 := r.epoch(e.Start)
		panel := -1
		if e.Tuple.Len() > 1 {
			panel = e.Tuple.At(1)
		}
		r.record(lane(e.Node, e.Thread), Event{
			Kind: KindFire, Class: e.Class, Panel: panel,
			Node: e.Node, Thread: e.Thread,
			Start: time.Duration(e.Start.UnixNano() - t0),
			End:   time.Duration(e.End.UnixNano() - t0),
		})
	}
}

// WaitHook adapts the recorder to the runtime's WaitHook (and Pool.OnWait).
func (r *Recorder) WaitHook() func(pulsar.WaitEvent) {
	return func(e pulsar.WaitEvent) {
		t0 := r.epoch(e.Start)
		r.record(lane(e.Node, e.Thread), Event{
			Kind: KindWait, Class: ClassWait, Panel: -1,
			Node: e.Node, Thread: e.Thread, Peer: -1,
			Start: time.Duration(e.Start.UnixNano() - t0),
			End:   time.Duration(e.End.UnixNano() - t0),
		})
	}
}

// CommHook adapts the recorder to the runtime's CommHook.
func (r *Recorder) CommHook() func(pulsar.CommEvent) {
	return func(e pulsar.CommEvent) {
		t0 := r.epoch(e.Start)
		kind, class := KindSend, ClassSend
		switch e.Kind {
		case pulsar.CommRecv:
			kind, class = KindRecv, ClassRecv
		case pulsar.CommBarrier:
			kind, class = KindBarrier, ClassBarrier
		}
		r.record(lane(e.Node, ProxyThread), Event{
			Kind: kind, Class: class, Panel: -1,
			Node: e.Node, Thread: ProxyThread,
			Peer: e.Peer, Bytes: int64(e.Bytes),
			Start: time.Duration(e.Start.UnixNano() - t0),
			End:   time.Duration(e.End.UnixNano() - t0),
		})
	}
}

// Events returns the recorded events, normalized so the earliest start is
// zero and sorted by start time.
func (r *Recorder) Events() []Event {
	var out []Event
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		out = append(out, s.ev...)
		s.mu.Unlock()
	}
	// The epoch is the first start the racing CAS happened to pin, so a few
	// events may sit slightly before it; renormalize.
	var minStart time.Duration
	for _, e := range out {
		if e.Start < minStart {
			minStart = e.Start
		}
	}
	for i := range out {
		out[i].Start -= minStart
		out[i].End -= minStart
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// Timeline is an analyzed trace.
type Timeline struct {
	Events   []Event
	Makespan time.Duration
	// BusyByClass is total busy time per fire class.
	BusyByClass map[string]time.Duration
	// Lanes maps (node, thread) pairs to lane indices, sorted. Thread -1 is
	// a node's proxy lane.
	Lanes map[[2]int]int
}

// Build analyzes a set of events.
func Build(events []Event) *Timeline {
	t := &Timeline{Events: events, BusyByClass: map[string]time.Duration{}, Lanes: map[[2]int]int{}}
	var keys [][2]int
	seen := map[[2]int]bool{}
	for _, e := range events {
		if e.End > t.Makespan {
			t.Makespan = e.End
		}
		if e.Kind == KindFire {
			t.BusyByClass[e.Class] += e.End - e.Start
		}
		k := [2]int{e.Node, e.Thread}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for i, k := range keys {
		t.Lanes[k] = i
	}
	return t
}

// PanelOverlap returns the fraction of the makespan during which work
// belonging to at least two different panels is in flight simultaneously —
// the pipelining the shifted domain boundary enables (paper Fig. 7b).
// Classes may restrict the measurement (nil means all classes).
func (t *Timeline) PanelOverlap(classes map[string]bool) float64 {
	if t.Makespan == 0 {
		return 0
	}
	type edge struct {
		at    time.Duration
		panel int
		delta int
	}
	var edges []edge
	for _, e := range t.Events {
		if classes != nil && !classes[e.Class] {
			continue
		}
		if e.Panel < 0 {
			continue
		}
		edges = append(edges, edge{e.Start, e.Panel, +1}, edge{e.End, e.Panel, -1})
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].at != edges[b].at {
			return edges[a].at < edges[b].at
		}
		return edges[a].delta < edges[b].delta // process ends first
	})
	active := map[int]int{}
	distinct := 0
	var overlapped time.Duration
	var last time.Duration
	for _, ed := range edges {
		if distinct >= 2 {
			overlapped += ed.at - last
		}
		last = ed.at
		active[ed.panel] += ed.delta
		if active[ed.panel] == 0 {
			delete(active, ed.panel)
		}
		distinct = len(active)
	}
	return float64(overlapped) / float64(t.Makespan)
}

// Utilization returns total fire-busy time divided by worker lanes ×
// makespan. Proxy lanes (thread -1) are not counted as capacity.
func (t *Timeline) Utilization() float64 {
	if t.Makespan == 0 {
		return 0
	}
	lanes := 0
	for k := range t.Lanes {
		if k[1] >= 0 {
			lanes++
		}
	}
	if lanes == 0 {
		return 0
	}
	var busy time.Duration
	for _, d := range t.BusyByClass {
		busy += d
	}
	return float64(busy) / (float64(t.Makespan) * float64(lanes))
}

// RankStats is one rank's share of a merged timeline: fire-busy and wait
// time over its workers, and its proxy's traffic.
type RankStats struct {
	Node                 int
	Busy, Wait, Barrier  time.Duration
	SentBytes, RecvBytes int64
	Sends, Recvs         int
}

// ByRank breaks the timeline down per node, for the per-rank idle/comm
// report of a merged multi-rank trace.
func (t *Timeline) ByRank() []RankStats {
	idx := map[int]int{}
	var out []RankStats
	get := func(node int) *RankStats {
		i, ok := idx[node]
		if !ok {
			i = len(out)
			idx[node] = i
			out = append(out, RankStats{Node: node})
		}
		return &out[i]
	}
	for _, e := range t.Events {
		r := get(e.Node)
		switch e.Kind {
		case KindFire:
			r.Busy += e.End - e.Start
		case KindWait:
			r.Wait += e.End - e.Start
		case KindBarrier:
			r.Barrier += e.End - e.Start
		case KindSend:
			r.SentBytes += e.Bytes
			r.Sends++
		case KindRecv:
			r.RecvBytes += e.Bytes
			r.Recvs++
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Node < out[b].Node })
	return out
}

// classGlyph maps trace classes to single characters for ASCII rendering.
func classGlyph(class string) byte {
	switch class {
	case "panel":
		return 'P'
	case "update":
		return 'u'
	case "binary":
		return 'B'
	case "binary-update":
		return 'b'
	case ClassWait:
		return '~'
	case ClassSend:
		return '>'
	case ClassRecv:
		return '<'
	case ClassBarrier:
		return '='
	default:
		if class == "" {
			return '#'
		}
		return class[0]
	}
}

// ASCII renders the timeline as one row per (node, thread) lane and width
// columns; each cell shows the class that occupied most of that time
// bucket, or '.' when idle. Proxy lanes are labeled "nXXcomm".
func (t *Timeline) ASCII(width int) string {
	if width < 1 || t.Makespan == 0 || len(t.Lanes) == 0 {
		return ""
	}
	rows := make([][]time.Duration, len(t.Lanes))    // per lane per bucket busy
	classAt := make([][]map[string]time.Duration, 0) // dominant class
	for i := range rows {
		rows[i] = make([]time.Duration, width)
		m := make([]map[string]time.Duration, width)
		for j := range m {
			m[j] = map[string]time.Duration{}
		}
		classAt = append(classAt, m)
	}
	bucket := t.Makespan / time.Duration(width)
	if bucket == 0 {
		bucket = 1
	}
	for _, e := range t.Events {
		lane := t.Lanes[[2]int{e.Node, e.Thread}]
		for b := int(e.Start / bucket); b < width && time.Duration(b)*bucket < e.End; b++ {
			lo := time.Duration(b) * bucket
			hi := lo + bucket
			s, en := e.Start, e.End
			if s < lo {
				s = lo
			}
			if en > hi {
				en = hi
			}
			if en > s {
				rows[lane][b] += en - s
				classAt[lane][b][e.Class] += en - s
			}
		}
	}
	var sb strings.Builder
	laneKeys := make([][2]int, len(t.Lanes))
	for k, i := range t.Lanes {
		laneKeys[i] = k
	}
	for i, row := range rows {
		if laneKeys[i][1] < 0 {
			fmt.Fprintf(&sb, "n%02dcomm|", laneKeys[i][0])
		} else {
			fmt.Fprintf(&sb, "n%02dt%02d |", laneKeys[i][0], laneKeys[i][1])
		}
		for b, busy := range row {
			if busy < bucket/4 {
				sb.WriteByte('.')
				continue
			}
			var best string
			var bestD time.Duration
			for c, d := range classAt[i][b] {
				if d > bestD {
					best, bestD = c, d
				}
			}
			sb.WriteByte(classGlyph(best))
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

// classColor maps classes to the paper's Fig. 7 palette.
func classColor(class string) string {
	switch class {
	case "panel":
		return "#d62728" // red
	case "update":
		return "#ff9a3c" // orange
	case "binary", "binary-update":
		return "#1f77b4" // blue
	case ClassWait:
		return "#dddddd" // idle gray
	case ClassSend:
		return "#2ca02c" // green
	case ClassRecv:
		return "#98df8a" // light green
	case ClassBarrier:
		return "#9467bd" // purple
	default:
		return "#777777"
	}
}

// ChromeTrace renders the timeline in the Chrome trace-event JSON format
// (chrome://tracing, Perfetto): one process per node, one thread lane per
// worker (tid -1 is the proxy), complete events with microsecond
// timestamps, categorized by kind.
func (t *Timeline) ChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, e := range t.Events {
		sep := ","
		if i == len(t.Events)-1 {
			sep = ""
		}
		_, err := fmt.Fprintf(bw,
			`{"name":%q,"cat":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"panel":%d,"bytes":%d,"peer":%d}}%s`+"\n",
			e.Class, e.Kind.String(),
			float64(e.Start)/float64(time.Microsecond),
			float64(e.End-e.Start)/float64(time.Microsecond),
			e.Node, e.Thread, e.Panel, e.Bytes, e.Peer, sep)
		if err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// SVG renders the timeline as an SVG document, one lane per thread.
func (t *Timeline) SVG(width, laneHeight int) string {
	if t.Makespan == 0 || len(t.Lanes) == 0 {
		return "<svg xmlns=\"http://www.w3.org/2000/svg\"/>"
	}
	h := laneHeight * len(t.Lanes)
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`, width, h)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="#ffffff"/>`, width, h)
	scale := float64(width) / float64(t.Makespan)
	for _, e := range t.Events {
		lane := t.Lanes[[2]int{e.Node, e.Thread}]
		x := float64(e.Start) * scale
		w := float64(e.End-e.Start) * scale
		if w < 0.2 {
			w = 0.2
		}
		fmt.Fprintf(&sb, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s"/>`,
			x, lane*laneHeight+1, w, laneHeight-2, classColor(e.Class))
	}
	sb.WriteString(`</svg>`)
	return sb.String()
}
