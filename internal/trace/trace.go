// Package trace records VDP firings and renders execution traces in the
// style of the paper's Fig. 7: per-thread timelines where red is flat-tree
// panel work, orange is the corresponding trailing updates, and blue is
// binary-tree work. It also computes the overlap statistics that quantify
// why shifted domain boundaries pipeline better than fixed ones.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"pulsarqr/internal/pulsar"
)

// Event is one recorded firing.
type Event struct {
	Class        string
	Panel        int // panel index j, extracted from the VDP tuple
	Node, Thread int
	Start, End   time.Duration // relative to the first recorded start
}

// Recorder collects fire events from the runtime. It is safe for
// concurrent use by multiple workers.
type Recorder struct {
	mu     sync.Mutex
	t0     time.Time
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Hook adapts the recorder to the runtime's FireHook.
func (r *Recorder) Hook() func(pulsar.FireEvent) {
	return func(e pulsar.FireEvent) {
		r.mu.Lock()
		if r.t0.IsZero() || e.Start.Before(r.t0) {
			r.t0 = e.Start
		}
		panel := -1
		if e.Tuple.Len() > 1 {
			panel = e.Tuple.At(1)
		}
		r.events = append(r.events, Event{
			Class: e.Class, Panel: panel,
			Node: e.Node, Thread: e.Thread,
			Start: e.Start.Sub(r.t0), End: e.End.Sub(r.t0),
		})
		r.mu.Unlock()
	}
}

// Events returns the recorded events, normalized so the earliest start is
// zero and sorted by start time.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	// Recorder t0 may have moved backwards after early events were
	// captured; renormalize.
	var minStart time.Duration
	for _, e := range out {
		if e.Start < minStart {
			minStart = e.Start
		}
	}
	for i := range out {
		out[i].Start -= minStart
		out[i].End -= minStart
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// Timeline is an analyzed trace.
type Timeline struct {
	Events   []Event
	Makespan time.Duration
	// BusyByClass is total busy time per class.
	BusyByClass map[string]time.Duration
	// Lanes maps (node, thread) pairs to lane indices, sorted.
	Lanes map[[2]int]int
}

// Build analyzes a set of events.
func Build(events []Event) *Timeline {
	t := &Timeline{Events: events, BusyByClass: map[string]time.Duration{}, Lanes: map[[2]int]int{}}
	var keys [][2]int
	seen := map[[2]int]bool{}
	for _, e := range events {
		if e.End > t.Makespan {
			t.Makespan = e.End
		}
		t.BusyByClass[e.Class] += e.End - e.Start
		k := [2]int{e.Node, e.Thread}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for i, k := range keys {
		t.Lanes[k] = i
	}
	return t
}

// PanelOverlap returns the fraction of the makespan during which work
// belonging to at least two different panels is in flight simultaneously —
// the pipelining the shifted domain boundary enables (paper Fig. 7b).
// Classes may restrict the measurement (nil means all classes).
func (t *Timeline) PanelOverlap(classes map[string]bool) float64 {
	if t.Makespan == 0 {
		return 0
	}
	type edge struct {
		at    time.Duration
		panel int
		delta int
	}
	var edges []edge
	for _, e := range t.Events {
		if classes != nil && !classes[e.Class] {
			continue
		}
		if e.Panel < 0 {
			continue
		}
		edges = append(edges, edge{e.Start, e.Panel, +1}, edge{e.End, e.Panel, -1})
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].at != edges[b].at {
			return edges[a].at < edges[b].at
		}
		return edges[a].delta < edges[b].delta // process ends first
	})
	active := map[int]int{}
	distinct := 0
	var overlapped time.Duration
	var last time.Duration
	for _, ed := range edges {
		if distinct >= 2 {
			overlapped += ed.at - last
		}
		last = ed.at
		active[ed.panel] += ed.delta
		if active[ed.panel] == 0 {
			delete(active, ed.panel)
		}
		distinct = len(active)
	}
	return float64(overlapped) / float64(t.Makespan)
}

// Utilization returns total busy time divided by lanes × makespan.
func (t *Timeline) Utilization() float64 {
	if t.Makespan == 0 || len(t.Lanes) == 0 {
		return 0
	}
	var busy time.Duration
	for _, d := range t.BusyByClass {
		busy += d
	}
	return float64(busy) / (float64(t.Makespan) * float64(len(t.Lanes)))
}

// classGlyph maps trace classes to single characters for ASCII rendering.
func classGlyph(class string) byte {
	switch class {
	case "panel":
		return 'P'
	case "update":
		return 'u'
	case "binary":
		return 'B'
	case "binary-update":
		return 'b'
	default:
		if class == "" {
			return '#'
		}
		return class[0]
	}
}

// ASCII renders the timeline as one row per (node, thread) lane and width
// columns; each cell shows the class that occupied most of that time
// bucket, or '.' when idle.
func (t *Timeline) ASCII(width int) string {
	if width < 1 || t.Makespan == 0 || len(t.Lanes) == 0 {
		return ""
	}
	rows := make([][]time.Duration, len(t.Lanes))    // per lane per bucket busy
	classAt := make([][]map[string]time.Duration, 0) // dominant class
	for i := range rows {
		rows[i] = make([]time.Duration, width)
		m := make([]map[string]time.Duration, width)
		for j := range m {
			m[j] = map[string]time.Duration{}
		}
		classAt = append(classAt, m)
	}
	bucket := t.Makespan / time.Duration(width)
	if bucket == 0 {
		bucket = 1
	}
	for _, e := range t.Events {
		lane := t.Lanes[[2]int{e.Node, e.Thread}]
		for b := int(e.Start / bucket); b < width && time.Duration(b)*bucket < e.End; b++ {
			lo := time.Duration(b) * bucket
			hi := lo + bucket
			s, en := e.Start, e.End
			if s < lo {
				s = lo
			}
			if en > hi {
				en = hi
			}
			if en > s {
				rows[lane][b] += en - s
				classAt[lane][b][e.Class] += en - s
			}
		}
	}
	var sb strings.Builder
	laneKeys := make([][2]int, len(t.Lanes))
	for k, i := range t.Lanes {
		laneKeys[i] = k
	}
	for i, row := range rows {
		fmt.Fprintf(&sb, "n%02dt%02d |", laneKeys[i][0], laneKeys[i][1])
		for b, busy := range row {
			if busy < bucket/4 {
				sb.WriteByte('.')
				continue
			}
			var best string
			var bestD time.Duration
			for c, d := range classAt[i][b] {
				if d > bestD {
					best, bestD = c, d
				}
			}
			sb.WriteByte(classGlyph(best))
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

// classColor maps classes to the paper's Fig. 7 palette.
func classColor(class string) string {
	switch class {
	case "panel":
		return "#d62728" // red
	case "update":
		return "#ff9a3c" // orange
	case "binary", "binary-update":
		return "#1f77b4" // blue
	default:
		return "#777777"
	}
}

// ChromeTrace renders the timeline in the Chrome trace-event JSON format
// (chrome://tracing, Perfetto): one process per node, one thread lane per
// worker, complete events with microsecond timestamps, colored by class
// through the event name.
func (t *Timeline) ChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, e := range t.Events {
		sep := ","
		if i == len(t.Events)-1 {
			sep = ""
		}
		_, err := fmt.Fprintf(bw,
			`{"name":%q,"cat":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"panel":%d}}%s`+"\n",
			e.Class, e.Class,
			float64(e.Start)/float64(time.Microsecond),
			float64(e.End-e.Start)/float64(time.Microsecond),
			e.Node, e.Thread, e.Panel, sep)
		if err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// SVG renders the timeline as an SVG document, one lane per thread.
func (t *Timeline) SVG(width, laneHeight int) string {
	if t.Makespan == 0 || len(t.Lanes) == 0 {
		return "<svg xmlns=\"http://www.w3.org/2000/svg\"/>"
	}
	h := laneHeight * len(t.Lanes)
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`, width, h)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="#ffffff"/>`, width, h)
	scale := float64(width) / float64(t.Makespan)
	for _, e := range t.Events {
		lane := t.Lanes[[2]int{e.Node, e.Thread}]
		x := float64(e.Start) * scale
		w := float64(e.End-e.Start) * scale
		if w < 0.2 {
			w = 0.2
		}
		fmt.Fprintf(&sb, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s"/>`,
			x, lane*laneHeight+1, w, laneHeight-2, classColor(e.Class))
	}
	sb.WriteString(`</svg>`)
	return sb.String()
}
