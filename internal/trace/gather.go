package trace

import (
	"context"
	"fmt"
	"sort"

	"pulsarqr/internal/transport"
)

// GatherTag is the transport tag reserved for trace-shard gathers. The
// runtime numbers channel tags consecutively from 0 and the qr result
// gather starts at 1<<24, so the slot just below is free on every
// endpoint a run uses.
const GatherTag = 1<<24 - 1

// GatherShards collects every rank's shard at rank 0 — the trace
// counterpart of the result gather. It is collective: every rank of ep must
// call it with its own shard after the run's closing barrier. Rank 0
// returns all shards sorted by rank; other ranks send theirs and return
// (nil, nil). A nil or single-rank endpoint returns just the local shard.
func GatherShards(ctx context.Context, ep transport.Endpoint, local Shard) ([]Shard, error) {
	if ep == nil || ep.Size() == 1 {
		return []Shard{local}, nil
	}
	if ep.Rank() != 0 {
		ep.Isend(EncodeShard(local), 0, GatherTag)
		return nil, nil
	}
	shards := []Shard{local}
	for r := 1; r < ep.Size(); r++ {
		req := ep.Irecv(r, GatherTag)
		if ctx != nil {
			stop := context.AfterFunc(ctx, func() { req.Cancel() })
			req.Wait()
			stop()
		} else {
			req.Wait()
		}
		if req.Canceled() {
			return nil, fmt.Errorf("trace: gather of rank %d's shard canceled", r)
		}
		s, err := DecodeShard(req.Data())
		if err != nil {
			return nil, fmt.Errorf("trace: rank %d shard: %w", r, err)
		}
		shards = append(shards, s)
	}
	sort.Slice(shards, func(a, b int) bool { return shards[a].Rank < shards[b].Rank })
	return shards, nil
}
