package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/tuple"
)

func ev(class string, panel, node, thread int, start, end time.Duration) Event {
	return Event{Class: class, Panel: panel, Node: node, Thread: thread, Start: start, End: end}
}

func TestBuildBasics(t *testing.T) {
	events := []Event{
		ev("panel", 0, 0, 0, 0, 10*time.Millisecond),
		ev("update", 0, 0, 1, 5*time.Millisecond, 25*time.Millisecond),
		ev("binary", 0, 1, 0, 20*time.Millisecond, 30*time.Millisecond),
	}
	tl := Build(events)
	if tl.Makespan != 30*time.Millisecond {
		t.Fatalf("makespan %v", tl.Makespan)
	}
	if len(tl.Lanes) != 3 {
		t.Fatalf("lanes %v", tl.Lanes)
	}
	if tl.BusyByClass["update"] != 20*time.Millisecond {
		t.Fatalf("busy %v", tl.BusyByClass)
	}
	u := tl.Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization %v", u)
	}
}

func TestPanelOverlapDisjoint(t *testing.T) {
	// Panels strictly in sequence: zero overlap.
	tl := Build([]Event{
		ev("panel", 0, 0, 0, 0, 10*time.Millisecond),
		ev("panel", 1, 0, 0, 10*time.Millisecond, 20*time.Millisecond),
	})
	if o := tl.PanelOverlap(nil); o != 0 {
		t.Fatalf("disjoint overlap %v", o)
	}
}

func TestPanelOverlapFull(t *testing.T) {
	// Two panels active over the same 10ms of a 20ms makespan: 50%.
	tl := Build([]Event{
		ev("panel", 0, 0, 0, 0, 10*time.Millisecond),
		ev("panel", 1, 0, 1, 0, 10*time.Millisecond),
		ev("update", 1, 0, 1, 10*time.Millisecond, 20*time.Millisecond),
	})
	if o := tl.PanelOverlap(nil); o < 0.49 || o > 0.51 {
		t.Fatalf("overlap %v, want ~0.5", o)
	}
}

func TestPanelOverlapSamePanelDoesNotCount(t *testing.T) {
	tl := Build([]Event{
		ev("panel", 2, 0, 0, 0, 10*time.Millisecond),
		ev("update", 2, 0, 1, 0, 10*time.Millisecond),
	})
	if o := tl.PanelOverlap(nil); o != 0 {
		t.Fatalf("same-panel concurrency must not count: %v", o)
	}
}

func TestPanelOverlapClassFilter(t *testing.T) {
	tl := Build([]Event{
		ev("panel", 0, 0, 0, 0, 10*time.Millisecond),
		ev("binary", 1, 0, 1, 0, 10*time.Millisecond),
	})
	if o := tl.PanelOverlap(map[string]bool{"panel": true}); o != 0 {
		t.Fatalf("filtered overlap %v", o)
	}
	if o := tl.PanelOverlap(nil); o <= 0.9 {
		t.Fatalf("unfiltered overlap %v", o)
	}
}

func TestRecorderHook(t *testing.T) {
	r := NewRecorder()
	h := r.Hook()
	base := time.Now()
	h(pulsar.FireEvent{Tuple: tuple.New(0, 3, 1), Class: "panel", Node: 0, Thread: 1,
		Start: base, End: base.Add(time.Millisecond)})
	h(pulsar.FireEvent{Tuple: tuple.New(1, 4, 2, 3), Class: "update", Node: 1, Thread: 0,
		Start: base.Add(time.Millisecond), End: base.Add(3 * time.Millisecond)})
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Panel != 3 || evs[1].Panel != 4 {
		t.Fatalf("panel extraction wrong: %+v", evs)
	}
	if evs[0].Start != 0 {
		t.Fatalf("events not normalized: %+v", evs[0])
	}
	if evs[1].End-evs[1].Start != 2*time.Millisecond {
		t.Fatalf("duration wrong: %+v", evs[1])
	}
}

func TestASCIIRendering(t *testing.T) {
	tl := Build([]Event{
		ev("panel", 0, 0, 0, 0, 50*time.Millisecond),
		ev("update", 0, 0, 1, 50*time.Millisecond, 100*time.Millisecond),
	})
	out := tl.ASCII(10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("ascii:\n%s", out)
	}
	if !strings.Contains(lines[0], "PPPPP") || !strings.Contains(lines[0], ".....") {
		t.Fatalf("lane 0 wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "uuuuu") {
		t.Fatalf("lane 1 wrong: %q", lines[1])
	}
	if !strings.HasPrefix(lines[0], "n00t00") || !strings.HasPrefix(lines[1], "n00t01") {
		t.Fatalf("lane labels wrong:\n%s", out)
	}
}

func TestSVGRendering(t *testing.T) {
	tl := Build([]Event{
		ev("panel", 0, 0, 0, 0, time.Millisecond),
		ev("binary", 0, 0, 1, 0, time.Millisecond),
	})
	svg := tl.SVG(400, 12)
	for _, want := range []string{"<svg", "#d62728", "#1f77b4", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q:\n%s", want, svg)
		}
	}
	if got := strings.Count(svg, "<rect"); got != 3 { // background + 2 events
		t.Fatalf("svg has %d rects", got)
	}
}

func TestChromeTraceJSON(t *testing.T) {
	tl := Build([]Event{
		ev("panel", 2, 0, 0, 0, time.Millisecond),
		ev("update", 2, 1, 3, time.Millisecond, 3*time.Millisecond),
	})
	var sb strings.Builder
	if err := tl.ChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 2 {
		t.Fatalf("%d events", len(events))
	}
	e := events[1]
	if e["name"] != "update" || e["ph"] != "X" {
		t.Fatalf("event: %v", e)
	}
	if e["ts"].(float64) != 1000 || e["dur"].(float64) != 2000 {
		t.Fatalf("timing: ts=%v dur=%v", e["ts"], e["dur"])
	}
	if e["pid"].(float64) != 1 || e["tid"].(float64) != 3 {
		t.Fatalf("lane: %v", e)
	}
	if e["args"].(map[string]any)["panel"].(float64) != 2 {
		t.Fatalf("args: %v", e["args"])
	}
}

func TestEmptyTimeline(t *testing.T) {
	tl := Build(nil)
	if tl.Makespan != 0 || tl.Utilization() != 0 || tl.PanelOverlap(nil) != 0 {
		t.Fatal("empty timeline must be all zeros")
	}
	if tl.ASCII(10) != "" {
		t.Fatal("empty ascii must be empty")
	}
	if !strings.Contains(tl.SVG(10, 10), "<svg") {
		t.Fatal("empty svg must still be valid")
	}
}
