package trace

import (
	"container/heap"
	"sort"
	"time"
)

// CriticalPath is the heaviest dependency-respecting chain of compute
// events through a timeline: the lower bound on makespan no amount of extra
// parallelism removes.
type CriticalPath struct {
	Events  []Event // the chain, in start order
	Work    time.Duration
	ByClass map[string]time.Duration
}

// CriticalPath computes the heaviest chain over the fire events with a
// panel index, under the precedence "f can feed e" iff f.End <= e.Start and
// f.Panel <= e.Panel — the dataflow order of the tile-QR DAG, where work on
// panel j only depends on earlier work of panels <= j. Wait and comm events
// never appear on the path.
func (t *Timeline) CriticalPath() CriticalPath {
	var evs []Event
	for _, e := range t.Events {
		if e.Kind == KindFire && e.Panel >= 0 {
			evs = append(evs, e)
		}
	}
	cp := CriticalPath{ByClass: map[string]time.Duration{}}
	if len(evs) == 0 {
		return cp
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].Start != evs[b].Start {
			return evs[a].Start < evs[b].Start
		}
		return evs[a].End < evs[b].End
	})
	// Compress panel indices for the Fenwick tree.
	panels := make([]int, 0, len(evs))
	for _, e := range evs {
		panels = append(panels, e.Panel)
	}
	sort.Ints(panels)
	panels = dedupInts(panels)
	pidx := func(p int) int { return sort.SearchInts(panels, p) + 1 } // 1-based

	// Sweep events in start order; an event may chain after any already
	// retired event (End <= current Start) with panel index <= its own. The
	// Fenwick tree holds, per panel prefix, the best accumulated chain
	// weight among retired events; the pending heap retires events by End
	// as the sweep passes them.
	chain := make([]time.Duration, len(evs))
	pred := make([]int, len(evs))
	fen := newPrefixMax(len(panels))
	pending := &endHeap{evs: evs}
	for i, e := range evs {
		for pending.Len() > 0 && evs[(*pending).idx[0]].End <= e.Start {
			j := heap.Pop(pending).(int)
			fen.update(pidx(evs[j].Panel), chain[j], j)
		}
		best, bi := fen.query(pidx(e.Panel))
		chain[i] = best + (e.End - e.Start)
		pred[i] = bi
		heap.Push(pending, i)
	}
	bestEnd := 0
	for i := range evs {
		if chain[i] > chain[bestEnd] {
			bestEnd = i
		}
	}
	var path []Event
	for i := bestEnd; i >= 0; i = pred[i] {
		path = append(path, evs[i])
	}
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	cp.Events = path
	for _, e := range path {
		d := e.End - e.Start
		cp.Work += d
		cp.ByClass[e.Class] += d
	}
	return cp
}

func dedupInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// prefixMax is a Fenwick tree over panel indices holding (weight, event)
// maxima for prefix queries.
type prefixMax struct {
	w   []time.Duration
	who []int
}

func newPrefixMax(n int) *prefixMax {
	p := &prefixMax{w: make([]time.Duration, n+1), who: make([]int, n+1)}
	for i := range p.who {
		p.who[i] = -1
	}
	return p
}

func (p *prefixMax) update(i int, w time.Duration, who int) {
	for ; i < len(p.w); i += i & (-i) {
		if w > p.w[i] {
			p.w[i], p.who[i] = w, who
		}
	}
}

func (p *prefixMax) query(i int) (time.Duration, int) {
	var w time.Duration
	who := -1
	for ; i > 0; i -= i & (-i) {
		if p.w[i] > w {
			w, who = p.w[i], p.who[i]
		}
	}
	return w, who
}

// endHeap orders pending event indices by End time.
type endHeap struct {
	evs []Event
	idx []int
}

func (h *endHeap) Len() int           { return len(h.idx) }
func (h *endHeap) Less(a, b int) bool { return h.evs[h.idx[a]].End < h.evs[h.idx[b]].End }
func (h *endHeap) Swap(a, b int)      { h.idx[a], h.idx[b] = h.idx[b], h.idx[a] }
func (h *endHeap) Push(x any)         { h.idx = append(h.idx, x.(int)) }
func (h *endHeap) Pop() any {
	old := h.idx
	n := len(old)
	v := old[n-1]
	h.idx = old[:n-1]
	return v
}
