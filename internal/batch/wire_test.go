package batch

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"

	"pulsarqr/internal/matrix"
)

// encodeRequest builds a full request body for the given matrices.
func encodeRequest(t *testing.T, mats []*matrix.Mat) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteRequestHeader(&buf, len(mats)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, m := range mats {
		b = AppendMatrix(b, m)
	}
	return b
}

// Request encoding round-trips through the streaming reader bit-exactly.
func TestRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mats := []*matrix.Mat{
		matrix.NewRand(1, 1, rng),
		matrix.NewRand(8, 4, rng),
		matrix.NewRand(32, 32, rng),
		matrix.NewRand(MaxDim, 7, rng),
	}
	rr, err := NewRequestReader(bytes.NewReader(encodeRequest(t, mats)))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Count() != len(mats) {
		t.Fatalf("Count = %d, want %d", rr.Count(), len(mats))
	}
	for i, want := range mats {
		got, err := rr.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("matrix %d decoded as %dx%d, want %dx%d", i, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		if d := matrix.MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("matrix %d differs by %g after round trip", i, d)
		}
	}
	if _, err := rr.Next(); err != io.EOF {
		t.Fatalf("Next past end: %v, want io.EOF", err)
	}
}

// Response encoding round-trips, out of order, with the checksum verified
// by the reader.
func TestResultRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var buf bytes.Buffer
	rw, err := NewResultWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rs := map[int]*matrix.Mat{
		2: matrix.NewRand(4, 4, rng),
		0: matrix.NewRand(16, 16, rng),
		1: matrix.NewRand(3, 3, rng),
	}
	for _, idx := range []int{2, 0, 1} { // completion order ≠ request order
		if err := rw.WriteResult(idx, rs[idx]); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.WriteTrailer(5); err != nil {
		t.Fatal(err)
	}

	rd, err := NewResultReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for {
		res, tr, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tr != nil {
			if tr.Done != 3 || tr.Shed != 5 {
				t.Fatalf("trailer done=%d shed=%d, want 3/5", tr.Done, tr.Shed)
			}
			break
		}
		want := rs[res.Index]
		if want == nil {
			t.Fatalf("unexpected result index %d", res.Index)
		}
		if d := matrix.MaxAbsDiff(res.R, want); d != 0 {
			t.Fatalf("result %d differs by %g", res.Index, d)
		}
		seen++
	}
	if seen != 3 {
		t.Fatalf("saw %d results, want 3", seen)
	}
}

// A corrupted payload bit flips the checksum and the reader reports it.
func TestResultChecksumMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var buf bytes.Buffer
	rw, _ := NewResultWriter(&buf)
	rw.WriteResult(0, matrix.NewRand(4, 4, rng))
	rw.WriteTrailer(0)
	b := buf.Bytes()
	b[len(b)-20] ^= 1 // flip a payload bit (frame body, before the trailer)

	rd, err := NewResultReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, tr, err := rd.Next()
		if err != nil {
			return // mismatch detected — pass
		}
		if tr != nil {
			t.Fatal("corrupted stream passed checksum verification")
		}
	}
}

// Hostile prefixes: a huge declared count or oversized dimensions must be
// rejected on the spot, never trusted with an allocation.
func TestRequestHostilePrefixes(t *testing.T) {
	huge := []byte{'Q', 'B', 'R', '1', 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := NewRequestReader(bytes.NewReader(huge)); err == nil {
		t.Error("count 0xFFFFFFFF accepted")
	}

	var buf bytes.Buffer
	WriteRequestHeader(&buf, 1)
	b := buf.Bytes()
	b = binary.LittleEndian.AppendUint16(b, 0xFFFF) // m = 65535 > MaxDim
	b = binary.LittleEndian.AppendUint16(b, 4)
	rr, err := NewRequestReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Next(); err == nil {
		t.Error("65535-row matrix accepted")
	}

	if _, err := NewRequestReader(bytes.NewReader([]byte("NOPE0000"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("wrong magic: %v, want ErrBadMagic", err)
	}
}

// Truncation anywhere mid-stream surfaces as io.ErrUnexpectedEOF, never a
// silent short read.
func TestRequestTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	full := encodeRequest(t, []*matrix.Mat{matrix.NewRand(8, 8, rng), matrix.NewRand(8, 8, rng)})
	for _, cut := range []int{9, 12, 40, len(full) - 1} {
		rr, err := NewRequestReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header: %v", cut, err)
		}
		var lastErr error
		for {
			_, err := rr.Next()
			if err != nil {
				lastErr = err
				break
			}
		}
		if !errors.Is(lastErr, io.ErrUnexpectedEOF) {
			t.Errorf("cut at %d: %v, want io.ErrUnexpectedEOF", cut, lastErr)
		}
	}
}

// FuzzRequestReader feeds arbitrary bytes to the request decoder: it must
// never panic and never allocate beyond the per-matrix bound no matter what
// the length prefixes claim. Valid streams must decode to matrices the
// factorization path accepts.
func FuzzRequestReader(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	var seedBuf bytes.Buffer
	WriteRequestHeader(&seedBuf, 2)
	seed := AppendMatrix(AppendMatrix(seedBuf.Bytes(), matrix.NewRand(4, 2, rng)), matrix.NewRand(1, 1, rng))
	f.Add(seed)
	f.Add(seed[:9])                                       // truncated mid-dims
	f.Add([]byte("QBR1\xff\xff\xff\xff"))                 // hostile count
	f.Add([]byte("QBR1\x01\x00\x00\x00\xff\xff\xff\xff")) // hostile dims
	f.Add([]byte("QBS1\x00\x00\x00\x00"))                 // wrong magic
	f.Add([]byte{})                                       // empty

	f.Fuzz(func(t *testing.T, data []byte) {
		rr, err := NewRequestReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i <= rr.Count(); i++ {
			a, err := rr.Next()
			if err != nil {
				return
			}
			if a.Rows < a.Cols || a.Cols < 1 || a.Rows > MaxDim {
				t.Fatalf("decoder emitted invalid %dx%d matrix", a.Rows, a.Cols)
			}
		}
	})
}

// FuzzResultReader: the client-side decoder survives arbitrary response
// bytes the same way.
func FuzzResultReader(f *testing.F) {
	rng := rand.New(rand.NewSource(6))
	var buf bytes.Buffer
	rw, _ := NewResultWriter(&buf)
	rw.WriteResult(0, matrix.NewRand(3, 3, rng))
	rw.WriteTrailer(1)
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:7])
	f.Add([]byte("QBS1\xfe\xff\xff\xff\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewResultReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < MaxCount; i++ {
			_, tr, err := rd.Next()
			if err != nil || tr != nil {
				return
			}
		}
	})
}
