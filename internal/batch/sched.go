package batch

import (
	"context"
	"errors"
	"io"
	"time"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
)

// Scheduler dispatches batched factorizations onto a warm pulsar.Pool. The
// unit of dispatch is a chunk of ChunkSize matrices: one Pool.Exec task
// factorizes the whole chunk on a worker, amortizing task-queue traffic over
// many matrices, and the pool's work stealing keeps every worker busy even
// when round-robin placement is unlucky. A bounded window of in-flight
// chunks couples the request reader to the factorization rate, so a huge
// request body is pulled through the decoder no faster than the workers can
// retire it — the scheduler's memory footprint is Window×ChunkSize matrices
// regardless of request size.
type Scheduler struct {
	pool      *pulsar.Pool
	chunkSize int
	window    int
	crossover int
	onChunk   func(matrices int, d time.Duration)
}

// SchedConfig configures a Scheduler.
type SchedConfig struct {
	// Pool executes the chunks. Required.
	Pool *pulsar.Pool

	// ChunkSize is the number of matrices per dispatched task (default 64).
	ChunkSize int

	// Window caps in-flight chunks (default 2× the pool's threads): enough
	// that every worker has a chunk running and one queued, small enough to
	// bound memory.
	Window int

	// Crossover is the Givens/compact-WY engine threshold passed to
	// FactorWS (≤ 0 takes DefaultCrossover).
	Crossover int

	// OnChunk, when set, observes every completed chunk: its matrix count
	// and wall time from dispatch to completion. Called from pool worker
	// goroutines — it must be safe for concurrent use.
	OnChunk func(matrices int, d time.Duration)
}

// NewScheduler returns a Scheduler over cfg.Pool.
func NewScheduler(cfg SchedConfig) *Scheduler {
	if cfg.Pool == nil {
		panic("batch: SchedConfig.Pool is required")
	}
	s := &Scheduler{
		pool:      cfg.Pool,
		chunkSize: cfg.ChunkSize,
		window:    cfg.Window,
		crossover: cfg.Crossover,
		onChunk:   cfg.OnChunk,
	}
	if s.chunkSize <= 0 {
		s.chunkSize = 64
	}
	if s.window <= 0 {
		s.window = 2 * cfg.Pool.Threads()
	}
	return s
}

// chunk is one dispatch unit: mats[i] is request matrix base+i, factorized
// in place by the worker task.
type chunk struct {
	base int
	mats []*matrix.Mat
}

// ErrPoolClosed reports that the pool stopped accepting work mid-stream.
var ErrPoolClosed = errors.New("batch: pool closed")

// Stream pulls matrices from next until io.EOF, factorizes them on the pool
// and hands each result to emit in completion order — chunk boundaries and
// ordering are not observable beyond the index. next runs in a scheduler
// goroutine and emit on the calling goroutine, each serially, so a wire
// RequestReader and ResultWriter can be passed in directly.
//
// Stream returns the number of matrices emitted. It stops early — returning
// the partial count and the cause — when next fails, emit fails, ctx is
// canceled, or the pool closes; chunks already in flight are abandoned to
// the pool (their tasks complete or are dropped harmlessly). next should
// return an error once ctx is canceled — an HTTP request body does, because
// the server closes it — or the reader goroutine outlives the call. The
// caller reconciles done against the declared request count to report shed
// work.
func (s *Scheduler) Stream(ctx context.Context, next func() (*matrix.Mat, error), emit func(index int, r *matrix.Mat) error) (done int, err error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // unblock the reader goroutine on any exit path

	// results never blocks a worker: at most window chunks are in flight
	// (each holding a sem slot released only after collection), and the
	// channel buffers exactly that many.
	results := make(chan *chunk, s.window)
	sem := make(chan struct{}, s.window)
	type readEnd struct {
		chunks int
		err    error
	}
	readerDone := make(chan readEnd, 1)

	go func() {
		submitted := 0
		base := 0
		for {
			c := &chunk{base: base}
			for len(c.mats) < s.chunkSize {
				m, err := next()
				if err != nil {
					if !errors.Is(err, io.EOF) {
						s.flush(ctx, c, sem, results, &submitted)
						readerDone <- readEnd{chunks: submitted, err: err}
						return
					}
					err = s.flush(ctx, c, sem, results, &submitted)
					readerDone <- readEnd{chunks: submitted, err: err}
					return
				}
				c.mats = append(c.mats, m)
				base++
			}
			if err := s.flush(ctx, c, sem, results, &submitted); err != nil {
				readerDone <- readEnd{chunks: submitted, err: err}
				return
			}
		}
	}()

	collected, total := 0, -1
	var readErr error
	for total < 0 || collected < total {
		select {
		case c := <-results:
			collected++
			for i, m := range c.mats {
				if m == nil {
					continue
				}
				if err := emit(c.base+i, m); err != nil {
					return done, err
				}
				done++
			}
			<-sem
		case end := <-readerDone:
			total, readErr = end.chunks, end.err
		case <-ctx.Done():
			return done, ctx.Err()
		}
	}
	return done, readErr
}

// flush dispatches c (if non-empty) onto the pool, blocking for a window
// slot first. The worker task factorizes every matrix in the chunk with its
// warm per-worker workspace and reports the chunk on results.
func (s *Scheduler) flush(ctx context.Context, c *chunk, sem chan struct{}, results chan *chunk, submitted *int) error {
	if len(c.mats) == 0 {
		return nil
	}
	select {
	case sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	start := time.Now()
	ok := s.pool.Exec(func(state any) {
		ws, _ := state.(*kernels.Workspace)
		if ws == nil {
			ws = kernels.BorrowWorkspace()
			defer kernels.ReturnWorkspace(ws)
		}
		for i, m := range c.mats {
			if FactorWS(ws, m, s.crossover) != nil {
				c.mats[i] = nil // unfactorizable shapes are shed, not fatal
			}
		}
		if s.onChunk != nil {
			s.onChunk(len(c.mats), time.Since(start))
		}
		results <- c
	})
	if !ok {
		<-sem
		return ErrPoolClosed
	}
	*submitted++
	return nil
}
