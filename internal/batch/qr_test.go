package batch

import (
	"math"
	"math/rand"
	"testing"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
)

// oracleR computes the sign-canonical R of a with an independent scalar
// algorithm — unblocked Householder via the exported Dgeqr2 primitive —
// giving the property tests a reference that shares no code with either
// batch engine's driver.
func oracleR(a *matrix.Mat) *matrix.Mat {
	c := a.Clone()
	tau := make([]float64, min(c.Rows, c.Cols))
	kernels.Dgeqr2(c, tau)
	r := matrix.New(c.Cols, c.Cols)
	for j := 0; j < c.Cols; j++ {
		for i := 0; i <= j && i < c.Rows; i++ {
			r.Set(i, j, c.At(i, j))
		}
	}
	Canonicalize(r)
	return r
}

// rTop returns the leading n×n block of a factored matrix (where FactorWS
// leaves R).
func rTop(a *matrix.Mat) *matrix.Mat {
	return a.View(0, 0, a.Cols, a.Cols).Clone()
}

// checkR compares a computed R against the oracle elementwise, with a
// tolerance scaled to the problem: Givens and Householder accumulate
// rounding differently, so exact equality only holds within one engine.
func checkR(t *testing.T, label string, got, want *matrix.Mat, scale float64) {
	t.Helper()
	tol := 1e-12 * math.Max(1, scale) * float64(want.Rows+1)
	if d := matrix.MaxAbsDiff(got, want); d > tol {
		t.Errorf("%s: R differs from oracle by %g (tol %g)", label, d, tol)
	}
}

// testShapes enumerates the crossover-boundary shapes the satellite task
// names: every size across 1×1 … 96×96 around the Givens/compact-WY
// threshold, tall, skinny, square.
func testShapes() [][2]int {
	var shapes [][2]int
	for n := 1; n <= 96; n = n + 1 + n/8 {
		shapes = append(shapes, [2]int{n, n}) // square
		if 2*n <= 192 {
			shapes = append(shapes, [2]int{2 * n, n}) // tall
		}
		shapes = append(shapes, [2]int{n + 3, n}) // barely tall
	}
	// Pin the exact crossover boundary: n = crossover-1, crossover,
	// crossover+1 all at several aspect ratios.
	for _, n := range []int{DefaultCrossover - 1, DefaultCrossover, DefaultCrossover + 1} {
		shapes = append(shapes, [2]int{n, n}, [2]int{3 * n, n}, [2]int{96, n})
	}
	return shapes
}

// The core numerics property: the Givens sweep, the compact-WY blocked
// Householder path, and the scalar oracle agree elementwise (within
// tolerance) on every shape across the threshold boundary — both engines
// forced on both sides of the crossover.
func TestFactorEnginesAgree(t *testing.T) {
	ws := kernels.NewWorkspace()
	rng := rand.New(rand.NewSource(42))
	for _, sh := range testShapes() {
		m, n := sh[0], sh[1]
		a := matrix.NewRand(m, n, rng)
		want := oracleR(a)

		giv := a.Clone()
		givensQR(giv)
		canonicalizeR(giv)
		checkR(t, labelOf("givens", m, n), rTop(giv), want, float64(m))

		// Force the Householder path regardless of size (crossover 0 means
		// "default"; use a negative... the API treats <=0 as default, so
		// call the engine underneath via FactorWS with crossover below n).
		if n > 1 {
			hh := a.Clone()
			if err := FactorWS(ws, hh, n-1); err != nil {
				t.Fatalf("FactorWS(%dx%d): %v", m, n, err)
			}
			checkR(t, labelOf("compact-WY", m, n), rTop(hh), want, float64(m))
		}

		// And the production policy (default crossover picks the engine).
		def := a.Clone()
		if err := FactorWS(ws, def, 0); err != nil {
			t.Fatalf("FactorWS default(%dx%d): %v", m, n, err)
		}
		checkR(t, labelOf("default", m, n), rTop(def), want, float64(m))
	}
}

func labelOf(engine string, m, n int) string {
	return engine + " " + itoa(m) + "x" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Rank-deficient inputs — zero columns, duplicated columns, zero matrices —
// must not blow up either engine. Elementwise agreement is NOT a valid
// property here: a zero diagonal entry makes the triangular factor of the
// singular Gram matrix non-unique beyond row signs, so different elimination
// orders legitimately produce different (all correct) Rs. The invariant that
// does hold is RᵀR = AᵀA with finite entries and clean structure.
func TestFactorRankDeficient(t *testing.T) {
	ws := kernels.NewWorkspace()
	rng := rand.New(rand.NewSource(7))
	for _, sh := range [][2]int{{8, 8}, {16, 8}, {13, 13}, {32, 20}, {96, 64}} {
		m, n := sh[0], sh[1]
		cases := map[string]*matrix.Mat{}

		zc := matrix.NewRand(m, n, rng) // a zero column mid-panel
		for i := 0; i < m; i++ {
			zc.Set(i, n/2, 0)
		}
		cases["zero-column"] = zc

		dup := matrix.NewRand(m, n, rng) // two identical columns
		for i := 0; i < m; i++ {
			dup.Set(i, n-1, dup.At(i, 0))
		}
		cases["dup-column"] = dup

		cases["all-zero"] = matrix.New(m, n)

		r1 := matrix.NewRand(m, 1, rng) // rank 1: outer product
		r2 := matrix.NewRand(n, 1, rng)
		cases["rank-1"] = r1.Mul(r2.Transpose())

		for name, a := range cases {
			giv := a.Clone()
			givensQR(giv)
			canonicalizeR(giv)
			checkGram(t, name+" givens "+labelOf("", m, n), a, rTop(giv))
			if n > 1 {
				hh := a.Clone()
				if err := FactorWS(ws, hh, 1); err != nil {
					t.Fatalf("%s FactorWS: %v", name, err)
				}
				checkGram(t, name+" compact-WY "+labelOf("", m, n), a, rTop(hh))
			}
		}
	}
}

// checkGram asserts the sign-free factorization-quality invariant
// RᵀR = AᵀA, that r is upper triangular, and that every entry is finite.
func checkGram(t *testing.T, label string, a, r *matrix.Mat) {
	t.Helper()
	for j := 0; j < r.Cols; j++ {
		for i := 0; i < r.Rows; i++ {
			v := r.At(i, j)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: R[%d,%d] = %g", label, i, j, v)
			}
			if i > j && v != 0 {
				t.Fatalf("%s: R[%d,%d] = %g below the diagonal", label, i, j, v)
			}
		}
	}
	ata := a.Transpose().Mul(a)
	rtr := r.Transpose().Mul(r)
	if d := ata.Sub(rtr).FrobNorm() / math.Max(ata.FrobNorm(), 1e-300); d > 1e-12*float64(a.Rows+1) {
		t.Errorf("%s: ‖AᵀA − RᵀR‖/‖AᵀA‖ = %g", label, d)
	}
}

// R must satisfy RᵀR = AᵀA (the factorization-quality invariant that does
// not depend on sign conventions at all).
func TestFactorGram(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sh := range [][2]int{{1, 1}, {5, 3}, {12, 12}, {33, 17}, {96, 96}} {
		m, n := sh[0], sh[1]
		a := matrix.NewRand(m, n, rng)
		f := a.Clone()
		if err := Factor(f); err != nil {
			t.Fatal(err)
		}
		r := rTop(f)
		ata := a.Transpose().Mul(a)
		rtr := r.Transpose().Mul(r)
		if d := ata.Sub(rtr).FrobNorm() / math.Max(ata.FrobNorm(), 1e-300); d > 1e-12*float64(m) {
			t.Errorf("%dx%d: ‖AᵀA − RᵀR‖/‖AᵀA‖ = %g", m, n, d)
		}
	}
}

// Shape validation: wide and degenerate matrices are refused, oversized
// ones pointed at the VSA path.
func TestFactorValidation(t *testing.T) {
	if err := Factor(matrix.New(3, 5)); err == nil {
		t.Error("wide matrix accepted")
	}
	if err := Factor(matrix.New(0, 0)); err == nil {
		t.Error("empty matrix accepted")
	}
	if err := Factor(matrix.New(MaxDim+1, 4)); err == nil {
		t.Error("oversized matrix accepted")
	}
}

// Steady-state factorization must not allocate: the workspace absorbs all
// scratch for both engines.
func TestFactorZeroAlloc(t *testing.T) {
	ws := kernels.NewWorkspace()
	rng := rand.New(rand.NewSource(9))
	giv := matrix.NewRand(24, 8, rng) // Givens path
	hh := matrix.NewRand(48, 32, rng) // compact-WY path
	warmG, warmH := giv.Clone(), hh.Clone()
	FactorWS(ws, warmG, 0)
	FactorWS(ws, warmH, 0)

	gBuf, hBuf := giv.Clone(), hh.Clone()
	allocs := testing.AllocsPerRun(50, func() {
		gBuf.CopyFrom(giv)
		hBuf.CopyFrom(hh)
		FactorWS(ws, gBuf, 0)
		FactorWS(ws, hBuf, 0)
	})
	if allocs > 0 {
		t.Errorf("steady-state FactorWS allocates %.1f times per run, want 0", allocs)
	}
}
