// Package batch implements the batched small-matrix QR subsystem: a
// cache-resident fast path for the high-QPS wireless/MIMO workload of
// millions of tiny (≤64×64) decompositions per second, the exact inverse of
// the one-big-matrix shape the VSA is built for.
//
// Below a size threshold a matrix never touches the tree runtime at all: it
// is factorized in place by a Givens-rotation sweep (skinny/tiny shapes) or
// a compact-WY blocked Householder factorization (above the crossover), both
// drawing every byte of scratch from a kernels.Workspace so steady-state
// factorization allocates nothing. Thousands of matrices are packed per
// request (see wire.go), chunked, and dispatched onto the warm pulsar.Pool
// by a work-stealing scheduler (see sched.go) that streams each chunk's
// results back as it completes.
package batch

import (
	"fmt"
	"math"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
)

const (
	// MaxDim bounds the matrices the batch path accepts. Anything larger
	// belongs on the VSA path — and admission control should reject an
	// absurd request at the door, not after it has been allocated.
	MaxDim = 256

	// DefaultCrossover is the column count at or below which the Givens
	// sweep beats the blocked Householder path: skinny panels spend most of
	// a block reflector's flops on bookkeeping, while a Givens rotation
	// touches exactly the two rows it combines.
	DefaultCrossover = 12

	// defaultIB is the inner block size of the compact-WY path, matching
	// the library default for tile kernels.
	defaultIB = 16
)

// FactorWS overwrites the m×n matrix a (m ≥ n ≥ 1) with the R factor of its
// QR decomposition: on return the upper triangle holds R, everything below
// the diagonal is zero, and R is sign-canonical (non-negative diagonal) so
// results are comparable across engines — QR is unique only up to the signs
// of R's rows, and the Givens and Householder paths would otherwise disagree.
//
// crossover selects the engine: n ≤ crossover runs the Givens sweep, larger
// matrices the compact-WY blocked Householder factorization (crossover ≤ 0
// takes DefaultCrossover). All scratch comes from ws; a nil ws borrows a
// pooled workspace for the call. The Householder vectors are not retained —
// the batch workload wants R (e.g. for RᵀR = AᵀA in MMSE equalization), not Q.
func FactorWS(ws *kernels.Workspace, a *matrix.Mat, crossover int) error {
	m, n := a.Rows, a.Cols
	if n < 1 || m < n {
		return fmt.Errorf("batch: matrix is %dx%d; batched factorization requires m >= n >= 1", m, n)
	}
	if m > MaxDim {
		return fmt.Errorf("batch: matrix is %dx%d; the batch path caps at %d (use /v1/factorize)", m, n, MaxDim)
	}
	if crossover <= 0 {
		crossover = DefaultCrossover
	}
	if n <= crossover {
		givensQR(a)
	} else {
		if ws == nil {
			ws = kernels.BorrowWorkspace()
			defer kernels.ReturnWorkspace(ws)
		}
		ib := defaultIB
		if ib > n {
			ib = n
		}
		t := ws.Aux(0, ib, n)
		kernels.DgeqrtWS(ws, ib, a, t)
		// Drop the Householder vectors: the wire carries a clean R.
		for j := 0; j < n; j++ {
			col := a.Data[j*a.LD : j*a.LD+m]
			for i := j + 1; i < m; i++ {
				col[i] = 0
			}
		}
	}
	canonicalizeR(a)
	return nil
}

// Factor is FactorWS with a borrowed workspace and the default crossover.
func Factor(a *matrix.Mat) error { return FactorWS(nil, a, 0) }

// givensQR triangularizes a in place with Givens rotations: column by
// column, each subdiagonal entry is annihilated by a rotation of its row
// against the diagonal row. Rotations touch only the trailing columns of
// the two rows involved, so for skinny shapes the whole working set is two
// rows — cache-resident by construction. The computed diagonal entries are
// non-negative (r = +hypot), except where a column needed no elimination.
func givensQR(a *matrix.Mat) {
	m, n, ld, d := a.Rows, a.Cols, a.LD, a.Data
	for j := 0; j < n; j++ {
		for i := j + 1; i < m; i++ {
			y := d[i+j*ld]
			if y == 0 {
				continue
			}
			x := d[j+j*ld]
			r := math.Hypot(x, y)
			c, s := x/r, y/r
			d[j+j*ld], d[i+j*ld] = r, 0
			for k := j + 1; k < n; k++ {
				u, v := d[j+k*ld], d[i+k*ld]
				d[j+k*ld] = c*u + s*v
				d[i+k*ld] = c*v - s*u
			}
		}
	}
}

// canonicalizeR flips the sign of any R row whose diagonal entry is
// negative, making diag(R) ≥ 0 — the canonical representative of the QR
// equivalence class. (Q absorbs the flip; only R is reported.)
func canonicalizeR(a *matrix.Mat) {
	n := a.Cols
	for i := 0; i < n; i++ {
		if a.At(i, i) < 0 {
			for j := i; j < n; j++ {
				a.Set(i, j, -a.At(i, j))
			}
		}
	}
}

// Canonicalize applies the batch path's sign convention (diag(R) ≥ 0) to an
// externally computed R, for elementwise comparison against batch results.
func Canonicalize(r *matrix.Mat) { canonicalizeR(r) }
