package batch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"pulsarqr/internal/matrix"
)

// Wire format of POST /v1/batch. The request body is one stream:
//
//	"QBR1" [u32 count] count × ( [u16 m] [u16 n] m·n × [f64] )
//
// and the response is its mirror, with results in completion order (NOT
// request order — chunks finish whenever a worker gets to them):
//
//	"QBS1" frames × ( [u32 index] [u16 k] [u16 n] k·n × [f64] ) trailer
//	trailer = [u32 0xFFFFFFFF] [u32 done] [u32 shed] [u64 checksum]
//
// All integers are little-endian; floats are IEEE-754 bit patterns, written
// little-endian, column-major. Each result frame carries the full k×k upper
// triangle of R as a k×n square (zeros below the diagonal), where k = n of
// the request matrix at that index. The trailer's checksum is the XOR of the
// Float64bits of every result element emitted — XOR because it is exact and
// order-independent, so the client can verify it even though frames arrive
// out of order. done counts frames emitted; shed counts matrices dropped
// when the stream was cut short (cancellation, shutdown), so a client
// always learns whether it got everything.
//
// Decoders defend against hostile prefixes the same way transport.ReadFrame
// does: every count and dimension is validated against a hard bound before
// any memory is committed, so a 12-byte garbage request cannot force a
// large allocation.

// Request and response stream magics.
var (
	reqMagic  = [4]byte{'Q', 'B', 'R', '1'}
	respMagic = [4]byte{'Q', 'B', 'S', '1'}
)

// MaxCount bounds the matrix count a single batch request may declare.
const MaxCount = 1 << 20

// trailerIndex marks the response trailer frame.
const trailerIndex = 0xFFFFFFFF

// ErrBadMagic reports a stream that does not start with the expected magic.
var ErrBadMagic = errors.New("batch: bad stream magic")

// WriteRequestHeader writes the request magic and matrix count.
func WriteRequestHeader(w io.Writer, count int) error {
	if count < 0 || count > MaxCount {
		return fmt.Errorf("batch: request count %d out of range [0,%d]", count, MaxCount)
	}
	var hdr [8]byte
	copy(hdr[:4], reqMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:], uint32(count))
	_, err := w.Write(hdr[:])
	return err
}

// AppendMatrix appends the request encoding of a to dst: dimensions then the
// column-major payload. It panics on shapes the batch path cannot accept —
// a programming error on the sending side.
func AppendMatrix(dst []byte, a *matrix.Mat) []byte {
	m, n := a.Rows, a.Cols
	if n < 1 || m < n || m > MaxDim {
		panic(fmt.Sprintf("batch: encode %dx%d matrix", m, n))
	}
	var dims [4]byte
	binary.LittleEndian.PutUint16(dims[0:], uint16(m))
	binary.LittleEndian.PutUint16(dims[2:], uint16(n))
	dst = append(dst, dims[:]...)
	for j := 0; j < n; j++ {
		col := a.Data[j*a.LD : j*a.LD+m]
		for _, v := range col {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// RequestReader decodes a batch request stream matrix by matrix, so the
// handler can dispatch chunks while the body is still arriving. Matrices
// returned by Next are freshly allocated and owned by the caller; the
// reader's internal byte scratch is reused across calls.
type RequestReader struct {
	r     io.Reader
	count int
	read  int
	buf   []byte
}

// NewRequestReader validates the stream header and returns a reader over
// its matrices.
func NewRequestReader(r io.Reader) (*RequestReader, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("batch: request header: %w", err)
	}
	if [4]byte(hdr[:4]) != reqMagic {
		return nil, ErrBadMagic
	}
	count := binary.LittleEndian.Uint32(hdr[4:])
	if count > MaxCount {
		return nil, fmt.Errorf("batch: request declares %d matrices, limit %d", count, MaxCount)
	}
	return &RequestReader{r: r, count: int(count)}, nil
}

// Count returns the matrix count the stream header declared.
func (rr *RequestReader) Count() int { return rr.count }

// Next decodes the next matrix. It returns io.EOF after the declared count
// has been read; a stream that ends early yields an error wrapping
// io.ErrUnexpectedEOF. Dimensions are validated before the payload is
// allocated or read.
func (rr *RequestReader) Next() (*matrix.Mat, error) {
	if rr.read >= rr.count {
		return nil, io.EOF
	}
	var dims [4]byte
	if _, err := io.ReadFull(rr.r, dims[:]); err != nil {
		return nil, fmt.Errorf("batch: matrix %d header: %w", rr.read, noEOF(err))
	}
	m := int(binary.LittleEndian.Uint16(dims[0:]))
	n := int(binary.LittleEndian.Uint16(dims[2:]))
	if n < 1 || m < n || m > MaxDim {
		return nil, fmt.Errorf("batch: matrix %d is %dx%d; need %d >= m >= n >= 1", rr.read, m, n, MaxDim)
	}
	need := m * n * 8
	if cap(rr.buf) < need {
		rr.buf = make([]byte, need)
	}
	buf := rr.buf[:need]
	if _, err := io.ReadFull(rr.r, buf); err != nil {
		return nil, fmt.Errorf("batch: matrix %d payload: %w", rr.read, noEOF(err))
	}
	a := matrix.New(m, n)
	for i := range a.Data {
		a.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	rr.read++
	return a, nil
}

// noEOF turns a bare io.EOF into io.ErrUnexpectedEOF: inside a declared
// stream, running out of bytes is always a truncation.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ResultWriter encodes the response stream, tracking the running checksum
// and frame count for the trailer. It is not safe for concurrent use; the
// scheduler serializes emission.
type ResultWriter struct {
	w    io.Writer
	buf  []byte
	sum  uint64
	done uint32
}

// NewResultWriter writes the response magic and returns the writer.
func NewResultWriter(w io.Writer) (*ResultWriter, error) {
	if _, err := w.Write(respMagic[:]); err != nil {
		return nil, err
	}
	return &ResultWriter{w: w}, nil
}

// WriteResult emits one result frame: the R factor for the request matrix
// at index, folded into the running checksum.
func (rw *ResultWriter) WriteResult(index int, r *matrix.Mat) error {
	k, n := r.Rows, r.Cols
	if n < 1 || k > MaxDim || n > MaxDim {
		panic(fmt.Sprintf("batch: encode %dx%d result", k, n))
	}
	rw.buf = rw.buf[:0]
	rw.buf = binary.LittleEndian.AppendUint32(rw.buf, uint32(index))
	rw.buf = binary.LittleEndian.AppendUint16(rw.buf, uint16(k))
	rw.buf = binary.LittleEndian.AppendUint16(rw.buf, uint16(n))
	for j := 0; j < n; j++ {
		col := r.Data[j*r.LD : j*r.LD+k]
		for _, v := range col {
			bits := math.Float64bits(v)
			rw.sum ^= bits
			rw.buf = binary.LittleEndian.AppendUint64(rw.buf, bits)
		}
	}
	if _, err := rw.w.Write(rw.buf); err != nil {
		return err
	}
	rw.done++
	return nil
}

// Done returns the number of result frames written so far.
func (rw *ResultWriter) Done() int { return int(rw.done) }

// WriteTrailer ends the stream, reporting shed matrices (those the server
// never factorized) and the checksum of everything emitted.
func (rw *ResultWriter) WriteTrailer(shed int) error {
	rw.buf = rw.buf[:0]
	rw.buf = binary.LittleEndian.AppendUint32(rw.buf, trailerIndex)
	rw.buf = binary.LittleEndian.AppendUint32(rw.buf, rw.done)
	rw.buf = binary.LittleEndian.AppendUint32(rw.buf, uint32(shed))
	rw.buf = binary.LittleEndian.AppendUint64(rw.buf, rw.sum)
	_, err := rw.w.Write(rw.buf)
	return err
}

// Trailer is the decoded end-of-stream summary of a batch response.
type Trailer struct {
	Done int    // result frames the server emitted
	Shed int    // matrices the server dropped (cancellation, shutdown)
	Sum  uint64 // server-side checksum of every emitted element
}

// Result is one decoded response frame.
type Result struct {
	Index int // position of the source matrix in the request
	R     *matrix.Mat
}

// ResultReader decodes a batch response stream, verifying the trailer
// checksum against what was actually received.
type ResultReader struct {
	r    io.Reader
	buf  []byte
	sum  uint64
	done int
}

// NewResultReader validates the response magic and returns a reader.
func NewResultReader(r io.Reader) (*ResultReader, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("batch: response header: %w", err)
	}
	if magic != respMagic {
		return nil, ErrBadMagic
	}
	return &ResultReader{r: r}, nil
}

// Next decodes the next result frame. At the end of the stream it returns
// (nil, trailer, nil) after verifying the checksum and frame count; before
// that, (result, nil, nil).
func (rr *ResultReader) Next() (*Result, *Trailer, error) {
	var idx [4]byte
	if _, err := io.ReadFull(rr.r, idx[:]); err != nil {
		return nil, nil, fmt.Errorf("batch: result frame: %w", noEOF(err))
	}
	index := binary.LittleEndian.Uint32(idx[:])
	if index == trailerIndex {
		var tb [16]byte
		if _, err := io.ReadFull(rr.r, tb[:]); err != nil {
			return nil, nil, fmt.Errorf("batch: trailer: %w", noEOF(err))
		}
		t := &Trailer{
			Done: int(binary.LittleEndian.Uint32(tb[0:])),
			Shed: int(binary.LittleEndian.Uint32(tb[4:])),
			Sum:  binary.LittleEndian.Uint64(tb[8:]),
		}
		if t.Done != rr.done {
			return nil, nil, fmt.Errorf("batch: trailer declares %d results, stream carried %d", t.Done, rr.done)
		}
		if t.Sum != rr.sum {
			return nil, nil, fmt.Errorf("batch: checksum mismatch: server %016x, received %016x", t.Sum, rr.sum)
		}
		return nil, t, nil
	}
	if index > MaxCount {
		return nil, nil, fmt.Errorf("batch: result index %d out of range", index)
	}
	var dims [4]byte
	if _, err := io.ReadFull(rr.r, dims[:]); err != nil {
		return nil, nil, fmt.Errorf("batch: result %d header: %w", index, noEOF(err))
	}
	k := int(binary.LittleEndian.Uint16(dims[0:]))
	n := int(binary.LittleEndian.Uint16(dims[2:]))
	if n < 1 || k < 1 || k > MaxDim || n > MaxDim {
		return nil, nil, fmt.Errorf("batch: result %d is %dx%d", index, k, n)
	}
	need := k * n * 8
	if cap(rr.buf) < need {
		rr.buf = make([]byte, need)
	}
	buf := rr.buf[:need]
	if _, err := io.ReadFull(rr.r, buf); err != nil {
		return nil, nil, fmt.Errorf("batch: result %d payload: %w", index, noEOF(err))
	}
	r := matrix.New(k, n)
	for i := range r.Data {
		bits := binary.LittleEndian.Uint64(buf[i*8:])
		rr.sum ^= bits
		r.Data[i] = math.Float64frombits(bits)
	}
	rr.done++
	return &Result{Index: int(index), R: r}, nil, nil
}
