package batch

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
)

func testPool(t *testing.T, threads int) *pulsar.Pool {
	t.Helper()
	p := pulsar.NewPool(threads, func(int) any { return kernels.NewWorkspace() })
	t.Cleanup(p.Close)
	return p
}

// matSource yields the given matrices (cloned, since workers factorize in
// place) then io.EOF.
func matSource(mats []*matrix.Mat) func() (*matrix.Mat, error) {
	i := 0
	return func() (*matrix.Mat, error) {
		if i >= len(mats) {
			return nil, io.EOF
		}
		m := mats[i].Clone()
		i++
		return m, nil
	}
}

// Stream factorizes every matrix exactly once, and each emitted R matches
// the sequential reference for its index — across chunk boundaries, partial
// tail chunks, and out-of-order completion.
func TestSchedulerStream(t *testing.T) {
	pool := testPool(t, 4)
	var chunks atomic.Int64
	s := NewScheduler(SchedConfig{
		Pool:      pool,
		ChunkSize: 16,
		OnChunk:   func(int, time.Duration) { chunks.Add(1) },
	})

	rng := rand.New(rand.NewSource(11))
	const n = 203 // deliberately not a multiple of the chunk size
	mats := make([]*matrix.Mat, n)
	for i := range mats {
		sz := 1 + rng.Intn(32)
		mats[i] = matrix.NewRand(sz+rng.Intn(8), sz, rng)
	}

	got := make(map[int]*matrix.Mat, n)
	done, err := s.Stream(context.Background(), matSource(mats), func(index int, r *matrix.Mat) error {
		if got[index] != nil {
			t.Errorf("index %d emitted twice", index)
		}
		got[index] = r.Clone()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	if c := chunks.Load(); c != (n+15)/16 {
		t.Fatalf("OnChunk fired %d times, want %d", c, (n+15)/16)
	}
	ws := kernels.NewWorkspace()
	for i, a := range mats {
		want := a.Clone()
		if err := FactorWS(ws, want, 0); err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(got[i], want); d != 0 {
			t.Fatalf("matrix %d: scheduler result differs from direct FactorWS by %g", i, d)
		}
	}
}

// A failing source ends the stream with the error after emitting what was
// already read.
func TestSchedulerSourceError(t *testing.T) {
	pool := testPool(t, 2)
	s := NewScheduler(SchedConfig{Pool: pool, ChunkSize: 4})
	boom := errors.New("decode failed")
	rng := rand.New(rand.NewSource(12))
	i := 0
	done, err := s.Stream(context.Background(), func() (*matrix.Mat, error) {
		if i == 10 {
			return nil, boom
		}
		i++
		return matrix.NewRand(4, 4, rng), nil
	}, func(int, *matrix.Mat) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the source error", err)
	}
	if done != 10 {
		t.Fatalf("done = %d, want the 10 matrices read before the failure", done)
	}
}

// A failing emit (client gone) stops the stream promptly.
func TestSchedulerEmitError(t *testing.T) {
	pool := testPool(t, 2)
	s := NewScheduler(SchedConfig{Pool: pool, ChunkSize: 4})
	rng := rand.New(rand.NewSource(13))
	mats := make([]*matrix.Mat, 64)
	for i := range mats {
		mats[i] = matrix.NewRand(4, 4, rng)
	}
	gone := errors.New("client went away")
	emitted := 0
	done, err := s.Stream(context.Background(), matSource(mats), func(int, *matrix.Mat) error {
		if emitted >= 8 {
			return gone
		}
		emitted++
		return nil
	})
	if !errors.Is(err, gone) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if done != 8 {
		t.Fatalf("done = %d, want 8", done)
	}
}

// Cancellation mid-stream returns ctx.Err with partial progress; the stream
// never wedges on in-flight chunks.
func TestSchedulerCancel(t *testing.T) {
	pool := testPool(t, 2)
	s := NewScheduler(SchedConfig{Pool: pool, ChunkSize: 2, Window: 2})
	ctx, cancel := context.WithCancel(context.Background())
	rng := rand.New(rand.NewSource(14))
	i := 0
	done, err := s.Stream(ctx, func() (*matrix.Mat, error) {
		i++
		if i == 20 {
			cancel()
		}
		if ctx.Err() != nil {
			return nil, ctx.Err() // an HTTP body would fail the same way
		}
		return matrix.NewRand(8, 8, rng), nil
	}, func(int, *matrix.Mat) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if done >= 20 {
		t.Fatalf("done = %d after cancel at 20", done)
	}
}

// A closed pool surfaces as ErrPoolClosed, not a hang.
func TestSchedulerPoolClosed(t *testing.T) {
	pool := pulsar.NewPool(2, nil)
	pool.Close()
	s := NewScheduler(SchedConfig{Pool: pool, ChunkSize: 2})
	rng := rand.New(rand.NewSource(15))
	mats := []*matrix.Mat{matrix.NewRand(4, 4, rng), matrix.NewRand(4, 4, rng), matrix.NewRand(4, 4, rng)}
	done, err := s.Stream(context.Background(), matSource(mats), func(int, *matrix.Mat) error { return nil })
	if !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
	if done != 0 {
		t.Fatalf("done = %d on a closed pool", done)
	}
}

// The wire decoder, scheduler, and wire encoder compose end to end: a full
// request body streams through to a response body whose checksum verifies.
func TestSchedulerWireComposition(t *testing.T) {
	pool := testPool(t, 4)
	s := NewScheduler(SchedConfig{Pool: pool, ChunkSize: 8})
	rng := rand.New(rand.NewSource(16))
	mats := make([]*matrix.Mat, 100)
	for i := range mats {
		mats[i] = matrix.NewRand(12, 12, rng)
	}
	body := encodeRequest(t, mats)

	rr, err := NewRequestReader(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var respBuf bytes.Buffer
	rw, err := NewResultWriter(&respBuf)
	if err != nil {
		t.Fatal(err)
	}
	done, err := s.Stream(context.Background(), rr.Next, rw.WriteResult)
	if err != nil {
		t.Fatal(err)
	}
	if done != len(mats) {
		t.Fatalf("done = %d, want %d", done, len(mats))
	}
	if err := rw.WriteTrailer(rr.Count() - done); err != nil {
		t.Fatal(err)
	}

	rd, err := NewResultReader(bytes.NewReader(respBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ws := kernels.NewWorkspace()
	seen := 0
	for {
		res, tr, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tr != nil {
			if tr.Done != 100 || tr.Shed != 0 {
				t.Fatalf("trailer done=%d shed=%d", tr.Done, tr.Shed)
			}
			break
		}
		want := mats[res.Index].Clone()
		FactorWS(ws, want, 0)
		if d := matrix.MaxAbsDiff(res.R, want); d != 0 {
			t.Fatalf("result %d differs by %g", res.Index, d)
		}
		seen++
	}
	if seen != 100 {
		t.Fatalf("saw %d results, want 100", seen)
	}
}
