// Package scalapack implements the established baseline the paper compares
// against (§VI-A): a block — not tile — Householder QR in the style of
// LAPACK's dgeqrf / ScaLAPACK's pdgeqrf. The panel is factored
// column-by-column (sequential and latency-bound, the very property that
// caps its strong scaling on tall-skinny matrices), and the trailing
// update, which carries almost all the flops, is applied fork-join in
// parallel over column strips.
package scalapack

import (
	"fmt"
	"sync"

	"pulsarqr/internal/blas"
	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
)

// Factorization holds a block QR: A = Q·R with the reflectors packed below
// the diagonal of A and the T factors per panel.
type Factorization struct {
	M, N, NB int
	A        *matrix.Mat // packed R + reflectors
	Ts       []*matrix.Mat
}

// Factorize computes the block QR of a in place with panel width nb, using
// `workers` goroutines for the trailing update. The panel factorization is
// intentionally sequential, mirroring the baseline's bottleneck.
func Factorize(a *matrix.Mat, nb, workers int) (*Factorization, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("scalapack: matrix is %dx%d; require m >= n", m, n)
	}
	if nb <= 0 {
		return nil, fmt.Errorf("scalapack: panel width %d", nb)
	}
	if workers < 1 {
		workers = 1
	}
	f := &Factorization{M: m, N: n, NB: nb, A: a}
	tau := make([]float64, nb)
	for j := 0; j < n; j += nb {
		sb := min(nb, n-j)
		panel := a.View(j, j, m-j, sb)
		kb := min(m-j, sb)
		kernels.Dgeqr2(panel, tau[:kb])
		t := matrix.New(kb, kb)
		kernels.Dlarft(panel, tau[:kb], t)
		f.Ts = append(f.Ts, t)
		if j+sb < n {
			applyParallel(true, panel, t, a.View(j, j+sb, m-j, n-j-sb), workers)
		}
	}
	return f, nil
}

// applyParallel applies the block reflector to c, fork-join over column
// strips — the classical bulk-synchronous update of the block algorithm.
func applyParallel(trans bool, v, t, c *matrix.Mat, workers int) {
	n := c.Cols
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	strip := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * strip
		if lo >= n {
			break
		}
		hi := min(lo+strip, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			kernels.Dlarfb(trans, v, t, c.View(0, lo, c.Rows, hi-lo))
		}(lo, hi)
	}
	wg.Wait()
}

// R returns the n×n upper-triangular factor.
func (f *Factorization) R() *matrix.Mat {
	r := matrix.New(f.N, f.N)
	for j := 0; j < f.N; j++ {
		for i := 0; i <= j; i++ {
			r.Set(i, j, f.A.At(i, j))
		}
	}
	return r
}

// ApplyQT overwrites b (m×nrhs) with Qᵀ·b.
func (f *Factorization) ApplyQT(b *matrix.Mat, workers int) { f.apply(b, true, workers) }

// ApplyQ overwrites b with Q·b.
func (f *Factorization) ApplyQ(b *matrix.Mat, workers int) { f.apply(b, false, workers) }

func (f *Factorization) apply(b *matrix.Mat, trans bool, workers int) {
	if b.Rows != f.M {
		panic(fmt.Sprintf("scalapack: rhs has %d rows, want %d", b.Rows, f.M))
	}
	np := len(f.Ts)
	for idx := 0; idx < np; idx++ {
		pi := idx
		if !trans {
			pi = np - 1 - idx
		}
		j := pi * f.NB
		sb := min(f.NB, f.N-j)
		panel := f.A.View(j, j, f.M-j, sb)
		applyParallel(trans, panel, f.Ts[pi], b.View(j, 0, f.M-j, b.Cols), workers)
	}
}

// Solve returns the least-squares solution of min‖A·x − b‖₂.
func (f *Factorization) Solve(b *matrix.Mat, workers int) *matrix.Mat {
	c := b.Clone()
	f.ApplyQT(c, workers)
	x := c.View(0, 0, f.N, b.Cols).Clone()
	r := f.R()
	blas.Dtrsm(true, true, false, false, f.N, b.Cols, 1, r.Data, r.LD, x.Data, x.LD)
	return x
}

// Residual returns ‖AᵀA − RᵀR‖_F/‖AᵀA‖_F against the original matrix.
func (f *Factorization) Residual(orig *matrix.Mat) float64 {
	r := f.R()
	ata := orig.Transpose().Mul(orig)
	rtr := r.Transpose().Mul(r)
	return ata.Sub(rtr).FrobNorm() / ata.FrobNorm()
}
