package scalapack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pulsarqr/internal/matrix"
)

func TestBlockQRResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sh := range []struct{ m, n, nb, w int }{
		{40, 16, 8, 1}, {40, 16, 8, 4}, {33, 11, 5, 2}, {16, 16, 4, 3}, {9, 9, 16, 2},
	} {
		d := matrix.NewRand(sh.m, sh.n, rng)
		f, err := Factorize(d.Clone(), sh.nb, sh.w)
		if err != nil {
			t.Fatal(err)
		}
		if res := f.Residual(d); res > 1e-13 {
			t.Fatalf("%+v: residual %v", sh, res)
		}
	}
}

func TestBlockQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n := 29, 12
	d := matrix.NewRand(m, n, rng)
	f, err := Factorize(d.Clone(), 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	stack := matrix.New(m, n)
	stack.View(0, 0, n, n).CopyFrom(f.R())
	f.ApplyQ(stack, 2)
	if diff := matrix.MaxAbsDiff(stack, d); diff > 1e-12 {
		t.Fatalf("||QR − A|| = %v", diff)
	}
	b := matrix.NewRand(m, 3, rng)
	c := b.Clone()
	f.ApplyQT(c, 2)
	f.ApplyQ(c, 2)
	if diff := matrix.MaxAbsDiff(c, b); diff > 1e-12 {
		t.Fatalf("Q Qᵀ b != b: %v", diff)
	}
}

func TestBlockQRLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n := 45, 10
	d := matrix.NewRand(m, n, rng)
	xTrue := matrix.NewRand(n, 2, rng)
	b := d.Mul(xTrue)
	f, err := Factorize(d.Clone(), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve(b, 4)
	if diff := matrix.MaxAbsDiff(x, xTrue); diff > 1e-10 {
		t.Fatalf("solution off by %v", diff)
	}
}

func TestWorkersDoNotChangeResult(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := matrix.NewRand(37, 14, rng)
	f1, err := Factorize(d.Clone(), 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := Factorize(d.Clone(), 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if diff := matrix.MaxAbsDiff(f1.A, f8.A); diff != 0 {
		t.Fatalf("worker count changed the arithmetic by %v", diff)
	}
}

func TestRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := Factorize(matrix.NewRand(4, 9, rng), 4, 1); err == nil {
		t.Fatal("wide matrix must be rejected")
	}
	if _, err := Factorize(matrix.NewRand(9, 4, rng), 0, 1); err == nil {
		t.Fatal("bad nb must be rejected")
	}
}

func TestBlockQRRandomShapesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 1
		m := n + rng.Intn(20)
		nb := rng.Intn(8) + 1
		d := matrix.NewRand(m, n, rng)
		fac, err := Factorize(d.Clone(), nb, rng.Intn(4)+1)
		if err != nil {
			return false
		}
		return fac.Residual(d) < 1e-12 && !math.IsNaN(fac.Residual(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
