package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// muxPair wraps both ranks of a 2-rank local world in Muxes.
func muxPair(t *testing.T) (*Mux, *Mux) {
	t.Helper()
	l := NewLocal(2)
	m0 := NewMux(l.Endpoint(0))
	m1 := NewMux(l.Endpoint(1))
	t.Cleanup(func() {
		m0.Close()
		m1.Close()
	})
	return m0, m1
}

func recvBytes(t *testing.T, ep Endpoint, source, tag int) []byte {
	t.Helper()
	req := ep.Irecv(source, tag)
	req.Wait()
	if req.Canceled() {
		t.Fatalf("receive (source %d, tag %d) canceled", source, tag)
	}
	return req.Data()
}

// Two jobs use identical tags concurrently; each job's traffic must reach
// only its own endpoint.
func TestMuxDemuxSameTags(t *testing.T) {
	m0, m1 := muxPair(t)
	jobs := []uint32{1, 2, 7}
	var eps0, eps1 []*JobEndpoint
	for _, j := range jobs {
		e0, err := m0.Open(j)
		if err != nil {
			t.Fatal(err)
		}
		e1, err := m1.Open(j)
		if err != nil {
			t.Fatal(err)
		}
		eps0 = append(eps0, e0)
		eps1 = append(eps1, e1)
	}
	const tag = 42
	for i, j := range jobs {
		eps0[i].Isend([]byte(fmt.Sprintf("job-%d", j)), 1, tag)
	}
	// Receive in reverse open order to prove there is no cross-job matching.
	for i := len(jobs) - 1; i >= 0; i-- {
		got := string(recvBytes(t, eps1[i], 0, tag))
		want := fmt.Sprintf("job-%d", jobs[i])
		if got != want {
			t.Errorf("job %d received %q, want %q", jobs[i], got, want)
		}
	}
}

// Messages sent before the receiving side opened the job are buffered and
// delivered at Open.
func TestMuxBuffersBeforeOpen(t *testing.T) {
	m0, m1 := muxPair(t)
	e0, err := m0.Open(9)
	if err != nil {
		t.Fatal(err)
	}
	e0.Isend([]byte("early-a"), 1, 1)
	e0.Isend([]byte("early-b"), 1, 2)
	time.Sleep(20 * time.Millisecond) // let the pump route into pending
	e1, err := m1.Open(9)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(recvBytes(t, e1, 0, 1)); got != "early-a" {
		t.Errorf("tag 1: got %q", got)
	}
	if got := string(recvBytes(t, e1, 0, 2)); got != "early-b" {
		t.Errorf("tag 2: got %q", got)
	}
}

// Wildcard receives and FIFO order within a job survive the muxing.
func TestMuxWildcardAndOrder(t *testing.T) {
	m0, m1 := muxPair(t)
	e0, _ := m0.Open(3)
	e1, _ := m1.Open(3)
	for i := 0; i < 5; i++ {
		e0.Isend([]byte{byte(i)}, 1, 10+i)
	}
	for i := 0; i < 5; i++ {
		req := e1.Irecv(Any, Any)
		req.Wait()
		if req.Canceled() {
			t.Fatal("wildcard receive canceled")
		}
		if got := req.Data()[0]; int(got) != i {
			t.Fatalf("message %d arrived out of order (payload %d)", i, got)
		}
		if req.Source() != 0 || req.Tag() != 10+i {
			t.Fatalf("message %d: source/tag = %d/%d", i, req.Source(), req.Tag())
		}
	}
}

// Per-job barriers are independent: job A's barrier completes while job B's
// is still waiting, and repeated generations work.
func TestMuxPerJobBarriers(t *testing.T) {
	m0, m1 := muxPair(t)
	ea0, _ := m0.Open(1)
	ea1, _ := m1.Open(1)
	eb0, _ := m0.Open(2)
	eb1, _ := m1.Open(2)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for gen := 0; gen < 2; gen++ {
		for _, ep := range []*JobEndpoint{ea0, ea1, eb0, eb1} {
			wg.Add(1)
			go func(ep *JobEndpoint) {
				defer wg.Done()
				if err := ep.Barrier(); err != nil {
					errs <- err
				}
			}(ep)
		}
		wg.Wait()
	}
	close(errs)
	for err := range errs {
		t.Errorf("barrier: %v", err)
	}

	// The mux-level aggregate outlives the sessions: each rank ran 2
	// barriers on each of 2 jobs, and the totals must survive the
	// endpoints' Close (per-job BarrierStats die with the JobEndpoint).
	ea0.Close()
	eb0.Close()
	for _, m := range []*Mux{m0, m1} {
		bs := m.BarrierTotals()
		if bs.Count != 4 {
			t.Errorf("mux barrier total = %d, want 4", bs.Count)
		}
		if bs.Wait < 0 {
			t.Errorf("negative barrier wait %v", bs.Wait)
		}
	}
}

// Job A's barrier must not be held hostage by job B never entering its own.
func TestMuxBarrierNotBlockedByOtherJob(t *testing.T) {
	m0, m1 := muxPair(t)
	ea0, _ := m0.Open(1)
	ea1, _ := m1.Open(1)
	m0.Open(2) // job 2 opened but idle forever
	m1.Open(2)

	done := make(chan error, 2)
	go func() { done <- ea0.Barrier() }()
	go func() { done <- ea1.Barrier() }()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("job 1 barrier: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("job 1 barrier stuck behind idle job 2")
		}
	}
}

func TestMuxStatsPerJob(t *testing.T) {
	m0, m1 := muxPair(t)
	ea, _ := m0.Open(1)
	eb, _ := m0.Open(2)
	m1.Open(1)
	m1.Open(2)
	ea.Isend(make([]byte, 100), 1, 0)
	eb.Isend(make([]byte, 7), 1, 0)
	eb.Isend(make([]byte, 8), 1, 1)
	if n, b := ea.Stats(); n != 1 || b != 100 {
		t.Errorf("job 1 stats = %d msgs/%d bytes, want 1/100", n, b)
	}
	if n, b := eb.Stats(); n != 2 || b != 15 {
		t.Errorf("job 2 stats = %d msgs/%d bytes, want 2/15", n, b)
	}
}

// Closing a job endpoint cancels posted receives, drops later arrivals, and
// forbids reopening the id; other jobs are unaffected.
func TestMuxCloseJob(t *testing.T) {
	m0, m1 := muxPair(t)
	e0, _ := m0.Open(5)
	e1, _ := m1.Open(5)
	keep0, _ := m0.Open(6)
	keep1, _ := m1.Open(6)

	req := e1.Irecv(0, 0)
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	req.Wait()
	if !req.Canceled() {
		t.Error("posted receive survived Close")
	}
	if _, err := m1.Open(5); err == nil {
		t.Error("reopening a closed job id succeeded")
	}
	// Stragglers to the closed job are dropped without disturbing job 6.
	e0.Isend([]byte("straggler"), 1, 0)
	keep0.Isend([]byte("alive"), 1, 0)
	if got := string(recvBytes(t, keep1, 0, 0)); got != "alive" {
		t.Errorf("job 6 received %q, want %q", got, "alive")
	}
	// A barrier on the closed endpoint fails instead of hanging.
	if err := e1.Barrier(); err == nil {
		t.Error("barrier on closed job endpoint returned nil")
	}
}

// A rank blocked inside Barrier must unwind when its job endpoint is
// closed from another goroutine — this is how a canceled job releases a
// rank whose share finished before the cancel arrived (its aborting peers
// never enter the barrier, so nothing else can complete it). Both sides of
// the centralized protocol are exercised: rank 0 waiting for enters, and a
// non-root rank waiting for its release.
func TestMuxCloseUnblocksBarrier(t *testing.T) {
	m0, m1 := muxPair(t)
	barErr := make(chan error, 1)

	e0, _ := m0.Open(1)
	m1.Open(1) // the "aborted peer": never enters
	go func() { barErr <- e0.Barrier() }()
	time.Sleep(20 * time.Millisecond) // let rank 0 block waiting for rank 1
	e0.Close()
	select {
	case err := <-barErr:
		if err == nil {
			t.Error("rank 0 barrier returned nil after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rank 0 barrier still blocked after Close")
	}

	m0.Open(2) // rank 0 never enters, so rank 1 never gets a release
	e1, _ := m1.Open(2)
	go func() { barErr <- e1.Barrier() }()
	time.Sleep(20 * time.Millisecond)
	e1.Close()
	select {
	case err := <-barErr:
		if err == nil {
			t.Error("rank 1 barrier returned nil after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rank 1 barrier still blocked after Close")
	}
}

// The closed-job set must not grow with the total number of jobs served:
// with a long-lived control job pinning id 0 open, closing monotonically
// allocated ids compacts into the watermark instead of one map entry per
// job for the life of the mux — including ids closed out of order.
func TestMuxClosedJobWatermark(t *testing.T) {
	m0, m1 := muxPair(t)
	if _, err := m0.Open(0); err != nil { // control job stays open throughout
		t.Fatal(err)
	}
	open := func(id uint32) *JobEndpoint {
		t.Helper()
		e, err := m0.Open(id)
		if err != nil {
			t.Fatalf("open %d: %v", id, err)
		}
		return e
	}
	for id := uint32(1); id <= 100; id += 2 {
		a, b := open(id), open(id+1)
		b.Close() // out of order: the higher id retires first
		a.Close()
	}
	m0.mu.Lock()
	entries, lo := len(m0.closedJ), m0.closedLo
	m0.mu.Unlock()
	if entries != 0 {
		t.Errorf("closedJ holds %d entries after full compaction, want 0", entries)
	}
	if lo != 101 {
		t.Errorf("closedLo = %d, want 101", lo)
	}
	// Watermark-retired ids behave exactly like mapped closed ids: reopening
	// is rejected, and stragglers are dropped rather than buffered.
	if _, err := m0.Open(50); err == nil {
		t.Error("reopening a watermark-retired job id succeeded")
	}
	frame := make([]byte, muxHeaderLen+1)
	frame[3] = 50 // big-endian job id 50, kind muxData
	m1.ep.Isend(frame, 0, 7)
	time.Sleep(20 * time.Millisecond)
	m0.mu.Lock()
	_, buffered := m0.pending[50]
	m0.mu.Unlock()
	if buffered {
		t.Error("straggler for a watermark-retired job was buffered")
	}
}

// Closing the mux fails all open jobs' pending operations.
func TestMuxCloseFailsJobs(t *testing.T) {
	l := NewLocal(2)
	m0 := NewMux(l.Endpoint(0))
	m1 := NewMux(l.Endpoint(1))
	defer m1.Close()
	e0, _ := m0.Open(1)
	req := e0.Irecv(Any, Any)
	barErr := make(chan error, 1)
	go func() { barErr <- e0.Barrier() }()
	time.Sleep(10 * time.Millisecond)
	if err := m0.Close(); err != nil {
		t.Fatal(err)
	}
	req.Wait()
	if !req.Canceled() {
		t.Error("pending receive survived mux Close")
	}
	select {
	case err := <-barErr:
		if err == nil {
			t.Error("barrier survived mux Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("barrier stuck after mux Close")
	}
	if _, err := m0.Open(2); err == nil {
		t.Error("Open after mux Close succeeded")
	}
}
